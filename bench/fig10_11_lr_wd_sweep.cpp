// Reproduces Figures 10 and 11 (appendix): sensitivity of AutoAC to the
// learning rate and weight decay used when optimizing the completion
// parameters alpha. Expected shape: robust across both sweeps.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::string model = flags.GetString("model", "SimpleHGN");
  std::string dataset_name = flags.GetString("dataset", "acm");

  std::printf(
      "Figures 10-11: sensitivity to alpha learning rate / weight decay "
      "(%s on %s, scale=%.2f, seeds=%lld)\n\n",
      model.c_str(), dataset_name.c_str(), options.scale,
      static_cast<long long>(options.seeds));

  Dataset dataset = options.LoadDataset(dataset_name);
  TaskData task = MakeNodeTask(dataset);
  ModelContext ctx = BuildModelContext(dataset.graph);

  // The paper sweeps 3e-3..7e-3 around its default 5e-3; this
  // implementation's compressed search budget uses a proportionally larger
  // default (see ExperimentConfig), so the sweep brackets that default.
  TablePrinter lr_table({"alpha lr", "Macro-F1", "Micro-F1"});
  for (float lr : {0.8e-2f, 1.4e-2f, 2e-2f, 2.6e-2f, 3.2e-2f}) {
    ExperimentConfig config = options.BaseConfig();
    bench::ApplyModelDefaults(config, model);
    config.lr_alpha = lr;
    MethodSpec spec{model + "-AutoAC", MethodKind::kAutoAc, model,
                    CompletionOpType::kOneHot};
    AggregateResult result =
        EvaluateMethod(task, ctx, config, spec, options.seeds);
    char label[16];
    std::snprintf(label, sizeof(label), "%.1e", lr);
    lr_table.AddRow({label, Cell(result.macro_f1), Cell(result.micro_f1)});
  }
  std::printf("Figure 10 (learning rate sweep):\n");
  lr_table.Print(std::cout);

  TablePrinter wd_table({"alpha weight decay", "Macro-F1", "Micro-F1"});
  for (float wd : {5e-6f, 1e-5f, 2e-5f, 3e-5f, 4e-3f}) {
    ExperimentConfig config = options.BaseConfig();
    bench::ApplyModelDefaults(config, model);
    config.wd_alpha = wd;
    MethodSpec spec{model + "-AutoAC", MethodKind::kAutoAc, model,
                    CompletionOpType::kOneHot};
    AggregateResult result =
        EvaluateMethod(task, ctx, config, spec, options.seeds);
    char label[16];
    std::snprintf(label, sizeof(label), "%.1e", wd);
    wd_table.AddRow({label, Cell(result.macro_f1), Cell(result.micro_f1)});
  }
  std::printf("\nFigure 11 (weight decay sweep):\n");
  wd_table.Print(std::cout);
  return 0;
}
