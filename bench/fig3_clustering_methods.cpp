// Reproduces Figure 3: comparison of the clustering strategies that reduce
// the dimension of the completion parameters — no clustering (per-node
// alpha), post-hoc EM (k-means on hidden states), EM with warm-up, and
// AutoAC's jointly-optimized spectral-modularity clustering.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::string model = flags.GetString("model", "SimpleHGN");
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf(
      "Figure 3: clustering method comparison on %s "
      "(scale=%.2f, seeds=%lld)\n\n",
      model.c_str(), options.scale, static_cast<long long>(options.seeds));

  struct Variant {
    const char* label;
    ClusterMode mode;
  };
  std::vector<Variant> variants = {
      {"w/o cluster", ClusterMode::kNone},
      {"EM", ClusterMode::kEm},
      {"EM with warmup", ClusterMode::kEmWarmup},
      {"AutoAC", ClusterMode::kModularity},
  };

  TablePrinter table({"Dataset", "Variant", "Macro-F1", "Micro-F1"});
  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    for (const Variant& variant : variants) {
      ExperimentConfig config = options.BaseConfig();
      bench::ApplyModelDefaults(config, model);
      config.cluster_mode = variant.mode;
      MethodSpec spec{variant.label, MethodKind::kAutoAc, model,
                      CompletionOpType::kOneHot};
      AggregateResult result =
          EvaluateMethod(task, ctx, config, spec, options.seeds);
      table.AddRow({dataset.name, variant.label, Cell(result.macro_f1),
                    Cell(result.micro_f1)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
