// google-benchmark microbenchmarks for the serving subsystem
// (src/serving/): the taped vs tape-free evaluation forward (the NoGradGuard
// speedup the serving path and the trainer's eval block both rely on), the
// InferenceSession logits recomputation across thread counts, the
// per-request prediction lookup, and the request-line parser.
//
// Run with --metrics_out=... to emit the telemetry JSONL that
// scripts/check_bench_regression.py gates against BENCH_serving.json.

#include <benchmark/benchmark.h>
#include <sys/stat.h>

#include <cstdio>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "compiler/compiled_graph.h"
#include "completion/completion_module.h"
#include "data/hgb_datasets.h"
#include "models/factory.h"
#include "serving/frozen_model.h"
#include "serving/inference_session.h"
#include "serving/model_registry.h"
#include "serving/mutable_session.h"
#include "serving/server.h"
#include "tensor/graph_ir.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "util/parallel.h"
#include "util/telemetry.h"

namespace autoac {
namespace {

/// Attaches the hardware-independent allocation signal to a benchmark run:
/// heap tensor buffers acquired per iteration of the timed loop. The
/// compiled forward must report 0.0 here (everything lives in the
/// preplanned arena); check_bench_regression.py gates on it.
class AllocCounterScope {
 public:
  explicit AllocCounterScope(benchmark::State& state)
      : state_(state), before_(TensorBuffersAllocated()) {}
  ~AllocCounterScope() {
    state_.counters["tensor_allocs_per_iter"] = benchmark::Counter(
        static_cast<double>(TensorBuffersAllocated() - before_),
        benchmark::Counter::kAvgIterations);
  }

 private:
  benchmark::State& state_;
  int64_t before_;
};

/// Pins the pool to the benchmark's thread-count argument for the duration
/// of one benchmark run, restoring the default afterwards.
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int64_t n) {
    SetNumThreads(static_cast<int>(n));
  }
  ~ThreadCountScope() { SetNumThreads(0); }
};

Dataset& BenchDataset() {
  static Dataset* dataset = [] {
    DatasetOptions options;
    options.scale = 0.1;
    return new Dataset(MakeDataset("dblp", options));
  }();
  return *dataset;
}

ModelContext& BenchContext() {
  static ModelContext* ctx =
      new ModelContext(BuildModelContext(BenchDataset().graph));
  return *ctx;
}

/// A frozen model with untrained (random) weights: forward-pass cost does
/// not depend on the values, so the bench skips the training stage.
FrozenModel* NewBenchFrozen(int hidden_dim) {
  Dataset& dataset = BenchDataset();
  ModelContext& ctx = BenchContext();
  auto* model = new FrozenModel();
  model->model_name = "SimpleHGN";
  model->hidden_dim = hidden_dim;
  model->num_layers = 2;
  model->num_heads = 2;
  model->dropout = 0.1f;
  model->negative_slope = 0.05f;
  model->seed = 1;
  model->num_classes = dataset.graph->num_classes();
  model->graph = dataset.graph;
  Rng rng(model->seed);
  ModelConfig config;
  config.in_dim = model->hidden_dim;
  config.hidden_dim = model->hidden_dim;
  config.out_dim = model->hidden_dim;
  config.num_layers = model->num_layers;
  config.num_heads = model->num_heads;
  config.dropout = model->dropout;
  config.negative_slope = model->negative_slope;
  ModelPtr gnn = MakeModel(model->model_name, config, ctx, rng,
                           /*l2_normalize_output=*/false);
  for (const VarPtr& p : gnn->Parameters()) {
    model->model_params.push_back(p->value);
  }
  model->h0 = RandomNormal({dataset.graph->num_nodes(), model->hidden_dim},
                           0.5f, rng);
  model->classifier_weight =
      RandomNormal({model->hidden_dim, model->num_classes}, 0.1f, rng);
  model->classifier_bias = Tensor::Zeros({model->num_classes});
  model->fingerprint = ComputeFrozenFingerprint(*model);
  return model;
}

FrozenModel& BenchFrozen() {
  static FrozenModel* frozen = NewBenchFrozen(/*hidden_dim=*/64);
  return *frozen;
}

/// Serving-width variant for the artifact-size bench: at hidden 64 the
/// graph's un-quantizable structure bytes (edge lists) dilute the payload
/// ratio; hidden 256 is the width the export-size claim is made at.
FrozenModel& BenchFrozenWide() {
  static FrozenModel* frozen = NewBenchFrozen(/*hidden_dim=*/256);
  return *frozen;
}

/// The full evaluation forward (GNN + linear head), taped: what the trainer
/// paid per validation evaluation before the NoGradGuard satellite.
void BM_EvalForwardTaped(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  FrozenModel& frozen = BenchFrozen();
  ModelContext& ctx = BenchContext();
  ModelConfig config;
  config.in_dim = frozen.hidden_dim;
  config.hidden_dim = frozen.hidden_dim;
  config.out_dim = frozen.hidden_dim;
  config.num_layers = frozen.num_layers;
  config.num_heads = frozen.num_heads;
  config.dropout = frozen.dropout;
  config.negative_slope = frozen.negative_slope;
  Rng rng(frozen.seed);
  ModelPtr model = MakeModel(frozen.model_name, config, ctx, rng,
                             /*l2_normalize_output=*/false);
  VarPtr h0 = MakeConst(frozen.h0);
  VarPtr w = MakeConst(frozen.classifier_weight);
  VarPtr b = MakeConst(frozen.classifier_bias);
  for (auto _ : state) {
    VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
    benchmark::DoNotOptimize(AddBias(MatMul(h, w), b));
  }
}
BENCHMARK(BM_EvalForwardTaped)->ArgsProduct({{1, 2, 4, 8}});

/// The same forward under NoGradGuard: no closures, no parent retention,
/// intermediates freed eagerly. The ratio to BM_EvalForwardTaped is the
/// eval-path speedup quoted in the PR description.
void BM_EvalForwardTapeFree(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  FrozenModel& frozen = BenchFrozen();
  ModelContext& ctx = BenchContext();
  ModelConfig config;
  config.in_dim = frozen.hidden_dim;
  config.hidden_dim = frozen.hidden_dim;
  config.out_dim = frozen.hidden_dim;
  config.num_layers = frozen.num_layers;
  config.num_heads = frozen.num_heads;
  config.dropout = frozen.dropout;
  config.negative_slope = frozen.negative_slope;
  Rng rng(frozen.seed);
  ModelPtr model = MakeModel(frozen.model_name, config, ctx, rng,
                             /*l2_normalize_output=*/false);
  VarPtr h0 = MakeConst(frozen.h0);
  VarPtr w = MakeConst(frozen.classifier_weight);
  VarPtr b = MakeConst(frozen.classifier_bias);
  AllocCounterScope allocs(state);
  for (auto _ : state) {
    NoGradGuard no_grad;
    VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
    benchmark::DoNotOptimize(AddBias(MatMul(h, w), b));
  }
}
BENCHMARK(BM_EvalForwardTapeFree)->ArgsProduct({{1, 2, 4, 8}});

/// The same forward compiled ahead of time (DESIGN.md §11): IR capture,
/// pass pipeline (folding, fusion, in-place), arena planner. The ratio to
/// BM_EvalForwardTapeFree at 1 thread is the compiler's payoff, and
/// tensor_allocs_per_iter must come out 0.0 — the gated proof that steady
/// state runs entirely out of the preplanned arena.
void BM_EvalForwardCompiled(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  FrozenModel& frozen = BenchFrozen();
  ModelContext& ctx = BenchContext();
  ModelConfig config;
  config.in_dim = frozen.hidden_dim;
  config.hidden_dim = frozen.hidden_dim;
  config.out_dim = frozen.hidden_dim;
  config.num_layers = frozen.num_layers;
  config.num_heads = frozen.num_heads;
  config.dropout = frozen.dropout;
  config.negative_slope = frozen.negative_slope;
  Rng rng(frozen.seed);
  ModelPtr model = MakeModel(frozen.model_name, config, ctx, rng,
                             /*l2_normalize_output=*/false);
  ir::Graph graph;
  {
    IrCapture capture;
    VarPtr h0 = MakeConst(frozen.h0);
    capture.MarkInput(h0, "h0");
    VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
    VarPtr logits = AddBias(MatMul(h, MakeConst(frozen.classifier_weight)),
                            MakeConst(frozen.classifier_bias));
    graph = capture.Finish(logits);
  }
  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(graph));
  if (!compiled.ok()) {
    state.SkipWithError(compiled.status().message().c_str());
    return;
  }
  compiler::CompiledGraph cg = compiled.TakeValue();
  std::vector<const Tensor*> inputs = {&frozen.h0};
  Tensor out;
  cg.Run(inputs, &out);  // size the output buffer outside the timed loop
  AllocCounterScope allocs(state);
  for (auto _ : state) {
    cg.Run(inputs, &out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_EvalForwardCompiled)->ArgsProduct({{1, 2, 4, 8}});

/// InferenceSession's cache refresh (the cost of serving a graph update).
void BM_RecomputeLogits(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  InferenceSession session(BenchFrozen());
  AllocCounterScope allocs(state);
  for (auto _ : state) {
    session.RecomputeLogits();
  }
}
BENCHMARK(BM_RecomputeLogits)->ArgsProduct({{1, 2, 4, 8}});

/// One compiled batch-head dispatch answering kMaxBatchRows predictions
/// against the cached hidden state: the batch-serving alternative to a full
/// RecomputeLogits when only specific rows are requested. The relative_gate
/// in BENCH_serving.json holds this against BM_RecomputeLogits/1, and the
/// alloc gate pins the steady state at 0 tensor buffers (the reused
/// [kMaxBatchRows, C] output lives in the session).
void BM_BatchHeadPredict(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  InferenceSession session(BenchFrozen());
  if (session.batch_head_graph() == nullptr) {
    state.SkipWithError("batch head did not compile");
    return;
  }
  std::vector<int64_t> nodes(InferenceSession::kMaxBatchRows);
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<int64_t>(i * 13) % session.num_targets();
  }
  {
    StatusOr<std::vector<InferenceSession::Prediction>> warm =
        session.PredictBatch(nodes);
    if (!warm.ok()) {
      state.SkipWithError(warm.status().message().c_str());
      return;
    }
  }
  AllocCounterScope allocs(state);
  for (auto _ : state) {
    StatusOr<std::vector<InferenceSession::Prediction>> batch =
        session.PredictBatch(nodes);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nodes.size()));
}
BENCHMARK(BM_BatchHeadPredict)->ArgsProduct({{1, 4}});

/// BenchFrozen() upgraded to a v2 artifact: H0 really is the completion
/// module's discrete-op output and the completion parameters ride along, so
/// the streaming-mutation overlay (DESIGN.md §12) can re-run completion on
/// a mutated graph. Built once; weights stay untrained (cost, not accuracy).
FrozenModel& BenchFrozenV2() {
  static FrozenModel* frozen = [] {
    auto* model = new FrozenModel(BenchFrozen());
    Rng rng(model->seed + 1);
    CompletionConfig completion_config;
    completion_config.hidden_dim = model->hidden_dim;
    completion_config.ppnp_steps = 3;
    CompletionModule completion(model->graph, completion_config, rng);
    for (int64_t i = 0; i < completion.num_missing(); ++i) {
      model->op_of.push_back(i % 2 == 0 ? CompletionOpType::kMean
                                        : CompletionOpType::kGcn);
    }
    {
      NoGradGuard no_grad;
      model->h0 = completion.CompleteDiscrete(model->op_of)->value;
    }
    model->has_completion = true;
    for (const VarPtr& p : completion.Parameters()) {
      model->completion_params.push_back(p->value);
    }
    model->ppnp_restart = completion_config.ppnp_restart;
    model->ppnp_steps = completion_config.ppnp_steps;
    model->fingerprint = ComputeFrozenFingerprint(*model);
    return model;
  }();
  return *frozen;
}

/// The tentpole's payoff: applying one isolated add_node delta through the
/// mutation overlay. The new node has no edges, so its dirty ball is the
/// node alone and the flush takes the partial subgraph path — the number to
/// hold against BM_RecomputeLogits above (the full-refresh alternative).
/// Iterations are pinned so the overlay graph stays within a few hundred
/// nodes of the export instead of drifting with benchmark repetitions.
void BM_PartialForwardSingleDelta(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  auto base = std::make_shared<InferenceSession>(BenchFrozenV2());
  MutableSession::Options options;  // staleness 0: Apply() flushes inline
  MutableSession session(base, options);
  Mutation mutation;
  mutation.kind = Mutation::Kind::kAddNode;
  mutation.node_type = "author";
  AllocCounterScope allocs(state);
  for (auto _ : state) {
    StatusOr<MutationResult> result = session.Apply(mutation);
    if (!result.ok()) {
      state.SkipWithError(result.status().message().c_str());
      return;
    }
    benchmark::DoNotOptimize(result.value().dirty_rows);
  }
  if (session.partial_recomputes() != session.mutations_applied()) {
    state.SkipWithError("partial path was not taken");
    return;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PartialForwardSingleDelta)
    ->ArgsProduct({{1, 4}})
    ->Iterations(200);

/// Clean-row prediction through the mutation overlay: the wrapper must keep
/// InferenceSession::Predict's O(num_classes) row-scan cost and stay
/// tensor-alloc-free (gated at 0 by BENCH_serving.json).
void BM_MutablePredictClean(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  auto base = std::make_shared<InferenceSession>(BenchFrozenV2());
  MutableSession::Options options;
  MutableSession session(base, options);
  int64_t node = 0;
  AllocCounterScope allocs(state);
  for (auto _ : state) {
    StatusOr<InferenceSession::Prediction> prediction = session.Predict(node);
    benchmark::DoNotOptimize(prediction);
    node = (node + 1) % session.num_targets();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MutablePredictClean)->ArgsProduct({{1}});

/// The issue's acceptance scenario: a mutation has landed and been flushed,
/// and the server now needs fresh answers for a 64-row batch. The overlay's
/// lazily compiled batch head serves them straight off the hidden cache —
/// the number to hold against BM_RecomputeLogits (refreshing every row to
/// answer the same 64).
void BM_MutableBatchPredict(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  auto base = std::make_shared<InferenceSession>(BenchFrozenV2());
  MutableSession::Options options;  // staleness 0: Apply() flushes inline
  MutableSession session(base, options);
  Mutation mutation;
  mutation.kind = Mutation::Kind::kAddNode;
  mutation.node_type = "author";
  StatusOr<MutationResult> applied = session.Apply(mutation);
  if (!applied.ok()) {
    state.SkipWithError(applied.status().message().c_str());
    return;
  }
  std::vector<int64_t> nodes(InferenceSession::kMaxBatchRows);
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<int64_t>(i * 13) % session.num_targets();
  }
  {
    StatusOr<std::vector<InferenceSession::Prediction>> warm =
        session.PredictBatch(nodes);  // compiles the overlay batch head
    if (!warm.ok()) {
      state.SkipWithError(warm.status().message().c_str());
      return;
    }
  }
  AllocCounterScope allocs(state);
  for (auto _ : state) {
    StatusOr<std::vector<InferenceSession::Prediction>> batch =
        session.PredictBatch(nodes);
    benchmark::DoNotOptimize(batch);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(nodes.size()));
}
BENCHMARK(BM_MutableBatchPredict)->ArgsProduct({{1}});

/// Artifact footprint per payload encoding. Not a timing benchmark: the
/// counters carry the hardware-independent size signal that
/// BENCH_serving.json's size_gate checks (fp16 export at least 1.8x smaller
/// than f32, int8 smaller still). Uses the serving-width model so the
/// measured payload has the tensor/structure mix the claim is made at.
void BM_ArtifactBytes(benchmark::State& state) {
  FrozenModel& frozen = BenchFrozenWide();
  auto exported_bytes = [&](TensorEncoding encoding) -> int64_t {
    const std::string path = "/tmp/autoac_bench_artifact.aacm";
    FrozenSaveOptions options;
    options.encoding = encoding;
    Status status = SaveFrozenModel(frozen, path, options);
    if (!status.ok()) {
      state.SkipWithError(status.message().c_str());
      return -1;
    }
    struct stat st;
    if (::stat(path.c_str(), &st) != 0) {
      state.SkipWithError("stat failed on exported artifact");
      return -1;
    }
    std::remove(path.c_str());
    return static_cast<int64_t>(st.st_size);
  };
  const int64_t f32 = exported_bytes(TensorEncoding::kF32);
  const int64_t f16 = exported_bytes(TensorEncoding::kF16);
  const int64_t i8 = exported_bytes(TensorEncoding::kI8);
  if (f32 <= 0 || f16 <= 0 || i8 <= 0) return;
  for (auto _ : state) {
    benchmark::DoNotOptimize(f32);
  }
  state.counters["f32_bytes"] = static_cast<double>(f32);
  state.counters["f16_bytes"] = static_cast<double>(f16);
  state.counters["i8_bytes"] = static_cast<double>(i8);
  state.counters["f16_size_ratio"] =
      static_cast<double>(f32) / static_cast<double>(f16);
  state.counters["i8_size_ratio"] =
      static_cast<double>(f32) / static_cast<double>(i8);
}
BENCHMARK(BM_ArtifactBytes)->Iterations(1);

/// The steady-state per-request cost: an O(num_classes) row scan.
void BM_Predict(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  InferenceSession session(BenchFrozen());
  int64_t node = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(session.Predict(node));
    node = (node + 1) % session.num_targets();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Predict)->ArgsProduct({{1}});

void BM_ParseServeRequestLine(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  const std::string line = R"({"id": "req-123456", "node": 4242})";
  ServeRequest request;
  std::string error;
  for (auto _ : state) {
    benchmark::DoNotOptimize(ParseServeRequestLine(line, &request, &error));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ParseServeRequestLine)->ArgsProduct({{1}});

/// The per-request routing cost added by the tentpole: resolving the
/// "model" key against the registry (shared_ptr copy out of a
/// mutex-guarded map). All names share one session so the bench measures
/// lookup, not session construction.
void BM_RegistryLookup(benchmark::State& state) {
  ThreadCountScope threads(state.range(0));
  ModelRegistry registry;
  auto session = std::make_shared<InferenceSession>(BenchFrozen());
  std::vector<std::string> names;
  for (int i = 0; i < 8; ++i) {
    names.push_back("model-" + std::to_string(i));
    registry.Register(names.back(), session);
  }
  size_t next = 0;
  std::string resolved;
  for (auto _ : state) {
    benchmark::DoNotOptimize(registry.Lookup(names[next], &resolved));
    next = (next + 1) % names.size();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RegistryLookup)->ArgsProduct({{1}});

/// Mirrors micro_kernels.cpp: forwards every finished run to the telemetry
/// sink so check_bench_regression.py can gate the wall times.
class TelemetryReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    if (Telemetry::Enabled()) {
      Telemetry::Get().Emit(
          MetricRecord("bench_context")
              .Add("num_cpus",
                   static_cast<int64_t>(context.cpu_info.num_cpus))
              .Add("mhz_per_cpu",
                   context.cpu_info.cycles_per_second / 1e6)
              .Add("num_threads_env", static_cast<int64_t>(NumThreads())));
    }
    return ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& reports) override {
    if (Telemetry::Enabled()) {
      for (const Run& run : reports) {
        if (run.run_type != Run::RT_Iteration || run.error_occurred ||
            run.iterations <= 0) {
          continue;
        }
        double wall_ns = run.real_accumulated_time /
                         static_cast<double>(run.iterations) * 1e9;
        MetricRecord record("bench");
        record.Add("name", run.benchmark_name())
            .Add("iterations", run.iterations)
            .Add("wall_time_ns", wall_ns);
        // User counters (tensor_allocs_per_iter) are already finalized
        // per-iteration values here; the regression gate reads them as the
        // hardware-independent allocation signal.
        for (const auto& [name, counter] : run.counters) {
          record.Add(name, counter.value);
        }
        Telemetry::Get().Emit(record);
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace
}  // namespace autoac

int main(int argc, char** argv) {
  // --metrics_out is ours, not google-benchmark's: capture and strip it
  // before Initialize() would reject it as unrecognized.
  std::string metrics_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr std::string_view kFlag = "--metrics_out=";
    std::string_view arg(argv[i]);
    if (arg.substr(0, kFlag.size()) == kFlag) {
      metrics_out = std::string(arg.substr(kFlag.size()));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  autoac::InitTelemetryFromFlag(metrics_out);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  autoac::TelemetryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  autoac::ShutdownTelemetry(/*print_profile_table=*/false);
  return 0;
}
