// Reproduces Table VIII: ablation of the discrete constraints (proximal
// iteration) against the DARTS-style weighted mixture with the second-order
// unrolled gradient. Reports accuracy, pure search time, and '/' (OOM) when
// the mixture's tape exceeds the memory budget — MAGNN on DBLP in the paper.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};
  // Budget emulating a fixed-memory accelerator; the mixture search on the
  // heavier host model / larger dataset combinations exceeds it.
  int64_t memory_limit =
      flags.GetInt("memory_limit_mb", 48) * 1024 * 1024;

  std::printf(
      "Table VIII: discrete-constraints ablation "
      "(scale=%.2f, seeds=%lld, mixture memory budget=%lld MB)\n\n",
      options.scale, static_cast<long long>(options.seeds),
      static_cast<long long>(memory_limit / (1024 * 1024)));

  TablePrinter table({"Dataset", "Model", "Macro-F1", "Micro-F1",
                      "Search Time(s)"});
  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    for (const std::string& host : {"SimpleHGN", "MAGNN"}) {
      for (bool discrete : {true, false}) {
        ExperimentConfig config = options.BaseConfig();
        bench::ApplyModelDefaults(config, host);
        config.discrete_constraints = discrete;
        if (!discrete) config.memory_limit_bytes = memory_limit;
        MethodSpec spec{discrete ? host + "-AutoAC"
                                 : "  w/o Discrete constraints",
                        MethodKind::kAutoAc, host, CompletionOpType::kOneHot};
        AggregateResult result =
            EvaluateMethod(task, ctx, config, spec, options.seeds);
        if (result.out_of_memory) {
          table.AddRow({dataset.name, spec.display_name, "/", "/", "/"});
        } else {
          table.AddRow({dataset.name, spec.display_name,
                        Cell(result.macro_f1), Cell(result.micro_f1),
                        bench::Secs(result.mean_times.search_seconds)});
        }
      }
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
