// Reproduces Figures 6 and 7: the per-node-type distribution of searched
// completion operations on ACM and IMDB under SimpleHGN-AutoAC, plus the
// correlation with the generator's planted completion regimes (this
// implementation's analogue of the paper's Leonardo DiCaprio / Leonie
// Benesch case study).

#include "bench_common.h"
#include "completion/completion_module.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "acm")};

  std::printf(
      "Figures 6-7: per-node-type distribution of searched operations "
      "(SimpleHGN-AutoAC, scale=%.2f)\n\n",
      options.scale);

  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    ExperimentConfig config = options.BaseConfig();
    bench::ApplyModelDefaults(config, "SimpleHGN");
    MethodSpec spec{"SimpleHGN-AutoAC", MethodKind::kAutoAc, "SimpleHGN",
                    CompletionOpType::kOneHot};
    AggregateResult result = EvaluateMethod(task, ctx, config, spec, 1);

    // Recover the missing-node ordering used by the assignment.
    Rng rng(0);
    CompletionConfig completion_config;
    completion_config.hidden_dim = 8;
    CompletionModule module(dataset.graph, completion_config, rng);

    std::printf("Dataset: %s\n", dataset.name.c_str());
    TablePrinter table({"Node type", "MEAN_AC", "GCN_AC", "PPNP_AC",
                        "One-hot_AC", "#nodes"});
    for (int64_t t = 0; t < dataset.graph->num_node_types(); ++t) {
      std::vector<int64_t> positions = module.MissingPositionsOfType(t);
      if (positions.empty()) continue;
      int64_t counts[kNumCompletionOps] = {0};
      for (int64_t pos : positions) {
        ++counts[static_cast<int>(result.last_ops[pos])];
      }
      std::vector<std::string> row = {dataset.graph->node_type(t).name};
      for (int o : {static_cast<int>(CompletionOpType::kMean),
                    static_cast<int>(CompletionOpType::kGcn),
                    static_cast<int>(CompletionOpType::kPpnp),
                    static_cast<int>(CompletionOpType::kOneHot)}) {
        row.push_back(
            bench::Pct(counts[o] / static_cast<double>(positions.size())));
      }
      row.push_back(std::to_string(positions.size()));
      table.AddRow(row);
    }
    table.Print(std::cout);

    // Regime case study: what fraction of each planted regime received a
    // topology-dependent vs one-hot completion.
    const std::vector<int64_t>& missing = module.missing_nodes();
    int64_t regime_counts[3][kNumCompletionOps] = {{0}};
    int64_t regime_totals[3] = {0};
    for (size_t i = 0; i < missing.size(); ++i) {
      int regime = static_cast<int>(dataset.regime[missing[i]]);
      ++regime_counts[regime][static_cast<int>(result.last_ops[i])];
      ++regime_totals[regime];
    }
    const char* regime_names[3] = {"local", "global", "identity"};
    std::printf("Planted-regime view (rows sum to 100%%):\n");
    for (int r = 0; r < 3; ++r) {
      if (regime_totals[r] == 0) continue;
      std::printf("  %-8s", regime_names[r]);
      for (int o = 0; o < kNumCompletionOps; ++o) {
        std::printf(" %s=%5.1f%%",
                    CompletionOpName(static_cast<CompletionOpType>(o)),
                    100.0 * regime_counts[r][o] / regime_totals[r]);
      }
      std::printf("\n");
    }
    std::printf("\n");
  }
  return 0;
}
