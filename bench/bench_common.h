#ifndef AUTOAC_BENCH_BENCH_COMMON_H_
#define AUTOAC_BENCH_BENCH_COMMON_H_

#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "autoac/evaluator.h"
#include "autoac/search.h"
#include "autoac/task.h"
#include "data/hgb_datasets.h"
#include "models/factory.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/table.h"

namespace autoac::bench {

/// Shared command-line knobs for all table/figure benches. Defaults are
/// sized so each bench finishes in CPU-minutes at scale 0.2; pass
/// --scale=1.0 --seeds=5 for paper-scale runs.
struct BenchOptions {
  double scale = 0.15;
  int64_t seeds = 2;
  int64_t epochs = 70;
  int64_t search_epochs = 24;
  int64_t eval_every = 2;
  uint64_t seed = 7;

  static BenchOptions FromFlags(const Flags& flags) {
    BenchOptions options;
    // Applied immediately: every kernel behind this bench runs on the shared
    // pool. 0 keeps the AUTOAC_NUM_THREADS / hardware default.
    SetNumThreads(static_cast<int>(flags.GetInt("num_threads", 0)));
    options.scale = flags.GetDouble("scale", options.scale);
    options.seeds = flags.GetInt("seeds", options.seeds);
    options.epochs = flags.GetInt("epochs", options.epochs);
    options.search_epochs =
        flags.GetInt("search_epochs", options.search_epochs);
    options.eval_every = flags.GetInt("eval_every", options.eval_every);
    options.seed = flags.GetInt("seed", options.seed);
    return options;
  }

  ExperimentConfig BaseConfig() const {
    ExperimentConfig config;
    config.train_epochs = epochs;
    config.search_epochs = search_epochs;
    config.eval_every = eval_every;
    config.seed = seed;
    return config;
  }

  Dataset LoadDataset(const std::string& name) const {
    DatasetOptions dataset_options;
    dataset_options.scale = scale;
    dataset_options.seed = seed;
    return MakeDataset(name, dataset_options);
  }
};

/// Per-model hyperparameters mirroring Appendix B's per-baseline configs,
/// condensed to the knobs this implementation exposes.
inline void ApplyModelDefaults(ExperimentConfig& config,
                               const std::string& model) {
  config.model_name = model;
  if (model == "GTN" || model == "HetGNN" || model == "GATNE") {
    config.num_layers = 2;
  } else if (model == "GCN" || model == "GAT") {
    config.num_layers = 2;
  } else {
    config.num_layers = 2;
  }
  // AutoAC host-model hyperparameters (Section V-B): lambda and M.
  if (model == "MAGNN") {
    config.lambda = 0.5f;
    config.num_clusters = 8;
  } else {
    config.lambda = 0.4f;
    config.num_clusters = 8;
  }
}

/// Formats a seconds value the way the paper's runtime columns do.
inline std::string Secs(double seconds) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.1f", seconds);
  return buffer;
}

inline std::string Pct(double fraction) {
  char buffer[32];
  std::snprintf(buffer, sizeof(buffer), "%.2f%%", 100.0 * fraction);
  return buffer;
}

}  // namespace autoac::bench

#endif  // AUTOAC_BENCH_BENCH_COMMON_H_
