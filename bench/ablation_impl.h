#ifndef AUTOAC_BENCH_ABLATION_IMPL_H_
#define AUTOAC_BENCH_ABLATION_IMPL_H_

// Shared driver for the completion-operation ablations (Tables VI and VII):
// one host model, rows = baseline / each single operation / random / AutoAC.

#include "bench_common.h"

namespace autoac::bench {

inline int RunCompletionAblation(int argc, char** argv,
                                 const std::string& default_model,
                                 const char* table_name) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::string model = flags.GetString("model", default_model);
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf("%s: completion operation ablation on %s "
              "(scale=%.2f, seeds=%lld)\n\n",
              table_name, model.c_str(), options.scale,
              static_cast<long long>(options.seeds));

  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    ExperimentConfig config = options.BaseConfig();
    ApplyModelDefaults(config, model);

    std::vector<MethodSpec> rows = {
        {"Baseline (" + model + ")", MethodKind::kBaseline, model,
         CompletionOpType::kOneHot},
        {"GCN_AC", MethodKind::kSingleOp, model, CompletionOpType::kGcn},
        {"PPNP_AC", MethodKind::kSingleOp, model, CompletionOpType::kPpnp},
        {"MEAN_AC", MethodKind::kSingleOp, model, CompletionOpType::kMean},
        {"One-hot_AC", MethodKind::kSingleOp, model,
         CompletionOpType::kOneHot},
        {"Random_AC", MethodKind::kRandomOp, model, CompletionOpType::kMean},
        {"AutoAC", MethodKind::kAutoAc, model, CompletionOpType::kMean},
    };
    TablePrinter table({"Model \\ Metrics", "Macro-F1", "Micro-F1"});
    for (const MethodSpec& spec : rows) {
      AggregateResult result =
          EvaluateMethod(task, ctx, config, spec, options.seeds);
      table.AddRow({spec.display_name, Cell(result.macro_f1),
                    Cell(result.micro_f1)});
    }
    std::printf("Dataset: %s\n", dataset.name.c_str());
    table.Print(std::cout);
    std::printf("\n");
  }
  return 0;
}

}  // namespace autoac::bench

#endif  // AUTOAC_BENCH_ABLATION_IMPL_H_
