// Reproduces Table X: SimpleHGN vs SimpleHGN-AutoAC on link prediction with
// varying masked-edge rates (5/10/20/30%). Expected shape: AutoAC wins at
// every rate, both degrade as more edges are masked.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"dblp", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf(
      "Table X: link prediction with varying masked edge rates "
      "(scale=%.2f, seeds=%lld)\n\n",
      options.scale, static_cast<long long>(options.seeds));

  TablePrinter table(
      {"Dataset", "Masked Edge Rate", "Model", "ROC-AUC", "MRR"});
  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    for (double rate : {0.05, 0.10, 0.20, 0.30}) {
      Rng rng(options.seed + 700);
      TaskData task = MakeLinkTask(dataset, rate, rng);
      ModelContext ctx = BuildModelContext(task.graph);
      char rate_label[16];
      std::snprintf(rate_label, sizeof(rate_label), "%.0f%%", rate * 100);
      for (bool use_autoac : {false, true}) {
        ExperimentConfig config = options.BaseConfig();
        config.task = TaskKind::kLinkPrediction;
        bench::ApplyModelDefaults(config, "SimpleHGN");
        MethodSpec spec =
            use_autoac
                ? MethodSpec{"SimpleHGN-AutoAC", MethodKind::kAutoAc,
                             "SimpleHGN", CompletionOpType::kOneHot}
                : MethodSpec{"SimpleHGN", MethodKind::kBaseline, "SimpleHGN",
                             CompletionOpType::kOneHot};
        AggregateResult result =
            EvaluateMethod(task, ctx, config, spec, options.seeds);
        table.AddRow({dataset.name, rate_label, spec.display_name,
                      Cell(result.roc_auc), Cell(result.mrr)});
      }
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
