// Reproduces Table IX: SimpleHGN-AutoAC under varying attribute missing
// rates. Lower rows of each ladder leave more node types attribute-less
// (search targets); the types not listed are "manually completed" with
// one-hot codes, as the paper does. Expected shape: AutoAC's completion
// beats handcrafted completion, so F1 does not degrade — and typically
// improves — as the missing rate rises.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

namespace {

struct LadderStep {
  std::vector<std::string> missing;  // empty = 0% (all manual)
};

std::vector<LadderStep> LadderFor(const std::string& name) {
  if (name == "dblp") {
    return {{{}},
            {{"author"}},
            {{"term", "venue"}},
            {{"author", "term", "venue"}}};
  }
  if (name == "acm") {
    return {{{}},
            {{"subject", "term"}},
            {{"author", "subject"}},
            {{"author", "subject", "term"}}};
  }
  // imdb
  return {{{}},
          {{"keyword"}},
          {{"actor", "keyword"}},
          {{"director", "actor", "keyword"}}};
}

std::string JoinNames(const std::vector<std::string>& names) {
  if (names.empty()) return "/";
  std::string out;
  for (size_t i = 0; i < names.size(); ++i) {
    if (i > 0) out += ", ";
    out += names[i];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf(
      "Table IX: SimpleHGN-AutoAC with varying attribute missing rates "
      "(scale=%.2f, seeds=%lld)\n\n",
      options.scale, static_cast<long long>(options.seeds));

  TablePrinter table({"Dataset", "Missing Rate", "Missing Types", "Macro-F1",
                      "Micro-F1"});
  for (const std::string& name : datasets) {
    for (const LadderStep& step : LadderFor(name)) {
      DatasetOptions dataset_options;
      dataset_options.scale = options.scale;
      dataset_options.seed = options.seed;
      bool all_manual = step.missing.empty();
      if (all_manual) {
        // 0% row: every non-raw type manually completed. Signalled by
        // naming every type as "not missing": list none as missing is the
        // default (all missing), so instead mark all types as manual by
        // passing a non-existent missing type.
        dataset_options.missing_types = {"__none__"};
      } else {
        dataset_options.missing_types = step.missing;
      }
      Dataset dataset = MakeDataset(name, dataset_options);
      TaskData task = MakeNodeTask(dataset);
      ModelContext ctx = BuildModelContext(dataset.graph);
      ExperimentConfig config = options.BaseConfig();
      bench::ApplyModelDefaults(config, "SimpleHGN");

      // At 0% missing there is nothing to search: the row reports the
      // handcrafted baseline, as in the paper.
      MethodSpec spec = all_manual
                            ? MethodSpec{"SimpleHGN", MethodKind::kBaseline,
                                         "SimpleHGN", CompletionOpType::kOneHot}
                            : MethodSpec{"SimpleHGN-AutoAC",
                                         MethodKind::kAutoAc, "SimpleHGN",
                                         CompletionOpType::kOneHot};
      AggregateResult result =
          EvaluateMethod(task, ctx, config, spec, options.seeds);
      table.AddRow({dataset.name, bench::Pct(MissingRate(dataset)),
                    JoinNames(step.missing), Cell(result.macro_f1),
                    Cell(result.micro_f1)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
