// Reproduces Figure 5: the distribution of searched completion operations
// per dataset and host model (SimpleHGN-AutoAC and MAGNN-AutoAC).

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf(
      "Figure 5: distribution of searched completion operations "
      "(scale=%.2f)\n\n",
      options.scale);

  TablePrinter table({"Dataset", "Model", "MEAN_AC", "GCN_AC", "PPNP_AC",
                      "One-hot_AC"});
  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    for (const std::string& host : {"SimpleHGN", "MAGNN"}) {
      ExperimentConfig config = options.BaseConfig();
      bench::ApplyModelDefaults(config, host);
      MethodSpec spec{host + "-AutoAC", MethodKind::kAutoAc, host,
                      CompletionOpType::kOneHot};
      AggregateResult result = EvaluateMethod(task, ctx, config, spec, 1);
      int64_t counts[kNumCompletionOps] = {0};
      for (CompletionOpType op : result.last_ops) {
        ++counts[static_cast<int>(op)];
      }
      double total = std::max<double>(1.0, result.last_ops.size());
      std::vector<std::string> row = {dataset.name, host + "-AutoAC"};
      for (int o : {static_cast<int>(CompletionOpType::kMean),
                    static_cast<int>(CompletionOpType::kGcn),
                    static_cast<int>(CompletionOpType::kPpnp),
                    static_cast<int>(CompletionOpType::kOneHot)}) {
        row.push_back(bench::Pct(counts[o] / total));
      }
      table.AddRow(row);
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
