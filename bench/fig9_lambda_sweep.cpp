// Reproduces Figure 9: sensitivity of AutoAC to the clustering-loss weight
// lambda in Eq. 12. Expected shape: broadly robust, mild dataset-specific
// preferences.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::string model = flags.GetString("model", "SimpleHGN");
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf("Figure 9: sensitivity to the loss weight lambda "
              "(%s, scale=%.2f, seeds=%lld)\n\n",
              model.c_str(), options.scale,
              static_cast<long long>(options.seeds));

  TablePrinter table({"Dataset", "lambda", "Macro-F1", "Micro-F1"});
  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    for (float lambda : {0.1f, 0.2f, 0.3f, 0.4f, 0.5f}) {
      ExperimentConfig config = options.BaseConfig();
      bench::ApplyModelDefaults(config, model);
      config.lambda = lambda;
      MethodSpec spec{model + "-AutoAC", MethodKind::kAutoAc, model,
                      CompletionOpType::kOneHot};
      AggregateResult result =
          EvaluateMethod(task, ctx, config, spec, options.seeds);
      char label[16];
      std::snprintf(label, sizeof(label), "%.1f", lambda);
      table.AddRow({dataset.name, label, Cell(result.macro_f1),
                    Cell(result.micro_f1)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
