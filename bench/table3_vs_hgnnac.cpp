// Reproduces Table III: AutoAC against the HGNN-AC attribute-completion
// baseline, both hosted in MAGNN and SimpleHGN, on DBLP/ACM/IMDB.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf("Table III: AutoAC vs HGNN-AC (scale=%.2f, seeds=%lld)\n\n",
              options.scale, static_cast<long long>(options.seeds));

  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);

    TablePrinter table({"Model", "Macro-F1", "Micro-F1"});
    std::vector<double> autoac_micro, hgnnac_micro;
    for (const std::string& host : {"MAGNN", "SimpleHGN"}) {
      ExperimentConfig config = options.BaseConfig();
      bench::ApplyModelDefaults(config, host);
      std::vector<MethodSpec> rows = {
          {host, MethodKind::kBaseline, host, CompletionOpType::kOneHot},
          {host + "-HGNNAC", MethodKind::kHgnnAc, host,
           CompletionOpType::kOneHot},
          {host + "-AutoAC", MethodKind::kAutoAc, host,
           CompletionOpType::kOneHot},
      };
      for (const MethodSpec& spec : rows) {
        AggregateResult result =
            EvaluateMethod(task, ctx, config, spec, options.seeds);
        table.AddRow({spec.display_name, Cell(result.macro_f1),
                      Cell(result.micro_f1)});
        if (spec.kind == MethodKind::kAutoAc && host == "SimpleHGN") {
          autoac_micro = result.micro_samples;
        }
        if (spec.kind == MethodKind::kHgnnAc && host == "SimpleHGN") {
          hgnnac_micro = result.micro_samples;
        }
      }
      table.AddSeparator();
    }
    std::printf("Dataset: %s\n", dataset.name.c_str());
    table.Print(std::cout);
    if (!autoac_micro.empty() && !hgnnac_micro.empty()) {
      std::printf("p-value (SimpleHGN-AutoAC vs SimpleHGN-HGNNAC, Micro): %s\n",
                  FormatPValue(WelchTTestPValue(autoac_micro, hgnnac_micro))
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
