// google-benchmark microbenchmarks for the kernels every experiment is
// built from: dense GEMM, sparse SpMM, edge-softmax attention, the four
// completion operations, the proximal projections, and the modularity loss.
//
// The hot kernels sweep the thread count of the shared parallel runtime
// (util/parallel.h) as their last argument; run
//   micro_kernels --benchmark_filter='MatMul|SpMM'
//       --benchmark_out=BENCH_kernels.json --benchmark_out_format=json
// to record the 1-vs-N scaling (see BENCH_kernels.json at the repo root).

#include <benchmark/benchmark.h>

#include "autoac/clustering.h"
#include "autoac/completion_params.h"
#include "completion/completion_module.h"
#include "data/hgb_datasets.h"
#include "graph/sparse_ops.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/parallel.h"

namespace autoac {
namespace {

/// Pins the pool to the benchmark's thread-count argument for the duration
/// of one benchmark run, restoring the default afterwards.
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int64_t n) {
    SetNumThreads(static_cast<int>(n));
  }
  ~ThreadCountScope() { SetNumThreads(0); }
};

Dataset& BenchDataset() {
  static Dataset* dataset = [] {
    DatasetOptions options;
    options.scale = 0.1;
    return new Dataset(MakeDataset("dblp", options));
  }();
  return *dataset;
}

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  ThreadCountScope threads(state.range(1));
  Rng rng(1);
  VarPtr a = MakeConst(RandomNormal({n, 64}, 1.0f, rng));
  VarPtr b = MakeConst(RandomNormal({64, 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_MatMul)->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

void BM_SpMM(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  ThreadCountScope threads(state.range(0));
  SpMatPtr adj = dataset.graph->FullAdjacency(AdjNorm::kSym, true);
  Rng rng(2);
  VarPtr x =
      MakeConst(RandomNormal({dataset.graph->num_nodes(), 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpMM(adj, x));
  }
  state.SetItemsProcessed(state.iterations() * adj->nnz() * 64);
}
BENCHMARK(BM_SpMM)->ArgsProduct({{1, 2, 4, 8}});

void BM_EdgeSoftmaxAggregate(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  ThreadCountScope threads(state.range(0));
  SpMatPtr adj = dataset.graph->FullAdjacency(AdjNorm::kNone, true);
  Rng rng(3);
  VarPtr logits = MakeConst(RandomNormal({adj->nnz()}, 1.0f, rng));
  VarPtr h =
      MakeConst(RandomNormal({dataset.graph->num_nodes(), 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdgeSoftmaxAggregate(adj, logits, h));
  }
  state.SetItemsProcessed(state.iterations() * adj->nnz() * 64);
}
BENCHMARK(BM_EdgeSoftmaxAggregate)->ArgsProduct({{1, 2, 4, 8}});

void BM_CompletionOp(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  Rng rng(4);
  CompletionConfig config;
  config.hidden_dim = 64;
  static CompletionModule* module =
      new CompletionModule(dataset.graph, config, rng);
  auto op = static_cast<CompletionOpType>(state.range(0));
  VarPtr base = module->BaseFeatures();
  for (auto _ : state) {
    benchmark::DoNotOptimize(module->RunOp(op, base));
  }
}
BENCHMARK(BM_CompletionOp)
    ->Arg(static_cast<int>(CompletionOpType::kMean))
    ->Arg(static_cast<int>(CompletionOpType::kGcn))
    ->Arg(static_cast<int>(CompletionOpType::kPpnp))
    ->Arg(static_cast<int>(CompletionOpType::kOneHot));

void BM_ProxC1(benchmark::State& state) {
  Rng rng(5);
  Tensor alpha = InitCompletionParams(state.range(0), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProxC1(alpha));
  }
}
BENCHMARK(BM_ProxC1)->Arg(16)->Arg(4096);

void BM_ModularityLoss(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  Rng rng(6);
  static ClusterHead* head =
      new ClusterHead(dataset.graph, 64, 8, rng);
  VarPtr hidden =
      MakeConst(RandomNormal({dataset.graph->num_nodes(), 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        head->ModularityLoss(head->Assignments(hidden)));
  }
}
BENCHMARK(BM_ModularityLoss);

void BM_BackwardPass(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  SpMatPtr adj = dataset.graph->FullAdjacency(AdjNorm::kSym, true);
  Rng rng(7);
  VarPtr w = MakeParam(RandomNormal({64, 64}, 0.1f, rng));
  VarPtr x =
      MakeConst(RandomNormal({dataset.graph->num_nodes(), 64}, 1.0f, rng));
  for (auto _ : state) {
    w->ZeroGrad();
    VarPtr loss = SumSquares(SpMM(adj, MatMul(x, w)));
    Backward(loss);
    benchmark::DoNotOptimize(w->grad.data());
  }
}
BENCHMARK(BM_BackwardPass);

}  // namespace
}  // namespace autoac

BENCHMARK_MAIN();
