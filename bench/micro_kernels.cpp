// google-benchmark microbenchmarks for the kernels every experiment is
// built from: dense GEMM, sparse SpMM, edge-softmax attention, the four
// completion operations, the proximal projections, and the modularity loss.
//
// The hot kernels sweep the thread count of the shared parallel runtime
// (util/parallel.h) as their last argument; run
//   micro_kernels --benchmark_filter='MatMul|SpMM'
//       --benchmark_out=BENCH_kernels.json --benchmark_out_format=json
// to record the 1-vs-N scaling (see BENCH_kernels.json at the repo root).

#include <benchmark/benchmark.h>

#include <string>
#include <string_view>

#include "autoac/clustering.h"
#include "autoac/completion_params.h"
#include "completion/completion_module.h"
#include "data/hgb_datasets.h"
#include "graph/sparse_ops.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/telemetry.h"

namespace autoac {
namespace {

/// Pins the pool to the benchmark's thread-count argument for the duration
/// of one benchmark run, restoring the default afterwards.
class ThreadCountScope {
 public:
  explicit ThreadCountScope(int64_t n) {
    SetNumThreads(static_cast<int>(n));
  }
  ~ThreadCountScope() { SetNumThreads(0); }
};

Dataset& BenchDataset() {
  static Dataset* dataset = [] {
    DatasetOptions options;
    options.scale = 0.1;
    return new Dataset(MakeDataset("dblp", options));
  }();
  return *dataset;
}

void BM_MatMul(benchmark::State& state) {
  int64_t n = state.range(0);
  ThreadCountScope threads(state.range(1));
  Rng rng(1);
  VarPtr a = MakeConst(RandomNormal({n, 64}, 1.0f, rng));
  VarPtr b = MakeConst(RandomNormal({64, 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(MatMul(a, b));
  }
  state.SetItemsProcessed(state.iterations() * n * 64 * 64);
}
BENCHMARK(BM_MatMul)->ArgsProduct({{1024, 4096}, {1, 2, 4, 8}});

void BM_SpMM(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  ThreadCountScope threads(state.range(0));
  SpMatPtr adj = dataset.graph->FullAdjacency(AdjNorm::kSym, true);
  Rng rng(2);
  VarPtr x =
      MakeConst(RandomNormal({dataset.graph->num_nodes(), 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SpMM(adj, x));
  }
  state.SetItemsProcessed(state.iterations() * adj->nnz() * 64);
}
BENCHMARK(BM_SpMM)->ArgsProduct({{1, 2, 4, 8}});

void BM_EdgeSoftmaxAggregate(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  ThreadCountScope threads(state.range(0));
  SpMatPtr adj = dataset.graph->FullAdjacency(AdjNorm::kNone, true);
  Rng rng(3);
  VarPtr logits = MakeConst(RandomNormal({adj->nnz()}, 1.0f, rng));
  VarPtr h =
      MakeConst(RandomNormal({dataset.graph->num_nodes(), 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdgeSoftmaxAggregate(adj, logits, h));
  }
  state.SetItemsProcessed(state.iterations() * adj->nnz() * 64);
}
BENCHMARK(BM_EdgeSoftmaxAggregate)->ArgsProduct({{1, 2, 4, 8}});

void BM_CompletionOp(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  Rng rng(4);
  CompletionConfig config;
  config.hidden_dim = 64;
  static CompletionModule* module =
      new CompletionModule(dataset.graph, config, rng);
  auto op = static_cast<CompletionOpType>(state.range(0));
  VarPtr base = module->BaseFeatures();
  for (auto _ : state) {
    benchmark::DoNotOptimize(module->RunOp(op, base));
  }
}
BENCHMARK(BM_CompletionOp)
    ->Arg(static_cast<int>(CompletionOpType::kMean))
    ->Arg(static_cast<int>(CompletionOpType::kGcn))
    ->Arg(static_cast<int>(CompletionOpType::kPpnp))
    ->Arg(static_cast<int>(CompletionOpType::kOneHot));

void BM_ProxC1(benchmark::State& state) {
  Rng rng(5);
  Tensor alpha = InitCompletionParams(state.range(0), rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ProxC1(alpha));
  }
}
BENCHMARK(BM_ProxC1)->Arg(16)->Arg(4096);

void BM_ModularityLoss(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  Rng rng(6);
  static ClusterHead* head =
      new ClusterHead(dataset.graph, 64, 8, rng);
  VarPtr hidden =
      MakeConst(RandomNormal({dataset.graph->num_nodes(), 64}, 1.0f, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        head->ModularityLoss(head->Assignments(hidden)));
  }
}
BENCHMARK(BM_ModularityLoss);

void BM_BackwardPass(benchmark::State& state) {
  Dataset& dataset = BenchDataset();
  SpMatPtr adj = dataset.graph->FullAdjacency(AdjNorm::kSym, true);
  Rng rng(7);
  VarPtr w = MakeParam(RandomNormal({64, 64}, 0.1f, rng));
  VarPtr x =
      MakeConst(RandomNormal({dataset.graph->num_nodes(), 64}, 1.0f, rng));
  for (auto _ : state) {
    w->ZeroGrad();
    VarPtr loss = SumSquares(SpMM(adj, MatMul(x, w)));
    Backward(loss);
    benchmark::DoNotOptimize(w->grad.data());
  }
}
BENCHMARK(BM_BackwardPass);

/// Console display plus one JSONL "bench" record per benchmark run, so the
/// CI bench-smoke job can diff a run against the committed
/// BENCH_kernels.json baseline (scripts/check_bench_regression.py) with the
/// same record format the trainer telemetry uses.
class TelemetryReporter : public benchmark::ConsoleReporter {
 public:
  bool ReportContext(const Context& context) override {
    if (Telemetry::Enabled()) {
      Telemetry::Get().Emit(
          MetricRecord("bench_context")
              .Add("num_cpus",
                   static_cast<int64_t>(context.cpu_info.num_cpus))
              .Add("mhz_per_cpu",
                   context.cpu_info.cycles_per_second / 1e6)
              .Add("num_threads_env", static_cast<int64_t>(NumThreads())));
    }
    return ConsoleReporter::ReportContext(context);
  }

  void ReportRuns(const std::vector<Run>& reports) override {
    if (Telemetry::Enabled()) {
      for (const Run& run : reports) {
        if (run.run_type != Run::RT_Iteration || run.error_occurred ||
            run.iterations <= 0) {
          continue;
        }
        // real_accumulated_time is seconds over all iterations; normalize
        // to per-iteration nanoseconds, the unit BENCH_kernels.json keeps.
        double wall_ns = run.real_accumulated_time /
                         static_cast<double>(run.iterations) * 1e9;
        Telemetry::Get().Emit(MetricRecord("bench")
                                  .Add("name", run.benchmark_name())
                                  .Add("iterations", run.iterations)
                                  .Add("wall_time_ns", wall_ns));
      }
    }
    ConsoleReporter::ReportRuns(reports);
  }
};

}  // namespace
}  // namespace autoac

int main(int argc, char** argv) {
  // --metrics_out is ours, not google-benchmark's: capture and strip it
  // before Initialize() would reject it as unrecognized.
  std::string metrics_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    constexpr std::string_view kFlag = "--metrics_out=";
    std::string_view arg(argv[i]);
    if (arg.substr(0, kFlag.size()) == kFlag) {
      metrics_out = std::string(arg.substr(kFlag.size()));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  autoac::InitTelemetryFromFlag(metrics_out);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  autoac::TelemetryReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  autoac::ShutdownTelemetry(/*print_profile_table=*/false);
  return 0;
}
