// Reproduces Table VII: completion-operation ablation hosted in MAGNN.

#include "ablation_impl.h"

int main(int argc, char** argv) {
  return autoac::bench::RunCompletionAblation(argc, argv, "MAGNN",
                                              "Table VII");
}
