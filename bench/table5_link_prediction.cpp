// Reproduces Table V: link prediction on LastFM/DBLP/IMDB (ROC-AUC, MRR,
// runtime) comparing SimpleHGN-AutoAC to the link baselines, with 10% of
// the target edge type masked.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"lastfm", "dblp", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "lastfm")};
  double mask_rate = flags.GetDouble("mask_rate", 0.10);

  std::printf(
      "Table V: link prediction (mask_rate=%.0f%%, scale=%.2f, seeds=%lld)\n\n",
      100 * mask_rate, options.scale, static_cast<long long>(options.seeds));

  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    Rng rng(options.seed + 500);
    TaskData task = MakeLinkTask(dataset, mask_rate, rng);
    ModelContext ctx = BuildModelContext(task.graph);

    TablePrinter table({"Model", "ROC-AUC", "MRR", "Runtime(Total)",
                        "Runtime(Per epoch)"});
    AggregateResult best_baseline, autoac_result;
    std::vector<std::string> models = LinkPredictionBaselines();
    for (const std::string& model : models) {
      ExperimentConfig config = options.BaseConfig();
      config.task = TaskKind::kLinkPrediction;
      bench::ApplyModelDefaults(config, model);
      MethodSpec spec{model, MethodKind::kBaseline, model,
                      CompletionOpType::kOneHot};
      AggregateResult result =
          EvaluateMethod(task, ctx, config, spec, options.seeds);
      table.AddRow({model, Cell(result.roc_auc), Cell(result.mrr),
                    bench::Secs(result.total_seconds),
                    bench::Secs(result.epoch_seconds)});
      if (result.roc_auc.mean > best_baseline.roc_auc.mean) {
        best_baseline = result;
      }
    }
    {
      ExperimentConfig config = options.BaseConfig();
      config.task = TaskKind::kLinkPrediction;
      bench::ApplyModelDefaults(config, "SimpleHGN");
      MethodSpec spec{"SimpleHGN-AutoAC", MethodKind::kAutoAc, "SimpleHGN",
                      CompletionOpType::kOneHot};
      autoac_result = EvaluateMethod(task, ctx, config, spec, options.seeds);
      table.AddRow({spec.display_name, Cell(autoac_result.roc_auc),
                    Cell(autoac_result.mrr),
                    bench::Secs(autoac_result.total_seconds),
                    bench::Secs(autoac_result.epoch_seconds)});
    }
    std::printf("Dataset: %s\n", dataset.name.c_str());
    table.Print(std::cout);
    if (!autoac_result.auc_samples.empty() &&
        !best_baseline.auc_samples.empty()) {
      std::printf(
          "p-value (AutoAC vs best baseline): ROC-AUC %s  MRR %s\n",
          FormatPValue(WelchTTestPValue(autoac_result.auc_samples,
                                        best_baseline.auc_samples)).c_str(),
          FormatPValue(WelchTTestPValue(autoac_result.mrr_samples,
                                        best_baseline.mrr_samples)).c_str());
    }
    std::printf("\n");
  }
  return 0;
}
