// Reproduces Table VI: completion-operation ablation hosted in SimpleHGN.

#include "ablation_impl.h"

int main(int argc, char** argv) {
  return autoac::bench::RunCompletionAblation(argc, argv, "SimpleHGN",
                                              "Table VI");
}
