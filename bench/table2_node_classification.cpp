// Reproduces Table II: node-classification comparison between AutoAC-hosted
// models and the handcrafted heterogeneous GNN baselines on DBLP/ACM/IMDB,
// with Macro/Micro-F1 (mean±std over seeds), per-epoch and total runtime,
// and Welch t-test p-values of the best AutoAC row against the best
// baseline.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf(
      "Table II: node classification, AutoAC vs handcrafted GNNs "
      "(scale=%.2f, seeds=%lld)\n\n",
      options.scale, static_cast<long long>(options.seeds));

  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);

    struct Row {
      MethodSpec spec;
      bool separator_before = false;
    };
    std::vector<Row> rows;
    // Meta-path models first, then meta-path-free, as in the paper.
    for (const std::string& model :
         {"HAN", "GTN", "HetSANN", "MAGNN"}) {
      rows.push_back({{model, MethodKind::kBaseline, model,
                       CompletionOpType::kOneHot}});
    }
    rows.push_back({{"HGCA", MethodKind::kHgca, "GCN",
                     CompletionOpType::kMean}});
    rows.push_back({{"MAGNN-AutoAC", MethodKind::kAutoAc, "MAGNN",
                     CompletionOpType::kOneHot}});
    bool first_second_group = true;
    for (const std::string& model :
         {"HGT", "HetGNN", "GCN", "GAT", "SimpleHGN"}) {
      rows.push_back({{model, MethodKind::kBaseline, model,
                       CompletionOpType::kOneHot},
                      first_second_group});
      first_second_group = false;
    }
    rows.push_back({{"SimpleHGN-AutoAC", MethodKind::kAutoAc, "SimpleHGN",
                     CompletionOpType::kOneHot}});

    TablePrinter table({"Model", "Macro-F1", "Micro-F1", "Runtime(Total)",
                        "Runtime(Per epoch)"});
    AggregateResult best_baseline;
    AggregateResult autoac_best;
    for (const Row& row : rows) {
      ExperimentConfig config = options.BaseConfig();
      bench::ApplyModelDefaults(config, row.spec.model);
      AggregateResult result =
          EvaluateMethod(task, ctx, config, row.spec, options.seeds);
      if (row.separator_before) table.AddSeparator();
      table.AddRow({row.spec.display_name, Cell(result.macro_f1),
                    Cell(result.micro_f1), bench::Secs(result.total_seconds),
                    bench::Secs(result.epoch_seconds)});
      bool is_autoac = row.spec.kind == MethodKind::kAutoAc;
      if (is_autoac && result.micro_f1.mean > autoac_best.micro_f1.mean) {
        autoac_best = result;
      }
      if (!is_autoac && result.micro_f1.mean > best_baseline.micro_f1.mean) {
        best_baseline = result;
      }
    }
    std::printf("Dataset: %s (%lld nodes, %lld edges)\n",
                dataset.name.c_str(),
                static_cast<long long>(dataset.graph->num_nodes()),
                static_cast<long long>(dataset.graph->num_edges()));
    table.Print(std::cout);
    if (!autoac_best.micro_samples.empty() &&
        !best_baseline.micro_samples.empty()) {
      std::printf("p-value (best AutoAC vs best baseline): Macro %s  Micro %s\n",
                  FormatPValue(WelchTTestPValue(autoac_best.macro_samples,
                                                best_baseline.macro_samples))
                      .c_str(),
                  FormatPValue(WelchTTestPValue(autoac_best.micro_samples,
                                                best_baseline.micro_samples))
                      .c_str());
    }
    std::printf("\n");
  }
  return 0;
}
