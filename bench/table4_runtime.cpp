// Reproduces Table IV: end-to-end runtime breakdown (pre-learn / search /
// train) of AutoAC vs HGNN-AC on both host models, with the speedup factor.
// The expected shape: HGNN-AC's topological-embedding pre-learning dominates
// its end-to-end cost while AutoAC has no pre-learning stage at all.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf(
      "Table IV: end-to-end runtime overhead of AutoAC and HGNN-AC "
      "(scale=%.2f, seeds=%lld)\n\n",
      options.scale, static_cast<long long>(options.seeds));

  TablePrinter table({"Dataset", "Model", "Pre-learn(s)", "Search(s)",
                      "Train/Retrain(s)", "Total(s)", "Speedup"});
  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    for (const std::string& host : {"SimpleHGN", "MAGNN"}) {
      ExperimentConfig config = options.BaseConfig();
      bench::ApplyModelDefaults(config, host);

      MethodSpec hgnnac{host + "-HGNNAC", MethodKind::kHgnnAc, host,
                        CompletionOpType::kOneHot};
      AggregateResult hg =
          EvaluateMethod(task, ctx, config, hgnnac, options.seeds);
      MethodSpec autoac_spec{host + "-AutoAC", MethodKind::kAutoAc, host,
                             CompletionOpType::kOneHot};
      AggregateResult au =
          EvaluateMethod(task, ctx, config, autoac_spec, options.seeds);

      double hg_total = hg.mean_times.Total();
      double au_total = au.mean_times.Total();
      char speedup[32];
      std::snprintf(speedup, sizeof(speedup), "%.1fx",
                    au_total > 0 ? hg_total / au_total : 0.0);
      table.AddRow({dataset.name, hgnnac.display_name,
                    bench::Secs(hg.mean_times.prelearn_seconds), "/",
                    bench::Secs(hg.mean_times.train_seconds),
                    bench::Secs(hg_total), ""});
      table.AddRow({dataset.name, autoac_spec.display_name, "/",
                    bench::Secs(au.mean_times.search_seconds),
                    bench::Secs(au.mean_times.train_seconds),
                    bench::Secs(au_total), speedup});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
