// Reproduces Figure 4: convergence of the unsupervised clustering loss
// L_GmoC during the search, printed as a per-epoch series (plus an ASCII
// sparkline) for each dataset. Expected shape: a stable decreasing trend.

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

namespace {

std::string Sparkline(const std::vector<float>& series) {
  static const char* kLevels[] = {" ", ".", ":", "-", "=", "+", "*", "#"};
  if (series.empty()) return "";
  float lo = series[0], hi = series[0];
  for (float v : series) {
    lo = std::min(lo, v);
    hi = std::max(hi, v);
  }
  float span = std::max(hi - lo, 1e-9f);
  std::string out;
  for (float v : series) {
    int level = static_cast<int>(7.99f * (v - lo) / span);
    out += kLevels[level];
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::string model = flags.GetString("model", "SimpleHGN");
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf("Figure 4: convergence of L_GmoC during search (%s, scale=%.2f)\n\n",
              model.c_str(), options.scale);

  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    ExperimentConfig config = options.BaseConfig();
    bench::ApplyModelDefaults(config, model);
    SearchResult search = SearchCompletionOps(task, ctx, config);

    std::printf("Dataset: %s\n", dataset.name.c_str());
    std::printf("  epoch: L_GmoC\n");
    for (size_t e = 0; e < search.gmoc_trace.size(); ++e) {
      std::printf("  %5zu: %+.4f\n", e, search.gmoc_trace[e]);
    }
    std::printf("  trend: [%s]\n", Sparkline(search.gmoc_trace).c_str());
    if (search.gmoc_trace.size() >= 4) {
      size_t n = search.gmoc_trace.size();
      float head = (search.gmoc_trace[0] + search.gmoc_trace[1]) / 2;
      float tail =
          (search.gmoc_trace[n - 1] + search.gmoc_trace[n - 2]) / 2;
      std::printf("  first-half mean %.4f -> last-half mean %.4f (%s)\n\n",
                  head, tail, tail < head ? "decreasing" : "non-decreasing");
    }
  }
  return 0;
}
