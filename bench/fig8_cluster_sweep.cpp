// Reproduces Figure 8: sensitivity of AutoAC to the number of clusters M.
// Expected shape: stable performance across M (robustness).

#include "bench_common.h"

using namespace autoac;
using bench::BenchOptions;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  BenchOptions options = BenchOptions::FromFlags(flags);
  std::string model = flags.GetString("model", "SimpleHGN");
  std::vector<std::string> datasets = {"dblp", "acm", "imdb"};
  if (flags.Has("dataset")) datasets = {flags.GetString("dataset", "dblp")};

  std::printf("Figure 8: sensitivity to the number of clusters M "
              "(%s, scale=%.2f, seeds=%lld)\n\n",
              model.c_str(), options.scale,
              static_cast<long long>(options.seeds));

  TablePrinter table({"Dataset", "M", "Macro-F1", "Micro-F1"});
  for (const std::string& name : datasets) {
    Dataset dataset = options.LoadDataset(name);
    TaskData task = MakeNodeTask(dataset);
    ModelContext ctx = BuildModelContext(dataset.graph);
    for (int64_t m : {4, 8, 12, 16}) {
      ExperimentConfig config = options.BaseConfig();
      bench::ApplyModelDefaults(config, model);
      config.num_clusters = m;
      MethodSpec spec{model + "-AutoAC", MethodKind::kAutoAc, model,
                      CompletionOpType::kOneHot};
      AggregateResult result =
          EvaluateMethod(task, ctx, config, spec, options.seeds);
      table.AddRow({dataset.name, std::to_string(m), Cell(result.macro_f1),
                    Cell(result.micro_f1)});
    }
    table.AddSeparator();
  }
  table.Print(std::cout);
  return 0;
}
