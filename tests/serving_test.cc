// Tests for the frozen-model export + inference serving subsystem
// (src/serving/, DESIGN.md §10): artifact round trips, corruption and
// fingerprint refusal, tape-free forward identity, thread-count
// invariance, and the batched request/response front-end.

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "autoac/trainer.h"
#include "data/hgb_datasets.h"
#include "gtest/gtest.h"
#include "models/factory.h"
#include "serving/frozen_model.h"
#include "serving/inference_session.h"
#include "serving/server.h"
#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/shutdown.h"

namespace autoac {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

int64_t CountMissing(const HeteroGraph& graph) {
  int64_t missing = 0;
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (graph.node_type(t).attributes.numel() == 0) {
      missing += graph.node_type(t).count;
    }
  }
  return missing;
}

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0);
}

// One small trained run shared by every test: training (and freezing) once
// is the expensive part; the tests only read the result.
class ServingEnvironment {
 public:
  static ServingEnvironment& Get() {
    static ServingEnvironment* env = new ServingEnvironment();
    return *env;
  }

  const TaskData& data() const { return data_; }
  const ModelContext& ctx() const { return ctx_; }
  const ExperimentConfig& config() const { return config_; }
  const RunResult& run() const { return run_; }
  const FrozenModel& frozen() const { return frozen_; }

 private:
  ServingEnvironment() {
    DatasetOptions options;
    options.scale = 0.05;
    dataset_ = MakeDataset("dblp", options);
    data_ = MakeNodeTask(dataset_);
    ctx_ = BuildModelContext(data_.graph);
    config_.model_name = "SimpleHGN";
    config_.hidden_dim = 16;
    config_.train_epochs = 6;
    config_.eval_every = 2;
    config_.patience = 100;
    config_.seed = 3;
    config_.capture_final_params = true;
    run_ = TrainFixedCompletion(
        data_, ctx_, config_,
        UniformAssignment(CountMissing(*data_.graph),
                          CompletionOpType::kOneHot));
    StatusOr<FrozenModel> frozen =
        FreezeTrainedRun(data_, ctx_, config_, run_);
    AUTOAC_CHECK(frozen.ok()) << frozen.status().message();
    frozen_ = frozen.TakeValue();
  }

  Dataset dataset_;
  TaskData data_;
  ModelContext ctx_;
  ExperimentConfig config_;
  RunResult run_;
  FrozenModel frozen_;
};

TEST(FreezeTest, RequiresCapturedParamsAndAssignment) {
  const ServingEnvironment& env = ServingEnvironment::Get();

  RunResult no_params = env.run();
  no_params.final_params.clear();
  StatusOr<FrozenModel> frozen =
      FreezeTrainedRun(env.data(), env.ctx(), env.config(), no_params);
  ASSERT_FALSE(frozen.ok());
  EXPECT_NE(frozen.status().message().find("no final parameters"),
            std::string::npos);

  RunResult no_ops = env.run();
  no_ops.searched_ops.clear();
  EXPECT_FALSE(
      FreezeTrainedRun(env.data(), env.ctx(), env.config(), no_ops).ok());

  RunResult short_ops = env.run();
  short_ops.searched_ops.pop_back();
  EXPECT_FALSE(
      FreezeTrainedRun(env.data(), env.ctx(), env.config(), short_ops).ok());
}

TEST(FreezeTest, HeaderMirrorsConfigAndData) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  const FrozenModel& frozen = env.frozen();
  EXPECT_EQ(frozen.model_name, env.config().model_name);
  EXPECT_EQ(frozen.hidden_dim, env.config().hidden_dim);
  EXPECT_EQ(frozen.seed, env.config().seed);
  EXPECT_EQ(frozen.num_classes, env.data().graph->num_classes());
  EXPECT_EQ(frozen.h0.rows(), env.data().graph->num_nodes());
  EXPECT_EQ(frozen.h0.cols(), env.config().hidden_dim);
  EXPECT_EQ(frozen.op_of, env.run().searched_ops);
  EXPECT_EQ(frozen.fingerprint, ComputeFrozenFingerprint(frozen));
}

// The tape-free serving forward must be bitwise identical to the taped
// in-process evaluation forward: same ops in the same order, only the
// autograd bookkeeping removed.
TEST(InferenceSessionTest, MatchesTapedForwardBitwise) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());

  const FrozenModel& frozen = env.frozen();
  ModelConfig model_config;
  model_config.in_dim = frozen.hidden_dim;
  model_config.hidden_dim = frozen.hidden_dim;
  model_config.out_dim = frozen.hidden_dim;
  model_config.num_layers = frozen.num_layers;
  model_config.num_heads = frozen.num_heads;
  model_config.dropout = frozen.dropout;
  model_config.negative_slope = frozen.negative_slope;
  Rng init_rng(frozen.seed);
  ModelPtr model = MakeModel(frozen.model_name, model_config, env.ctx(),
                             init_rng, /*l2_normalize_output=*/false);
  std::vector<VarPtr> params = model->Parameters();
  ASSERT_EQ(params.size(), frozen.model_params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = frozen.model_params[i];
  }
  ASSERT_TRUE(GradModeEnabled());
  Rng fwd_rng(frozen.seed);
  VarPtr h0 = MakeConst(frozen.h0);
  VarPtr h = model->Forward(env.ctx(), h0, /*training=*/false, fwd_rng);
  VarPtr taped = AddBias(MatMul(h, MakeConst(frozen.classifier_weight)),
                         MakeConst(frozen.classifier_bias));
  EXPECT_FALSE(taped->parents.empty());  // the reference really is taped

  ExpectTensorsBitwiseEqual(session.logits(), taped->value);
}

// Acceptance gate: the serving forward allocates zero backward closures.
TEST(InferenceSessionTest, ForwardAllocatesZeroBackwardClosures) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  int64_t before = BackwardClosuresAllocated();
  session.RecomputeLogits();
  EXPECT_EQ(BackwardClosuresAllocated(), before);
}

TEST(InferenceSessionTest, PredictionsThreadCountInvariant) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  SetNumThreads(1);
  InferenceSession session(env.frozen());
  Tensor single = session.logits();
  StatusOr<InferenceSession::Prediction> p1 = session.Predict(0);
  SetNumThreads(4);
  session.RecomputeLogits();
  StatusOr<InferenceSession::Prediction> p4 = session.Predict(0);
  SetNumThreads(0);
  ExpectTensorsBitwiseEqual(single, session.logits());
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p4.ok());
  EXPECT_EQ(p1.value().label, p4.value().label);
  EXPECT_EQ(p1.value().score, p4.value().score);
}

TEST(InferenceSessionTest, PredictRejectsOutOfRangeNodes) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  EXPECT_FALSE(session.Predict(-1).ok());
  EXPECT_FALSE(session.Predict(session.num_targets()).ok());
  ASSERT_TRUE(session.Predict(session.num_targets() - 1).ok());
}

// Export → load → predict must be bitwise identical to the in-process
// session, at one thread and at four.
TEST(FrozenModelIoTest, RoundTripPredictionsBitwiseIdentical) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("roundtrip.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), path).ok());
  StatusOr<FrozenModel> loaded = LoadFrozenModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  const FrozenModel& a = env.frozen();
  const FrozenModel& b = loaded.value();
  EXPECT_EQ(a.model_name, b.model_name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.op_of, b.op_of);
  ExpectTensorsBitwiseEqual(a.h0, b.h0);
  ASSERT_EQ(a.model_params.size(), b.model_params.size());
  for (size_t i = 0; i < a.model_params.size(); ++i) {
    ExpectTensorsBitwiseEqual(a.model_params[i], b.model_params[i]);
  }
  ExpectTensorsBitwiseEqual(a.classifier_weight, b.classifier_weight);
  ExpectTensorsBitwiseEqual(a.classifier_bias, b.classifier_bias);

  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    InferenceSession original(a);
    InferenceSession reloaded(loaded.value());
    ExpectTensorsBitwiseEqual(original.logits(), reloaded.logits());
    for (int64_t node = 0; node < original.num_targets();
         node += original.num_targets() / 7 + 1) {
      StatusOr<InferenceSession::Prediction> pa = original.Predict(node);
      StatusOr<InferenceSession::Prediction> pb = reloaded.Predict(node);
      ASSERT_TRUE(pa.ok());
      ASSERT_TRUE(pb.ok());
      EXPECT_EQ(pa.value().label, pb.value().label);
      EXPECT_EQ(pa.value().score, pb.value().score);
    }
  }
  SetNumThreads(0);
  std::remove(path.c_str());
}

// A coherent edit — payload rewritten with a fresh CRC but without
// re-freezing — must be caught by the content fingerprint.
TEST(FrozenModelIoTest, FingerprintMismatchIsRefused) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("tampered.aacm");

  // Stored fingerprint patched: the content no longer matches it.
  FrozenModel stale = env.frozen();
  stale.fingerprint ^= 0x1;
  ASSERT_TRUE(SaveFrozenModel(stale, path).ok());
  StatusOr<FrozenModel> loaded = LoadFrozenModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("fingerprint"),
            std::string::npos);

  // Content edited under an unchanged stored fingerprint: the CRC is
  // recomputed by the (honest) writer, so only the fingerprint check can
  // notice the drift.
  FrozenModel edited = env.frozen();
  edited.classifier_bias.data()[0] += 1.0f;
  ASSERT_TRUE(SaveFrozenModel(edited, path).ok());
  loaded = LoadFrozenModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("fingerprint"),
            std::string::npos);
  std::remove(path.c_str());
}

// Same discipline as SerializationTest.ByteFlipFuzzAlwaysFailsCleanly, on
// the serving artifact: every single-byte flip, truncation, and trailing
// byte must yield a Status error, never a parse or a crash.
TEST(FrozenModelIoTest, ByteFlipFuzzAlwaysFailsCleanly) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string clean = TempPath("fuzz_clean.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), clean).ok());
  std::string bytes;
  {
    std::ifstream in(clean, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 20u);

  std::string mutant_path = TempPath("fuzz_mutant.aacm");
  size_t stride = bytes.size() / 97 + 1;
  size_t header_end = 20;  // 4 magic + 4 version + 8 size + 4 crc
  for (size_t pos = 0; pos < bytes.size();
       pos += (pos < header_end ? 1 : stride)) {
    std::string mutant = bytes;
    mutant[pos] ^= 0x40;
    {
      std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
      out.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    StatusOr<FrozenModel> loaded = LoadFrozenModel(mutant_path);
    EXPECT_FALSE(loaded.ok())
        << "byte flip at offset " << pos << " was not detected";
    if (pos >= header_end) {
      EXPECT_NE(loaded.status().message().find("checksum mismatch"),
                std::string::npos)
          << "offset " << pos << ": " << loaded.status().message();
    }
  }

  for (size_t len : {size_t{0}, size_t{3}, size_t{11}, size_t{19},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_FALSE(LoadFrozenModel(mutant_path).ok())
        << "truncation to " << len << " bytes was not detected";
  }

  {
    std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "extra";
  }
  EXPECT_FALSE(LoadFrozenModel(mutant_path).ok());

  std::remove(clean.c_str());
  std::remove(mutant_path.c_str());
}

TEST(ServeProtocolTest, ParsesWellFormedRequests) {
  ServeRequest request;
  std::string error;

  ASSERT_TRUE(
      ParseServeRequestLine(R"({"id": "r1", "node": 42})", &request, &error))
      << error;
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.node, 42);

  // Key order and whitespace are free; a numeric id is echoed as a string.
  ASSERT_TRUE(ParseServeRequestLine("  { \"node\" : 7 , \"id\" : 3 }  ",
                                    &request, &error))
      << error;
  EXPECT_EQ(request.id, "3");
  EXPECT_EQ(request.node, 7);

  // id is optional.
  ASSERT_TRUE(ParseServeRequestLine(R"({"node": 0})", &request, &error))
      << error;
  EXPECT_EQ(request.id, "");
  EXPECT_EQ(request.node, 0);
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  ServeRequest request;
  std::string error;
  const char* bad[] = {
      "",                              // not an object
      "hello",                         // not JSON
      "{}",                            // missing node
      R"({"id": "x"})",                // missing node
      R"({"node": "five"})",           // node must be an integer
      R"({"node": 1, "extra": 2})",    // unknown keys fail loudly
      R"({"node": 1} trailing)",       // trailing characters
      R"({"id": "unterminated)",       // unterminated string
      R"({"node": 1,})",               // dangling comma
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseServeRequestLine(line, &request, &error))
        << "accepted: " << line;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ServeProtocolTest, ResponseFormatting) {
  InferenceSession::Prediction p;
  p.node = 4;
  p.label = 2;
  p.score = 1.5f;
  EXPECT_EQ(FormatServeResponse("r9", p, 120),
            "{\"id\":\"r9\",\"node\":4,\"label\":2,\"score\":1.5,"
            "\"latency_us\":120}\n");
  EXPECT_EQ(FormatServeError("x\"y", "bad \"input\""),
            "{\"id\":\"x\\\"y\",\"error\":\"bad \\\"input\\\"\"}\n");
}

// End-to-end over a real TCP loopback socket: valid, malformed, and
// out-of-range requests each get the right response line, the stats
// counters add up, and Stop() quiesces the server.
TEST(InferenceServerTest, EndToEndOverLoopbackTcp) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  InferenceServer server(&session, options);
  Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.message();
  ASSERT_GT(server.port(), 0);
  std::thread serving([&] { server.Serve(); });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval timeout{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::string out =
      "{\"id\": \"a\", \"node\": 0}\n"
      "this is not json\n"
      "{\"id\": \"b\", \"node\": 1}\n"
      "{\"id\": \"big\", \"node\": 999999999}\n";
  ASSERT_EQ(::send(fd, out.data(), out.size(), 0),
            static_cast<ssize_t>(out.size()));

  // Four response lines come back; the reader answers malformed lines
  // directly while the batcher answers the rest, so order is not fixed.
  std::string received;
  size_t newlines = 0;
  char buf[4096];
  while (newlines < 4) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "timed out waiting for responses";
    received.append(buf, static_cast<size_t>(n));
    newlines = static_cast<size_t>(
        std::count(received.begin(), received.end(), '\n'));
  }
  ::close(fd);
  EXPECT_NE(received.find("\"id\":\"a\",\"node\":0,\"label\":"),
            std::string::npos)
      << received;
  EXPECT_NE(received.find("\"id\":\"b\",\"node\":1,\"label\":"),
            std::string::npos)
      << received;
  EXPECT_NE(received.find("\"id\":\"big\",\"error\":\"node id"),
            std::string::npos)
      << received;
  EXPECT_NE(received.find("expected a JSON object"), std::string::npos)
      << received;

  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.connections, 1);
  EXPECT_EQ(stats.requests, 3);   // parsed OK (incl. the out-of-range node)
  EXPECT_EQ(stats.responses, 2);  // successful predictions only
  EXPECT_EQ(stats.malformed, 1);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.batched_requests, 3);
}

// Serve() also honors the process-wide cooperative shutdown flag.
TEST(InferenceServerTest, HonorsProcessShutdownFlag) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  ServerOptions options;
  options.tcp_port = 0;
  InferenceServer server(&session, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  RequestShutdown();
  serving.join();
  ClearShutdownRequestForTest();
}

}  // namespace
}  // namespace autoac
