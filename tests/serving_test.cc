// Tests for the frozen-model export + inference serving subsystem
// (src/serving/, DESIGN.md §10): artifact round trips, corruption and
// fingerprint refusal, tape-free forward identity, thread-count
// invariance, the batched request/response front-end, multi-model routing
// through ModelRegistry, hot artifact reload, deadline expiry, and the
// connection-lifecycle hardening (fd reaping, bounded read buffers,
// interrupted-write retries).

#include <dirent.h>
#include <netinet/in.h>
#include <pthread.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <clocale>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <future>
#include <map>
#include <memory>
#include <sstream>
#include <thread>

#include "autoac/trainer.h"
#include "data/hgb_datasets.h"
#include "graph/mutable_graph.h"
#include "gtest/gtest.h"
#include "models/factory.h"
#include "serving/admission.h"
#include "serving/feed.h"
#include "serving/frozen_model.h"
#include "serving/inference_session.h"
#include "serving/model_registry.h"
#include "serving/mutable_session.h"
#include "serving/server.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/shutdown.h"

namespace autoac {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

int64_t CountMissing(const HeteroGraph& graph) {
  int64_t missing = 0;
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (graph.node_type(t).attributes.numel() == 0) {
      missing += graph.node_type(t).count;
    }
  }
  return missing;
}

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0);
}

/// A frozen model with the same graph/weights but a perturbed classifier
/// bias (and the matching recomputed fingerprint): a valid, loadable
/// artifact whose predictions differ from the base model's.
FrozenModel MakeVariantFrozen(const FrozenModel& base, float bias_delta) {
  FrozenModel variant = base;
  for (int64_t c = 0; c < variant.classifier_bias.numel(); ++c) {
    variant.classifier_bias.data()[c] += (c == 0 ? bias_delta : -bias_delta);
  }
  variant.fingerprint = ComputeFrozenFingerprint(variant);
  return variant;
}

int ConnectLoopback(int port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  timeval timeout{20, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Reads complete newline-terminated lines from fd until `count` arrived.
std::vector<std::string> RecvLines(int fd, size_t count) {
  std::vector<std::string> lines;
  std::string pending;
  char buf[4096];
  while (lines.size() < count) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // timeout or peer gone; caller asserts on size
    pending.append(buf, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      lines.push_back(pending.substr(start, nl - start));
      start = nl + 1;
    }
    pending.erase(0, start);
  }
  return lines;
}

/// Latency differs per request; strip it so response lines compare equal.
std::string StripLatency(const std::string& line) {
  size_t pos = line.find(",\"latency_us\":");
  if (pos == std::string::npos) return line;
  size_t end = line.find('}', pos);
  return line.substr(0, pos) + line.substr(end);
}

/// Maps response lines by their echoed id (responses may interleave across
/// models within a batch).
std::map<std::string, std::string> ById(
    const std::vector<std::string>& lines) {
  std::map<std::string, std::string> by_id;
  for (const std::string& line : lines) {
    size_t start = line.find("\"id\":\"") + 6;
    size_t end = line.find('"', start);
    by_id[line.substr(start, end - start)] = StripLatency(line);
  }
  return by_id;
}

/// The exact response line `session` would produce for (id, node), latency
/// stripped — the bitwise-identity reference for routing tests.
std::string ExpectedLine(const InferenceSession& session,
                         const std::string& id, int64_t node) {
  StatusOr<InferenceSession::Prediction> p = session.Predict(node);
  AUTOAC_CHECK(p.ok()) << p.status().message();
  std::string line = FormatServeResponse(id, p.value(), 0);
  line.pop_back();  // trailing newline, RecvLines strips it
  return StripLatency(line);
}

int CountOpenFds() {
  DIR* d = ::opendir("/proc/self/fd");
  if (d == nullptr) return -1;
  int count = 0;
  while (::readdir(d) != nullptr) ++count;
  ::closedir(d);
  return count;
}

// One small trained run shared by every test: training (and freezing) once
// is the expensive part; the tests only read the result.
class ServingEnvironment {
 public:
  static ServingEnvironment& Get() {
    static ServingEnvironment* env = new ServingEnvironment();
    return *env;
  }

  const TaskData& data() const { return data_; }
  const ModelContext& ctx() const { return ctx_; }
  const ExperimentConfig& config() const { return config_; }
  const RunResult& run() const { return run_; }
  const FrozenModel& frozen() const { return frozen_; }

 private:
  ServingEnvironment() {
    DatasetOptions options;
    options.scale = 0.05;
    dataset_ = MakeDataset("dblp", options);
    data_ = MakeNodeTask(dataset_);
    ctx_ = BuildModelContext(data_.graph);
    config_.model_name = "SimpleHGN";
    config_.hidden_dim = 16;
    config_.train_epochs = 6;
    config_.eval_every = 2;
    config_.patience = 100;
    config_.seed = 3;
    config_.capture_final_params = true;
    run_ = TrainFixedCompletion(
        data_, ctx_, config_,
        UniformAssignment(CountMissing(*data_.graph),
                          CompletionOpType::kOneHot));
    StatusOr<FrozenModel> frozen =
        FreezeTrainedRun(data_, ctx_, config_, run_);
    AUTOAC_CHECK(frozen.ok()) << frozen.status().message();
    frozen_ = frozen.TakeValue();
  }

  Dataset dataset_;
  TaskData data_;
  ModelContext ctx_;
  ExperimentConfig config_;
  RunResult run_;
  FrozenModel frozen_;
};

TEST(FreezeTest, RequiresCapturedParamsAndAssignment) {
  const ServingEnvironment& env = ServingEnvironment::Get();

  RunResult no_params = env.run();
  no_params.final_params.clear();
  StatusOr<FrozenModel> frozen =
      FreezeTrainedRun(env.data(), env.ctx(), env.config(), no_params);
  ASSERT_FALSE(frozen.ok());
  EXPECT_NE(frozen.status().message().find("no final parameters"),
            std::string::npos);

  RunResult no_ops = env.run();
  no_ops.searched_ops.clear();
  EXPECT_FALSE(
      FreezeTrainedRun(env.data(), env.ctx(), env.config(), no_ops).ok());

  RunResult short_ops = env.run();
  short_ops.searched_ops.pop_back();
  EXPECT_FALSE(
      FreezeTrainedRun(env.data(), env.ctx(), env.config(), short_ops).ok());
}

TEST(FreezeTest, HeaderMirrorsConfigAndData) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  const FrozenModel& frozen = env.frozen();
  EXPECT_EQ(frozen.model_name, env.config().model_name);
  EXPECT_EQ(frozen.hidden_dim, env.config().hidden_dim);
  EXPECT_EQ(frozen.seed, env.config().seed);
  EXPECT_EQ(frozen.num_classes, env.data().graph->num_classes());
  EXPECT_EQ(frozen.h0.rows(), env.data().graph->num_nodes());
  EXPECT_EQ(frozen.h0.cols(), env.config().hidden_dim);
  EXPECT_EQ(frozen.op_of, env.run().searched_ops);
  EXPECT_EQ(frozen.fingerprint, ComputeFrozenFingerprint(frozen));
}

// The tape-free serving forward must be bitwise identical to the taped
// in-process evaluation forward: same ops in the same order, only the
// autograd bookkeeping removed.
TEST(InferenceSessionTest, MatchesTapedForwardBitwise) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());

  const FrozenModel& frozen = env.frozen();
  ModelConfig model_config;
  model_config.in_dim = frozen.hidden_dim;
  model_config.hidden_dim = frozen.hidden_dim;
  model_config.out_dim = frozen.hidden_dim;
  model_config.num_layers = frozen.num_layers;
  model_config.num_heads = frozen.num_heads;
  model_config.dropout = frozen.dropout;
  model_config.negative_slope = frozen.negative_slope;
  Rng init_rng(frozen.seed);
  ModelPtr model = MakeModel(frozen.model_name, model_config, env.ctx(),
                             init_rng, /*l2_normalize_output=*/false);
  std::vector<VarPtr> params = model->Parameters();
  ASSERT_EQ(params.size(), frozen.model_params.size());
  for (size_t i = 0; i < params.size(); ++i) {
    params[i]->value = frozen.model_params[i];
  }
  ASSERT_TRUE(GradModeEnabled());
  Rng fwd_rng(frozen.seed);
  VarPtr h0 = MakeConst(frozen.h0);
  VarPtr h = model->Forward(env.ctx(), h0, /*training=*/false, fwd_rng);
  VarPtr taped = AddBias(MatMul(h, MakeConst(frozen.classifier_weight)),
                         MakeConst(frozen.classifier_bias));
  EXPECT_FALSE(taped->parents.empty());  // the reference really is taped

  ExpectTensorsBitwiseEqual(session.logits(), taped->value);
}

// Acceptance gate: the serving forward allocates zero backward closures.
TEST(InferenceSessionTest, ForwardAllocatesZeroBackwardClosures) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  int64_t before = BackwardClosuresAllocated();
  session.RecomputeLogits();
  EXPECT_EQ(BackwardClosuresAllocated(), before);
}

TEST(InferenceSessionTest, PredictionsThreadCountInvariant) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  SetNumThreads(1);
  InferenceSession session(env.frozen());
  Tensor single = session.logits();
  StatusOr<InferenceSession::Prediction> p1 = session.Predict(0);
  SetNumThreads(4);
  session.RecomputeLogits();
  StatusOr<InferenceSession::Prediction> p4 = session.Predict(0);
  SetNumThreads(0);
  ExpectTensorsBitwiseEqual(single, session.logits());
  ASSERT_TRUE(p1.ok());
  ASSERT_TRUE(p4.ok());
  EXPECT_EQ(p1.value().label, p4.value().label);
  EXPECT_EQ(p1.value().score, p4.value().score);
}

TEST(InferenceSessionTest, PredictRejectsOutOfRangeNodes) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  EXPECT_FALSE(session.Predict(-1).ok());
  EXPECT_FALSE(session.Predict(session.num_targets()).ok());
  ASSERT_TRUE(session.Predict(session.num_targets() - 1).ok());
}

// Acceptance gate for the compiled forward (DESIGN.md §11): with the
// default options the session compiles the capture, and the compiled
// RecomputeLogits is bitwise identical to the interpreted one at one
// thread and at four.
TEST(InferenceSessionTest, CompiledMatchesInterpretedBitwise) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession::Options interpreted_only;
  interpreted_only.compile = false;
  InferenceSession interpreted(env.frozen(), interpreted_only);
  ASSERT_EQ(interpreted.compiled_graph(), nullptr);
  InferenceSession compiled(env.frozen());
  ASSERT_NE(compiled.compiled_graph(), nullptr);

  SetNumThreads(1);
  interpreted.RecomputeLogits();
  compiled.RecomputeLogits();
  ExpectTensorsBitwiseEqual(compiled.logits(), interpreted.logits());
  SetNumThreads(4);
  interpreted.RecomputeLogits();
  compiled.RecomputeLogits();
  ExpectTensorsBitwiseEqual(compiled.logits(), interpreted.logits());
  SetNumThreads(0);
}

// Acceptance gate: the compiled steady state runs entirely out of the
// preplanned arena — recomputing the logits allocates zero tensor buffers.
TEST(InferenceSessionTest, CompiledRecomputeAllocatesZeroTensorBuffers) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  ASSERT_NE(session.compiled_graph(), nullptr);
  session.RecomputeLogits();  // warm once past any first-run sizing
  int64_t before = TensorBuffersAllocated();
  for (int run = 0; run < 3; ++run) session.RecomputeLogits();
  EXPECT_EQ(TensorBuffersAllocated(), before);
}

// Acceptance gate (DESIGN.md §14): the head-only batch forward answers
// exactly what per-row Predict answers — bit for bit, at one thread and at
// four, for batch sizes below, at, and above the kMaxBatchRows chunk.
TEST(InferenceSessionTest, PredictBatchBitwiseMatchesPredict) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  ASSERT_NE(session.batch_head_graph(), nullptr);
  const int64_t targets = session.num_targets();
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    for (int64_t size : {int64_t{1}, int64_t{5},
                         InferenceSession::kMaxBatchRows,
                         InferenceSession::kMaxBatchRows * 2 + 3}) {
      std::vector<int64_t> nodes(size);
      for (int64_t i = 0; i < size; ++i) nodes[i] = (i * 7 + 1) % targets;
      StatusOr<std::vector<InferenceSession::Prediction>> batch =
          session.PredictBatch(nodes);
      ASSERT_TRUE(batch.ok()) << batch.status().message();
      ASSERT_EQ(static_cast<int64_t>(batch.value().size()), size);
      for (int64_t i = 0; i < size; ++i) {
        StatusOr<InferenceSession::Prediction> single =
            session.Predict(nodes[i]);
        ASSERT_TRUE(single.ok());
        EXPECT_EQ(batch.value()[i].node, nodes[i]);
        EXPECT_EQ(batch.value()[i].label, single.value().label);
        EXPECT_EQ(batch.value()[i].score, single.value().score)
            << "row " << i << " at " << threads << " threads";
      }
    }
  }
  SetNumThreads(0);
}

TEST(InferenceSessionTest, PredictBatchFailsWholeRequestOnBadId) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  EXPECT_FALSE(session.PredictBatch({0, session.num_targets()}).ok());
  EXPECT_FALSE(session.PredictBatch({0, -1}).ok());
  EXPECT_TRUE(session.PredictBatch({0, session.num_targets() - 1}).ok());
}

// Interpreted sessions have no compiled batch head; PredictBatch must fall
// back to per-row lookups with identical answers.
TEST(InferenceSessionTest, PredictBatchFallsBackWithoutCompiledHead) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession::Options options;
  options.compile = false;
  InferenceSession session(env.frozen(), options);
  ASSERT_EQ(session.batch_head_graph(), nullptr);
  std::vector<int64_t> nodes = {0, 3, 1, session.num_targets() - 1};
  StatusOr<std::vector<InferenceSession::Prediction>> batch =
      session.PredictBatch(nodes);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    StatusOr<InferenceSession::Prediction> single = session.Predict(nodes[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.value()[i].label, single.value().label);
    EXPECT_EQ(batch.value()[i].score, single.value().score);
  }
}

// The batch buffers are preallocated: steady-state PredictBatch allocates
// zero tensor buffers, like the compiled RecomputeLogits.
TEST(InferenceSessionTest, PredictBatchSteadyStateAllocatesZeroTensorBuffers) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  InferenceSession session(env.frozen());
  ASSERT_NE(session.batch_head_graph(), nullptr);
  std::vector<int64_t> nodes(InferenceSession::kMaxBatchRows);
  for (size_t i = 0; i < nodes.size(); ++i) {
    nodes[i] = static_cast<int64_t>(i) % session.num_targets();
  }
  ASSERT_TRUE(session.PredictBatch(nodes).ok());  // warm once
  int64_t before = TensorBuffersAllocated();
  for (int run = 0; run < 3; ++run) {
    ASSERT_TRUE(session.PredictBatch(nodes).ok());
  }
  EXPECT_EQ(TensorBuffersAllocated(), before);
}

TEST(FrozenModelIoTest, PeekFingerprintMatchesWithoutFullParse) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("peek.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), path).ok());

  StatusOr<uint64_t> peeked = PeekFrozenFingerprint(path);
  ASSERT_TRUE(peeked.ok()) << peeked.status().message();
  EXPECT_EQ(peeked.value(), env.frozen().fingerprint);
  EXPECT_FALSE(PeekFrozenFingerprint(TempPath("absent.aacm")).ok());
  std::remove(path.c_str());
}

TEST(ModelRegistryTest, SessionOptionsReachLoadedSessions) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("registry_options.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), path).ok());

  {
    ModelRegistry registry;  // default options: compiled sessions
    ASSERT_TRUE(registry.LoadFromSpec("m=" + path, "").ok());
    EXPECT_NE(registry.Lookup("m")->compiled_graph(), nullptr);
  }
  {
    ModelRegistry registry;
    InferenceSession::Options options;
    options.compile = false;
    registry.set_session_options(options);
    ASSERT_TRUE(registry.LoadFromSpec("m=" + path, "").ok());
    EXPECT_EQ(registry.Lookup("m")->compiled_graph(), nullptr);
  }
  std::remove(path.c_str());
}

// Export → load → predict must be bitwise identical to the in-process
// session, at one thread and at four.
TEST(FrozenModelIoTest, RoundTripPredictionsBitwiseIdentical) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("roundtrip.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), path).ok());
  StatusOr<FrozenModel> loaded = LoadFrozenModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();

  const FrozenModel& a = env.frozen();
  const FrozenModel& b = loaded.value();
  EXPECT_EQ(a.model_name, b.model_name);
  EXPECT_EQ(a.seed, b.seed);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.op_of, b.op_of);
  ExpectTensorsBitwiseEqual(a.h0, b.h0);
  ASSERT_EQ(a.model_params.size(), b.model_params.size());
  for (size_t i = 0; i < a.model_params.size(); ++i) {
    ExpectTensorsBitwiseEqual(a.model_params[i], b.model_params[i]);
  }
  ExpectTensorsBitwiseEqual(a.classifier_weight, b.classifier_weight);
  ExpectTensorsBitwiseEqual(a.classifier_bias, b.classifier_bias);

  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    InferenceSession original(a);
    InferenceSession reloaded(loaded.value());
    ExpectTensorsBitwiseEqual(original.logits(), reloaded.logits());
    for (int64_t node = 0; node < original.num_targets();
         node += original.num_targets() / 7 + 1) {
      StatusOr<InferenceSession::Prediction> pa = original.Predict(node);
      StatusOr<InferenceSession::Prediction> pb = reloaded.Predict(node);
      ASSERT_TRUE(pa.ok());
      ASSERT_TRUE(pb.ok());
      EXPECT_EQ(pa.value().label, pb.value().label);
      EXPECT_EQ(pa.value().score, pb.value().score);
    }
  }
  SetNumThreads(0);
  std::remove(path.c_str());
}

// A coherent edit — payload rewritten with a fresh CRC but without
// re-freezing — must be caught by the content fingerprint.
TEST(FrozenModelIoTest, FingerprintMismatchIsRefused) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("tampered.aacm");

  // Stored fingerprint patched: the content no longer matches it.
  FrozenModel stale = env.frozen();
  stale.fingerprint ^= 0x1;
  ASSERT_TRUE(SaveFrozenModel(stale, path).ok());
  StatusOr<FrozenModel> loaded = LoadFrozenModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("fingerprint"),
            std::string::npos);

  // Content edited under an unchanged stored fingerprint: the CRC is
  // recomputed by the (honest) writer, so only the fingerprint check can
  // notice the drift.
  FrozenModel edited = env.frozen();
  edited.classifier_bias.data()[0] += 1.0f;
  ASSERT_TRUE(SaveFrozenModel(edited, path).ok());
  loaded = LoadFrozenModel(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("fingerprint"),
            std::string::npos);
  std::remove(path.c_str());
}

// Same discipline as SerializationTest.ByteFlipFuzzAlwaysFailsCleanly, on
// the serving artifact: every single-byte flip, truncation, and trailing
// byte must yield a Status error, never a parse or a crash.
TEST(FrozenModelIoTest, ByteFlipFuzzAlwaysFailsCleanly) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string clean = TempPath("fuzz_clean.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), clean).ok());
  std::string bytes;
  {
    std::ifstream in(clean, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 20u);

  std::string mutant_path = TempPath("fuzz_mutant.aacm");
  size_t stride = bytes.size() / 97 + 1;
  size_t header_end = 20;  // 4 magic + 4 version + 8 size + 4 crc
  for (size_t pos = 0; pos < bytes.size();
       pos += (pos < header_end ? 1 : stride)) {
    std::string mutant = bytes;
    mutant[pos] ^= 0x40;
    {
      std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
      out.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    StatusOr<FrozenModel> loaded = LoadFrozenModel(mutant_path);
    EXPECT_FALSE(loaded.ok())
        << "byte flip at offset " << pos << " was not detected";
    if (pos >= header_end) {
      EXPECT_NE(loaded.status().message().find("checksum mismatch"),
                std::string::npos)
          << "offset " << pos << ": " << loaded.status().message();
    }
  }

  for (size_t len : {size_t{0}, size_t{3}, size_t{11}, size_t{19},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_FALSE(LoadFrozenModel(mutant_path).ok())
        << "truncation to " << len << " bytes was not detected";
  }

  {
    std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "extra";
  }
  EXPECT_FALSE(LoadFrozenModel(mutant_path).ok());

  std::remove(clean.c_str());
  std::remove(mutant_path.c_str());
}

// --- quantized artifacts (DESIGN.md §14) ------------------------------------

int64_t FileSizeBytes(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0 ? static_cast<int64_t>(st.st_size)
                                        : -1;
}

/// Saves `model` under `encoding` and returns the fingerprint actually
/// written to disk (the decoded-content fingerprint for quantized saves).
uint64_t SaveWithEncoding(const FrozenModel& model, const std::string& path,
                          TensorEncoding encoding) {
  FrozenSaveOptions options;
  options.encoding = encoding;
  uint64_t stored = 0;
  options.stored_fingerprint = &stored;
  Status saved = SaveFrozenModel(model, path, options);
  AUTOAC_CHECK(saved.ok()) << saved.message();
  return stored;
}

/// Fraction of target nodes on which two sessions agree on the argmax class.
double Top1Agreement(InferenceSession& a, InferenceSession& b) {
  AUTOAC_CHECK_EQ(a.num_targets(), b.num_targets());
  int64_t agree = 0;
  for (int64_t node = 0; node < a.num_targets(); ++node) {
    StatusOr<InferenceSession::Prediction> pa = a.Predict(node);
    StatusOr<InferenceSession::Prediction> pb = b.Predict(node);
    AUTOAC_CHECK(pa.ok() && pb.ok());
    agree += pa.value().label == pb.value().label ? 1 : 0;
  }
  return static_cast<double>(agree) / static_cast<double>(a.num_targets());
}

// Quantized export -> load keeps the refusal semantics of the f32 path: the
// stored fingerprint covers the *decoded* content, PeekFrozenFingerprint
// reports it without a full parse, and the artifact is materially smaller.
TEST(QuantizedArtifactTest, Fp16RoundTripIsSmallerWithFingerprintIntact) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string f32_path = TempPath("quant_f32.aacm");
  std::string f16_path = TempPath("quant_f16.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), f32_path).ok());
  uint64_t stored = SaveWithEncoding(env.frozen(), f16_path,
                                     TensorEncoding::kF16);
  EXPECT_NE(stored, env.frozen().fingerprint);  // covers decoded content

  int64_t f32_size = FileSizeBytes(f32_path);
  int64_t f16_size = FileSizeBytes(f16_path);
  ASSERT_GT(f32_size, 0);
  ASSERT_GT(f16_size, 0);
  // The benchmark artifact (hidden 64) clears 1.8x; this test model's
  // attribute matrices are narrow, so gate a looser floor here.
  EXPECT_GT(static_cast<double>(f32_size) / static_cast<double>(f16_size),
            1.3)
      << f32_size << " vs " << f16_size;

  StatusOr<uint64_t> peeked = PeekFrozenFingerprint(f16_path);
  ASSERT_TRUE(peeked.ok());
  EXPECT_EQ(peeked.value(), stored);

  StatusOr<FrozenModel> loaded = LoadFrozenModel(f16_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().encoding, TensorEncoding::kF16);
  EXPECT_EQ(loaded.value().fingerprint, stored);
  EXPECT_NE(loaded.value().encoded_classifier_weight, nullptr);

  // Decoding is deterministic: two loads serve bitwise-identical logits.
  StatusOr<FrozenModel> again = LoadFrozenModel(f16_path);
  ASSERT_TRUE(again.ok());
  InferenceSession first(loaded.TakeValue());
  InferenceSession second(again.TakeValue());
  ExpectTensorsBitwiseEqual(first.logits(), second.logits());

  // And the quantized session still agrees with fp32 on nearly every node.
  InferenceSession exact(env.frozen());
  EXPECT_GE(Top1Agreement(first, exact), 0.99);
  std::remove(f32_path.c_str());
  std::remove(f16_path.c_str());
}

// Acceptance gate: int8 top-1 matches fp32 on the test model, and the
// artifact is smaller still than fp16.
TEST(QuantizedArtifactTest, Int8Top1MatchesFp32) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string f16_path = TempPath("quant_cmp_f16.aacm");
  std::string i8_path = TempPath("quant_cmp_i8.aacm");
  SaveWithEncoding(env.frozen(), f16_path, TensorEncoding::kF16);
  SaveWithEncoding(env.frozen(), i8_path, TensorEncoding::kI8);
  EXPECT_LT(FileSizeBytes(i8_path), FileSizeBytes(f16_path));

  StatusOr<FrozenModel> loaded = LoadFrozenModel(i8_path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  EXPECT_EQ(loaded.value().encoding, TensorEncoding::kI8);
  InferenceSession quantized(loaded.TakeValue());
  InferenceSession exact(env.frozen());
  EXPECT_GE(Top1Agreement(quantized, exact), 0.98);

  // The quantized session's own batch path stays bitwise-consistent with
  // its per-row path (the dequantized weight feeds both identically).
  std::vector<int64_t> nodes = {0, 2, 1, quantized.num_targets() - 1};
  StatusOr<std::vector<InferenceSession::Prediction>> batch =
      quantized.PredictBatch(nodes);
  ASSERT_TRUE(batch.ok());
  for (size_t i = 0; i < nodes.size(); ++i) {
    StatusOr<InferenceSession::Prediction> single =
        quantized.Predict(nodes[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.value()[i].label, single.value().label);
    EXPECT_EQ(batch.value()[i].score, single.value().score);
  }
  std::remove(f16_path.c_str());
  std::remove(i8_path.c_str());
}

// The fuzz discipline extends to quantized payloads: every single-byte
// flip, truncation, and trailing byte over an fp16 or int8 artifact is a
// Status error, never a parse or a crash.
TEST(QuantizedArtifactTest, ByteFlipFuzzAlwaysFailsCleanly) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  for (TensorEncoding encoding :
       {TensorEncoding::kF16, TensorEncoding::kI8}) {
    std::string clean = TempPath("quant_fuzz_clean.aacm");
    SaveWithEncoding(env.frozen(), clean, encoding);
    std::string bytes;
    {
      std::ifstream in(clean, std::ios::binary);
      std::ostringstream buf;
      buf << in.rdbuf();
      bytes = buf.str();
    }
    ASSERT_GT(bytes.size(), 20u);

    std::string mutant_path = TempPath("quant_fuzz_mutant.aacm");
    size_t stride = bytes.size() / 97 + 1;
    size_t header_end = 20;  // 4 magic + 4 version + 8 size + 4 crc
    for (size_t pos = 0; pos < bytes.size();
         pos += (pos < header_end ? 1 : stride)) {
      std::string mutant = bytes;
      mutant[pos] ^= 0x40;
      {
        std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
        out.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
      }
      StatusOr<FrozenModel> loaded = LoadFrozenModel(mutant_path);
      EXPECT_FALSE(loaded.ok())
          << "byte flip at offset " << pos << " was not detected";
      if (pos >= header_end) {
        EXPECT_NE(loaded.status().message().find("checksum mismatch"),
                  std::string::npos)
            << "offset " << pos << ": " << loaded.status().message();
      }
    }

    for (size_t len : {size_t{0}, size_t{3}, size_t{11}, size_t{19},
                       bytes.size() / 2, bytes.size() - 1}) {
      std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(len));
      out.close();
      EXPECT_FALSE(LoadFrozenModel(mutant_path).ok())
          << "truncation to " << len << " bytes was not detected";
    }

    {
      std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
      out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
      out << "extra";
    }
    EXPECT_FALSE(LoadFrozenModel(mutant_path).ok());

    std::remove(clean.c_str());
    std::remove(mutant_path.c_str());
  }
}

TEST(ServeProtocolTest, ParsesWellFormedRequests) {
  ServeRequest request;
  std::string error;

  ASSERT_TRUE(
      ParseServeRequestLine(R"({"id": "r1", "node": 42})", &request, &error))
      << error;
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.node, 42);

  // Key order and whitespace are free; a numeric id is echoed as a string.
  ASSERT_TRUE(ParseServeRequestLine("  { \"node\" : 7 , \"id\" : 3 }  ",
                                    &request, &error))
      << error;
  EXPECT_EQ(request.id, "3");
  EXPECT_EQ(request.node, 7);

  // id is optional.
  ASSERT_TRUE(ParseServeRequestLine(R"({"node": 0})", &request, &error))
      << error;
  EXPECT_EQ(request.id, "");
  EXPECT_EQ(request.node, 0);
}

TEST(ServeProtocolTest, RejectsMalformedRequests) {
  ServeRequest request;
  std::string error;
  const char* bad[] = {
      "",                              // not an object
      "hello",                         // not JSON
      "{}",                            // missing node
      R"({"id": "x"})",                // missing node
      R"({"node": "five"})",           // node must be an integer
      R"({"node": 1, "extra": 2})",    // unknown keys fail loudly
      R"({"node": 1} trailing)",       // trailing characters
      R"({"id": "unterminated)",       // unterminated string
      R"({"node": 1,})",               // dangling comma
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseServeRequestLine(line, &request, &error))
        << "accepted: " << line;
    EXPECT_FALSE(error.empty());
  }
}

TEST(ServeProtocolTest, ParsesModelAndDeadlineKeys) {
  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseServeRequestLine(
      R"({"id": "r1", "node": 3, "model": "acm", "deadline_ms": 250})",
      &request, &error))
      << error;
  EXPECT_EQ(request.id, "r1");
  EXPECT_EQ(request.node, 3);
  EXPECT_EQ(request.model, "acm");
  EXPECT_EQ(request.deadline_ms, 250);

  // Both keys are optional; absent means default model / no deadline.
  ASSERT_TRUE(ParseServeRequestLine(R"({"node": 3})", &request, &error))
      << error;
  EXPECT_EQ(request.model, "");
  EXPECT_EQ(request.deadline_ms, -1);

  // deadline_ms 0 is legal (already expired on arrival).
  ASSERT_TRUE(ParseServeRequestLine(R"({"node": 3, "deadline_ms": 0})",
                                    &request, &error))
      << error;
  EXPECT_EQ(request.deadline_ms, 0);
}

// Integer overflow must be malformed, not silently saturated to INT64_MAX
// (which would turn an absurd node id into a plausible out-of-range error
// and an absurd deadline into "no deadline pressure at all").
TEST(ServeProtocolTest, RejectsOverflowAndBadDeadlines) {
  ServeRequest request;
  std::string error;
  const char* bad[] = {
      R"({"node": 99999999999999999999})",                   // > INT64_MAX
      R"({"node": -99999999999999999999})",                  // < INT64_MIN
      R"({"id": 99999999999999999999, "node": 1})",          // numeric id too
      R"({"node": 1, "deadline_ms": 99999999999999999999})",
      R"({"node": 1, "deadline_ms": -5})",    // negative deadline
      R"({"node": 1, "deadline_ms": "soon"})",
      R"({"node": 1, "model": 7})",           // model must be a string
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseServeRequestLine(line, &request, &error))
        << "accepted: " << line;
    EXPECT_FALSE(error.empty());
  }
  // INT64_MAX itself is in range and still parses.
  ASSERT_TRUE(ParseServeRequestLine(R"({"node": 9223372036854775807})",
                                    &request, &error))
      << error;
  EXPECT_EQ(request.node, 9223372036854775807LL);
}

// High bytes (any UTF-8 id) must pass through the JSON escaper verbatim; a
// signed char fed to "%04x" sign-extends into garbage like ￿ffc3.
// Control bytes must become exactly one four-hex-digit escape.
TEST(ServeProtocolTest, HighByteIdsEscapeCleanly) {
  const std::string utf8_id = "caf\xc3\xa9";
  std::string line = FormatServeError(utf8_id, "x");
  EXPECT_NE(line.find(utf8_id), std::string::npos) << line;
  EXPECT_EQ(line.find("ffff"), std::string::npos) << line;

  const size_t empty_len = FormatServeError("", "").size();
  for (int byte = 1; byte < 256; ++byte) {
    char c = static_cast<char>(byte);
    std::string out = FormatServeError(std::string(1, c), "");
    EXPECT_EQ(out.find("ffffff"), std::string::npos)
        << "byte " << byte << " sign-extended: " << out;
    if (byte == '"' || byte == '\\' || byte == '\n' || byte == '\t') {
      EXPECT_EQ(out.size(), empty_len + 2) << "byte " << byte;
    } else if (byte < 0x20) {
      char want[8];
      std::snprintf(want, sizeof(want), "\\u%04x", byte);
      EXPECT_NE(out.find(want), std::string::npos) << "byte " << byte;
      EXPECT_EQ(out.size(), empty_len + 6) << "byte " << byte;
    } else {
      EXPECT_EQ(out.size(), empty_len + 1) << "byte " << byte;
    }
  }
}

// WriteLine must not drop (or truncate) a response because send() was
// interrupted by a signal or timed out on a momentarily full socket
// buffer: EINTR retries immediately, EAGAIN waits for writability.
TEST(SendAllTest, RetriesInterruptedAndWouldBlockSends) {
  int fds[2];
  ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds), 0);
  int sndbuf = 4096;
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDBUF, &sndbuf, sizeof(sndbuf));
  // A send timeout makes a blocked send() return EAGAIN — the same errno a
  // nonblocking socket would produce — without needing O_NONBLOCK.
  timeval send_timeout{0, 10000};  // 10ms
  ::setsockopt(fds[0], SOL_SOCKET, SO_SNDTIMEO, &send_timeout,
               sizeof(send_timeout));
  // SIGUSR1 with an empty handler and no SA_RESTART: pthread_kill makes a
  // blocked send() fail with EINTR.
  struct sigaction action {};
  action.sa_handler = [](int) {};
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  struct sigaction previous {};
  ASSERT_EQ(::sigaction(SIGUSR1, &action, &previous), 0);

  const std::string payload(1 << 20, 'x');
  std::atomic<bool> sent_ok{false};
  std::atomic<bool> done{false};
  std::thread sender([&] {
    sent_ok = SendAll(fds[0], payload.data(), payload.size());
    done = true;
  });
  pthread_t handle = sender.native_handle();
  for (int i = 0; i < 20 && !done.load(); ++i) {
    ::pthread_kill(handle, SIGUSR1);
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  size_t received = 0;
  char buf[65536];
  while (received < payload.size()) {
    ssize_t n = ::recv(fds[1], buf, sizeof(buf), 0);
    ASSERT_GT(n, 0);
    received += static_cast<size_t>(n);
  }
  sender.join();
  EXPECT_TRUE(sent_ok.load());
  EXPECT_EQ(received, payload.size());
  ::sigaction(SIGUSR1, &previous, nullptr);
  ::close(fds[0]);
  ::close(fds[1]);
}

TEST(ServeProtocolTest, ResponseFormatting) {
  InferenceSession::Prediction p;
  p.node = 4;
  p.label = 2;
  p.score = 1.5f;
  EXPECT_EQ(FormatServeResponse("r9", p, 120),
            "{\"id\":\"r9\",\"node\":4,\"label\":2,\"score\":1.5,"
            "\"latency_us\":120}\n");
  EXPECT_EQ(FormatServeError("x\"y", "bad \"input\""),
            "{\"id\":\"x\\\"y\",\"error\":\"bad \\\"input\\\"\"}\n");
}

// End-to-end over a real TCP loopback socket: valid, malformed, and
// out-of-range requests each get the right response line, the stats
// counters add up, and Stop() quiesces the server.
TEST(InferenceServerTest, EndToEndOverLoopbackTcp) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;  // ephemeral
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  Status started = server.Start();
  ASSERT_TRUE(started.ok()) << started.message();
  ASSERT_GT(server.port(), 0);
  std::thread serving([&] { server.Serve(); });

  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  timeval timeout{10, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(server.port()));
  ASSERT_EQ(::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
            0);

  std::string out =
      "{\"id\": \"a\", \"node\": 0}\n"
      "this is not json\n"
      "{\"id\": \"b\", \"node\": 1}\n"
      "{\"id\": \"big\", \"node\": 999999999}\n";
  ASSERT_EQ(::send(fd, out.data(), out.size(), 0),
            static_cast<ssize_t>(out.size()));

  // Four response lines come back; the reader answers malformed lines
  // directly while the batcher answers the rest, so order is not fixed.
  std::string received;
  size_t newlines = 0;
  char buf[4096];
  while (newlines < 4) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    ASSERT_GT(n, 0) << "timed out waiting for responses";
    received.append(buf, static_cast<size_t>(n));
    newlines = static_cast<size_t>(
        std::count(received.begin(), received.end(), '\n'));
  }
  ::close(fd);
  EXPECT_NE(received.find("\"id\":\"a\",\"node\":0,\"label\":"),
            std::string::npos)
      << received;
  EXPECT_NE(received.find("\"id\":\"b\",\"node\":1,\"label\":"),
            std::string::npos)
      << received;
  EXPECT_NE(received.find("\"id\":\"big\",\"error\":\"node id"),
            std::string::npos)
      << received;
  EXPECT_NE(received.find("expected a JSON object"), std::string::npos)
      << received;

  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.connections, 1);
  EXPECT_EQ(stats.requests, 3);   // parsed OK (incl. the out-of-range node)
  EXPECT_EQ(stats.responses, 2);  // successful predictions only
  EXPECT_EQ(stats.malformed, 1);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.batched_requests, 3);
}

// Serve() also honors the process-wide cooperative shutdown flag.
TEST(InferenceServerTest, HonorsProcessShutdownFlag) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  RequestShutdown();
  serving.join();
  ClearShutdownRequestForTest();
}

// --- multi-model hosting (ModelRegistry) ------------------------------------

TEST(ModelRegistryTest, LookupResolvesDefaultAndUnknown) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  auto session = std::make_shared<InferenceSession>(env.frozen());
  registry.Register("alpha", session);
  registry.Register("beta", std::make_shared<InferenceSession>(env.frozen()));

  EXPECT_EQ(registry.size(), 2);
  EXPECT_EQ(registry.default_model(), "alpha");  // first registered
  std::string resolved;
  EXPECT_EQ(registry.Lookup("", &resolved), session);
  EXPECT_EQ(resolved, "alpha");
  EXPECT_EQ(registry.Lookup("alpha"), session);
  EXPECT_EQ(registry.Lookup("nope"), nullptr);
  // A Register()-only registry has no artifact spec to re-read.
  EXPECT_FALSE(registry.Reload().ok());
}

TEST(ModelRegistryTest, ReloadSwapsChangedArtifactsOnly) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string dir = TempPath("registry_dir");
  ::mkdir(dir.c_str(), 0755);
  FrozenModel a = env.frozen();
  FrozenModel b = MakeVariantFrozen(a, 3.0f);
  ASSERT_TRUE(SaveFrozenModel(a, dir + "/a.aacm").ok());
  ASSERT_TRUE(SaveFrozenModel(b, dir + "/b.aacm").ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadFromSpec("", dir).ok());
  EXPECT_EQ(registry.size(), 2);
  EXPECT_EQ(registry.default_model(), "a");  // lexicographically first
  std::shared_ptr<InferenceSession> a_before = registry.Lookup("a");
  std::shared_ptr<InferenceSession> b_before = registry.Lookup("b");
  ASSERT_NE(a_before, nullptr);
  ASSERT_NE(b_before, nullptr);

  // Nothing changed on disk: both sessions survive untouched (no forward
  // recomputation).
  StatusOr<ModelRegistry::ReloadReport> noop = registry.Reload();
  ASSERT_TRUE(noop.ok()) << noop.status().message();
  EXPECT_EQ(noop.value().unchanged.size(), 2u);
  EXPECT_TRUE(noop.value().reloaded.empty());
  EXPECT_EQ(registry.Lookup("a"), a_before);
  EXPECT_EQ(registry.Lookup("b"), b_before);

  // b rewritten with different content: only b gets a new session.
  FrozenModel b2 = MakeVariantFrozen(a, -5.0f);
  ASSERT_TRUE(SaveFrozenModel(b2, dir + "/b.aacm").ok());
  StatusOr<ModelRegistry::ReloadReport> partial = registry.Reload();
  ASSERT_TRUE(partial.ok()) << partial.status().message();
  ASSERT_EQ(partial.value().reloaded, std::vector<std::string>{"b"});
  ASSERT_EQ(partial.value().unchanged, std::vector<std::string>{"a"});
  EXPECT_EQ(registry.Lookup("a"), a_before);
  EXPECT_NE(registry.Lookup("b"), b_before);
  // The old session object stays alive for holders of the old shared_ptr
  // (that is what lets in-flight requests finish against it).
  EXPECT_EQ(b_before->frozen().fingerprint, b.fingerprint);

  // a removed from the directory: it leaves the set, default moves on.
  ASSERT_EQ(std::remove((dir + "/a.aacm").c_str()), 0);
  StatusOr<ModelRegistry::ReloadReport> removed = registry.Reload();
  ASSERT_TRUE(removed.ok()) << removed.status().message();
  ASSERT_EQ(removed.value().removed, std::vector<std::string>{"a"});
  EXPECT_EQ(registry.Lookup("a"), nullptr);
  EXPECT_EQ(registry.default_model(), "b");
  ASSERT_NE(registry.Lookup(""), nullptr);

  // A reload that cannot resolve the spec leaves the serving set intact.
  ASSERT_EQ(std::remove((dir + "/b.aacm").c_str()), 0);
  EXPECT_FALSE(registry.Reload().ok());
  EXPECT_NE(registry.Lookup("b"), nullptr);
  ::rmdir(dir.c_str());
}

// One server hosting two artifacts must answer exactly what two
// single-model servers answer, request for request, bitwise (same
// formatted label/score; latency stripped).
TEST(ModelRegistryTest, TwoModelRoutingMatchesSingleModelServers) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  FrozenModel frozen_a = env.frozen();
  FrozenModel frozen_b = MakeVariantFrozen(frozen_a, 6.0f);

  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;

  ModelRegistry single_a, single_b, multi;
  single_a.Register("a", std::make_shared<InferenceSession>(frozen_a));
  single_b.Register("b", std::make_shared<InferenceSession>(frozen_b));
  multi.Register("a", std::make_shared<InferenceSession>(frozen_a));
  multi.Register("b", std::make_shared<InferenceSession>(frozen_b));
  InferenceServer server_a(&single_a, options);
  InferenceServer server_b(&single_b, options);
  InferenceServer server_multi(&multi, options);
  ASSERT_TRUE(server_a.Start().ok());
  ASSERT_TRUE(server_b.Start().ok());
  ASSERT_TRUE(server_multi.Start().ok());
  std::thread serve_a([&] { server_a.Serve(); });
  std::thread serve_b([&] { server_b.Serve(); });
  std::thread serve_multi([&] { server_multi.Serve(); });

  InferenceSession reference_a(frozen_a);
  const int64_t step = reference_a.num_targets() / 7 + 1;
  auto query = [&](int port, const std::string& model_key) {
    std::string out;
    size_t count = 0;
    for (int64_t node = 0; node < reference_a.num_targets(); node += step) {
      out += "{\"id\": \"r" + std::to_string(count++) + "\"" + model_key +
             ", \"node\": " + std::to_string(node) + "}\n";
    }
    int fd = ConnectLoopback(port);
    EXPECT_GE(fd, 0);
    EXPECT_TRUE(SendAll(fd, out.data(), out.size()));
    std::vector<std::string> lines = RecvLines(fd, count);
    ::close(fd);
    EXPECT_EQ(lines.size(), count);
    return ById(lines);
  };

  auto from_single_a = query(server_a.port(), "");
  auto from_single_b = query(server_b.port(), "");
  auto routed_a = query(server_multi.port(), ", \"model\": \"a\"");
  auto routed_b = query(server_multi.port(), ", \"model\": \"b\"");
  // No "model" key routes to the default (first) model for backward
  // compatibility with single-model clients.
  auto routed_default = query(server_multi.port(), "");

  EXPECT_EQ(routed_a, from_single_a);
  EXPECT_EQ(routed_b, from_single_b);
  EXPECT_EQ(routed_default, from_single_a);
  EXPECT_NE(from_single_a, from_single_b);  // the variant really differs

  // Naming a model nobody hosts is a distinct error, not a crash or a
  // silent default.
  int fd = ConnectLoopback(server_multi.port());
  ASSERT_GE(fd, 0);
  std::string unknown = "{\"id\": \"u\", \"model\": \"nope\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(fd, unknown.data(), unknown.size()));
  std::vector<std::string> lines = RecvLines(fd, 1);
  ::close(fd);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("unknown model \\\"nope\\\""), std::string::npos)
      << lines[0];

  server_a.Stop();
  server_b.Stop();
  server_multi.Stop();
  serve_a.join();
  serve_b.join();
  serve_multi.join();
  EXPECT_EQ(server_multi.stats().unknown_model, 1);
}

// Hot reload: overwriting an artifact and calling Reload() (what SIGHUP
// triggers in the CLI) swaps what new requests see, while every request
// in flight across the swap still gets answered — zero drops — from
// either the old or the new session, never garbage.
TEST(InferenceServerTest, ReloadSwapsPredictionsWithoutDroppingInFlight) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("reload_model.aacm");
  FrozenModel frozen_a = env.frozen();
  FrozenModel frozen_b = MakeVariantFrozen(frozen_a, 8.0f);
  ASSERT_TRUE(SaveFrozenModel(frozen_a, path).ok());

  ModelRegistry registry;
  ASSERT_TRUE(registry.LoadFromSpec("m=" + path, "").ok());
  InferenceSession reference_a(frozen_a);
  InferenceSession reference_b(frozen_b);

  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  // Phase 1: everything is answered from artifact A.
  const int kBefore = 20;
  std::string out;
  for (int i = 0; i < kBefore; ++i) {
    out += "{\"id\": \"a" + std::to_string(i) +
           "\", \"node\": " + std::to_string(i % 3) + "}\n";
  }
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  auto before = ById(RecvLines(fd, kBefore));
  ASSERT_EQ(before.size(), static_cast<size_t>(kBefore));
  for (int i = 0; i < kBefore; ++i) {
    std::string id = "a" + std::to_string(i);
    EXPECT_EQ(before[id], ExpectedLine(reference_a, id, i % 3)) << id;
  }

  // Phase 2: overwrite the artifact, then reload while a burst is being
  // pumped in from another thread.
  ASSERT_TRUE(SaveFrozenModel(frozen_b, path).ok());
  const int kBurst = 100;
  std::thread pump([&] {
    for (int i = 0; i < kBurst; ++i) {
      std::string line = "{\"id\": \"p" + std::to_string(i) +
                         "\", \"node\": " + std::to_string(i % 3) + "}\n";
      ASSERT_TRUE(SendAll(fd, line.data(), line.size()));
      if (i % 10 == 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    }
  });
  StatusOr<ModelRegistry::ReloadReport> report = registry.Reload();
  pump.join();
  ASSERT_TRUE(report.ok()) << report.status().message();
  EXPECT_EQ(report.value().reloaded, std::vector<std::string>{"m"});

  auto during = ById(RecvLines(fd, kBurst));
  ASSERT_EQ(during.size(), static_cast<size_t>(kBurst))
      << "requests were dropped across the reload";
  for (int i = 0; i < kBurst; ++i) {
    std::string id = "p" + std::to_string(i);
    std::string from_a = ExpectedLine(reference_a, id, i % 3);
    std::string from_b = ExpectedLine(reference_b, id, i % 3);
    EXPECT_TRUE(during[id] == from_a || during[id] == from_b)
        << id << ": " << during[id];
  }

  // Phase 3: new requests are answered from artifact B.
  std::string after_line = "{\"id\": \"z\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(fd, after_line.data(), after_line.size()));
  auto after = ById(RecvLines(fd, 1));
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after["z"], ExpectedLine(reference_b, "z", 0));

  // A second reload with the file untouched keeps the session: the
  // fingerprint matched, nothing was rebuilt.
  std::shared_ptr<InferenceSession> pinned = registry.Lookup("m");
  StatusOr<ModelRegistry::ReloadReport> noop = registry.Reload();
  ASSERT_TRUE(noop.ok());
  EXPECT_EQ(noop.value().unchanged, std::vector<std::string>{"m"});
  EXPECT_EQ(registry.Lookup("m"), pinned);

  ::close(fd);
  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, kBefore + kBurst + 1);
  EXPECT_EQ(stats.responses, kBefore + kBurst + 1);
  EXPECT_EQ(stats.shed, 0);
  EXPECT_EQ(stats.deadline_expired, 0);
  std::remove(path.c_str());
}

// --- deadline- and fairness-aware batching ----------------------------------

// A request whose deadline expires while queued gets the distinct
// "deadline exceeded" error and never reaches Predict.
TEST(InferenceServerTest, ExpiredDeadlinesGetDistinctErrorBeforePredict) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 64;        // batches fire on the timer only
  options.batch_timeout_ms = 300;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  // Warm-up request: its response means the batcher just started a fresh
  // 300ms wait, so the next request reliably sits in the queue.
  std::string warm = "{\"id\": \"w\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(fd, warm.data(), warm.size()));
  ASSERT_EQ(RecvLines(fd, 1).size(), 1u);

  // deadline_ms 0 expires the moment any queue wait happens; a generous
  // deadline on the same connection must be unaffected.
  std::string out =
      "{\"id\": \"late\", \"node\": 0, \"deadline_ms\": 0}\n"
      "{\"id\": \"fine\", \"node\": 1, \"deadline_ms\": 60000}\n";
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  auto by_id = ById(RecvLines(fd, 2));
  ASSERT_EQ(by_id.size(), 2u);
  EXPECT_NE(by_id["late"].find("\"error\":\"deadline exceeded\""),
            std::string::npos)
      << by_id["late"];
  EXPECT_NE(by_id["fine"].find("\"label\":"), std::string::npos)
      << by_id["fine"];

  ::close(fd);
  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, 3);
  EXPECT_EQ(stats.deadline_expired, 1);
  // The expired request was never part of an inference batch.
  EXPECT_EQ(stats.batched_requests, 2);
  EXPECT_EQ(stats.responses, 2);
}

// Overload eviction: when the queue is full, the newest request of the
// connection with the most queued requests is evicted — not the incoming
// arrival regardless of source (pre-PR tail-drop would punish the
// well-behaved second connection for the first one's flood).
TEST(InferenceServerTest, OverloadEvictsFromMostLoadedConnection) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 64;        // keep everything queued until the timer
  options.batch_timeout_ms = 500;
  options.max_queue = 4;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int flood_fd = ConnectLoopback(server.port());
  int victim_fd = ConnectLoopback(server.port());
  ASSERT_GE(flood_fd, 0);
  ASSERT_GE(victim_fd, 0);

  // Sync with the batcher (fresh 500ms wait after this response).
  std::string warm = "{\"id\": \"w\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(flood_fd, warm.data(), warm.size()));
  ASSERT_EQ(RecvLines(flood_fd, 1).size(), 1u);

  // The flooding connection fills the whole queue...
  std::string flood;
  for (int i = 0; i < 4; ++i) {
    flood += "{\"id\": \"f" + std::to_string(i) + "\", \"node\": 0}\n";
  }
  ASSERT_TRUE(SendAll(flood_fd, flood.data(), flood.size()));
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  // ...and the late arrival from a quiet connection still gets served,
  // displacing the flooder's newest request.
  std::string polite = "{\"id\": \"v\", \"node\": 1}\n";
  ASSERT_TRUE(SendAll(victim_fd, polite.data(), polite.size()));

  auto flood_responses = ById(RecvLines(flood_fd, 4));
  auto polite_responses = ById(RecvLines(victim_fd, 1));
  ASSERT_EQ(flood_responses.size(), 4u);
  ASSERT_EQ(polite_responses.size(), 1u);
  EXPECT_NE(polite_responses["v"].find("\"label\":"), std::string::npos)
      << polite_responses["v"];
  EXPECT_NE(flood_responses["f3"].find("\"error\":\"overloaded\""),
            std::string::npos)
      << flood_responses["f3"];
  for (int i = 0; i < 3; ++i) {
    std::string id = "f" + std::to_string(i);
    EXPECT_NE(flood_responses[id].find("\"label\":"), std::string::npos)
        << flood_responses[id];
  }

  ::close(flood_fd);
  ::close(victim_fd);
  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.shed, 1);
  EXPECT_EQ(stats.responses, 5);  // warm + f0..f2 + v
}

// --- connection lifecycle hardening -----------------------------------------

// A long-running server must not accumulate one fd (and one zombie reader
// thread) per past connection: disconnected connections are pruned, their
// fds closed, their reader threads reaped.
TEST(InferenceServerTest, FdCountStableAcrossConnectionChurn) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  auto cycle = [&] {
    int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    std::string line = "{\"node\": 0}\n";
    ASSERT_TRUE(SendAll(fd, line.data(), line.size()));
    ASSERT_EQ(RecvLines(fd, 1).size(), 1u);
    ::close(fd);
  };
  cycle();  // settle one-time allocations before taking the baseline
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);

  for (int i = 0; i < 100; ++i) cycle();

  // Reaping runs on the accept loop (<=100ms cadence); give it a moment.
  int settled = -1;
  for (int waited = 0; waited < 100; ++waited) {
    settled = CountOpenFds();
    if (settled <= baseline + 2) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  EXPECT_LE(settled, baseline + 2)
      << "fds leaked across connect/disconnect cycles (baseline "
      << baseline << ")";

  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().connections, 101);
}

// A client streaming bytes with no newline must not grow the read buffer
// without limit: at max_line_bytes it gets a malformed-request error and
// the connection is dropped.
TEST(InferenceServerTest, OverlongLineGetsErrorAndDropsConnection) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_line_bytes = 512;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  std::string endless(4096, 'a');  // no newline anywhere
  ASSERT_TRUE(SendAll(fd, endless.data(), endless.size()));
  std::vector<std::string> lines = RecvLines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"error\":"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("exceeds 512 bytes"), std::string::npos)
      << lines[0];
  // The server hung up: recv drains to EOF instead of blocking forever.
  char buf[4096];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
  }
  EXPECT_EQ(n, 0) << "connection was not dropped";
  ::close(fd);

  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.overlong_lines, 1);
  EXPECT_EQ(stats.requests, 0);
}

// --- streaming graph mutations (DESIGN.md §12) -------------------------------

TEST(ServeProtocolTest, ParsesMutationRequests) {
  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseServeRequestLine(
      R"({"id": "m1", "op": "add_node", "type": "author", )"
      R"("attrs": [1.5, -2, 3e-1]})",
      &request, &error))
      << error;
  EXPECT_TRUE(request.is_mutation);
  EXPECT_EQ(request.mutation.kind, Mutation::Kind::kAddNode);
  EXPECT_EQ(request.mutation.node_type, "author");
  ASSERT_EQ(request.mutation.attributes.size(), 3u);
  EXPECT_EQ(request.mutation.attributes[0], 1.5f);
  EXPECT_EQ(request.mutation.attributes[1], -2.0f);
  EXPECT_EQ(request.mutation.attributes[2], 0.3f);

  ASSERT_TRUE(ParseServeRequestLine(
      R"({"op": "add_edge", "edge": "paper-author", "src": 3, "dst": 7, )"
      R"("expect_fingerprint": "00ff00ff00ff00ff"})",
      &request, &error))
      << error;
  EXPECT_EQ(request.mutation.kind, Mutation::Kind::kAddEdge);
  EXPECT_EQ(request.mutation.edge_type, "paper-author");
  EXPECT_EQ(request.mutation.src, 3);
  EXPECT_EQ(request.mutation.dst, 7);
  EXPECT_EQ(request.mutation.expect_fingerprint, 0x00ff00ff00ff00ffull);

  ASSERT_TRUE(ParseServeRequestLine(
      R"({"op": "remove_edge", "edge": "e", "src": 0, "dst": 0, )"
      R"("model": "a"})",
      &request, &error))
      << error;
  EXPECT_TRUE(request.is_mutation);
  EXPECT_EQ(request.mutation.kind, Mutation::Kind::kRemoveEdge);
  EXPECT_EQ(request.model, "a");
  EXPECT_EQ(request.mutation.expect_fingerprint, 0u);
}

TEST(ServeProtocolTest, RejectsMalformedMutations) {
  ServeRequest request;
  std::string error;
  const char* bad[] = {
      R"({"op": "add_node", "type": "a", "node": 1})",  // op+node exclusive
      R"({"op": "drop_table", "type": "a"})",           // unknown op
      R"({"op": "add_node"})",                          // missing type
      R"({"op": "add_node", "type": "a", "src": 1})",   // edge key on add_node
      R"({"op": "add_edge", "edge": "e", "src": 1})",   // missing dst
      R"({"op": "add_edge", "edge": "e", "src": 1, "dst": 2, "attrs": []})",
      R"({"node": 1, "src": 2})",                       // "src" without "op"
      R"({"op": "add_node", "type": "a", "attrs": [1, "x"]})",
      R"({"op": "add_node", "type": "a", "attrs": [nan]})",
      // Fingerprints travel as hex strings (uint64-range); integers and
      // non-hex strings are malformed.
      R"({"op": "add_edge", "edge": "e", "src": 1, "dst": 2, )"
      R"("expect_fingerprint": 7})",
      R"({"op": "add_edge", "edge": "e", "src": 1, "dst": 2, )"
      R"("expect_fingerprint": "xyz"})",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseServeRequestLine(line, &request, &error))
        << "accepted: " << line;
    EXPECT_FALSE(error.empty());
  }
}

// Satellite: float tokens follow the JSON number grammar exactly. The old
// strtof-based scanner consumed C-grammar extensions ("12.", "+1", ".5",
// hex floats) and saturated out-of-range magnitudes to inf with ERANGE
// ignored; all of those are malformed now, token-level.
TEST(ServeProtocolTest, FloatTokensAreStrictJson) {
  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseServeRequestLine(
      R"({"op": "add_node", "type": "a", )"
      R"("attrs": [1.5, -0.25, 3e-1, 1E+2, 0.0, -0.0]})",
      &request, &error))
      << error;
  ASSERT_EQ(request.mutation.attributes.size(), 6u);
  EXPECT_EQ(request.mutation.attributes[0], 1.5f);
  EXPECT_EQ(request.mutation.attributes[3], 100.0f);

  const char* bad[] = {
      R"({"op": "add_node", "type": "a", "attrs": [12.]})",     // bare dot
      R"({"op": "add_node", "type": "a", "attrs": [.5]})",      // no int part
      R"({"op": "add_node", "type": "a", "attrs": [+1]})",      // leading '+'
      R"({"op": "add_node", "type": "a", "attrs": [1.5abc]})",  // trailing junk
      R"({"op": "add_node", "type": "a", "attrs": [0x10]})",    // hex float
      R"({"op": "add_node", "type": "a", "attrs": [1e]})",      // empty exp
      R"({"op": "add_node", "type": "a", "attrs": [1e+]})",     // signed empty
      R"({"op": "add_node", "type": "a", "attrs": [1e999]})",   // overflow
      R"({"op": "add_node", "type": "a", "attrs": [-]})",       // bare sign
      R"({"op": "add_node", "type": "a", "attrs": [inf]})",
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseServeRequestLine(line, &request, &error))
        << "accepted: " << line;
    EXPECT_FALSE(error.empty());
  }
}

// --- locale independence (satellite bugfix) ---------------------------------

/// Generates a comma-decimal locale into a temp LOCPATH with localedef (the
/// test image ships only C/POSIX). Returns false when the tooling or the
/// de_DE source definition is unavailable — callers skip, not fail.
bool GenerateCommaLocale(std::string* locpath) {
  std::string dir = TempPath("test_locales");
  ::mkdir(dir.c_str(), 0755);
  std::string target = dir + "/de_DE.UTF-8";
  struct stat st;
  if (::stat(target.c_str(), &st) != 0) {
    std::string cmd =
        "localedef -i de_DE -f UTF-8 " + target + " >/dev/null 2>&1";
    // localedef exits nonzero on harmless warnings; trust the output dir.
    int rc = std::system(cmd.c_str());
    (void)rc;
    if (::stat(target.c_str(), &st) != 0) return false;
  }
  *locpath = dir;
  return true;
}

/// Switches the process to de_DE.UTF-8 for the scope; restores "C" after.
class ScopedCommaLocale {
 public:
  explicit ScopedCommaLocale(const std::string& locpath) {
    ::setenv("LOCPATH", locpath.c_str(), 1);
    ok_ = ::setlocale(LC_ALL, "de_DE.UTF-8") != nullptr &&
          ::localeconv()->decimal_point[0] == ',';
  }
  ~ScopedCommaLocale() {
    ::setlocale(LC_ALL, "C");
    ::unsetenv("LOCPATH");
  }
  bool ok() const { return ok_; }

 private:
  bool ok_ = false;
};

// Satellite regression: the request grammar and the flag parser must not
// consult the process locale. Under a comma-decimal locale strtof/strtod
// stop at the '.' in "1.5", so the old code rejected valid requests and
// silently fell back to flag defaults; std::from_chars always parses the C
// grammar. This test fails against the strtof/strtod implementations.
TEST(LocaleTest, FloatParsingIsLocaleIndependent) {
  std::string locpath;
  if (!GenerateCommaLocale(&locpath)) {
    GTEST_SKIP() << "localedef or de_DE locale source unavailable";
  }
  ScopedCommaLocale locale(locpath);
  if (!locale.ok()) {
    GTEST_SKIP() << "comma-decimal locale did not activate";
  }
  // Sanity: libc float parsing really is comma-decimal in this scope —
  // the exact environment the old parser broke in.
  ASSERT_EQ(std::strtof("1.5", nullptr), 1.0f);

  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseServeRequestLine(
      R"({"op": "add_node", "type": "author", "attrs": [1.5, -2.25e-1]})",
      &request, &error))
      << error;
  ASSERT_EQ(request.mutation.attributes.size(), 2u);
  EXPECT_EQ(request.mutation.attributes[0], 1.5f);
  EXPECT_EQ(request.mutation.attributes[1], -2.25e-1f);

  const char* argv[] = {"test", "--scale=0.5", "--lr=2.5e-3"};
  Flags flags(3, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetDouble("scale", -1.0), 0.5);
  EXPECT_EQ(flags.GetDouble("lr", -1.0), 2.5e-3);
  EXPECT_TRUE(flags.Validate({{"scale", Flags::Spec::Type::kDouble},
                              {"lr", Flags::Spec::Type::kDouble}})
                  .empty());
}

TEST(ServeProtocolTest, MutationResponseFormatting) {
  Mutation m;
  m.kind = Mutation::Kind::kAddNode;
  MutationResult result;
  result.node = 12;
  result.dirty_rows = 5;
  EXPECT_EQ(FormatMutationResponse("m1", m, result, 90),
            "{\"id\":\"m1\",\"applied\":\"add_node\",\"node\":12,"
            "\"dirty_rows\":5,\"latency_us\":90}\n");
}

/// The node-type id of `name` in the environment graph, for building deltas.
int64_t NodeTypeIdOrDie(const HeteroGraph& graph, const std::string& name) {
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (graph.node_type(t).name == name) return t;
  }
  AUTOAC_CHECK(false) << "no node type " << name;
  return -1;
}

// The tentpole invariant at the socket level: every answer after a streamed
// delta is bitwise identical to a from-scratch re-export
// (RefreezeWithGraph) of the mutated graph.
TEST(InferenceServerTest, MutationsOverSocketMatchFromScratchRefreeze) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.set_mutation_options(/*enabled=*/true, /*staleness_ms=*/0);
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  const HeteroGraph& graph = *env.frozen().graph;
  const int64_t new_author =
      graph.node_type(NodeTypeIdOrDie(graph, "author")).count;
  std::string out;
  out +=
      "{\"id\": \"m0\", \"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 0, \"dst\": 1}\n";
  out += "{\"id\": \"m1\", \"op\": \"add_node\", \"type\": \"author\"}\n";
  out +=
      "{\"id\": \"m2\", \"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 3, \"dst\": " +
      std::to_string(new_author) + "}\n";
  out +=
      "{\"id\": \"m3\", \"op\": \"remove_edge\", \"edge\": \"paper-author\", "
      "\"src\": 0, \"dst\": 1}\n";
  const std::vector<int64_t> probes = {0, 1, 2, new_author};
  for (size_t i = 0; i < probes.size(); ++i) {
    out += "{\"id\": \"r" + std::to_string(i) +
           "\", \"node\": " + std::to_string(probes[i]) + "}\n";
  }
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd, 8);
  ::close(fd);
  ASSERT_EQ(lines.size(), 8u);
  std::map<std::string, std::string> by_id = ById(lines);

  // Mutation acks echo the op, the assigned local id, and the dirty count.
  EXPECT_NE(by_id["m0"].find("\"applied\":\"add_edge\""), std::string::npos)
      << by_id["m0"];
  EXPECT_NE(by_id["m1"].find("\"applied\":\"add_node\",\"node\":" +
                             std::to_string(new_author)),
            std::string::npos)
      << by_id["m1"];

  // The from-scratch reference: same deltas on a plain graph replica, then
  // a full re-export.
  MutableGraph replica(env.frozen().graph);
  int64_t author = replica.NodeTypeIdOf("author").value();
  int64_t pa = replica.EdgeTypeIdOf("paper-author").value();
  ASSERT_TRUE(replica.AddEdge(pa, 0, 1).ok());
  ASSERT_EQ(replica.AddNode(author, {}).value(), new_author);
  ASSERT_TRUE(replica.AddEdge(pa, 3, new_author).ok());
  ASSERT_TRUE(replica.RemoveEdge(pa, 0, 1).ok());
  StatusOr<FrozenModel> refrozen =
      RefreezeWithGraph(env.frozen(), replica.Compact(),
                        ExtendOpAssignment(env.frozen(), *replica.Compact()));
  ASSERT_TRUE(refrozen.ok()) << refrozen.status().message();
  InferenceSession::Options interpret;
  interpret.compile = false;
  InferenceSession reference(refrozen.TakeValue(), interpret);
  for (size_t i = 0; i < probes.size(); ++i) {
    std::string id = "r" + std::to_string(i);
    EXPECT_EQ(by_id[id], ExpectedLine(reference, id, probes[i])) << id;
  }

  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.requests, 8);
  EXPECT_EQ(stats.responses, 8);
  EXPECT_EQ(stats.mutations_applied, 4);
  EXPECT_GT(stats.dirty_rows, 0);
}

// Satellite: mutations with malformed node/edge types (and other invalid
// deltas) are answered with distinct errors, never applied, and leave the
// server healthy.
TEST(InferenceServerTest, MalformedMutationsGetDistinctErrors) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.set_mutation_options(/*enabled=*/true, /*staleness_ms=*/0);
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  std::string out;
  out += "{\"id\": \"m0\", \"op\": \"add_node\", \"type\": \"gizmo\"}\n";
  out +=
      "{\"id\": \"m1\", \"op\": \"add_edge\", \"edge\": \"nope\", "
      "\"src\": 0, \"dst\": 0}\n";
  out +=
      "{\"id\": \"m2\", \"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 999999999, \"dst\": 0}\n";
  out +=
      "{\"id\": \"m3\", \"op\": \"add_node\", \"type\": \"author\", "
      "\"attrs\": [1.0]}\n";
  out += "{\"id\": \"r0\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd, 5);
  ::close(fd);
  ASSERT_EQ(lines.size(), 5u);
  std::map<std::string, std::string> by_id = ById(lines);
  EXPECT_NE(by_id["m0"].find("unknown node type"), std::string::npos)
      << by_id["m0"];
  EXPECT_NE(by_id["m1"].find("unknown edge type"), std::string::npos)
      << by_id["m1"];
  EXPECT_NE(by_id["m2"].find("out of range"), std::string::npos)
      << by_id["m2"];
  EXPECT_NE(by_id["m3"].find("\"error\""), std::string::npos) << by_id["m3"];
  EXPECT_NE(by_id["r0"].find("\"label\":"), std::string::npos) << by_id["r0"];

  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.mutations_applied, 0);
  EXPECT_EQ(stats.dirty_rows, 0);
  EXPECT_EQ(stats.requests, 5);   // all parsed fine
  EXPECT_EQ(stats.responses, 1);  // only the prediction succeeded
}

TEST(InferenceServerTest, MutationsDisabledIsADistinctError) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;  // no set_mutation_options
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string out =
      "{\"id\": \"m0\", \"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 0, \"dst\": 0}\n";
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd, 1);
  ::close(fd);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("mutations disabled"), std::string::npos)
      << lines[0];
  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().mutations_applied, 0);
}

// Satellite: a v1 artifact (no completion section) refusing a mutation must
// answer with the machine-readable reason "artifact_v1_immutable" plus the
// re-export hint, so feeders stop retrying without string-matching prose.
TEST(InferenceServerTest, V1ArtifactMutationRejectIsMachineReadable) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  FrozenModel v1 = env.frozen();
  v1.has_completion = false;
  v1.completion_params.clear();
  v1.fingerprint = ComputeFrozenFingerprint(v1);

  ModelRegistry registry;
  registry.set_mutation_options(/*enabled=*/true, /*staleness_ms=*/0);
  registry.Register("default",
                    std::make_shared<InferenceSession>(std::move(v1)));
  ServerOptions options;
  options.tcp_port = 0;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string out =
      "{\"id\": \"m0\", \"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 0, \"dst\": 0}\n"
      "{\"id\": \"r0\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd, 2);
  ::close(fd);
  ASSERT_EQ(lines.size(), 2u);
  std::map<std::string, std::string> by_id = ById(lines);
  EXPECT_NE(by_id["m0"].find("\"reason\":\"artifact_v1_immutable\""),
            std::string::npos)
      << by_id["m0"];
  EXPECT_NE(by_id["m0"].find("re-export"), std::string::npos) << by_id["m0"];
  // No retry hint: the refusal is permanent until a re-export.
  EXPECT_EQ(by_id["m0"].find("retry_after_ms"), std::string::npos)
      << by_id["m0"];
  // Predictions against the v1 model still serve.
  EXPECT_NE(by_id["r0"].find("\"label\":"), std::string::npos) << by_id["r0"];
  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().mutations_applied, 0);
}

// Tentpole at the socket level: consecutive predictions pinned to the same
// session are answered by one head-only batch forward, and every answer is
// bitwise what the ungrouped path would have produced.
TEST(InferenceServerTest, PredictionRunsGroupThroughTheBatchHead) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 16;
  options.batch_timeout_ms = 20;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  InferenceSession reference(env.frozen());
  const int kRequests = 32;
  std::string out;
  std::vector<int64_t> nodes(kRequests);
  for (int i = 0; i < kRequests; ++i) {
    nodes[i] = (i * 5 + 2) % reference.num_targets();
    out += "{\"id\": \"r" + std::to_string(i) +
           "\", \"node\": " + std::to_string(nodes[i]) + "}\n";
  }
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd, kRequests);
  ::close(fd);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kRequests));
  std::map<std::string, std::string> by_id = ById(lines);
  for (int i = 0; i < kRequests; ++i) {
    std::string id = "r" + std::to_string(i);
    EXPECT_EQ(by_id[id], ExpectedLine(reference, id, nodes[i])) << id;
  }

  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.responses, kRequests);
  // Every prediction went through the batch-head path, and the runs really
  // grouped (far fewer forwards than requests).
  EXPECT_EQ(stats.head_batched_rows, kRequests);
  EXPECT_GE(stats.head_batches, 1);
  EXPECT_LT(stats.head_batches, kRequests);
}

// Satellite: a delta racing a model swap. An unchanged-fingerprint reload
// keeps the overlay (accumulated deltas survive SIGHUP); a changed
// fingerprint swaps in a fresh overlay, and a delta still expecting the old
// fingerprint gets the distinct mismatch error instead of mutating the new
// model.
TEST(ModelRegistryTest, MutationOverlayAcrossReloads) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("mutation_reload.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), path).ok());
  ModelRegistry registry;
  InferenceSession::Options interpret;
  interpret.compile = false;
  registry.set_session_options(interpret);
  registry.set_mutation_options(/*enabled=*/true, /*staleness_ms=*/0);
  ASSERT_TRUE(registry.LoadFromSpec("m=" + path, "").ok());

  std::shared_ptr<MutableSession> overlay = registry.LookupMutable("m");
  ASSERT_NE(overlay, nullptr);
  Mutation delta;
  delta.kind = Mutation::Kind::kAddEdge;
  delta.edge_type = "paper-author";
  delta.src = 0;
  delta.dst = 1;
  delta.expect_fingerprint = env.frozen().fingerprint;
  ASSERT_TRUE(overlay->Apply(delta).ok());

  StatusOr<ModelRegistry::ReloadReport> noop = registry.Reload();
  ASSERT_TRUE(noop.ok()) << noop.status().message();
  ASSERT_EQ(noop.value().unchanged.size(), 1u);
  EXPECT_EQ(registry.LookupMutable("m"), overlay);
  EXPECT_EQ(overlay->mutations_applied(), 1);

  FrozenModel variant = MakeVariantFrozen(env.frozen(), 0.25f);
  ASSERT_TRUE(SaveFrozenModel(variant, path).ok());
  StatusOr<ModelRegistry::ReloadReport> swapped = registry.Reload();
  ASSERT_TRUE(swapped.ok()) << swapped.status().message();
  ASSERT_EQ(swapped.value().reloaded.size(), 1u);
  std::shared_ptr<MutableSession> fresh = registry.LookupMutable("m");
  ASSERT_NE(fresh, nullptr);
  EXPECT_NE(fresh, overlay);
  EXPECT_EQ(fresh->mutations_applied(), 0);  // old deltas went with the swap

  StatusOr<MutationResult> stale = fresh->Apply(delta);
  ASSERT_FALSE(stale.ok());
  EXPECT_NE(stale.status().message().find("fingerprint mismatch"),
            std::string::npos)
      << stale.status().message();
  delta.expect_fingerprint = variant.fingerprint;
  EXPECT_TRUE(fresh->Apply(delta).ok());
}

// ---------------------------------------------------------------------------
// Serving hardening (DESIGN.md §13): request grammar for QoS and client
// identity, structured rejections, token-bucket admission control,
// interactive-over-batch scheduling and eviction, connection hygiene, and
// chaos fault containment.
// ---------------------------------------------------------------------------

TEST(ServeProtocolTest, ParsesQosAndClientKeys) {
  ServeRequest request;
  std::string error;
  ASSERT_TRUE(ParseServeRequestLine(
      "{\"id\": \"q1\", \"node\": 3, \"qos\": \"batch\", "
      "\"client\": \"alice\"}",
      &request, &error))
      << error;
  EXPECT_EQ(request.qos, QosClass::kBatch);
  EXPECT_EQ(request.client, "alice");

  ASSERT_TRUE(ParseServeRequestLine(
      "{\"id\": \"q2\", \"node\": 3, \"qos\": \"interactive\"}", &request,
      &error))
      << error;
  EXPECT_EQ(request.qos, QosClass::kInteractive);
  EXPECT_TRUE(request.client.empty());

  // Default class is interactive.
  ASSERT_TRUE(
      ParseServeRequestLine("{\"id\": \"q3\", \"node\": 3}", &request, &error))
      << error;
  EXPECT_EQ(request.qos, QosClass::kInteractive);
}

TEST(ServeProtocolTest, RejectsUnknownQosValue) {
  ServeRequest request;
  std::string error;
  EXPECT_FALSE(ParseServeRequestLine(
      "{\"id\": \"q1\", \"node\": 3, \"qos\": \"turbo\"}", &request, &error));
  EXPECT_NE(error.find("unknown \"qos\" value"), std::string::npos) << error;
  EXPECT_FALSE(ParseServeRequestLine(
      "{\"id\": \"q1\", \"node\": 3, \"qos\": 7}", &request, &error));
  EXPECT_FALSE(ParseServeRequestLine(
      "{\"id\": \"q1\", \"node\": 3, \"client\": 7}", &request, &error));
}

TEST(ServeProtocolTest, FormatServeRejectShape) {
  EXPECT_EQ(FormatServeReject("r1", "rate limited", "rate_limited", 12),
            "{\"id\":\"r1\",\"error\":\"rate limited\","
            "\"reason\":\"rate_limited\",\"retry_after_ms\":12}\n");
  // A negative retry hint omits the field entirely (idle_timeout has no
  // meaningful retry horizon).
  EXPECT_EQ(FormatServeReject("", "idle timeout", "idle_timeout", -1),
            "{\"id\":\"\",\"error\":\"idle timeout\","
            "\"reason\":\"idle_timeout\"}\n");
}

// The bucket is a pure function of (rps, burst) and the acquire timestamps:
// the same literal time sequence must always produce the same decisions and
// the same retry hints.
TEST(AdmissionTest, TokenBucketIsDeterministic) {
  TokenBucket bucket(/*rps=*/2.0, /*burst=*/4.0, /*now_us=*/0);
  int64_t retry = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(bucket.TryAcquire(0, &retry)) << "burst token " << i;
  }
  // Drained: one token refills in 1/rps = 500ms.
  EXPECT_FALSE(bucket.TryAcquire(0, &retry));
  EXPECT_EQ(retry, 500);
  // 250ms later only half a token exists.
  EXPECT_FALSE(bucket.TryAcquire(250000, &retry));
  EXPECT_EQ(retry, 250);
  // 500ms in, exactly one token refilled; it spends, and the next acquire
  // is back to a full-token wait.
  EXPECT_TRUE(bucket.TryAcquire(500000, &retry));
  EXPECT_FALSE(bucket.TryAcquire(500000, &retry));
  EXPECT_EQ(retry, 500);
}

TEST(AdmissionTest, TokenBucketClampsRefillToBurst) {
  TokenBucket bucket(/*rps=*/100.0, /*burst=*/2.0, /*now_us=*/0);
  int64_t retry = -1;
  EXPECT_TRUE(bucket.TryAcquire(0, &retry));
  EXPECT_FALSE(bucket.AtCapacity(0));
  // An hour of idling refills to burst, not rps * 3600.
  EXPECT_DOUBLE_EQ(bucket.tokens_at(3600000000), 2.0);
  EXPECT_TRUE(bucket.AtCapacity(3600000000));
  EXPECT_TRUE(bucket.TryAcquire(3600000000, &retry));
  EXPECT_TRUE(bucket.TryAcquire(3600000000, &retry));
  EXPECT_FALSE(bucket.TryAcquire(3600000000, &retry));
}

TEST(AdmissionTest, ControllerSeparatesClientIdentities) {
  AdmissionController::Options options;
  options.rate_limit_rps = 1.0;
  options.rate_limit_burst = 1.0;
  AdmissionController admission(options);
  ASSERT_TRUE(admission.enabled());
  int64_t retry = -1;
  EXPECT_TRUE(admission.Admit("a", 0, &retry));
  EXPECT_FALSE(admission.Admit("a", 0, &retry));
  EXPECT_EQ(retry, 1000);
  // A different identity has its own untouched bucket.
  EXPECT_TRUE(admission.Admit("b", 0, &retry));
  EXPECT_EQ(admission.num_clients(), 2);
}

TEST(AdmissionTest, DisabledControllerAlwaysAdmits) {
  AdmissionController admission(AdmissionController::Options{});
  EXPECT_FALSE(admission.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_TRUE(admission.Admit("flood", 0, nullptr));
  }
  EXPECT_EQ(admission.num_clients(), 0);
}

// An adversary cycling client identities must not grow bucket memory
// without bound: the controller holds at most max_clients buckets,
// sweeping refilled (information-free) ones first.
TEST(AdmissionTest, ControllerBoundsDistinctClients) {
  AdmissionController::Options options;
  options.rate_limit_rps = 1.0;
  options.rate_limit_burst = 1.0;
  options.max_clients = 8;
  AdmissionController admission(options);
  for (int i = 0; i < 100; ++i) {
    admission.Admit("client-" + std::to_string(i), 0, nullptr);
  }
  EXPECT_LE(admission.num_clients(), 8);
}

// Socket-level determinism: with an injected constant clock there is no
// refill, so rps=1/burst=2 admits exactly two requests and rejects the
// rest with the exact 1000ms retry hint — regardless of scheduling.
TEST(InferenceServerTest, RateLimitingOverSocketIsDeterministic) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  options.rate_limit_rps = 1.0;
  options.rate_limit_burst = 2.0;
  options.clock = [] { return int64_t{0}; };  // frozen time: zero refill
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  std::string out;
  for (int i = 0; i < 5; ++i) {
    out += "{\"id\": \"r" + std::to_string(i) +
           "\", \"node\": " + std::to_string(i) +
           ", \"client\": \"c\"}\n";
  }
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd, 5);
  ::close(fd);
  ASSERT_EQ(lines.size(), 5u);
  std::map<std::string, std::string> by_id = ById(lines);
  int ok = 0;
  int limited = 0;
  for (const auto& [id, line] : by_id) {
    if (line.find("\"label\":") != std::string::npos) {
      ++ok;
    } else {
      EXPECT_NE(line.find("\"reason\":\"rate_limited\""), std::string::npos)
          << id << ": " << line;
      EXPECT_NE(line.find("\"retry_after_ms\":1000"), std::string::npos)
          << id << ": " << line;
      ++limited;
    }
  }
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(limited, 3);
  // The first two requests hold the burst tokens; parsing is in line order
  // on one connection, so exactly r0 and r1 are the admitted ones.
  EXPECT_NE(by_id["r0"].find("\"label\":"), std::string::npos) << by_id["r0"];
  EXPECT_NE(by_id["r1"].find("\"label\":"), std::string::npos) << by_id["r1"];

  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.rate_limited, 3);
  EXPECT_EQ(stats.requests, 2);
  EXPECT_EQ(stats.responses, 2);
}

// The "client" key is one quota spanning connections; absent, each
// connection is its own identity.
TEST(InferenceServerTest, ClientKeySharesQuotaAcrossConnections) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  options.rate_limit_rps = 1.0;
  options.rate_limit_burst = 1.0;
  options.clock = [] { return int64_t{0}; };
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  int fd1 = ConnectLoopback(server.port());
  ASSERT_GE(fd1, 0);
  std::string a0 = "{\"id\": \"a0\", \"node\": 0, \"client\": \"shared\"}\n";
  ASSERT_TRUE(SendAll(fd1, a0.data(), a0.size()));
  std::vector<std::string> first = RecvLines(fd1, 1);
  ASSERT_EQ(first.size(), 1u);
  EXPECT_NE(first[0].find("\"label\":"), std::string::npos) << first[0];

  // Same client identity on a second connection: the shared bucket is
  // drained. A request without the key falls back to the per-connection
  // identity, whose bucket is fresh.
  int fd2 = ConnectLoopback(server.port());
  ASSERT_GE(fd2, 0);
  std::string out =
      "{\"id\": \"a1\", \"node\": 1, \"client\": \"shared\"}\n"
      "{\"id\": \"a2\", \"node\": 2}\n";
  ASSERT_TRUE(SendAll(fd2, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd2, 2);
  ::close(fd1);
  ::close(fd2);
  ASSERT_EQ(lines.size(), 2u);
  std::map<std::string, std::string> by_id = ById(lines);
  EXPECT_NE(by_id["a1"].find("\"reason\":\"rate_limited\""),
            std::string::npos)
      << by_id["a1"];
  EXPECT_NE(by_id["a2"].find("\"label\":"), std::string::npos) << by_id["a2"];

  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().rate_limited, 1);
}

/// Blocks the batcher deterministically: arms serve_mid_batch_reload:0 and
/// installs a chaos hook that signals entry then parks until released. A
/// priming request makes the batcher assemble one batch and stall inside
/// the hook (outside the queue lock), so the test can stage queue contents
/// without racing the drain. Always disarm with SetFaultSpecForTest("").
struct BatcherGate {
  std::promise<void> entered;
  std::promise<void> release;
  std::shared_future<void> release_future{release.get_future().share()};
  std::atomic<bool> signaled{false};

  std::function<void()> Hook() {
    return [this] {
      if (!signaled.exchange(true)) entered.set_value();
      release_future.wait();
    };
  }
};

// Under saturation, queued interactive requests drain before queued batch
// requests even when the batch requests arrived first.
TEST(InferenceServerTest, InteractiveDrainsBeforeBatchUnderSaturation) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  BatcherGate gate;
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 2;
  options.batch_timeout_ms = 2;
  options.chaos_reload_hook = gate.Hook();
  SetFaultSpecForTest("serve_mid_batch_reload:0");
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  int prime_fd = ConnectLoopback(server.port());
  ASSERT_GE(prime_fd, 0);
  std::string prime = "{\"id\": \"prime\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(prime_fd, prime.data(), prime.size()));
  gate.entered.get_future().wait();  // batcher parked mid-batch

  // Stage batch-class work ahead of interactive work in arrival order.
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string out;
  for (int i = 0; i < 4; ++i) {
    out += "{\"id\": \"b" + std::to_string(i) +
           "\", \"node\": " + std::to_string(i) +
           ", \"qos\": \"batch\"}\n";
  }
  for (int i = 0; i < 2; ++i) {
    out += "{\"id\": \"i" + std::to_string(i) +
           "\", \"node\": " + std::to_string(4 + i) +
           ", \"qos\": \"interactive\"}\n";
  }
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  // All six must be queued before the batcher resumes, or the early batch
  // arrivals would drain into the first batch unopposed.
  for (int waited = 0; waited < 200 && server.stats().requests < 7; ++waited) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.stats().requests, 7);  // prime + 6 staged
  gate.release.set_value();

  std::vector<std::string> lines = RecvLines(fd, 6);
  ASSERT_EQ(RecvLines(prime_fd, 1).size(), 1u);
  ::close(fd);
  ::close(prime_fd);
  SetFaultSpecForTest("");
  ASSERT_EQ(lines.size(), 6u);
  // Response write order follows batch assembly order: the two interactive
  // requests fill the first post-release batch despite arriving last.
  auto position = [&](const std::string& id) {
    for (size_t i = 0; i < lines.size(); ++i) {
      if (lines[i].find("\"id\":\"" + id + "\"") != std::string::npos) {
        return static_cast<int>(i);
      }
    }
    return -1;
  };
  for (const char* interactive : {"i0", "i1"}) {
    for (const char* batch : {"b0", "b1", "b2", "b3"}) {
      EXPECT_LT(position(interactive), position(batch))
          << interactive << " drained after " << batch;
    }
  }
  for (const std::string& line : lines) {
    EXPECT_NE(line.find("\"label\":"), std::string::npos) << line;
  }

  server.Stop();
  serving.join();
}

// Overload policy: batch-class entries absorb eviction first (an
// interactive arrival evicts the newest queued batch request), and an
// incoming batch request sheds itself rather than displacing anything
// more important.
TEST(InferenceServerTest, BatchAbsorbsEvictionBeforeInteractive) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  BatcherGate gate;
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 8;
  options.batch_timeout_ms = 2;
  options.max_queue = 3;
  options.chaos_reload_hook = gate.Hook();
  SetFaultSpecForTest("serve_mid_batch_reload:0");
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  int prime_fd = ConnectLoopback(server.port());
  ASSERT_GE(prime_fd, 0);
  std::string prime = "{\"id\": \"prime\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(prime_fd, prime.data(), prime.size()));
  gate.entered.get_future().wait();

  // Queue fills to [i0, b0, b1]; then an interactive arrival evicts the
  // newest batch entry (b1), and a batch arrival sheds itself (b2).
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string out =
      "{\"id\": \"i0\", \"node\": 0, \"qos\": \"interactive\"}\n"
      "{\"id\": \"b0\", \"node\": 1, \"qos\": \"batch\"}\n"
      "{\"id\": \"b1\", \"node\": 2, \"qos\": \"batch\"}\n"
      "{\"id\": \"i1\", \"node\": 3, \"qos\": \"interactive\"}\n"
      "{\"id\": \"b2\", \"node\": 4, \"qos\": \"batch\"}\n";
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  // The two overload rejections are written by the reader while the
  // batcher is still parked — queue state is fully staged, deterministic.
  std::vector<std::string> rejects = RecvLines(fd, 2);
  ASSERT_EQ(rejects.size(), 2u);
  gate.release.set_value();

  std::vector<std::string> answers = RecvLines(fd, 3);
  ASSERT_EQ(RecvLines(prime_fd, 1).size(), 1u);
  ::close(fd);
  ::close(prime_fd);
  SetFaultSpecForTest("");
  ASSERT_EQ(answers.size(), 3u);

  std::map<std::string, std::string> by_id = ById(rejects);
  for (const char* victim : {"b1", "b2"}) {
    ASSERT_NE(by_id.find(victim), by_id.end())
        << victim << " was not the evicted request";
    EXPECT_NE(by_id[victim].find("\"reason\":\"overloaded\""),
              std::string::npos)
        << by_id[victim];
    EXPECT_NE(by_id[victim].find("\"retry_after_ms\":"), std::string::npos)
        << by_id[victim];
  }
  by_id = ById(answers);
  for (const char* survivor : {"i0", "i1", "b0"}) {
    ASSERT_NE(by_id.find(survivor), by_id.end()) << survivor << " was lost";
    EXPECT_NE(by_id[survivor].find("\"label\":"), std::string::npos)
        << by_id[survivor];
  }

  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().shed, 2);
}

// A full queue of interactive work never yields to an incoming batch
// request: the batch request itself is shed.
TEST(InferenceServerTest, IncomingBatchNeverDisplacesQueuedInteractive) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  BatcherGate gate;
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 8;
  options.batch_timeout_ms = 2;
  options.max_queue = 2;
  options.chaos_reload_hook = gate.Hook();
  SetFaultSpecForTest("serve_mid_batch_reload:0");
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  int prime_fd = ConnectLoopback(server.port());
  ASSERT_GE(prime_fd, 0);
  std::string prime = "{\"id\": \"prime\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(prime_fd, prime.data(), prime.size()));
  gate.entered.get_future().wait();

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string out =
      "{\"id\": \"i0\", \"node\": 0}\n"
      "{\"id\": \"i1\", \"node\": 1}\n"
      "{\"id\": \"b0\", \"node\": 2, \"qos\": \"batch\"}\n";
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> reject = RecvLines(fd, 1);
  ASSERT_EQ(reject.size(), 1u);
  EXPECT_NE(reject[0].find("\"id\":\"b0\""), std::string::npos) << reject[0];
  EXPECT_NE(reject[0].find("\"reason\":\"overloaded\""), std::string::npos)
      << reject[0];
  gate.release.set_value();

  std::vector<std::string> answers = RecvLines(fd, 2);
  ASSERT_EQ(RecvLines(prime_fd, 1).size(), 1u);
  ::close(fd);
  ::close(prime_fd);
  SetFaultSpecForTest("");
  ASSERT_EQ(answers.size(), 2u);
  std::map<std::string, std::string> by_id = ById(answers);
  EXPECT_NE(by_id["i0"].find("\"label\":"), std::string::npos) << by_id["i0"];
  EXPECT_NE(by_id["i1"].find("\"label\":"), std::string::npos) << by_id["i1"];

  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().shed, 1);
}

// The per-connection in-flight cap rejects the overflow request on the
// flooding connection with a structured inflight_limit rejection; the
// capped requests still complete.
TEST(InferenceServerTest, InflightCapRejectsPerConnection) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  BatcherGate gate;
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 8;
  options.batch_timeout_ms = 2;
  options.max_inflight_per_conn = 2;
  options.chaos_reload_hook = gate.Hook();
  SetFaultSpecForTest("serve_mid_batch_reload:0");
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  int prime_fd = ConnectLoopback(server.port());
  ASSERT_GE(prime_fd, 0);
  std::string prime = "{\"id\": \"prime\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(prime_fd, prime.data(), prime.size()));
  gate.entered.get_future().wait();

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string out =
      "{\"id\": \"r0\", \"node\": 0}\n"
      "{\"id\": \"r1\", \"node\": 1}\n"
      "{\"id\": \"r2\", \"node\": 2}\n";
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> reject = RecvLines(fd, 1);
  ASSERT_EQ(reject.size(), 1u);
  EXPECT_NE(reject[0].find("\"id\":\"r2\""), std::string::npos) << reject[0];
  EXPECT_NE(reject[0].find("\"reason\":\"inflight_limit\""),
            std::string::npos)
      << reject[0];
  EXPECT_NE(reject[0].find("\"retry_after_ms\":"), std::string::npos)
      << reject[0];
  gate.release.set_value();

  std::vector<std::string> answers = RecvLines(fd, 2);
  ASSERT_EQ(RecvLines(prime_fd, 1).size(), 1u);
  ::close(fd);
  ::close(prime_fd);
  SetFaultSpecForTest("");
  ASSERT_EQ(answers.size(), 2u);
  std::map<std::string, std::string> by_id = ById(answers);
  EXPECT_NE(by_id["r0"].find("\"label\":"), std::string::npos) << by_id["r0"];
  EXPECT_NE(by_id["r1"].find("\"label\":"), std::string::npos) << by_id["r1"];

  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().inflight_rejected, 1);
}

// Slow-loris defense: a connection that never sends anything is answered
// with a structured idle_timeout rejection and closed.
TEST(InferenceServerTest, IdleConnectionsAreReaped) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.batch_timeout_ms = 2;
  options.idle_timeout_ms = 120;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  // Send nothing. The reaper must answer and hang up on its own.
  std::vector<std::string> lines = RecvLines(fd, 1);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"reason\":\"idle_timeout\""), std::string::npos)
      << lines[0];
  // The server closes its side after the rejection.
  char buf[16];
  EXPECT_EQ(::recv(fd, buf, sizeof(buf), 0), 0);
  ::close(fd);

  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().idle_closed, 1);
}

// An active connection survives idle reaping as long as it keeps talking.
TEST(InferenceServerTest, ActiveConnectionOutlivesIdleTimeout) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.batch_timeout_ms = 2;
  options.idle_timeout_ms = 150;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  for (int i = 0; i < 4; ++i) {
    std::string line =
        "{\"id\": \"k" + std::to_string(i) + "\", \"node\": 0}\n";
    ASSERT_TRUE(SendAll(fd, line.data(), line.size()));
    ASSERT_EQ(RecvLines(fd, 1).size(), 1u) << "request " << i;
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
  }
  ::close(fd);
  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().idle_closed, 0);
  EXPECT_EQ(server.stats().responses, 4);
}

// The accept gate refuses connections beyond max_conns with a structured
// refusal instead of letting them queue invisibly; a freed slot admits new
// connections again.
TEST(InferenceServerTest, MaxConnsRefusesThenRecovers) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.batch_timeout_ms = 2;
  options.max_conns = 1;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  // Occupy the only slot and prove it serves.
  int fd1 = ConnectLoopback(server.port());
  ASSERT_GE(fd1, 0);
  std::string line = "{\"id\": \"r0\", \"node\": 0}\n";
  ASSERT_TRUE(SendAll(fd1, line.data(), line.size()));
  ASSERT_EQ(RecvLines(fd1, 1).size(), 1u);

  int fd2 = ConnectLoopback(server.port());
  ASSERT_GE(fd2, 0);
  std::vector<std::string> refusal = RecvLines(fd2, 1);
  ::close(fd2);
  ASSERT_EQ(refusal.size(), 1u);
  EXPECT_NE(refusal[0].find("\"reason\":\"max_conns\""), std::string::npos)
      << refusal[0];
  EXPECT_NE(refusal[0].find("\"retry_after_ms\":"), std::string::npos)
      << refusal[0];

  // Free the slot; the reader prunes the dead connection within its poll
  // interval and new connections are admitted again.
  ::close(fd1);
  bool recovered = false;
  for (int attempt = 0; attempt < 100 && !recovered; ++attempt) {
    int fd3 = ConnectLoopback(server.port());
    ASSERT_GE(fd3, 0);
    ASSERT_TRUE(SendAll(fd3, line.data(), line.size()));
    std::vector<std::string> got = RecvLines(fd3, 1);
    ::close(fd3);
    ASSERT_EQ(got.size(), 1u);
    if (got[0].find("\"label\":") != std::string::npos) {
      recovered = true;
    } else {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  EXPECT_TRUE(recovered);

  server.Stop();
  serving.join();
  EXPECT_GE(server.stats().conns_refused, 1);
}

// ---------------------------------------------------------------------------
// Chaos containment: each soft fault site fires under traffic and the
// failure stays contained — every well-formed request is answered, fds
// settle back to baseline, and the trigger count is visible in stats.
// ---------------------------------------------------------------------------

/// Runs `requests` predictions against a default-model server with `spec`
/// armed and asserts every response arrives well-formed, fds settle, and
/// the fault actually fired.
void RunChaosTraffic(const std::string& spec, int requests,
                     const std::function<void(ServerOptions*)>& tweak =
                         nullptr) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  if (tweak) tweak(&options);
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });

  // Baseline after a warm-up connection so one-time allocations settle.
  {
    int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    std::string line = "{\"id\": \"warm\", \"node\": 0}\n";
    ASSERT_TRUE(SendAll(fd, line.data(), line.size()));
    ASSERT_EQ(RecvLines(fd, 1).size(), 1u);
    ::close(fd);
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  int baseline = CountOpenFds();
  ASSERT_GT(baseline, 0);

  int64_t triggers_before = FaultTriggersObserved();
  SetFaultSpecForTest(spec);
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string out;
  for (int i = 0; i < requests; ++i) {
    out += "{\"id\": \"c" + std::to_string(i) +
           "\", \"node\": " + std::to_string(i % 8) + "}\n";
  }
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd, static_cast<size_t>(requests));
  ::close(fd);
  SetFaultSpecForTest("");
  ASSERT_EQ(lines.size(), static_cast<size_t>(requests))
      << "dropped responses under " << spec;
  std::map<std::string, std::string> by_id = ById(lines);
  for (int i = 0; i < requests; ++i) {
    const std::string& line = by_id["c" + std::to_string(i)];
    EXPECT_NE(line.find("\"label\":"), std::string::npos)
        << "c" << i << " under " << spec << ": " << line;
  }
  EXPECT_GT(FaultTriggersObserved(), triggers_before)
      << spec << " never fired";
  EXPECT_GT(server.stats().faults_injected, triggers_before);

  // The chaos connection's fds are reaped like any other.
  int settled = -1;
  for (int waited = 0; waited < 100; ++waited) {
    settled = CountOpenFds();
    if (settled <= baseline) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  EXPECT_LE(settled, baseline) << "fds leaked under " << spec;

  server.Stop();
  serving.join();
}

TEST(ChaosTest, PartialWritesAreRetriedToCompletion) {
  // Every send() truncated to one byte: responses must still arrive whole.
  RunChaosTraffic("serve_partial_write:*", 6);
}

TEST(ChaosTest, TornReadsReassembleAcrossIngestPasses) {
  RunChaosTraffic("serve_torn_read:*", 6);
}

TEST(ChaosTest, DelayedAcceptsStillServe) {
  RunChaosTraffic("serve_delayed_accept:*", 4);
}

TEST(ChaosTest, MidBatchReloadKeepsPinnedSessionsServing) {
  std::atomic<int> reloads{0};
  RunChaosTraffic("serve_mid_batch_reload:*", 6, [&](ServerOptions* options) {
    options->chaos_reload_hook = [&reloads] { ++reloads; };
  });
  EXPECT_GT(reloads.load(), 0);
}

// A validated mutation that fails to apply is a structured fault_injected
// rejection; the server keeps serving and counters stay consistent
// (nothing applied, no dirty rows from the failed delta).
TEST(ChaosTest, MutationApplyFaultIsContained) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.set_mutation_options(/*enabled=*/true, /*staleness_ms=*/0);
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  ServerOptions options;
  options.tcp_port = 0;
  options.max_batch = 4;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  SetFaultSpecForTest("serve_mutation_apply:0");

  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  std::string out =
      "{\"id\": \"m0\", \"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 0, \"dst\": 0}\n"
      "{\"id\": \"m1\", \"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 0, \"dst\": 1}\n";
  ASSERT_TRUE(SendAll(fd, out.data(), out.size()));
  std::vector<std::string> lines = RecvLines(fd, 2);
  ::close(fd);
  SetFaultSpecForTest("");
  ASSERT_EQ(lines.size(), 2u);
  std::map<std::string, std::string> by_id = ById(lines);
  // Hit 0 is the first mutation dispatched; FIFO on one connection.
  EXPECT_NE(by_id["m0"].find("\"reason\":\"fault_injected\""),
            std::string::npos)
      << by_id["m0"];
  EXPECT_NE(by_id["m1"].find("\"applied\":\"add_edge\""), std::string::npos)
      << by_id["m1"];

  server.Stop();
  serving.join();
  ServeStats stats = server.stats();
  EXPECT_EQ(stats.mutations_applied, 1);
  EXPECT_GT(stats.faults_injected, 0);
}

// Satellite: a failed hot reload must leave the old serving set untouched
// — same predictions before and after — and be visible as reload_failures.
TEST(InferenceServerTest, FailedReloadKeepsOldRegistryServing) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  std::string path = TempPath("failed_reload.aacm");
  ASSERT_TRUE(SaveFrozenModel(env.frozen(), path).ok());
  ModelRegistry registry;
  InferenceSession::Options interpret;
  interpret.compile = false;
  registry.set_session_options(interpret);
  ASSERT_TRUE(registry.LoadFromSpec("m=" + path, "").ok());
  ServerOptions options;
  options.tcp_port = 0;
  options.batch_timeout_ms = 2;
  InferenceServer server(&registry, options);
  ASSERT_TRUE(server.Start().ok());
  std::thread serving([&] { server.Serve(); });
  int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);

  std::string line = "{\"id\": \"r0\", \"node\": 0, \"model\": \"m\"}\n";
  ASSERT_TRUE(SendAll(fd, line.data(), line.size()));
  std::vector<std::string> before = RecvLines(fd, 1);
  ASSERT_EQ(before.size(), 1u);
  ASSERT_NE(before[0].find("\"label\":"), std::string::npos) << before[0];

  // Corrupt the artifact on disk; the reload must fail all-or-nothing.
  {
    std::ofstream corrupt(path, std::ios::binary | std::ios::trunc);
    corrupt << "not a frozen model";
  }
  StatusOr<ModelRegistry::ReloadReport> reload = registry.Reload();
  ASSERT_FALSE(reload.ok());
  server.NoteReloadFailure();

  ASSERT_TRUE(SendAll(fd, line.data(), line.size()));
  std::vector<std::string> after = RecvLines(fd, 1);
  ::close(fd);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(StripLatency(after[0]), StripLatency(before[0]));

  server.Stop();
  serving.join();
  EXPECT_EQ(server.stats().reload_failures, 1);
}

// Satellite: malformed mutation-feed lines are skipped and counted with
// 1-indexed line numbers — replay never aborts.
TEST(FeedReplayTest, SkipsAndCountsMalformedLines) {
  const ServingEnvironment& env = ServingEnvironment::Get();
  ModelRegistry registry;
  registry.set_mutation_options(/*enabled=*/true, /*staleness_ms=*/0);
  registry.Register("default",
                    std::make_shared<InferenceSession>(env.frozen()));
  std::vector<std::string> lines = {
      "{\"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 0, \"dst\": 1}",                                  // applied
      "{nope",                                                    // malformed
      "{\"node\": 0}",                                            // prediction
      "{\"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 0, \"dst\": 1, \"model\": \"ghost\"}",            // no model
      "{\"op\": \"add_node\", \"type\": \"gizmo\"}",              // bad apply
      "{\"op\": \"add_edge\", \"edge\": \"paper-author\", "
      "\"src\": 2, \"dst\": 3}",                                  // applied
  };
  FeedReplayReport report = ReplayMutationFeed(&registry, lines);
  EXPECT_EQ(report.applied, 2);
  EXPECT_EQ(report.skipped, 4);
  EXPECT_GT(report.dirty_rows, 0);
  ASSERT_EQ(report.errors.size(), 4u);
  EXPECT_EQ(report.errors[0].rfind("line 2:", 0), 0u) << report.errors[0];
  EXPECT_EQ(report.errors[1].rfind("line 3:", 0), 0u) << report.errors[1];
  EXPECT_NE(report.errors[1].find("not a mutation"), std::string::npos)
      << report.errors[1];
  EXPECT_EQ(report.errors[2].rfind("line 4:", 0), 0u) << report.errors[2];
  EXPECT_NE(report.errors[2].find("unknown model"), std::string::npos)
      << report.errors[2];
  EXPECT_EQ(report.errors[3].rfind("line 5:", 0), 0u) << report.errors[3];
}

TEST(FeedReplayTest, ErrorListIsBoundedButCountsAreNot) {
  ModelRegistry registry;  // empty: every mutation hits "unknown model"
  std::vector<std::string> lines(
      FeedReplayReport::kMaxErrors + 8,
      "{\"op\": \"add_edge\", \"edge\": \"e\", \"src\": 0, \"dst\": 0}");
  FeedReplayReport report = ReplayMutationFeed(&registry, lines);
  EXPECT_EQ(report.applied, 0);
  EXPECT_EQ(report.skipped,
            static_cast<int64_t>(FeedReplayReport::kMaxErrors) + 8);
  EXPECT_EQ(static_cast<int64_t>(report.errors.size()),
            FeedReplayReport::kMaxErrors);
}

}  // namespace
}  // namespace autoac
