#include "autoac/task.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/init.h"

namespace autoac {
namespace {

Dataset SmallDataset(const std::string& name) {
  DatasetOptions options;
  options.scale = 0.05;
  return MakeDataset(name, options);
}

TEST(TaskTest, NodeTaskWrapsDatasetSplit) {
  Dataset dataset = SmallDataset("acm");
  TaskData task = MakeNodeTask(dataset);
  EXPECT_EQ(task.task, TaskKind::kNodeClassification);
  EXPECT_EQ(task.graph.get(), dataset.graph.get());
  EXPECT_EQ(task.node_split.train.size(), dataset.split.train.size());
}

TEST(TaskTest, LinkTaskMasksEdges) {
  Dataset dataset = SmallDataset("lastfm");
  Rng rng(1);
  TaskData task = MakeLinkTask(dataset, 0.1, rng);
  EXPECT_EQ(task.task, TaskKind::kLinkPrediction);
  EXPECT_LT(task.graph->num_edges(), dataset.graph->num_edges());
  EXPECT_FALSE(task.val_pos.empty());
  EXPECT_FALSE(task.test_pos.empty());
  EXPECT_FALSE(task.train_pos.empty());
}

TEST(TaskHeadTest, NodeLossesAreFiniteAndPositive) {
  Dataset dataset = SmallDataset("acm");
  TaskData task = MakeNodeTask(dataset);
  Rng rng(2);
  TaskHead head(task, /*model_out_dim=*/8, /*mrr_negatives=*/5, rng);
  VarPtr h = MakeConst(RandomNormal({task.graph->num_nodes(), 8}, 0.5f, rng));
  VarPtr train_loss = head.TrainLoss(h, rng);
  VarPtr val_loss = head.ValLoss(h);
  EXPECT_TRUE(std::isfinite(train_loss->value.data()[0]));
  EXPECT_TRUE(std::isfinite(val_loss->value.data()[0]));
  EXPECT_GT(train_loss->value.data()[0], 0.0f);
}

TEST(TaskHeadTest, NodeEvaluationScoresInRange) {
  Dataset dataset = SmallDataset("acm");
  TaskData task = MakeNodeTask(dataset);
  Rng rng(3);
  TaskHead head(task, 8, 5, rng);
  VarPtr h = MakeConst(RandomNormal({task.graph->num_nodes(), 8}, 0.5f, rng));
  TaskScores val = head.EvaluateVal(h);
  TaskScores test = head.EvaluateTest(h);
  for (double score : {val.micro_f1, val.macro_f1, test.micro_f1,
                       test.macro_f1}) {
    EXPECT_GE(score, 0.0);
    EXPECT_LE(score, 1.0);
  }
  EXPECT_EQ(val.primary, val.micro_f1);
}

TEST(TaskHeadTest, LinkEvaluationScoresInRange) {
  Dataset dataset = SmallDataset("lastfm");
  Rng rng(4);
  TaskData task = MakeLinkTask(dataset, 0.15, rng);
  TaskHead head(task, 8, 5, rng);
  VarPtr h = MakeConst(RandomNormal({task.graph->num_nodes(), 8}, 0.5f, rng));
  VarPtr loss = head.TrainLoss(h, rng);
  EXPECT_TRUE(std::isfinite(loss->value.data()[0]));
  TaskScores test = head.EvaluateTest(h);
  EXPECT_GE(test.roc_auc, 0.0);
  EXPECT_LE(test.roc_auc, 1.0);
  EXPECT_GT(test.mrr, 0.0);
  EXPECT_LE(test.mrr, 1.0);
  EXPECT_EQ(test.primary, test.roc_auc);
}

TEST(TaskHeadTest, NodeHeadHasParametersLinkHeadDoesNot) {
  Dataset acm = SmallDataset("acm");
  TaskData node_task = MakeNodeTask(acm);
  Rng rng(5);
  TaskHead node_head(node_task, 8, 5, rng);
  EXPECT_FALSE(node_head.Parameters().empty());

  Dataset lastfm = SmallDataset("lastfm");
  TaskData link_task = MakeLinkTask(lastfm, 0.1, rng);
  TaskHead link_head(link_task, 8, 5, rng);
  EXPECT_TRUE(link_head.Parameters().empty());
}

TEST(TaskHeadTest, PerfectEmbeddingsScoreHighOnLinkTask) {
  // Hand-crafted embeddings that score true pairs higher than negatives:
  // identical vectors for endpoints of positive pairs.
  Dataset dataset = SmallDataset("lastfm");
  Rng rng(6);
  TaskData task = MakeLinkTask(dataset, 0.2, rng);
  Tensor h(task.graph->num_nodes(), 4);
  // Assign a shared random direction to each positive pair (train+test).
  Rng feature_rng(7);
  auto assign_pair = [&](int64_t u, int64_t v) {
    for (int64_t j = 0; j < 4; ++j) {
      float value = static_cast<float>(feature_rng.Normal(0, 1));
      h.at(u, j) += value;
      h.at(v, j) += value;
    }
  };
  for (const auto& [u, v] : task.test_pos) assign_pair(u, v);
  TaskHead head(task, 4, 10, rng);
  TaskScores test = head.EvaluateTest(MakeConst(h));
  // Users appear in several positive pairs, so candidate negatives that
  // reuse a positive endpoint also score > 0; separation is strong but not
  // perfect.
  EXPECT_GT(test.roc_auc, 0.62);
  EXPECT_GT(test.mrr, 0.45);
}

}  // namespace
}  // namespace autoac
