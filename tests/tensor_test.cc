#include "tensor/tensor.h"

#include <utility>

#include "gtest/gtest.h"

namespace autoac {
namespace {

TEST(TensorTest, DefaultIsEmpty) {
  Tensor t;
  EXPECT_EQ(t.dim(), 0);
  EXPECT_EQ(t.numel(), 0);
}

TEST(TensorTest, ShapeConstructionZeroFills) {
  Tensor t(3, 4);
  EXPECT_EQ(t.dim(), 2);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 4);
  EXPECT_EQ(t.numel(), 12);
  for (int64_t i = 0; i < 3; ++i) {
    for (int64_t j = 0; j < 4; ++j) EXPECT_EQ(t.at(i, j), 0.0f);
  }
}

TEST(TensorTest, FromVectorRoundTrips) {
  Tensor t = Tensor::FromVector({2, 2}, {1.0f, 2.0f, 3.0f, 4.0f});
  EXPECT_EQ(t.at(0, 0), 1.0f);
  EXPECT_EQ(t.at(0, 1), 2.0f);
  EXPECT_EQ(t.at(1, 0), 3.0f);
  EXPECT_EQ(t.at(1, 1), 4.0f);
}

TEST(TensorTest, RowMajorLayout) {
  Tensor t = Tensor::FromVector({2, 3}, {0, 1, 2, 3, 4, 5});
  // Element (i, j) must live at data()[i * cols + j].
  EXPECT_EQ(t.data()[1 * 3 + 2], t.at(1, 2));
  EXPECT_EQ(t.at(1, 2), 5.0f);
}

TEST(TensorTest, FullAndScalar) {
  Tensor full = Tensor::Full({2, 2}, 7.5f);
  EXPECT_EQ(full.at(1, 1), 7.5f);
  Tensor s = Tensor::Scalar(-3.0f);
  EXPECT_EQ(s.dim(), 1);
  EXPECT_EQ(s.numel(), 1);
  EXPECT_EQ(s.at(0), -3.0f);
}

TEST(TensorTest, FillOverwritesEverything) {
  Tensor t = Tensor::FromVector({3}, {1, 2, 3});
  t.Fill(9.0f);
  for (int64_t i = 0; i < 3; ++i) EXPECT_EQ(t.at(i), 9.0f);
}

TEST(TensorTest, ReshapePreservesDataAndNumel) {
  Tensor t = Tensor::FromVector({2, 3}, {0, 1, 2, 3, 4, 5});
  Tensor r = t.Reshaped({3, 2});
  EXPECT_EQ(r.rows(), 3);
  EXPECT_EQ(r.cols(), 2);
  EXPECT_EQ(r.at(2, 1), 5.0f);
}

TEST(TensorTest, SameShape) {
  Tensor a(2, 3), b(2, 3), c(3, 2);
  EXPECT_TRUE(a.SameShape(b));
  EXPECT_FALSE(a.SameShape(c));
}

TEST(TensorTest, ShapeString) {
  Tensor t(2, 3);
  EXPECT_EQ(t.ShapeString(), "[2, 3]");
}

// The process-wide allocation counter is the probe behind the "zero heap
// allocations in steady state" gates (compiled forward, serving benchmark),
// so its bump/no-bump semantics are load-bearing.
TEST(TensorTest, BuffersAllocatedCountsOnlyNewStorage) {
  int64_t base = TensorBuffersAllocated();

  Tensor a(3, 4);  // shape construction allocates
  EXPECT_EQ(TensorBuffersAllocated(), base + 1);

  Tensor b = a;  // copy acquires its own buffer
  EXPECT_EQ(TensorBuffersAllocated(), base + 2);

  Tensor moved = std::move(b);  // moves steal, never allocate
  EXPECT_EQ(TensorBuffersAllocated(), base + 2);

  Tensor c(3, 4);  // +1
  c = a;           // capacity suffices: copy-assign reuses it
  EXPECT_EQ(TensorBuffersAllocated(), base + 3);
  Tensor d(1, 1);  // +1
  d = a;           // capacity too small: copy-assign must grow
  EXPECT_EQ(TensorBuffersAllocated(), base + 5);

  a.ReshapeInPlace({4, 3});  // same numel, same buffer
  EXPECT_EQ(TensorBuffersAllocated(), base + 5);
  a.ReserveNumel(12);  // already reserved: no-op
  EXPECT_EQ(TensorBuffersAllocated(), base + 5);
  a.ReserveNumel(64);  // growth allocates
  EXPECT_EQ(TensorBuffersAllocated(), base + 6);

  Tensor empty;  // zero-sized tensors never count
  Tensor empty2 = empty;
  EXPECT_EQ(TensorBuffersAllocated(), base + 6);
}

TEST(TensorDeathTest, FromVectorSizeMismatchAborts) {
  EXPECT_DEATH(Tensor::FromVector({2, 2}, {1.0f}), "CHECK failed");
}

TEST(TensorDeathTest, ReshapeNumelMismatchAborts) {
  Tensor t(2, 3);
  EXPECT_DEATH(t.Reshaped({4, 2}), "CHECK failed");
}

TEST(TensorDeathTest, NegativeExtentAborts) {
  EXPECT_DEATH(Tensor(std::vector<int64_t>{-1, 4}), "CHECK failed");
}

}  // namespace
}  // namespace autoac
