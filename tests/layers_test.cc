#include "models/layers.h"

#include <cmath>

#include "grad_check.h"
#include "gtest/gtest.h"
#include "tensor/init.h"

namespace autoac {
namespace {

using testing::ExpectGradientsMatch;

TEST(LinearTest, AffineMapMatchesManual) {
  Rng rng(1);
  Linear layer(2, 3, rng);
  VarPtr x = MakeConst(Tensor::FromVector({1, 2}, {1.0f, -2.0f}));
  VarPtr y = layer.Apply(x);
  const Tensor& w = layer.weight()->value;
  for (int64_t j = 0; j < 3; ++j) {
    // bias starts at zero
    EXPECT_NEAR(y->value.at(0, j), w.at(0, j) - 2.0f * w.at(1, j), 1e-5);
  }
  EXPECT_EQ(layer.Parameters().size(), 2u);
}

TEST(LinearTest, GradCheckThroughLayer) {
  Rng rng(2);
  Linear layer(3, 2, rng);
  VarPtr x = MakeParam(RandomNormal({4, 3}, 0.8f, rng));
  std::vector<VarPtr> params = layer.Parameters();
  params.push_back(x);
  ExpectGradientsMatch(params, [&] { return SumSquares(layer.Apply(x)); });
}

TEST(GraphAttentionHeadTest, OutputShapeAndGradients) {
  Rng rng(3);
  SpMatPtr adj = MakeSparse(
      Csr::FromCoo(4, 4, {0, 0, 1, 2, 3}, {1, 2, 0, 3, 2}));
  GraphAttentionHead head(3, 2, 0.1f, rng);
  VarPtr x = MakeParam(RandomNormal({4, 3}, 0.8f, rng));
  VarPtr out = head.Apply(adj, x);
  EXPECT_EQ(out->value.rows(), 4);
  EXPECT_EQ(out->value.cols(), 2);
  std::vector<VarPtr> params = head.Parameters();
  EXPECT_EQ(params.size(), 3u);
  params.push_back(x);
  ExpectGradientsMatch(params, [&] { return SumSquares(head.Apply(adj, x)); });
}

TEST(GraphAttentionHeadTest, EdgeTypeLogitsShiftAttention) {
  Rng rng(4);
  // Node 0 attends to nodes 1 and 2.
  SpMatPtr adj = MakeSparse(Csr::FromCoo(3, 3, {0, 0}, {1, 2}));
  GraphAttentionHead head(2, 2, 0.1f, rng);
  VarPtr x = MakeConst(RandomNormal({3, 2}, 1.0f, rng));
  VarPtr no_bias = head.Apply(adj, x);
  // Strong positive logit on the first edge shifts the result toward h_1.
  VarPtr bias = MakeConst(Tensor::FromVector({2}, {50.0f, 0.0f}));
  VarPtr biased = head.Apply(adj, x, bias);
  // The biased output at node 0 should equal (approximately) W h_1 only.
  bool differs = false;
  for (int64_t j = 0; j < 2; ++j) {
    if (std::fabs(biased->value.at(0, j) - no_bias->value.at(0, j)) > 1e-4) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs);
}

TEST(SemanticAttentionTest, SingleEmbeddingPassesThrough) {
  Rng rng(5);
  SemanticAttention attention(4, 8, rng);
  VarPtr z = MakeConst(RandomNormal({5, 4}, 1.0f, rng));
  std::vector<float> weights;
  VarPtr out = attention.Apply({z}, {0, 1, 2}, &weights);
  EXPECT_EQ(out.get(), z.get());
  ASSERT_EQ(weights.size(), 1u);
  EXPECT_EQ(weights[0], 1.0f);
}

TEST(SemanticAttentionTest, WeightsFormDistribution) {
  Rng rng(6);
  SemanticAttention attention(4, 8, rng);
  VarPtr z1 = MakeConst(RandomNormal({5, 4}, 1.0f, rng));
  VarPtr z2 = MakeConst(RandomNormal({5, 4}, 1.0f, rng));
  VarPtr z3 = MakeConst(RandomNormal({5, 4}, 1.0f, rng));
  std::vector<float> weights;
  VarPtr out = attention.Apply({z1, z2, z3}, {0, 1, 2, 3, 4}, &weights);
  EXPECT_EQ(out->value.rows(), 5);
  ASSERT_EQ(weights.size(), 3u);
  float sum = 0;
  for (float w : weights) {
    EXPECT_GT(w, 0.0f);
    sum += w;
  }
  EXPECT_NEAR(sum, 1.0f, 1e-5);
}

TEST(SemanticAttentionTest, GradientsFlowToAllInputs) {
  Rng rng(7);
  SemanticAttention attention(3, 4, rng);
  VarPtr z1 = MakeParam(RandomNormal({4, 3}, 0.8f, rng));
  VarPtr z2 = MakeParam(RandomNormal({4, 3}, 0.8f, rng));
  ZeroGrads({z1, z2});
  Backward(SumSquares(attention.Apply({z1, z2}, {0, 1, 2, 3})));
  EXPECT_GT(z1->grad.numel(), 0);
  EXPECT_GT(z2->grad.numel(), 0);
}

}  // namespace
}  // namespace autoac
