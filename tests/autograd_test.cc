#include <cmath>

#include "grad_check.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/variable.h"
#include "util/rng.h"

namespace autoac {
namespace {

using testing::ExpectGradientsMatch;

VarPtr RandomParam(std::vector<int64_t> shape, Rng& rng, float scale = 0.8f) {
  return MakeParam(RandomNormal(std::move(shape), scale, rng));
}

TEST(AutogradTest, BackwardOnScalarLeafSeedsOne) {
  VarPtr x = MakeParam(Tensor::Scalar(3.0f));
  Backward(x);
  EXPECT_FLOAT_EQ(x->grad.data()[0], 1.0f);
}

TEST(AutogradTest, TopologicalOrderPutsParentsFirst) {
  VarPtr a = MakeParam(Tensor::Scalar(1.0f));
  VarPtr b = Scale(a, 2.0f);
  VarPtr c = Add(b, b);
  std::vector<Variable*> order = TopologicalOrder(c);
  ASSERT_EQ(order.size(), 3u);
  EXPECT_EQ(order.front(), a.get());
  EXPECT_EQ(order.back(), c.get());
}

TEST(AutogradTest, GradientAccumulatesOverReusedNodes) {
  // loss = sum(x + x) -> d loss / dx = 2.
  VarPtr x = MakeParam(Tensor::Full({3}, 1.0f));
  Backward(SumAll(Add(x, x)));
  for (int64_t i = 0; i < 3; ++i) EXPECT_FLOAT_EQ(x->grad.at(i), 2.0f);
}

TEST(AutogradTest, ConstLeafReceivesNoGradient) {
  VarPtr c = MakeConst(Tensor::Full({2, 2}, 1.0f));
  VarPtr w = MakeParam(Tensor::Full({2, 2}, 1.0f));
  Backward(SumAll(MatMul(c, w)));
  EXPECT_EQ(c->grad.numel(), 0);
  EXPECT_GT(w->grad.numel(), 0);
}

TEST(AutogradTest, DeepChainDoesNotOverflowStack) {
  VarPtr x = MakeParam(Tensor::Scalar(1.0f));
  VarPtr y = x;
  for (int i = 0; i < 20000; ++i) y = Scale(y, 1.0f);
  Backward(y);
  EXPECT_FLOAT_EQ(x->grad.data()[0], 1.0f);
}

// --- finite-difference gradient checks for each op ---

TEST(GradCheckTest, MatMul) {
  Rng rng(1);
  VarPtr a = RandomParam({3, 4}, rng);
  VarPtr b = RandomParam({4, 2}, rng);
  ExpectGradientsMatch({a, b}, [&] { return SumAll(MatMul(a, b)); });
}

TEST(GradCheckTest, Transpose) {
  Rng rng(2);
  VarPtr a = RandomParam({3, 2}, rng);
  VarPtr w = RandomParam({3, 2}, rng);
  ExpectGradientsMatch(
      {a}, [&] { return SumAll(Mul(Transpose(a), Transpose(w))); });
}

TEST(GradCheckTest, AddSubMulScale) {
  Rng rng(3);
  VarPtr a = RandomParam({2, 3}, rng);
  VarPtr b = RandomParam({2, 3}, rng);
  ExpectGradientsMatch({a, b}, [&] {
    return SumAll(Mul(Sub(Add(a, b), Scale(b, 0.5f)), a));
  });
}

TEST(GradCheckTest, AddN) {
  Rng rng(4);
  VarPtr a = RandomParam({2, 2}, rng);
  VarPtr b = RandomParam({2, 2}, rng);
  VarPtr c = RandomParam({2, 2}, rng);
  ExpectGradientsMatch({a, b, c},
                       [&] { return SumSquares(AddN({a, b, c})); });
}

TEST(GradCheckTest, ScaleByVar) {
  Rng rng(5);
  VarPtr x = RandomParam({2, 3}, rng);
  VarPtr s = MakeParam(Tensor::Scalar(0.7f));
  ExpectGradientsMatch({x, s}, [&] { return SumSquares(ScaleByVar(x, s)); });
}

TEST(GradCheckTest, AddBias) {
  Rng rng(6);
  VarPtr x = RandomParam({3, 4}, rng);
  VarPtr b = RandomParam({4}, rng);
  ExpectGradientsMatch({x, b}, [&] { return SumSquares(AddBias(x, b)); });
}

TEST(GradCheckTest, Sqrt) {
  Rng rng(7);
  VarPtr x = MakeParam(Tensor::Full({4}, 2.25f));
  ExpectGradientsMatch({x}, [&] { return SumAll(Sqrt(x)); });
}

TEST(GradCheckTest, ConcatRowsAndCols) {
  Rng rng(8);
  VarPtr a = RandomParam({2, 3}, rng);
  VarPtr b = RandomParam({1, 3}, rng);
  VarPtr c = RandomParam({3, 2}, rng);
  VarPtr d = RandomParam({3, 1}, rng);
  ExpectGradientsMatch({a, b}, [&] { return SumSquares(ConcatRows({a, b})); });
  ExpectGradientsMatch({c, d}, [&] { return SumSquares(ConcatCols({c, d})); });
}

TEST(GradCheckTest, GatherAndScatterRows) {
  Rng rng(9);
  VarPtr x = RandomParam({4, 3}, rng);
  ExpectGradientsMatch(
      {x}, [&] { return SumSquares(GatherRows(x, {2, 0, 2})); });
  VarPtr y = RandomParam({2, 3}, rng);
  ExpectGradientsMatch(
      {y}, [&] { return SumSquares(ScatterRows(y, {3, 1}, 5)); });
}

TEST(GradCheckTest, SliceColAndElementAndReshape) {
  Rng rng(10);
  VarPtr x = RandomParam({3, 4}, rng);
  ExpectGradientsMatch({x}, [&] { return SumSquares(SliceCol(x, 2)); });
  VarPtr v = RandomParam({5}, rng);
  ExpectGradientsMatch({v}, [&] { return SliceElement(v, 3); });
  ExpectGradientsMatch({x}, [&] {
    return SumSquares(Reshape(x, {4, 3}));
  });
}

TEST(GradCheckTest, ScaleRowsByGather) {
  Rng rng(11);
  VarPtr x = RandomParam({4, 3}, rng);
  VarPtr w = RandomParam({2}, rng);
  ExpectGradientsMatch({x, w}, [&] {
    return SumSquares(ScaleRowsByGather(x, w, {0, 1, 1, 0}));
  });
}

TEST(GradCheckTest, Reductions) {
  Rng rng(12);
  VarPtr x = RandomParam({3, 3}, rng);
  ExpectGradientsMatch({x}, [&] { return SumAll(x); });
  ExpectGradientsMatch({x}, [&] { return MeanAll(x); });
  ExpectGradientsMatch({x}, [&] { return SumSquares(x); });
}

TEST(GradCheckTest, Nonlinearities) {
  Rng rng(13);
  // Keep values away from the ReLU kink where finite differences lie.
  VarPtr x = MakeParam(
      Tensor::FromVector({6}, {-1.5f, -0.6f, 0.4f, 1.2f, 2.0f, -2.2f}));
  ExpectGradientsMatch({x}, [&] { return SumSquares(Relu(x)); });
  ExpectGradientsMatch({x}, [&] { return SumSquares(LeakyRelu(x, 0.1f)); });
  ExpectGradientsMatch({x}, [&] { return SumSquares(Elu(x)); });
  ExpectGradientsMatch({x}, [&] { return SumSquares(Sigmoid(x)); });
  ExpectGradientsMatch({x}, [&] { return SumSquares(Tanh(x)); });
}

TEST(GradCheckTest, RowSoftmax) {
  Rng rng(14);
  VarPtr x = RandomParam({3, 4}, rng);
  VarPtr target = MakeConst(RandomNormal({3, 4}, 1.0f, rng));
  ExpectGradientsMatch(
      {x}, [&] { return SumSquares(Sub(RowSoftmax(x), target)); });
}

TEST(GradCheckTest, RowL2Normalize) {
  Rng rng(15);
  VarPtr x = RandomParam({3, 4}, rng, 1.5f);
  VarPtr target = MakeConst(RandomNormal({3, 4}, 1.0f, rng));
  ExpectGradientsMatch(
      {x}, [&] { return SumSquares(Sub(RowL2Normalize(x), target)); });
}

TEST(GradCheckTest, SoftmaxCrossEntropy) {
  Rng rng(16);
  VarPtr logits = RandomParam({5, 3}, rng);
  std::vector<int64_t> labels = {0, 2, 1, 0, 2};
  std::vector<int64_t> rows = {0, 2, 4};
  ExpectGradientsMatch(
      {logits}, [&] { return SoftmaxCrossEntropy(logits, labels, rows); });
}

TEST(GradCheckTest, BceWithLogits) {
  Rng rng(17);
  VarPtr scores = RandomParam({6}, rng);
  std::vector<float> targets = {1, 0, 1, 1, 0, 0};
  ExpectGradientsMatch({scores},
                       [&] { return BceWithLogits(scores, targets); });
}

TEST(AutogradTest, DropoutIdentityWhenNotTraining) {
  Rng rng(18);
  VarPtr x = RandomParam({4, 4}, rng);
  VarPtr y = Dropout(x, 0.5f, /*training=*/false, rng);
  EXPECT_EQ(y.get(), x.get());
}

TEST(AutogradTest, DropoutScalesKeptEntries) {
  Rng rng(19);
  VarPtr x = MakeParam(Tensor::Full({1000}, 1.0f));
  VarPtr y = Dropout(x, 0.5f, /*training=*/true, rng);
  int64_t kept = 0;
  for (int64_t i = 0; i < 1000; ++i) {
    float v = y->value.at(i);
    EXPECT_TRUE(v == 0.0f || std::fabs(v - 2.0f) < 1e-6);
    if (v != 0.0f) ++kept;
  }
  EXPECT_GT(kept, 400);
  EXPECT_LT(kept, 600);
}

TEST(NoGradTest, GuardDropsTapeBookkeepingButNotValues) {
  Rng rng(20);
  VarPtr x = RandomParam({4, 4}, rng);
  VarPtr w = RandomParam({4, 4}, rng);

  int64_t before = BackwardClosuresAllocated();
  VarPtr taped = Relu(MatMul(x, w));
  EXPECT_GT(BackwardClosuresAllocated(), before);
  EXPECT_TRUE(taped->requires_grad);
  EXPECT_FALSE(taped->parents.empty());
  EXPECT_TRUE(static_cast<bool>(taped->backward_fn));

  before = BackwardClosuresAllocated();
  VarPtr plain;
  {
    NoGradGuard guard;
    EXPECT_FALSE(GradModeEnabled());
    plain = Relu(MatMul(x, w));
  }
  EXPECT_TRUE(GradModeEnabled());
  EXPECT_EQ(BackwardClosuresAllocated(), before);
  EXPECT_FALSE(plain->requires_grad);
  EXPECT_TRUE(plain->parents.empty());
  EXPECT_FALSE(static_cast<bool>(plain->backward_fn));

  // Only the bookkeeping disappears: forward values are bitwise identical.
  ASSERT_EQ(plain->value.numel(), taped->value.numel());
  for (int64_t i = 0; i < plain->value.numel(); ++i) {
    EXPECT_EQ(plain->value.data()[i], taped->value.data()[i]);
  }
}

TEST(NoGradTest, GuardsNestAndRestore) {
  EXPECT_TRUE(GradModeEnabled());
  {
    NoGradGuard outer;
    EXPECT_FALSE(GradModeEnabled());
    {
      NoGradGuard inner;
      EXPECT_FALSE(GradModeEnabled());
    }
    EXPECT_FALSE(GradModeEnabled());
  }
  EXPECT_TRUE(GradModeEnabled());
}

TEST(AutogradDeathTest, BackwardRequiresScalar) {
  VarPtr x = MakeParam(Tensor::Full({2, 2}, 1.0f));
  EXPECT_DEATH(Backward(x), "scalar");
}

}  // namespace
}  // namespace autoac
