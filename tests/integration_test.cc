// End-to-end integration tests: full pipelines on small datasets must learn
// substantially better than chance, and the evaluator must aggregate runs
// coherently.

#include "autoac/evaluator.h"
#include "gtest/gtest.h"

namespace autoac {
namespace {

ExperimentConfig FastConfig() {
  ExperimentConfig config;
  config.hidden_dim = 32;
  config.train_epochs = 40;
  config.patience = 40;
  config.search_epochs = 10;
  config.alpha_warmup_epochs = 3;
  config.num_clusters = 4;
  config.seed = 11;
  return config;
}

TEST(IntegrationTest, NodeClassificationBeatsChance) {
  DatasetOptions options;
  options.scale = 0.08;
  Dataset dataset = MakeDataset("acm", options);  // 3 classes -> chance 1/3
  TaskData task = MakeNodeTask(dataset);
  ModelContext ctx = BuildModelContext(dataset.graph);
  ExperimentConfig config = FastConfig();
  config.model_name = "SimpleHGN";

  MethodSpec baseline{"baseline", MethodKind::kBaseline, "SimpleHGN",
                      CompletionOpType::kOneHot};
  AggregateResult result = EvaluateMethod(task, ctx, config, baseline, 1);
  EXPECT_GT(result.micro_f1.mean, 60.0);  // well above 33.3 chance
  EXPECT_GT(result.macro_f1.mean, 50.0);
}

TEST(IntegrationTest, AutoAcPipelineBeatsChanceAndReportsArtifacts) {
  DatasetOptions options;
  options.scale = 0.08;
  Dataset dataset = MakeDataset("acm", options);
  TaskData task = MakeNodeTask(dataset);
  ModelContext ctx = BuildModelContext(dataset.graph);
  ExperimentConfig config = FastConfig();
  config.model_name = "GCN";

  MethodSpec autoac_spec{"autoac", MethodKind::kAutoAc, "GCN",
                         CompletionOpType::kOneHot};
  AggregateResult result = EvaluateMethod(task, ctx, config, autoac_spec, 1);
  EXPECT_GT(result.micro_f1.mean, 60.0);
  EXPECT_FALSE(result.last_ops.empty());
  EXPECT_FALSE(result.gmoc_trace.empty());
  EXPECT_GT(result.mean_times.search_seconds, 0.0);
}

TEST(IntegrationTest, LinkPredictionBeatsChance) {
  DatasetOptions options;
  options.scale = 0.06;
  Dataset dataset = MakeDataset("lastfm", options);
  Rng rng(5);
  TaskData task = MakeLinkTask(dataset, 0.1, rng);
  ModelContext ctx = BuildModelContext(task.graph);
  ExperimentConfig config = FastConfig();
  config.task = TaskKind::kLinkPrediction;
  config.model_name = "GCN";

  MethodSpec baseline{"baseline", MethodKind::kBaseline, "GCN",
                      CompletionOpType::kOneHot};
  AggregateResult result = EvaluateMethod(task, ctx, config, baseline, 1);
  EXPECT_GT(result.roc_auc.mean, 55.0);  // chance = 50
  EXPECT_GT(result.mrr.mean, 20.0);
}

TEST(IntegrationTest, EvaluatorAggregatesAcrossSeeds) {
  DatasetOptions options;
  options.scale = 0.05;
  Dataset dataset = MakeDataset("acm", options);
  TaskData task = MakeNodeTask(dataset);
  ModelContext ctx = BuildModelContext(dataset.graph);
  ExperimentConfig config = FastConfig();
  config.train_epochs = 15;

  MethodSpec spec{"gcn-mean", MethodKind::kSingleOp, "GCN",
                  CompletionOpType::kMean};
  AggregateResult result = EvaluateMethod(task, ctx, config, spec, 3);
  EXPECT_EQ(result.micro_samples.size(), 3u);
  EXPECT_EQ(result.micro_f1.n, 3);
  EXPECT_GT(result.total_seconds, 0.0);
  EXPECT_GT(result.epoch_seconds, 0.0);
  // Samples are percentages.
  for (double sample : result.micro_samples) {
    EXPECT_GE(sample, 0.0);
    EXPECT_LE(sample, 100.0);
  }
}

TEST(IntegrationTest, HgcaMethodMapsToGcnWithMeanCompletion) {
  DatasetOptions options;
  options.scale = 0.05;
  Dataset dataset = MakeDataset("acm", options);
  TaskData task = MakeNodeTask(dataset);
  ModelContext ctx = BuildModelContext(dataset.graph);
  ExperimentConfig config = FastConfig();
  config.train_epochs = 15;
  MethodSpec spec{"HGCA", MethodKind::kHgca, "SimpleHGN",
                  CompletionOpType::kMean};
  AggregateResult result = EvaluateMethod(task, ctx, config, spec, 1);
  EXPECT_GT(result.micro_f1.mean, 40.0);
}

}  // namespace
}  // namespace autoac
