// Tests for the graph-compiler pass pipeline and arena memory planner
// (src/compiler/, DESIGN.md §11): IR capture and dump format, per-pass
// golden behaviour (dead-node elimination, constant folding, pattern
// fusion, in-place marking — each firing and each staying a no-op when its
// pattern is absent), planner liveness correctness under fuzzing, and the
// two end-to-end acceptance gates — compiled-vs-interpreted bitwise
// identity at 1 and 4 threads for every model architecture the factory can
// export, and zero heap tensor allocations in the compiled steady state.

#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "compiler/compiled_graph.h"
#include "compiler/passes.h"
#include "compiler/planner.h"
#include "data/hgb_datasets.h"
#include "graph/sparse_ops.h"
#include "gtest/gtest.h"
#include "models/factory.h"
#include "tensor/graph_ir.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "tensor/quantize.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace autoac {
namespace {

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b)) << a.ShapeString() << " vs " << b.ShapeString();
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0);
}

SpMatPtr RandomSparse(int64_t m, int64_t n, int64_t nnz, Rng& rng) {
  std::vector<int64_t> rows, cols;
  std::vector<float> vals;
  for (int64_t e = 0; e < nnz; ++e) {
    rows.push_back(rng.UniformInt(0, m - 1));
    cols.push_back(rng.UniformInt(0, n - 1));
    vals.push_back(static_cast<float>(rng.Uniform(0.2, 1.0)));
  }
  return MakeSparse(Csr::FromCoo(m, n, rows, cols, vals));
}

// --- IR capture -------------------------------------------------------------

TEST(IrCaptureTest, RecordsValuesNodesAndOutputs) {
  Rng rng(1);
  Tensor xv = RandomNormal({2, 3}, 1.0f, rng);
  Tensor wv = RandomNormal({3, 4}, 1.0f, rng);
  Tensor bv = RandomNormal({4}, 1.0f, rng);

  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr y = AddBias(MatMul(x, MakeConst(wv)), MakeConst(bv));
    g = capture.Finish(y);
  }
  ASSERT_TRUE(g.complete);
  ASSERT_EQ(g.nodes.size(), 2u);
  ASSERT_EQ(g.outputs.size(), 1u);

  std::string dump = g.Dump();
  EXPECT_NE(dump.find("v0: input [2, 3] \"x\""), std::string::npos) << dump;
  EXPECT_NE(dump.find("v1: const [3, 4]"), std::string::npos) << dump;
  EXPECT_NE(dump.find("n0: MatMul(v0, v1) -> v2 [2, 4]"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("n1: AddBias(v2, v3) -> v4 [2, 4]"), std::string::npos)
      << dump;
  EXPECT_NE(dump.find("outputs: v4"), std::string::npos) << dump;
}

TEST(IrCaptureTest, OpaqueOpMarksCaptureIncompleteUntilDceRemovesIt) {
  Rng rng(2);
  Tensor xv = RandomNormal({4, 4}, 1.0f, rng);
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    // Training-mode dropout has no replay kernel (it depends on RNG state);
    // its result is never consumed, so DCE can restore compilability.
    Rng dropout_rng(3);
    VarPtr unused = Dropout(x, 0.5f, /*training=*/true, dropout_rng);
    (void)unused;
    VarPtr y = Relu(x);
    g = capture.Finish(y);
  }
  EXPECT_FALSE(g.complete);
  EXPECT_NE(g.Dump().find("opaque"), std::string::npos) << g.Dump();

  EXPECT_EQ(compiler::DeadNodeElimination(g), 1);
  EXPECT_TRUE(g.complete);
  EXPECT_EQ(g.Dump().find("Dropout"), std::string::npos) << g.Dump();
}

// --- pass pipeline ----------------------------------------------------------

TEST(PassesTest, DeadNodeEliminationDropsUnreadChains) {
  Rng rng(4);
  Tensor xv = RandomNormal({3, 3}, 1.0f, rng);
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr dead = Mul(x, x);
    (void)dead;
    VarPtr y = Relu(x);
    g = capture.Finish(y);
  }
  ASSERT_EQ(g.nodes.size(), 2u);
  EXPECT_EQ(compiler::DeadNodeElimination(g), 1);
  EXPECT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.Dump().find("Mul"), std::string::npos) << g.Dump();
  // A second run is a no-op.
  EXPECT_EQ(compiler::DeadNodeElimination(g), 0);
}

TEST(PassesTest, ConstantFoldingFoldsFrozenSubexpressions) {
  Rng rng(5);
  Tensor xv = RandomNormal({6, 4}, 1.0f, rng);
  Tensor w1 = RandomNormal({4, 3}, 1.0f, rng);
  Tensor w2 = RandomNormal({4, 3}, 1.0f, rng);

  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    // Add(w1, w2) is a frozen-weight subexpression; MatMul sees the input.
    VarPtr y = MatMul(x, Add(MakeConst(w1), MakeConst(w2)));
    g = capture.Finish(y);
  }
  ASSERT_EQ(g.nodes.size(), 2u);
  EXPECT_EQ(compiler::FoldConstants(g), 1);
  ASSERT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.nodes[0].op, "MatMul");
  EXPECT_NE(g.Dump().find("folded"), std::string::npos) << g.Dump();

  // The folded constant is bitwise what the eager Add produced.
  Tensor expected(std::vector<int64_t>{4, 3});
  for (int64_t i = 0; i < expected.numel(); ++i) {
    expected.data()[i] = w1.data()[i] + w2.data()[i];
  }
  const Tensor* folded = g.values[g.nodes[0].inputs[1]].const_data();
  ASSERT_NE(folded, nullptr);
  ExpectTensorsBitwiseEqual(*folded, expected);
}

TEST(PassesTest, ConstantFoldingIsNoOpWhenInputReachesEverything) {
  Rng rng(6);
  Tensor xv = RandomNormal({3, 3}, 1.0f, rng);
  Tensor wv = RandomNormal({3, 3}, 1.0f, rng);
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr y = Relu(Sub(x, MakeConst(wv)));
    g = capture.Finish(y);
  }
  std::string before = g.Dump();
  EXPECT_EQ(compiler::FoldConstants(g), 0);
  EXPECT_EQ(g.Dump(), before);
}

TEST(PassesTest, DequantizeOnLoadFoldsToTheDecodedConstant) {
  Rng rng(21);
  Tensor xv = RandomNormal({4, 36}, 1.0f, rng);
  // 36 x 30 = 1080 elements: past the ChooseEncoding floor, so the weight
  // really stores as fp16.
  Tensor wv = RandomNormal({36, 30}, 1.0f, rng);
  auto enc = std::make_shared<EncodedTensor>(
      EncodeTensor(wv, TensorEncoding::kF16));
  ASSERT_EQ(enc->encoding, TensorEncoding::kF16);
  Tensor decoded = DecodeTensor(*enc);

  Tensor eager;
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr y = MatMul(x, Dequantize(enc));
    eager = y->value;
    g = capture.Finish(y);
  }
  ASSERT_EQ(g.nodes.size(), 2u);
  EXPECT_EQ(compiler::DequantizeOnLoad(g), 1);
  compiler::DeadNodeElimination(g);
  ASSERT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.nodes[0].op, "MatMul");

  // The folded constant is bitwise the decoded tensor, and the compiled
  // graph reproduces the eager result exactly.
  const Tensor* folded = g.values[g.nodes[0].inputs[1]].const_data();
  ASSERT_NE(folded, nullptr);
  ExpectTensorsBitwiseEqual(*folded, decoded);
  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(g));
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  compiler::CompiledGraph cg = compiled.TakeValue();
  Tensor out;
  cg.Run({&xv}, &out);
  ExpectTensorsBitwiseEqual(out, eager);
}

TEST(PassesTest, DequantizeSurvivesAndExecutesWhenPassDisabled) {
  Rng rng(22);
  Tensor xv = RandomNormal({4, 36}, 1.0f, rng);
  Tensor wv = RandomNormal({36, 30}, 1.0f, rng);
  auto enc = std::make_shared<EncodedTensor>(
      EncodeTensor(wv, TensorEncoding::kI8));
  ASSERT_EQ(enc->encoding, TensorEncoding::kI8);

  Tensor eager;
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr y = MatMul(x, Dequantize(enc));
    eager = y->value;
    g = capture.Finish(y);
  }
  compiler::PassOptions options;
  options.dequant = false;
  compiler::RunPassPipeline(g, options);
  // FoldConstants deliberately skips input-less nodes, so without the
  // dedicated pass the Dequantize node survives the pipeline...
  EXPECT_NE(g.Dump().find("Dequantize"), std::string::npos) << g.Dump();
  // ...and still decodes at run time via its recorded kernel.
  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(g));
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  compiler::CompiledGraph cg = compiled.TakeValue();
  Tensor out;
  cg.Run({&xv}, &out);
  ExpectTensorsBitwiseEqual(out, eager);
}

TEST(PassesTest, FusionFiresOnDenseLinearChain) {
  Rng rng(7);
  Tensor xv = RandomNormal({6, 4}, 1.0f, rng);
  Tensor wv = RandomNormal({4, 3}, 1.0f, rng);
  Tensor bv = RandomNormal({3}, 1.0f, rng);

  Tensor eager;
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr y = Elu(AddBias(MatMul(x, MakeConst(wv)), MakeConst(bv)));
    eager = y->value;
    g = capture.Finish(y);
  }
  ASSERT_EQ(g.nodes.size(), 3u);
  EXPECT_EQ(compiler::FusePatterns(g), 1);
  ASSERT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.nodes[0].op, "FusedMatMulBiasElu");

  // The fused graph still computes the exact eager result.
  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(g));
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  compiler::CompiledGraph cg = compiled.TakeValue();
  Tensor out;
  cg.Run({&xv}, &out);
  ExpectTensorsBitwiseEqual(out, eager);
}

TEST(PassesTest, FusionPullsGatherIntoTheLinearChain) {
  Rng rng(8);
  Tensor xv = RandomNormal({6, 4}, 1.0f, rng);
  Tensor wv = RandomNormal({4, 3}, 1.0f, rng);
  Tensor bv = RandomNormal({3}, 1.0f, rng);

  Tensor eager;
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr y = Relu(AddBias(
        MatMul(GatherRows(x, {3, 0, 5, 2}), MakeConst(wv)), MakeConst(bv)));
    eager = y->value;
    g = capture.Finish(y);
  }
  ASSERT_EQ(g.nodes.size(), 4u);
  EXPECT_EQ(compiler::FusePatterns(g), 1);
  ASSERT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.nodes[0].op, "FusedGatherMatMulBiasRelu");

  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(g));
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  compiler::CompiledGraph cg = compiled.TakeValue();
  Tensor out;
  cg.Run({&xv}, &out);
  ExpectTensorsBitwiseEqual(out, eager);
}

TEST(PassesTest, FusionFiresOnSparseAggregationChain) {
  Rng rng(9);
  SpMatPtr a = RandomSparse(5, 6, 11, rng);
  Tensor xv = RandomNormal({6, 3}, 1.0f, rng);
  Tensor bv = RandomNormal({3}, 1.0f, rng);

  Tensor eager;
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr y = Relu(AddBias(SpMM(a, x), MakeConst(bv)));
    eager = y->value;
    g = capture.Finish(y);
  }
  ASSERT_EQ(g.nodes.size(), 3u);
  EXPECT_EQ(compiler::FusePatterns(g), 1);
  ASSERT_EQ(g.nodes.size(), 1u);
  EXPECT_EQ(g.nodes[0].op, "FusedSpMMBiasRelu");

  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(g));
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  compiler::CompiledGraph cg = compiled.TakeValue();
  Tensor out;
  cg.Run({&xv}, &out);
  ExpectTensorsBitwiseEqual(out, eager);
}

TEST(PassesTest, FusionIsNoOpWithoutAFusableNeighbor) {
  Rng rng(10);
  Tensor xv = RandomNormal({4, 4}, 1.0f, rng);
  Tensor wv = RandomNormal({4, 4}, 1.0f, rng);

  // A bare MatMul feeding the output has no optional component to fuse.
  {
    ir::Graph g;
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr y = MatMul(x, MakeConst(wv));
    g = capture.Finish(y);
    EXPECT_EQ(compiler::FusePatterns(g), 0);
  }

  // A MatMul read by two consumers must stay materialized: swallowing it
  // into a fused node would recompute (or hide) a value someone else reads.
  {
    ir::Graph g;
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr m = MatMul(x, MakeConst(wv));
    VarPtr y = Add(m, Relu(m));
    g = capture.Finish(y);
    std::string before = g.Dump();
    EXPECT_EQ(compiler::FusePatterns(g), 0);
    EXPECT_EQ(g.Dump(), before);
  }
}

TEST(PassesTest, InPlaceMarkingRequiresDyingIntermediateInput) {
  Rng rng(11);
  Tensor xv = RandomNormal({4, 4}, 1.0f, rng);
  Tensor wv = RandomNormal({4, 4}, 1.0f, rng);
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    // Sub reads the input leaf (not an intermediate): no in-place. Relu
    // reads Sub's dying intermediate: in-place. Scale defines the graph
    // output (which lives in the caller's tensor): no in-place.
    VarPtr y = Scale(Relu(Sub(x, MakeConst(wv))), 2.0f);
    g = capture.Finish(y);
  }
  EXPECT_EQ(compiler::MarkInPlace(g), 1);
  ASSERT_EQ(g.nodes.size(), 3u);
  EXPECT_FALSE(g.nodes[0].inplace);
  EXPECT_TRUE(g.nodes[1].inplace);
  EXPECT_FALSE(g.nodes[2].inplace);
  EXPECT_NE(g.Dump().find("inplace"), std::string::npos) << g.Dump();
}

// --- memory planner ---------------------------------------------------------

TEST(PlannerTest, LongChainRecyclesTwoSlots) {
  Rng rng(12);
  Tensor xv = RandomNormal({4, 4}, 1.0f, rng);
  Tensor wv = RandomNormal({4, 4}, 1.0f, rng);
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr w = MakeConst(wv);
    VarPtr h = x;
    for (int step = 0; step < 5; ++step) h = Sub(h, w);
    g = capture.Finish(h);
  }
  // 4 intermediates (the 5th Sub defines the output) but only 2 slots: a
  // value dies as soon as the next link consumes it.
  compiler::MemoryPlan plan = compiler::PlanMemory(g);
  EXPECT_EQ(plan.slot_capacity.size(), 2u);
  Status verified = compiler::VerifyPlan(g, plan);
  EXPECT_TRUE(verified.ok()) << verified.message();
}

/// Random (structurally valid) graph: a few leaves, then nodes consuming
/// uniformly random prior values. Kernels stay null — the planner never
/// executes anything.
ir::Graph RandomGraph(Rng& rng) {
  ir::Graph g;
  int num_leaves = 1 + static_cast<int>(rng.UniformInt(0, 3));
  for (int l = 0; l < num_leaves; ++l) {
    ir::Value v;
    v.shape = {1 + rng.UniformInt(0, 7), 1 + rng.UniformInt(0, 7)};
    v.kind = l == 0 ? ir::ValueKind::kInput : ir::ValueKind::kConst;
    g.values.push_back(std::move(v));
  }
  int num_nodes = 1 + static_cast<int>(rng.UniformInt(0, 19));
  for (int i = 0; i < num_nodes; ++i) {
    ir::Node n;
    n.op = "FuzzOp";
    int arity = 1 + static_cast<int>(rng.UniformInt(0, 2));
    for (int a = 0; a < arity; ++a) {
      n.inputs.push_back(static_cast<int32_t>(
          rng.UniformInt(0, static_cast<int64_t>(g.values.size()) - 1)));
    }
    if (rng.UniformInt(0, 1) == 1) n.flags = ir::kCanAliasInput0;
    if (rng.UniformInt(0, 3) == 0) n.scratch_numel = rng.UniformInt(1, 64);
    ir::Value out;
    out.shape = {1 + rng.UniformInt(0, 7), 1 + rng.UniformInt(0, 7)};
    out.kind = ir::ValueKind::kIntermediate;
    out.def = static_cast<int32_t>(g.nodes.size());
    n.out = static_cast<int32_t>(g.values.size());
    g.values.push_back(std::move(out));
    g.nodes.push_back(std::move(n));
  }
  // The last value is always read by the caller; sometimes an interior
  // intermediate is too (multi-output liveness).
  g.outputs.push_back(static_cast<int32_t>(g.values.size()) - 1);
  if (g.nodes.size() > 1 && rng.UniformInt(0, 1) == 1) {
    int32_t extra = g.nodes[g.nodes.size() / 2].out;
    if (extra != g.outputs[0]) g.outputs.push_back(extra);
  }
  return g;
}

// Fuzz gate: for every random graph (with in-place rewrites applied where
// legal), the plan must pass the full liveness-overlap verification — no
// two simultaneously live values may share a slot, every slot must be big
// enough, scratch must cover every node.
TEST(PlannerTest, FuzzedGraphsAlwaysVerifyClean) {
  Rng rng(123);
  for (int iter = 0; iter < 200; ++iter) {
    ir::Graph g = RandomGraph(rng);
    compiler::MarkInPlace(g);
    compiler::MemoryPlan plan = compiler::PlanMemory(g);
    Status verified = compiler::VerifyPlan(g, plan);
    ASSERT_TRUE(verified.ok())
        << "iteration " << iter << ": " << verified.message() << "\n"
        << g.Dump() << plan.Dump(g);
  }
}

TEST(PlannerTest, VerifyPlanRejectsCorruptedPlans) {
  Rng rng(13);
  Tensor xv = RandomNormal({4, 4}, 1.0f, rng);
  ir::Graph g;
  {
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    VarPtr a = Relu(x);
    VarPtr b = Elu(x);
    VarPtr y = Add(a, b);
    g = capture.Finish(y);
  }
  compiler::MemoryPlan good = compiler::PlanMemory(g);
  ASSERT_TRUE(compiler::VerifyPlan(g, good).ok());

  // Both intermediates are live at the Add: forcing them into one slot is
  // the overlap the fuzzer guards against.
  compiler::MemoryPlan overlapping = good;
  overlapping.slot_of_value[g.nodes[1].out] =
      overlapping.slot_of_value[g.nodes[0].out];
  EXPECT_FALSE(compiler::VerifyPlan(g, overlapping).ok());

  // A slot smaller than its value is equally fatal.
  compiler::MemoryPlan small = good;
  small.slot_capacity[small.slot_of_value[g.nodes[0].out]] = 1;
  EXPECT_FALSE(compiler::VerifyPlan(g, small).ok());

  // Scratch below a node's requirement must be caught too.
  compiler::MemoryPlan starved = good;
  g.nodes[0].scratch_numel = 128;
  EXPECT_FALSE(compiler::VerifyPlan(g, starved).ok());
}

// --- end-to-end: compiled forward over the model zoo ------------------------

// One tiny shared dataset/context for the end-to-end tests (building the
// context is the expensive part).
class CompilerEnvironment {
 public:
  static CompilerEnvironment& Get() {
    static CompilerEnvironment* env = new CompilerEnvironment();
    return *env;
  }
  const ModelContext& ctx() const { return ctx_; }

 private:
  CompilerEnvironment() {
    DatasetOptions options;
    options.scale = 0.04;
    dataset_ = MakeDataset("imdb", options);
    ctx_ = BuildModelContext(dataset_.graph);
  }
  Dataset dataset_;
  ModelContext ctx_;
};

ModelConfig SmallModelConfig() {
  ModelConfig config;
  config.in_dim = 8;
  config.hidden_dim = 8;
  config.out_dim = 8;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  return config;
}

class CompiledZooTest : public ::testing::TestWithParam<std::string> {};

// Acceptance gate: for every architecture the factory can export, the
// compiled forward (passes + fusion + arena) is bitwise identical to the
// interpreted tape-free forward, at one thread and at four.
TEST_P(CompiledZooTest, CompiledMatchesInterpretedBitwiseAt1And4Threads) {
  const ModelContext& ctx = CompilerEnvironment::Get().ctx();
  Rng init_rng(7);
  ModelPtr model = MakeModel(GetParam(), SmallModelConfig(), ctx, init_rng);
  ASSERT_NE(model, nullptr);

  int64_t n = ctx.graph->num_nodes();
  Rng data_rng(11);
  Tensor h0v = RandomNormal({n, 8}, 0.5f, data_rng);
  Tensor wv = RandomNormal({model->output_dim(), 5}, 0.5f, data_rng);
  Tensor bv = RandomNormal({5}, 0.5f, data_rng);

  auto interpreted = [&](int threads) {
    SetNumThreads(threads);
    NoGradGuard no_grad;
    Rng rng(13);
    VarPtr h0 = MakeConst(h0v);
    VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
    VarPtr logits = AddBias(MatMul(h, MakeConst(wv)), MakeConst(bv));
    return std::move(logits->value);
  };
  Tensor ref1 = interpreted(1);
  Tensor ref4 = interpreted(4);

  ir::Graph g;
  {
    IrCapture capture;
    VarPtr h0 = MakeConst(h0v);
    capture.MarkInput(h0, "h0");
    Rng rng(13);
    VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
    VarPtr logits = AddBias(MatMul(h, MakeConst(wv)), MakeConst(bv));
    g = capture.Finish(logits);
  }
  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(g));
  ASSERT_TRUE(compiled.ok()) << GetParam() << ": "
                             << compiled.status().message();
  compiler::CompiledGraph cg = compiled.TakeValue();

  Tensor out;
  SetNumThreads(1);
  cg.Run({&h0v}, &out);
  ExpectTensorsBitwiseEqual(out, ref1);
  SetNumThreads(4);
  cg.Run({&h0v}, &out);
  ExpectTensorsBitwiseEqual(out, ref4);
  SetNumThreads(0);
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, CompiledZooTest,
    ::testing::Values("GCN", "GAT", "SimpleHGN", "HAN", "MAGNN", "HGT",
                      "HetSANN", "GTN", "HetGNN", "GATNE"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

// Acceptance gate: once warm, the compiled executor never touches the heap
// for tensors — every intermediate lives in the preplanned arena.
TEST(CompiledGraphTest, SteadyStateRunAllocatesZeroTensorBuffers) {
  const ModelContext& ctx = CompilerEnvironment::Get().ctx();
  Rng init_rng(7);
  ModelPtr model = MakeModel("SimpleHGN", SmallModelConfig(), ctx, init_rng);
  int64_t n = ctx.graph->num_nodes();
  Rng data_rng(11);
  Tensor h0v = RandomNormal({n, 8}, 0.5f, data_rng);

  ir::Graph g;
  {
    IrCapture capture;
    VarPtr h0 = MakeConst(h0v);
    capture.MarkInput(h0, "h0");
    Rng rng(13);
    VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
    g = capture.Finish(h);
  }
  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(g));
  ASSERT_TRUE(compiled.ok()) << compiled.status().message();
  compiler::CompiledGraph cg = compiled.TakeValue();

  Tensor out;
  cg.Run({&h0v}, &out);  // first call sizes the output buffer
  int64_t before = TensorBuffersAllocated();
  for (int run = 0; run < 3; ++run) cg.Run({&h0v}, &out);
  EXPECT_EQ(TensorBuffersAllocated(), before);
}

TEST(CompiledGraphTest, RejectsIncompleteAndMultiOutputGraphs) {
  Rng rng(14);
  Tensor xv = RandomNormal({3, 3}, 1.0f, rng);

  // An opaque op on the live path cannot be compiled away.
  {
    ir::Graph g;
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    Rng dropout_rng(15);
    VarPtr y = Relu(Dropout(x, 0.5f, /*training=*/true, dropout_rng));
    g = capture.Finish(y);
    EXPECT_FALSE(compiler::CompiledGraph::Compile(std::move(g)).ok());
  }

  // A forward that is an identity over a leaf records no node.
  {
    ir::Graph g;
    IrCapture capture;
    VarPtr x = MakeConst(xv);
    capture.MarkInput(x, "x");
    g = capture.Finish(x);
    EXPECT_FALSE(compiler::CompiledGraph::Compile(std::move(g)).ok());
  }
}

}  // namespace
}  // namespace autoac
