#include "data/metrics.h"

#include "gtest/gtest.h"

namespace autoac {
namespace {

TEST(MicroF1Test, EqualsAccuracyForSingleLabel) {
  EXPECT_DOUBLE_EQ(MicroF1({0, 1, 2, 1}, {0, 1, 1, 1}), 0.75);
  EXPECT_DOUBLE_EQ(MicroF1({0, 0}, {1, 1}), 0.0);
  EXPECT_DOUBLE_EQ(MicroF1({2, 2}, {2, 2}), 1.0);
}

TEST(MacroF1Test, MatchesHandComputedValue) {
  // preds: [0,0,1,1,2], labels: [0,1,1,1,2]
  // class0: tp=1 fp=1 fn=0 -> f1 = 2/3
  // class1: tp=2 fp=0 fn=1 -> f1 = 4/5
  // class2: tp=1 fp=0 fn=0 -> f1 = 1
  // macro = (2/3 + 4/5 + 1)/3 = 37/45
  EXPECT_NEAR(MacroF1({0, 0, 1, 1, 2}, {0, 1, 1, 1, 2}, 3), 37.0 / 45.0,
              1e-12);
}

TEST(MacroF1Test, SkipsAbsentClasses) {
  // Class 2 never appears in preds or labels: average over classes 0, 1.
  EXPECT_NEAR(MacroF1({0, 1}, {0, 1}, 3), 1.0, 1e-12);
}

TEST(MacroF1Test, PerfectAndWorst) {
  EXPECT_DOUBLE_EQ(MacroF1({0, 1, 0, 1}, {0, 1, 0, 1}, 2), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1({1, 0, 1, 0}, {0, 1, 0, 1}, 2), 0.0);
}

TEST(RocAucTest, PerfectSeparation) {
  EXPECT_DOUBLE_EQ(RocAuc({0.9f, 0.8f, 0.2f, 0.1f}, {1, 1, 0, 0}), 1.0);
}

TEST(RocAucTest, PerfectInversion) {
  EXPECT_DOUBLE_EQ(RocAuc({0.1f, 0.2f, 0.8f, 0.9f}, {1, 1, 0, 0}), 0.0);
}

TEST(RocAucTest, RandomScoresGiveHalfWithTies) {
  // All scores tied -> midranks -> AUC 0.5 regardless of labels.
  EXPECT_DOUBLE_EQ(RocAuc({0.5f, 0.5f, 0.5f, 0.5f}, {1, 0, 1, 0}), 0.5);
}

TEST(RocAucTest, HandComputedMixedCase) {
  // scores: pos {0.8, 0.3}, neg {0.5, 0.1}.
  // Pairs: (0.8 vs 0.5)=win, (0.8 vs 0.1)=win, (0.3 vs 0.5)=loss,
  // (0.3 vs 0.1)=win -> AUC = 3/4.
  EXPECT_DOUBLE_EQ(RocAuc({0.8f, 0.3f, 0.5f, 0.1f}, {1, 1, 0, 0}), 0.75);
}

TEST(RocAucTest, DegeneratesToHalfWithoutBothClasses) {
  EXPECT_DOUBLE_EQ(RocAuc({0.4f, 0.6f}, {1, 1}), 0.5);
}

TEST(MrrTest, RankOneWhenPositiveBeatsAllNegatives) {
  EXPECT_DOUBLE_EQ(
      MeanReciprocalRank({2.0f}, {{1.0f, 0.5f, -1.0f}}), 1.0);
}

TEST(MrrTest, HandComputedRanks) {
  // First positive outranked by 2 negatives -> rank 3; second by none ->
  // rank 1. MRR = (1/3 + 1)/2 = 2/3.
  double mrr = MeanReciprocalRank({0.5f, 0.9f},
                                  {{0.8f, 0.7f, 0.1f}, {0.2f, 0.3f}});
  EXPECT_NEAR(mrr, 2.0 / 3.0, 1e-12);
}

TEST(MrrTest, TiesDoNotOutrank) {
  // Equal scores do not count as "higher": rank stays 1.
  EXPECT_DOUBLE_EQ(MeanReciprocalRank({0.5f}, {{0.5f, 0.5f}}), 1.0);
}

}  // namespace
}  // namespace autoac
