// Mutation-equivalence suite for the streaming graph mutation subsystem
// (DESIGN.md §12): the MutableGraph overlay's canonical-compaction
// invariant, and the headline gate — the K-hop dirty-frontier incremental
// recompute is *bitwise* identical to a from-scratch re-export of the
// mutated graph, for every architecture, at one thread and at four.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "autoac/checkpoint.h"
#include "completion/completion_module.h"
#include "graph/mutable_graph.h"
#include "models/factory.h"
#include "serving/frozen_model.h"
#include "serving/inference_session.h"
#include "serving/mutable_session.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace autoac {
namespace {

void ExpectTensorsBitwiseEqual(const Tensor& a, const Tensor& b) {
  ASSERT_TRUE(a.SameShape(b));
  ASSERT_EQ(std::memcmp(a.data(), b.data(),
                        static_cast<size_t>(a.numel()) * sizeof(float)),
            0);
}

/// A small heterogeneous ring: attributed "item" nodes interleaved with
/// attribute-less "tag" nodes (item_i - tag_i - item_{i+1}), plus a sparse
/// same-type "rel" chord set. Ring topology keeps K-hop balls genuinely
/// local, so the partial recompute path actually executes (a dense graph
/// would always trip the size fallback).
HeteroGraphPtr RingGraph(int64_t pairs = 40, int64_t num_classes = 3) {
  auto graph = std::make_shared<HeteroGraph>();
  int64_t item = graph->AddNodeType("item", pairs);
  int64_t tag = graph->AddNodeType("tag", pairs);
  Rng rng(17);
  graph->SetAttributes(item, RandomNormal({pairs, 4}, 0.5f, rng));
  int64_t it = graph->AddEdgeType("it", item, tag);
  int64_t rel = graph->AddEdgeType("rel", item, item);
  for (int64_t i = 0; i < pairs; ++i) {
    graph->AddEdge(it, i, i);                  // item_i - tag_i
    graph->AddEdge(it, (i + 1) % pairs, i);    // tag_i - item_{i+1}
  }
  for (int64_t i = 0; i < pairs; i += 8) {
    graph->AddEdge(rel, i, (i + 3) % pairs);
  }
  graph->SetTargetNodeType(item);
  std::vector<int64_t> labels(pairs);
  for (int64_t i = 0; i < pairs; ++i) labels[i] = i % num_classes;
  graph->SetLabels(std::move(labels), num_classes);
  graph->Finalize();
  return graph;
}

/// A self-consistent v2 artifact with untrained weights: H0 really is
/// CompleteDiscrete(op_of) under the stored completion parameters, so a
/// refreeze of the *unmutated* graph reproduces it bitwise. Equivalence
/// does not depend on the weight values, only on this consistency.
FrozenModel MakeFrozen(const std::string& model_name,
                       const HeteroGraphPtr& graph,
                       CompletionOpType (*op_fn)(int64_t)) {
  FrozenModel fz;
  fz.model_name = model_name;
  fz.hidden_dim = 8;
  fz.num_layers = 2;
  fz.num_heads = 2;
  fz.dropout = 0.0f;
  fz.negative_slope = 0.05f;
  fz.seed = 5;
  fz.num_classes = graph->num_classes();
  fz.graph = graph;
  Rng rng(fz.seed);
  CompletionConfig completion_config;
  completion_config.hidden_dim = fz.hidden_dim;
  completion_config.ppnp_steps = 3;
  CompletionModule completion(graph, completion_config, rng);
  ModelContext ctx = BuildModelContext(graph);
  ModelConfig model_config;
  model_config.in_dim = fz.hidden_dim;
  model_config.hidden_dim = fz.hidden_dim;
  model_config.out_dim = fz.hidden_dim;
  model_config.num_layers = fz.num_layers;
  model_config.num_heads = fz.num_heads;
  model_config.dropout = fz.dropout;
  model_config.negative_slope = fz.negative_slope;
  ModelPtr model = MakeModel(model_name, model_config, ctx, rng,
                             /*l2_normalize_output=*/false);
  for (int64_t i = 0; i < completion.num_missing(); ++i) {
    fz.op_of.push_back(op_fn(i));
  }
  {
    NoGradGuard no_grad;
    fz.h0 = completion.CompleteDiscrete(fz.op_of)->value;
  }
  for (const VarPtr& p : model->Parameters()) {
    fz.model_params.push_back(p->value);
  }
  fz.classifier_weight =
      RandomNormal({model->output_dim(), fz.num_classes}, 0.1f, rng);
  fz.classifier_bias = RandomNormal({fz.num_classes}, 0.1f, rng);
  fz.has_completion = true;
  for (const VarPtr& p : completion.Parameters()) {
    fz.completion_params.push_back(p->value);
  }
  fz.ppnp_restart = completion_config.ppnp_restart;
  fz.ppnp_steps = completion_config.ppnp_steps;
  fz.fingerprint = ComputeFrozenFingerprint(fz);
  return fz;
}

CompletionOpType MixedOps(int64_t i) {
  switch (i % 3) {
    case 0: return CompletionOpType::kMean;
    case 1: return CompletionOpType::kGcn;
    default: return CompletionOpType::kOneHot;
  }
}

CompletionOpType AllPpnp(int64_t) { return CompletionOpType::kPpnp; }

/// The from-scratch reference: re-export the mutated graph and read the
/// full logits of an interpreted session. This is what the incremental
/// path must match bitwise.
Tensor ReferenceLogits(const FrozenModel& fz, MutableGraph& replica) {
  const HeteroGraphPtr& compact = replica.Compact();
  StatusOr<FrozenModel> refrozen =
      RefreezeWithGraph(fz, compact, ExtendOpAssignment(fz, *compact));
  AUTOAC_CHECK(refrozen.ok()) << refrozen.status().message();
  InferenceSession::Options options;
  options.compile = false;
  InferenceSession session(refrozen.TakeValue(), options);
  return session.logits();
}

/// Replays one already-validated mutation onto the reference replica.
void ApplyToReplica(MutableGraph& replica, const Mutation& m) {
  switch (m.kind) {
    case Mutation::Kind::kAddNode: {
      StatusOr<int64_t> type = replica.NodeTypeIdOf(m.node_type);
      ASSERT_TRUE(type.ok());
      ASSERT_TRUE(replica.AddNode(type.value(), m.attributes).ok());
      break;
    }
    case Mutation::Kind::kAddEdge:
    case Mutation::Kind::kRemoveEdge: {
      StatusOr<int64_t> type = replica.EdgeTypeIdOf(m.edge_type);
      ASSERT_TRUE(type.ok());
      Status applied = m.kind == Mutation::Kind::kAddEdge
                           ? replica.AddEdge(type.value(), m.src, m.dst)
                           : replica.RemoveEdge(type.value(), m.src, m.dst);
      ASSERT_TRUE(applied.ok()) << applied.message();
      break;
    }
  }
}

Mutation AddNodeMutation(const std::string& type,
                         std::vector<float> attrs = {}) {
  Mutation m;
  m.kind = Mutation::Kind::kAddNode;
  m.node_type = type;
  m.attributes = std::move(attrs);
  return m;
}

Mutation EdgeMutation(Mutation::Kind kind, const std::string& edge,
                      int64_t src, int64_t dst) {
  Mutation m;
  m.kind = kind;
  m.edge_type = edge;
  m.src = src;
  m.dst = dst;
  return m;
}

// --- MutableGraph: canonical compaction -------------------------------------

TEST(MutableGraphTest, CompactEqualsFromScratchBuild) {
  HeteroGraphPtr base = RingGraph(10);
  MutableGraph overlay(base);
  // Same graph before any mutation: Compact() is the base itself.
  EXPECT_EQ(overlay.Compact().get(), base.get());

  StatusOr<int64_t> new_tag = overlay.AddNode(1, {});
  ASSERT_TRUE(new_tag.ok());
  EXPECT_EQ(new_tag.value(), 10);  // appended at the end of the type range
  StatusOr<int64_t> new_item = overlay.AddNode(0, {1.f, 2.f, 3.f, 4.f});
  ASSERT_TRUE(new_item.ok());
  EXPECT_EQ(new_item.value(), 10);
  ASSERT_TRUE(overlay.AddEdge(0, new_item.value(), new_tag.value()).ok());
  ASSERT_TRUE(overlay.RemoveEdge(0, 3, 3).ok());

  const HeteroGraphPtr& compact = overlay.Compact();

  // From-scratch build with the same final content.
  auto scratch = std::make_shared<HeteroGraph>();
  int64_t item = scratch->AddNodeType("item", 11);
  int64_t tag = scratch->AddNodeType("tag", 11);
  {
    Rng rng(17);
    Tensor attrs = RandomNormal({10, 4}, 0.5f, rng);
    Tensor grown = Tensor::Zeros({11, 4});
    std::memcpy(grown.data(), attrs.data(), 10 * 4 * sizeof(float));
    float extra[] = {1.f, 2.f, 3.f, 4.f};
    std::memcpy(grown.data() + 10 * 4, extra, sizeof(extra));
    scratch->SetAttributes(item, std::move(grown));
  }
  int64_t it = scratch->AddEdgeType("it", item, tag);
  int64_t rel = scratch->AddEdgeType("rel", item, item);
  for (int64_t i = 0; i < 10; ++i) {
    if (i != 3) scratch->AddEdge(it, i, i);  // the removed edge is elided
    scratch->AddEdge(it, (i + 1) % 10, i);
  }
  for (int64_t i = 0; i < 10; i += 8) scratch->AddEdge(rel, i, (i + 3) % 10);
  scratch->AddEdge(it, 10, 10);  // the appended edge comes last
  scratch->SetTargetNodeType(item);
  std::vector<int64_t> labels;
  for (int64_t i = 0; i < 10; ++i) labels.push_back(i % 3);
  labels.push_back(-1);  // post-export target node: unlabeled
  scratch->SetLabels(std::move(labels), 3);
  scratch->Finalize();

  ASSERT_EQ(compact->num_nodes(), scratch->num_nodes());
  EXPECT_EQ(compact->edge_src(), scratch->edge_src());
  EXPECT_EQ(compact->edge_dst(), scratch->edge_dst());
  EXPECT_EQ(compact->edge_type_ids(), scratch->edge_type_ids());
  EXPECT_EQ(compact->degrees(), scratch->degrees());
  EXPECT_EQ(compact->global_labels(), scratch->global_labels());
  for (int64_t t = 0; t < compact->num_node_types(); ++t) {
    EXPECT_EQ(compact->node_type(t).offset, scratch->node_type(t).offset);
    EXPECT_EQ(compact->node_type(t).count, scratch->node_type(t).count);
    ExpectTensorsBitwiseEqual(compact->node_type(t).attributes,
                              scratch->node_type(t).attributes);
  }
}

TEST(MutableGraphTest, BallCoversExactlyTheKHopNeighbourhood) {
  HeteroGraphPtr base = RingGraph(10);
  MutableGraph overlay(base);
  // item_0 is global 0; tag_i is global 10 + i. item_0 - tag_0 and
  // item_0 - tag_9 (ring wrap), plus rel chord item_0 - item_3.
  std::vector<int64_t> ball0 = overlay.Ball({0}, 0);
  EXPECT_EQ(ball0, std::vector<int64_t>({0}));
  std::vector<int64_t> ball1 = overlay.Ball({0}, 1);
  EXPECT_EQ(ball1, std::vector<int64_t>({0, 3, 10, 19}));
  std::vector<int64_t> ball2 = overlay.Ball({0}, 2);
  EXPECT_EQ(ball2, std::vector<int64_t>({0, 1, 3, 9, 10, 12, 13, 19}));
}

TEST(MutableGraphTest, UnknownTypeNamesAreErrors) {
  MutableGraph overlay(RingGraph(6));
  EXPECT_FALSE(overlay.NodeTypeIdOf("nonesuch").ok());
  EXPECT_FALSE(overlay.EdgeTypeIdOf("nonesuch").ok());
  EXPECT_NE(overlay.NodeTypeIdOf("nonesuch").status().message().find(
                "unknown node type"),
            std::string::npos);
}

TEST(MutableGraphTest, RemoveMissingEdgeIsAnError) {
  MutableGraph overlay(RingGraph(6));
  EXPECT_FALSE(overlay.RemoveEdge(1, 0, 5).ok());  // no such rel edge
  // Reversed orientation matches for same-type edge types.
  EXPECT_TRUE(overlay.RemoveEdge(1, 3, 0).ok());   // rel 0-3, reversed
}

// --- incremental vs full recompute: the headline invariant ------------------

struct Harness {
  FrozenModel fz;
  std::shared_ptr<InferenceSession> base;
  std::unique_ptr<MutableSession> session;
  std::unique_ptr<MutableGraph> replica;

  Harness(const std::string& model_name, const HeteroGraphPtr& graph,
          CompletionOpType (*op_fn)(int64_t),
          int64_t staleness_ms = 0) {
    fz = MakeFrozen(model_name, graph, op_fn);
    InferenceSession::Options options;
    options.compile = false;
    base = std::make_shared<InferenceSession>(fz, options);
    MutableSession::Options mutable_options;
    mutable_options.staleness_ms = staleness_ms;
    session = std::make_unique<MutableSession>(base, mutable_options);
    replica = std::make_unique<MutableGraph>(graph);
  }

  void ApplyAndCheck(const Mutation& m) {
    StatusOr<MutationResult> result = session->Apply(m);
    ASSERT_TRUE(result.ok()) << result.status().message();
    ApplyToReplica(*replica, m);
    ExpectTensorsBitwiseEqual(session->FlushedLogits(),
                              ReferenceLogits(fz, *replica));
  }
};

/// The scripted delta sequence every architecture is pushed through:
/// cross edge, new attribute-less node (wired in), new attributed node
/// (wired in), removal of the cross edge, a duplicate (parallel) edge, and
/// a reversed-orientation removal of one of the parallel pair.
void RunScriptedSequence(Harness& h) {
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kAddEdge, "it", 3, 10));
  Mutation new_tag = AddNodeMutation("tag");
  {
    StatusOr<MutationResult> r = h.session->Apply(new_tag);
    ASSERT_TRUE(r.ok()) << r.status().message();
    EXPECT_EQ(r.value().node, 40);
    ApplyToReplica(*h.replica, new_tag);
    ExpectTensorsBitwiseEqual(h.session->FlushedLogits(),
                              ReferenceLogits(h.fz, *h.replica));
  }
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kAddEdge, "it", 5, 40));
  h.ApplyAndCheck(AddNodeMutation("item", {0.5f, -0.25f, 0.125f, 2.f}));
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kAddEdge, "it", 40, 12));
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kRemoveEdge, "it", 3, 10));
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kAddEdge, "rel", 0, 3));
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kRemoveEdge, "rel", 3, 0));
}

class MutationZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(MutationZooTest, IncrementalMatchesFullRecomputeAt1And4Threads) {
  HeteroGraphPtr graph = RingGraph();
  std::vector<uint64_t> digests;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    Harness h(GetParam(), graph, MixedOps);
    RunScriptedSequence(h);
    if (HasFatalFailure()) break;
    digests.push_back(h.session->LogitsDigest());
    // Row-decomposable architectures must have exercised the partial path
    // on this ring (balls are local); globally-coupled ones must not.
    bool partial = GetParam() != "HAN" && GetParam() != "MAGNN" &&
                   GetParam() != "HetGNN";
    if (partial) {
      EXPECT_GT(h.session->partial_recomputes(), 0) << GetParam();
      EXPECT_GT(h.session->partial_forward_rows(), 0) << GetParam();
    } else {
      EXPECT_EQ(h.session->partial_recomputes(), 0) << GetParam();
      EXPECT_GT(h.session->full_recomputes(), 0) << GetParam();
    }
  }
  SetNumThreads(0);
  ASSERT_EQ(digests.size(), 2u);
  EXPECT_EQ(digests[0], digests[1]) << "thread-count variance";
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, MutationZooTest,
    ::testing::Values("GCN", "GAT", "SimpleHGN", "HAN", "MAGNN", "HGT",
                      "HetSANN", "GTN", "HetGNN", "GATNE"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(MutationEquivalenceTest, PpnpCompletionUsesItsPropagationRadius) {
  Harness h("SimpleHGN", RingGraph(), AllPpnp);
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kAddEdge, "it", 7, 20));
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kRemoveEdge, "it", 7, 20));
}

TEST(MutationEquivalenceTest, RemoveEdgeLeavingAnIsolatedNode) {
  // tag_5's only edges are item_5 - tag_5 - item_6; removing both isolates
  // it. Its H0 row must equal the from-scratch value for an isolated
  // attribute-less node (aggregation over an empty neighbourhood).
  Harness h("GCN", RingGraph(), MixedOps);
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kRemoveEdge, "it", 5, 5));
  h.ApplyAndCheck(EdgeMutation(Mutation::Kind::kRemoveEdge, "it", 6, 5));
}

TEST(MutationEquivalenceTest, NewTargetNodeIsScoredInductively) {
  Harness h("SimpleHGN", RingGraph(), MixedOps);
  Mutation add = AddNodeMutation("item", {1.f, 0.f, -1.f, 0.5f});
  StatusOr<MutationResult> r = h.session->Apply(add);
  ASSERT_TRUE(r.ok());
  int64_t new_local = r.value().node;
  EXPECT_EQ(new_local, 40);
  ApplyToReplica(*h.replica, add);
  Mutation wire = EdgeMutation(Mutation::Kind::kAddEdge, "it", new_local, 9);
  ASSERT_TRUE(h.session->Apply(wire).ok());
  ApplyToReplica(*h.replica, wire);

  Tensor reference = ReferenceLogits(h.fz, *h.replica);
  StatusOr<InferenceSession::Prediction> p = h.session->Predict(new_local);
  ASSERT_TRUE(p.ok()) << p.status().message();
  // The prediction must be the argmax of the reference logits row of the
  // new node (global id = end of the item block = local 40).
  const float* row =
      reference.data() + h.replica->GlobalId(0, new_local) * reference.cols();
  int64_t best = 0;
  for (int64_t c = 1; c < reference.cols(); ++c) {
    if (row[c] > row[best]) best = c;
  }
  EXPECT_EQ(p.value().label, best);
  EXPECT_EQ(p.value().score, row[best]);
  // Old handles are stable: item_0 still answers, and out-of-range is a
  // Status error, not a crash.
  EXPECT_TRUE(h.session->Predict(0).ok());
  EXPECT_FALSE(h.session->Predict(41).ok());
}

// --- error taxonomy ----------------------------------------------------------

TEST(MutationErrorTest, V1ArtifactRefusesMutations) {
  FrozenModel fz = MakeFrozen("GCN", RingGraph(8), MixedOps);
  fz.has_completion = false;
  fz.completion_params.clear();
  fz.fingerprint = ComputeFrozenFingerprint(fz);
  InferenceSession::Options options;
  options.compile = false;
  MutableSession session(std::make_shared<InferenceSession>(fz, options),
                         MutableSession::Options());
  StatusOr<MutationResult> r =
      session.Apply(EdgeMutation(Mutation::Kind::kAddEdge, "it", 0, 0));
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("v1 artifact"), std::string::npos);
}

TEST(MutationErrorTest, FingerprintMismatchIsADistinctError) {
  Harness h("GCN", RingGraph(8), MixedOps);
  Mutation m = EdgeMutation(Mutation::Kind::kAddEdge, "it", 0, 0);
  m.expect_fingerprint = h.fz.fingerprint ^ 0xdeadbeefull;
  StatusOr<MutationResult> r = h.session->Apply(m);
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("fingerprint mismatch"),
            std::string::npos);
  // The matching fingerprint passes.
  m.expect_fingerprint = h.fz.fingerprint;
  EXPECT_TRUE(h.session->Apply(m).ok());
}

TEST(MutationErrorTest, MalformedTypesAndEndpointsAreDistinctErrors) {
  Harness h("GCN", RingGraph(8), MixedOps);
  StatusOr<MutationResult> bad_node =
      h.session->Apply(AddNodeMutation("venue"));
  ASSERT_FALSE(bad_node.ok());
  EXPECT_NE(bad_node.status().message().find("unknown node type"),
            std::string::npos);
  StatusOr<MutationResult> bad_edge = h.session->Apply(
      EdgeMutation(Mutation::Kind::kAddEdge, "cites", 0, 1));
  ASSERT_FALSE(bad_edge.ok());
  EXPECT_NE(bad_edge.status().message().find("unknown edge type"),
            std::string::npos);
  StatusOr<MutationResult> bad_endpoint = h.session->Apply(
      EdgeMutation(Mutation::Kind::kAddEdge, "it", 0, 99));
  ASSERT_FALSE(bad_endpoint.ok());
  EXPECT_NE(bad_endpoint.status().message().find("out of range"),
            std::string::npos);
  StatusOr<MutationResult> bad_attrs =
      h.session->Apply(AddNodeMutation("item", {1.f}));  // raw_dim is 4
  EXPECT_FALSE(bad_attrs.ok());
  StatusOr<MutationResult> tag_attrs =
      h.session->Apply(AddNodeMutation("tag", {1.f}));  // attribute-less
  EXPECT_FALSE(tag_attrs.ok());
  // None of the rejected mutations dirtied anything.
  EXPECT_EQ(h.session->mutations_applied(), 0);
  EXPECT_EQ(h.session->pending_dirty_rows(), 0);
}

// --- staleness policy ---------------------------------------------------------

TEST(MutationStalenessTest, DirtyRowsServeStaleUntilTheBoundThenRecompute) {
  HeteroGraphPtr graph = RingGraph();
  Harness h("GCN", graph, MixedOps, /*staleness_ms=*/3'600'000);
  // item_3's prediction before the delta.
  StatusOr<InferenceSession::Prediction> before = h.session->Predict(3);
  ASSERT_TRUE(before.ok());
  Mutation m = EdgeMutation(Mutation::Kind::kAddEdge, "it", 3, 10);
  ASSERT_TRUE(h.session->Apply(m).ok());
  ApplyToReplica(*h.replica, m);
  EXPECT_GT(h.session->pending_dirty_rows(), 0);
  // Within the bound: the dirty row serves the stale cached value.
  StatusOr<InferenceSession::Prediction> stale = h.session->Predict(3);
  ASSERT_TRUE(stale.ok());
  EXPECT_EQ(stale.value().score, before.value().score);
  EXPECT_GT(h.session->pending_dirty_rows(), 0);

  // A tight bound: the next dirty read recomputes first.
  Harness tight("GCN", graph, MixedOps, /*staleness_ms=*/1);
  ASSERT_TRUE(tight.session->Apply(m).ok());
  ApplyToReplica(*tight.replica, m);
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  ASSERT_TRUE(tight.session->Predict(3).ok());
  EXPECT_EQ(tight.session->pending_dirty_rows(), 0);
  ExpectTensorsBitwiseEqual(tight.session->FlushedLogits(),
                            ReferenceLogits(tight.fz, *tight.replica));
}

// --- randomized fuzz ----------------------------------------------------------

/// One fuzz episode: a random delta stream applied incrementally, digest
/// compared against the from-scratch reference after every delta, at 1 and
/// 4 threads. The seed is part of every assertion message so a failure is
/// replayable.
void FuzzEpisode(uint64_t seed, const std::string& model_name,
                 int64_t num_deltas) {
  SCOPED_TRACE("fuzz seed=" + std::to_string(seed) + " model=" + model_name);
  HeteroGraphPtr graph = RingGraph();
  std::vector<std::vector<uint64_t>> digests;
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    digests.emplace_back();
    Harness h(model_name, graph, MixedOps);
    Rng rng(seed);
    for (int64_t step = 0; step < num_deltas; ++step) {
      Mutation m;
      int64_t kind = rng.UniformInt(0, 5);
      int64_t items = h.replica->node_count(0);
      int64_t tags = h.replica->node_count(1);
      if (kind == 0) {
        m = AddNodeMutation("tag");
      } else if (kind == 1) {
        m = AddNodeMutation("item",
                            {static_cast<float>(rng.Normal()),
                             static_cast<float>(rng.Normal()),
                             static_cast<float>(rng.Normal()),
                             static_cast<float>(rng.Normal())});
      } else if (kind <= 3) {
        m = EdgeMutation(Mutation::Kind::kAddEdge, "it",
                         rng.UniformInt(0, items - 1),
                         rng.UniformInt(0, tags - 1));
      } else if (kind == 4) {
        m = EdgeMutation(Mutation::Kind::kAddEdge, "rel",
                         rng.UniformInt(0, items - 1),
                         rng.UniformInt(0, items - 1));
      } else {
        // Remove a live ring edge; tolerate picking an already-removed one.
        m = EdgeMutation(Mutation::Kind::kRemoveEdge, "it",
                         rng.UniformInt(0, 39), rng.UniformInt(0, 39));
      }
      StatusOr<MutationResult> applied = h.session->Apply(m);
      if (!applied.ok()) continue;  // e.g. removal of a missing edge
      ApplyToReplica(*h.replica, m);
      uint64_t incremental = h.session->LogitsDigest();
      uint64_t reference =
          DigestTensor(kFnvOffsetBasis, ReferenceLogits(h.fz, *h.replica));
      ASSERT_EQ(incremental, reference)
          << "step " << step << " of seed " << seed << " at " << threads
          << " threads";
      digests.back().push_back(incremental);
    }
  }
  SetNumThreads(0);
  ASSERT_EQ(digests[0], digests[1]) << "thread-count variance, seed " << seed;
}

TEST(MutationFuzzTest, RandomDeltaStreamsMatchFullRecompute) {
  // Nightly CI cranks the episode count via the environment; the tier-1
  // default keeps the test fast.
  int64_t episodes = 2;
  if (const char* env = std::getenv("AUTOAC_MUTATION_FUZZ_EPISODES")) {
    episodes = std::max<int64_t>(1, std::atoll(env));
  }
  for (int64_t e = 0; e < episodes; ++e) {
    FuzzEpisode(1000 + e * 7919, e % 2 == 0 ? "SimpleHGN" : "GCN",
                /*num_deltas=*/6);
    if (HasFatalFailure()) return;
  }
}

// --- refreeze self-consistency ------------------------------------------------

TEST(RefreezeTest, UnmutatedGraphRefreezesToTheIdenticalArtifact) {
  HeteroGraphPtr graph = RingGraph(12);
  FrozenModel fz = MakeFrozen("SimpleHGN", graph, MixedOps);
  StatusOr<FrozenModel> again = RefreezeWithGraph(fz, graph, fz.op_of);
  ASSERT_TRUE(again.ok()) << again.status().message();
  ExpectTensorsBitwiseEqual(again.value().h0, fz.h0);
  EXPECT_EQ(again.value().fingerprint, fz.fingerprint);
}

TEST(RefreezeTest, V1ArtifactIsRefused) {
  FrozenModel fz = MakeFrozen("GCN", RingGraph(8), MixedOps);
  fz.has_completion = false;
  StatusOr<FrozenModel> refrozen = RefreezeWithGraph(fz, fz.graph, fz.op_of);
  ASSERT_FALSE(refrozen.ok());
  EXPECT_NE(refrozen.status().message().find("v1"), std::string::npos);
}

// --- batch prediction over the live overlay (DESIGN.md §14) ------------------

/// Every PredictBatch answer must equal the per-row Predict answer bit for
/// bit — the overlay invariant logits_[g] == head(hidden_[g]).
void ExpectBatchMatchesPredict(MutableSession& session,
                               const std::vector<int64_t>& nodes) {
  StatusOr<std::vector<InferenceSession::Prediction>> batch =
      session.PredictBatch(nodes);
  ASSERT_TRUE(batch.ok()) << batch.status().message();
  ASSERT_EQ(batch.value().size(), nodes.size());
  for (size_t i = 0; i < nodes.size(); ++i) {
    StatusOr<InferenceSession::Prediction> single =
        session.Predict(nodes[i]);
    ASSERT_TRUE(single.ok());
    EXPECT_EQ(batch.value()[i].node, nodes[i]);
    EXPECT_EQ(batch.value()[i].label, single.value().label);
    EXPECT_EQ(batch.value()[i].score, single.value().score) << "row " << i;
  }
}

TEST(MutationBatchTest, PredictBatchMatchesPredictAcrossMutations) {
  Harness h("SimpleHGN", RingGraph(), MixedOps);
  std::vector<int64_t> probes = {0, 7, 3, 39, 12};
  for (int threads : {1, 4}) {
    SetNumThreads(threads);
    ExpectBatchMatchesPredict(*h.session, probes);
    if (HasFatalFailure()) break;
    // An added node grows the overlay: the batch head recompiles at the
    // new row count and the new node's row is immediately addressable.
    ASSERT_TRUE(
        h.session->Apply(EdgeMutation(Mutation::Kind::kAddEdge, "it", 3, 10))
            .ok());
    StatusOr<MutationResult> added =
        h.session->Apply(AddNodeMutation("item", {0.5f, -0.25f, 0.125f, 2.f}));
    ASSERT_TRUE(added.ok());
    probes.push_back(added.value().node);
    ExpectBatchMatchesPredict(*h.session, probes);
    if (HasFatalFailure()) break;
  }
  SetNumThreads(0);
}

TEST(MutationBatchTest, PredictBatchUnderStalenessMatchesPredict) {
  // An effectively-unbounded staleness window: the delta leaves rows dirty
  // and reads serve the stale cache. PredictBatch must answer exactly what
  // Predict answers (it falls back to per-row lookups while any requested
  // row is dirty — an added node's logits row is zeros until the first
  // flush, which no head-forward over its hidden row reproduces).
  Harness h("GCN", RingGraph(), MixedOps, /*staleness_ms=*/3'600'000);
  ASSERT_TRUE(
      h.session->Apply(EdgeMutation(Mutation::Kind::kAddEdge, "it", 2, 9))
          .ok());
  StatusOr<MutationResult> added = h.session->Apply(AddNodeMutation("tag"));
  ASSERT_TRUE(added.ok());
  EXPECT_GT(h.session->pending_dirty_rows(), 0);
  ExpectBatchMatchesPredict(*h.session, {0, 2, 9, 5});
  // Still no flush forced by the batched read path.
  EXPECT_GT(h.session->pending_dirty_rows(), 0);
}

TEST(MutationBatchTest, PredictBatchFailsWholeRequestOnBadId) {
  Harness h("GCN", RingGraph(8), MixedOps);
  EXPECT_FALSE(h.session->PredictBatch({0, h.session->num_targets()}).ok());
  EXPECT_FALSE(h.session->PredictBatch({-1}).ok());
  EXPECT_TRUE(h.session->PredictBatch({0, 1}).ok());
}

// --- quantized artifact zoo (DESIGN.md §14) ----------------------------------

/// Export -> load -> Predict under fp16/int8 for every architecture the
/// factory can freeze. Quantization is lossy by design, so the gate is the
/// accuracy-tolerance policy, not bitwise identity: top-1 agreement with
/// the fp32 twin stays above the per-encoding floor.
TEST(QuantizedZooTest, QuantizedPredictionsWithinToleranceForAllModels) {
  const char* models[] = {"GCN", "GAT", "SimpleHGN", "HAN", "MAGNN",
                          "HGT", "HetSANN", "GTN", "HetGNN", "GATNE"};
  // RingGraph(64) makes H0 [128, 8] = 1024 elements — just over the
  // ChooseEncoding floor, so the dominant tensor really quantizes.
  HeteroGraphPtr graph = RingGraph(64);
  std::string path =
      std::string(::testing::TempDir()) + "/quant_zoo.aacm";
  for (const char* model_name : models) {
    FrozenModel fz = MakeFrozen(model_name, graph, MixedOps);
    InferenceSession::Options options;
    options.compile = false;
    InferenceSession exact(fz, options);
    struct Case {
      TensorEncoding encoding;
      double min_agreement;
    };
    for (const Case& c : {Case{TensorEncoding::kF16, 0.95},
                          Case{TensorEncoding::kI8, 0.85}}) {
      FrozenSaveOptions save_options;
      save_options.encoding = c.encoding;
      uint64_t stored = 0;
      save_options.stored_fingerprint = &stored;
      ASSERT_TRUE(SaveFrozenModel(fz, path, save_options).ok()) << model_name;
      StatusOr<FrozenModel> loaded = LoadFrozenModel(path);
      ASSERT_TRUE(loaded.ok())
          << model_name << ": " << loaded.status().message();
      EXPECT_EQ(loaded.value().encoding, c.encoding);
      EXPECT_EQ(loaded.value().fingerprint, stored);
      InferenceSession quantized(loaded.TakeValue(), options);
      int64_t agree = 0;
      for (int64_t node = 0; node < exact.num_targets(); ++node) {
        StatusOr<InferenceSession::Prediction> pq = quantized.Predict(node);
        StatusOr<InferenceSession::Prediction> pe = exact.Predict(node);
        ASSERT_TRUE(pq.ok() && pe.ok());
        agree += pq.value().label == pe.value().label ? 1 : 0;
      }
      double agreement = static_cast<double>(agree) /
                         static_cast<double>(exact.num_targets());
      EXPECT_GE(agreement, c.min_agreement)
          << model_name << " under encoding "
          << static_cast<int>(c.encoding);
    }
  }
  std::remove(path.c_str());
}

}  // namespace
}  // namespace autoac
