#include "graph/csr.h"

#include "gtest/gtest.h"
#include "util/rng.h"

namespace autoac {
namespace {

TEST(CsrTest, FromCooBucketsByRow) {
  // 3x3 matrix with entries (0,1), (2,0), (0,2), (1,1).
  Csr csr = Csr::FromCoo(3, 3, {0, 2, 0, 1}, {1, 0, 2, 1});
  csr.CheckInvariants();
  EXPECT_EQ(csr.nnz(), 4);
  EXPECT_EQ(csr.RowDegree(0), 2);
  EXPECT_EQ(csr.RowDegree(1), 1);
  EXPECT_EQ(csr.RowDegree(2), 1);
  // Row 0 holds columns {1, 2} in insertion order.
  EXPECT_EQ(csr.indices[csr.indptr[0]], 1);
  EXPECT_EQ(csr.indices[csr.indptr[0] + 1], 2);
}

TEST(CsrTest, DefaultValuesAreOnes) {
  Csr csr = Csr::FromCoo(2, 2, {0, 1}, {1, 0});
  for (float v : csr.values) EXPECT_EQ(v, 1.0f);
}

TEST(CsrTest, ValuesAndEdgeIdsFollowPermutation) {
  Csr csr = Csr::FromCoo(2, 3, {1, 0, 1}, {0, 2, 1}, {10.f, 20.f, 30.f},
                         {100, 200, 300});
  csr.CheckInvariants();
  // Row 0 has the single entry originally at position 1.
  EXPECT_EQ(csr.values[csr.indptr[0]], 20.f);
  EXPECT_EQ(csr.edge_id[csr.indptr[0]], 200);
}

TEST(CsrTest, DuplicateEntriesAreKept) {
  Csr csr = Csr::FromCoo(2, 2, {0, 0}, {1, 1});
  EXPECT_EQ(csr.nnz(), 2);
  EXPECT_EQ(csr.RowDegree(0), 2);
}

TEST(CsrTest, TransposeMatchesManual) {
  Csr csr = Csr::FromCoo(2, 3, {0, 0, 1}, {1, 2, 0}, {1.f, 2.f, 3.f});
  Csr t = csr.Transposed();
  t.CheckInvariants();
  EXPECT_EQ(t.num_rows, 3);
  EXPECT_EQ(t.num_cols, 2);
  // Entry (0,1)=1 becomes (1,0)=1; (0,2)=2 -> (2,0)=2; (1,0)=3 -> (0,1)=3.
  EXPECT_EQ(t.RowDegree(0), 1);
  EXPECT_EQ(t.indices[t.indptr[0]], 1);
  EXPECT_EQ(t.values[t.indptr[0]], 3.f);
  EXPECT_EQ(t.values[t.indptr[1]], 1.f);
  EXPECT_EQ(t.values[t.indptr[2]], 2.f);
}

TEST(CsrTest, DoubleTransposeIsIdentityProperty) {
  Rng rng(3);
  for (int trial = 0; trial < 10; ++trial) {
    int64_t m = rng.UniformInt(1, 12);
    int64_t n = rng.UniformInt(1, 12);
    int64_t nnz = rng.UniformInt(0, m * n);
    std::vector<int64_t> rows, cols;
    std::vector<float> vals;
    for (int64_t e = 0; e < nnz; ++e) {
      rows.push_back(rng.UniformInt(0, m - 1));
      cols.push_back(rng.UniformInt(0, n - 1));
      vals.push_back(static_cast<float>(rng.Uniform(0.1, 1.0)));
    }
    Csr a = Csr::FromCoo(m, n, rows, cols, vals);
    Csr att = a.Transposed().Transposed();
    att.CheckInvariants();
    ASSERT_EQ(att.nnz(), a.nnz());
    // Same multiset of (row, col, value) triples; compare row sums and
    // per-row sorted columns.
    for (int64_t i = 0; i < m; ++i) {
      std::vector<int64_t> ca(a.indices.begin() + a.indptr[i],
                              a.indices.begin() + a.indptr[i + 1]);
      std::vector<int64_t> cb(att.indices.begin() + att.indptr[i],
                              att.indices.begin() + att.indptr[i + 1]);
      std::sort(ca.begin(), ca.end());
      std::sort(cb.begin(), cb.end());
      EXPECT_EQ(ca, cb) << "row " << i;
    }
  }
}

TEST(CsrTest, SparseMatrixCachesTranspose) {
  SpMatPtr m = MakeSparse(Csr::FromCoo(2, 3, {0, 1}, {2, 0}));
  EXPECT_EQ(m->num_rows(), 2);
  EXPECT_EQ(m->num_cols(), 3);
  EXPECT_EQ(m->nnz(), 2);
  EXPECT_EQ(m->backward().num_rows, 3);
  EXPECT_EQ(m->backward().num_cols, 2);
}

TEST(CsrDeathTest, OutOfRangeRowAborts) {
  EXPECT_DEATH(Csr::FromCoo(2, 2, {2}, {0}), "out of range");
}

}  // namespace
}  // namespace autoac
