#include "tensor/optimizer.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace autoac {
namespace {

// Minimizes ||x - target||^2 and expects convergence close to the target.
template <typename MakeOpt>
void ExpectConvergesToTarget(MakeOpt make_optimizer, int64_t steps,
                             float tolerance) {
  VarPtr x = MakeParam(Tensor::Full({3}, 5.0f));
  VarPtr target = MakeConst(Tensor::FromVector({3}, {1.0f, -2.0f, 0.5f}));
  auto optimizer = make_optimizer(std::vector<VarPtr>{x});
  for (int64_t step = 0; step < steps; ++step) {
    optimizer->ZeroGrad();
    Backward(SumSquares(Sub(x, target)));
    optimizer->Step();
  }
  EXPECT_NEAR(x->value.at(0), 1.0f, tolerance);
  EXPECT_NEAR(x->value.at(1), -2.0f, tolerance);
  EXPECT_NEAR(x->value.at(2), 0.5f, tolerance);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  ExpectConvergesToTarget(
      [](std::vector<VarPtr> params) {
        return std::make_unique<Adam>(std::move(params), 0.1f);
      },
      200, 0.05f);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  ExpectConvergesToTarget(
      [](std::vector<VarPtr> params) {
        return std::make_unique<Sgd>(std::move(params), 0.05f);
      },
      300, 0.05f);
}

TEST(OptimizerTest, WeightDecayShrinksUnusedParameter) {
  // A parameter with zero task gradient should decay toward zero when
  // weight decay is on.
  VarPtr x = MakeParam(Tensor::Full({1}, 1.0f));
  Adam adam({x}, /*lr=*/0.05f, /*weight_decay=*/1.0f);
  for (int step = 0; step < 50; ++step) {
    adam.ZeroGrad();
    x->EnsureGrad();  // zero gradient, decay only
    adam.Step();
  }
  EXPECT_LT(std::fabs(x->value.at(0)), 0.5f);
}

TEST(OptimizerTest, StepSkipsParametersWithoutGradients) {
  VarPtr used = MakeParam(Tensor::Full({1}, 1.0f));
  VarPtr unused = MakeParam(Tensor::Full({1}, 1.0f));
  Adam adam({used, unused}, 0.1f);
  adam.ZeroGrad();
  Backward(SumSquares(used));
  adam.Step();
  EXPECT_NE(used->value.at(0), 1.0f);
  EXPECT_EQ(unused->value.at(0), 1.0f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  VarPtr x = MakeParam(Tensor::Full({4}, 0.0f));
  x->EnsureGrad().Fill(3.0f);  // norm = 6
  float norm = ClipGradNorm({x}, 1.5f);
  EXPECT_NEAR(norm, 6.0f, 1e-4);
  double clipped = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    clipped += static_cast<double>(x->grad.at(i)) * x->grad.at(i);
  }
  EXPECT_NEAR(std::sqrt(clipped), 1.5f, 1e-4);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradientsAlone) {
  VarPtr x = MakeParam(Tensor::Full({4}, 0.0f));
  x->EnsureGrad().Fill(0.1f);
  ClipGradNorm({x}, 10.0f);
  EXPECT_FLOAT_EQ(x->grad.at(0), 0.1f);
}

TEST(OptimizerTest, AdamLrAccessor) {
  Adam adam({}, 0.01f);
  EXPECT_FLOAT_EQ(adam.lr(), 0.01f);
  adam.set_lr(0.02f);
  EXPECT_FLOAT_EQ(adam.lr(), 0.02f);
}

}  // namespace
}  // namespace autoac
