#include "tensor/optimizer.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/ops.h"

namespace autoac {
namespace {

// Minimizes ||x - target||^2 and expects convergence close to the target.
template <typename MakeOpt>
void ExpectConvergesToTarget(MakeOpt make_optimizer, int64_t steps,
                             float tolerance) {
  VarPtr x = MakeParam(Tensor::Full({3}, 5.0f));
  VarPtr target = MakeConst(Tensor::FromVector({3}, {1.0f, -2.0f, 0.5f}));
  auto optimizer = make_optimizer(std::vector<VarPtr>{x});
  for (int64_t step = 0; step < steps; ++step) {
    optimizer->ZeroGrad();
    Backward(SumSquares(Sub(x, target)));
    optimizer->Step();
  }
  EXPECT_NEAR(x->value.at(0), 1.0f, tolerance);
  EXPECT_NEAR(x->value.at(1), -2.0f, tolerance);
  EXPECT_NEAR(x->value.at(2), 0.5f, tolerance);
}

TEST(OptimizerTest, AdamConvergesOnQuadratic) {
  ExpectConvergesToTarget(
      [](std::vector<VarPtr> params) {
        return std::make_unique<Adam>(std::move(params), 0.1f);
      },
      200, 0.05f);
}

TEST(OptimizerTest, SgdConvergesOnQuadratic) {
  ExpectConvergesToTarget(
      [](std::vector<VarPtr> params) {
        return std::make_unique<Sgd>(std::move(params), 0.05f);
      },
      300, 0.05f);
}

TEST(OptimizerTest, WeightDecayShrinksUnusedParameter) {
  // A parameter with zero task gradient should decay toward zero when
  // weight decay is on.
  VarPtr x = MakeParam(Tensor::Full({1}, 1.0f));
  Adam adam({x}, /*lr=*/0.05f, /*weight_decay=*/1.0f);
  for (int step = 0; step < 50; ++step) {
    adam.ZeroGrad();
    x->EnsureGrad();  // zero gradient, decay only
    adam.Step();
  }
  EXPECT_LT(std::fabs(x->value.at(0)), 0.5f);
}

TEST(OptimizerTest, StepSkipsParametersWithoutGradients) {
  VarPtr used = MakeParam(Tensor::Full({1}, 1.0f));
  VarPtr unused = MakeParam(Tensor::Full({1}, 1.0f));
  Adam adam({used, unused}, 0.1f);
  adam.ZeroGrad();
  Backward(SumSquares(used));
  adam.Step();
  EXPECT_NE(used->value.at(0), 1.0f);
  EXPECT_EQ(unused->value.at(0), 1.0f);
}

TEST(OptimizerTest, ClipGradNormScalesDown) {
  VarPtr x = MakeParam(Tensor::Full({4}, 0.0f));
  x->EnsureGrad().Fill(3.0f);  // norm = 6
  float norm = ClipGradNorm({x}, 1.5f);
  EXPECT_NEAR(norm, 6.0f, 1e-4);
  double clipped = 0.0;
  for (int64_t i = 0; i < 4; ++i) {
    clipped += static_cast<double>(x->grad.at(i)) * x->grad.at(i);
  }
  EXPECT_NEAR(std::sqrt(clipped), 1.5f, 1e-4);
}

TEST(OptimizerTest, ClipGradNormLeavesSmallGradientsAlone) {
  VarPtr x = MakeParam(Tensor::Full({4}, 0.0f));
  x->EnsureGrad().Fill(0.1f);
  ClipGradNorm({x}, 10.0f);
  EXPECT_FLOAT_EQ(x->grad.at(0), 0.1f);
}

TEST(OptimizerTest, AdamExportImportResumesBitwise) {
  VarPtr target = MakeConst(Tensor::FromVector({3}, {1.0f, -2.0f, 0.5f}));
  auto step = [&](const VarPtr& x, Adam& adam) {
    adam.ZeroGrad();
    Backward(SumSquares(Sub(x, target)));
    adam.Step();
  };

  // Straight run: 20 uninterrupted steps.
  VarPtr a = MakeParam(Tensor::Full({3}, 5.0f));
  Adam adam_a({a}, 0.1f, /*weight_decay=*/0.01f);
  for (int i = 0; i < 20; ++i) step(a, adam_a);

  // Snapshot run: 10 steps, export {params, moments}, rebuild both from the
  // snapshot, 10 more steps. Must land on bitwise-identical floats.
  VarPtr b = MakeParam(Tensor::Full({3}, 5.0f));
  Adam adam_b({b}, 0.1f, /*weight_decay=*/0.01f);
  for (int i = 0; i < 10; ++i) step(b, adam_b);
  AdamState snapshot = adam_b.ExportState();
  Tensor value = b->value;

  VarPtr c = MakeParam(Tensor::Full({3}, 0.0f));
  c->value = value;
  Adam adam_c({c}, 0.1f, /*weight_decay=*/0.01f);
  adam_c.ImportState(snapshot);
  for (int i = 0; i < 10; ++i) step(c, adam_c);

  for (int64_t i = 0; i < 3; ++i) {
    EXPECT_EQ(a->value.at(i), c->value.at(i)) << "component " << i;
  }
}

TEST(OptimizerTest, AdamExportLeavesUntouchedParamsEmpty) {
  VarPtr used = MakeParam(Tensor::Full({2}, 1.0f));
  VarPtr unused = MakeParam(Tensor::Full({4}, 1.0f));
  Adam adam({used, unused}, 0.1f);
  adam.ZeroGrad();
  used->EnsureGrad().Fill(1.0f);
  adam.Step();
  AdamState state = adam.ExportState();
  EXPECT_EQ(state.t, 1);
  ASSERT_EQ(state.m.size(), 2u);
  EXPECT_EQ(state.m[0].numel(), 2);  // touched: moments materialized
  EXPECT_EQ(state.m[1].numel(), 0);  // untouched: stays empty
}

TEST(OptimizerTest, AdamLrAccessor) {
  Adam adam({}, 0.01f);
  EXPECT_FLOAT_EQ(adam.lr(), 0.01f);
  adam.set_lr(0.02f);
  EXPECT_FLOAT_EQ(adam.lr(), 0.02f);
}

}  // namespace
}  // namespace autoac
