#include "graph/hetero_graph.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace autoac {
namespace {

// Small DBLP-shaped fixture: 2 authors, 3 papers, 2 terms; papers carry
// attributes.
class HeteroGraphTest : public ::testing::Test {
 protected:
  void SetUp() override {
    graph_ = std::make_shared<HeteroGraph>();
    author_ = graph_->AddNodeType("author", 2);
    paper_ = graph_->AddNodeType("paper", 3);
    term_ = graph_->AddNodeType("term", 2);
    pa_ = graph_->AddEdgeType("paper-author", paper_, author_);
    pt_ = graph_->AddEdgeType("paper-term", paper_, term_);
    graph_->SetAttributes(paper_, Tensor::Full({3, 4}, 1.0f));
    graph_->AddEdge(pa_, /*paper*/ 0, /*author*/ 0);
    graph_->AddEdge(pa_, 1, 0);
    graph_->AddEdge(pa_, 2, 1);
    graph_->AddEdge(pt_, 0, 0);
    graph_->AddEdge(pt_, 2, 1);
    graph_->SetTargetNodeType(author_);
    graph_->SetTargetEdgeType(pa_);
    graph_->SetLabels({0, 1}, 2);
    graph_->Finalize();
  }

  HeteroGraphPtr graph_;
  int64_t author_, paper_, term_, pa_, pt_;
};

TEST_F(HeteroGraphTest, OffsetsAndIdMapping) {
  EXPECT_EQ(graph_->num_nodes(), 7);
  EXPECT_EQ(graph_->node_type(author_).offset, 0);
  EXPECT_EQ(graph_->node_type(paper_).offset, 2);
  EXPECT_EQ(graph_->node_type(term_).offset, 5);
  EXPECT_EQ(graph_->GlobalId(paper_, 1), 3);
  EXPECT_EQ(graph_->TypeOf(3), paper_);
  EXPECT_EQ(graph_->LocalId(3), 1);
  EXPECT_EQ(graph_->TypeOf(6), term_);
}

TEST_F(HeteroGraphTest, LabelsByGlobalId) {
  EXPECT_EQ(graph_->LabelOf(0), 0);
  EXPECT_EQ(graph_->LabelOf(1), 1);
  EXPECT_EQ(graph_->LabelOf(2), -1);  // papers are unlabeled
  EXPECT_EQ(graph_->TargetGlobalIds(), (std::vector<int64_t>{0, 1}));
}

TEST_F(HeteroGraphTest, DegreesCountBothEndpoints) {
  // author0: papers 0,1 -> degree 2. paper0: author0 + term0 -> degree 2.
  EXPECT_EQ(graph_->degrees()[0], 2);
  EXPECT_EQ(graph_->degrees()[2], 2);
  EXPECT_EQ(graph_->degrees()[5], 1);
}

TEST_F(HeteroGraphTest, FullAdjacencySymmetricWithSelfLoops) {
  SpMatPtr adj = graph_->FullAdjacency(AdjNorm::kNone, true);
  const Csr& csr = adj->forward();
  csr.CheckInvariants();
  // 5 undirected edges -> 10 directed + 7 self-loops.
  EXPECT_EQ(csr.nnz(), 17);
  // Symmetry: entry (0, 2) exists iff (2, 0) exists.
  auto has_entry = [&](int64_t r, int64_t c) {
    for (int64_t k = csr.indptr[r]; k < csr.indptr[r + 1]; ++k) {
      if (csr.indices[k] == c) return true;
    }
    return false;
  };
  for (int64_t r = 0; r < 7; ++r) {
    EXPECT_TRUE(has_entry(r, r));
    for (int64_t c = 0; c < 7; ++c) {
      EXPECT_EQ(has_entry(r, c), has_entry(c, r));
    }
  }
}

TEST_F(HeteroGraphTest, SymNormalizationValues) {
  SpMatPtr adj = graph_->FullAdjacency(AdjNorm::kSym, true);
  const Csr& csr = adj->forward();
  // With self-loops the CSR row degree includes the loop; value of entry
  // (i, j) must be 1/sqrt(deg_i * deg_j) over CSR degrees.
  std::vector<int64_t> deg(7);
  for (int64_t i = 0; i < 7; ++i) deg[i] = csr.RowDegree(i);
  for (int64_t i = 0; i < 7; ++i) {
    for (int64_t k = csr.indptr[i]; k < csr.indptr[i + 1]; ++k) {
      double expected = 1.0 / std::sqrt(static_cast<double>(deg[i]) *
                                        deg[csr.indices[k]]);
      EXPECT_NEAR(csr.values[k], expected, 1e-6);
    }
  }
}

TEST_F(HeteroGraphTest, RowNormalizationSumsToOne) {
  SpMatPtr adj = graph_->FullAdjacency(AdjNorm::kRow, true);
  const Csr& csr = adj->forward();
  for (int64_t i = 0; i < csr.num_rows; ++i) {
    double sum = 0.0;
    for (int64_t k = csr.indptr[i]; k < csr.indptr[i + 1]; ++k) {
      sum += csr.values[k];
    }
    EXPECT_NEAR(sum, 1.0, 1e-5);
  }
}

TEST_F(HeteroGraphTest, TypedAdjacencyRelationIds) {
  TypedAdjacency typed = graph_->FullTypedAdjacency(true);
  const Csr& csr = typed.adj->forward();
  ASSERT_EQ(static_cast<int64_t>(typed.edge_types.size()), csr.nnz());
  // 2 relations -> forward [0,2), reverse [2,4), self type 4.
  EXPECT_EQ(typed.num_edge_types, 5);
  for (int64_t i = 0; i < csr.num_rows; ++i) {
    for (int64_t k = csr.indptr[i]; k < csr.indptr[i + 1]; ++k) {
      int64_t j = csr.indices[k];
      int64_t t = typed.edge_types[k];
      if (i == j) {
        EXPECT_EQ(t, 4);
      } else if (t == 0) {
        // paper-author forward: dst=author, src=paper.
        EXPECT_EQ(graph_->TypeOf(i), author_);
        EXPECT_EQ(graph_->TypeOf(j), paper_);
      } else if (t == 2) {
        // paper-author reverse: dst=paper, src=author.
        EXPECT_EQ(graph_->TypeOf(i), paper_);
        EXPECT_EQ(graph_->TypeOf(j), author_);
      }
    }
  }
}

TEST_F(HeteroGraphTest, RelationAdjacencyDirections) {
  // Forward relation pa_: rows = authors (dst), cols = papers (src).
  SpMatPtr fwd = graph_->RelationAdjacency(pa_, AdjNorm::kNone);
  EXPECT_EQ(fwd->forward().RowDegree(0), 2);  // author0 <- papers 0,1
  EXPECT_EQ(fwd->forward().RowDegree(2), 0);  // papers have no entries
  // Reverse relation: rows = papers.
  SpMatPtr rev =
      graph_->RelationAdjacency(pa_ + graph_->num_edge_types(), AdjNorm::kNone);
  EXPECT_EQ(rev->forward().RowDegree(2), 1);  // paper0 <- author0
  EXPECT_EQ(rev->forward().RowDegree(0), 0);
}

TEST_F(HeteroGraphTest, AttributedNeighborAdjacencyOnlyAttributedSources) {
  SpMatPtr adj = graph_->AttributedNeighborAdjacency(AdjNorm::kRow);
  const Csr& csr = adj->forward();
  // Every stored source must be a paper (the only attributed type).
  for (int64_t col : csr.indices) {
    EXPECT_EQ(graph_->TypeOf(col), paper_);
  }
  // author0 has papers 0,1 as attributed neighbours -> row-normalized 0.5.
  EXPECT_EQ(csr.RowDegree(0), 2);
  EXPECT_NEAR(csr.values[csr.indptr[0]], 0.5f, 1e-6);
}

TEST(HeteroGraphDeathTest, AdjacencyBeforeFinalizeAborts) {
  HeteroGraph graph;
  graph.AddNodeType("a", 2);
  EXPECT_DEATH(graph.FullAdjacency(AdjNorm::kNone, false), "Finalize");
}

}  // namespace
}  // namespace autoac
