// The determinism contract of the parallel runtime (util/parallel.h): every
// kernel partitions work over output rows in serial accumulation order, so
// forward values AND gradients are bitwise identical at every thread count.
// These tests pin that down for the three kernel families the contract is
// hardest to keep — dense GEMM (three matmuls per backward), SpMM with its
// cached-transpose backward, and edge-softmax attention — on deliberately
// ragged shapes: empty rows, d=1, and row counts that do not divide evenly
// among 2 or 7 workers.

#include <cstring>
#include <functional>
#include <vector>

#include "grad_check.h"
#include "graph/sparse_ops.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/rng.h"

namespace autoac {
namespace {

using testing::ExpectGradientsMatch;

constexpr int kThreadCounts[] = {1, 2, 7};

void ExpectBitwiseEqual(const Tensor& a, const Tensor& b,
                        const char* what, int threads) {
  ASSERT_EQ(a.numel(), b.numel()) << what;
  EXPECT_EQ(std::memcmp(a.data(), b.data(),
                        sizeof(float) * static_cast<size_t>(a.numel())),
            0)
      << what << " differs between 1 and " << threads << " threads";
}

/// Runs `build` (fresh graph per call) with each thread count and asserts
/// the loss, every intermediate output, and every parameter gradient are
/// bitwise identical to the single-threaded run. `build` fills `outputs`
/// with the variables whose forward values should be compared.
void ExpectDeterministicAcrossThreads(
    const std::vector<VarPtr>& params,
    const std::function<VarPtr(std::vector<VarPtr>&)>& build) {
  Tensor ref_loss;
  std::vector<Tensor> ref_outputs;
  std::vector<Tensor> ref_grads;
  for (int threads : kThreadCounts) {
    SetNumThreads(threads);
    ZeroGrads(params);
    std::vector<VarPtr> outputs;
    VarPtr loss = build(outputs);
    Backward(loss);
    if (threads == 1) {
      ref_loss = loss->value;
      for (const VarPtr& out : outputs) ref_outputs.push_back(out->value);
      for (const VarPtr& p : params) ref_grads.push_back(p->grad);
      continue;
    }
    ExpectBitwiseEqual(loss->value, ref_loss, "loss", threads);
    ASSERT_EQ(outputs.size(), ref_outputs.size());
    for (size_t i = 0; i < outputs.size(); ++i) {
      ExpectBitwiseEqual(outputs[i]->value, ref_outputs[i], "output",
                         threads);
    }
    for (size_t i = 0; i < params.size(); ++i) {
      ExpectBitwiseEqual(params[i]->grad, ref_grads[i], "gradient", threads);
    }
  }
  SetNumThreads(0);
}

/// 37x29 sparse matrix with rows 0-4 and every third row empty, plus a few
/// parallel (duplicate) edges. Non-divisible by 2 and 7 on purpose.
SpMatPtr RaggedSparse(Rng& rng) {
  std::vector<int64_t> rows, cols;
  std::vector<float> vals;
  for (int64_t i = 5; i < 37; ++i) {
    if (i % 3 == 0) continue;  // empty destination rows
    int64_t degree = 1 + rng.UniformInt(0, 4);
    for (int64_t e = 0; e < degree; ++e) {
      rows.push_back(i);
      cols.push_back(rng.UniformInt(0, 28));
      vals.push_back(static_cast<float>(rng.Uniform(0.2, 1.0)));
    }
  }
  // Parallel edges: both entries must contribute separately.
  rows.push_back(7); cols.push_back(2); vals.push_back(0.5f);
  rows.push_back(7); cols.push_back(2); vals.push_back(0.25f);
  return MakeSparse(Csr::FromCoo(37, 29, rows, cols, vals));
}

TEST(ParallelDeterminismTest, MatMulForwardBackward) {
  Rng rng(11);
  VarPtr a = MakeParam(RandomNormal({37, 19}, 0.8f, rng));
  VarPtr b = MakeParam(RandomNormal({19, 23}, 0.8f, rng));
  ExpectDeterministicAcrossThreads({a, b}, [&](std::vector<VarPtr>& outputs) {
    VarPtr y = MatMul(a, b);
    outputs.push_back(y);
    return SumSquares(y);
  });
}

TEST(ParallelDeterminismTest, MatMulSingleColumn) {
  Rng rng(12);
  VarPtr a = MakeParam(RandomNormal({101, 7}, 0.8f, rng));
  VarPtr b = MakeParam(RandomNormal({7, 1}, 0.8f, rng));  // d = 1
  ExpectDeterministicAcrossThreads({a, b}, [&](std::vector<VarPtr>& outputs) {
    VarPtr y = MatMul(a, b);
    outputs.push_back(y);
    return SumSquares(y);
  });
}

TEST(ParallelDeterminismTest, SpMMForwardBackward) {
  Rng rng(13);
  SpMatPtr adj = RaggedSparse(rng);
  VarPtr x = MakeParam(RandomNormal({29, 5}, 0.8f, rng));
  ExpectDeterministicAcrossThreads({x}, [&](std::vector<VarPtr>& outputs) {
    VarPtr y = SpMM(adj, x);
    outputs.push_back(y);
    return SumSquares(y);
  });
}

TEST(ParallelDeterminismTest, SpMMSingleFeature) {
  Rng rng(14);
  SpMatPtr adj = RaggedSparse(rng);
  VarPtr x = MakeParam(RandomNormal({29, 1}, 0.8f, rng));  // d = 1
  ExpectDeterministicAcrossThreads({x}, [&](std::vector<VarPtr>& outputs) {
    VarPtr y = SpMM(adj, x);
    outputs.push_back(y);
    return SumSquares(y);
  });
}

TEST(ParallelDeterminismTest, SpMMEmptyRowsStayZero) {
  Rng rng(15);
  SpMatPtr adj = RaggedSparse(rng);
  VarPtr x = MakeConst(RandomNormal({29, 4}, 1.0f, rng));
  SetNumThreads(7);
  VarPtr y = SpMM(adj, x);
  SetNumThreads(0);
  const Csr& csr = adj->forward();
  for (int64_t i = 0; i < csr.num_rows; ++i) {
    if (csr.RowDegree(i) > 0) continue;
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_EQ(y->value.at(i, j), 0.0f) << "row " << i;
    }
  }
}

TEST(ParallelDeterminismTest, EdgeSoftmaxForwardBackward) {
  Rng rng(16);
  std::vector<int64_t> rows, cols;
  for (int64_t i = 0; i < 37; ++i) {
    if (i % 5 == 0) continue;  // empty destination rows
    int64_t degree = 1 + rng.UniformInt(0, 3);
    for (int64_t e = 0; e < degree; ++e) {
      rows.push_back(i);
      cols.push_back(rng.UniformInt(0, 36));
    }
  }
  SpMatPtr adj = MakeSparse(Csr::FromCoo(37, 37, rows, cols));
  VarPtr logits = MakeParam(RandomNormal({adj->nnz()}, 0.8f, rng));
  VarPtr h = MakeParam(RandomNormal({37, 6}, 0.8f, rng));
  ExpectDeterministicAcrossThreads(
      {logits, h}, [&](std::vector<VarPtr>& outputs) {
        VarPtr y = EdgeSoftmaxAggregate(adj, logits, h);
        outputs.push_back(y);
        return SumSquares(y);
      });
  // Gradients are not just stable but *correct* in parallel: finite
  // differences with the pool pinned at 7 threads.
  SetNumThreads(7);
  ExpectGradientsMatch({logits, h}, [&] {
    return SumSquares(EdgeSoftmaxAggregate(adj, logits, h));
  });
  SetNumThreads(0);
}

TEST(ParallelDeterminismTest, GatherScatterPipeline) {
  // The attention-adjacent gather ops share the transpose-partitioned
  // backward; run them through the same bitwise check.
  Rng rng(17);
  SpMatPtr adj = RaggedSparse(rng);
  VarPtr src = MakeParam(RandomNormal({29}, 0.8f, rng));
  VarPtr dst = MakeParam(RandomNormal({37}, 0.8f, rng));
  ExpectDeterministicAcrossThreads(
      {src, dst}, [&](std::vector<VarPtr>& outputs) {
        VarPtr e = Add(GatherEdgeSrc(adj, src), GatherEdgeDst(adj, dst));
        outputs.push_back(e);
        return SumSquares(e);
      });
}

}  // namespace
}  // namespace autoac
