#include "autoac/clustering.h"

#include <cmath>

#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/optimizer.h"

namespace autoac {
namespace {

// Two disconnected cliques of 4 nodes each: a perfect 2-clustering exists,
// with modularity 0.5 (two equal disconnected communities).
HeteroGraphPtr TwoCliques() {
  auto graph = std::make_shared<HeteroGraph>();
  int64_t type = graph->AddNodeType("node", 8);
  int64_t edge = graph->AddEdgeType("link", type, type);
  auto clique = [&](int64_t base) {
    for (int64_t i = 0; i < 4; ++i) {
      for (int64_t j = i + 1; j < 4; ++j) {
        graph->AddEdge(edge, base + i, base + j);
      }
    }
  };
  clique(0);
  clique(4);
  graph->SetTargetNodeType(type);
  graph->SetLabels(std::vector<int64_t>(8, 0), 1);
  graph->Finalize();
  return graph;
}

// Builds a hard assignment matrix as a Var.
VarPtr HardAssignment(const std::vector<int64_t>& clusters, int64_t m) {
  Tensor c(static_cast<int64_t>(clusters.size()), m);
  for (size_t i = 0; i < clusters.size(); ++i) {
    c.at(static_cast<int64_t>(i), clusters[i]) = 1.0f;
  }
  return MakeConst(c);
}

TEST(ClusterHeadTest, PerfectPartitionScoresBetterThanMixed) {
  Rng rng(1);
  HeteroGraphPtr graph = TwoCliques();
  ClusterHead head(graph, 4, 2, rng);
  VarPtr perfect = HardAssignment({0, 0, 0, 0, 1, 1, 1, 1}, 2);
  VarPtr mixed = HardAssignment({0, 1, 0, 1, 0, 1, 0, 1}, 2);
  float loss_perfect = head.ModularityLoss(perfect)->value.data()[0];
  float loss_mixed = head.ModularityLoss(mixed)->value.data()[0];
  EXPECT_LT(loss_perfect, loss_mixed);
}

TEST(ClusterHeadTest, PerfectPartitionModularityValue) {
  Rng rng(2);
  HeteroGraphPtr graph = TwoCliques();
  ClusterHead head(graph, 4, 2, rng);
  VarPtr perfect = HardAssignment({0, 0, 0, 0, 1, 1, 1, 1}, 2);
  // Modularity of two equal disconnected communities is 1/2; the collapse
  // term for a balanced assignment is sqrt(2)/8 * ||(4,4)|| = sqrt(2)/8 *
  // sqrt(32) = 1. Loss = -0.5 + 1.0 = 0.5.
  EXPECT_NEAR(head.ModularityLoss(perfect)->value.data()[0], 0.5f, 1e-4);
}

TEST(ClusterHeadTest, CollapsePenalizesSingleCluster) {
  Rng rng(3);
  HeteroGraphPtr graph = TwoCliques();
  ClusterHead head(graph, 4, 2, rng);
  VarPtr collapsed = HardAssignment({0, 0, 0, 0, 0, 0, 0, 0}, 2);
  // Modularity of the all-in-one assignment is 0; collapse term is
  // sqrt(2)/8 * 8 = sqrt(2). Loss = sqrt(2) > perfect's 0.5.
  EXPECT_NEAR(head.ModularityLoss(collapsed)->value.data()[0],
              std::sqrt(2.0f), 1e-4);
}

TEST(ClusterHeadTest, TrainingTheHeadRecoversCommunities) {
  Rng rng(4);
  HeteroGraphPtr graph = TwoCliques();
  ClusterHead head(graph, 2, 2, rng);
  // Hidden features that separate the two cliques linearly.
  Tensor hidden_values(8, 2);
  for (int64_t i = 0; i < 8; ++i) {
    hidden_values.at(i, 0) = i < 4 ? 1.0f : -1.0f;
    hidden_values.at(i, 1) = static_cast<float>(rng.Normal(0, 0.1));
  }
  VarPtr hidden = MakeConst(hidden_values);
  Adam optimizer(head.Parameters(), 0.05f);
  for (int step = 0; step < 200; ++step) {
    optimizer.ZeroGrad();
    VarPtr loss = head.ModularityLoss(head.Assignments(hidden));
    Backward(loss);
    optimizer.Step();
  }
  std::vector<int64_t> all_nodes = {0, 1, 2, 3, 4, 5, 6, 7};
  std::vector<int64_t> clusters =
      head.HardClusters(head.Assignments(hidden), all_nodes);
  // Both cliques internally consistent and different from each other.
  for (int64_t i = 1; i < 4; ++i) EXPECT_EQ(clusters[i], clusters[0]);
  for (int64_t i = 5; i < 8; ++i) EXPECT_EQ(clusters[i], clusters[4]);
  EXPECT_NE(clusters[0], clusters[4]);
}

TEST(ClusterHeadTest, AssignmentsAreRowStochastic) {
  Rng rng(5);
  HeteroGraphPtr graph = TwoCliques();
  ClusterHead head(graph, 3, 4, rng);
  VarPtr hidden = MakeConst(RandomNormal({8, 3}, 1.0f, rng));
  VarPtr c = head.Assignments(hidden);
  EXPECT_EQ(c->value.cols(), 4);
  for (int64_t i = 0; i < 8; ++i) {
    float sum = 0;
    for (int64_t m = 0; m < 4; ++m) {
      EXPECT_GE(c->value.at(i, m), 0.0f);
      sum += c->value.at(i, m);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(KMeansTest, SeparatedBlobsAreRecovered) {
  Rng rng(6);
  Tensor features(60, 2);
  for (int64_t i = 0; i < 60; ++i) {
    float center = i < 30 ? 5.0f : -5.0f;
    features.at(i, 0) = center + static_cast<float>(rng.Normal(0, 0.3));
    features.at(i, 1) = center + static_cast<float>(rng.Normal(0, 0.3));
  }
  std::vector<int64_t> assignment = KMeansCluster(features, 2, 10, rng);
  ASSERT_EQ(assignment.size(), 60u);
  for (int64_t i = 1; i < 30; ++i) EXPECT_EQ(assignment[i], assignment[0]);
  for (int64_t i = 31; i < 60; ++i) EXPECT_EQ(assignment[i], assignment[30]);
  EXPECT_NE(assignment[0], assignment[30]);
}

TEST(KMeansTest, HandlesMoreClustersThanPoints) {
  Rng rng(7);
  Tensor features(3, 2);
  features.at(0, 0) = 1.0f;
  features.at(1, 0) = 2.0f;
  features.at(2, 0) = 3.0f;
  std::vector<int64_t> assignment = KMeansCluster(features, 5, 5, rng);
  EXPECT_EQ(assignment.size(), 3u);
  for (int64_t a : assignment) {
    EXPECT_GE(a, 0);
    EXPECT_LT(a, 5);
  }
}

}  // namespace
}  // namespace autoac
