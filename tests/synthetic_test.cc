#include "data/synthetic.h"

#include "data/hgb_datasets.h"
#include "gtest/gtest.h"

namespace autoac {
namespace {

SyntheticGraphConfig SmallConfig() {
  SyntheticGraphConfig config;
  config.name = "toy";
  config.num_classes = 3;
  config.types = {
      {"target", 300, false, false, 0},
      {"doc", 600, true, false, 48},
      {"tag", 200, false, false, 0},
  };
  config.target_type = 0;
  config.edges = {
      {"doc-target", 1, 0, 1800},
      {"doc-tag", 1, 2, 900},
  };
  config.target_edge_type = 0;
  config.seed = 11;
  return config;
}

TEST(SyntheticTest, RespectsCountsAndSchema) {
  SyntheticGraph g = GenerateSyntheticGraph(SmallConfig());
  EXPECT_EQ(g.graph->num_nodes(), 300 + 600 + 200);
  EXPECT_EQ(g.graph->num_node_types(), 3);
  EXPECT_EQ(g.graph->num_edge_types(), 2);
  EXPECT_GE(g.graph->num_edges(), 2700);
  EXPECT_EQ(g.graph->node_type(1).attributes.rows(), 600);
  EXPECT_EQ(g.graph->node_type(1).attributes.cols(), 48);
  EXPECT_EQ(g.graph->node_type(0).attributes.numel(), 0);
  EXPECT_EQ(g.graph->num_classes(), 3);
}

TEST(SyntheticTest, ScaleShrinksCounts) {
  SyntheticGraphConfig config = SmallConfig();
  config.scale = 0.5;
  SyntheticGraph g = GenerateSyntheticGraph(config);
  EXPECT_EQ(g.graph->num_nodes(), 150 + 300 + 100);
}

TEST(SyntheticTest, DeterministicForSeed) {
  SyntheticGraph a = GenerateSyntheticGraph(SmallConfig());
  SyntheticGraph b = GenerateSyntheticGraph(SmallConfig());
  EXPECT_EQ(a.graph->num_edges(), b.graph->num_edges());
  EXPECT_EQ(a.latent_class, b.latent_class);
  EXPECT_EQ(a.graph->edge_src(), b.graph->edge_src());
}

TEST(SyntheticTest, EveryCoveredNodeHasAnEdge) {
  SyntheticGraph g = GenerateSyntheticGraph(SmallConfig());
  std::vector<int64_t> deg = g.graph->degrees();
  // The coverage pass guarantees target and doc nodes at least one edge.
  for (int64_t i = 0; i < 300; ++i) {
    EXPECT_GT(deg[g.graph->GlobalId(0, i)], 0) << "target " << i;
  }
}

TEST(SyntheticTest, LabelsMatchLatentAtHighFidelity) {
  SyntheticGraphConfig config = SmallConfig();
  config.label_fidelity = 1.0;
  SyntheticGraph g = GenerateSyntheticGraph(config);
  for (int64_t i = 0; i < 300; ++i) {
    int64_t global = g.graph->GlobalId(0, i);
    EXPECT_EQ(g.graph->LabelOf(global), g.latent_class[global]);
  }
}

TEST(SyntheticTest, LabelFidelityControlsAgreement) {
  SyntheticGraphConfig config = SmallConfig();
  config.label_fidelity = 0.5;
  SyntheticGraph g = GenerateSyntheticGraph(config);
  int64_t agree = 0;
  for (int64_t i = 0; i < 300; ++i) {
    int64_t global = g.graph->GlobalId(0, i);
    if (g.graph->LabelOf(global) == g.latent_class[global]) ++agree;
  }
  // Expected agreement: 0.5 + 0.5/3 = 2/3 of 300 = 200. Allow slack.
  EXPECT_GT(agree, 160);
  EXPECT_LT(agree, 240);
}

// The central planted property: a local-regime node's attributed
// neighbourhood is substantially purer than an identity-regime node's.
TEST(SyntheticTest, RegimePurityOrdering) {
  SyntheticGraph g = GenerateSyntheticGraph(SmallConfig());
  const HeteroGraph& graph = *g.graph;
  SpMatPtr adj = graph.AttributedNeighborAdjacency(AdjNorm::kNone);
  const Csr& csr = adj->forward();
  double purity_sum[3] = {0, 0, 0};
  int64_t counts[3] = {0, 0, 0};
  for (int64_t local = 0; local < graph.node_type(0).count; ++local) {
    int64_t v = graph.GlobalId(0, local);
    int64_t same = 0;
    int64_t degree = csr.RowDegree(v);
    if (degree == 0) continue;
    for (int64_t k = csr.indptr[v]; k < csr.indptr[v + 1]; ++k) {
      if (g.latent_class[csr.indices[k]] == g.latent_class[v]) ++same;
    }
    int regime = static_cast<int>(g.regime[v]);
    purity_sum[regime] += static_cast<double>(same) / degree;
    ++counts[regime];
  }
  ASSERT_GT(counts[0], 0);  // local
  ASSERT_GT(counts[1], 0);  // global
  double local_purity = purity_sum[0] / counts[0];
  double global_purity = purity_sum[1] / counts[1];
  EXPECT_GT(local_purity, global_purity + 0.05);
  EXPECT_GT(local_purity, 0.75);
}

// Identity-regime nodes must be sparser than local-regime nodes.
TEST(SyntheticTest, IdentityRegimeIsSparse) {
  SyntheticGraph g = GenerateSyntheticGraph(SmallConfig());
  const HeteroGraph& graph = *g.graph;
  double degree_sum[3] = {0, 0, 0};
  int64_t counts[3] = {0, 0, 0};
  // Tags (type 2, non-target) can hold identity regime.
  for (int64_t local = 0; local < graph.node_type(2).count; ++local) {
    int64_t v = graph.GlobalId(2, local);
    int regime = static_cast<int>(g.regime[v]);
    degree_sum[regime] += static_cast<double>(graph.degrees()[v]);
    ++counts[regime];
  }
  ASSERT_GT(counts[0], 0);
  ASSERT_GT(counts[2], 0);
  EXPECT_GT(degree_sum[0] / counts[0], 1.5 * degree_sum[2] / counts[2]);
}

TEST(SyntheticTest, TargetTypeNeverIdentityRegime) {
  SyntheticGraph g = GenerateSyntheticGraph(SmallConfig());
  for (int64_t local = 0; local < g.graph->node_type(0).count; ++local) {
    int64_t v = g.graph->GlobalId(0, local);
    EXPECT_NE(g.regime[v], CompletionRegime::kIdentity);
  }
}

TEST(HgbDatasetsTest, AllDatasetsBuildAtSmallScale) {
  for (const std::string& name : AllDatasetNames()) {
    DatasetOptions options;
    options.scale = 0.05;
    Dataset dataset = MakeDataset(name, options);
    EXPECT_GT(dataset.graph->num_nodes(), 0) << name;
    EXPECT_GT(dataset.graph->num_edges(), 0) << name;
    EXPECT_GE(dataset.graph->target_edge_type(), 0) << name;
    // Exactly one type carries attributes by default.
    int64_t attributed = 0;
    for (int64_t t = 0; t < dataset.graph->num_node_types(); ++t) {
      if (dataset.graph->node_type(t).attributes.numel() > 0) ++attributed;
    }
    EXPECT_EQ(attributed, 1) << name;
  }
}

TEST(HgbDatasetsTest, SplitsFollowProtocol) {
  DatasetOptions options;
  options.scale = 0.1;
  Dataset dataset = MakeDataset("dblp", options);
  int64_t targets = dataset.graph->node_type(
      dataset.graph->target_node_type()).count;
  int64_t total = static_cast<int64_t>(dataset.split.train.size() +
                                       dataset.split.val.size() +
                                       dataset.split.test.size());
  EXPECT_EQ(total, targets);
  // 70% test (the HGB fraction this repo preserves).
  EXPECT_NEAR(static_cast<double>(dataset.split.test.size()) / targets, 0.70,
              0.02);
}

TEST(HgbDatasetsTest, MissingOverrideAddsManualCodes) {
  DatasetOptions options;
  options.scale = 0.05;
  options.missing_types = {"author"};  // term/venue manually completed
  Dataset dataset = MakeDataset("dblp", options);
  int64_t attributed = 0;
  for (int64_t t = 0; t < dataset.graph->num_node_types(); ++t) {
    if (dataset.graph->node_type(t).attributes.numel() > 0) ++attributed;
  }
  EXPECT_EQ(attributed, 3);  // paper raw + term/venue codes
  EXPECT_LT(MissingRate(dataset), 0.5);
}

TEST(HgbDatasetsTest, MissingOverrideKeepsTopologyFixed) {
  DatasetOptions base;
  base.scale = 0.05;
  Dataset full_missing = MakeDataset("dblp", base);
  DatasetOptions override_options = base;
  override_options.missing_types = {"author"};
  Dataset partial = MakeDataset("dblp", override_options);
  EXPECT_EQ(full_missing.graph->edge_src(), partial.graph->edge_src());
  EXPECT_EQ(full_missing.graph->edge_dst(), partial.graph->edge_dst());
}

TEST(HgbDatasetsTest, MissingRatesIncreaseAlongLadder) {
  DatasetOptions options;
  options.scale = 0.1;
  options.missing_types = {"author"};
  double low = MissingRate(MakeDataset("dblp", options));
  options.missing_types = {"author", "term", "venue"};
  double high = MissingRate(MakeDataset("dblp", options));
  EXPECT_LT(low, high);
}

}  // namespace
}  // namespace autoac
