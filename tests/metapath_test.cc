#include "graph/metapath.h"

#include "graph/random_walk.h"
#include "gtest/gtest.h"
#include "tensor/tensor.h"

namespace autoac {
namespace {

// author0 - paper0 - author1, author1 - paper1, plus term0 on paper0.
HeteroGraphPtr PathGraph() {
  auto graph = std::make_shared<HeteroGraph>();
  int64_t author = graph->AddNodeType("author", 2);
  int64_t paper = graph->AddNodeType("paper", 2);
  int64_t term = graph->AddNodeType("term", 1);
  int64_t pa = graph->AddEdgeType("pa", paper, author);
  int64_t pt = graph->AddEdgeType("pt", paper, term);
  graph->SetAttributes(paper, Tensor::Full({2, 2}, 1.0f));
  graph->AddEdge(pa, 0, 0);
  graph->AddEdge(pa, 0, 1);
  graph->AddEdge(pa, 1, 1);
  graph->AddEdge(pt, 0, 0);
  graph->SetTargetNodeType(author);
  graph->SetLabels({0, 1}, 2);
  graph->Finalize();
  return graph;
}

TEST(MetapathTest, ApaCompositionConnectsCoauthors) {
  HeteroGraphPtr graph = PathGraph();
  // A-P-A: relation pa forward (author <- paper) composed with pa reverse
  // (paper <- author).
  Metapath apa;
  apa.name = "APA";
  apa.relations = {0, 0 + graph->num_edge_types()};
  SpMatPtr meta = ComposeMetapath(*graph, apa);
  const Csr& csr = meta->forward();
  csr.CheckInvariants();
  // author0 reaches {author0, author1} through paper0.
  auto row_cols = [&](int64_t row) {
    std::vector<int64_t> cols(csr.indices.begin() + csr.indptr[row],
                              csr.indices.begin() + csr.indptr[row + 1]);
    std::sort(cols.begin(), cols.end());
    return cols;
  };
  EXPECT_EQ(row_cols(0), (std::vector<int64_t>{0, 1}));
  // author1 reaches both authors (via paper0) and itself (via paper1).
  EXPECT_EQ(row_cols(1), (std::vector<int64_t>{0, 1}));
  // Rows are normalized.
  for (int64_t i = 0; i < 2; ++i) {
    float sum = 0;
    for (int64_t k = csr.indptr[i]; k < csr.indptr[i + 1]; ++k) {
      sum += csr.values[k];
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST(MetapathTest, DefaultMetapathsCoverTargetRelations) {
  HeteroGraphPtr graph = PathGraph();
  std::vector<Metapath> paths = DefaultMetapaths(*graph);
  // Only paper-author touches the target type -> one A-P-A style loop.
  ASSERT_EQ(paths.size(), 1u);
  EXPECT_EQ(paths[0].relations.size(), 2u);
  SpMatPtr meta = ComposeMetapath(*graph, paths[0]);
  // Every stored row with entries must be a target-type row.
  const Csr& csr = meta->forward();
  for (int64_t i = 0; i < csr.num_rows; ++i) {
    if (csr.RowDegree(i) > 0) {
      EXPECT_EQ(graph->TypeOf(i), graph->target_node_type());
    }
  }
}

TEST(MetapathTest, RowCapBoundsDensity) {
  HeteroGraphPtr graph = PathGraph();
  Metapath apa{"APA", {0, 2}};
  SpMatPtr capped = ComposeMetapath(*graph, apa, /*max_row_nnz=*/1);
  const Csr& csr = capped->forward();
  for (int64_t i = 0; i < csr.num_rows; ++i) {
    EXPECT_LE(csr.RowDegree(i), 1);
  }
}

TEST(RandomWalkTest, WalksStayOnEdgesAndRespectLength) {
  HeteroGraphPtr graph = PathGraph();
  SpMatPtr adj = graph->FullAdjacency(AdjNorm::kNone, false);
  const Csr& csr = adj->forward();
  Rng rng(3);
  auto walks = UniformRandomWalks(*graph, 5, 2, rng);
  EXPECT_EQ(static_cast<int64_t>(walks.size()), graph->num_nodes() * 2);
  for (const auto& walk : walks) {
    EXPECT_LE(walk.size(), 5u);
    EXPECT_GE(walk.size(), 1u);
    for (size_t i = 0; i + 1 < walk.size(); ++i) {
      bool is_neighbor = false;
      for (int64_t k = csr.indptr[walk[i]]; k < csr.indptr[walk[i] + 1]; ++k) {
        if (csr.indices[k] == walk[i + 1]) is_neighbor = true;
      }
      EXPECT_TRUE(is_neighbor)
          << walk[i] << " -> " << walk[i + 1] << " is not an edge";
    }
  }
}

TEST(RandomWalkTest, SkipGramPairsRespectWindow) {
  std::vector<std::vector<int64_t>> walks = {{1, 2, 3, 4}};
  auto pairs = SkipGramPairs(walks, 1);
  // Each interior node pairs with 2 neighbours, endpoints with 1: total 6.
  EXPECT_EQ(pairs.size(), 6u);
  for (const auto& [center, context] : pairs) {
    EXPECT_EQ(std::abs(center - context), 1);
  }
}

}  // namespace
}  // namespace autoac
