#include "autoac/search.h"

#include "autoac/evaluator.h"
#include "autoac/hgnn_ac.h"
#include "autoac/trainer.h"
#include "gtest/gtest.h"

namespace autoac {
namespace {

// Shared tiny environment (context building dominates test time).
struct SearchEnvironment {
  static SearchEnvironment& Get() {
    static SearchEnvironment* env = new SearchEnvironment();
    return *env;
  }
  Dataset dataset;
  TaskData task;
  ModelContext ctx;

 private:
  SearchEnvironment() {
    DatasetOptions options;
    options.scale = 0.04;
    dataset = MakeDataset("acm", options);
    task = MakeNodeTask(dataset);
    ctx = BuildModelContext(dataset.graph);
  }
};

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.model_name = "GCN";  // cheapest host model
  config.hidden_dim = 16;
  config.train_epochs = 12;
  config.patience = 12;
  config.search_epochs = 8;
  config.alpha_warmup_epochs = 2;
  config.num_clusters = 4;
  config.seed = 3;
  return config;
}

int64_t NumMissing(const HeteroGraph& graph) {
  int64_t missing = 0;
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (graph.node_type(t).attributes.numel() == 0) {
      missing += graph.node_type(t).count;
    }
  }
  return missing;
}

TEST(SearchTest, ProducesValidAssignmentAndClusters) {
  SearchEnvironment& env = SearchEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  SearchResult result = SearchCompletionOps(env.task, env.ctx, config);
  EXPECT_FALSE(result.out_of_memory);
  int64_t n_missing = NumMissing(*env.dataset.graph);
  ASSERT_EQ(static_cast<int64_t>(result.op_per_missing.size()), n_missing);
  ASSERT_EQ(static_cast<int64_t>(result.cluster_of.size()), n_missing);
  for (int64_t c : result.cluster_of) {
    EXPECT_GE(c, 0);
    EXPECT_LT(c, config.num_clusters);
  }
  EXPECT_EQ(result.final_alpha.rows(), config.num_clusters);
  EXPECT_EQ(result.final_alpha.cols(), kNumCompletionOps);
  // Box constraint C2 holds on the returned alpha.
  for (int64_t i = 0; i < result.final_alpha.numel(); ++i) {
    EXPECT_GE(result.final_alpha.data()[i], 0.0f);
    EXPECT_LE(result.final_alpha.data()[i], 1.0f);
  }
  EXPECT_GT(result.search_seconds, 0.0);
  // Modularity clustering records an L_GmoC trace.
  EXPECT_EQ(static_cast<int64_t>(result.gmoc_trace.size()),
            config.search_epochs);
}

TEST(SearchTest, ClusterModesRun) {
  SearchEnvironment& env = SearchEnvironment::Get();
  for (ClusterMode mode : {ClusterMode::kNone, ClusterMode::kEm,
                           ClusterMode::kEmWarmup}) {
    ExperimentConfig config = TinyConfig();
    config.cluster_mode = mode;
    config.em_warmup_epochs = 3;
    SearchResult result = SearchCompletionOps(env.task, env.ctx, config);
    EXPECT_EQ(result.op_per_missing.size(),
              static_cast<size_t>(NumMissing(*env.dataset.graph)));
    if (mode == ClusterMode::kNone) {
      // Per-node alpha: every node is its own cluster.
      EXPECT_EQ(result.final_alpha.rows(), NumMissing(*env.dataset.graph));
    }
  }
}

TEST(SearchTest, WithoutDiscreteConstraintsRuns) {
  SearchEnvironment& env = SearchEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  config.discrete_constraints = false;
  config.search_epochs = 4;
  SearchResult result = SearchCompletionOps(env.task, env.ctx, config);
  EXPECT_FALSE(result.out_of_memory);
  EXPECT_EQ(result.op_per_missing.size(),
            static_cast<size_t>(NumMissing(*env.dataset.graph)));
}

TEST(SearchTest, MixtureSearchReportsOutOfMemoryUnderTinyBudget) {
  SearchEnvironment& env = SearchEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  config.discrete_constraints = false;
  config.memory_limit_bytes = 1024;  // absurdly small
  SearchResult result = SearchCompletionOps(env.task, env.ctx, config);
  EXPECT_TRUE(result.out_of_memory);
  RunResult run = RunAutoAc(env.task, env.ctx, config);
  EXPECT_TRUE(run.out_of_memory);
}

TEST(SearchTest, RunAutoAcEndToEnd) {
  SearchEnvironment& env = SearchEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  RunResult result = RunAutoAc(env.task, env.ctx, config);
  EXPECT_FALSE(result.out_of_memory);
  EXPECT_GT(result.test.micro_f1, 0.0);
  EXPECT_GT(result.times.search_seconds, 0.0);
  EXPECT_GT(result.times.train_seconds, 0.0);
  EXPECT_EQ(result.searched_ops.size(),
            static_cast<size_t>(NumMissing(*env.dataset.graph)));
}

TEST(TrainerTest, AssignmentHelpers) {
  Rng rng(1);
  auto uniform = UniformAssignment(5, CompletionOpType::kGcn);
  EXPECT_EQ(uniform.size(), 5u);
  for (CompletionOpType op : uniform) {
    EXPECT_EQ(op, CompletionOpType::kGcn);
  }
  auto random = RandomAssignment(200, rng);
  int histogram[kNumCompletionOps] = {0};
  for (CompletionOpType op : random) ++histogram[static_cast<int>(op)];
  for (int o = 0; o < kNumCompletionOps; ++o) {
    EXPECT_GT(histogram[o], 10);
  }
}

TEST(TrainerTest, EstimateTapeBytesCountsValuesAndGrads) {
  VarPtr a = MakeParam(Tensor::Zeros({10, 10}));  // 100 floats, grad too
  VarPtr b = MakeConst(Tensor::Zeros({10, 10}));  // 100 floats, no grad
  VarPtr c = SumAll(Mul(a, b));
  // a: 800, b: 400, mul: 800, sum: 8 -> 2008 bytes.
  EXPECT_EQ(EstimateTapeBytes(c), 2008);
}

TEST(HgnnAcTest, RunsAndReportsPrelearnTime) {
  SearchEnvironment& env = SearchEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  HgnnAcConfig hgnn;
  hgnn.walks_per_node = 1;
  hgnn.walk_length = 5;
  hgnn.prelearn_epochs = 1;
  RunResult result = RunHgnnAc(env.task, env.ctx, config, hgnn);
  EXPECT_GT(result.times.prelearn_seconds, 0.0);
  EXPECT_GT(result.test.micro_f1, 0.0);
}

}  // namespace
}  // namespace autoac
