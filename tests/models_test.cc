#include "models/factory.h"

#include <cmath>

#include "data/hgb_datasets.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/optimizer.h"

namespace autoac {
namespace {

// One tiny shared dataset/context for all model tests (building the context
// is the expensive part).
class ModelEnvironment {
 public:
  static ModelEnvironment& Get() {
    static ModelEnvironment* env = new ModelEnvironment();
    return *env;
  }

  const ModelContext& ctx() const { return ctx_; }
  const Dataset& dataset() const { return dataset_; }

 private:
  ModelEnvironment() {
    DatasetOptions options;
    options.scale = 0.04;
    dataset_ = MakeDataset("imdb", options);
    ctx_ = BuildModelContext(dataset_.graph);
  }
  Dataset dataset_;
  ModelContext ctx_;
};

ModelConfig SmallModelConfig() {
  ModelConfig config;
  config.in_dim = 8;
  config.hidden_dim = 8;
  config.out_dim = 8;
  config.num_layers = 2;
  config.num_heads = 2;
  config.dropout = 0.0f;
  return config;
}

class ModelZooTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ModelZooTest, ForwardShapeAndFiniteness) {
  const ModelContext& ctx = ModelEnvironment::Get().ctx();
  Rng rng(7);
  ModelPtr model = MakeModel(GetParam(), SmallModelConfig(), ctx, rng);
  ASSERT_NE(model, nullptr);
  EXPECT_EQ(model->name(), GetParam());

  int64_t n = ctx.graph->num_nodes();
  VarPtr h0 = MakeConst(RandomNormal({n, 8}, 0.5f, rng));
  VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
  EXPECT_EQ(h->value.rows(), n);
  EXPECT_EQ(h->value.cols(), model->output_dim());
  for (int64_t i = 0; i < h->value.numel(); ++i) {
    ASSERT_TRUE(std::isfinite(h->value.data()[i])) << GetParam();
  }
}

TEST_P(ModelZooTest, ParametersReceiveGradients) {
  const ModelContext& ctx = ModelEnvironment::Get().ctx();
  Rng rng(8);
  ModelPtr model = MakeModel(GetParam(), SmallModelConfig(), ctx, rng);
  std::vector<VarPtr> params = model->Parameters();
  ASSERT_FALSE(params.empty());
  ZeroGrads(params);

  int64_t n = ctx.graph->num_nodes();
  VarPtr h0 = MakeConst(RandomNormal({n, 8}, 0.5f, rng));
  VarPtr h = model->Forward(ctx, h0, /*training=*/true, rng);
  Backward(SumSquares(h));

  int64_t touched = 0;
  for (const VarPtr& p : params) {
    if (p->grad.numel() > 0) {
      float norm = 0;
      for (int64_t i = 0; i < p->grad.numel(); ++i) {
        norm += std::fabs(p->grad.data()[i]);
      }
      if (norm > 0) ++touched;
    }
  }
  // The vast majority of parameters must participate; semantic-attention
  // heads on rarely-reached branches may legitimately stay zero.
  EXPECT_GT(touched, static_cast<int64_t>(params.size()) / 2) << GetParam();
}

TEST_P(ModelZooTest, LossDecreasesUnderTraining) {
  const ModelContext& ctx = ModelEnvironment::Get().ctx();
  Rng rng(9);
  ModelPtr model = MakeModel(GetParam(), SmallModelConfig(), ctx, rng);
  std::vector<VarPtr> params = model->Parameters();

  int64_t n = ctx.graph->num_nodes();
  VarPtr h0 = MakeConst(RandomNormal({n, 8}, 0.5f, rng));
  VarPtr target = MakeConst(RandomNormal({n, 8}, 0.5f, rng));
  Adam optimizer(params, 0.01f);
  float first_loss = 0.0f, last_loss = 0.0f;
  for (int step = 0; step < 12; ++step) {
    optimizer.ZeroGrad();
    VarPtr h = model->Forward(ctx, h0, /*training=*/true, rng);
    VarPtr loss = MeanAll(Mul(Sub(h, target), Sub(h, target)));
    if (step == 0) first_loss = loss->value.data()[0];
    last_loss = loss->value.data()[0];
    Backward(loss);
    optimizer.Step();
  }
  EXPECT_LT(last_loss, first_loss) << GetParam();
}

// The training flag changes a Forward pass only through dropout (satellite
// audit for the serving subsystem: with dropout disabled, training and
// evaluation are the same function, and an evaluation forward never draws
// from the rng). GATNE is the audited exception: it reads neither h0 nor
// the training flag (pure learned embeddings), so train == eval always.
TEST_P(ModelZooTest, TrainEvalDifferOnlyThroughDropout) {
  const ModelContext& ctx = ModelEnvironment::Get().ctx();
  int64_t n = ctx.graph->num_nodes();

  {
    // dropout = 0: train and eval forwards bitwise identical, even with
    // different rng streams.
    Rng rng(21);
    ModelPtr model = MakeModel(GetParam(), SmallModelConfig(), ctx, rng);
    VarPtr h0 = MakeConst(RandomNormal({n, 8}, 0.5f, rng));
    Rng train_rng(99), eval_rng(7);
    VarPtr train = model->Forward(ctx, h0, /*training=*/true, train_rng);
    VarPtr eval = model->Forward(ctx, h0, /*training=*/false, eval_rng);
    ASSERT_EQ(train->value.numel(), eval->value.numel());
    for (int64_t i = 0; i < train->value.numel(); ++i) {
      ASSERT_EQ(train->value.data()[i], eval->value.data()[i])
          << GetParam() << " index " << i;
    }
  }

  // dropout > 0: evaluation stays deterministic (dropout is a true no-op
  // that consumes no randomness), while a training forward diverges.
  ModelConfig config = SmallModelConfig();
  config.dropout = 0.5f;
  Rng rng(22);
  ModelPtr model = MakeModel(GetParam(), config, ctx, rng);
  VarPtr h0 = MakeConst(RandomNormal({n, 8}, 0.5f, rng));
  Rng eval_rng1(1), eval_rng2(123456);
  VarPtr eval1 = model->Forward(ctx, h0, /*training=*/false, eval_rng1);
  VarPtr eval2 = model->Forward(ctx, h0, /*training=*/false, eval_rng2);
  for (int64_t i = 0; i < eval1->value.numel(); ++i) {
    ASSERT_EQ(eval1->value.data()[i], eval2->value.data()[i])
        << GetParam() << " index " << i;
  }
  Rng train_rng(5);
  VarPtr train = model->Forward(ctx, h0, /*training=*/true, train_rng);
  int64_t diffs = 0;
  for (int64_t i = 0; i < train->value.numel(); ++i) {
    if (train->value.data()[i] != eval1->value.data()[i]) ++diffs;
  }
  if (GetParam() == "GATNE") {
    EXPECT_EQ(diffs, 0);
  } else {
    EXPECT_GT(diffs, 0) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModels, ModelZooTest,
    ::testing::Values("GCN", "GAT", "SimpleHGN", "HAN", "MAGNN", "HGT",
                      "HetSANN", "GTN", "HetGNN", "GATNE"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      return info.param;
    });

TEST(ModelFactoryTest, UnknownNameAborts) {
  const ModelContext& ctx = ModelEnvironment::Get().ctx();
  Rng rng(1);
  EXPECT_DEATH(MakeModel("NotAModel", SmallModelConfig(), ctx, rng),
               "unknown model");
}

TEST(ModelFactoryTest, BaselineListsAreNonEmpty) {
  EXPECT_FALSE(NodeClassificationBaselines().empty());
  EXPECT_FALSE(LinkPredictionBaselines().empty());
}

TEST(ModelContextTest, StructuresMatchGraph) {
  const ModelContext& ctx = ModelEnvironment::Get().ctx();
  const HeteroGraph& graph = *ctx.graph;
  EXPECT_EQ(ctx.sym_adj->num_rows(), graph.num_nodes());
  EXPECT_EQ(static_cast<int64_t>(ctx.relation_adjs.size()),
            graph.num_directed_relations());
  EXPECT_EQ(static_cast<int64_t>(ctx.src_type_adjs.size()),
            graph.num_node_types());
  EXPECT_FALSE(ctx.metapath_adjs.empty());
  EXPECT_EQ(static_cast<int64_t>(ctx.target_ids.size()),
            graph.node_type(graph.target_node_type()).count);
}

TEST(SimpleHgnTest, L2NormalizedOutputHasUnitRows) {
  const ModelContext& ctx = ModelEnvironment::Get().ctx();
  Rng rng(10);
  ModelPtr model = MakeModel("SimpleHGN", SmallModelConfig(), ctx, rng,
                             /*l2_normalize_output=*/true);
  int64_t n = ctx.graph->num_nodes();
  VarPtr h0 = MakeConst(RandomNormal({n, 8}, 0.5f, rng));
  VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
  for (int64_t i = 0; i < std::min<int64_t>(n, 50); ++i) {
    double norm = 0;
    for (int64_t j = 0; j < h->value.cols(); ++j) {
      norm += static_cast<double>(h->value.at(i, j)) * h->value.at(i, j);
    }
    EXPECT_NEAR(std::sqrt(norm), 1.0, 1e-3) << "row " << i;
  }
}

}  // namespace
}  // namespace autoac
