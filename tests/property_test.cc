// Parameterized property tests: invariants that must hold across randomized
// inputs and a sweep of shapes/seeds, complementing the example-based unit
// tests.

#include <cmath>

#include "autoac/completion_params.h"
#include "data/metrics.h"
#include "graph/sparse_ops.h"
#include "grad_check.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/ops.h"
#include "util/rng.h"

namespace autoac {
namespace {

// ---------------------------------------------------------------------------
// Autograd linearity/composition properties over random shapes.
// ---------------------------------------------------------------------------

struct ShapeCase {
  int64_t rows;
  int64_t cols;
  uint64_t seed;
};

class OpPropertyTest : public ::testing::TestWithParam<ShapeCase> {};

TEST_P(OpPropertyTest, SumAllIsLinear) {
  const ShapeCase& c = GetParam();
  Rng rng(c.seed);
  Tensor a = RandomNormal({c.rows, c.cols}, 1.0f, rng);
  Tensor b = RandomNormal({c.rows, c.cols}, 1.0f, rng);
  float sum_ab = SumAll(Add(MakeConst(a), MakeConst(b)))->value.data()[0];
  float sum_a = SumAll(MakeConst(a))->value.data()[0];
  float sum_b = SumAll(MakeConst(b))->value.data()[0];
  EXPECT_NEAR(sum_ab, sum_a + sum_b,
              1e-3f * (std::fabs(sum_a) + std::fabs(sum_b) + 1.0f));
}

TEST_P(OpPropertyTest, SoftmaxRowsSumToOneAndAreInvariantToShift) {
  const ShapeCase& c = GetParam();
  Rng rng(c.seed);
  Tensor x = RandomNormal({c.rows, c.cols}, 2.0f, rng);
  VarPtr softmax = RowSoftmax(MakeConst(x));
  VarPtr shifted = RowSoftmax(AddScalar(MakeConst(x), 7.5f));
  for (int64_t i = 0; i < c.rows; ++i) {
    float sum = 0.0f;
    for (int64_t j = 0; j < c.cols; ++j) {
      EXPECT_GE(softmax->value.at(i, j), 0.0f);
      sum += softmax->value.at(i, j);
      EXPECT_NEAR(softmax->value.at(i, j), shifted->value.at(i, j), 1e-5);
    }
    EXPECT_NEAR(sum, 1.0f, 1e-5);
  }
}

TEST_P(OpPropertyTest, GatherOfScatterIsIdentity) {
  const ShapeCase& c = GetParam();
  Rng rng(c.seed);
  Tensor x = RandomNormal({c.rows, c.cols}, 1.0f, rng);
  std::vector<int64_t> slots =
      rng.SampleWithoutReplacement(c.rows * 3, c.rows);
  VarPtr scattered = ScatterRows(MakeConst(x), slots, c.rows * 3);
  VarPtr recovered = GatherRows(scattered, slots);
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(recovered->value.data()[i], x.data()[i]);
  }
}

TEST_P(OpPropertyTest, MatMulGradCheckAcrossShapes) {
  const ShapeCase& c = GetParam();
  Rng rng(c.seed);
  VarPtr a = MakeParam(RandomNormal({c.rows, c.cols}, 0.7f, rng));
  VarPtr b = MakeParam(RandomNormal({c.cols, 3}, 0.7f, rng));
  testing::ExpectGradientsMatch({a, b},
                                [&] { return SumSquares(MatMul(a, b)); });
}

TEST_P(OpPropertyTest, TransposeIsInvolution) {
  const ShapeCase& c = GetParam();
  Rng rng(c.seed);
  Tensor x = RandomNormal({c.rows, c.cols}, 1.0f, rng);
  VarPtr twice = Transpose(Transpose(MakeConst(x)));
  for (int64_t i = 0; i < x.numel(); ++i) {
    EXPECT_EQ(twice->value.data()[i], x.data()[i]);
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, OpPropertyTest,
                         ::testing::Values(ShapeCase{1, 1, 11},
                                           ShapeCase{2, 7, 12},
                                           ShapeCase{5, 5, 13},
                                           ShapeCase{9, 3, 14},
                                           ShapeCase{16, 16, 15}),
                         [](const auto& info) {
                           return std::to_string(info.param.rows) + "x" +
                                  std::to_string(info.param.cols);
                         });

// ---------------------------------------------------------------------------
// SpMM distributivity: A(x + y) == Ax + Ay on random sparse matrices.
// ---------------------------------------------------------------------------

class SpmmPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SpmmPropertyTest, SpmmIsLinearInDenseOperand) {
  Rng rng(GetParam());
  int64_t n = rng.UniformInt(3, 24);
  int64_t nnz = rng.UniformInt(1, n * 3);
  std::vector<int64_t> rows, cols;
  std::vector<float> vals;
  for (int64_t e = 0; e < nnz; ++e) {
    rows.push_back(rng.UniformInt(0, n - 1));
    cols.push_back(rng.UniformInt(0, n - 1));
    vals.push_back(static_cast<float>(rng.Normal(0, 1)));
  }
  SpMatPtr a = MakeSparse(Csr::FromCoo(n, n, rows, cols, vals));
  VarPtr x = MakeConst(RandomNormal({n, 4}, 1.0f, rng));
  VarPtr y = MakeConst(RandomNormal({n, 4}, 1.0f, rng));
  VarPtr lhs = SpMM(a, Add(x, y));
  VarPtr rhs = Add(SpMM(a, x), SpMM(a, y));
  for (int64_t i = 0; i < lhs->value.numel(); ++i) {
    EXPECT_NEAR(lhs->value.data()[i], rhs->value.data()[i], 1e-3);
  }
}

TEST_P(SpmmPropertyTest, ForwardBackwardAreTransposes) {
  // <A x, y> must equal <x, A^T y> — the identity the SpMM backward pass
  // relies on.
  Rng rng(GetParam() + 1000);
  int64_t n = rng.UniformInt(3, 24);
  int64_t nnz = rng.UniformInt(1, n * 3);
  std::vector<int64_t> rows, cols;
  std::vector<float> vals;
  for (int64_t e = 0; e < nnz; ++e) {
    rows.push_back(rng.UniformInt(0, n - 1));
    cols.push_back(rng.UniformInt(0, n - 1));
    vals.push_back(static_cast<float>(rng.Normal(0, 1)));
  }
  SpMatPtr a = MakeSparse(Csr::FromCoo(n, n, rows, cols, vals));
  SpMatPtr at = MakeSparse(a->backward());
  VarPtr x = MakeConst(RandomNormal({n, 2}, 1.0f, rng));
  VarPtr y = MakeConst(RandomNormal({n, 2}, 1.0f, rng));
  float lhs = SumAll(Mul(SpMM(a, x), y))->value.data()[0];
  float rhs = SumAll(Mul(x, SpMM(at, y)))->value.data()[0];
  EXPECT_NEAR(lhs, rhs, 1e-3 * (std::fabs(lhs) + 1.0));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SpmmPropertyTest,
                         ::testing::Range<uint64_t>(1, 9));

// ---------------------------------------------------------------------------
// Proximal-operator properties over random completion parameters.
// ---------------------------------------------------------------------------

class ProximalPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ProximalPropertyTest, ProxC1OutputSatisfiesBothConstraints) {
  Rng rng(GetParam());
  Tensor alpha = RandomNormal({rng.UniformInt(1, 40), kNumCompletionOps},
                              1.0f, rng);
  Tensor projected = ProxC1(alpha);
  for (int64_t i = 0; i < projected.rows(); ++i) {
    int64_t nonzeros = 0;
    for (int64_t j = 0; j < projected.cols(); ++j) {
      float v = projected.at(i, j);
      EXPECT_TRUE(v == 0.0f || v == 1.0f);  // C2 corners
      if (v != 0.0f) ++nonzeros;
    }
    EXPECT_EQ(nonzeros, 1);  // C1: ||row||_0 == 1
  }
}

TEST_P(ProximalPropertyTest, ProxC1PreservesArgmax) {
  Rng rng(GetParam() + 77);
  Tensor alpha = RandomNormal({20, kNumCompletionOps}, 1.0f, rng);
  std::vector<CompletionOpType> before = ArgmaxOps(alpha);
  std::vector<CompletionOpType> after = ArgmaxOps(ProxC1(alpha));
  EXPECT_EQ(before, after);
}

TEST_P(ProximalPropertyTest, ProxC2IsIdempotentAndMonotone) {
  Rng rng(GetParam() + 154);
  Tensor alpha = RandomNormal({12, kNumCompletionOps}, 2.0f, rng);
  Tensor once = alpha;
  ProxC2(once);
  Tensor twice = once;
  ProxC2(twice);
  for (int64_t i = 0; i < alpha.numel(); ++i) {
    EXPECT_EQ(once.data()[i], twice.data()[i]);  // idempotent
    EXPECT_GE(once.data()[i], 0.0f);
    EXPECT_LE(once.data()[i], 1.0f);
    // Projection moves values toward the feasible box, never across it.
    if (alpha.data()[i] >= 0.0f && alpha.data()[i] <= 1.0f) {
      EXPECT_EQ(once.data()[i], alpha.data()[i]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ProximalPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

// ---------------------------------------------------------------------------
// Metric properties over random predictions.
// ---------------------------------------------------------------------------

class MetricPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MetricPropertyTest, F1ScoresAreBoundedAndPerfectAtIdentity) {
  Rng rng(GetParam());
  int64_t n = rng.UniformInt(4, 200);
  int64_t num_classes = rng.UniformInt(2, 6);
  std::vector<int64_t> labels(n), preds(n);
  for (int64_t i = 0; i < n; ++i) {
    labels[i] = rng.UniformInt(0, num_classes - 1);
    preds[i] = rng.UniformInt(0, num_classes - 1);
  }
  double micro = MicroF1(preds, labels);
  double macro = MacroF1(preds, labels, num_classes);
  EXPECT_GE(micro, 0.0);
  EXPECT_LE(micro, 1.0);
  EXPECT_GE(macro, 0.0);
  EXPECT_LE(macro, 1.0);
  EXPECT_DOUBLE_EQ(MicroF1(labels, labels), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1(labels, labels, num_classes), 1.0);
}

TEST_P(MetricPropertyTest, AucInvariantUnderMonotoneTransform) {
  Rng rng(GetParam() + 31);
  int64_t n = rng.UniformInt(6, 100);
  std::vector<float> scores(n);
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Normal(0, 1));
    labels[i] = rng.Bernoulli(0.4) ? 1 : 0;
  }
  labels[0] = 1;  // guarantee both classes
  labels[1] = 0;
  std::vector<float> transformed(n);
  for (int64_t i = 0; i < n; ++i) {
    transformed[i] = 3.0f * std::tanh(scores[i]) + 10.0f;  // monotone
  }
  EXPECT_NEAR(RocAuc(scores, labels), RocAuc(transformed, labels), 1e-9);
}

TEST_P(MetricPropertyTest, AucOfComplementScoresIsOneMinusAuc) {
  Rng rng(GetParam() + 63);
  int64_t n = rng.UniformInt(6, 100);
  std::vector<float> scores(n), negated(n);
  std::vector<int64_t> labels(n);
  for (int64_t i = 0; i < n; ++i) {
    // Distinct scores so the complement identity is exact (no ties).
    scores[i] = static_cast<float>(i) +
                static_cast<float>(rng.Uniform(0.0, 0.5));
    negated[i] = -scores[i];
    labels[i] = rng.Bernoulli(0.5) ? 1 : 0;
  }
  labels[0] = 1;
  labels[1] = 0;
  EXPECT_NEAR(RocAuc(scores, labels) + RocAuc(negated, labels), 1.0, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, MetricPropertyTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace autoac
