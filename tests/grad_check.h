#ifndef AUTOAC_TESTS_GRAD_CHECK_H_
#define AUTOAC_TESTS_GRAD_CHECK_H_

#include <cmath>
#include <functional>
#include <vector>

#include "gtest/gtest.h"
#include "tensor/ops.h"
#include "tensor/variable.h"

namespace autoac::testing {

/// Verifies the analytic gradients of `build` against central finite
/// differences. `build` must construct a scalar loss from the given leaf
/// parameters (rebuilding the graph on every call, because the leaves'
/// values are perturbed between calls).
///
/// Float32 limits accuracy: tolerances are necessarily loose. `eps` around
/// 1e-2 with tolerance 2e-2 on the relative error works for all ops here.
inline void ExpectGradientsMatch(
    const std::vector<VarPtr>& params,
    const std::function<VarPtr()>& build, float eps = 1e-2f,
    float tolerance = 2e-2f) {
  // Analytic gradients.
  ZeroGrads(params);
  VarPtr loss = build();
  Backward(loss);
  std::vector<Tensor> analytic;
  for (const VarPtr& p : params) {
    analytic.push_back(p->grad.numel() > 0 ? p->grad
                                           : Tensor::Zeros(p->value.shape()));
  }

  for (size_t pi = 0; pi < params.size(); ++pi) {
    VarPtr p = params[pi];
    for (int64_t i = 0; i < p->value.numel(); ++i) {
      float original = p->value.data()[i];
      p->value.data()[i] = original + eps;
      float plus = build()->value.data()[0];
      p->value.data()[i] = original - eps;
      float minus = build()->value.data()[0];
      p->value.data()[i] = original;
      float numeric = (plus - minus) / (2.0f * eps);
      float exact = analytic[pi].data()[i];
      float scale = std::max({std::fabs(numeric), std::fabs(exact), 1.0f});
      EXPECT_NEAR(exact / scale, numeric / scale, tolerance)
          << "param " << pi << " element " << i << " analytic=" << exact
          << " numeric=" << numeric;
    }
  }
}

}  // namespace autoac::testing

#endif  // AUTOAC_TESTS_GRAD_CHECK_H_
