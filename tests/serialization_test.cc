#include "data/serialization.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "gtest/gtest.h"

namespace autoac {
namespace {

std::string TempPath(const char* name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

Dataset SmallDataset() {
  DatasetOptions options;
  options.scale = 0.05;
  return MakeDataset("acm", options);
}

TEST(SerializationTest, GraphRoundTripPreservesStructure) {
  Dataset dataset = SmallDataset();
  std::string path = TempPath("graph.aacg");
  ASSERT_TRUE(SaveGraph(*dataset.graph, path).ok());

  StatusOr<HeteroGraphPtr> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const HeteroGraph& a = *dataset.graph;
  const HeteroGraph& b = *loaded.value();

  EXPECT_EQ(a.num_nodes(), b.num_nodes());
  EXPECT_EQ(a.num_edges(), b.num_edges());
  EXPECT_EQ(a.num_node_types(), b.num_node_types());
  EXPECT_EQ(a.num_edge_types(), b.num_edge_types());
  EXPECT_EQ(a.edge_src(), b.edge_src());
  EXPECT_EQ(a.edge_dst(), b.edge_dst());
  EXPECT_EQ(a.edge_type_ids(), b.edge_type_ids());
  EXPECT_EQ(a.target_node_type(), b.target_node_type());
  EXPECT_EQ(a.target_edge_type(), b.target_edge_type());
  EXPECT_EQ(a.num_classes(), b.num_classes());
  EXPECT_EQ(a.global_labels(), b.global_labels());
  for (int64_t t = 0; t < a.num_node_types(); ++t) {
    EXPECT_EQ(a.node_type(t).name, b.node_type(t).name);
    EXPECT_EQ(a.node_type(t).count, b.node_type(t).count);
    ASSERT_EQ(a.node_type(t).attributes.numel(),
              b.node_type(t).attributes.numel());
    for (int64_t i = 0; i < a.node_type(t).attributes.numel(); ++i) {
      EXPECT_EQ(a.node_type(t).attributes.data()[i],
                b.node_type(t).attributes.data()[i]);
    }
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, DatasetRoundTripPreservesSplitAndGroundTruth) {
  Dataset dataset = SmallDataset();
  std::string path = TempPath("dataset.aacd");
  ASSERT_TRUE(SaveDataset(dataset, path).ok());

  StatusOr<Dataset> loaded = LoadDataset(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().message();
  const Dataset& b = loaded.value();
  EXPECT_EQ(dataset.name, b.name);
  EXPECT_EQ(dataset.split.train, b.split.train);
  EXPECT_EQ(dataset.split.val, b.split.val);
  EXPECT_EQ(dataset.split.test, b.split.test);
  EXPECT_EQ(dataset.latent_class, b.latent_class);
  ASSERT_EQ(dataset.regime.size(), b.regime.size());
  for (size_t i = 0; i < dataset.regime.size(); ++i) {
    EXPECT_EQ(dataset.regime[i], b.regime[i]);
  }
  std::remove(path.c_str());
}

TEST(SerializationTest, LoadedGraphIsUsable) {
  Dataset dataset = SmallDataset();
  std::string path = TempPath("usable.aacg");
  ASSERT_TRUE(SaveGraph(*dataset.graph, path).ok());
  StatusOr<HeteroGraphPtr> loaded = LoadGraph(path);
  ASSERT_TRUE(loaded.ok());
  // Adjacency builders must work on the loaded graph (i.e., it was
  // finalized with consistent internal state).
  SpMatPtr adj = loaded.value()->FullAdjacency(AdjNorm::kSym, true);
  adj->forward().CheckInvariants();
  EXPECT_EQ(adj->num_rows(), dataset.graph->num_nodes());
  std::remove(path.c_str());
}

TEST(SerializationTest, MissingFileReportsError) {
  StatusOr<HeteroGraphPtr> loaded = LoadGraph("/nonexistent/nope.aacg");
  EXPECT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("cannot open"),
            std::string::npos);
}

TEST(SerializationTest, WrongMagicReportsError) {
  std::string path = TempPath("bogus.bin");
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a graph file";
  }
  StatusOr<HeteroGraphPtr> loaded = LoadGraph(path);
  EXPECT_FALSE(loaded.ok());
  StatusOr<Dataset> dataset = LoadDataset(path);
  EXPECT_FALSE(dataset.ok());
  std::remove(path.c_str());
}

TEST(SerializationTest, TruncatedFileReportsError) {
  Dataset dataset = SmallDataset();
  std::string full = TempPath("full.aacg");
  ASSERT_TRUE(SaveGraph(*dataset.graph, full).ok());
  // Copy the first 64 bytes only.
  std::string truncated = TempPath("truncated.aacg");
  {
    std::ifstream in(full, std::ios::binary);
    char buffer[64];
    in.read(buffer, sizeof(buffer));
    std::ofstream out(truncated, std::ios::binary);
    out.write(buffer, in.gcount());
  }
  StatusOr<HeteroGraphPtr> loaded = LoadGraph(truncated);
  EXPECT_FALSE(loaded.ok());
  std::remove(full.c_str());
  std::remove(truncated.c_str());
}

TEST(SerializationTest, Crc32MatchesReferenceValue) {
  // IEEE 802.3 check value for the standard test vector.
  EXPECT_EQ(io::Crc32("123456789", 9), 0xCBF43926u);
  // Chunked computation must match one-shot.
  uint32_t chunked = io::Crc32("12345", 5);
  chunked = io::Crc32("6789", 4, chunked);
  EXPECT_EQ(chunked, 0xCBF43926u);
  EXPECT_EQ(io::Crc32("", 0), 0u);
}

TEST(SerializationTest, UnsupportedVersionReportsError) {
  Dataset dataset = SmallDataset();
  std::string path = TempPath("oldversion.aacg");
  ASSERT_TRUE(SaveGraph(*dataset.graph, path).ok());
  {
    // Patch the version field (bytes 4..7, little-endian u32) to 1. The
    // CRC covers the payload only, so the rejection must come from the
    // version check, not the checksum.
    std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
    file.seekp(4);
    char v1[4] = {1, 0, 0, 0};
    file.write(v1, 4);
  }
  StatusOr<HeteroGraphPtr> loaded = LoadGraph(path);
  ASSERT_FALSE(loaded.ok());
  EXPECT_NE(loaded.status().message().find("unsupported container version"),
            std::string::npos);
  std::remove(path.c_str());
}

TEST(SerializationTest, ByteFlipFuzzAlwaysFailsCleanly) {
  Dataset dataset = SmallDataset();
  std::string clean = TempPath("fuzz_clean.aacg");
  ASSERT_TRUE(SaveGraph(*dataset.graph, clean).ok());
  std::string bytes;
  {
    std::ifstream in(clean, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    bytes = buf.str();
  }
  ASSERT_GT(bytes.size(), 16u);

  // Flip one byte at a sweep of positions covering the magic, version,
  // size, CRC fields and the payload. Every mutant must be rejected with a
  // Status — never parsed, never a crash.
  std::string mutant_path = TempPath("fuzz_mutant.aacg");
  size_t stride = bytes.size() / 97 + 1;
  size_t header_end = 20;  // 4 magic + 4 version + 8 size + 4 crc
  for (size_t pos = 0; pos < bytes.size();
       pos += (pos < header_end ? 1 : stride)) {
    std::string mutant = bytes;
    mutant[pos] ^= 0x40;
    {
      std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
      out.write(mutant.data(), static_cast<std::streamsize>(mutant.size()));
    }
    StatusOr<HeteroGraphPtr> loaded = LoadGraph(mutant_path);
    EXPECT_FALSE(loaded.ok()) << "byte flip at offset " << pos
                              << " was not detected";
    if (pos >= header_end) {
      // Payload flips are specifically the CRC's job.
      EXPECT_NE(loaded.status().message().find("checksum mismatch"),
                std::string::npos)
          << "offset " << pos << ": " << loaded.status().message();
    }
  }

  // Truncation at a sweep of lengths must also fail cleanly.
  for (size_t len : {size_t{0}, size_t{3}, size_t{11}, size_t{19},
                     bytes.size() / 2, bytes.size() - 1}) {
    std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(len));
    out.close();
    EXPECT_FALSE(LoadGraph(mutant_path).ok())
        << "truncation to " << len << " bytes was not detected";
  }

  // Trailing garbage is corruption too.
  {
    std::ofstream out(mutant_path, std::ios::binary | std::ios::trunc);
    out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
    out << "extra";
  }
  StatusOr<HeteroGraphPtr> trailing = LoadGraph(mutant_path);
  ASSERT_FALSE(trailing.ok());
  EXPECT_NE(trailing.status().message().find("trailing"), std::string::npos);

  std::remove(clean.c_str());
  std::remove(mutant_path.c_str());
}

TEST(StatusTest, BasicSemantics) {
  EXPECT_TRUE(Status::Ok().ok());
  Status err = Status::Error("boom");
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.message(), "boom");
  StatusOr<int> value(7);
  EXPECT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 7);
  StatusOr<int> failed(Status::Error("nope"));
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(failed.status().message(), "nope");
}

}  // namespace
}  // namespace autoac
