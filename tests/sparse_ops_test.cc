#include "graph/sparse_ops.h"

#include <cmath>

#include "grad_check.h"
#include "gtest/gtest.h"
#include "tensor/init.h"
#include "util/rng.h"

namespace autoac {
namespace {

using testing::ExpectGradientsMatch;

SpMatPtr RandomSparse(int64_t m, int64_t n, int64_t nnz, Rng& rng) {
  std::vector<int64_t> rows, cols;
  std::vector<float> vals;
  for (int64_t e = 0; e < nnz; ++e) {
    rows.push_back(rng.UniformInt(0, m - 1));
    cols.push_back(rng.UniformInt(0, n - 1));
    vals.push_back(static_cast<float>(rng.Uniform(0.2, 1.0)));
  }
  return MakeSparse(Csr::FromCoo(m, n, rows, cols, vals));
}

TEST(SpMMTest, MatchesDenseMatMul) {
  Rng rng(1);
  SpMatPtr a = RandomSparse(4, 5, 9, rng);
  Tensor x_values = RandomNormal({5, 3}, 1.0f, rng);

  // Dense reference.
  const Csr& csr = a->forward();
  Tensor expected(4, 3);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t k = csr.indptr[i]; k < csr.indptr[i + 1]; ++k) {
      for (int64_t j = 0; j < 3; ++j) {
        expected.at(i, j) += csr.values[k] * x_values.at(csr.indices[k], j);
      }
    }
  }
  VarPtr x = MakeConst(x_values);
  VarPtr y = SpMM(a, x);
  for (int64_t i = 0; i < 4; ++i) {
    for (int64_t j = 0; j < 3; ++j) {
      EXPECT_NEAR(y->value.at(i, j), expected.at(i, j), 1e-5);
    }
  }
}

TEST(SpMMTest, GradCheck) {
  Rng rng(2);
  SpMatPtr a = RandomSparse(4, 4, 8, rng);
  VarPtr x = MakeParam(RandomNormal({4, 3}, 0.8f, rng));
  ExpectGradientsMatch({x}, [&] { return SumSquares(SpMM(a, x)); });
}

TEST(EdgeSoftmaxAggregateTest, UniformLogitsAverageNeighbors) {
  // Node 0 has two incoming neighbours (1 and 2) with equal logits: the
  // output must be their mean.
  SpMatPtr a = MakeSparse(Csr::FromCoo(3, 3, {0, 0}, {1, 2}));
  Tensor h_values = Tensor::FromVector({3, 2}, {0, 0, 2, 4, 4, 8});
  VarPtr logits = MakeConst(Tensor::Zeros({2}));
  VarPtr h = MakeConst(h_values);
  VarPtr out = EdgeSoftmaxAggregate(a, logits, h);
  EXPECT_NEAR(out->value.at(0, 0), 3.0f, 1e-5);
  EXPECT_NEAR(out->value.at(0, 1), 6.0f, 1e-5);
  // Rows without incoming edges stay zero.
  EXPECT_EQ(out->value.at(1, 0), 0.0f);
  EXPECT_EQ(out->value.at(2, 1), 0.0f);
}

TEST(EdgeSoftmaxAggregateTest, LargeLogitSelectsNeighbor) {
  SpMatPtr a = MakeSparse(Csr::FromCoo(2, 3, {0, 0}, {1, 2}));
  VarPtr logits = MakeConst(Tensor::FromVector({2}, {10.0f, -10.0f}));
  VarPtr h = MakeConst(Tensor::FromVector({3, 1}, {0, 5, 9}));
  VarPtr out = EdgeSoftmaxAggregate(a, logits, h);
  EXPECT_NEAR(out->value.at(0, 0), 5.0f, 1e-3);
}

TEST(EdgeSoftmaxAggregateTest, GradCheckBothInputs) {
  Rng rng(3);
  SpMatPtr a = RandomSparse(4, 4, 10, rng);
  VarPtr logits = MakeParam(RandomNormal({a->nnz()}, 0.5f, rng));
  VarPtr h = MakeParam(RandomNormal({4, 3}, 0.8f, rng));
  ExpectGradientsMatch({logits, h}, [&] {
    return SumSquares(EdgeSoftmaxAggregate(a, logits, h));
  });
}

TEST(GatherEdgeTest, SrcAndDstBroadcasts) {
  // Edges: (dst=0, src=1), (dst=1, src=0), (dst=1, src=2).
  SpMatPtr a = MakeSparse(Csr::FromCoo(2, 3, {0, 1, 1}, {1, 0, 2}));
  VarPtr src_values = MakeConst(Tensor::FromVector({3}, {10, 20, 30}));
  VarPtr dst_values = MakeConst(Tensor::FromVector({2}, {1, 2}));
  VarPtr es = GatherEdgeSrc(a, src_values);
  VarPtr ed = GatherEdgeDst(a, dst_values);
  const Csr& csr = a->forward();
  for (int64_t i = 0; i < csr.num_rows; ++i) {
    for (int64_t k = csr.indptr[i]; k < csr.indptr[i + 1]; ++k) {
      EXPECT_EQ(es->value.at(k), src_values->value.at(csr.indices[k]));
      EXPECT_EQ(ed->value.at(k), dst_values->value.at(i));
    }
  }
}

TEST(GatherEdgeTest, GradChecks) {
  Rng rng(4);
  SpMatPtr a = RandomSparse(4, 4, 8, rng);
  VarPtr xs = MakeParam(RandomNormal({4}, 0.8f, rng));
  ExpectGradientsMatch({xs},
                       [&] { return SumSquares(GatherEdgeSrc(a, xs)); });
  ExpectGradientsMatch({xs},
                       [&] { return SumSquares(GatherEdgeDst(a, xs)); });
}

TEST(Gather1dTest, ValuesAndGradient) {
  Rng rng(5);
  VarPtr x = MakeParam(Tensor::FromVector({3}, {1, 2, 3}));
  VarPtr out = Gather1d(x, {2, 2, 0});
  EXPECT_EQ(out->value.at(0), 3.0f);
  EXPECT_EQ(out->value.at(1), 3.0f);
  EXPECT_EQ(out->value.at(2), 1.0f);
  ExpectGradientsMatch({x},
                       [&] { return SumSquares(Gather1d(x, {2, 2, 0})); });
}

TEST(PairDotTest, ComputesDotProducts) {
  VarPtr h = MakeConst(Tensor::FromVector({3, 2}, {1, 0, 0, 1, 2, 3}));
  VarPtr scores = PairDot(h, {0, 1}, {2, 2});
  EXPECT_EQ(scores->value.at(0), 2.0f);   // (1,0).(2,3)
  EXPECT_EQ(scores->value.at(1), 3.0f);   // (0,1).(2,3)
}

TEST(PairDotTest, GradCheckIncludingSharedEndpoints) {
  Rng rng(6);
  VarPtr h = MakeParam(RandomNormal({4, 3}, 0.8f, rng));
  ExpectGradientsMatch({h}, [&] {
    return SumSquares(PairDot(h, {0, 1, 0}, {2, 3, 0}));
  });
}

}  // namespace
}  // namespace autoac
