#include "util/telemetry.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/parallel.h"
#include "util/profiler.h"

namespace autoac {
namespace {

std::string TempPath(const std::string& name) {
  return std::string(::testing::TempDir()) + "/" + name;
}

std::vector<std::string> ReadLines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

// Minimal parser for the flat JSON objects the sink writes (string /
// number / bool / null values, no nesting) — the serialization-style
// round-trip half of the tests. Returns key -> raw token; string values
// are unescaped.
std::map<std::string, std::string> ParseFlatJson(const std::string& line) {
  std::map<std::string, std::string> out;
  EXPECT_GE(line.size(), 2u);
  EXPECT_EQ(line.front(), '{');
  EXPECT_EQ(line.back(), '}');
  size_t i = 1;
  auto parse_string = [&]() {
    EXPECT_EQ(line[i], '"');
    ++i;
    std::string s;
    while (i < line.size() && line[i] != '"') {
      if (line[i] == '\\') {
        ++i;
        switch (line[i]) {
          case 'n': s += '\n'; break;
          case 'r': s += '\r'; break;
          case 't': s += '\t'; break;
          case 'u': {
            int code = std::stoi(line.substr(i + 1, 4), nullptr, 16);
            s += static_cast<char>(code);
            i += 4;
            break;
          }
          default: s += line[i];
        }
      } else {
        s += line[i];
      }
      ++i;
    }
    EXPECT_EQ(line[i], '"');
    ++i;
    return s;
  };
  while (i < line.size() - 1) {
    if (line[i] == ',') ++i;
    std::string key = parse_string();
    EXPECT_EQ(line[i], ':');
    ++i;
    std::string value;
    if (line[i] == '"') {
      value = parse_string();
    } else {
      while (i < line.size() - 1 && line[i] != ',') value += line[i++];
    }
    out[key] = value;
  }
  return out;
}

class TelemetryTest : public ::testing::Test {
 protected:
  void TearDown() override {
    Telemetry::Get().Disable();
    Profiler::Get().Disable();
    Profiler::Get().Reset();
  }
};

TEST_F(TelemetryTest, CounterSemantics) {
  Telemetry& t = Telemetry::Get();
  Counter& c = t.GetCounter("test.counter_semantics");
  EXPECT_EQ(c.value(), 0);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.value(), 42);
  // Same name resolves to the same counter.
  EXPECT_EQ(&t.GetCounter("test.counter_semantics"), &c);
  EXPECT_EQ(c.name(), "test.counter_semantics");
}

TEST_F(TelemetryTest, GaugeSemantics) {
  Telemetry& t = Telemetry::Get();
  Gauge& g = t.GetGauge("test.gauge_semantics");
  EXPECT_EQ(g.value(), 0.0);
  g.Set(2.5);
  g.Set(-1.25);  // last write wins
  EXPECT_EQ(g.value(), -1.25);
  EXPECT_EQ(&t.GetGauge("test.gauge_semantics"), &g);
}

TEST_F(TelemetryTest, JsonlRoundTrip) {
  const std::string path = TempPath("telemetry_roundtrip.jsonl");
  ASSERT_TRUE(Telemetry::Get().Enable(path));
  Telemetry::Get().Emit(MetricRecord("epoch")
                            .Add("loss", 0.5)
                            .Add("step", int64_t{7})
                            .Add("converged", false)
                            .Add("note", "quote\" slash\\ tab\t nl\n"));
  Telemetry::Get().Emit(
      MetricRecord("edge").Add("nan_value", std::nan("")).Add("big", 1e300));
  Telemetry::Get().Disable();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 2u);

  std::map<std::string, std::string> first = ParseFlatJson(lines[0]);
  EXPECT_EQ(first["type"], "epoch");
  EXPECT_DOUBLE_EQ(std::stod(first["loss"]), 0.5);
  EXPECT_EQ(first["step"], "7");
  EXPECT_EQ(first["converged"], "false");
  EXPECT_EQ(first["note"], "quote\" slash\\ tab\t nl\n");
  // Every record carries the relative timestamp.
  EXPECT_GE(std::stod(first["t"]), 0.0);

  std::map<std::string, std::string> second = ParseFlatJson(lines[1]);
  // JSON has no NaN; non-finite doubles serialize as null.
  EXPECT_EQ(second["nan_value"], "null");
  EXPECT_DOUBLE_EQ(std::stod(second["big"]), 1e300);
}

TEST_F(TelemetryTest, EmitFlushesEachRecordToDisk) {
  const std::string path = TempPath("telemetry_flush.jsonl");
  ASSERT_TRUE(Telemetry::Get().Enable(path));
  Telemetry::Get().Emit(MetricRecord("durable").Add("epoch", int64_t{3}));
  // The sink is still open: the record must already be on disk, so a crash
  // right after Emit cannot lose it to a stdio buffer.
  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), 1u);
  std::map<std::string, std::string> record = ParseFlatJson(lines[0]);
  EXPECT_EQ(record["type"], "durable");
  EXPECT_EQ(record["epoch"], "3");
  Telemetry::Get().Disable();
}

TEST_F(TelemetryTest, DisabledSinkIsInert) {
  ASSERT_FALSE(Telemetry::Enabled());
  // Emit with no sink: must be a no-op, not a crash.
  Telemetry::Get().Emit(MetricRecord("dropped").Add("x", 1.0));
  Telemetry::Get().EmitRegistrySnapshot();

  // A profiler scope while disabled records nothing.
  ProfileEntry* entry =
      Profiler::Get().Register("test.disabled_scope");
  {
    AUTOAC_PROFILE_SCOPE("test.disabled_scope");
  }
  EXPECT_EQ(entry->calls.load(), 0);
  EXPECT_EQ(entry->total_ns.load(), 0);
}

TEST_F(TelemetryTest, ProfileScopeAccumulates) {
  Profiler::Get().Enable();
  ProfileEntry* entry = Profiler::Get().Register("test.timed_scope");
  for (int i = 0; i < 3; ++i) {
    AUTOAC_PROFILE_SCOPE("test.timed_scope");
  }
  EXPECT_EQ(entry->calls.load(), 3);
  EXPECT_GE(entry->total_ns.load(), 0);
  // Same name registers to the same entry.
  EXPECT_EQ(Profiler::Get().Register("test.timed_scope"), entry);

  std::string table = Profiler::Get().SummaryTable();
  EXPECT_NE(table.find("test.timed_scope"), std::string::npos);

  Profiler::Get().Reset();
  EXPECT_EQ(entry->calls.load(), 0);
}

TEST_F(TelemetryTest, ProfilerEmitsJsonl) {
  const std::string path = TempPath("telemetry_profile.jsonl");
  ASSERT_TRUE(Telemetry::Get().Enable(path));
  Profiler::Get().Enable();
  {
    AUTOAC_PROFILE_SCOPE("test.profile_jsonl");
  }
  Profiler::Get().EmitJsonl(Telemetry::Get());
  Telemetry::Get().Disable();

  bool found = false;
  for (const std::string& line : ReadLines(path)) {
    std::map<std::string, std::string> record = ParseFlatJson(line);
    if (record["type"] == "profile" &&
        record["scope"] == "test.profile_jsonl") {
      found = true;
      EXPECT_EQ(record["calls"], "1");
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TelemetryTest, RegistrySnapshotEmitsCountersAndGauges) {
  const std::string path = TempPath("telemetry_snapshot.jsonl");
  ASSERT_TRUE(Telemetry::Get().Enable(path));
  Telemetry::Get().GetCounter("test.snapshot_counter").Increment(5);
  Telemetry::Get().GetGauge("test.snapshot_gauge").Set(3.5);
  Telemetry::Get().EmitRegistrySnapshot();
  Telemetry::Get().Disable();

  bool counter_seen = false;
  bool gauge_seen = false;
  for (const std::string& line : ReadLines(path)) {
    std::map<std::string, std::string> record = ParseFlatJson(line);
    if (record["type"] == "counter" &&
        record["name"] == "test.snapshot_counter") {
      counter_seen = true;
      EXPECT_EQ(record["value"], "5");
    }
    if (record["type"] == "gauge" &&
        record["name"] == "test.snapshot_gauge") {
      gauge_seen = true;
      EXPECT_DOUBLE_EQ(std::stod(record["value"]), 3.5);
    }
  }
  EXPECT_TRUE(counter_seen);
  EXPECT_TRUE(gauge_seen);
}

TEST_F(TelemetryTest, CounterIsExactUnderParallelFor) {
  Counter& c = Telemetry::Get().GetCounter("test.parallel_counter");
  constexpr int64_t kN = 200000;
  // One increment per index, issued from pool workers in parallel chunks.
  ParallelFor(0, kN, 1024, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) c.Increment();
  });
  EXPECT_EQ(c.value(), kN);
}

TEST_F(TelemetryTest, EmitIsThreadSafeUnderParallelFor) {
  const std::string path = TempPath("telemetry_parallel_emit.jsonl");
  ASSERT_TRUE(Telemetry::Get().Enable(path));
  constexpr int64_t kChunks = 64;
  ParallelFor(0, kChunks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      Telemetry::Get().Emit(
          MetricRecord("parallel_emit").Add("chunk", i));
    }
  });
  Telemetry::Get().Disable();

  std::vector<std::string> lines = ReadLines(path);
  ASSERT_EQ(lines.size(), static_cast<size_t>(kChunks));
  std::vector<bool> seen(kChunks, false);
  for (const std::string& line : lines) {
    // No torn/interleaved writes: every line parses on its own.
    std::map<std::string, std::string> record = ParseFlatJson(line);
    EXPECT_EQ(record["type"], "parallel_emit");
    seen[std::stoll(record["chunk"])] = true;
  }
  for (int64_t i = 0; i < kChunks; ++i) EXPECT_TRUE(seen[i]);
}

TEST_F(TelemetryTest, ProfileScopeIsThreadSafeUnderParallelFor) {
  Profiler::Get().Enable();
  ProfileEntry* entry = Profiler::Get().Register("test.parallel_scope");
  constexpr int64_t kN = 4096;
  ParallelFor(0, kN, 64, [&](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      AUTOAC_PROFILE_SCOPE("test.parallel_scope");
    }
  });
  EXPECT_EQ(entry->calls.load(), kN);
}

TEST_F(TelemetryTest, EnableFailsOnUnwritablePath) {
  EXPECT_FALSE(
      Telemetry::Get().Enable("/nonexistent-dir-xyz/metrics.jsonl"));
  EXPECT_FALSE(Telemetry::Enabled());
}

}  // namespace
}  // namespace autoac
