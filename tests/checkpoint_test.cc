#include "autoac/checkpoint.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "autoac/evaluator.h"
#include "autoac/search.h"
#include "autoac/trainer.h"
#include "gtest/gtest.h"
#include "util/check.h"
#include "util/shutdown.h"

namespace autoac {
namespace {

namespace fs = std::filesystem;

// Shared tiny environment (context building dominates test time).
struct CheckpointEnvironment {
  static CheckpointEnvironment& Get() {
    static CheckpointEnvironment* env = new CheckpointEnvironment();
    return *env;
  }
  Dataset dataset;
  TaskData task;
  ModelContext ctx;

 private:
  CheckpointEnvironment() {
    DatasetOptions options;
    options.scale = 0.04;
    dataset = MakeDataset("acm", options);
    task = MakeNodeTask(dataset);
    ctx = BuildModelContext(dataset.graph);
  }
};

ExperimentConfig TinyConfig() {
  ExperimentConfig config;
  config.model_name = "GCN";  // cheapest host model
  config.hidden_dim = 16;
  config.train_epochs = 12;
  config.patience = 12;
  config.search_epochs = 6;
  config.alpha_warmup_epochs = 2;
  config.num_clusters = 4;
  config.seed = 3;
  return config;
}

int64_t NumMissing(const HeteroGraph& graph) {
  int64_t missing = 0;
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (graph.node_type(t).attributes.numel() == 0) {
      missing += graph.node_type(t).count;
    }
  }
  return missing;
}

// Empty checkpoint directory unique to one test.
std::string FreshDir(const char* name) {
  std::string dir = std::string(::testing::TempDir()) + "/" + name;
  fs::remove_all(dir);
  return dir;
}

CheckpointOptions Opts(const std::string& dir, bool resume,
                       int64_t interrupt_after = -1) {
  CheckpointOptions o;
  o.dir = dir;
  o.every = 2;
  o.keep = 2;
  o.resume = resume;
  o.interrupt_after_epochs = interrupt_after;
  return o;
}

std::unique_ptr<CheckpointManager> MustOpen(const CheckpointOptions& options,
                                            uint64_t fingerprint) {
  StatusOr<std::unique_ptr<CheckpointManager>> opened =
      CheckpointManager::Open(options, fingerprint);
  AUTOAC_CHECK(opened.ok()) << opened.status().message();
  return opened.TakeValue();
}

std::vector<std::string> CheckpointFiles(const std::string& dir) {
  std::vector<std::string> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.substr(name.size() - 5) == ".aacc") {
      files.push_back(entry.path().string());
    }
  }
  std::sort(files.begin(), files.end());
  return files;
}

TEST(DigestTest, Fnv1aMatchesReferenceValues) {
  EXPECT_EQ(Fnv1a("", 0), kFnvOffsetBasis);
  // Published FNV-1a 64-bit test vectors.
  EXPECT_EQ(Fnv1a("a", 1), 0xaf63dc4c8601ec8cull);
  EXPECT_EQ(Fnv1a("foobar", 6), 0x85944171f73967e8ull);
  // Chaining matches one-shot.
  uint64_t chained = Fnv1a("foo", 3);
  chained = Fnv1a("bar", 3, chained);
  EXPECT_EQ(chained, Fnv1a("foobar", 6));
}

TEST(DigestTest, DigestTensorSeesShapeAndValues) {
  Tensor a = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 6});
  Tensor b = Tensor::FromVector({3, 2}, {1, 2, 3, 4, 5, 6});
  Tensor c = Tensor::FromVector({2, 3}, {1, 2, 3, 4, 5, 7});
  uint64_t da = DigestTensor(kFnvOffsetBasis, a);
  EXPECT_NE(da, DigestTensor(kFnvOffsetBasis, b));  // same data, new shape
  EXPECT_NE(da, DigestTensor(kFnvOffsetBasis, c));  // same shape, new data
  EXPECT_EQ(da, DigestTensor(kFnvOffsetBasis, a));
}

TEST(CheckpointCodecTest, SearchPartialRoundTrip) {
  SearchPartialState state;
  state.epoch = 7;
  state.alpha = Tensor::FromVector({2, 2}, {0.1f, 0.9f, 0.4f, 0.6f});
  state.w_params = {Tensor::Full({3}, 1.5f), Tensor::FromVector({2}, {2, 3})};
  state.w_grad_alloc = {0, 1};
  state.alpha_opt.t = 5;
  state.alpha_opt.m = {Tensor::Full({2, 2}, 0.25f)};
  state.alpha_opt.v = {Tensor::Full({2, 2}, 0.5f)};
  state.w_opt.t = 9;
  state.w_opt.m = {Tensor(), Tensor::Full({2}, 1.0f)};  // untouched + touched
  state.w_opt.v = {Tensor(), Tensor::Full({2}, 2.0f)};
  state.rng_state = "12345 67890 42";
  state.cluster_of = {0, 1, 1, 0};
  state.best_track_val = 0.75;
  state.tracked_ops = {0, 2, 1, 3};
  state.gmoc_trace = {0.5f, 0.25f};
  state.elapsed_seconds = 12.5;

  SearchPartialState loaded;
  ASSERT_TRUE(
      DeserializeSearchPartial(SerializeSearchPartial(state), &loaded));
  EXPECT_EQ(loaded.epoch, 7);
  EXPECT_EQ(DigestTensor(kFnvOffsetBasis, loaded.alpha),
            DigestTensor(kFnvOffsetBasis, state.alpha));
  ASSERT_EQ(loaded.w_params.size(), 2u);
  EXPECT_EQ(loaded.w_params[1].at(1), 3.0f);
  EXPECT_EQ(loaded.w_grad_alloc, state.w_grad_alloc);
  EXPECT_EQ(loaded.alpha_opt.t, 5);
  EXPECT_EQ(loaded.w_opt.t, 9);
  ASSERT_EQ(loaded.w_opt.m.size(), 2u);
  EXPECT_EQ(loaded.w_opt.m[0].numel(), 0);  // emptiness preserved
  EXPECT_EQ(loaded.w_opt.m[1].at(0), 1.0f);
  EXPECT_EQ(loaded.rng_state, state.rng_state);
  EXPECT_EQ(loaded.cluster_of, state.cluster_of);
  EXPECT_EQ(loaded.best_track_val, 0.75);
  EXPECT_EQ(loaded.tracked_ops, state.tracked_ops);
  ASSERT_EQ(loaded.gmoc_trace.size(), 2u);
  EXPECT_EQ(loaded.gmoc_trace[1], 0.25f);
  EXPECT_EQ(loaded.elapsed_seconds, 12.5);

  SearchPartialState garbage;
  EXPECT_FALSE(DeserializeSearchPartial("not a payload", &garbage));
}

TEST(CheckpointCodecTest, TrainerPartialRoundTrip) {
  TrainerPartialState state;
  state.epoch = 11;
  state.assignment_digest = 0xdeadbeefcafef00dull;
  state.params = {Tensor::FromVector({2}, {1.0f, -1.0f})};
  state.params_grad_alloc = {1};
  state.opt.t = 11;
  state.opt.m = {Tensor::Full({2}, 0.125f)};
  state.opt.v = {Tensor::Full({2}, 0.0625f)};
  state.rng_state = "999 111";
  state.best_val = 0.875;
  state.since_best = 3;
  state.val_history = {0.5, 0.75, 0.875};
  state.test_scores[0] = 0.9;
  state.test_scores[4] = 0.1;
  state.epochs_run = 10;
  state.elapsed_seconds = 4.25;

  TrainerPartialState loaded;
  ASSERT_TRUE(
      DeserializeTrainerPartial(SerializeTrainerPartial(state), &loaded));
  EXPECT_EQ(loaded.epoch, 11);
  EXPECT_EQ(loaded.assignment_digest, state.assignment_digest);
  EXPECT_EQ(loaded.params[0].at(1), -1.0f);
  EXPECT_EQ(loaded.params_grad_alloc, state.params_grad_alloc);
  EXPECT_EQ(loaded.opt.t, 11);
  EXPECT_EQ(loaded.rng_state, "999 111");
  EXPECT_EQ(loaded.best_val, 0.875);
  EXPECT_EQ(loaded.since_best, 3);
  EXPECT_EQ(loaded.val_history, state.val_history);
  EXPECT_EQ(loaded.test_scores[0], 0.9);
  EXPECT_EQ(loaded.test_scores[4], 0.1);
  EXPECT_EQ(loaded.epochs_run, 10);
  EXPECT_EQ(loaded.elapsed_seconds, 4.25);

  TrainerPartialState garbage;
  EXPECT_FALSE(DeserializeTrainerPartial("", &garbage));
}

TEST(CheckpointCodecTest, SearchAndRunResultRoundTrip) {
  SearchResult search;
  search.op_per_missing = {CompletionOpType::kMean, CompletionOpType::kGcn};
  search.cluster_of = {1, 0};
  search.final_alpha = Tensor::FromVector({1, 2}, {0.25f, 0.75f});
  search.search_seconds = 2.5;
  search.gmoc_trace = {0.5f};
  search.runner_up_ops = {{CompletionOpType::kOneHot,
                           CompletionOpType::kPpnp}};
  SearchResult search_loaded;
  ASSERT_TRUE(DeserializeSearchResult(SerializeSearchResult(search),
                                      &search_loaded));
  EXPECT_EQ(search_loaded.op_per_missing, search.op_per_missing);
  EXPECT_EQ(search_loaded.cluster_of, search.cluster_of);
  EXPECT_EQ(search_loaded.final_alpha.at(0, 1), 0.75f);
  EXPECT_EQ(search_loaded.search_seconds, 2.5);
  ASSERT_EQ(search_loaded.runner_up_ops.size(), 1u);
  EXPECT_EQ(search_loaded.runner_up_ops[0], search.runner_up_ops[0]);

  RunResult run;
  run.test.primary = 0.9;
  run.test.micro_f1 = 0.91;
  run.val_primary = 0.88;
  run.val_smoothed = 0.87;
  run.times.train_seconds = 3.5;
  run.epochs_run = 12;
  run.state_digest = 0x1234abcdull;
  run.searched_ops = {CompletionOpType::kOneHot};
  run.gmoc_trace = {0.125f};
  RunResult run_loaded;
  ASSERT_TRUE(DeserializeRunResult(SerializeRunResult(run), &run_loaded));
  EXPECT_EQ(run_loaded.test.primary, 0.9);
  EXPECT_EQ(run_loaded.test.micro_f1, 0.91);
  EXPECT_EQ(run_loaded.val_primary, 0.88);
  EXPECT_EQ(run_loaded.times.train_seconds, 3.5);
  EXPECT_EQ(run_loaded.epochs_run, 12);
  EXPECT_EQ(run_loaded.state_digest, 0x1234abcdull);
  EXPECT_EQ(run_loaded.searched_ops, run.searched_ops);
}

TEST(CheckpointManagerTest, JournalReplayAcrossReopen) {
  std::string dir = FreshDir("ckpt_journal");
  {
    auto mgr = MustOpen(Opts(dir, /*resume=*/false), /*fingerprint=*/7);
    CheckpointManager::UnitHandle unit = mgr->BeginUnit("search");
    EXPECT_EQ(unit.ordinal, 0);
    EXPECT_FALSE(unit.completed);
    EXPECT_FALSE(unit.has_partial);
    mgr->CompleteUnit(unit, "search-result");
    CheckpointManager::UnitHandle train = mgr->BeginUnit("train");
    EXPECT_EQ(train.ordinal, 1);
    mgr->SavePartial(train, "train-midpoint");
  }
  {
    auto mgr = MustOpen(Opts(dir, /*resume=*/true), /*fingerprint=*/7);
    CheckpointManager::UnitHandle unit = mgr->BeginUnit("search");
    EXPECT_TRUE(unit.completed);
    EXPECT_EQ(unit.payload, "search-result");
    CheckpointManager::UnitHandle train = mgr->BeginUnit("train");
    EXPECT_FALSE(train.completed);
    ASSERT_TRUE(train.has_partial);
    EXPECT_EQ(train.payload, "train-midpoint");
    // Completing the resumed unit supersedes its partial state.
    mgr->CompleteUnit(train, "train-result");
  }
  {
    auto mgr = MustOpen(Opts(dir, /*resume=*/true), /*fingerprint=*/7);
    mgr->BeginUnit("search");
    CheckpointManager::UnitHandle train = mgr->BeginUnit("train");
    EXPECT_TRUE(train.completed);
    EXPECT_FALSE(train.has_partial);
    EXPECT_EQ(train.payload, "train-result");
  }
}

TEST(CheckpointManagerTest, MultiMegabytePartialPayloadRoundTrips) {
  // Real partial states carry every model weight; at paper scale that is
  // well past any "reasonable string" sanity cap. Regression test for a
  // 1 MiB limit in ReadString that rejected valid checkpoints as corrupt.
  std::string dir = FreshDir("ckpt_large_payload");
  std::string payload(3u << 20, 'x');
  payload[1u << 20] = 'y';
  {
    auto mgr = MustOpen(Opts(dir, /*resume=*/false), /*fingerprint=*/7);
    mgr->SavePartial(mgr->BeginUnit("train"), payload);
  }
  auto mgr = MustOpen(Opts(dir, /*resume=*/true), /*fingerprint=*/7);
  CheckpointManager::UnitHandle train = mgr->BeginUnit("train");
  ASSERT_TRUE(train.has_partial);
  EXPECT_EQ(train.payload, payload);
}

TEST(CheckpointManagerTest, RetentionBoundsFileCount) {
  std::string dir = FreshDir("ckpt_retention");
  auto mgr = MustOpen(Opts(dir, /*resume=*/false), 7);
  CheckpointManager::UnitHandle unit = mgr->BeginUnit("train");
  for (int i = 0; i < 5; ++i) {
    mgr->SavePartial(unit, "state-" + std::to_string(i));
  }
  EXPECT_EQ(mgr->saves(), 5);
  EXPECT_EQ(CheckpointFiles(dir).size(), 2u);  // keep = 2
}

TEST(CheckpointManagerTest, CorruptNewestFallsBackToOlderCheckpoint) {
  std::string dir = FreshDir("ckpt_corrupt");
  {
    auto mgr = MustOpen(Opts(dir, /*resume=*/false), 7);
    CheckpointManager::UnitHandle unit = mgr->BeginUnit("train");
    mgr->SavePartial(unit, "older-state");
    mgr->SavePartial(unit, "newer-state");
  }
  std::vector<std::string> files = CheckpointFiles(dir);
  ASSERT_EQ(files.size(), 2u);
  {
    // Flip a payload byte in the newest file; its CRC no longer matches.
    std::fstream f(files.back(),
                   std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(40);
    char b = 0;
    f.seekg(40);
    f.get(b);
    b = static_cast<char>(b ^ 0x20);
    f.seekp(40);
    f.put(b);
  }
  auto mgr = MustOpen(Opts(dir, /*resume=*/true), 7);
  CheckpointManager::UnitHandle unit = mgr->BeginUnit("train");
  ASSERT_TRUE(unit.has_partial);
  EXPECT_EQ(unit.payload, "older-state");
}

TEST(CheckpointManagerTest, StrayTempFilesAreNotCheckpoints) {
  std::string dir = FreshDir("ckpt_stray_tmp");
  fs::create_directories(dir);
  {
    // What a crash mid-atomic-write leaves behind: a temp file only.
    std::ofstream out(dir + "/ckpt-000000.aacc.tmp", std::ios::binary);
    out << "torn half-written checkpoint";
  }
  StatusOr<std::unique_ptr<CheckpointManager>> resumed =
      CheckpointManager::Open(Opts(dir, /*resume=*/true), 7);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("no valid checkpoint"),
            std::string::npos);
  // A fresh (non-resume) run in the same directory is fine.
  EXPECT_TRUE(CheckpointManager::Open(Opts(dir, /*resume=*/false), 7).ok());
}

TEST(CheckpointManagerTest, FingerprintMismatchRefusesResume) {
  std::string dir = FreshDir("ckpt_fingerprint");
  {
    auto mgr = MustOpen(Opts(dir, /*resume=*/false), /*fingerprint=*/111);
    CheckpointManager::UnitHandle unit = mgr->BeginUnit("train");
    mgr->SavePartial(unit, "state");
  }
  StatusOr<std::unique_ptr<CheckpointManager>> resumed =
      CheckpointManager::Open(Opts(dir, /*resume=*/true), /*fingerprint=*/222);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("different configuration"),
            std::string::npos);
}

TEST(CheckpointManagerTest, ResumeWithoutAnyCheckpointIsAnError) {
  std::string dir = FreshDir("ckpt_empty_resume");
  StatusOr<std::unique_ptr<CheckpointManager>> resumed =
      CheckpointManager::Open(Opts(dir, /*resume=*/true), 7);
  ASSERT_FALSE(resumed.ok());
  EXPECT_NE(resumed.status().message().find("no valid checkpoint"),
            std::string::npos);
}

TEST(CheckpointConfigTest, FingerprintTracksTrajectoryFields) {
  ExperimentConfig base = TinyConfig();
  EXPECT_EQ(ConfigFingerprint(base), ConfigFingerprint(base));

  ExperimentConfig other = base;
  other.hidden_dim = 32;
  EXPECT_NE(ConfigFingerprint(base), ConfigFingerprint(other));
  other = base;
  other.seed = base.seed + 1;
  EXPECT_NE(ConfigFingerprint(base), ConfigFingerprint(other));
  other = base;
  other.model_name = "SimpleHGN";
  EXPECT_NE(ConfigFingerprint(base), ConfigFingerprint(other));

  // Checkpoint knobs do NOT change the trajectory fingerprint: resuming
  // with a different cadence (or with the test interrupt hook cleared)
  // must be allowed.
  other = base;
  other.checkpoint.every = 1;
  other.checkpoint.resume = true;
  other.checkpoint.interrupt_after_epochs = 5;
  EXPECT_EQ(ConfigFingerprint(base), ConfigFingerprint(other));
}

TEST(CheckpointConfigTest, StopRequestedAtEpochSemantics) {
  ClearShutdownRequestForTest();
  ExperimentConfig config = TinyConfig();
  EXPECT_FALSE(StopRequestedAtEpoch(config, 0));
  EXPECT_FALSE(StopRequestedAtEpoch(config, 1000));
  config.checkpoint.interrupt_after_epochs = 3;
  EXPECT_FALSE(StopRequestedAtEpoch(config, 2));
  EXPECT_TRUE(StopRequestedAtEpoch(config, 3));
  EXPECT_TRUE(StopRequestedAtEpoch(config, 4));
  config.checkpoint.interrupt_after_epochs = -1;
  RequestShutdown();
  EXPECT_TRUE(StopRequestedAtEpoch(config, 0));
  ClearShutdownRequestForTest();
  EXPECT_FALSE(StopRequestedAtEpoch(config, 0));
}

// --- Crash -> resume determinism (the PR's acceptance property) ----------
//
// The interrupt_after_epochs hook stops a stage at an epoch boundary
// exactly like SIGINT would, then a second manager resumes from the saved
// checkpoint. The resumed run must land on bitwise-identical final state;
// state_digest hashes the final parameters, metrics, and (for AutoAC) the
// searched assignment + alpha. Process-kill variants of the same property
// run in scripts/crash_resume_check.sh.

TEST(CheckpointResumeTest, TrainerInterruptThenResumeIsBitwiseIdentical) {
  ClearShutdownRequestForTest();
  CheckpointEnvironment& env = CheckpointEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  std::vector<CompletionOpType> ops = UniformAssignment(
      NumMissing(*env.dataset.graph), CompletionOpType::kOneHot);

  RunResult baseline = TrainFixedCompletion(env.task, env.ctx, config, ops);
  ASSERT_FALSE(baseline.interrupted);
  ASSERT_NE(baseline.state_digest, 0u);

  std::string dir = FreshDir("ckpt_trainer_resume");
  ExperimentConfig stopped = config;
  stopped.checkpoint = Opts(dir, /*resume=*/false, /*interrupt_after=*/5);
  auto m1 = MustOpen(stopped.checkpoint, ConfigFingerprint(stopped));
  RunResult interrupted =
      TrainFixedCompletion(env.task, env.ctx, stopped, ops, m1.get());
  EXPECT_TRUE(interrupted.interrupted);
  EXPECT_GT(m1->saves(), 0);

  ExperimentConfig resumed_config = config;
  resumed_config.checkpoint = Opts(dir, /*resume=*/true);
  auto m2 =
      MustOpen(resumed_config.checkpoint, ConfigFingerprint(resumed_config));
  RunResult resumed =
      TrainFixedCompletion(env.task, env.ctx, resumed_config, ops, m2.get());
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.state_digest, baseline.state_digest);
  EXPECT_EQ(resumed.test.primary, baseline.test.primary);
  EXPECT_EQ(resumed.test.macro_f1, baseline.test.macro_f1);
  EXPECT_EQ(resumed.test.micro_f1, baseline.test.micro_f1);
  EXPECT_EQ(resumed.val_primary, baseline.val_primary);
  EXPECT_EQ(resumed.epochs_run, baseline.epochs_run);

  // A third resume replays the completed unit straight from the journal.
  auto m3 =
      MustOpen(resumed_config.checkpoint, ConfigFingerprint(resumed_config));
  RunResult replayed =
      TrainFixedCompletion(env.task, env.ctx, resumed_config, ops, m3.get());
  EXPECT_EQ(replayed.state_digest, baseline.state_digest);
  EXPECT_EQ(replayed.test.micro_f1, baseline.test.micro_f1);
}

TEST(CheckpointResumeTest, TrainerResumeRejectsDifferentAssignment) {
  ClearShutdownRequestForTest();
  CheckpointEnvironment& env = CheckpointEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  int64_t n = NumMissing(*env.dataset.graph);

  std::string dir = FreshDir("ckpt_wrong_assignment");
  ExperimentConfig stopped = config;
  stopped.checkpoint = Opts(dir, /*resume=*/false, /*interrupt_after=*/5);
  auto m1 = MustOpen(stopped.checkpoint, ConfigFingerprint(stopped));
  RunResult interrupted = TrainFixedCompletion(
      env.task, env.ctx, stopped,
      UniformAssignment(n, CompletionOpType::kOneHot), m1.get());
  ASSERT_TRUE(interrupted.interrupted);

  ExperimentConfig resumed = config;
  resumed.checkpoint = Opts(dir, /*resume=*/true);
  auto m2 = MustOpen(resumed.checkpoint, ConfigFingerprint(resumed));
  // Resuming the checkpoint under a different completion assignment must
  // die loudly (assignment digest guard), not silently continue.
  EXPECT_DEATH(TrainFixedCompletion(env.task, env.ctx, resumed,
                                    UniformAssignment(n,
                                                      CompletionOpType::kMean),
                                    m2.get()),
               "different assignment");
}

TEST(CheckpointResumeTest, SearchStageInterruptResumeMatchesBaseline) {
  ClearShutdownRequestForTest();
  CheckpointEnvironment& env = CheckpointEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  SearchResult baseline = SearchCompletionOps(env.task, env.ctx, config);
  ASSERT_FALSE(baseline.interrupted);

  std::string dir = FreshDir("ckpt_search_only");
  ExperimentConfig stopped = config;
  stopped.checkpoint = Opts(dir, /*resume=*/false, /*interrupt_after=*/3);
  auto m1 = MustOpen(stopped.checkpoint, ConfigFingerprint(stopped));
  SearchResult interrupted =
      SearchCompletionOps(env.task, env.ctx, stopped, m1.get());
  ASSERT_TRUE(interrupted.interrupted);

  ExperimentConfig resumed_config = config;
  resumed_config.checkpoint = Opts(dir, /*resume=*/true);
  auto m2 =
      MustOpen(resumed_config.checkpoint, ConfigFingerprint(resumed_config));
  SearchResult resumed =
      SearchCompletionOps(env.task, env.ctx, resumed_config, m2.get());
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.op_per_missing, baseline.op_per_missing);
  EXPECT_EQ(resumed.cluster_of, baseline.cluster_of);
  EXPECT_EQ(DigestTensor(kFnvOffsetBasis, resumed.final_alpha),
            DigestTensor(kFnvOffsetBasis, baseline.final_alpha));
  ASSERT_EQ(resumed.gmoc_trace.size(), baseline.gmoc_trace.size());
  for (size_t i = 0; i < baseline.gmoc_trace.size(); ++i) {
    EXPECT_EQ(resumed.gmoc_trace[i], baseline.gmoc_trace[i]) << "epoch " << i;
  }
  ASSERT_EQ(resumed.runner_up_ops.size(), baseline.runner_up_ops.size());
  for (size_t i = 0; i < baseline.runner_up_ops.size(); ++i) {
    EXPECT_EQ(resumed.runner_up_ops[i], baseline.runner_up_ops[i]);
  }
}

// Shared uninterrupted AutoAC baseline for the two pipeline resume tests.
const RunResult& AutoAcBaseline() {
  static RunResult* baseline = [] {
    CheckpointEnvironment& env = CheckpointEnvironment::Get();
    RunResult* r = new RunResult(RunAutoAc(env.task, env.ctx, TinyConfig()));
    return r;
  }();
  return *baseline;
}

void ExpectMatchesBaseline(const RunResult& resumed) {
  const RunResult& baseline = AutoAcBaseline();
  EXPECT_FALSE(resumed.interrupted);
  EXPECT_EQ(resumed.state_digest, baseline.state_digest);
  EXPECT_EQ(resumed.test.primary, baseline.test.primary);
  EXPECT_EQ(resumed.test.macro_f1, baseline.test.macro_f1);
  EXPECT_EQ(resumed.test.micro_f1, baseline.test.micro_f1);
  EXPECT_EQ(resumed.val_primary, baseline.val_primary);
  ASSERT_EQ(resumed.searched_ops.size(), baseline.searched_ops.size());
  EXPECT_EQ(resumed.searched_ops, baseline.searched_ops);
}

RunResult RunAutoAcWithCheckpoint(const std::string& dir, bool resume,
                                  int64_t interrupt_after) {
  CheckpointEnvironment& env = CheckpointEnvironment::Get();
  ExperimentConfig config = TinyConfig();
  config.checkpoint = Opts(dir, resume, interrupt_after);
  auto mgr = MustOpen(config.checkpoint, ConfigFingerprint(config));
  return RunAutoAc(env.task, env.ctx, config, mgr.get());
}

TEST(CheckpointResumeTest, SearchInterruptThenResumeIsBitwiseIdentical) {
  ClearShutdownRequestForTest();
  ASSERT_FALSE(AutoAcBaseline().interrupted);
  std::string dir = FreshDir("ckpt_search_resume");
  // Hook fires at search epoch 3 of 6: the interruption lands mid-search.
  RunResult interrupted =
      RunAutoAcWithCheckpoint(dir, /*resume=*/false, /*interrupt_after=*/3);
  ASSERT_TRUE(interrupted.interrupted);
  RunResult resumed =
      RunAutoAcWithCheckpoint(dir, /*resume=*/true, /*interrupt_after=*/-1);
  ExpectMatchesBaseline(resumed);
}

TEST(CheckpointResumeTest, RetrainInterruptThenResumeIsBitwiseIdentical) {
  ClearShutdownRequestForTest();
  ASSERT_FALSE(AutoAcBaseline().interrupted);
  std::string dir = FreshDir("ckpt_retrain_resume");
  // All 6 search epochs stay below the hook, so the search unit completes
  // and the first probe retrain (10 epochs) interrupts at its epoch 7:
  // the journal then holds a completed unit plus a partial one.
  RunResult interrupted =
      RunAutoAcWithCheckpoint(dir, /*resume=*/false, /*interrupt_after=*/7);
  ASSERT_TRUE(interrupted.interrupted);
  RunResult resumed =
      RunAutoAcWithCheckpoint(dir, /*resume=*/true, /*interrupt_after=*/-1);
  ExpectMatchesBaseline(resumed);
}

}  // namespace
}  // namespace autoac
