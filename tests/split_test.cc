#include "data/split.h"

#include <set>

#include "data/hgb_datasets.h"
#include "gtest/gtest.h"

namespace autoac {
namespace {

Dataset SmallLastFm() {
  DatasetOptions options;
  options.scale = 0.05;
  return MakeDataset("lastfm", options);
}

TEST(NodeSplitTest, PartitionsAreDisjointAndComplete) {
  DatasetOptions options;
  options.scale = 0.1;
  Dataset dataset = MakeDataset("acm", options);
  std::set<int64_t> all;
  for (const auto* part :
       {&dataset.split.train, &dataset.split.val, &dataset.split.test}) {
    for (int64_t id : *part) {
      EXPECT_TRUE(all.insert(id).second) << "duplicate id " << id;
    }
  }
  EXPECT_EQ(static_cast<int64_t>(all.size()),
            dataset.graph->node_type(dataset.graph->target_node_type()).count);
  // All ids belong to the target type.
  for (int64_t id : all) {
    EXPECT_EQ(dataset.graph->TypeOf(id), dataset.graph->target_node_type());
  }
}

TEST(LinkSplitTest, MasksTargetEdgesOnly) {
  Dataset dataset = SmallLastFm();
  Rng rng(3);
  LinkSplit split = MakeLinkSplit(*dataset.graph, 0.2, rng);

  int64_t original_target = 0, remaining_target = 0;
  for (int64_t e = 0; e < dataset.graph->num_edges(); ++e) {
    if (dataset.graph->edge_type_ids()[e] ==
        dataset.graph->target_edge_type()) {
      ++original_target;
    }
  }
  for (int64_t e = 0; e < split.train_graph->num_edges(); ++e) {
    if (split.train_graph->edge_type_ids()[e] ==
        split.train_graph->target_edge_type()) {
      ++remaining_target;
    }
  }
  int64_t masked = original_target - remaining_target;
  EXPECT_NEAR(static_cast<double>(masked) / original_target, 0.2, 0.02);
  EXPECT_EQ(static_cast<int64_t>(split.val_pos.size() + split.test_pos.size()),
            masked);
  EXPECT_EQ(static_cast<int64_t>(split.train_pos.size()), remaining_target);
  // Non-target edges are fully preserved.
  EXPECT_EQ(dataset.graph->num_edges() - split.train_graph->num_edges(),
            masked);
}

TEST(LinkSplitTest, TrainGraphPreservesNodesAndAttributes) {
  Dataset dataset = SmallLastFm();
  Rng rng(3);
  LinkSplit split = MakeLinkSplit(*dataset.graph, 0.1, rng);
  EXPECT_EQ(split.train_graph->num_nodes(), dataset.graph->num_nodes());
  for (int64_t t = 0; t < dataset.graph->num_node_types(); ++t) {
    EXPECT_EQ(split.train_graph->node_type(t).attributes.numel(),
              dataset.graph->node_type(t).attributes.numel());
  }
}

TEST(LinkSplitTest, PositivePairsHaveCorrectEndpointTypes) {
  Dataset dataset = SmallLastFm();
  Rng rng(4);
  LinkSplit split = MakeLinkSplit(*dataset.graph, 0.15, rng);
  for (const auto& [u, v] : split.test_pos) {
    EXPECT_EQ(dataset.graph->TypeOf(u), split.src_type);
    EXPECT_EQ(dataset.graph->TypeOf(v), split.dst_type);
  }
}

TEST(NegativeSamplingTest, AvoidsExistingEdges) {
  Dataset dataset = SmallLastFm();
  const HeteroGraph& graph = *dataset.graph;
  std::set<std::pair<int64_t, int64_t>> existing;
  for (int64_t e = 0; e < graph.num_edges(); ++e) {
    if (graph.edge_type_ids()[e] == graph.target_edge_type()) {
      existing.insert({graph.edge_src()[e], graph.edge_dst()[e]});
    }
  }
  Rng rng(9);
  auto negatives = SampleNegativeEdges(graph, 200, rng);
  EXPECT_EQ(negatives.size(), 200u);
  int64_t src_type = graph.edge_type(graph.target_edge_type()).src_type;
  int64_t dst_type = graph.edge_type(graph.target_edge_type()).dst_type;
  for (const auto& pair : negatives) {
    EXPECT_EQ(existing.count(pair), 0u);
    EXPECT_EQ(graph.TypeOf(pair.first), src_type);
    EXPECT_EQ(graph.TypeOf(pair.second), dst_type);
  }
}

}  // namespace
}  // namespace autoac
