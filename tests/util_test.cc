#include <cmath>
#include <csignal>

#include "gtest/gtest.h"
#include "util/fault.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/shutdown.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace autoac {
namespace {

TEST(StatsTest, SummarizeMeanAndStd) {
  RunSummary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.mean, 5.0, 1e-9);
  // Sample std with n-1 denominator.
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_EQ(s.n, 8);
}

TEST(StatsTest, SummarizeEmptyAndSingle) {
  EXPECT_EQ(Summarize({}).n, 0);
  RunSummary one = Summarize({3.0});
  EXPECT_EQ(one.n, 1);
  EXPECT_EQ(one.stddev, 0.0);
}

TEST(StatsTest, WelchIdenticalSamplesGiveHighP) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_GT(WelchTTestPValue(a, a), 0.95);
}

TEST(StatsTest, WelchClearlySeparatedSamplesGiveLowP) {
  std::vector<double> a = {1.0, 1.1, 0.9, 1.05, 0.95};
  std::vector<double> b = {5.0, 5.1, 4.9, 5.05, 4.95};
  EXPECT_LT(WelchTTestPValue(a, b), 1e-6);
}

TEST(StatsTest, WelchMatchesReferenceValue) {
  // Reference via independent numeric integration of the Student-t pdf
  // (t = -5.1903, Welch df = 3.2311): p ~= 0.011529.
  std::vector<double> a = {82.1, 83.0, 82.5};
  std::vector<double> b = {84.0, 84.4, 83.9};
  EXPECT_NEAR(WelchTTestPValue(a, b), 0.011529, 1e-4);
}

TEST(StatsTest, WelchDegenerateInputs) {
  EXPECT_EQ(WelchTTestPValue({1.0}, {2.0, 3.0}), 1.0);
  EXPECT_EQ(WelchTTestPValue({2.0, 2.0}, {2.0, 2.0}), 1.0);
  EXPECT_EQ(WelchTTestPValue({2.0, 2.0}, {3.0, 3.0}), 0.0);
}

TEST(StatsTest, Formatting) {
  RunSummary s;
  s.mean = 93.855;
  s.stddev = 0.184;
  EXPECT_EQ(FormatMeanStd(s, 2), "93.86±0.18");
  EXPECT_EQ(FormatPValue(2.9e-8), "2.9e-08");
}

TEST(TablePrinterTest, AlignsColumnsAndCountsUtf8Once) {
  TablePrinter table({"Model", "Micro-F1"});
  table.AddRow({"GCN", "92.60±0.22"});
  table.AddSeparator();
  table.AddRow({"SimpleHGN-AutoAC", "93.80±0.18"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("GCN"), std::string::npos);
  EXPECT_NE(out.find("93.80±0.18"), std::string::npos);
  // Separator adds an extra rule line: 4 rules total (top, under-header,
  // explicit separator, bottom).
  int rules = 0;
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    if (end > start && out[start] == '-') ++rules;
    start = end + 1;
  }
  EXPECT_EQ(rules, 4);
}

TEST(FlagsTest, ParsesTypes) {
  const char* argv[] = {"prog", "--scale=0.5", "--seeds=4",
                        "--model=SimpleHGN", "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetInt("seeds", 1), 4);
  EXPECT_EQ(flags.GetString("model", ""), "SimpleHGN");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_TRUE(flags.Has("scale"));
  EXPECT_FALSE(flags.Has("nope"));
}

TEST(FlagsTest, MalformedValuesFallBack) {
  const char* argv[] = {"prog", "--seeds=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("seeds", 3), 3);
}

// Satellite bugfix: GetDouble parses with std::from_chars — full-string,
// locale-independent, and strict about range. The old strtod path accepted
// hex floats and saturated "1e999" to inf with ERANGE ignored.
TEST(FlagsTest, DoubleParsingIsStrict) {
  const char* argv[] = {"prog", "--a=1e999", "--b=0x10", "--c=+0.5",
                        "--d=5.", "--e=1.5e-3"};
  Flags flags(6, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetDouble("a", -1.0), -1.0);  // overflow is malformed
  EXPECT_EQ(flags.GetDouble("b", -1.0), -1.0);  // hex floats rejected
  EXPECT_EQ(flags.GetDouble("c", -1.0), 0.5);   // explicit '+' still works
  EXPECT_EQ(flags.GetDouble("d", -1.0), 5.0);   // C grammar: "5." is fine
  EXPECT_DOUBLE_EQ(flags.GetDouble("e", -1.0), 1.5e-3);
  std::vector<Flags::Spec> specs = {{"a", Flags::Spec::Type::kDouble},
                                    {"b", Flags::Spec::Type::kDouble}};
  EXPECT_EQ(flags.Validate(specs).size(), 2u + 3u);  // a, b + unknown c/d/e
}

TEST(FlagsTest, ValidateAcceptsCleanCommandLine) {
  const char* argv[] = {"prog", "--seeds=4", "--scale=0.5", "--resume",
                        "--model=GCN"};
  Flags flags(5, const_cast<char**>(argv));
  std::vector<Flags::Spec> specs = {
      {"seeds", Flags::Spec::Type::kInt},
      {"scale", Flags::Spec::Type::kDouble},
      {"resume", Flags::Spec::Type::kBool},
      {"model", Flags::Spec::Type::kString},
  };
  EXPECT_TRUE(flags.Validate(specs).empty());
}

TEST(FlagsTest, ValidateReportsUnknownFlag) {
  const char* argv[] = {"prog", "--sedes=4"};  // typo of --seeds
  Flags flags(2, const_cast<char**>(argv));
  std::vector<Flags::Spec> specs = {{"seeds", Flags::Spec::Type::kInt}};
  std::vector<std::string> problems = flags.Validate(specs);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("sedes"), std::string::npos);
}

TEST(FlagsTest, ValidateReportsMalformedValues) {
  const char* argv[] = {"prog", "--seeds=abc", "--scale=1.2.3",
                        "--resume=maybe"};
  Flags flags(4, const_cast<char**>(argv));
  std::vector<Flags::Spec> specs = {
      {"seeds", Flags::Spec::Type::kInt},
      {"scale", Flags::Spec::Type::kDouble},
      {"resume", Flags::Spec::Type::kBool},
  };
  EXPECT_EQ(flags.Validate(specs).size(), 3u);
}

TEST(FlagsTest, ValidateReportsPositionalArguments) {
  const char* argv[] = {"prog", "stray", "--seeds=4"};
  Flags flags(3, const_cast<char**>(argv));
  std::vector<Flags::Spec> specs = {{"seeds", Flags::Spec::Type::kInt}};
  std::vector<std::string> problems = flags.Validate(specs);
  ASSERT_EQ(problems.size(), 1u);
  EXPECT_NE(problems[0].find("stray"), std::string::npos);
}

TEST(FaultTest, ParseFaultSpec) {
  std::string site;
  int64_t count = -1;
  EXPECT_TRUE(ParseFaultSpec("search_epoch:5", &site, &count));
  EXPECT_EQ(site, "search_epoch");
  EXPECT_EQ(count, 5);
  EXPECT_TRUE(ParseFaultSpec("atomic_write:0", &site, &count));
  EXPECT_EQ(site, "atomic_write");
  EXPECT_EQ(count, 0);
  EXPECT_FALSE(ParseFaultSpec("", &site, &count));
  EXPECT_FALSE(ParseFaultSpec("no_colon", &site, &count));
  EXPECT_FALSE(ParseFaultSpec(":3", &site, &count));
  EXPECT_FALSE(ParseFaultSpec("site:", &site, &count));
  EXPECT_FALSE(ParseFaultSpec("site:-1", &site, &count));
  EXPECT_FALSE(ParseFaultSpec("site:abc", &site, &count));
}

TEST(FaultTest, FaultPointIsANoOpWhenUnset) {
  // AUTOAC_FAULT_INJECT is not set in the test environment; a hit must be
  // harmless at any site name.
  FaultPoint("search_epoch");
  FaultPoint("never_registered");
}

TEST(FaultTest, ParseFaultSpecStarMeansEveryHit) {
  std::string site;
  int64_t count = 0;
  ASSERT_TRUE(ParseFaultSpec("serve_torn_read:*", &site, &count));
  EXPECT_EQ(site, "serve_torn_read");
  EXPECT_EQ(count, -1);
}

TEST(FaultTest, SoftSitesFireOnTheIndexedHitOnly) {
  SetFaultSpecForTest("soft_site:1");
  EXPECT_FALSE(FaultTriggered("soft_site"));  // hit 0
  EXPECT_TRUE(FaultTriggered("soft_site"));   // hit 1: armed index
  EXPECT_FALSE(FaultTriggered("soft_site"));  // hit 2
  EXPECT_FALSE(FaultTriggered("unarmed_site"));
  SetFaultSpecForTest("");
  EXPECT_FALSE(FaultTriggered("soft_site"));  // disarmed
}

TEST(FaultTest, StarFiresEveryHitAndObservedCountIsMonotonic) {
  SetFaultSpecForTest("soak_site:*");
  int64_t before = FaultTriggersObserved();
  EXPECT_TRUE(FaultTriggered("soak_site"));
  EXPECT_TRUE(FaultTriggered("soak_site"));
  EXPECT_TRUE(FaultTriggered("soak_site"));
  EXPECT_EQ(FaultTriggersObserved(), before + 3);
  SetFaultSpecForTest("");
  EXPECT_FALSE(FaultTriggered("soak_site"));
  EXPECT_EQ(FaultTriggersObserved(), before + 3);  // misses are not counted
}

TEST(FaultTest, SetFaultSpecForTestResetsHitCounters) {
  SetFaultSpecForTest("reset_site:0");
  EXPECT_TRUE(FaultTriggered("reset_site"));   // hit 0 fires
  EXPECT_FALSE(FaultTriggered("reset_site"));  // hit 1 does not
  SetFaultSpecForTest("reset_site:0");         // re-arm: counters reset
  EXPECT_TRUE(FaultTriggered("reset_site"));
  SetFaultSpecForTest("");
}

TEST(ShutdownTest, SignalSetsFlagAndClearsForTest) {
  InstallShutdownHandler();
  ClearShutdownRequestForTest();
  EXPECT_FALSE(ShutdownRequested());
  ASSERT_EQ(std::raise(SIGTERM), 0);  // handler swallows it, sets the flag
  EXPECT_TRUE(ShutdownRequested());
  ClearShutdownRequestForTest();
  EXPECT_FALSE(ShutdownRequested());
  RequestShutdown();
  EXPECT_TRUE(ShutdownRequested());
  ClearShutdownRequestForTest();
}

TEST(RngTest, SaveLoadStateContinuesExactStream) {
  Rng a(123);
  for (int i = 0; i < 57; ++i) a.Uniform();  // advance into the stream
  std::string state = a.SaveState();
  std::vector<int64_t> expected;
  for (int i = 0; i < 50; ++i) expected.push_back(a.UniformInt(0, 1 << 30));

  Rng b(999);  // different seed: state restore must fully override it
  ASSERT_TRUE(b.LoadState(state));
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(b.UniformInt(0, 1 << 30), expected[i]);
  }
}

TEST(RngTest, LoadStateRejectsGarbage) {
  Rng rng(5);
  EXPECT_FALSE(rng.LoadState("not a valid engine state"));
  // Engine still usable after the rejected load.
  int64_t v = rng.UniformInt(0, 10);
  EXPECT_GE(v, 0);
  EXPECT_LE(v, 10);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(5);
  // Dense regime.
  std::vector<int64_t> all = rng.SampleWithoutReplacement(10, 10);
  std::sort(all.begin(), all.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(all[i], i);
  // Sparse regime.
  std::vector<int64_t> few = rng.SampleWithoutReplacement(1000, 5);
  std::sort(few.begin(), few.end());
  EXPECT_EQ(std::unique(few.begin(), few.end()), few.end());
  EXPECT_EQ(few.size(), 5u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(7);
  int64_t hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Categorical({0.9, 0.1}) == 0) ++hits;
  }
  EXPECT_GT(hits, 1600);
}

TEST(TimerTest, MeasuresElapsedTime) {
  StageTimer timer;
  timer.Start();
  timer.Stop();
  timer.Start();
  timer.Stop();
  EXPECT_GE(timer.TotalSeconds(), 0.0);
  timer.Clear();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace autoac
