#include <cmath>

#include "gtest/gtest.h"
#include "util/flags.h"
#include "util/rng.h"
#include "util/stats.h"
#include "util/table.h"
#include "util/timer.h"

namespace autoac {
namespace {

TEST(StatsTest, SummarizeMeanAndStd) {
  RunSummary s = Summarize({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0});
  EXPECT_NEAR(s.mean, 5.0, 1e-9);
  // Sample std with n-1 denominator.
  EXPECT_NEAR(s.stddev, std::sqrt(32.0 / 7.0), 1e-9);
  EXPECT_EQ(s.n, 8);
}

TEST(StatsTest, SummarizeEmptyAndSingle) {
  EXPECT_EQ(Summarize({}).n, 0);
  RunSummary one = Summarize({3.0});
  EXPECT_EQ(one.n, 1);
  EXPECT_EQ(one.stddev, 0.0);
}

TEST(StatsTest, WelchIdenticalSamplesGiveHighP) {
  std::vector<double> a = {1.0, 2.0, 3.0, 4.0};
  EXPECT_GT(WelchTTestPValue(a, a), 0.95);
}

TEST(StatsTest, WelchClearlySeparatedSamplesGiveLowP) {
  std::vector<double> a = {1.0, 1.1, 0.9, 1.05, 0.95};
  std::vector<double> b = {5.0, 5.1, 4.9, 5.05, 4.95};
  EXPECT_LT(WelchTTestPValue(a, b), 1e-6);
}

TEST(StatsTest, WelchMatchesReferenceValue) {
  // Reference via independent numeric integration of the Student-t pdf
  // (t = -5.1903, Welch df = 3.2311): p ~= 0.011529.
  std::vector<double> a = {82.1, 83.0, 82.5};
  std::vector<double> b = {84.0, 84.4, 83.9};
  EXPECT_NEAR(WelchTTestPValue(a, b), 0.011529, 1e-4);
}

TEST(StatsTest, WelchDegenerateInputs) {
  EXPECT_EQ(WelchTTestPValue({1.0}, {2.0, 3.0}), 1.0);
  EXPECT_EQ(WelchTTestPValue({2.0, 2.0}, {2.0, 2.0}), 1.0);
  EXPECT_EQ(WelchTTestPValue({2.0, 2.0}, {3.0, 3.0}), 0.0);
}

TEST(StatsTest, Formatting) {
  RunSummary s;
  s.mean = 93.855;
  s.stddev = 0.184;
  EXPECT_EQ(FormatMeanStd(s, 2), "93.86±0.18");
  EXPECT_EQ(FormatPValue(2.9e-8), "2.9e-08");
}

TEST(TablePrinterTest, AlignsColumnsAndCountsUtf8Once) {
  TablePrinter table({"Model", "Micro-F1"});
  table.AddRow({"GCN", "92.60±0.22"});
  table.AddSeparator();
  table.AddRow({"SimpleHGN-AutoAC", "93.80±0.18"});
  std::string out = table.ToString();
  EXPECT_NE(out.find("GCN"), std::string::npos);
  EXPECT_NE(out.find("93.80±0.18"), std::string::npos);
  // Separator adds an extra rule line: 4 rules total (top, under-header,
  // explicit separator, bottom).
  int rules = 0;
  size_t start = 0;
  while (start < out.size()) {
    size_t end = out.find('\n', start);
    if (end == std::string::npos) end = out.size();
    if (end > start && out[start] == '-') ++rules;
    start = end + 1;
  }
  EXPECT_EQ(rules, 4);
}

TEST(FlagsTest, ParsesTypes) {
  const char* argv[] = {"prog", "--scale=0.5", "--seeds=4",
                        "--model=SimpleHGN", "--verbose"};
  Flags flags(5, const_cast<char**>(argv));
  EXPECT_DOUBLE_EQ(flags.GetDouble("scale", 1.0), 0.5);
  EXPECT_EQ(flags.GetInt("seeds", 1), 4);
  EXPECT_EQ(flags.GetString("model", ""), "SimpleHGN");
  EXPECT_TRUE(flags.GetBool("verbose", false));
  EXPECT_EQ(flags.GetInt("missing", 9), 9);
  EXPECT_TRUE(flags.Has("scale"));
  EXPECT_FALSE(flags.Has("nope"));
}

TEST(FlagsTest, MalformedValuesFallBack) {
  const char* argv[] = {"prog", "--seeds=abc"};
  Flags flags(2, const_cast<char**>(argv));
  EXPECT_EQ(flags.GetInt("seeds", 3), 3);
}

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(3, 7);
    EXPECT_GE(v, 3);
    EXPECT_LE(v, 7);
  }
}

TEST(RngTest, SampleWithoutReplacementIsDistinctAndComplete) {
  Rng rng(5);
  // Dense regime.
  std::vector<int64_t> all = rng.SampleWithoutReplacement(10, 10);
  std::sort(all.begin(), all.end());
  for (int64_t i = 0; i < 10; ++i) EXPECT_EQ(all[i], i);
  // Sparse regime.
  std::vector<int64_t> few = rng.SampleWithoutReplacement(1000, 5);
  std::sort(few.begin(), few.end());
  EXPECT_EQ(std::unique(few.begin(), few.end()), few.end());
  EXPECT_EQ(few.size(), 5u);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(7);
  int64_t hits = 0;
  for (int i = 0; i < 2000; ++i) {
    if (rng.Categorical({0.9, 0.1}) == 0) ++hits;
  }
  EXPECT_GT(hits, 1600);
}

TEST(TimerTest, MeasuresElapsedTime) {
  StageTimer timer;
  timer.Start();
  timer.Stop();
  timer.Start();
  timer.Stop();
  EXPECT_GE(timer.TotalSeconds(), 0.0);
  timer.Clear();
  EXPECT_EQ(timer.TotalSeconds(), 0.0);
}

}  // namespace
}  // namespace autoac
