// Unit tests for the quantized tensor codec (src/tensor/quantize.h,
// DESIGN.md §14): half-precision conversion (round-to-nearest-even,
// overflow, subnormals), the per-tensor int8 affine transform, the
// encoding-selection policy, and encode/decode round trips including the
// empty-tensor and determinism corners the artifact fingerprint relies on.

#include "tensor/quantize.h"

#include <cmath>
#include <cstring>
#include <limits>

#include "gtest/gtest.h"
#include "tensor/init.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace autoac {
namespace {

TEST(HalfConversionTest, ExactValuesRoundTripBitwise) {
  // Every value here is exactly representable in binary16, so the float ->
  // half -> float trip must reproduce it bit for bit.
  const float exact[] = {0.0f,   -0.0f,  1.0f,    -1.0f,  0.5f,  2.0f,
                         -2.75f, 1024.0f, 65504.0f /* max finite half */,
                         6.103515625e-5f /* min normal half */};
  for (float v : exact) {
    float back = HalfToFloat(FloatToHalf(v));
    uint32_t a, b;
    std::memcpy(&a, &v, 4);
    std::memcpy(&b, &back, 4);
    EXPECT_EQ(a, b) << "value " << v;
  }
}

TEST(HalfConversionTest, RoundsToNearestEven) {
  // 1.0 + 2^-11 is exactly halfway between the halves 1.0 and 1.0 + 2^-10;
  // nearest-even picks the even mantissa (1.0). One ulp above the halfway
  // point must round up instead.
  const float halfway = 1.0f + 0x1p-11f;
  EXPECT_EQ(HalfToFloat(FloatToHalf(halfway)), 1.0f);
  const float above = 1.0f + 0x1p-11f + 0x1p-20f;
  EXPECT_EQ(HalfToFloat(FloatToHalf(above)), 1.0f + 0x1p-10f);
  // Halfway between 1.0 + 2^-10 (odd mantissa) and 1.0 + 2^-9: rounds up
  // to the even neighbor.
  const float odd_halfway = 1.0f + 0x1p-10f + 0x1p-11f;
  EXPECT_EQ(HalfToFloat(FloatToHalf(odd_halfway)), 1.0f + 0x1p-9f);
}

TEST(HalfConversionTest, OverflowAndSpecials) {
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(1.0e6f))));
  EXPECT_TRUE(HalfToFloat(FloatToHalf(-1.0e6f)) < 0.0f);
  EXPECT_TRUE(std::isinf(HalfToFloat(
      FloatToHalf(std::numeric_limits<float>::infinity()))));
  EXPECT_TRUE(std::isnan(HalfToFloat(
      FloatToHalf(std::numeric_limits<float>::quiet_NaN()))));
  // 65520 is the first float that rounds past the max finite half.
  EXPECT_EQ(HalfToFloat(FloatToHalf(65503.0f)), 65504.0f);
  EXPECT_TRUE(std::isinf(HalfToFloat(FloatToHalf(65520.0f))));
}

TEST(HalfConversionTest, SubnormalsRoundTrip) {
  // Smallest positive half subnormal is 2^-24; values representable as
  // half subnormals survive the trip exactly.
  EXPECT_EQ(HalfToFloat(FloatToHalf(0x1p-24f)), 0x1p-24f);
  EXPECT_EQ(HalfToFloat(FloatToHalf(3 * 0x1p-24f)), 3 * 0x1p-24f);
  // Below half the smallest subnormal: underflows to (signed) zero.
  EXPECT_EQ(HalfToFloat(FloatToHalf(0x1p-26f)), 0.0f);
  EXPECT_EQ(HalfToFloat(FloatToHalf(-0x1p-26f)), -0.0f);
}

TEST(HalfConversionTest, EveryHalfBitPatternRoundTripsThroughFloat) {
  // binary16 -> binary32 is exact, so half -> float -> half must be the
  // identity on all 65536 patterns (NaN payloads may legitimately differ
  // in the quiet bit; skip them).
  for (uint32_t h = 0; h <= 0xFFFFu; ++h) {
    uint16_t half = static_cast<uint16_t>(h);
    if ((half & 0x7C00u) == 0x7C00u && (half & 0x3FFu) != 0) continue;
    EXPECT_EQ(FloatToHalf(HalfToFloat(half)), half) << "pattern " << h;
  }
}

TEST(ChooseEncodingTest, SmallAndLowRankTensorsStayF32) {
  Rng rng(7);
  Tensor vec = RandomNormal({2048}, 1.0f, rng);       // rank 1: stays f32
  Tensor small = RandomNormal({31, 31}, 1.0f, rng);   // 961 < 1024: stays f32
  Tensor big = RandomNormal({32, 32}, 1.0f, rng);     // 1024: quantizes
  EXPECT_EQ(ChooseEncoding(vec, TensorEncoding::kF16), TensorEncoding::kF32);
  EXPECT_EQ(ChooseEncoding(small, TensorEncoding::kI8), TensorEncoding::kF32);
  EXPECT_EQ(ChooseEncoding(big, TensorEncoding::kF16), TensorEncoding::kF16);
  EXPECT_EQ(ChooseEncoding(big, TensorEncoding::kI8), TensorEncoding::kI8);
  EXPECT_EQ(ChooseEncoding(big, TensorEncoding::kF32), TensorEncoding::kF32);
}

TEST(EncodeTensorTest, F32IsByteIdentical) {
  Rng rng(11);
  Tensor t = RandomNormal({40, 40}, 1.0f, rng);
  EncodedTensor enc = EncodeTensor(t, TensorEncoding::kF32);
  ASSERT_EQ(enc.encoding, TensorEncoding::kF32);
  ASSERT_EQ(enc.bytes.size(), static_cast<size_t>(t.numel()) * 4);
  EXPECT_EQ(std::memcmp(enc.bytes.data(), t.data(), enc.bytes.size()), 0);
  Tensor back = DecodeTensor(enc);
  ASSERT_TRUE(back.SameShape(t));
  EXPECT_EQ(std::memcmp(back.data(), t.data(), enc.bytes.size()), 0);
}

TEST(EncodeTensorTest, F16ErrorBoundedByRelativeUlp) {
  Rng rng(13);
  Tensor t = RandomNormal({64, 64}, 2.0f, rng);
  EncodedTensor enc = EncodeTensor(t, TensorEncoding::kF16);
  ASSERT_EQ(enc.encoding, TensorEncoding::kF16);
  ASSERT_EQ(enc.bytes.size(), static_cast<size_t>(t.numel()) * 2);
  Tensor back = DecodeTensor(enc);
  ASSERT_TRUE(back.SameShape(t));
  for (int64_t i = 0; i < t.numel(); ++i) {
    float v = t.data()[i];
    // Half has 11 significand bits: nearest-even error is at most 2^-11
    // relative for normal values.
    EXPECT_LE(std::fabs(back.data()[i] - v), std::fabs(v) * 0x1p-11f + 1e-7f)
        << "element " << i;
  }
}

TEST(EncodeTensorTest, I8ErrorBoundedByHalfScale) {
  Rng rng(17);
  Tensor t = RandomNormal({64, 64}, 0.5f, rng);
  EncodedTensor enc = EncodeTensor(t, TensorEncoding::kI8);
  ASSERT_EQ(enc.encoding, TensorEncoding::kI8);
  ASSERT_EQ(enc.bytes.size(), static_cast<size_t>(t.numel()));
  EXPECT_GT(enc.scale, 0.0f);
  EXPECT_GE(enc.zero_point, -128);
  EXPECT_LE(enc.zero_point, 127);
  Tensor back = DecodeTensor(enc);
  ASSERT_TRUE(back.SameShape(t));
  for (int64_t i = 0; i < t.numel(); ++i) {
    // Affine rounding error is at most scale/2 plus a little slack for
    // the zero-point clamp at the range edges.
    EXPECT_LE(std::fabs(back.data()[i] - t.data()[i]), enc.scale * 0.75f)
        << "element " << i;
  }
}

TEST(EncodeTensorTest, I8ConstantTensorUsesIdentityScale) {
  Tensor t = Tensor::Full({40, 40}, 3.25f);
  EncodedTensor enc = EncodeTensor(t, TensorEncoding::kI8);
  ASSERT_EQ(enc.encoding, TensorEncoding::kI8);
  EXPECT_EQ(enc.scale, 1.0f);  // max == min would give scale 0; guarded
  Tensor back = DecodeTensor(enc);
  for (int64_t i = 0; i < back.numel(); ++i) {
    EXPECT_NEAR(back.data()[i], 3.25f, 0.5f);
  }
}

TEST(EncodeTensorTest, EmptyTensorRoundTripsToDefault) {
  Tensor empty;
  EncodedTensor enc = EncodeTensor(empty, TensorEncoding::kF16);
  EXPECT_EQ(enc.encoding, TensorEncoding::kF32);  // policy: stays f32
  EXPECT_TRUE(enc.shape.empty());
  EXPECT_TRUE(enc.bytes.empty());
  Tensor back = DecodeTensor(enc);
  EXPECT_EQ(back.numel(), 0);
  EXPECT_EQ(back.dim(), 0);
}

TEST(EncodeTensorTest, DecodeIsDeterministic) {
  // The artifact fingerprint covers decoded content, which is only sound
  // if decoding the same bytes twice is bit-identical.
  Rng rng(23);
  Tensor t = RandomNormal({48, 48}, 1.0f, rng);
  for (TensorEncoding e : {TensorEncoding::kF16, TensorEncoding::kI8}) {
    EncodedTensor enc = EncodeTensor(t, e);
    Tensor a = DecodeTensor(enc);
    Tensor b = DecodeTensor(enc);
    ASSERT_TRUE(a.SameShape(b));
    EXPECT_EQ(std::memcmp(a.data(), b.data(),
                          static_cast<size_t>(a.numel()) * 4),
              0);
  }
}

}  // namespace
}  // namespace autoac
