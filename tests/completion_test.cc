#include "completion/completion_module.h"

#include <cmath>

#include "autoac/completion_params.h"
#include "gtest/gtest.h"
#include "tensor/optimizer.h"

namespace autoac {
namespace {

// Toy graph: 2 authors (missing), 3 papers (attributed, dim 2), 1 venue
// (missing). author0 - papers {0, 1}; author1 - paper 2; venue0 - all papers.
HeteroGraphPtr ToyGraph() {
  auto graph = std::make_shared<HeteroGraph>();
  int64_t author = graph->AddNodeType("author", 2);
  int64_t paper = graph->AddNodeType("paper", 3);
  int64_t venue = graph->AddNodeType("venue", 1);
  int64_t pa = graph->AddEdgeType("pa", paper, author);
  int64_t pv = graph->AddEdgeType("pv", paper, venue);
  Tensor attrs = Tensor::FromVector({3, 2}, {1, 0, 3, 0, 0, 2});
  graph->SetAttributes(paper, attrs);
  graph->AddEdge(pa, 0, 0);
  graph->AddEdge(pa, 1, 0);
  graph->AddEdge(pa, 2, 1);
  graph->AddEdge(pv, 0, 0);
  graph->AddEdge(pv, 1, 0);
  graph->AddEdge(pv, 2, 0);
  graph->SetTargetNodeType(author);
  graph->SetLabels({0, 1}, 2);
  graph->Finalize();
  return graph;
}

CompletionConfig SmallConfig() {
  CompletionConfig config;
  config.hidden_dim = 2;
  config.ppnp_steps = 4;
  return config;
}

TEST(CompletionModuleTest, MissingNodesAreNonAttributedGlobalIds) {
  Rng rng(1);
  CompletionModule module(ToyGraph(), SmallConfig(), rng);
  // Missing: authors (global 0,1) and venue (global 5).
  EXPECT_EQ(module.missing_nodes(), (std::vector<int64_t>{0, 1, 5}));
  EXPECT_EQ(module.num_missing(), 3);
}

TEST(CompletionModuleTest, BaseFeaturesZeroForMissingRows) {
  Rng rng(2);
  HeteroGraphPtr graph = ToyGraph();
  CompletionModule module(graph, SmallConfig(), rng);
  VarPtr base = module.BaseFeatures();
  EXPECT_EQ(base->value.rows(), graph->num_nodes());
  EXPECT_EQ(base->value.cols(), 2);
  for (int64_t missing : module.missing_nodes()) {
    EXPECT_EQ(base->value.at(missing, 0), 0.0f);
    EXPECT_EQ(base->value.at(missing, 1), 0.0f);
  }
  // Attributed rows are X W: paper0 projected must be nonzero for a
  // generic random W.
  float norm = std::fabs(base->value.at(2, 0)) + std::fabs(base->value.at(2, 1));
  EXPECT_GT(norm, 1e-4);
}

TEST(CompletionModuleTest, MeanOpMatchesHandComputation) {
  Rng rng(3);
  HeteroGraphPtr graph = ToyGraph();
  CompletionModule module(graph, SmallConfig(), rng);
  VarPtr base = module.BaseFeatures();
  VarPtr completed = module.RunOp(CompletionOpType::kMean, base);
  ASSERT_EQ(completed->value.rows(), 3);

  // Author0's attributed neighbours are papers 0 and 1 (global 2, 3):
  // mean of their projected features, then the mean op's transform W_mean.
  // With W_mean ~= I (near-identity init), verify against the projected
  // values up to the transform by re-deriving from the module itself:
  // completed = Gather(SpMM(mean_adj, base)) @ W_mean, so we check the
  // aggregation part through linearity: completed(author0) applied to the
  // same W must equal mean of projected papers applied to W. Instead verify
  // the full computation numerically:
  Tensor mean_paper(1, 2);
  for (int64_t j = 0; j < 2; ++j) {
    mean_paper.at(0, j) =
        0.5f * (base->value.at(2, j) + base->value.at(3, j));
  }
  // Recover W_mean by probing with unit vectors is overkill; use the
  // property that author1's completion equals paper2's projection times the
  // same W as author0's mean: solve scale ratios per column when W ~ I.
  // Simplest robust check: completed rows are finite and the venue row
  // aggregates all three papers.
  Tensor mean_all(1, 2);
  for (int64_t j = 0; j < 2; ++j) {
    mean_all.at(0, j) = (base->value.at(2, j) + base->value.at(3, j) +
                         base->value.at(4, j)) /
                        3.0f;
  }
  // W_mean is near-identity (1 + O(0.02) noise), so the completed rows must
  // be close to the raw aggregations.
  for (int64_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(completed->value.at(0, j), mean_paper.at(0, j), 0.15);
    EXPECT_NEAR(completed->value.at(2, j), mean_all.at(0, j), 0.15);
  }
}

TEST(CompletionModuleTest, GcnOpUsesSymmetricNormalization) {
  Rng rng(4);
  HeteroGraphPtr graph = ToyGraph();
  CompletionModule module(graph, SmallConfig(), rng);
  VarPtr base = module.BaseFeatures();
  VarPtr completed = module.RunOp(CompletionOpType::kGcn, base);
  // author1 (degree 1) aggregates paper2 (degree 2) with weight
  // 1/sqrt(1*2); W_gcn is near-identity.
  for (int64_t j = 0; j < 2; ++j) {
    EXPECT_NEAR(completed->value.at(1, j),
                base->value.at(4, j) / std::sqrt(2.0f), 0.15);
  }
}

TEST(CompletionModuleTest, PpnpOpProducesFiniteDiffusion) {
  Rng rng(5);
  HeteroGraphPtr graph = ToyGraph();
  CompletionModule module(graph, SmallConfig(), rng);
  VarPtr base = module.BaseFeatures();
  VarPtr completed = module.RunOp(CompletionOpType::kPpnp, base);
  EXPECT_EQ(completed->value.rows(), 3);
  bool any_nonzero = false;
  for (int64_t i = 0; i < completed->value.numel(); ++i) {
    EXPECT_TRUE(std::isfinite(completed->value.data()[i]));
    any_nonzero = any_nonzero || completed->value.data()[i] != 0.0f;
  }
  EXPECT_TRUE(any_nonzero);
}

TEST(CompletionModuleTest, OneHotStartsAtZeroAndIsTrainable) {
  Rng rng(6);
  HeteroGraphPtr graph = ToyGraph();
  CompletionModule module(graph, SmallConfig(), rng);
  VarPtr base = module.BaseFeatures();
  VarPtr completed = module.RunOp(CompletionOpType::kOneHot, base);
  for (int64_t i = 0; i < completed->value.numel(); ++i) {
    EXPECT_EQ(completed->value.data()[i], 0.0f);
  }
  // Gradients flow into the embedding tables.
  std::vector<VarPtr> params = module.Parameters();
  ZeroGrads(params);
  Backward(SumSquares(AddScalar(completed, 1.0f)));
  bool embedding_touched = false;
  for (const VarPtr& p : params) {
    if (p->grad.numel() > 0) embedding_touched = true;
  }
  EXPECT_TRUE(embedding_touched);
}

TEST(CompletionModuleTest, DiscreteEqualsWeightedWithOneHotAlpha) {
  Rng rng(7);
  HeteroGraphPtr graph = ToyGraph();
  CompletionModule module(graph, SmallConfig(), rng);

  std::vector<CompletionOpType> ops = {CompletionOpType::kMean,
                                       CompletionOpType::kGcn,
                                       CompletionOpType::kOneHot};
  VarPtr discrete = module.CompleteDiscrete(ops);

  // Equivalent alpha: 3 clusters (one per missing node), one-hot rows.
  Tensor alpha(3, kNumCompletionOps);
  alpha.at(0, static_cast<int>(CompletionOpType::kMean)) = 1.0f;
  alpha.at(1, static_cast<int>(CompletionOpType::kGcn)) = 1.0f;
  alpha.at(2, static_cast<int>(CompletionOpType::kOneHot)) = 1.0f;
  VarPtr weighted = module.CompleteWeighted(MakeConst(alpha), {0, 1, 2},
                                            /*skip_zero_ops=*/false);
  ASSERT_TRUE(discrete->value.SameShape(weighted->value));
  for (int64_t i = 0; i < discrete->value.numel(); ++i) {
    EXPECT_NEAR(discrete->value.data()[i], weighted->value.data()[i], 1e-5);
  }
}

TEST(CompletionModuleTest, SkipZeroOpsSkipsUnusedColumns) {
  Rng rng(8);
  HeteroGraphPtr graph = ToyGraph();
  CompletionModule module(graph, SmallConfig(), rng);
  Tensor alpha(1, kNumCompletionOps);
  alpha.at(0, static_cast<int>(CompletionOpType::kMean)) = 1.0f;
  VarPtr with_skip = module.CompleteWeighted(MakeConst(alpha), {0, 0, 0},
                                             /*skip_zero_ops=*/true);
  VarPtr without_skip = module.CompleteWeighted(MakeConst(alpha), {0, 0, 0},
                                                /*skip_zero_ops=*/false);
  for (int64_t i = 0; i < with_skip->value.numel(); ++i) {
    EXPECT_NEAR(with_skip->value.data()[i], without_skip->value.data()[i],
                1e-5);
  }
}

TEST(CompletionModuleTest, MissingPositionsOfTypeSelectsBlock) {
  Rng rng(9);
  HeteroGraphPtr graph = ToyGraph();
  CompletionModule module(graph, SmallConfig(), rng);
  EXPECT_EQ(module.MissingPositionsOfType(0), (std::vector<int64_t>{0, 1}));
  EXPECT_EQ(module.MissingPositionsOfType(2), (std::vector<int64_t>{2}));
  EXPECT_TRUE(module.MissingPositionsOfType(1).empty());
}

TEST(CompletionOpTest, NamesAndParsing) {
  EXPECT_STREQ(CompletionOpName(CompletionOpType::kGcn), "GCN_AC");
  EXPECT_EQ(CompletionOpFromString("ppnp"), CompletionOpType::kPpnp);
  EXPECT_DEATH(CompletionOpFromString("bogus"), "unknown");
}

TEST(ProximalTest, ProxC1ProjectsRowsToOneHot) {
  Tensor alpha = Tensor::FromVector({2, 4},
                                    {0.1f, 0.9f, 0.3f, 0.2f,
                                     0.5f, 0.5f, 0.4f, 0.6f});
  Tensor projected = ProxC1(alpha);
  EXPECT_EQ(projected.at(0, 1), 1.0f);
  EXPECT_EQ(projected.at(1, 3), 1.0f);
  for (int64_t i = 0; i < 2; ++i) {
    float sum = 0;
    for (int64_t j = 0; j < 4; ++j) sum += projected.at(i, j);
    EXPECT_EQ(sum, 1.0f);  // ||row||_0 == 1 with unit mass
  }
}

TEST(ProximalTest, ProxC1IsIdempotent) {
  Tensor alpha = Tensor::FromVector({1, 4}, {0.2f, 0.7f, 0.1f, 0.0f});
  Tensor once = ProxC1(alpha);
  Tensor twice = ProxC1(once);
  for (int64_t i = 0; i < once.numel(); ++i) {
    EXPECT_EQ(once.data()[i], twice.data()[i]);
  }
}

TEST(ProximalTest, ProxC2ClampsToUnitBox) {
  Tensor alpha = Tensor::FromVector({1, 4}, {-0.5f, 0.5f, 1.5f, 1.0f});
  ProxC2(alpha);
  EXPECT_EQ(alpha.at(0, 0), 0.0f);
  EXPECT_EQ(alpha.at(0, 1), 0.5f);
  EXPECT_EQ(alpha.at(0, 2), 1.0f);
  EXPECT_EQ(alpha.at(0, 3), 1.0f);
}

TEST(ProximalTest, ArgmaxOpsMatchesProxC1) {
  Rng rng(10);
  Tensor alpha = InitCompletionParams(16, rng);
  Tensor projected = ProxC1(alpha);
  std::vector<CompletionOpType> ops = ArgmaxOps(alpha);
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_EQ(projected.at(i, static_cast<int>(ops[i])), 1.0f);
  }
}

TEST(ProximalTest, InitIsNearUniformWithJitter) {
  Rng rng(11);
  Tensor alpha = InitCompletionParams(64, rng);
  int histogram[kNumCompletionOps] = {0};
  for (CompletionOpType op : ArgmaxOps(alpha)) {
    ++histogram[static_cast<int>(op)];
  }
  // Jittered-uniform init: every operation should win some rows.
  for (int o = 0; o < kNumCompletionOps; ++o) {
    EXPECT_GT(histogram[o], 0) << "op " << o << " never initial-argmax";
  }
}

}  // namespace
}  // namespace autoac
