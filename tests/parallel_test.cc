#include "util/parallel.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <stdexcept>
#include <vector>

#include "gtest/gtest.h"

namespace autoac {
namespace {

/// Pins the pool thread count for one test and restores the default after.
class ScopedThreads {
 public:
  explicit ScopedThreads(int n) { SetNumThreads(n); }
  ~ScopedThreads() { SetNumThreads(0); }
};

TEST(ParallelForTest, EmptyRangeNeverInvokes) {
  ScopedThreads threads(4);
  std::atomic<int> calls{0};
  ParallelFor(0, 0, 1, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(5, 5, 8, [&](int64_t, int64_t) { ++calls; });
  ParallelFor(7, 3, 1, [&](int64_t, int64_t) { ++calls; });  // inverted
  EXPECT_EQ(calls.load(), 0);
}

TEST(ParallelForTest, RangeSmallerThanGrainRunsAsSingleSpan) {
  ScopedThreads threads(4);
  std::atomic<int> calls{0};
  int64_t seen_begin = -1, seen_end = -1;
  ParallelFor(3, 10, 100, [&](int64_t begin, int64_t end) {
    ++calls;
    seen_begin = begin;
    seen_end = end;
  });
  EXPECT_EQ(calls.load(), 1);
  EXPECT_EQ(seen_begin, 3);
  EXPECT_EQ(seen_end, 10);
}

TEST(ParallelForTest, SpansPartitionTheRangeExactly) {
  for (int threads : {1, 2, 3, 7}) {
    ScopedThreads scope(threads);
    for (int64_t n : {1, 2, 13, 64, 1000, 1001}) {
      for (int64_t grain : {1, 3, 64}) {
        std::vector<std::atomic<int>> hits(n);
        ParallelFor(0, n, grain, [&](int64_t begin, int64_t end) {
          ASSERT_LT(begin, end);
          for (int64_t i = begin; i < end; ++i) ++hits[i];
        });
        for (int64_t i = 0; i < n; ++i) {
          EXPECT_EQ(hits[i].load(), 1)
              << "index " << i << " n=" << n << " grain=" << grain
              << " threads=" << threads;
        }
      }
    }
  }
}

TEST(ParallelForTest, WorkerExceptionPropagatesToCaller) {
  ScopedThreads threads(4);
  EXPECT_THROW(
      ParallelFor(0, 1000, 1,
                  [&](int64_t begin, int64_t) {
                    if (begin >= 500) throw std::runtime_error("boom");
                  }),
      std::runtime_error);
  // The pool must remain usable after a failed job.
  std::atomic<int64_t> sum{0};
  ParallelFor(0, 100, 1, [&](int64_t begin, int64_t end) {
    for (int64_t i = begin; i < end; ++i) sum += i;
  });
  EXPECT_EQ(sum.load(), 4950);
}

TEST(ParallelForTest, NestedCallDegradesToSerial) {
  ScopedThreads threads(4);
  EXPECT_FALSE(InParallelRegion());
  std::atomic<int64_t> total{0};
  ParallelFor(0, 8, 1, [&](int64_t obegin, int64_t oend) {
    EXPECT_TRUE(InParallelRegion());
    for (int64_t o = obegin; o < oend; ++o) {
      // The inner call must run inline on this worker (single span covering
      // the whole range) instead of deadlocking on the shared pool.
      int inner_calls = 0;
      ParallelFor(0, 100, 1, [&](int64_t begin, int64_t end) {
        ++inner_calls;
        for (int64_t i = begin; i < end; ++i) total += 1;
      });
      EXPECT_EQ(inner_calls, 1);
    }
  });
  EXPECT_FALSE(InParallelRegion());
  EXPECT_EQ(total.load(), 800);
}

TEST(ParallelReduceTest, MatchesSerialSum) {
  ScopedThreads threads(4);
  std::vector<double> values(10007);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 0.001 * static_cast<double>(i) - 3.0;
  }
  double expected = 0.0;
  for (size_t i = 0; i < values.size(); i += 64) {
    double partial = 0.0;
    for (size_t j = i; j < std::min(i + 64, values.size()); ++j) {
      partial += values[j];
    }
    expected += partial;
  }
  double got = ParallelReduce(
      0, static_cast<int64_t>(values.size()), 64,
      [&](int64_t begin, int64_t end) {
        double partial = 0.0;
        for (int64_t i = begin; i < end; ++i) partial += values[i];
        return partial;
      });
  EXPECT_EQ(got, expected);
}

TEST(ParallelReduceTest, BitwiseIdenticalAcrossThreadCounts) {
  std::vector<double> values(4099);
  for (size_t i = 0; i < values.size(); ++i) {
    values[i] = 1.0 / (1.0 + static_cast<double>(i));
  }
  auto reduce = [&] {
    return ParallelReduce(0, static_cast<int64_t>(values.size()), 128,
                          [&](int64_t begin, int64_t end) {
                            double partial = 0.0;
                            for (int64_t i = begin; i < end; ++i) {
                              partial += values[i];
                            }
                            return partial;
                          });
  };
  SetNumThreads(1);
  double serial = reduce();
  for (int threads : {2, 3, 7}) {
    SetNumThreads(threads);
    EXPECT_EQ(reduce(), serial) << "threads=" << threads;
  }
  SetNumThreads(0);
}

TEST(ParallelConfigTest, SetNumThreadsOverridesAndResets) {
  SetNumThreads(3);
  EXPECT_EQ(NumThreads(), 3);
  SetNumThreads(1);
  EXPECT_EQ(NumThreads(), 1);
  SetNumThreads(0);  // back to AUTOAC_NUM_THREADS / hardware default
  EXPECT_GE(NumThreads(), 1);
  EXPECT_GE(HardwareConcurrency(), 1);
}

TEST(ParallelConfigTest, GrainForRowsTargetsConstantWork) {
  EXPECT_GE(GrainForRows(1), 1);
  EXPECT_EQ(GrainForRows(16384), 1);
  EXPECT_EQ(GrainForRows(1 << 30), 1);  // never below one row
  EXPECT_GT(GrainForRows(16), GrainForRows(1024));
}

}  // namespace
}  // namespace autoac
