#!/usr/bin/env bash
# Chaos smoke for the serving subsystem (DESIGN.md §13): armed fault sites
# must degrade, never break — no dropped well-formed responses, no fd
# leaks, no crashes, and counters that add up at shutdown.
#
#   1. scripts/serve_smoke.sh runs unmodified under each benign IO fault
#      site armed on every hit ('*'): partial writes (every send()
#      truncated to one byte), torn reads (every recv() split in two
#      ingest passes), delayed accepts (50 ms stall per connection). The
#      smoke's own bitwise-identity assertions prove nothing was dropped
#      or corrupted on the way through.
#   2. A CHAOS_SOAK_S-second (default 30) open-loop Poisson loadgen soak
#      at AUTOAC_NUM_THREADS=4 against a rate-limited server with all
#      four benign sites armed — including serve_mid_batch_reload, whose
#      chaos hook hot-reloads the (unchanged) artifact mid-batch; pinned
#      sessions must keep answering. Asserts: zero lost responses, every
#      rate-limited rejection carries a retry hint, the server's fd count
#      returns to its pre-soak baseline, and a clean SIGTERM audit where
#      requests == responses + shed + deadline-expired, with zero
#      write errors and a nonzero faults-injected count.
#
# serve_mutation_apply is deliberately NOT armed here: it makes a
# well-formed mutation fail by design, which serve_smoke's exact-ack
# assertions would (correctly) flag. Its containment is covered in-process
# by ChaosTest.MutationApplyFaultIsContained in tests/serving_test.cc.
#
# Usage: scripts/chaos_smoke.sh [build-dir]
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"
SOAK_S="${CHAOS_SOAK_S:-30}"
SOAK_RPS="${CHAOS_SOAK_RPS:-300}"

for site in serve_partial_write serve_torn_read serve_delayed_accept; do
  echo "=== serve_smoke under ${site}:* ==="
  AUTOAC_FAULT_INJECT="${site}:*" ./scripts/serve_smoke.sh "${BUILD_DIR}"
done

echo "=== chaos soak: ${SOAK_RPS} rps x ${SOAK_S}s, 4 worker threads ==="
cmake --build "${BUILD_DIR}" -j"$(nproc)" \
  --target autoac_run autoac_serve autoac_loadgen
RUN="${BUILD_DIR}/cli/autoac_run"
SERVE="${BUILD_DIR}/cli/autoac_serve"
LOADGEN="${BUILD_DIR}/cli/autoac_loadgen"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "${SERVER_PID}" ] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

"${RUN}" --dataset=dblp --scale=0.05 --method=onehot --seeds=1 --epochs=4 \
  --export_model="${WORK}/model.aacm" >"${WORK}/export.log" 2>&1
SOCK="${WORK}/serve.sock"

# Rate limiting sized so the soak exercises structured rejections: 4
# loadgen workers present 4 client identities at 60 rps each, so an
# offered ${SOAK_RPS} rps must shed the excess as rate_limited (every
# rejection carrying retry_after_ms) while admitted traffic is served.
AUTOAC_FAULT_INJECT='serve_partial_write:*,serve_torn_read:*,serve_delayed_accept:*,serve_mid_batch_reload:*' \
AUTOAC_NUM_THREADS=4 \
  "${SERVE}" --model="${WORK}/model.aacm" --socket="${SOCK}" \
  --max_batch=16 --batch_timeout_ms=2 \
  --rate_limit_rps=60 --rate_limit_burst=120 \
  --idle_timeout_ms=5000 --max_conns=64 \
  --metrics_out="${WORK}/serve_metrics.jsonl" \
  >"${WORK}/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "${SOCK}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FAIL: server exited before binding its socket" >&2
    cat "${WORK}/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -S "${SOCK}" ] || { echo "FAIL: socket never appeared" >&2; exit 1; }

fds_before="$(ls "/proc/${SERVER_PID}/fd" | wc -l)"

AUTOAC_NUM_THREADS=4 "${LOADGEN}" --socket="${SOCK}" \
  --rps="${SOAK_RPS}" --duration_s="${SOAK_S}" --connections=4 \
  --qos_batch_pct=25 --max_node=64 --seed=7 \
  --metrics_out="${WORK}/loadgen.jsonl" 2>&1 | tee "${WORK}/loadgen.log"

kill -0 "${SERVER_PID}" 2>/dev/null || {
  echo "FAIL: server died during the soak" >&2
  cat "${WORK}/server.log" >&2
  exit 1
}
grep -q ' lost 0,' "${WORK}/loadgen.log" || {
  echo "FAIL: the soak lost responses" >&2
  exit 1
}
# Every rejection the soak produced carried a machine-readable retry hint.
while read -r rejected with_retry; do
  if [ "${rejected}" != "${with_retry}" ]; then
    echo "FAIL: ${rejected} rejections but only ${with_retry} retry hints" >&2
    exit 1
  fi
done < <(sed -En 's/^class .*rejected ([0-9]+) \(with retry hint ([0-9]+)\).*/\1 \2/p' \
           "${WORK}/loadgen.log")
grep -q 'rate_limited=' "${WORK}/loadgen.log" || {
  echo "FAIL: the soak never hit the rate limiter (misconfigured?)" >&2
  exit 1
}

# The soak's connections are reaped: the server's fd count returns to the
# pre-soak baseline (reaping runs on the accept loop, <=100ms cadence).
fds_after=-1
for _ in $(seq 1 50); do
  fds_after="$(ls "/proc/${SERVER_PID}/fd" | wc -l)"
  [ "${fds_after}" -le "${fds_before}" ] && break
  sleep 0.1
done
if [ "${fds_after}" -gt "${fds_before}" ]; then
  echo "FAIL: server fds grew across the soak (${fds_before} -> ${fds_after})" >&2
  exit 1
fi
echo "fd check: ${fds_before} before soak, ${fds_after} after"

echo "=== SIGTERM audit ==="
kill -TERM "${SERVER_PID}"
status=0
wait "${SERVER_PID}" || status=$?
SERVER_PID=""
if [ "${status}" -ne 0 ]; then
  echo "FAIL: server exited ${status} on SIGTERM (expected 0)" >&2
  cat "${WORK}/server.log" >&2
  exit 1
fi
stats="$(grep '^shutdown:' "${WORK}/server.log")" || {
  echo "FAIL: no shutdown stats line" >&2
  cat "${WORK}/server.log" >&2
  exit 1
}
echo "${stats}"
field() { sed -En "s/.* ([0-9]+) $1.*/\1/p" <<<"${stats}"; }
requests="$(field requests,)"
responses="$(field responses,)"
shed="$(field shed,)"
expired="$(field deadline-expired,)"
faults="$(field faults-injected)"
rate_limited="$(field rate-limited,)"
if [ "${requests}" -ne "$((responses + shed + expired))" ]; then
  echo "FAIL: ${requests} requests != ${responses} responses + ${shed} shed" \
       "+ ${expired} expired" >&2
  exit 1
fi
grep -q ' 0 write-errors,' <<<"${stats}" || {
  echo "FAIL: write errors under chaos: ${stats}" >&2
  exit 1
}
if [ "${faults}" -lt 1 ]; then
  echo "FAIL: no faults injected — the chaos sites never armed" >&2
  exit 1
fi
if [ "${rate_limited}" -lt 1 ]; then
  echo "FAIL: no rate-limited rejections in the server's own count" >&2
  exit 1
fi

echo "PASS: serve_smoke x3 fault sites -> ${SOAK_S}s soak (${faults} faults" \
     "absorbed, ${rate_limited} rate-limited with retry hints, fds stable," \
     "${requests} requests = ${responses} responses + ${shed} shed +" \
     "${expired} expired)"
