#!/usr/bin/env bash
# Builds the parallel runtime under ThreadSanitizer and runs the
# parallelism tests. Usage: scripts/tsan_check.sh [build-dir]
#
# TSan serializes and slows everything ~5-15x, so only the tests that
# exercise the thread pool are run here; the full suite stays on the
# regular Release build.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-tsan}"

cmake -B "${BUILD_DIR}" -S . -DAUTOAC_TSAN=ON
cmake --build "${BUILD_DIR}" -j"$(nproc)" \
  --target parallel_test parallel_determinism_test sparse_ops_test \
           tensor_test telemetry_test compiler_test

# halt_on_error makes any data-race report fail the run loudly instead of
# being buried in test output.
export TSAN_OPTIONS="halt_on_error=1 ${TSAN_OPTIONS:-}"

# Exercise the pool at several widths, including more threads than cores.
for threads in 2 4 7; do
  echo "== TSan pass with AUTOAC_NUM_THREADS=${threads} =="
  AUTOAC_NUM_THREADS="${threads}" "${BUILD_DIR}/tests/parallel_test"
  AUTOAC_NUM_THREADS="${threads}" \
    "${BUILD_DIR}/tests/parallel_determinism_test"
  AUTOAC_NUM_THREADS="${threads}" "${BUILD_DIR}/tests/sparse_ops_test"
  AUTOAC_NUM_THREADS="${threads}" "${BUILD_DIR}/tests/tensor_test"
  # Telemetry layer: concurrent counter bumps, Emit calls, and profile
  # scopes from pool workers must be race-free.
  AUTOAC_NUM_THREADS="${threads}" "${BUILD_DIR}/tests/telemetry_test"
  # Compiled forward: fused kernels and the arena executor run on the
  # pool; the zoo identity tests exercise them at this thread count.
  AUTOAC_NUM_THREADS="${threads}" "${BUILD_DIR}/tests/compiler_test"
done

echo "TSan check passed."
