#!/usr/bin/env bash
# Builds the serialization/checkpoint layers under ASan+UBSan and runs the
# tests that parse untrusted bytes. Usage: scripts/asan_check.sh [build-dir]
#
# The byte-flip fuzz tests deliberately feed corrupted containers to the
# readers; ASan proves that every rejection path is also memory-safe (no
# overread past a truncated payload, no use of a partially-parsed state).
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build-asan}"

cmake -B "${BUILD_DIR}" -S . -DAUTOAC_ASAN=ON
cmake --build "${BUILD_DIR}" -j"$(nproc)" \
  --target serialization_test checkpoint_test telemetry_test util_test \
           compiler_test

# Any sanitizer report fails the run loudly instead of being buried in
# test output. detect_leaks needs ptrace, which some CI sandboxes deny;
# callers can override via ASAN_OPTIONS.
export ASAN_OPTIONS="abort_on_error=1 ${ASAN_OPTIONS:-}"
export UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1 ${UBSAN_OPTIONS:-}"

"${BUILD_DIR}/tests/serialization_test"
"${BUILD_DIR}/tests/checkpoint_test"
"${BUILD_DIR}/tests/telemetry_test"
"${BUILD_DIR}/tests/util_test"
# Planner fuzz + arena executor: ASan proves no fuzzed memory plan ever
# lets two live values overlap a slot or a kernel write past its arena.
"${BUILD_DIR}/tests/compiler_test"

echo "ASan+UBSan check passed."
