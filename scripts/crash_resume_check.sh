#!/usr/bin/env bash
# End-to-end crash/resume verification for the checkpoint subsystem.
# Usage: scripts/crash_resume_check.sh [build-dir]
#
# For thread counts 1 and 4:
#   1. Run the pipeline uninterrupted and record its `state digest:` line
#      (FNV-1a over final weights + searched assignment, all seeds).
#   2. Kill the process with AUTOAC_FAULT_INJECT=search_epoch:5 — a
#      simulated power loss mid-search — then --resume and require the
#      digest to match the uninterrupted run bit for bit.
#   3. Kill the process in the MIDDLE of a checkpoint write
#      (AUTOAC_FAULT_INJECT=atomic_write:2, before the rename) and require
#      --resume to recover from the previous intact checkpoint, again with
#      an identical digest.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target autoac_run
RUN="${BUILD_DIR}/cli/autoac_run"

WORK="$(mktemp -d)"
trap 'rm -rf "${WORK}"' EXIT

# Small but non-trivial: the search runs long enough to hit fault site 5
# and write several checkpoints at --checkpoint_every=2, and the scale is
# high enough that partial states exceed 1 MiB (which once tripped an
# over-eager sanity cap in ReadString).
COMMON=(--dataset=dblp --scale=0.08 --seeds=1 --epochs=12
        --search_epochs=8 --checkpoint_every=2)
FAULT_EXIT=42  # kFaultInjectExitCode

digest_of() {
  grep '^state digest:' "$1" | tail -1
}

# run_killed <log> <fault-spec> <args...> — expects the injected _exit(42).
run_killed() {
  local log="$1" fault="$2"
  shift 2
  local status=0
  AUTOAC_FAULT_INJECT="${fault}" "${RUN}" "$@" >"${log}" 2>&1 || status=$?
  if [ "${status}" -ne "${FAULT_EXIT}" ]; then
    echo "FAIL: expected fault-injected exit ${FAULT_EXIT}," \
         "got ${status} (${fault})" >&2
    cat "${log}" >&2
    exit 1
  fi
}

for threads in 1 4; do
  echo "== crash/resume pass with --num_threads=${threads} =="

  base_log="${WORK}/base-t${threads}.log"
  "${RUN}" "${COMMON[@]}" --num_threads="${threads}" >"${base_log}"
  base_digest="$(digest_of "${base_log}")"
  if [ -z "${base_digest}" ]; then
    echo "FAIL: baseline run printed no state digest" >&2
    exit 1
  fi
  echo "baseline ${base_digest}"

  for fault in search_epoch:5 atomic_write:2; do
    dir="${WORK}/ckpt-${fault%%:*}-t${threads}"
    run_killed "${WORK}/kill-${fault%%:*}-t${threads}.log" "${fault}" \
      "${COMMON[@]}" --num_threads="${threads}" --checkpoint_dir="${dir}"
    if ! ls "${dir}"/ckpt-*.aacc >/dev/null 2>&1; then
      echo "FAIL: ${fault} kill left no checkpoint in ${dir}" >&2
      exit 1
    fi

    resume_log="${WORK}/resume-${fault%%:*}-t${threads}.log"
    "${RUN}" "${COMMON[@]}" --num_threads="${threads}" \
      --checkpoint_dir="${dir}" --resume >"${resume_log}"
    resume_digest="$(digest_of "${resume_log}")"
    if [ "${resume_digest}" != "${base_digest}" ]; then
      echo "FAIL: resumed run diverged after ${fault} kill" >&2
      echo "  baseline: ${base_digest}" >&2
      echo "  resumed:  ${resume_digest}" >&2
      exit 1
    fi
    echo "${fault} kill -> resume matches baseline"
  done
done

echo "Crash/resume check passed."
