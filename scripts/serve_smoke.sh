#!/usr/bin/env bash
# End-to-end smoke test for the serving subsystem (src/serving/, DESIGN.md
# §10). Usage: scripts/serve_smoke.sh [build-dir]
#
#   1. Train a small run and export it with `autoac_run --export_model`.
#   2. Load the artifact twice more via `autoac_serve` and require the
#      printed fingerprint to be identical every time (the artifact is
#      self-validating: container CRC + content fingerprint).
#   3. Start the server on a unix socket and fire several concurrent
#      clients at it; every request must get a response line, and the
#      responses must be identical across clients (same frozen logits).
#   4. SIGTERM the server and require a cooperative shutdown: exit status
#      0, a final stats line, and request/response counters that add up.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target autoac_run autoac_serve
RUN="${BUILD_DIR}/cli/autoac_run"
SERVE="${BUILD_DIR}/cli/autoac_serve"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "${SERVER_PID}" ] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

MODEL="${WORK}/model.aacm"
SOCK="${WORK}/serve.sock"
NODES="0,1,2,3,4,5,6,7"
NUM_CLIENTS=4

echo "== export =="
"${RUN}" --dataset=dblp --scale=0.05 --method=onehot --seeds=1 --epochs=4 \
  --export_model="${MODEL}" | tee "${WORK}/export.log"
grep -q 'frozen model written to' "${WORK}/export.log"
fingerprint="$(grep -o 'fingerprint [0-9a-f]*' "${WORK}/export.log" | head -1)"

echo "== server =="
"${SERVE}" --model="${MODEL}" --socket="${SOCK}" \
  --max_batch=4 --batch_timeout_ms=2 \
  --metrics_out="${WORK}/serve_metrics.jsonl" \
  >"${WORK}/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "${SOCK}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FAIL: server exited before binding its socket" >&2
    cat "${WORK}/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -S "${SOCK}" ] || { echo "FAIL: socket never appeared" >&2; exit 1; }

# The server must report the exporter's fingerprint: same artifact, loaded
# through the full validation path.
grep -q "${fingerprint}" "${WORK}/server.log" || {
  echo "FAIL: server loaded a different fingerprint" >&2
  cat "${WORK}/server.log" >&2
  exit 1
}

echo "== ${NUM_CLIENTS} concurrent clients =="
client_pids=()
for c in $(seq 1 "${NUM_CLIENTS}"); do
  "${SERVE}" --client --socket="${SOCK}" --nodes="${NODES}" \
    >"${WORK}/client-${c}.log" 2>&1 &
  client_pids+=("$!")
done
for pid in "${client_pids[@]}"; do
  wait "${pid}" || {
    echo "FAIL: a client did not receive all its responses" >&2
    cat "${WORK}"/client-*.log >&2
    exit 1
  }
done

expected_lines=$(awk -F, '{print NF}' <<<"${NODES}")
for c in $(seq 1 "${NUM_CLIENTS}"); do
  lines="$(wc -l <"${WORK}/client-${c}.log")"
  if [ "${lines}" -ne "${expected_lines}" ]; then
    echo "FAIL: client ${c} got ${lines}/${expected_lines} responses" >&2
    exit 1
  fi
  grep -q '"error"' "${WORK}/client-${c}.log" && {
    echo "FAIL: client ${c} received an error response" >&2
    cat "${WORK}/client-${c}.log" >&2
    exit 1
  }
done

# Same frozen logits => every client saw identical labels/scores (latency
# differs per request, so strip it before comparing).
for c in $(seq 2 "${NUM_CLIENTS}"); do
  if ! diff <(sed 's/,"latency_us":[0-9]*//' "${WORK}/client-1.log") \
            <(sed 's/,"latency_us":[0-9]*//' "${WORK}/client-${c}.log"); then
    echo "FAIL: client ${c} answers differ from client 1" >&2
    exit 1
  fi
done

echo "== cooperative shutdown =="
kill -TERM "${SERVER_PID}"
status=0
wait "${SERVER_PID}" || status=$?
SERVER_PID=""
if [ "${status}" -ne 0 ]; then
  echo "FAIL: server exited ${status} on SIGTERM (expected 0)" >&2
  cat "${WORK}/server.log" >&2
  exit 1
fi
grep -q '^shutdown:' "${WORK}/server.log" || {
  echo "FAIL: no shutdown stats line" >&2
  cat "${WORK}/server.log" >&2
  exit 1
}
total=$((NUM_CLIENTS * expected_lines))
stats="$(grep '^shutdown:' "${WORK}/server.log")"
echo "${stats}"
echo "${stats}" | grep -q " ${NUM_CLIENTS} connections" || {
  echo "FAIL: expected ${NUM_CLIENTS} connections in: ${stats}" >&2
  exit 1
}
echo "${stats}" | grep -q " ${total} requests, ${total} responses" || {
  echo "FAIL: expected ${total} requests and responses in: ${stats}" >&2
  exit 1
}
# Telemetry captured per-request latencies and per-batch occupancy.
grep -q '"type":"serve_request"' "${WORK}/serve_metrics.jsonl"
grep -q '"type":"serve_batch"' "${WORK}/serve_metrics.jsonl"

echo "PASS: export -> serve -> ${NUM_CLIENTS}x${expected_lines} identical" \
     "responses -> clean shutdown"
