#!/usr/bin/env bash
# End-to-end smoke test for the serving subsystem (src/serving/, DESIGN.md
# §10). Usage: scripts/serve_smoke.sh [build-dir]
#
#   1. Train two small runs and export them with `autoac_run
#      --export_model` (different epoch counts => different fingerprints).
#   2. Load the first artifact again via `autoac_serve` and require the
#      printed fingerprint to be identical (the artifact is
#      self-validating: container CRC + content fingerprint).
#   3. Start the server on a unix socket and fire several concurrent
#      clients at it; every request must get a response line, and the
#      responses must be identical across clients (same frozen logits).
#   4. SIGTERM the server and require a cooperative shutdown: exit status
#      0, a final stats line, and request/response counters that add up.
#   5. Start a two-model server (--models=a=..,b=..); routed clients must
#      reproduce the single-model answers exactly, and the default route
#      must be model a.
#   6. SIGHUP with untouched artifacts must keep both sessions
#      (fingerprint match => "unchanged"); after overwriting artifact a
#      with b's bytes, SIGHUP must reload only a, and a's answers must
#      flip to b's.
#   7. Streaming mutations (DESIGN.md §12): replay a recorded delta feed
#      against a --enable_mutations server — partly via the startup
#      --mutation_feed, partly over the socket, with a SIGHUP reload in
#      between (unchanged fingerprint => the overlay and its deltas
#      survive). Every post-delta response, including the inductively
#      scored added node, must be bitwise identical to `autoac_serve
#      --reference`, the from-scratch re-export of the mutated graph. A
#      delta guarded by the wrong expect_fingerprint must be refused with
#      the distinct "fingerprint mismatch" error.
#   8. Quantized artifacts (DESIGN.md §14): re-export the same training run
#      with --quantize=int8, require the artifact to be materially smaller
#      with a distinct stored fingerprint (it covers the decoded content),
#      serve it next to its fp32 twin, and require the routed answers to
#      agree on top-1 labels within tolerance while the fp32 route stays
#      bitwise identical to the single-model baseline.
set -euo pipefail

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

cmake -B "${BUILD_DIR}" -S . >/dev/null
cmake --build "${BUILD_DIR}" -j"$(nproc)" --target autoac_run autoac_serve
RUN="${BUILD_DIR}/cli/autoac_run"
SERVE="${BUILD_DIR}/cli/autoac_serve"

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  if [ -n "${SERVER_PID}" ] && kill -0 "${SERVER_PID}" 2>/dev/null; then
    kill -KILL "${SERVER_PID}" 2>/dev/null || true
  fi
  rm -rf "${WORK}"
}
trap cleanup EXIT

MODEL="${WORK}/model.aacm"
MODEL2="${WORK}/model2.aacm"
SOCK="${WORK}/serve.sock"
NODES="0,1,2,3,4,5,6,7"
NUM_CLIENTS=4
strip_latency() { sed 's/,"latency_us":[0-9]*//' "$1"; }

echo "== export =="
"${RUN}" --dataset=dblp --scale=0.05 --method=onehot --seeds=1 --epochs=4 \
  --export_model="${MODEL}" | tee "${WORK}/export.log"
grep -q 'frozen model written to' "${WORK}/export.log"
fingerprint="$(grep -o 'fingerprint [0-9a-f]*' "${WORK}/export.log" | head -1)"

echo "== export second artifact =="
"${RUN}" --dataset=dblp --scale=0.05 --method=onehot --seeds=1 --epochs=6 \
  --export_model="${MODEL2}" | tee "${WORK}/export2.log"
grep -q 'frozen model written to' "${WORK}/export2.log"
fingerprint2="$(grep -o 'fingerprint [0-9a-f]*' "${WORK}/export2.log" | head -1)"
if [ "${fingerprint}" = "${fingerprint2}" ]; then
  echo "FAIL: the two exports share a fingerprint (expected distinct)" >&2
  exit 1
fi

echo "== server =="
"${SERVE}" --model="${MODEL}" --socket="${SOCK}" \
  --max_batch=4 --batch_timeout_ms=2 \
  --metrics_out="${WORK}/serve_metrics.jsonl" \
  >"${WORK}/server.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "${SOCK}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FAIL: server exited before binding its socket" >&2
    cat "${WORK}/server.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -S "${SOCK}" ] || { echo "FAIL: socket never appeared" >&2; exit 1; }

# The server must report the exporter's fingerprint: same artifact, loaded
# through the full validation path.
grep -q "${fingerprint}" "${WORK}/server.log" || {
  echo "FAIL: server loaded a different fingerprint" >&2
  cat "${WORK}/server.log" >&2
  exit 1
}

echo "== ${NUM_CLIENTS} concurrent clients =="
client_pids=()
for c in $(seq 1 "${NUM_CLIENTS}"); do
  "${SERVE}" --client --socket="${SOCK}" --nodes="${NODES}" \
    >"${WORK}/client-${c}.log" 2>&1 &
  client_pids+=("$!")
done
for pid in "${client_pids[@]}"; do
  wait "${pid}" || {
    echo "FAIL: a client did not receive all its responses" >&2
    cat "${WORK}"/client-*.log >&2
    exit 1
  }
done

expected_lines=$(awk -F, '{print NF}' <<<"${NODES}")
for c in $(seq 1 "${NUM_CLIENTS}"); do
  lines="$(wc -l <"${WORK}/client-${c}.log")"
  if [ "${lines}" -ne "${expected_lines}" ]; then
    echo "FAIL: client ${c} got ${lines}/${expected_lines} responses" >&2
    exit 1
  fi
  grep -q '"error"' "${WORK}/client-${c}.log" && {
    echo "FAIL: client ${c} received an error response" >&2
    cat "${WORK}/client-${c}.log" >&2
    exit 1
  }
done

# Same frozen logits => every client saw identical labels/scores (latency
# differs per request, so strip it before comparing).
for c in $(seq 2 "${NUM_CLIENTS}"); do
  if ! diff <(sed 's/,"latency_us":[0-9]*//' "${WORK}/client-1.log") \
            <(sed 's/,"latency_us":[0-9]*//' "${WORK}/client-${c}.log"); then
    echo "FAIL: client ${c} answers differ from client 1" >&2
    exit 1
  fi
done

echo "== cooperative shutdown =="
kill -TERM "${SERVER_PID}"
status=0
wait "${SERVER_PID}" || status=$?
SERVER_PID=""
if [ "${status}" -ne 0 ]; then
  echo "FAIL: server exited ${status} on SIGTERM (expected 0)" >&2
  cat "${WORK}/server.log" >&2
  exit 1
fi
grep -q '^shutdown:' "${WORK}/server.log" || {
  echo "FAIL: no shutdown stats line" >&2
  cat "${WORK}/server.log" >&2
  exit 1
}
total=$((NUM_CLIENTS * expected_lines))
stats="$(grep '^shutdown:' "${WORK}/server.log")"
echo "${stats}"
echo "${stats}" | grep -q " ${NUM_CLIENTS} connections" || {
  echo "FAIL: expected ${NUM_CLIENTS} connections in: ${stats}" >&2
  exit 1
}
echo "${stats}" | grep -q " ${total} requests, ${total} responses" || {
  echo "FAIL: expected ${total} requests and responses in: ${stats}" >&2
  exit 1
}
# Telemetry captured per-request latencies and per-batch occupancy.
grep -q '"type":"serve_request"' "${WORK}/serve_metrics.jsonl"
grep -q '"type":"serve_batch"' "${WORK}/serve_metrics.jsonl"

echo "== two-model server =="
# Serve private copies so overwriting one later cannot corrupt the
# originals mid-read.
ARTIFACT_A="${WORK}/a.aacm"
ARTIFACT_B="${WORK}/b.aacm"
cp "${MODEL}" "${ARTIFACT_A}"
cp "${MODEL2}" "${ARTIFACT_B}"
SOCK2="${WORK}/serve2.sock"
"${SERVE}" --models="a=${ARTIFACT_A},b=${ARTIFACT_B}" --socket="${SOCK2}" \
  --max_batch=4 --batch_timeout_ms=2 \
  >"${WORK}/server2.log" 2>&1 &
SERVER_PID=$!

for _ in $(seq 1 100); do
  [ -S "${SOCK2}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FAIL: two-model server exited before binding its socket" >&2
    cat "${WORK}/server2.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -S "${SOCK2}" ] || { echo "FAIL: socket never appeared" >&2; exit 1; }
# Both artifacts loaded under their registry names, a is the default.
grep -q "loaded a \[default\].*${fingerprint}" "${WORK}/server2.log" || {
  echo "FAIL: model a not loaded as default with its fingerprint" >&2
  cat "${WORK}/server2.log" >&2
  exit 1
}
grep -q "loaded b:.*${fingerprint2}" "${WORK}/server2.log" || {
  echo "FAIL: model b not loaded with its fingerprint" >&2
  cat "${WORK}/server2.log" >&2
  exit 1
}

echo "== routing =="
"${SERVE}" --client --socket="${SOCK2}" --nodes="${NODES}" --model_name=a \
  >"${WORK}/routed-a.log" 2>&1
"${SERVE}" --client --socket="${SOCK2}" --nodes="${NODES}" --model_name=b \
  >"${WORK}/routed-b.log" 2>&1
"${SERVE}" --client --socket="${SOCK2}" --nodes="${NODES}" \
  >"${WORK}/routed-default.log" 2>&1
# Routing to a reproduces the single-model server's answers exactly.
diff <(strip_latency "${WORK}/client-1.log") \
     <(strip_latency "${WORK}/routed-a.log") || {
  echo "FAIL: model-a answers differ from the single-model server" >&2
  exit 1
}
# Omitting "model" routes to the default (a): single-model clients keep
# working against a multi-model server.
diff <(strip_latency "${WORK}/routed-a.log") \
     <(strip_latency "${WORK}/routed-default.log") || {
  echo "FAIL: default route differs from model a" >&2
  exit 1
}
# The artifacts genuinely differ, so the routes must too.
if diff <(strip_latency "${WORK}/routed-a.log") \
        <(strip_latency "${WORK}/routed-b.log") >/dev/null; then
  echo "FAIL: models a and b answered identically (routing broken?)" >&2
  exit 1
fi

await_reloads() {  # await_reloads COUNT -- wait for the Nth reload report
  for _ in $(seq 1 50); do
    [ "$(grep -c '^reload:' "${WORK}/server2.log")" -ge "$1" ] && return 0
    sleep 0.1
  done
  echo "FAIL: SIGHUP reload $1 never reported" >&2
  cat "${WORK}/server2.log" >&2
  exit 1
}

echo "== SIGHUP with unchanged artifacts =="
kill -HUP "${SERVER_PID}"
await_reloads 1
grep -q 'reload: 0 loaded \[-\], 0 reloaded \[-\], 2 unchanged \[a,b\], 0 removed \[-\]' \
  "${WORK}/server2.log" || {
  echo "FAIL: no-op SIGHUP should keep both sessions (fingerprint match)" >&2
  cat "${WORK}/server2.log" >&2
  exit 1
}

echo "== SIGHUP after overwriting artifact a =="
cp "${ARTIFACT_B}" "${ARTIFACT_A}"
kill -HUP "${SERVER_PID}"
await_reloads 2
grep -q 'reload: 0 loaded \[-\], 1 reloaded \[a\], 1 unchanged \[b\], 0 removed \[-\]' \
  "${WORK}/server2.log" || {
  echo "FAIL: expected exactly model a to reload" >&2
  cat "${WORK}/server2.log" >&2
  exit 1
}
"${SERVE}" --client --socket="${SOCK2}" --nodes="${NODES}" --model_name=a \
  >"${WORK}/routed-a-reloaded.log" 2>&1
diff <(strip_latency "${WORK}/routed-b.log") \
     <(strip_latency "${WORK}/routed-a-reloaded.log") || {
  echo "FAIL: model a does not answer like b after the reload" >&2
  exit 1
}

echo "== two-model shutdown =="
kill -TERM "${SERVER_PID}"
status=0
wait "${SERVER_PID}" || status=$?
SERVER_PID=""
if [ "${status}" -ne 0 ]; then
  echo "FAIL: two-model server exited ${status} on SIGTERM (expected 0)" >&2
  cat "${WORK}/server2.log" >&2
  exit 1
fi
grep '^shutdown:' "${WORK}/server2.log"
total2=$((4 * expected_lines))
grep -q " ${total2} requests, ${total2} responses" \
  <(grep '^shutdown:' "${WORK}/server2.log") || {
  echo "FAIL: two-model request/response counters do not add up" >&2
  cat "${WORK}/server2.log" >&2
  exit 1
}

echo "== mutation server =="
# Fingerprints as bare hex for the expect_fingerprint guard ("fingerprint"
# prefix stripped from the export-log capture).
FP_HEX="${fingerprint#fingerprint }"
FP2_HEX="${fingerprint2#fingerprint }"
SOCK3="${WORK}/serve3.sock"
# Delta m0 rides the startup --mutation_feed; m1..m3 go over the socket.
cat >"${WORK}/feed-boot.jsonl" <<EOF
{"id": "m0", "op": "add_edge", "edge": "paper-author", "src": 0, "dst": 1}
EOF
cat >"${WORK}/feed-live-1.jsonl" <<EOF
{"id": "m1", "op": "add_node", "type": "author"}
EOF
cat >"${WORK}/feed-live-2.jsonl" <<EOF
{"id": "m2", "op": "add_edge", "edge": "paper-author", "src": 0, "dst": 3, "expect_fingerprint": "${FP_HEX}"}
{"id": "m3", "op": "remove_edge", "edge": "paper-author", "src": 0, "dst": 1}
EOF
cat "${WORK}/feed-boot.jsonl" "${WORK}/feed-live-1.jsonl" \
    "${WORK}/feed-live-2.jsonl" >"${WORK}/feed-all.jsonl"
cat >"${WORK}/feed-stale.jsonl" <<EOF
{"id": "m4", "op": "add_edge", "edge": "paper-author", "src": 0, "dst": 5, "expect_fingerprint": "${FP2_HEX}"}
EOF

"${SERVE}" --model="${MODEL}" --socket="${SOCK3}" \
  --enable_mutations --mutation_feed="${WORK}/feed-boot.jsonl" \
  --max_batch=4 --batch_timeout_ms=2 \
  --metrics_out="${WORK}/serve3_metrics.jsonl" \
  >"${WORK}/server3.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -S "${SOCK3}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FAIL: mutation server exited before binding its socket" >&2
    cat "${WORK}/server3.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -S "${SOCK3}" ] || { echo "FAIL: socket never appeared" >&2; exit 1; }
grep -q 'mutations enabled (staleness 0 ms)' "${WORK}/server3.log" || {
  echo "FAIL: server did not announce the mutation overlay" >&2
  cat "${WORK}/server3.log" >&2
  exit 1
}
grep -q 'mutation feed: 1 deltas applied' "${WORK}/server3.log" || {
  echo "FAIL: startup --mutation_feed was not replayed" >&2
  cat "${WORK}/server3.log" >&2
  exit 1
}

echo "== mutations over the socket, SIGHUP mid-feed =="
"${SERVE}" --client --socket="${SOCK3}" --feed="${WORK}/feed-live-1.jsonl" \
  >"${WORK}/acks-1.log" 2>&1 || {
  echo "FAIL: mutation client 1 did not get all its acks" >&2
  cat "${WORK}/acks-1.log" >&2
  exit 1
}
grep -q '"applied":"add_node"' "${WORK}/acks-1.log" || {
  echo "FAIL: add_node was not acknowledged" >&2
  cat "${WORK}/acks-1.log" >&2
  exit 1
}
# The ack carries the new node's type-local id: inductive scoring makes it
# addressable immediately, so probe it along with the original nodes.
NEW_NODE="$(grep -o '"node":[0-9]*' "${WORK}/acks-1.log" | head -1 | cut -d: -f2)"
[ -n "${NEW_NODE}" ] || {
  echo "FAIL: add_node ack carries no node id" >&2
  cat "${WORK}/acks-1.log" >&2
  exit 1
}
NODES_MUT="${NODES},${NEW_NODE}"

# A SIGHUP with the artifact untouched: the fingerprint matches, so the
# overlay — and the deltas already applied — must survive the reload.
kill -HUP "${SERVER_PID}"
for _ in $(seq 1 50); do
  grep -q '^reload:' "${WORK}/server3.log" && break
  sleep 0.1
done
grep -q 'reload: 0 loaded \[-\], 0 reloaded \[-\], 1 unchanged \[default\], 0 removed \[-\]' \
  "${WORK}/server3.log" || {
  echo "FAIL: mid-feed SIGHUP should keep the mutation overlay" >&2
  cat "${WORK}/server3.log" >&2
  exit 1
}

"${SERVE}" --client --socket="${SOCK3}" --feed="${WORK}/feed-live-2.jsonl" \
  >"${WORK}/acks-2.log" 2>&1 || {
  echo "FAIL: mutation client 2 did not get all its acks" >&2
  cat "${WORK}/acks-2.log" >&2
  exit 1
}
grep -q '"error"' "${WORK}/acks-2.log" && {
  echo "FAIL: post-reload deltas were rejected" >&2
  cat "${WORK}/acks-2.log" >&2
  exit 1
}
# A delta guarded by the *other* artifact's fingerprint must be refused
# with the distinct reload-race error, and must not mutate anything.
"${SERVE}" --client --socket="${SOCK3}" --feed="${WORK}/feed-stale.jsonl" \
  >"${WORK}/acks-stale.log" 2>&1 || {
  echo "FAIL: stale-fingerprint client did not get its response" >&2
  cat "${WORK}/acks-stale.log" >&2
  exit 1
}
grep -q 'fingerprint mismatch' "${WORK}/acks-stale.log" || {
  echo "FAIL: wrong expect_fingerprint not refused distinctly" >&2
  cat "${WORK}/acks-stale.log" >&2
  exit 1
}

echo "== incremental answers == from-scratch re-export =="
"${SERVE}" --client --socket="${SOCK3}" --nodes="${NODES_MUT}" \
  >"${WORK}/mutated-live.log" 2>&1 || {
  echo "FAIL: post-mutation probe failed" >&2
  cat "${WORK}/mutated-live.log" >&2
  exit 1
}
"${SERVE}" --reference --model="${MODEL}" \
  --mutation_feed="${WORK}/feed-all.jsonl" --nodes="${NODES_MUT}" \
  >"${WORK}/mutated-reference.log" 2>&1 || {
  echo "FAIL: --reference re-export failed" >&2
  cat "${WORK}/mutated-reference.log" >&2
  exit 1
}
diff <(strip_latency "${WORK}/mutated-live.log") \
     <(strip_latency "${WORK}/mutated-reference.log") || {
  echo "FAIL: incremental answers differ from the from-scratch re-export" >&2
  exit 1
}
# ... and the mutations genuinely changed the answers (else the diff above
# proved nothing): the probe of the original nodes must differ from the
# pre-mutation single-model responses.
if diff <(strip_latency "${WORK}/client-1.log") \
        <(head -n "${expected_lines}" "${WORK}/mutated-live.log" | \
          sed 's/,"latency_us":[0-9]*//') >/dev/null; then
  echo "FAIL: mutations did not change any probed answer" >&2
  exit 1
fi

echo "== mutation server shutdown =="
kill -TERM "${SERVER_PID}"
status=0
wait "${SERVER_PID}" || status=$?
SERVER_PID=""
if [ "${status}" -ne 0 ]; then
  echo "FAIL: mutation server exited ${status} on SIGTERM (expected 0)" >&2
  cat "${WORK}/server3.log" >&2
  exit 1
fi
grep '^shutdown:' "${WORK}/server3.log"
# Socket-applied deltas: m1..m3 (the boot feed and the refused m4 are not
# the batcher's). Dirty rows must be nonzero.
grep '^shutdown:' "${WORK}/server3.log" | \
  grep -Eq ' 3 mutations, [1-9][0-9]* dirty-rows' || {
  echo "FAIL: mutation counters do not add up in the shutdown line" >&2
  cat "${WORK}/server3.log" >&2
  exit 1
}
grep -q '"type":"serve_mutation"' "${WORK}/serve3_metrics.jsonl" || {
  echo "FAIL: no serve_mutation telemetry records" >&2
  exit 1
}

echo "== int8 export next to the fp32 twin =="
MODEL_I8="${WORK}/model_int8.aacm"
"${RUN}" --dataset=dblp --scale=0.05 --method=onehot --seeds=1 --epochs=4 \
  --export_model="${MODEL_I8}" --quantize=int8 | tee "${WORK}/export_i8.log"
grep -q 'encoding int8' "${WORK}/export_i8.log" || {
  echo "FAIL: int8 export did not report its encoding" >&2
  exit 1
}
fingerprint_i8="$(grep -o 'fingerprint [0-9a-f]*' "${WORK}/export_i8.log" | head -1)"
# Same training run, different payload encoding: the stored fingerprint
# covers the *decoded* content, so the quantized twin's must differ.
if [ "${fingerprint_i8}" = "${fingerprint}" ]; then
  echo "FAIL: int8 twin shares the fp32 fingerprint (expected distinct)" >&2
  exit 1
fi
f32_bytes="$(stat -c %s "${MODEL}")"
i8_bytes="$(stat -c %s "${MODEL_I8}")"
# The int8 payload must be materially smaller than the fp32 twin: at least
# 1.5x (the un-quantizable graph structure keeps the small smoke artifact
# below the 2.5x the serving-width benchmark model is gated at).
if [ $((i8_bytes * 3)) -gt $((f32_bytes * 2)) ]; then
  echo "FAIL: int8 artifact ${i8_bytes} B not 1.5x under fp32 ${f32_bytes} B" >&2
  exit 1
fi
echo "int8 artifact: ${i8_bytes} B vs fp32 ${f32_bytes} B"

echo "== quantized routing + tolerance diff =="
SOCK4="${WORK}/serve4.sock"
"${SERVE}" --models="f32=${MODEL},i8=${MODEL_I8}" --socket="${SOCK4}" \
  --max_batch=4 --batch_timeout_ms=2 \
  >"${WORK}/server4.log" 2>&1 &
SERVER_PID=$!
for _ in $(seq 1 100); do
  [ -S "${SOCK4}" ] && break
  if ! kill -0 "${SERVER_PID}" 2>/dev/null; then
    echo "FAIL: quantized server exited before binding its socket" >&2
    cat "${WORK}/server4.log" >&2
    exit 1
  fi
  sleep 0.1
done
[ -S "${SOCK4}" ] || { echo "FAIL: socket never appeared" >&2; exit 1; }
grep -q "loaded f32 \[default\].*${fingerprint}" "${WORK}/server4.log" || {
  echo "FAIL: fp32 twin not loaded as default with its fingerprint" >&2
  cat "${WORK}/server4.log" >&2
  exit 1
}
grep -q "loaded i8:.*${fingerprint_i8}" "${WORK}/server4.log" || {
  echo "FAIL: int8 twin not loaded with its stored fingerprint" >&2
  cat "${WORK}/server4.log" >&2
  exit 1
}
"${SERVE}" --client --socket="${SOCK4}" --nodes="${NODES}" --model_name=f32 \
  >"${WORK}/routed-f32.log" 2>&1
"${SERVE}" --client --socket="${SOCK4}" --nodes="${NODES}" --model_name=i8 \
  >"${WORK}/routed-i8.log" 2>&1
# The fp32 route reproduces the single-model baseline bitwise: hosting a
# quantized neighbor must not perturb the full-precision answers.
diff <(strip_latency "${WORK}/client-1.log") \
     <(strip_latency "${WORK}/routed-f32.log") || {
  echo "FAIL: fp32 route differs from the single-model baseline" >&2
  exit 1
}
grep -q '"error"' "${WORK}/routed-i8.log" && {
  echo "FAIL: int8 route returned an error response" >&2
  cat "${WORK}/routed-i8.log" >&2
  exit 1
}
# Tolerance diff: int8 dequantizes to slightly different logits, so scores
# may drift, but the top-1 labels must agree on nearly every probe.
agree="$(paste <(grep -o '"label":[0-9]*' "${WORK}/routed-f32.log") \
               <(grep -o '"label":[0-9]*' "${WORK}/routed-i8.log") \
         | awk '$1 == $2' | wc -l)"
min_agree=$((expected_lines - 1))
if [ "${agree}" -lt "${min_agree}" ]; then
  echo "FAIL: int8 top-1 labels agree on ${agree}/${expected_lines}" \
       "probes (need >= ${min_agree})" >&2
  diff <(strip_latency "${WORK}/routed-f32.log") \
       <(strip_latency "${WORK}/routed-i8.log") >&2 || true
  exit 1
fi
echo "int8 top-1 agreement: ${agree}/${expected_lines}"

echo "== quantized server shutdown =="
kill -TERM "${SERVER_PID}"
status=0
wait "${SERVER_PID}" || status=$?
SERVER_PID=""
if [ "${status}" -ne 0 ]; then
  echo "FAIL: quantized server exited ${status} on SIGTERM (expected 0)" >&2
  cat "${WORK}/server4.log" >&2
  exit 1
fi

echo "PASS: export -> serve -> ${NUM_CLIENTS}x${expected_lines} identical" \
     "responses -> clean shutdown -> two-model routing -> SIGHUP reload" \
     "-> mutation feed == from-scratch re-export (incl. mid-feed SIGHUP)" \
     "-> int8 twin smaller + top-1 within tolerance"
