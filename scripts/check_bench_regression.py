#!/usr/bin/env python3
"""Gate a micro_kernels telemetry run against the committed baseline.

Usage:
    check_bench_regression.py BENCH_kernels.json run1.jsonl [run2.jsonl ...]
        [--max-ratio 2.0]

The baseline is the checked-in BENCH_kernels.json (sweep of wall_time_ns per
benchmark per thread count). Each run file is the JSONL emitted by
`micro_kernels --metrics_out=...` ("bench" records named e.g.
"BM_MatMul/1024/2" where the last argument is the thread count, plus one
"bench_context" record).

The gate fails (exit 1) when any benchmark present in both the baseline and
a run is slower than max-ratio x its baseline wall time. It is skipped
(exit 0 with a notice) when the run hardware does not match the baseline's
hardware_note fingerprint (num_cpus): wall-time comparisons across different
machines are meaningless, per the note in BENCH_kernels.json itself.

Baselines may also carry a "loadgen" section (BENCH_serving.json): per-QoS
p99_us latencies from `autoac_loadgen --metrics_out=...` ("loadgen_class"
records). Those are gated with the same max-ratio and the same hardware
self-skip; the hardware-independent alloc gate is unaffected.

Two further hardware-independent gates (applied even on hardware mismatch,
like the alloc gate):

  "size_gate": {benchmark family: {counter: min_value}} — counters the
  benchmark attaches (artifact size ratios from BM_ArtifactBytes) must be
  at least the floor. Bytes-on-disk do not depend on the machine.

  "relative_gate": {"pairs": [{"name", "must_beat", "max_fraction"}]} —
  within one run, wall_time_ns of `name` must be below max_fraction x
  wall_time_ns of `must_beat`. Both sides come from the same machine, so
  the comparison survives hardware changes.
"""

import argparse
import json
import sys


def load_run(path):
    """Returns (context or None, {bench_name: record}, {qos: record})."""
    context = None
    benches = {}
    loadgen_classes = {}
    with open(path) as f:
        for line in f:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            if record.get("type") == "bench_context":
                context = record
            elif record.get("type") == "bench":
                benches[record["name"]] = record
            elif record.get("type") == "loadgen_class":
                loadgen_classes[record["qos"]] = record
    return context, benches, loadgen_classes


def check_alloc_gate(alloc_gate, benches, run_path, failures):
    """Applies the baseline's alloc_gate: {benchmark family: max allocs}.

    The gate reads the tensor_allocs_per_iter counter the benchmarks attach
    (heap tensor buffers per timed iteration). Unlike wall time it is
    hardware-independent, so it runs even when the hardware fingerprint
    does not match the baseline. Returns the number of comparisons made.
    """
    compared = 0
    for name, record in sorted(benches.items()):
        allocs = record.get("tensor_allocs_per_iter")
        if allocs is None:
            continue
        family = name.split("/")[0]
        max_allocs = alloc_gate.get(family)
        if max_allocs is None:
            continue
        compared += 1
        status = "FAIL" if allocs > max_allocs else "ok"
        print(f"{status:4} {name}: {allocs:.1f} tensor allocs/iter "
              f"(gate: <= {max_allocs})")
        if allocs > max_allocs:
            failures.append(
                (run_path, f"{name} allocs", f"{allocs:.1f} > {max_allocs}"))
    return compared


def check_size_gate(size_gate, benches, run_path, failures):
    """Applies {family: {counter: min_value}} floors to benchmark counters.

    Used for the artifact-footprint ratios BM_ArtifactBytes reports
    (f32 bytes over quantized bytes): hardware-independent, so it runs even
    when the hardware fingerprint does not match. Returns comparisons made.
    """
    compared = 0
    for name, record in sorted(benches.items()):
        family = name.split("/")[0]
        floors = size_gate.get(family)
        if not isinstance(floors, dict):
            continue
        for counter, floor in sorted(floors.items()):
            if counter.startswith("_"):
                continue
            value = record.get(counter)
            if value is None:
                continue
            compared += 1
            status = "FAIL" if value < floor else "ok"
            print(f"{status:4} {name} {counter}: {value:.3f} "
                  f"(gate: >= {floor})")
            if value < floor:
                failures.append(
                    (run_path, f"{name} {counter}",
                     f"{value:.3f} < {floor}"))
    return compared


def check_relative_gate(relative_gate, benches, run_path, failures):
    """Applies within-run wall-time pairs: name < max_fraction x must_beat.

    Both sides come from the same run, so the gate is hardware-independent
    and runs even on a fingerprint mismatch. Pairs whose benchmarks are not
    both present are skipped. Returns the number of comparisons made.
    """
    compared = 0
    for pair in relative_gate.get("pairs", []):
        fast = benches.get(pair.get("name"))
        slow = benches.get(pair.get("must_beat"))
        if fast is None or slow is None:
            continue
        max_fraction = pair.get("max_fraction", 1.0)
        fast_ns = fast["wall_time_ns"]
        slow_ns = slow["wall_time_ns"]
        compared += 1
        fraction = fast_ns / slow_ns
        status = "FAIL" if fraction > max_fraction else "ok"
        print(f"{status:4} {pair['name']}: {fast_ns:12.1f} ns vs "
              f"{pair['must_beat']} {slow_ns:12.1f} ns "
              f"({fraction:.4f}x, gate: <= {max_fraction}x)")
        if fraction > max_fraction:
            failures.append(
                (run_path, f"{pair['name']} vs {pair['must_beat']}",
                 f"{fraction:.4f}x > {max_fraction}x"))
    return compared


def check_loadgen_gate(loadgen_baseline, loadgen_classes, max_ratio,
                       run_path, failures):
    """Gates per-QoS loadgen p99_us against the baseline's loadgen section.

    Called only after the hardware fingerprint matched: tail latency is as
    machine-dependent as wall time. Returns the number of comparisons.
    """
    compared = 0
    classes = loadgen_baseline.get("classes", {})
    for qos, record in sorted(loadgen_classes.items()):
        base = classes.get(qos, {}).get("p99_us")
        p99 = record.get("p99_us")
        if base is None or p99 is None:
            continue
        compared += 1
        ratio = p99 / base
        status = "FAIL" if ratio > max_ratio else "ok"
        print(f"{status:4} loadgen {qos} p99: {p99:12.1f} us vs baseline "
              f"{base:12.1f} us ({ratio:.2f}x)")
        if ratio > max_ratio:
            failures.append(
                (run_path, f"loadgen {qos} p99", f"{ratio:.2f}x"))
    return compared


def baseline_lookup(baseline):
    """Flattens the sweep to {"BM_MatMul/1024/2": wall_time_ns, ...}."""
    flat = {}
    for name, data in baseline.get("sweep", {}).items():
        for threads, wall_ns in data.get("wall_time_ns", {}).items():
            flat[f"{name}/{threads}"] = wall_ns
    return flat


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("baseline")
    parser.add_argument("runs", nargs="+")
    parser.add_argument("--max-ratio", type=float, default=2.0,
                        help="fail when run wall time exceeds this multiple "
                             "of the baseline (default: 2.0)")
    args = parser.parse_args()

    with open(args.baseline) as f:
        baseline = json.load(f)
    flat_baseline = baseline_lookup(baseline)
    baseline_cpus = baseline.get("context", {}).get("num_cpus")
    alloc_gate = baseline.get("alloc_gate", {})
    size_gate = baseline.get("size_gate", {})
    relative_gate = baseline.get("relative_gate", {})

    failures = []
    compared = 0
    for run_path in args.runs:
        context, benches, loadgen_classes = load_run(run_path)
        compared += check_alloc_gate(alloc_gate, benches, run_path, failures)
        compared += check_size_gate(size_gate, benches, run_path, failures)
        compared += check_relative_gate(relative_gate, benches, run_path,
                                        failures)
        run_cpus = context.get("num_cpus") if context else None
        if baseline_cpus is not None and run_cpus != baseline_cpus:
            print(f"SKIP {run_path}: hardware mismatch with baseline "
                  f"(baseline num_cpus={baseline_cpus}, run "
                  f"num_cpus={run_cpus}); see hardware_note in "
                  f"{args.baseline} — wall-time gate not applicable "
                  f"(the allocation gate above still is).")
            continue
        if loadgen_classes:
            compared += check_loadgen_gate(baseline.get("loadgen", {}),
                                           loadgen_classes, args.max_ratio,
                                           run_path, failures)
        for name, record in sorted(benches.items()):
            wall_ns = record["wall_time_ns"]
            base_ns = flat_baseline.get(name)
            if base_ns is None:
                continue
            compared += 1
            ratio = wall_ns / base_ns
            status = "FAIL" if ratio > args.max_ratio else "ok"
            print(f"{status:4} {name}: {wall_ns:12.1f} ns vs baseline "
                  f"{base_ns:12.1f} ns ({ratio:.2f}x)")
            if ratio > args.max_ratio:
                failures.append((run_path, name, f"{ratio:.2f}x"))

    if failures:
        print(f"\n{len(failures)} gate failure(s):")
        for run_path, name, detail in failures:
            print(f"  {name} ({detail}) in {run_path}")
        return 1
    if compared:
        print(f"\nbench gate passed: {compared} comparison(s) within "
              f"{args.max_ratio}x of baseline.")
    else:
        print("\nbench gate skipped: no comparable benchmarks "
              "(hardware mismatch or disjoint benchmark sets).")
    return 0


if __name__ == "__main__":
    sys.exit(main())
