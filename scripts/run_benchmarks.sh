#!/bin/bash
# Regenerates test_output.txt and bench_output.txt: the full test suite,
# then every table/figure bench. Pass heavier budgets for paper-scale runs,
# e.g.:  scripts/run_benchmarks.sh --scale=1.0 --seeds=5 --epochs=300
set -u
cd "$(dirname "$0")/.."
FLAGS="${@:---epochs=50 --search_epochs=16 --seeds=2 --scale=0.15}"

ctest --test-dir build 2>&1 | tee test_output.txt

{
  for b in table2_node_classification table3_vs_hgnnac table4_runtime \
           table5_link_prediction table6_ablation_simplehgn \
           table7_ablation_magnn table8_discrete_constraints \
           table9_missing_rates table10_masked_edges \
           fig3_clustering_methods fig4_gmoc_convergence \
           fig5_op_distribution fig6_7_op_by_type fig8_cluster_sweep \
           fig9_lambda_sweep fig10_11_lr_wd_sweep; do
    echo "===== $b ====="
    ./build/bench/$b $FLAGS
    echo
  done
  echo "===== micro_kernels ====="
  ./build/bench/micro_kernels
} 2>&1 | tee bench_output.txt
