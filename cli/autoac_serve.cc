// autoac_serve: batched inference serving for frozen AutoAC models.
//
// Server (loads one or more artifacts, answers node-classification
// requests):
//   autoac_serve --model=dblp.aacm --socket=/tmp/autoac.sock
//   autoac_serve --models=dblp=dblp.aacm,acm=acm.aacm --port=7071
//   autoac_serve --model_dir=/models --socket=/tmp/autoac.sock
//
// Requests are newline-delimited JSON, one object per line:
//   {"id": "r1", "node": 42}
//   {"id": "r2", "node": 42, "model": "acm", "deadline_ms": 50}
// and each response echoes the id:
//   {"id":"r1","node":42,"label":3,"score":5.17,"latency_us":812}
// Omitting "model" routes to the default model (the --model artifact, the
// first --models entry, or the first *.aacm in --model_dir). A request
// still queued when its deadline_ms expires is answered with a
// {"error":"deadline exceeded"} line and never reaches the model.
//
// SIGHUP atomically re-reads the artifact set from the --models/--model_dir
// spec: in-flight requests finish against the sessions they resolved,
// new requests see the new artifacts, fingerprint-unchanged artifacts are
// not reloaded.
//
// Client (for smoke tests and quick probes; sends one request per node id
// and prints each response line):
//   autoac_serve --client --socket=/tmp/autoac.sock --nodes=0,1,2
//   autoac_serve --client --port=7071 --nodes=0,1 --model_name=acm
//
// SIGINT/SIGTERM shut the server down cooperatively: in-flight requests are
// answered, stats printed, exit status 0.

#include <sys/socket.h>
#include <sys/un.h>
#include <netinet/in.h>
#include <arpa/inet.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "graph/mutable_graph.h"
#include "serving/feed.h"
#include "serving/frozen_model.h"
#include "serving/inference_session.h"
#include "serving/model_registry.h"
#include "serving/mutable_session.h"
#include "serving/server.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/shutdown.h"
#include "util/telemetry.h"

namespace autoac {
namespace {

volatile std::sig_atomic_t g_sighup_pending = 0;

void OnSighup(int) { g_sighup_pending = 1; }

const std::vector<Flags::Spec>& FlagTable() {
  using Type = Flags::Spec::Type;
  static const std::vector<Flags::Spec> kSpecs = {
      {"help", Type::kBool},
      {"model", Type::kString},
      {"models", Type::kString},
      {"model_dir", Type::kString},
      {"socket", Type::kString},
      {"port", Type::kInt},
      {"max_batch", Type::kInt},
      {"batch_timeout_ms", Type::kInt},
      {"max_queue", Type::kInt},
      {"max_line_bytes", Type::kInt},
      {"rate_limit_rps", Type::kDouble},
      {"rate_limit_burst", Type::kDouble},
      {"idle_timeout_ms", Type::kInt},
      {"max_conns", Type::kInt},
      {"max_inflight_per_conn", Type::kInt},
      {"num_threads", Type::kInt},
      {"metrics_out", Type::kString},
      {"no_compile", Type::kBool},
      {"dump_ir", Type::kBool},
      {"enable_mutations", Type::kBool},
      {"staleness_ms", Type::kInt},
      {"mutation_feed", Type::kString},
      {"reference", Type::kBool},
      {"client", Type::kBool},
      {"nodes", Type::kString},
      {"feed", Type::kString},
      {"model_name", Type::kString},
      {"deadline_ms", Type::kInt},
      {"qos", Type::kString},
      {"client_name", Type::kString},
  };
  return kSpecs;
}

void PrintUsage() {
  std::printf(
      "usage: autoac_serve (--model=PATH | --models=NAME=PATH[,..] |\n"
      "                     --model_dir=DIR) [--socket=PATH | --port=N]\n"
      "  [--max_batch=16]        requests per inference batch\n"
      "  [--batch_timeout_ms=5]  max wait before a partial batch fires\n"
      "  [--max_queue=1024]      bounded queue; overload evicts from the\n"
      "                          connection with the most queued requests\n"
      "  [--max_line_bytes=65536] request-line bound; longer drops the\n"
      "                          connection\n"
      "  [--rate_limit_rps=0]    per-client token-bucket admission control\n"
      "                          (0 disables); identity is the request's\n"
      "                          \"client\" key, else the connection\n"
      "  [--rate_limit_burst=0]  bucket capacity (0 = max(rps, 1))\n"
      "  [--idle_timeout_ms=0]   reap connections idle this long (0 = off)\n"
      "  [--max_conns=0]         accept gate: refuse further connections\n"
      "                          with a structured max_conns line (0 = off)\n"
      "  [--max_inflight_per_conn=0] per-connection queued-request cap\n"
      "  [--num_threads=N]       forward-pass threads (0 = default)\n"
      "  [--metrics_out=PATH]    JSONL telemetry (latency, batch occupancy)\n"
      "  [--no_compile]          skip the graph compiler; run every forward\n"
      "                          through the interpreted tape-free path\n"
      "  [--dump_ir]             print each compiled model's IR + arena\n"
      "                          plan after (re)load\n"
      "  [--enable_mutations]    accept streaming graph deltas (\"op\":\n"
      "                          add_node / add_edge / remove_edge) and\n"
      "                          serve incrementally recomputed answers\n"
      "  [--staleness_ms=0]      0: every delta recomputes before its ack;\n"
      "                          >0: dirty rows may serve stale this long\n"
      "  [--mutation_feed=PATH]  replay a newline-JSON delta file into the\n"
      "                          default model at startup (implies\n"
      "                          --enable_mutations)\n"
      "requests may carry \"model\" (routes by registry name),\n"
      "\"deadline_ms\" (expired-in-queue requests get a distinct error),\n"
      "\"qos\" (interactive|batch: interactive preempts batch in the\n"
      "batcher, batch absorbs overload eviction first) and \"client\" (a\n"
      "stable admission identity); mutations may carry\n"
      "\"expect_fingerprint\" (hex; mismatch = error). Rejections are\n"
      "structured: {\"error\":..,\"reason\":..,\"retry_after_ms\":..} with\n"
      "reasons rate_limited, overloaded, inflight_limit, max_conns,\n"
      "idle_timeout.\n"
      "SIGHUP re-reads the artifact set (fingerprint-unchanged artifacts\n"
      "keep their session *and* accumulated deltas; a changed fingerprint\n"
      "discards the deltas with the old session).\n"
      "client mode (for smoke tests):\n"
      "  autoac_serve --client [--socket=PATH | --port=N] --nodes=0,1,2\n"
      "    [--feed=PATH] [--model_name=NAME] [--deadline_ms=M]\n"
      "    [--qos=interactive|batch] [--client_name=ID]\n"
      "  --feed sends the file's request lines verbatim before --nodes;\n"
      "  structured rejections (reason / retry_after_ms) are summarized on\n"
      "  stderr.\n"
      "reference mode (the from-scratch answer the incremental path must\n"
      "match bitwise):\n"
      "  autoac_serve --reference --model=PATH --nodes=0,1,2\n"
      "    [--mutation_feed=PATH]\n"
      "SIGINT/SIGTERM stop the server cooperatively (exit status 0).\n");
}

std::vector<int64_t> ParseNodeList(const std::string& csv) {
  std::vector<int64_t> nodes;
  size_t start = 0;
  while (start <= csv.size()) {
    size_t comma = csv.find(',', start);
    if (comma == std::string::npos) comma = csv.size();
    if (comma > start) {
      nodes.push_back(std::strtoll(csv.substr(start, comma - start).c_str(),
                                   nullptr, 10));
    }
    start = comma + 1;
  }
  return nodes;
}

int Connect(const std::string& unix_path, int port) {
  if (!unix_path.empty()) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Non-empty lines of a newline-JSON file. False on open failure.
bool ReadFeedLines(const std::string& path, std::vector<std::string>* lines) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) lines->push_back(line);
  }
  return true;
}

// Sends the --feed file's request lines verbatim, then one request per
// --nodes id; reads one response line per request and prints each to
// stdout. Returns 0 only when every response arrived.
int RunClient(const Flags& flags) {
  std::string unix_path = flags.GetString("socket", "");
  int port = static_cast<int>(flags.GetInt("port", 0));
  if (unix_path.empty() && port <= 0) {
    std::fprintf(stderr, "error: --client needs --socket or --port\n");
    return 64;
  }
  std::vector<int64_t> nodes = ParseNodeList(flags.GetString("nodes", ""));
  std::string feed_path = flags.GetString("feed", "");
  std::vector<std::string> feed;
  if (!feed_path.empty() && !ReadFeedLines(feed_path, &feed)) {
    std::fprintf(stderr, "error: cannot read --feed %s\n", feed_path.c_str());
    return 1;
  }
  if (nodes.empty() && feed.empty()) {
    std::fprintf(stderr, "error: --client needs --nodes=0,1,... or --feed\n");
    return 64;
  }
  std::string model_name = flags.GetString("model_name", "");
  int64_t deadline_ms = flags.GetInt("deadline_ms", -1);
  std::string qos = flags.GetString("qos", "");
  std::string client_name = flags.GetString("client_name", "");
  int fd = Connect(unix_path, port);
  if (fd < 0) {
    std::fprintf(stderr, "error: connect failed: %s\n", std::strerror(errno));
    return 1;
  }
  std::string out;
  for (const std::string& line : feed) out += line + "\n";
  for (size_t i = 0; i < nodes.size(); ++i) {
    out += "{\"id\": \"r" + std::to_string(i) + "\"";
    if (!model_name.empty()) out += ", \"model\": \"" + model_name + "\"";
    if (deadline_ms >= 0) {
      out += ", \"deadline_ms\": " + std::to_string(deadline_ms);
    }
    if (!qos.empty()) out += ", \"qos\": \"" + qos + "\"";
    if (!client_name.empty()) out += ", \"client\": \"" + client_name + "\"";
    out += ", \"node\": " + std::to_string(nodes[i]) + "}\n";
  }
  if (!SendAll(fd, out.data(), out.size())) {
    std::fprintf(stderr, "error: send failed\n");
    ::close(fd);
    return 1;
  }
  const size_t expected = feed.size() + nodes.size();
  size_t lines = 0;
  size_t rejected = 0;
  int64_t max_retry_after_ms = -1;
  std::map<std::string, int64_t> reasons;
  std::string pending;
  char buf[4096];
  while (lines < expected) {
    ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    pending.append(buf, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      std::printf("%s\n", line.c_str());
      start = nl + 1;
      ++lines;
      // Surface structured rejections: the machine-readable "reason" and
      // retry hint are for programs; a human running --client gets a
      // summary on stderr.
      size_t reason_at = line.find("\"reason\":\"");
      if (reason_at != std::string::npos) {
        ++rejected;
        size_t value = reason_at + 10;
        size_t end = line.find('"', value);
        if (end != std::string::npos) {
          ++reasons[line.substr(value, end - value)];
        }
        size_t retry_at = line.find("\"retry_after_ms\":");
        if (retry_at != std::string::npos) {
          max_retry_after_ms =
              std::max(max_retry_after_ms,
                       static_cast<int64_t>(std::strtoll(
                           line.c_str() + retry_at + 17, nullptr, 10)));
        }
      }
    }
    pending.erase(0, start);
  }
  ::close(fd);
  if (rejected > 0) {
    std::string breakdown;
    for (const auto& [reason, count] : reasons) {
      if (!breakdown.empty()) breakdown += ", ";
      breakdown += reason + "=" + std::to_string(count);
    }
    std::fprintf(stderr, "%zu rejected (%s)", rejected, breakdown.c_str());
    if (max_retry_after_ms >= 0) {
      std::fprintf(stderr, ", max retry_after_ms %lld",
                   static_cast<long long>(max_retry_after_ms));
    }
    std::fprintf(stderr, "\n");
  }
  if (lines != expected) {
    std::fprintf(stderr, "error: got %zu of %zu responses\n", lines,
                 expected);
    return 1;
  }
  return 0;
}

/// Applies one parsed mutation to a from-scratch graph replica, resolving
/// type names exactly as MutableSession does.
Status ApplyToReplica(MutableGraph* graph, const Mutation& m,
                      uint64_t fingerprint) {
  if (m.expect_fingerprint != 0 && m.expect_fingerprint != fingerprint) {
    return Status::Error("fingerprint mismatch");
  }
  switch (m.kind) {
    case Mutation::Kind::kAddNode: {
      StatusOr<int64_t> type = graph->NodeTypeIdOf(m.node_type);
      if (!type.ok()) return type.status();
      StatusOr<int64_t> local = graph->AddNode(type.value(), m.attributes);
      return local.ok() ? Status::Ok() : local.status();
    }
    case Mutation::Kind::kAddEdge:
    case Mutation::Kind::kRemoveEdge: {
      StatusOr<int64_t> type = graph->EdgeTypeIdOf(m.edge_type);
      if (!type.ok()) return type.status();
      return m.kind == Mutation::Kind::kAddEdge
                 ? graph->AddEdge(type.value(), m.src, m.dst)
                 : graph->RemoveEdge(type.value(), m.src, m.dst);
    }
  }
  return Status::Error("unreachable");
}

// --reference: the from-scratch answer sheet. Loads the artifact, applies
// the --mutation_feed deltas to a plain graph replica, re-freezes the model
// on the mutated graph (RefreezeWithGraph — a full re-export, no
// incremental machinery), and prints one response line per --nodes id in
// the client's output format (latency 0). The mutation-smoke CI job diffs
// a live incremental server against this bitwise.
int RunReference(const Flags& flags) {
  const std::string model_path = flags.GetString("model", "");
  if (model_path.empty()) {
    std::fprintf(stderr, "error: --reference needs --model=PATH\n");
    return 64;
  }
  std::vector<int64_t> nodes = ParseNodeList(flags.GetString("nodes", ""));
  if (nodes.empty()) {
    std::fprintf(stderr, "error: --reference needs --nodes=0,1,...\n");
    return 64;
  }
  StatusOr<FrozenModel> loaded = LoadFrozenModel(model_path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
    return 1;
  }
  FrozenModel frozen = loaded.TakeValue();
  MutableGraph replica(frozen.graph);
  const std::string feed_path = flags.GetString("mutation_feed", "");
  if (!feed_path.empty()) {
    std::vector<std::string> feed;
    if (!ReadFeedLines(feed_path, &feed)) {
      std::fprintf(stderr, "error: cannot read --mutation_feed %s\n",
                   feed_path.c_str());
      return 1;
    }
    for (size_t i = 0; i < feed.size(); ++i) {
      ServeRequest request;
      std::string error;
      if (!ParseServeRequestLine(feed[i], &request, &error)) {
        std::fprintf(stderr, "error: mutation feed line %zu: %s\n", i + 1,
                     error.c_str());
        return 1;
      }
      if (!request.is_mutation) {
        std::fprintf(stderr,
                     "error: mutation feed line %zu is not a mutation\n",
                     i + 1);
        return 1;
      }
      Status applied =
          ApplyToReplica(&replica, request.mutation, frozen.fingerprint);
      if (!applied.ok()) {
        std::fprintf(stderr, "error: mutation feed line %zu: %s\n", i + 1,
                     applied.message().c_str());
        return 1;
      }
    }
  }
  HeteroGraphPtr mutated = replica.Compact();
  std::vector<CompletionOpType> op_of = ExtendOpAssignment(frozen, *mutated);
  StatusOr<FrozenModel> refrozen = RefreezeWithGraph(frozen, mutated, op_of);
  if (!refrozen.ok()) {
    std::fprintf(stderr, "error: %s\n", refrozen.status().message().c_str());
    return 1;
  }
  InferenceSession::Options session_options;
  session_options.compile = false;
  InferenceSession session(refrozen.TakeValue(), session_options);
  for (size_t i = 0; i < nodes.size(); ++i) {
    StatusOr<InferenceSession::Prediction> p = session.Predict(nodes[i]);
    if (!p.ok()) {
      std::fprintf(stderr, "error: node %lld: %s\n",
                   static_cast<long long>(nodes[i]),
                   p.status().message().c_str());
      return 1;
    }
    std::fputs(
        FormatServeResponse("r" + std::to_string(i), p.value(), 0).c_str(),
        stdout);
  }
  return 0;
}

void PrintModelTable(const ModelRegistry& registry) {
  for (const ModelRegistry::ModelInfo& info : registry.Models()) {
    std::printf("loaded %s%s: %s (%s, fingerprint %016llx)\n",
                info.name.c_str(), info.is_default ? " [default]" : "",
                info.path.c_str(), info.arch.c_str(),
                static_cast<unsigned long long>(info.fingerprint));
  }
}

/// --dump_ir: per hosted model, the compiled IR listing + arena plan, or a
/// note when the session runs interpreted (--no_compile, or the capture had
/// an op without a replay kernel).
void DumpCompiledIr(const ModelRegistry& registry) {
  for (const ModelRegistry::ModelInfo& info : registry.Models()) {
    std::shared_ptr<InferenceSession> session = registry.Lookup(info.name);
    if (session == nullptr) continue;
    const compiler::CompiledGraph* compiled = session->compiled_graph();
    if (compiled == nullptr) {
      std::printf("--- %s: not compiled (interpreted forward) ---\n",
                  info.name.c_str());
      continue;
    }
    std::printf("--- %s: compiled forward ---\n%s", info.name.c_str(),
                compiled->Dump().c_str());
  }
  std::fflush(stdout);
}

/// Returns false when the reload failed (the serving set is unchanged);
/// the caller counts it into ServeStats::reload_failures.
bool HandleSighupReload(ModelRegistry* registry, bool dump_ir) {
  std::printf("SIGHUP: re-reading artifact set\n");
  StatusOr<ModelRegistry::ReloadReport> report = registry->Reload();
  if (!report.ok()) {
    // A failed reload leaves the current serving set untouched.
    std::fprintf(stderr, "reload failed (serving set unchanged): %s\n",
                 report.status().message().c_str());
    std::fflush(stderr);
    return false;
  }
  auto join = [](const std::vector<std::string>& names) {
    std::string joined;
    for (const std::string& name : names) {
      if (!joined.empty()) joined += ",";
      joined += name;
    }
    return joined.empty() ? std::string("-") : joined;
  };
  const ModelRegistry::ReloadReport& r = report.value();
  std::printf(
      "reload: %zu loaded [%s], %zu reloaded [%s], %zu unchanged [%s], "
      "%zu removed [%s]\n",
      r.loaded.size(), join(r.loaded).c_str(), r.reloaded.size(),
      join(r.reloaded).c_str(), r.unchanged.size(),
      join(r.unchanged).c_str(), r.removed.size(), join(r.removed).c_str());
  PrintModelTable(*registry);
  std::fflush(stdout);
  if (dump_ir) DumpCompiledIr(*registry);
  return true;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::vector<std::string> problems = flags.Validate(FlagTable());
  const bool client = flags.GetBool("client", false);
  const bool help = flags.GetBool("help", false);
  const std::string model_path = flags.GetString("model", "");
  const std::string models_spec = flags.GetString("models", "");
  const std::string model_dir = flags.GetString("model_dir", "");
  int specs_given = (model_path.empty() ? 0 : 1) +
                    (models_spec.empty() ? 0 : 1) +
                    (model_dir.empty() ? 0 : 1);
  if (!client && !help && specs_given != 1) {
    problems.push_back(
        "exactly one of --model, --models, --model_dir is required");
  }
  if (!problems.empty()) {
    for (const std::string& p : problems) {
      std::fprintf(stderr, "error: %s\n", p.c_str());
    }
    std::fprintf(stderr, "run with --help for usage\n");
    return 64;  // EX_USAGE
  }
  if (help) {
    PrintUsage();
    return 0;
  }
  if (client) return RunClient(flags);
  if (flags.GetBool("reference", false)) return RunReference(flags);

  InstallShutdownHandler();
  std::signal(SIGHUP, OnSighup);
  SetNumThreads(static_cast<int>(flags.GetInt("num_threads", 0)));
  InitTelemetryFromFlag(flags.GetString("metrics_out", ""));

  ModelRegistry registry;
  InferenceSession::Options session_options;
  session_options.compile = !flags.GetBool("no_compile", false);
  registry.set_session_options(session_options);
  const std::string mutation_feed = flags.GetString("mutation_feed", "");
  const bool enable_mutations =
      flags.GetBool("enable_mutations", false) || !mutation_feed.empty();
  const int64_t staleness_ms = flags.GetInt("staleness_ms", 0);
  registry.set_mutation_options(enable_mutations, staleness_ms);
  const bool dump_ir = flags.GetBool("dump_ir", false);
  // Single-artifact mode is multi-model mode with one entry named
  // "default"; the wire protocol is unchanged (requests without "model"
  // route to it).
  Status loaded = registry.LoadFromSpec(
      model_path.empty() ? models_spec : "default=" + model_path, model_dir);
  if (!loaded.ok()) {
    std::fprintf(stderr, "error: %s\n", loaded.message().c_str());
    return 1;
  }
  PrintModelTable(registry);
  if (dump_ir) DumpCompiledIr(registry);
  {
    std::shared_ptr<InferenceSession> session = registry.Lookup("");
    std::printf("serving %lld models; default \"%s\": %lld target nodes, "
                "%lld classes\n",
                static_cast<long long>(registry.size()),
                registry.default_model().c_str(),
                static_cast<long long>(session->num_targets()),
                static_cast<long long>(session->num_classes()));
  }
  if (enable_mutations) {
    std::printf("mutations enabled (staleness %lld ms)\n",
                static_cast<long long>(staleness_ms));
  }
  int64_t feed_skipped = 0;
  if (!mutation_feed.empty()) {
    std::vector<std::string> feed;
    if (!ReadFeedLines(mutation_feed, &feed)) {
      std::fprintf(stderr, "error: cannot read --mutation_feed %s\n",
                   mutation_feed.c_str());
      return 1;
    }
    // Bad lines are skipped and counted, never fatal: the server must come
    // up on the well-formed remainder of its feed.
    FeedReplayReport report = ReplayMutationFeed(&registry, feed);
    feed_skipped = report.skipped;
    for (const std::string& why : report.errors) {
      std::fprintf(stderr, "warning: mutation feed %s (skipped)\n",
                   why.c_str());
    }
    if (report.skipped >
        static_cast<int64_t>(report.errors.size())) {
      std::fprintf(stderr, "warning: mutation feed: %lld further skips\n",
                   static_cast<long long>(
                       report.skipped -
                       static_cast<int64_t>(report.errors.size())));
    }
    std::printf(
        "mutation feed: %lld deltas applied, %lld skipped "
        "(%lld rows dirtied)\n",
        static_cast<long long>(report.applied),
        static_cast<long long>(report.skipped),
        static_cast<long long>(report.dirty_rows));
  }

  ServerOptions options;
  options.unix_path = flags.GetString("socket", "");
  options.tcp_port = static_cast<int>(flags.GetInt("port", 0));
  if (options.unix_path.empty() && !flags.Has("port")) {
    std::fprintf(stderr, "error: need --socket or --port\n");
    return 64;
  }
  options.max_batch = flags.GetInt("max_batch", options.max_batch);
  options.batch_timeout_ms =
      flags.GetInt("batch_timeout_ms", options.batch_timeout_ms);
  options.max_queue = flags.GetInt("max_queue", options.max_queue);
  options.max_line_bytes =
      flags.GetInt("max_line_bytes", options.max_line_bytes);
  options.rate_limit_rps = flags.GetDouble("rate_limit_rps", 0.0);
  options.rate_limit_burst = flags.GetDouble("rate_limit_burst", 0.0);
  options.idle_timeout_ms = flags.GetInt("idle_timeout_ms", 0);
  options.max_conns = flags.GetInt("max_conns", 0);
  options.max_inflight_per_conn = flags.GetInt("max_inflight_per_conn", 0);
  // The hooks capture the server pointer by reference: the server does not
  // exist until the options are consumed, and a failed reload must be
  // counted on it.
  InferenceServer* server_ptr = nullptr;
  options.poll_hook = [&registry, &server_ptr, dump_ir] {
    if (!g_sighup_pending) return;
    g_sighup_pending = 0;
    if (!HandleSighupReload(&registry, dump_ir) && server_ptr != nullptr) {
      server_ptr->NoteReloadFailure();
    }
  };
  options.chaos_reload_hook = [&registry, &server_ptr] {
    // Forced mid-batch reload (chaos site serve_mid_batch_reload): same
    // all-or-nothing registry swap the SIGHUP path runs, without waiting
    // for a signal.
    StatusOr<ModelRegistry::ReloadReport> report = registry.Reload();
    if (!report.ok() && server_ptr != nullptr) {
      server_ptr->NoteReloadFailure();
    }
  };

  InferenceServer server(&registry, options);
  server_ptr = &server;
  Status started = server.Start();
  if (!started.ok()) {
    std::fprintf(stderr, "error: %s\n", started.message().c_str());
    return 1;
  }
  if (!options.unix_path.empty()) {
    std::printf("listening on %s\n", options.unix_path.c_str());
  } else {
    std::printf("listening on 127.0.0.1:%d\n", server.port());
  }
  std::fflush(stdout);
  server.Serve();

  ServeStats stats = server.stats();
  double occupancy =
      stats.batches > 0
          ? static_cast<double>(stats.batched_requests) /
                (static_cast<double>(stats.batches) *
                 static_cast<double>(options.max_batch))
          : 0.0;
  std::printf(
      "shutdown: %lld connections, %lld requests, %lld responses, "
      "%lld malformed, %lld unknown-model, %lld overlong, %lld shed, "
      "%lld deadline-expired, %lld write-errors, %lld mutations, "
      "%lld dirty-rows, %lld partial-rows, %lld batches "
      "(occupancy %.2f), %lld rate-limited, %lld idle-closed, "
      "%lld conns-refused, %lld inflight-rejected, %lld reload-failures, "
      "%lld feed-skipped, %lld faults-injected\n",
      static_cast<long long>(stats.connections),
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.responses),
      static_cast<long long>(stats.malformed),
      static_cast<long long>(stats.unknown_model),
      static_cast<long long>(stats.overlong_lines),
      static_cast<long long>(stats.shed),
      static_cast<long long>(stats.deadline_expired),
      static_cast<long long>(stats.write_errors),
      static_cast<long long>(stats.mutations_applied),
      static_cast<long long>(stats.dirty_rows),
      static_cast<long long>(stats.partial_forward_rows),
      static_cast<long long>(stats.batches), occupancy,
      static_cast<long long>(stats.rate_limited),
      static_cast<long long>(stats.idle_closed),
      static_cast<long long>(stats.conns_refused),
      static_cast<long long>(stats.inflight_rejected),
      static_cast<long long>(stats.reload_failures),
      static_cast<long long>(feed_skipped),
      static_cast<long long>(stats.faults_injected));
  return 0;
}

}  // namespace
}  // namespace autoac

int main(int argc, char** argv) {
  int rc = autoac::Run(argc, argv);
  autoac::ShutdownTelemetry();
  return rc;
}
