// autoac_loadgen: open-loop load generator for autoac_serve (DESIGN.md §13).
//
//   autoac_loadgen --socket=/tmp/autoac.sock --rps=200 --duration_s=10 \
//     --connections=4 --qos_batch_pct=50 --max_node=64 \
//     --metrics_out=loadgen.jsonl
//
// Open-loop means arrivals follow a Poisson process (exponential
// inter-arrival times from a seeded RNG) and are sent at their scheduled
// times whether or not earlier responses have arrived — the generator
// never waits on the server, so a slow server faces the full offered load
// instead of a politely backing-off one. Latency is measured from the
// *scheduled* arrival, not the actual send, so queueing delay inside the
// generator counts against the server (no coordinated omission).
//
// Each request carries a "qos" class (batch with probability
// --qos_batch_pct, interactive otherwise) and a per-connection "client"
// identity. Per-class latency percentiles (p50/p95/p99 over successful
// responses) and rejection counts (by structured "reason", noting
// retry_after_ms hints) are printed and, with --metrics_out, emitted as
// telemetry JSONL: one "bench_context" record (hardware fingerprint for
// the regression gate's self-skip), one "loadgen_class" record per class,
// and one "loadgen" total. scripts/check_bench_regression.py gates the
// per-class p99 against BENCH_serving.json.
//
// Exit status: 0 when the run completed and at least one response arrived;
// 1 on connect failure or a silent server.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "serving/server.h"
#include "util/flags.h"
#include "util/parallel.h"
#include "util/rng.h"
#include "util/telemetry.h"

namespace autoac {
namespace {

const std::vector<Flags::Spec>& FlagTable() {
  using Type = Flags::Spec::Type;
  static const std::vector<Flags::Spec> kSpecs = {
      {"help", Type::kBool},
      {"socket", Type::kString},
      {"port", Type::kInt},
      {"rps", Type::kDouble},
      {"duration_s", Type::kDouble},
      {"connections", Type::kInt},
      {"qos_batch_pct", Type::kInt},
      {"max_node", Type::kInt},
      {"model_name", Type::kString},
      {"deadline_ms", Type::kInt},
      {"seed", Type::kInt},
      {"grace_ms", Type::kInt},
      {"metrics_out", Type::kString},
  };
  return kSpecs;
}

void PrintUsage() {
  std::printf(
      "usage: autoac_loadgen (--socket=PATH | --port=N)\n"
      "  [--rps=200]          total offered load, Poisson arrivals\n"
      "  [--duration_s=10]    send window (responses drain in the grace\n"
      "                       period after it)\n"
      "  [--connections=4]    connections, each an independent open loop\n"
      "                       offering rps/connections\n"
      "  [--qos_batch_pct=0]  percent of requests tagged \"qos\":\"batch\"\n"
      "  [--max_node=64]      node ids sampled uniformly from [0, N)\n"
      "  [--model_name=NAME]  route requests to a named model\n"
      "  [--deadline_ms=M]    attach a deadline to every request\n"
      "  [--seed=42]          RNG seed (arrivals, nodes, classes)\n"
      "  [--grace_ms=2000]    wait for stragglers after the send window\n"
      "  [--metrics_out=PATH] telemetry JSONL (bench_context +\n"
      "                       loadgen_class records for the bench gate)\n");
}

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

int Connect(const std::string& unix_path, int port) {
  if (!unix_path.empty()) {
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) return -1;
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    std::strncpy(addr.sun_path, unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
        0) {
      ::close(fd);
      return -1;
    }
    return fd;
  }
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

constexpr int kNumClasses = 2;  // 0 = interactive, 1 = batch

const char* ClassName(int c) { return c == 0 ? "interactive" : "batch"; }

struct WorkerConfig {
  std::string unix_path;
  int port = 0;
  double rate_rps = 0.0;  // this connection's share
  int64_t duration_us = 0;
  int64_t grace_us = 0;
  int batch_pct = 0;
  int64_t max_node = 64;
  std::string model_name;
  int64_t deadline_ms = -1;
  uint64_t seed = 42;
};

struct WorkerResult {
  bool connected = false;
  int64_t sent = 0;
  int64_t lost = 0;  // never answered within the grace period
  /// Successful-response latencies (us, from scheduled arrival), per class.
  std::vector<int64_t> latencies[kNumClasses];
  int64_t ok[kNumClasses] = {0, 0};
  int64_t rejected[kNumClasses] = {0, 0};
  int64_t rejected_with_retry[kNumClasses] = {0, 0};
  std::map<std::string, int64_t> reject_reasons;
  int64_t errors_other = 0;  // error lines without a structured reason
};

/// One open-loop connection: sends at scheduled Poisson arrivals, drains
/// responses as they come, never blocks sending on receiving.
void RunWorker(int tid, const WorkerConfig& cfg, WorkerResult* out) {
  int fd = Connect(cfg.unix_path, cfg.port);
  if (fd < 0) return;
  out->connected = true;
  Rng rng(cfg.seed + static_cast<uint64_t>(tid) * 1000003);

  std::vector<int64_t> scheduled_us;  // per seq
  std::vector<uint8_t> class_of;      // per seq
  std::vector<uint8_t> answered;      // per seq

  const int64_t start_us = NowMicros();
  const int64_t end_us = start_us + cfg.duration_us;
  auto next_gap = [&]() {
    // Exponential inter-arrival: -ln(U)/rate, U in (0, 1].
    double u = 1.0 - rng.Uniform();
    return static_cast<int64_t>(-std::log(u) / cfg.rate_rps * 1e6);
  };
  int64_t next_us = start_us + next_gap();
  int64_t outstanding = 0;
  std::string pending;
  char buf[4096];
  bool peer_gone = false;

  auto drain = [&]() {
    for (;;) {
      ssize_t n = ::recv(fd, buf, sizeof(buf), MSG_DONTWAIT);
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) return;
      if (n < 0 && errno == EINTR) continue;
      if (n <= 0) {
        peer_gone = true;
        return;
      }
      int64_t now = NowMicros();
      pending.append(buf, static_cast<size_t>(n));
      size_t at = 0;
      for (size_t nl = pending.find('\n', at); nl != std::string::npos;
           nl = pending.find('\n', at)) {
        std::string line = pending.substr(at, nl - at);
        at = nl + 1;
        // Ids are "t<tid>-<seq>"; anything else (e.g. an idle-timeout
        // notice with an empty id) is not one of ours.
        size_t id_at = line.find("\"id\":\"t");
        if (id_at == std::string::npos) continue;
        size_t dash = line.find('-', id_at);
        if (dash == std::string::npos) continue;
        int64_t seq = std::strtoll(line.c_str() + dash + 1, nullptr, 10);
        if (seq < 0 || seq >= static_cast<int64_t>(scheduled_us.size()) ||
            answered[seq]) {
          continue;
        }
        answered[seq] = 1;
        --outstanding;
        int cls = class_of[seq];
        if (line.find("\"error\":") == std::string::npos) {
          ++out->ok[cls];
          out->latencies[cls].push_back(now - scheduled_us[seq]);
          continue;
        }
        size_t reason_at = line.find("\"reason\":\"");
        if (reason_at == std::string::npos) {
          ++out->errors_other;
          continue;
        }
        ++out->rejected[cls];
        size_t value = reason_at + 10;
        size_t end = line.find('"', value);
        if (end != std::string::npos) {
          ++out->reject_reasons[line.substr(value, end - value)];
        }
        if (line.find("\"retry_after_ms\":") != std::string::npos) {
          ++out->rejected_with_retry[cls];
        }
      }
      pending.erase(0, at);
    }
  };

  while (!peer_gone) {
    int64_t now = NowMicros();
    bool sending = now < end_us;
    if (!sending && (outstanding == 0 || now >= end_us + cfg.grace_us)) {
      break;
    }
    int64_t wake = sending ? std::min(next_us, end_us)
                           : end_us + cfg.grace_us;
    int timeout_ms = static_cast<int>(
        std::min<int64_t>(50, std::max<int64_t>(0, (wake - now) / 1000)));
    pollfd pfd{fd, POLLIN, 0};
    ::poll(&pfd, 1, timeout_ms);
    drain();
    if (peer_gone) break;
    now = NowMicros();
    // Send every arrival whose scheduled time has passed — when the
    // generator fell behind, the backlog goes out as a burst, exactly
    // what an open-loop source does.
    while (now < end_us && next_us <= now) {
      int cls = rng.UniformInt(1, 100) <= cfg.batch_pct ? 1 : 0;
      int64_t seq = static_cast<int64_t>(scheduled_us.size());
      scheduled_us.push_back(next_us);
      class_of.push_back(static_cast<uint8_t>(cls));
      answered.push_back(0);
      std::string req = "{\"id\":\"t" + std::to_string(tid) + "-" +
                        std::to_string(seq) + "\",\"qos\":\"" +
                        ClassName(cls) + "\",\"client\":\"loadgen-t" +
                        std::to_string(tid) + "\"";
      if (!cfg.model_name.empty()) {
        req += ",\"model\":\"" + cfg.model_name + "\"";
      }
      if (cfg.deadline_ms >= 0) {
        req += ",\"deadline_ms\":" + std::to_string(cfg.deadline_ms);
      }
      req += ",\"node\":" +
             std::to_string(rng.UniformInt(0, cfg.max_node - 1)) + "}\n";
      if (!SendAll(fd, req.data(), req.size())) {
        peer_gone = true;
        break;
      }
      ++out->sent;
      ++outstanding;
      next_us += next_gap();
      now = NowMicros();
    }
  }
  out->lost = outstanding;
  ::close(fd);
}

int64_t Percentile(const std::vector<int64_t>& sorted, double p) {
  if (sorted.empty()) return -1;
  size_t idx = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(sorted.size())));
  idx = idx > 0 ? idx - 1 : 0;
  return sorted[std::min(idx, sorted.size() - 1)];
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::vector<std::string> problems = flags.Validate(FlagTable());
  if (!problems.empty()) {
    for (const std::string& p : problems) {
      std::fprintf(stderr, "error: %s\n", p.c_str());
    }
    std::fprintf(stderr, "run with --help for usage\n");
    return 64;
  }
  if (flags.GetBool("help", false)) {
    PrintUsage();
    return 0;
  }
  const std::string unix_path = flags.GetString("socket", "");
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (unix_path.empty() && port <= 0) {
    std::fprintf(stderr, "error: need --socket or --port\n");
    return 64;
  }
  const double rps = flags.GetDouble("rps", 200.0);
  const double duration_s = flags.GetDouble("duration_s", 10.0);
  const int connections =
      std::max(1, static_cast<int>(flags.GetInt("connections", 4)));
  const int batch_pct = static_cast<int>(
      std::min<int64_t>(100, std::max<int64_t>(0,
          flags.GetInt("qos_batch_pct", 0))));
  if (rps <= 0.0 || duration_s <= 0.0) {
    std::fprintf(stderr, "error: --rps and --duration_s must be positive\n");
    return 64;
  }
  InitTelemetryFromFlag(flags.GetString("metrics_out", ""));

  WorkerConfig cfg;
  cfg.unix_path = unix_path;
  cfg.port = port;
  cfg.rate_rps = rps / connections;
  cfg.duration_us = static_cast<int64_t>(duration_s * 1e6);
  cfg.grace_us = flags.GetInt("grace_ms", 2000) * 1000;
  cfg.batch_pct = batch_pct;
  cfg.max_node = std::max<int64_t>(1, flags.GetInt("max_node", 64));
  cfg.model_name = flags.GetString("model_name", "");
  cfg.deadline_ms = flags.GetInt("deadline_ms", -1);
  cfg.seed = static_cast<uint64_t>(flags.GetInt("seed", 42));

  std::printf("loadgen: %.1f rps x %.1f s over %d connection(s), "
              "%d%% batch, nodes [0, %lld)\n",
              rps, duration_s, connections, batch_pct,
              static_cast<long long>(cfg.max_node));
  std::fflush(stdout);

  const int64_t wall_start_us = NowMicros();
  std::vector<WorkerResult> results(connections);
  std::vector<std::thread> threads;
  threads.reserve(connections);
  for (int t = 0; t < connections; ++t) {
    threads.emplace_back(RunWorker, t, std::cref(cfg), &results[t]);
  }
  for (std::thread& t : threads) t.join();
  const double wall_s =
      static_cast<double>(NowMicros() - wall_start_us) / 1e6;

  int connected = 0;
  int64_t sent = 0, lost = 0, errors_other = 0;
  int64_t ok[kNumClasses] = {0, 0};
  int64_t rejected[kNumClasses] = {0, 0};
  int64_t rejected_with_retry[kNumClasses] = {0, 0};
  std::vector<int64_t> latencies[kNumClasses];
  std::map<std::string, int64_t> reject_reasons;
  for (const WorkerResult& r : results) {
    connected += r.connected ? 1 : 0;
    sent += r.sent;
    lost += r.lost;
    errors_other += r.errors_other;
    for (int c = 0; c < kNumClasses; ++c) {
      ok[c] += r.ok[c];
      rejected[c] += r.rejected[c];
      rejected_with_retry[c] += r.rejected_with_retry[c];
      latencies[c].insert(latencies[c].end(), r.latencies[c].begin(),
                          r.latencies[c].end());
    }
    for (const auto& [reason, count] : r.reject_reasons) {
      reject_reasons[reason] += count;
    }
  }
  if (connected == 0) {
    std::fprintf(stderr, "error: no connection could be established\n");
    return 1;
  }

  if (Telemetry::Enabled()) {
    Telemetry::Get().Emit(
        MetricRecord("bench_context")
            .Add("num_cpus", static_cast<int64_t>(
                                 std::thread::hardware_concurrency()))
            .Add("num_threads_env", static_cast<int64_t>(NumThreads())));
  }
  int64_t total_ok = 0, total_rejected = 0;
  for (int c = 0; c < kNumClasses; ++c) {
    std::sort(latencies[c].begin(), latencies[c].end());
    int64_t p50 = Percentile(latencies[c], 50.0);
    int64_t p95 = Percentile(latencies[c], 95.0);
    int64_t p99 = Percentile(latencies[c], 99.0);
    total_ok += ok[c];
    total_rejected += rejected[c];
    int64_t class_sent = ok[c] + rejected[c];
    if (class_sent == 0 && latencies[c].empty()) continue;
    std::printf(
        "class %s: ok %lld, rejected %lld (with retry hint %lld), "
        "p50 %lld us, p95 %lld us, p99 %lld us\n",
        ClassName(c), static_cast<long long>(ok[c]),
        static_cast<long long>(rejected[c]),
        static_cast<long long>(rejected_with_retry[c]),
        static_cast<long long>(p50), static_cast<long long>(p95),
        static_cast<long long>(p99));
    if (Telemetry::Enabled()) {
      Telemetry::Get().Emit(MetricRecord("loadgen_class")
                                .Add("qos", ClassName(c))
                                .Add("ok", ok[c])
                                .Add("rejected", rejected[c])
                                .Add("rejected_with_retry",
                                     rejected_with_retry[c])
                                .Add("p50_us", p50)
                                .Add("p95_us", p95)
                                .Add("p99_us", p99));
    }
  }
  std::string breakdown;
  for (const auto& [reason, count] : reject_reasons) {
    if (!breakdown.empty()) breakdown += ", ";
    breakdown += reason + "=" + std::to_string(count);
  }
  double achieved_rps = wall_s > 0.0 ? static_cast<double>(sent) / wall_s
                                     : 0.0;
  std::printf(
      "total: sent %lld, ok %lld, rejected %lld%s%s%s, other errors %lld, "
      "lost %lld, offered %.1f rps (wall %.1f s)\n",
      static_cast<long long>(sent), static_cast<long long>(total_ok),
      static_cast<long long>(total_rejected),
      breakdown.empty() ? "" : " (", breakdown.c_str(),
      breakdown.empty() ? "" : ")",
      static_cast<long long>(errors_other), static_cast<long long>(lost),
      achieved_rps, wall_s);
  if (Telemetry::Enabled()) {
    Telemetry::Get().Emit(MetricRecord("loadgen")
                              .Add("target_rps", rps)
                              .Add("duration_s", duration_s)
                              .Add("connections", connections)
                              .Add("batch_pct", batch_pct)
                              .Add("sent", sent)
                              .Add("ok", total_ok)
                              .Add("rejected", total_rejected)
                              .Add("lost", lost)
                              .Add("achieved_rps", achieved_rps));
  }
  if (total_ok == 0) {
    std::fprintf(stderr, "error: no successful response received\n");
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace autoac

int main(int argc, char** argv) {
  int rc = autoac::Run(argc, argv);
  autoac::ShutdownTelemetry(/*print_profile_table=*/false);
  return rc;
}
