// autoac_run: command-line driver for single experiments.
//
//   autoac_run --task=node --dataset=dblp --model=SimpleHGN --method=autoac
//   autoac_run --task=link --dataset=lastfm --method=baseline --seeds=5
//   autoac_run --dataset=acm --method=gcn --save_dataset=acm.aacd
//   autoac_run --load_dataset=acm.aacd --method=autoac
//
// Methods: autoac | baseline | hgnnac | hgca | random | mean | gcn | ppnp |
// onehot. Every ExperimentConfig knob is exposed as a flag; defaults match
// the library defaults.

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "autoac/checkpoint.h"
#include "autoac/evaluator.h"
#include "data/serialization.h"
#include "serving/frozen_model.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/parallel.h"
#include "util/shutdown.h"
#include "util/telemetry.h"

namespace autoac {
namespace {

MethodSpec SpecFromName(const std::string& method, const std::string& model) {
  if (method == "autoac") {
    return {model + "-AutoAC", MethodKind::kAutoAc, model,
            CompletionOpType::kOneHot};
  }
  if (method == "baseline") {
    return {model, MethodKind::kBaseline, model, CompletionOpType::kOneHot};
  }
  if (method == "hgnnac") {
    return {model + "-HGNNAC", MethodKind::kHgnnAc, model,
            CompletionOpType::kOneHot};
  }
  if (method == "hgca") {
    return {"HGCA", MethodKind::kHgca, "GCN", CompletionOpType::kMean};
  }
  if (method == "random") {
    return {"Random_AC", MethodKind::kRandomOp, model,
            CompletionOpType::kMean};
  }
  // Otherwise a single-op name: mean/gcn/ppnp/onehot (aborts on unknown).
  CompletionOpType op = CompletionOpFromString(method);
  return {std::string(CompletionOpName(op)), MethodKind::kSingleOp, model, op};
}

// The CLI's full flag table; anything else on the command line is a usage
// error (satellite hardening: a typo'd flag must not silently run with
// defaults).
const std::vector<Flags::Spec>& FlagTable() {
  using Type = Flags::Spec::Type;
  static const std::vector<Flags::Spec> kSpecs = {
      {"help", Type::kBool},          {"task", Type::kString},
      {"dataset", Type::kString},     {"method", Type::kString},
      {"model", Type::kString},       {"scale", Type::kDouble},
      {"seeds", Type::kInt},          {"epochs", Type::kInt},
      {"search_epochs", Type::kInt},  {"clusters", Type::kInt},
      {"lambda", Type::kDouble},      {"lr", Type::kDouble},
      {"lr_alpha", Type::kDouble},    {"mask_rate", Type::kDouble},
      {"no_discrete", Type::kBool},   {"save_dataset", Type::kString},
      {"load_dataset", Type::kString},{"num_threads", Type::kInt},
      {"metrics_out", Type::kString}, {"seed", Type::kInt},
      {"train_seed", Type::kInt},     {"checkpoint_dir", Type::kString},
      {"checkpoint_every", Type::kInt},
      {"checkpoint_keep", Type::kInt},
      {"resume", Type::kBool},
      {"export_model", Type::kString},
      {"quantize", Type::kString},
  };
  return kSpecs;
}

int Run(int argc, char** argv) {
  Flags flags(argc, argv);
  std::vector<std::string> problems = flags.Validate(FlagTable());
  if (flags.Has("resume") && flags.GetBool("resume", false) &&
      flags.GetString("checkpoint_dir", "").empty()) {
    problems.push_back("--resume requires --checkpoint_dir");
  }
  if (flags.Has("export_model") &&
      flags.GetString("task", "node") == "link") {
    problems.push_back("--export_model supports --task=node only");
  }
  const std::string quantize = flags.GetString("quantize", "none");
  if (quantize != "none" && quantize != "fp16" && quantize != "int8") {
    problems.push_back("--quantize must be none, fp16 or int8 (got '" +
                       quantize + "')");
  }
  if (flags.Has("quantize") && !flags.Has("export_model")) {
    problems.push_back("--quantize requires --export_model");
  }
  if (!problems.empty()) {
    for (const std::string& p : problems) {
      std::fprintf(stderr, "error: %s\n", p.c_str());
    }
    std::fprintf(stderr, "run with --help for usage\n");
    return 64;  // EX_USAGE
  }
  // SIGINT/SIGTERM request a cooperative stop at the next epoch boundary
  // (final checkpoint + telemetry flush) instead of killing the process.
  InstallShutdownHandler();
  // 0 keeps the AUTOAC_NUM_THREADS / hardware default; results are bitwise
  // identical at every thread count.
  SetNumThreads(static_cast<int>(flags.GetInt("num_threads", 0)));
  // JSONL metrics sink + kernel profiler (also honors AUTOAC_METRICS_OUT).
  InitTelemetryFromFlag(flags.GetString("metrics_out", ""));
  if (flags.GetBool("help", false)) {
    std::printf(
        "usage: autoac_run [--task=node|link] [--dataset=dblp|acm|imdb|"
        "lastfm]\n"
        "  [--method=autoac|baseline|hgnnac|hgca|random|mean|gcn|ppnp|"
        "onehot]\n"
        "  [--model=SimpleHGN] [--scale=0.25] [--seeds=3] [--epochs=N]\n"
        "  [--search_epochs=N] [--clusters=M] [--lambda=F] [--lr=F]\n"
        "  [--lr_alpha=F] [--mask_rate=0.1] [--no_discrete]\n"
        "  [--save_dataset=PATH] [--load_dataset=PATH] [--num_threads=N]\n"
        "  [--metrics_out=PATH]   JSONL telemetry sink (also: env\n"
        "                         AUTOAC_METRICS_OUT); enables the kernel\n"
        "                         profiler and an end-of-run summary table\n"
        "  [--checkpoint_dir=DIR] crash-safe checkpoints: persist resumable\n"
        "                         search/training state to DIR\n"
        "  [--checkpoint_every=N] epochs between checkpoint writes (5)\n"
        "  [--checkpoint_keep=K]  checkpoint files retained (3)\n"
        "  [--resume]             continue from the newest valid checkpoint\n"
        "                         in --checkpoint_dir (bitwise-identical\n"
        "                         trajectory)\n"
        "  [--export_model=PATH]  freeze the last seed's trained run into a\n"
        "                         serving artifact (node task only); serve\n"
        "                         it with autoac_serve --model=PATH\n"
        "  [--quantize=none|fp16|int8]\n"
        "                         storage encoding of the exported tensors\n"
        "                         (with --export_model). fp16/int8 shrink\n"
        "                         the artifact; the stored fingerprint\n"
        "                         covers the decoded content, so load-time\n"
        "                         verification works unchanged\n"
        "SIGINT/SIGTERM stop cooperatively at the next epoch boundary\n"
        "(writing a final checkpoint when enabled) and exit with status "
        "130.\n");
    return 0;
  }

  // Dataset: generated or loaded from a frozen file.
  Dataset dataset;
  if (flags.Has("load_dataset")) {
    StatusOr<Dataset> loaded =
        LoadDataset(flags.GetString("load_dataset", ""));
    if (!loaded.ok()) {
      std::fprintf(stderr, "error: %s\n", loaded.status().message().c_str());
      return 1;
    }
    dataset = loaded.TakeValue();
  } else {
    DatasetOptions options;
    options.scale = flags.GetDouble("scale", 0.25);
    options.seed = flags.GetInt("seed", 7);
    dataset = MakeDataset(flags.GetString("dataset", "dblp"), options);
  }
  if (flags.Has("save_dataset")) {
    Status saved = SaveDataset(dataset, flags.GetString("save_dataset", ""));
    if (!saved.ok()) {
      std::fprintf(stderr, "error: %s\n", saved.message().c_str());
      return 1;
    }
    std::printf("dataset written to %s\n",
                flags.GetString("save_dataset", "").c_str());
  }

  // Task.
  bool link = flags.GetString("task", "node") == "link";
  TaskData task;
  if (link) {
    Rng rng(flags.GetInt("seed", 7) + 500);
    task = MakeLinkTask(dataset, flags.GetDouble("mask_rate", 0.1), rng);
  } else {
    task = MakeNodeTask(dataset);
  }
  ModelContext ctx = BuildModelContext(task.graph);

  // Configuration.
  ExperimentConfig config;
  config.task = link ? TaskKind::kLinkPrediction
                     : TaskKind::kNodeClassification;
  std::string model = flags.GetString("model", "SimpleHGN");
  config.model_name = model;
  config.train_epochs = flags.GetInt("epochs", config.train_epochs);
  config.search_epochs =
      flags.GetInt("search_epochs", config.search_epochs);
  config.num_clusters = flags.GetInt("clusters", config.num_clusters);
  config.lambda = static_cast<float>(flags.GetDouble("lambda", config.lambda));
  config.lr_w = static_cast<float>(flags.GetDouble("lr", config.lr_w));
  config.lr_alpha =
      static_cast<float>(flags.GetDouble("lr_alpha", config.lr_alpha));
  config.seed = flags.GetInt("train_seed", 1);
  if (flags.GetBool("no_discrete", false)) {
    config.discrete_constraints = false;
  }

  // Export needs the trained parameter values; capture is off otherwise
  // (the tensors are large and nothing else consumes them).
  config.capture_final_params = flags.Has("export_model");

  config.checkpoint.dir = flags.GetString("checkpoint_dir", "");
  config.checkpoint.every =
      flags.GetInt("checkpoint_every", config.checkpoint.every);
  config.checkpoint.keep =
      flags.GetInt("checkpoint_keep", config.checkpoint.keep);
  config.checkpoint.resume = flags.GetBool("resume", false);

  MethodSpec spec = SpecFromName(flags.GetString("method", "autoac"), model);
  int64_t seeds = flags.GetInt("seeds", 3);

  // A checkpoint only resumes the run it was written by: fingerprint the
  // trajectory-determining configuration plus the dataset/task/method
  // identity this binary adds on top of ExperimentConfig.
  std::unique_ptr<CheckpointManager> ckpt;
  if (!config.checkpoint.dir.empty()) {
    uint64_t fingerprint = ConfigFingerprint(config);
    const std::string& ds = dataset.name;
    fingerprint = Fnv1a(ds.data(), ds.size(), fingerprint);
    fingerprint = Fnv1a(&link, sizeof(link), fingerprint);
    double mask_rate = flags.GetDouble("mask_rate", 0.1);
    fingerprint = Fnv1a(&mask_rate, sizeof(mask_rate), fingerprint);
    const std::string& method = spec.display_name;
    fingerprint = Fnv1a(method.data(), method.size(), fingerprint);
    fingerprint = Fnv1a(&seeds, sizeof(seeds), fingerprint);
    StatusOr<std::unique_ptr<CheckpointManager>> opened =
        CheckpointManager::Open(config.checkpoint, fingerprint);
    if (!opened.ok()) {
      std::fprintf(stderr, "error: %s\n", opened.status().message().c_str());
      return 1;
    }
    ckpt = opened.TakeValue();
  }

  std::printf("%s on %s (%s task, %lld seeds)\n", spec.display_name.c_str(),
              dataset.name.c_str(), link ? "link" : "node",
              static_cast<long long>(seeds));
  AggregateResult result =
      EvaluateMethod(task, ctx, config, spec, seeds, ckpt.get());
  if (result.interrupted) {
    std::printf("interrupted — stopped at an epoch boundary%s\n",
                ckpt ? "; resume with --resume to continue the exact "
                       "trajectory"
                     : "");
    return 130;
  }
  if (result.out_of_memory) {
    std::printf("out of memory (tape exceeded --memory limit)\n");
    return 2;
  }
  if (link) {
    std::printf("ROC-AUC %s  MRR %s\n", Cell(result.roc_auc).c_str(),
                Cell(result.mrr).c_str());
  } else {
    std::printf("Macro-F1 %s  Micro-F1 %s\n", Cell(result.macro_f1).c_str(),
                Cell(result.micro_f1).c_str());
  }
  std::printf("mean wall time per run: %.1fs (pre-learn %.1f / search %.1f / "
              "train %.1f)\n",
              result.total_seconds, result.mean_times.prelearn_seconds,
              result.mean_times.search_seconds,
              result.mean_times.train_seconds);
  if (!result.last_ops.empty()) {
    int64_t counts[kNumCompletionOps] = {0};
    for (CompletionOpType op : result.last_ops) {
      ++counts[static_cast<int>(op)];
    }
    std::printf("searched operations:");
    for (int o = 0; o < kNumCompletionOps; ++o) {
      std::printf(" %s=%.1f%%",
                  CompletionOpName(static_cast<CompletionOpType>(o)),
                  100.0 * counts[o] / result.last_ops.size());
    }
    std::printf("\n");
  }
  // Single-value bitwise-identity witness: final parameters + metrics +
  // searched assignment, chained over all seeds. crash_resume_check.sh
  // compares this line between killed-and-resumed and uninterrupted runs.
  std::printf("state digest: %016llx\n",
              static_cast<unsigned long long>(result.state_digest));
  if (flags.Has("export_model")) {
    const std::string path = flags.GetString("export_model", "");
    StatusOr<FrozenModel> frozen =
        FreezeTrainedRun(task, ctx, result.last_config, result.last_run);
    if (!frozen.ok()) {
      std::fprintf(stderr, "error: --export_model: %s\n",
                   frozen.status().message().c_str());
      return 1;
    }
    FrozenSaveOptions save_options;
    if (quantize == "fp16") save_options.encoding = TensorEncoding::kF16;
    if (quantize == "int8") save_options.encoding = TensorEncoding::kI8;
    // For quantized exports the stored fingerprint covers the *decoded*
    // content (what a loader reconstructs), not the training-time floats;
    // print the stored one so operators can compare against autoac_serve.
    uint64_t stored_fingerprint = 0;
    save_options.stored_fingerprint = &stored_fingerprint;
    Status saved = SaveFrozenModel(frozen.value(), path, save_options);
    if (!saved.ok()) {
      std::fprintf(stderr, "error: --export_model: %s\n",
                   saved.message().c_str());
      return 1;
    }
    std::printf("frozen model written to %s (encoding %s, fingerprint "
                "%016llx)\n",
                path.c_str(), quantize.c_str(),
                static_cast<unsigned long long>(stored_fingerprint));
  }
  return 0;
}

}  // namespace
}  // namespace autoac

int main(int argc, char** argv) {
  int rc = autoac::Run(argc, argv);
  // Emits the per-kernel profile records + registry snapshot to the JSONL
  // sink and prints the profile summary table (no-op when telemetry is off).
  autoac::ShutdownTelemetry();
  return rc;
}
