// Dev tool: variance of fixed-completion training across seeds.
#include <cstdio>
#include <string>
#include "autoac/evaluator.h"
#include "autoac/trainer.h"
#include "data/hgb_datasets.h"
#include "util/flags.h"
#include "util/stats.h"
#include "util/telemetry.h"

using namespace autoac;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  InitTelemetryFromFlag(flags.GetString("metrics_out", ""));
  DatasetOptions opts;
  opts.scale = flags.GetDouble("scale", 0.1);
  opts.seed = 7;
  Dataset ds = MakeDataset(flags.GetString("dataset", "dblp"), opts);
  TaskData task = MakeNodeTask(ds);
  ModelContext ctx = BuildModelContext(ds.graph);
  ExperimentConfig cfg;
  cfg.model_name = flags.GetString("model", "SimpleHGN");
  cfg.train_epochs = flags.GetInt("epochs", 60);
  cfg.eval_every = flags.GetInt("eval_every", 2);
  cfg.lr_w = flags.GetDouble("lr", 5e-3);
  cfg.dropout = flags.GetDouble("dropout", 0.3);
  cfg.patience = flags.GetInt("patience", 30);
  int64_t seeds = flags.GetInt("seeds", 5);
  CompletionOpType op = CompletionOpFromString(flags.GetString("op", "onehot"));
  bool oracle = flags.GetBool("oracle", false);
  int64_t n_missing = 0;
  for (int64_t t = 0; t < ds.graph->num_node_types(); ++t)
    if (ds.graph->node_type(t).attributes.numel() == 0)
      n_missing += ds.graph->node_type(t).count;
  std::vector<CompletionOpType> assignment = UniformAssignment(n_missing, op);
  if (oracle) {
    // Regime-matched oracle: local->GCN, global->PPNP, identity->one-hot.
    int64_t pos = 0;
    for (int64_t g = 0; g < ds.graph->num_nodes(); ++g) {
      int64_t t = ds.graph->TypeOf(g);
      if (ds.graph->node_type(t).attributes.numel() > 0) continue;
      switch (ds.regime[g]) {
        case CompletionRegime::kLocal: assignment[pos] = CompletionOpType::kGcn; break;
        case CompletionRegime::kGlobal: assignment[pos] = CompletionOpType::kPpnp; break;
        case CompletionRegime::kIdentity: assignment[pos] = CompletionOpType::kOneHot; break;
      }
      ++pos;
    }
  }
  std::vector<double> micro;
  for (int64_t s = 0; s < seeds; ++s) {
    cfg.seed = flags.GetInt("seed_base", 100) + s;
    RunResult r = TrainFixedCompletion(task, ctx, cfg, assignment);
    micro.push_back(r.test.micro_f1 * 100);
    printf("seed %lld: micro=%.2f epochs=%lld\n", (long long)s, micro.back(), (long long)r.epochs_run);
  }
  RunSummary sum = Summarize(micro);
  printf("==> %s\n", FormatMeanStd(sum).c_str());
  ShutdownTelemetry();
  return 0;
}
