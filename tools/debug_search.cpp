// Dev tool: inspect the search internals on a small dataset.
#include <algorithm>
#include <cstdio>
#include "autoac/search.h"
#include "autoac/trainer.h"
#include "autoac/completion_params.h"
#include "autoac/evaluator.h"
#include "data/hgb_datasets.h"
#include "util/flags.h"
#include "util/telemetry.h"

using namespace autoac;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  InitTelemetryFromFlag(flags.GetString("metrics_out", ""));
  DatasetOptions opts;
  opts.scale = flags.GetDouble("scale", 0.1);
  opts.seed = 7;
  Dataset ds = MakeDataset(flags.GetString("dataset", "dblp"), opts);
  TaskData task = MakeNodeTask(ds);
  ModelContext ctx = BuildModelContext(ds.graph);
  ExperimentConfig cfg;
  cfg.train_epochs = flags.GetInt("epochs", 60);
  cfg.search_epochs = flags.GetInt("search_epochs", 30);
  cfg.seed = flags.GetInt("seed", 1);
  cfg.lr_alpha = flags.GetDouble("lr_alpha", 0.02);
  cfg.num_clusters = flags.GetInt("M", 8);
  std::string mode = flags.GetString("mode", "modularity");
  if (mode == "none") cfg.cluster_mode = ClusterMode::kNone;
  else if (mode == "em") cfg.cluster_mode = ClusterMode::kEm;
  cfg.alpha_warmup_epochs = flags.GetInt("warmup", -1);

  SearchResult sr = SearchCompletionOps(task, ctx, cfg);
  if (sr.final_alpha.rows() <= 16) printf("final alpha:\n");
  for (int64_t m = 0; m < sr.final_alpha.rows() && sr.final_alpha.rows() <= 16; ++m) {
    printf("  c%lld:", (long long)m);
    for (int64_t j = 0; j < sr.final_alpha.cols(); ++j)
      printf(" %.3f", sr.final_alpha.at(m, j));
    printf("\n");
  }
  // cluster sizes
  int64_t max_c = 0;
  for (int64_t c : sr.cluster_of) max_c = std::max(max_c, c);
  std::vector<int64_t> sizes(max_c + 1, 0);
  for (int64_t c : sr.cluster_of) sizes[c]++;
  if (sizes.size() <= 16) { printf("cluster sizes:"); for (auto s : sizes) printf(" %lld", (long long)s); }
  printf("\nop distribution:");
  int cnt[4] = {0,0,0,0};
  for (auto op : sr.op_per_missing) cnt[(int)op]++;
  for (int o = 0; o < 4; ++o) printf(" %s=%.1f%%", CompletionOpName((CompletionOpType)o), 100.0*cnt[o]/sr.op_per_missing.size());
  printf("\n");
  RunResult rt = RunAutoAc(task, ctx, cfg);
  int cnt2[4] = {0,0,0,0};
  for (auto op : rt.searched_ops) cnt2[(int)op]++;
  printf("chosen distribution:");
  for (int o = 0; o < 4; ++o) printf(" %s=%.1f%%", CompletionOpName((CompletionOpType)o), 100.0*cnt2[o]/rt.searched_ops.size());
  printf("\nretrain micro=%.4f macro=%.4f (search %.1fs train %.1fs)\n", rt.test.micro_f1, rt.test.macro_f1, rt.times.search_seconds, rt.times.train_seconds);
  ShutdownTelemetry();
  return 0;
}
