#ifndef AUTOAC_AUTOAC_SEARCH_H_
#define AUTOAC_AUTOAC_SEARCH_H_

#include "autoac/experiment.h"
#include "models/model.h"

namespace autoac {

class CheckpointManager;  // autoac/checkpoint.h

/// Output of the completion-operation search stage.
struct SearchResult {
  std::vector<CompletionOpType> op_per_missing;
  std::vector<int64_t> cluster_of;  // per missing node
  Tensor final_alpha;               // [M, |O|]
  double search_seconds = 0.0;
  std::vector<float> gmoc_trace;  // L_GmoC per search epoch (kModularity)
  bool out_of_memory = false;
  /// True when the search stopped early at an epoch boundary because a
  /// shutdown was requested; the fields above describe the partial state.
  bool interrupted = false;
  /// Runner-up assignments ranked by supernet validation score (the winner
  /// is op_per_missing). RunAutoAc re-ranks the top few with short fresh
  /// retrains to remove the supernet co-adaptation bias.
  std::vector<std::vector<CompletionOpType>> runner_up_ops;
};

/// Runs the bi-level completion-operation search (Algorithm 1 + the
/// Section IV-D clustering task):
///
///  - With `config.discrete_constraints`, each iteration proximal-projects
///    alpha onto one-hot choices (prox_C1), derives the alpha gradient from
///    the validation loss at the projected point, updates alpha under the
///    box constraint (prox_C2), and trains the GNN weights with only the
///    selected operations active.
///  - Without them, the search is the DARTS-style weighted mixture with the
///    one-step-unrolled second-order gradient of Eq. 7 (finite-difference
///    Hessian-vector product), every candidate operation alive in the tape —
///    the configuration whose cost and memory Table VIII ablates.
///
/// Cluster assignments follow `config.cluster_mode`; kModularity trains the
/// soft assignment head jointly via L_GmoC (Eq. 12).
///
/// With a CheckpointManager the search registers itself as one pipeline
/// unit: it replays instantly when the journal already holds its result,
/// restores mid-epoch state when a partial save exists, and persists its
/// full resumable state on the checkpoint cadence and at cooperative
/// shutdown. A resumed search continues the exact trajectory bitwise.
SearchResult SearchCompletionOps(const TaskData& data,
                                 const ModelContext& ctx,
                                 const ExperimentConfig& config,
                                 CheckpointManager* ckpt = nullptr);

/// Full AutoAC pipeline: search, then retrain from scratch with the
/// discovered assignment (the paper's Search + Train/Retrain staging whose
/// times Table IV reports). `ckpt` threads checkpoint/resume through every
/// stage (search, probe retrains, final retrain).
RunResult RunAutoAc(const TaskData& data, const ModelContext& ctx,
                    const ExperimentConfig& config,
                    CheckpointManager* ckpt = nullptr);

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_SEARCH_H_
