#ifndef AUTOAC_AUTOAC_SEARCH_H_
#define AUTOAC_AUTOAC_SEARCH_H_

#include "autoac/experiment.h"
#include "models/model.h"

namespace autoac {

/// Output of the completion-operation search stage.
struct SearchResult {
  std::vector<CompletionOpType> op_per_missing;
  std::vector<int64_t> cluster_of;  // per missing node
  Tensor final_alpha;               // [M, |O|]
  double search_seconds = 0.0;
  std::vector<float> gmoc_trace;  // L_GmoC per search epoch (kModularity)
  bool out_of_memory = false;
  /// Runner-up assignments ranked by supernet validation score (the winner
  /// is op_per_missing). RunAutoAc re-ranks the top few with short fresh
  /// retrains to remove the supernet co-adaptation bias.
  std::vector<std::vector<CompletionOpType>> runner_up_ops;
};

/// Runs the bi-level completion-operation search (Algorithm 1 + the
/// Section IV-D clustering task):
///
///  - With `config.discrete_constraints`, each iteration proximal-projects
///    alpha onto one-hot choices (prox_C1), derives the alpha gradient from
///    the validation loss at the projected point, updates alpha under the
///    box constraint (prox_C2), and trains the GNN weights with only the
///    selected operations active.
///  - Without them, the search is the DARTS-style weighted mixture with the
///    one-step-unrolled second-order gradient of Eq. 7 (finite-difference
///    Hessian-vector product), every candidate operation alive in the tape —
///    the configuration whose cost and memory Table VIII ablates.
///
/// Cluster assignments follow `config.cluster_mode`; kModularity trains the
/// soft assignment head jointly via L_GmoC (Eq. 12).
SearchResult SearchCompletionOps(const TaskData& data,
                                 const ModelContext& ctx,
                                 const ExperimentConfig& config);

/// Full AutoAC pipeline: search, then retrain from scratch with the
/// discovered assignment (the paper's Search + Train/Retrain staging whose
/// times Table IV reports).
RunResult RunAutoAc(const TaskData& data, const ModelContext& ctx,
                    const ExperimentConfig& config);

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_SEARCH_H_
