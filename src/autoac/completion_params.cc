#include "autoac/completion_params.h"

#include <algorithm>

#include "util/check.h"

namespace autoac {

Tensor ProxC1(const Tensor& alpha) {
  AUTOAC_CHECK_EQ(alpha.dim(), 2);
  Tensor out(alpha.rows(), alpha.cols());
  for (int64_t i = 0; i < alpha.rows(); ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < alpha.cols(); ++j) {
      if (alpha.at(i, j) > alpha.at(i, best)) best = j;
    }
    out.at(i, best) = 1.0f;
  }
  return out;
}

void ProxC2(Tensor& alpha) {
  float* data = alpha.data();
  for (int64_t i = 0; i < alpha.numel(); ++i) {
    data[i] = std::clamp(data[i], 0.0f, 1.0f);
  }
}

std::vector<CompletionOpType> ArgmaxOps(const Tensor& alpha) {
  AUTOAC_CHECK_EQ(alpha.cols(), kNumCompletionOps);
  std::vector<CompletionOpType> ops(alpha.rows());
  for (int64_t i = 0; i < alpha.rows(); ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < alpha.cols(); ++j) {
      if (alpha.at(i, j) > alpha.at(i, best)) best = j;
    }
    ops[i] = static_cast<CompletionOpType>(best);
  }
  return ops;
}

Tensor InitCompletionParams(int64_t num_rows, Rng& rng) {
  Tensor alpha(num_rows, kNumCompletionOps);
  for (int64_t i = 0; i < num_rows; ++i) {
    for (int64_t j = 0; j < kNumCompletionOps; ++j) {
      alpha.at(i, j) =
          0.5f + static_cast<float>(rng.Uniform(-0.05, 0.05));
    }
  }
  return alpha;
}

}  // namespace autoac
