#include "autoac/completion_params.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace autoac {

Tensor ProxC1(const Tensor& alpha) {
  AUTOAC_CHECK_EQ(alpha.dim(), 2);
  Tensor out(alpha.rows(), alpha.cols());
  for (int64_t i = 0; i < alpha.rows(); ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < alpha.cols(); ++j) {
      if (alpha.at(i, j) > alpha.at(i, best)) best = j;
    }
    out.at(i, best) = 1.0f;
  }
  return out;
}

void ProxC2(Tensor& alpha) {
  float* data = alpha.data();
  for (int64_t i = 0; i < alpha.numel(); ++i) {
    data[i] = std::clamp(data[i], 0.0f, 1.0f);
  }
}

std::vector<CompletionOpType> ArgmaxOps(const Tensor& alpha) {
  AUTOAC_CHECK_EQ(alpha.cols(), kNumCompletionOps);
  std::vector<CompletionOpType> ops(alpha.rows());
  for (int64_t i = 0; i < alpha.rows(); ++i) {
    int64_t best = 0;
    for (int64_t j = 1; j < alpha.cols(); ++j) {
      if (alpha.at(i, j) > alpha.at(i, best)) best = j;
    }
    ops[i] = static_cast<CompletionOpType>(best);
  }
  return ops;
}

Tensor InitCompletionParams(int64_t num_rows, Rng& rng) {
  Tensor alpha(num_rows, kNumCompletionOps);
  for (int64_t i = 0; i < num_rows; ++i) {
    for (int64_t j = 0; j < kNumCompletionOps; ++j) {
      alpha.at(i, j) =
          0.5f + static_cast<float>(rng.Uniform(-0.05, 0.05));
    }
  }
  return alpha;
}

double MeanRowEntropy(const Tensor& alpha) {
  AUTOAC_CHECK_EQ(alpha.dim(), 2);
  if (alpha.rows() == 0) return 0.0;
  double total = 0.0;
  for (int64_t i = 0; i < alpha.rows(); ++i) {
    double max_value = alpha.at(i, 0);
    for (int64_t j = 1; j < alpha.cols(); ++j) {
      max_value = std::max(max_value, static_cast<double>(alpha.at(i, j)));
    }
    double sum = 0.0;
    for (int64_t j = 0; j < alpha.cols(); ++j) {
      sum += std::exp(alpha.at(i, j) - max_value);
    }
    // H(p) with p = softmax(row): log(sum) - (1/sum) * sum_j e_j * z_j,
    // z_j = a_j - max.
    double weighted = 0.0;
    for (int64_t j = 0; j < alpha.cols(); ++j) {
      double z = alpha.at(i, j) - max_value;
      weighted += std::exp(z) * z;
    }
    total += std::log(sum) - weighted / sum;
  }
  return total / alpha.rows();
}

std::vector<int64_t> OpHistogram(const std::vector<CompletionOpType>& ops) {
  std::vector<int64_t> counts(kNumCompletionOps, 0);
  for (CompletionOpType op : ops) ++counts[static_cast<int>(op)];
  return counts;
}

int64_t CountArgmaxFlips(const Tensor& before, const Tensor& after) {
  AUTOAC_CHECK(before.SameShape(after));
  std::vector<CompletionOpType> ops_before = ArgmaxOps(before);
  std::vector<CompletionOpType> ops_after = ArgmaxOps(after);
  int64_t flips = 0;
  for (size_t i = 0; i < ops_before.size(); ++i) {
    if (ops_before[i] != ops_after[i]) ++flips;
  }
  return flips;
}

}  // namespace autoac
