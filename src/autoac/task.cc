#include "autoac/task.h"

#include "data/metrics.h"
#include "graph/sparse_ops.h"

namespace autoac {
namespace {

// Scores pairs with the dot-product decoder.
VarPtr PairScores(const VarPtr& h,
                  const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  std::vector<int64_t> us, vs;
  us.reserve(pairs.size());
  vs.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    us.push_back(u);
    vs.push_back(v);
  }
  return PairDot(h, std::move(us), std::move(vs));
}

std::vector<float> PairScoreValues(
    const VarPtr& h, const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  const Tensor& t = h->value;
  int64_t d = t.cols();
  std::vector<float> scores;
  scores.reserve(pairs.size());
  for (const auto& [u, v] : pairs) {
    const float* hu = t.data() + u * d;
    const float* hv = t.data() + v * d;
    float acc = 0.0f;
    for (int64_t j = 0; j < d; ++j) acc += hu[j] * hv[j];
    scores.push_back(acc);
  }
  return scores;
}

}  // namespace

TaskData MakeNodeTask(const Dataset& dataset) {
  TaskData data;
  data.task = TaskKind::kNodeClassification;
  data.graph = dataset.graph;
  data.node_split = dataset.split;
  return data;
}

TaskData MakeLinkTask(const Dataset& dataset, double mask_rate, Rng& rng) {
  LinkSplit split = MakeLinkSplit(*dataset.graph, mask_rate, rng);
  TaskData data;
  data.task = TaskKind::kLinkPrediction;
  data.graph = split.train_graph;
  data.train_pos = std::move(split.train_pos);
  data.val_pos = std::move(split.val_pos);
  data.test_pos = std::move(split.test_pos);
  return data;
}

TaskHead::TaskHead(const TaskData& data, int64_t model_out_dim,
                   int64_t mrr_negatives, Rng& rng)
    : data_(&data) {
  if (data.task == TaskKind::kNodeClassification) {
    classifier_ = Linear(model_out_dim, data.graph->num_classes(), rng);
    return;
  }
  // Fixed negative pools: one per validation/test positive for ROC-AUC, a
  // candidate list per test positive for MRR, and a stable pool for L_val.
  const HeteroGraph& g = *data.graph;
  train_neg_val_ = SampleNegativeEdges(
      g, static_cast<int64_t>(data.val_pos.size()), rng);
  val_neg_ =
      SampleNegativeEdges(g, static_cast<int64_t>(data.val_pos.size()), rng);
  test_neg_ =
      SampleNegativeEdges(g, static_cast<int64_t>(data.test_pos.size()), rng);
  int64_t target = g.target_edge_type();
  const HeteroGraph::NodeTypeInfo& dst_info =
      g.node_type(g.edge_type(target).dst_type);
  mrr_negatives_.reserve(data.test_pos.size());
  for (const auto& [u, v] : data.test_pos) {
    std::vector<std::pair<int64_t, int64_t>> candidates;
    candidates.reserve(mrr_negatives);
    for (int64_t k = 0; k < mrr_negatives; ++k) {
      int64_t alt = dst_info.offset + rng.UniformInt(0, dst_info.count - 1);
      if (alt == v) alt = dst_info.offset + (alt - dst_info.offset + 1) %
                                                dst_info.count;
      candidates.emplace_back(u, alt);
    }
    mrr_negatives_.push_back(std::move(candidates));
  }
}

VarPtr TaskHead::Logits(const VarPtr& h) const {
  return classifier_.Apply(h);
}

VarPtr TaskHead::LinkLoss(
    const VarPtr& h, const std::vector<std::pair<int64_t, int64_t>>& pos,
    const std::vector<std::pair<int64_t, int64_t>>& neg) const {
  std::vector<std::pair<int64_t, int64_t>> all(pos);
  all.insert(all.end(), neg.begin(), neg.end());
  std::vector<float> targets(pos.size(), 1.0f);
  targets.resize(all.size(), 0.0f);
  return BceWithLogits(PairScores(h, all), targets);
}

VarPtr TaskHead::TrainLoss(const VarPtr& h, Rng& rng) const {
  if (data_->task == TaskKind::kNodeClassification) {
    return SoftmaxCrossEntropy(Logits(h), data_->graph->global_labels(),
                               data_->node_split.train);
  }
  std::vector<std::pair<int64_t, int64_t>> neg = SampleNegativeEdges(
      *data_->graph, static_cast<int64_t>(data_->train_pos.size()), rng);
  return LinkLoss(h, data_->train_pos, neg);
}

VarPtr TaskHead::ValLoss(const VarPtr& h) const {
  if (data_->task == TaskKind::kNodeClassification) {
    return SoftmaxCrossEntropy(Logits(h), data_->graph->global_labels(),
                               data_->node_split.val);
  }
  return LinkLoss(h, data_->val_pos, train_neg_val_);
}

TaskScores TaskHead::EvaluateNode(const VarPtr& h,
                                  const std::vector<int64_t>& rows) const {
  VarPtr logits = Logits(h);
  const Tensor& l = logits->value;
  std::vector<int64_t> preds, labels;
  preds.reserve(rows.size());
  labels.reserve(rows.size());
  for (int64_t row : rows) {
    int64_t best = 0;
    for (int64_t c = 1; c < l.cols(); ++c) {
      if (l.at(row, c) > l.at(row, best)) best = c;
    }
    preds.push_back(best);
    labels.push_back(data_->graph->LabelOf(row));
  }
  TaskScores scores;
  scores.micro_f1 = MicroF1(preds, labels);
  scores.macro_f1 = MacroF1(preds, labels, data_->graph->num_classes());
  scores.primary = scores.micro_f1;
  return scores;
}

TaskScores TaskHead::EvaluateLink(
    const VarPtr& h, const std::vector<std::pair<int64_t, int64_t>>& pos,
    const std::vector<std::pair<int64_t, int64_t>>& neg,
    const std::vector<std::vector<std::pair<int64_t, int64_t>>>* mrr_negs)
    const {
  std::vector<float> scores = PairScoreValues(h, pos);
  std::vector<float> neg_scores = PairScoreValues(h, neg);
  std::vector<float> all_scores(scores);
  all_scores.insert(all_scores.end(), neg_scores.begin(), neg_scores.end());
  std::vector<int64_t> labels(scores.size(), 1);
  labels.resize(all_scores.size(), 0);

  TaskScores result;
  result.roc_auc = RocAuc(all_scores, labels);
  if (mrr_negs != nullptr) {
    std::vector<std::vector<float>> candidate_scores;
    candidate_scores.reserve(mrr_negs->size());
    for (const auto& candidates : *mrr_negs) {
      candidate_scores.push_back(PairScoreValues(h, candidates));
    }
    result.mrr = MeanReciprocalRank(scores, candidate_scores);
  }
  result.primary = result.roc_auc;
  return result;
}

TaskScores TaskHead::EvaluateVal(const VarPtr& h) const {
  if (data_->task == TaskKind::kNodeClassification) {
    return EvaluateNode(h, data_->node_split.val);
  }
  return EvaluateLink(h, data_->val_pos, val_neg_, nullptr);
}

TaskScores TaskHead::EvaluateTest(const VarPtr& h) const {
  if (data_->task == TaskKind::kNodeClassification) {
    return EvaluateNode(h, data_->node_split.test);
  }
  return EvaluateLink(h, data_->test_pos, test_neg_, &mrr_negatives_);
}

std::vector<VarPtr> TaskHead::Parameters() const {
  if (data_->task == TaskKind::kNodeClassification) {
    return classifier_.Parameters();
  }
  return {};
}

}  // namespace autoac
