#ifndef AUTOAC_AUTOAC_CLUSTERING_H_
#define AUTOAC_AUTOAC_CLUSTERING_H_

#include <vector>

#include "graph/hetero_graph.h"
#include "graph/sparse_ops.h"
#include "models/layers.h"
#include "tensor/ops.h"

namespace autoac {

/// The auxiliary unsupervised clustering head of Section IV-D: a soft
/// assignment matrix C = softmax(H W_c + b) over M clusters, trained by
/// maximizing the spectral-relaxed modularity (Eq. 10) with the collapse
/// regularizer (Eq. 11). Because C is produced from the GNN's hidden states,
/// the clustering sharpens jointly with representation quality — the
/// property that makes it preferable to post-hoc EM (Fig. 3).
class ClusterHead {
 public:
  /// `graph` supplies the adjacency/degrees of the modularity matrix B.
  ClusterHead(HeteroGraphPtr graph, int64_t input_dim, int64_t num_clusters,
              Rng& rng);

  /// Soft assignments C [N, M] from hidden states H [N, input_dim].
  VarPtr Assignments(const VarPtr& hidden) const;

  /// L_GmoC (Eq. 11): -1/(2|E|) Tr(C^T B C) + sqrt(M)/|V| ||sum_i C_i||_F.
  /// Returns a scalar variable suitable for joint optimization.
  VarPtr ModularityLoss(const VarPtr& assignments) const;

  /// Hard cluster of each listed node: argmax over the assignment row.
  std::vector<int64_t> HardClusters(const VarPtr& assignments,
                                    const std::vector<int64_t>& nodes) const;

  std::vector<VarPtr> Parameters() const { return head_.Parameters(); }
  int64_t num_clusters() const { return num_clusters_; }

 private:
  HeteroGraphPtr graph_;
  Linear head_;
  int64_t num_clusters_;
  SpMatPtr adjacency_;   // unnormalized, no self-loops
  VarPtr degree_col_;    // const [N, 1] degree vector d
  float two_edges_;      // 2|E| in the symmetrized graph
};

/// Plain k-means in feature space; the EM ablation baselines of Fig. 3
/// re-cluster the GNN's hidden states with this between iterations.
std::vector<int64_t> KMeansCluster(const Tensor& features, int64_t k,
                                   int64_t iterations, Rng& rng);

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_CLUSTERING_H_
