#ifndef AUTOAC_AUTOAC_EXPERIMENT_H_
#define AUTOAC_AUTOAC_EXPERIMENT_H_

#include <string>
#include <vector>

#include "autoac/task.h"
#include "completion/completion_module.h"

namespace autoac {

/// How the dimension of the completion parameters alpha is reduced
/// (Section IV-D and the Fig. 3 ablation).
enum class ClusterMode {
  kModularity,  // AutoAC: joint spectral-modularity clustering head
  kNone,        // per-node alpha (M = N^-), no clustering
  kEm,          // k-means on hidden states after every iteration
  kEmWarmup,    // k-means, but frozen clusters for the first epochs
};

/// Crash-safe checkpoint/resume knobs (DESIGN.md §9). When `dir` is set the
/// search and training loops persist their complete resumable state there
/// on an epoch cadence, and `resume` restores the newest valid checkpoint
/// and provably continues the exact trajectory: a resumed run is
/// bitwise-identical to an uninterrupted one at any thread count.
struct CheckpointOptions {
  std::string dir;    // empty = checkpointing disabled
  int64_t every = 5;  // epochs between mid-stage checkpoint writes
  int64_t keep = 3;   // retained checkpoint files (bounded disk usage)
  bool resume = false;
  /// Test hook: behave as if SIGINT arrived once this many epochs of the
  /// current stage completed (cooperative stop at the epoch boundary,
  /// final checkpoint written). -1 disables. Lets tests exercise the
  /// interrupt→resume path in-process, without killing themselves; real
  /// kills are covered by AUTOAC_FAULT_INJECT + crash_resume_check.sh.
  int64_t interrupt_after_epochs = -1;
};

/// Everything one experiment run needs. Field defaults follow Section V-B
/// (Adam, lr/wd for w and alpha) with budgets sized for the scaled datasets.
struct ExperimentConfig {
  std::string model_name = "SimpleHGN";
  TaskKind task = TaskKind::kNodeClassification;

  // Model shape.
  int64_t hidden_dim = 64;
  int64_t num_layers = 2;
  int64_t num_heads = 2;
  float dropout = 0.1f;
  float negative_slope = 0.05f;

  // Optimization of the GNN weights w.
  int64_t train_epochs = 150;
  int64_t patience = 30;
  /// Validation (and conditional test) evaluation cadence in epochs; larger
  /// values trade early-stopping granularity for wall time.
  int64_t eval_every = 2;
  float lr_w = 3e-3f;
  float wd_w = 1e-4f;

  // Optimization of the completion parameters alpha. The paper uses
  // lr 5e-3 over hundreds of alternating steps; with this implementation's
  // compressed search budgets the default is proportionally larger (Fig. 10
  // sweeps it and shows robustness across a 2x range).
  float lr_alpha = 2e-2f;
  float wd_alpha = 1e-5f;
  int64_t search_epochs = 40;
  /// Epochs at the start of the search that train only w (and refresh
  /// clusters) before alpha updates begin: gradients of L_val w.r.t. alpha
  /// are meaningless while the GNN is random, and NASP-style searches warm
  /// the supernet up first.
  int64_t alpha_warmup_epochs = -1;  // -1: search_epochs / 4

  // AutoAC specifics.
  int64_t num_clusters = 8;       // M
  float lambda = 0.4f;            // loss weight of L_GmoC (Eq. 12)
  ClusterMode cluster_mode = ClusterMode::kModularity;
  bool discrete_constraints = true;
  int64_t em_warmup_epochs = 10;  // kEmWarmup only

  /// Tape-memory budget for the search stage. The no-discrete-constraint
  /// mixture holds every candidate operation in the tape; when its measured
  /// tape size exceeds this budget the search reports out-of-memory, which
  /// reproduces Table VIII's '/' entries. 0 disables the check.
  int64_t memory_limit_bytes = 0;

  // Link prediction.
  int64_t mrr_negatives = 20;

  /// When set, TrainFixedCompletion stores the final parameter values
  /// (completion, model, head — Parameters() order) in
  /// RunResult::final_params so the run can be frozen into a serving
  /// artifact (src/serving/). Off by default: the tensors are large and
  /// only the export path needs them.
  bool capture_final_params = false;

  CompletionConfig completion;
  uint64_t seed = 1;

  CheckpointOptions checkpoint;
};

/// Wall time attributed to each pipeline stage (Table IV's columns).
struct StageTimes {
  double prelearn_seconds = 0.0;
  double search_seconds = 0.0;
  double train_seconds = 0.0;
  double Total() const {
    return prelearn_seconds + search_seconds + train_seconds;
  }
};

/// Result of one seeded run.
struct RunResult {
  TaskScores test;
  /// Best validation primary metric observed (model-selection criterion).
  double val_primary = 0.0;
  /// Mean of the last few validation evaluations — a lower-variance score
  /// for comparing candidate assignments under small validation splits.
  double val_smoothed = 0.0;
  StageTimes times;
  double epoch_seconds = 0.0;  // mean wall time per training epoch
  int64_t epochs_run = 0;
  bool out_of_memory = false;
  /// True when the run stopped early at an epoch boundary because a
  /// shutdown was requested (SIGINT/SIGTERM or the test hook). The partial
  /// metrics above are not comparable to a completed run's.
  bool interrupted = false;
  /// FNV-1a digest over the final parameter tensors, test metrics, and (for
  /// AutoAC runs) the searched assignment + alpha. Bitwise-reproducible
  /// across thread counts and across crash→resume, so the crash-recovery
  /// harness compares resumed runs against uninterrupted ones with a single
  /// value.
  uint64_t state_digest = 0;

  // Search artifacts (AutoAC runs only).
  std::vector<CompletionOpType> searched_ops;  // per missing node
  std::vector<float> gmoc_trace;               // L_GmoC per search epoch

  /// Final parameter values in TrainFixedCompletion's Parameters() order
  /// (completion module, then model, then task head). Populated only when
  /// ExperimentConfig::capture_final_params is set; consumed by the frozen
  /// model export (src/serving/frozen_model.h).
  std::vector<Tensor> final_params;
};

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_EXPERIMENT_H_
