#include "autoac/evaluator.h"

#include "autoac/checkpoint.h"
#include "autoac/hgnn_ac.h"
#include "autoac/search.h"
#include "autoac/trainer.h"
#include "completion/completion_module.h"
#include "util/telemetry.h"

namespace autoac {
namespace {

// Number of missing nodes for this graph (assignments need the count before
// a CompletionModule exists).
int64_t CountMissing(const HeteroGraph& graph) {
  int64_t missing = 0;
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (graph.node_type(t).attributes.numel() == 0) {
      missing += graph.node_type(t).count;
    }
  }
  return missing;
}

RunResult RunOne(const TaskData& data, const ModelContext& ctx,
                 const ExperimentConfig& config, const MethodSpec& spec,
                 CheckpointManager* ckpt) {
  int64_t n_missing = CountMissing(*data.graph);
  switch (spec.kind) {
    case MethodKind::kBaseline:
      return TrainFixedCompletion(
          data, ctx, config,
          UniformAssignment(n_missing, CompletionOpType::kOneHot), ckpt);
    case MethodKind::kSingleOp:
      return TrainFixedCompletion(
          data, ctx, config, UniformAssignment(n_missing, spec.single_op),
          ckpt);
    case MethodKind::kRandomOp: {
      Rng rng(config.seed * 31 + 5);
      return TrainFixedCompletion(data, ctx, config,
                                  RandomAssignment(n_missing, rng), ckpt);
    }
    case MethodKind::kAutoAc:
      return RunAutoAc(data, ctx, config, ckpt);
    case MethodKind::kHgnnAc: {
      // HGNN-AC has no mid-run state capture; it checkpoints at unit
      // granularity only (replay when already completed).
      if (ckpt == nullptr) return RunHgnnAc(data, ctx, config);
      CheckpointManager::UnitHandle handle = ckpt->BeginUnit("hgnnac");
      if (handle.completed) {
        RunResult replay;
        AUTOAC_CHECK(DeserializeRunResult(handle.payload, &replay))
            << "checkpointed hgnnac-unit result failed to parse";
        return replay;
      }
      RunResult run = RunHgnnAc(data, ctx, config);
      ckpt->CompleteUnit(handle, SerializeRunResult(run));
      return run;
    }
    case MethodKind::kHgca:
      // HGCA-lite: unsupervised attribute completion is approximated by
      // topology-mean completion feeding a GCN (see DESIGN.md).
      return TrainFixedCompletion(
          data, ctx, config,
          UniformAssignment(n_missing, CompletionOpType::kMean), ckpt);
  }
  AUTOAC_CHECK(false) << "unreachable";
  return {};
}

}  // namespace

AggregateResult EvaluateMethod(const TaskData& data, const ModelContext& ctx,
                               const ExperimentConfig& base_config,
                               const MethodSpec& spec, int64_t num_seeds,
                               CheckpointManager* ckpt) {
  AggregateResult aggregate;
  aggregate.state_digest = kFnvOffsetBasis;
  double total_time = 0.0;
  double epoch_time = 0.0;
  for (int64_t s = 0; s < num_seeds; ++s) {
    ExperimentConfig config = base_config;
    config.seed = base_config.seed + static_cast<uint64_t>(s);
    config.model_name = spec.model;
    if (spec.kind == MethodKind::kHgca) config.model_name = "GCN";
    RunResult run = RunOne(data, ctx, config, spec, ckpt);
    if (run.interrupted) {
      aggregate.interrupted = true;
      return aggregate;
    }
    if (run.out_of_memory) {
      aggregate.out_of_memory = true;
      return aggregate;
    }
    aggregate.state_digest =
        Fnv1a(&run.state_digest, sizeof(run.state_digest),
              aggregate.state_digest);
    if (Telemetry::Enabled()) {
      Telemetry::Get().Emit(
          MetricRecord("run_result")
              .Add("method", spec.display_name)
              .Add("seed", static_cast<int64_t>(config.seed))
              .Add("macro_f1", run.test.macro_f1)
              .Add("micro_f1", run.test.micro_f1)
              .Add("roc_auc", run.test.roc_auc)
              .Add("mrr", run.test.mrr)
              .Add("val_primary", run.val_primary)
              .Add("epochs_run", run.epochs_run)
              .Add("prelearn_seconds", run.times.prelearn_seconds)
              .Add("search_seconds", run.times.search_seconds)
              .Add("train_seconds", run.times.train_seconds));
    }
    aggregate.macro_samples.push_back(run.test.macro_f1 * 100.0);
    aggregate.micro_samples.push_back(run.test.micro_f1 * 100.0);
    aggregate.auc_samples.push_back(run.test.roc_auc * 100.0);
    aggregate.mrr_samples.push_back(run.test.mrr * 100.0);
    total_time += run.times.Total();
    epoch_time += run.epoch_seconds;
    aggregate.mean_times.prelearn_seconds += run.times.prelearn_seconds;
    aggregate.mean_times.search_seconds += run.times.search_seconds;
    aggregate.mean_times.train_seconds += run.times.train_seconds;
    aggregate.last_ops = run.searched_ops;
    if (!run.gmoc_trace.empty()) aggregate.gmoc_trace = run.gmoc_trace;
    if (base_config.capture_final_params) {
      aggregate.last_config = config;
      aggregate.last_run = std::move(run);
    }
  }
  aggregate.macro_f1 = Summarize(aggregate.macro_samples);
  aggregate.micro_f1 = Summarize(aggregate.micro_samples);
  aggregate.roc_auc = Summarize(aggregate.auc_samples);
  aggregate.mrr = Summarize(aggregate.mrr_samples);
  aggregate.total_seconds = total_time / num_seeds;
  aggregate.epoch_seconds = epoch_time / num_seeds;
  aggregate.mean_times.prelearn_seconds /= num_seeds;
  aggregate.mean_times.search_seconds /= num_seeds;
  aggregate.mean_times.train_seconds /= num_seeds;
  if (Telemetry::Enabled()) {
    Telemetry::Get().Emit(
        MetricRecord("aggregate_result")
            .Add("method", spec.display_name)
            .Add("seeds", num_seeds)
            .Add("macro_f1_mean", aggregate.macro_f1.mean)
            .Add("micro_f1_mean", aggregate.micro_f1.mean)
            .Add("roc_auc_mean", aggregate.roc_auc.mean)
            .Add("mrr_mean", aggregate.mrr.mean)
            .Add("mean_run_seconds", aggregate.total_seconds)
            .Add("mean_epoch_seconds", aggregate.epoch_seconds));
  }
  return aggregate;
}

std::string Cell(const RunSummary& summary) {
  return FormatMeanStd(summary, 2);
}

}  // namespace autoac
