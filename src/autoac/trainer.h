#ifndef AUTOAC_AUTOAC_TRAINER_H_
#define AUTOAC_AUTOAC_TRAINER_H_

#include "autoac/experiment.h"
#include "models/model.h"

namespace autoac {

class CheckpointManager;  // autoac/checkpoint.h

/// Trains `config.model_name` end-to-end with a FIXED per-missing-node
/// completion assignment (the lower-level problem with frozen alpha): this
/// is the retraining stage of AutoAC and, with an all-one-hot assignment,
/// the protocol for every handcrafted baseline row of Tables II/V-VII.
///
/// `ctx` must be built from `data.graph`. Early stopping tracks the
/// validation primary metric; test scores are taken at the best-validation
/// epoch.
///
/// With a CheckpointManager the run registers itself as one "train" unit
/// (replay / partial-restore / periodic save; see autoac/checkpoint.h) and
/// honors cooperative shutdown at epoch boundaries, returning with
/// `interrupted` set. The result's `state_digest` summarizes the final
/// parameters, test metrics, and assignment for bitwise-identity checks.
RunResult TrainFixedCompletion(const TaskData& data, const ModelContext& ctx,
                               const ExperimentConfig& config,
                               const std::vector<CompletionOpType>& op_of,
                               CheckpointManager* ckpt = nullptr);

/// Convenience: assignment filling every missing node with one operation.
std::vector<CompletionOpType> UniformAssignment(int64_t num_missing,
                                                CompletionOpType op);

/// Convenience: independently random per-node assignment (Table VI/VII's
/// Random_AC row).
std::vector<CompletionOpType> RandomAssignment(int64_t num_missing, Rng& rng);

/// Sums the value+gradient footprint of the tape reachable from `root`,
/// in bytes. Used to enforce ExperimentConfig::memory_limit_bytes.
int64_t EstimateTapeBytes(const VarPtr& root);

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_TRAINER_H_
