#ifndef AUTOAC_AUTOAC_EVALUATOR_H_
#define AUTOAC_AUTOAC_EVALUATOR_H_

#include <string>
#include <vector>

#include "autoac/experiment.h"
#include "models/model.h"
#include "util/stats.h"

namespace autoac {

class CheckpointManager;  // autoac/checkpoint.h

/// The completion strategies the benchmark tables compare.
enum class MethodKind {
  kBaseline,  // handcrafted completion: one-hot for every missing node
  kSingleOp,  // one fixed operation for all nodes (Tables VI/VII)
  kRandomOp,  // independently random per-node choice (Random_AC)
  kAutoAc,    // the full search pipeline
  kHgnnAc,    // attention completion with pre-learned embeddings
  kHgca,      // HGCA-lite: unsupervised mean completion + GCN (see DESIGN.md)
};

/// One table row to evaluate.
struct MethodSpec {
  std::string display_name;
  MethodKind kind = MethodKind::kBaseline;
  std::string model = "SimpleHGN";
  CompletionOpType single_op = CompletionOpType::kOneHot;
};

/// Multi-seed aggregation of one method on one task.
struct AggregateResult {
  RunSummary macro_f1;
  RunSummary micro_f1;
  RunSummary roc_auc;
  RunSummary mrr;
  std::vector<double> macro_samples;
  std::vector<double> micro_samples;
  std::vector<double> auc_samples;
  std::vector<double> mrr_samples;
  double total_seconds = 0.0;    // mean end-to-end wall time per run
  double epoch_seconds = 0.0;    // mean per-epoch wall time
  StageTimes mean_times;
  bool out_of_memory = false;
  /// Set when a seed's run stopped at a shutdown request; the aggregate
  /// covers only the seeds finished before it and is not reportable.
  bool interrupted = false;
  /// Chained FNV-1a over every seed's RunResult::state_digest; the value
  /// crash_resume_check.sh compares between interrupted-and-resumed and
  /// uninterrupted runs.
  uint64_t state_digest = 0;
  std::vector<CompletionOpType> last_ops;  // searched ops of the last seed
  std::vector<float> gmoc_trace;           // of the last seed
  /// Full result and effective per-seed config of the last seed, populated
  /// only when base_config.capture_final_params is set. This is what the
  /// frozen-model export (src/serving/frozen_model.h) consumes: last_run
  /// carries the trained parameter values, last_config the construction
  /// recipe (seed, model name) that produced them.
  RunResult last_run;
  ExperimentConfig last_config;
};

/// Runs `spec` for `num_seeds` seeds (config.seed + s) and aggregates.
/// All F1/AUC/MRR samples are stored as percentages (x100), matching the
/// paper's tables. `ckpt` threads crash-safe checkpoint/resume through
/// every per-seed run (autoac/checkpoint.h); the multi-seed sequence is
/// deterministic, so finished seeds replay from the journal.
AggregateResult EvaluateMethod(const TaskData& data, const ModelContext& ctx,
                               const ExperimentConfig& base_config,
                               const MethodSpec& spec, int64_t num_seeds,
                               CheckpointManager* ckpt = nullptr);

/// Convenience formatting for a mean±std cell, already in percent.
std::string Cell(const RunSummary& summary);

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_EVALUATOR_H_
