#ifndef AUTOAC_AUTOAC_COMPLETION_PARAMS_H_
#define AUTOAC_AUTOAC_COMPLETION_PARAMS_H_

#include <vector>

#include "completion/op.h"
#include "tensor/tensor.h"
#include "util/rng.h"

namespace autoac {

/// Projection onto C1 = { a : ||a||_0 = 1 } applied row-wise: each row of
/// `alpha` becomes the one-hot indicator of its largest entry (Proposition 1
/// / Algorithm 1 lines 3 and 5). Ties break toward the lowest index.
Tensor ProxC1(const Tensor& alpha);

/// Projection onto C2 = { a : 0 <= a_i <= 1 } applied in place (Eq. 8).
void ProxC2(Tensor& alpha);

/// Per-row argmax of `alpha`, i.e. the discrete operation choice each
/// cluster has converged to.
std::vector<CompletionOpType> ArgmaxOps(const Tensor& alpha);

/// Initial completion parameters: near-uniform with small random jitter so
/// the initial argmax is unbiased across operations. Shape [num_rows, |O|].
Tensor InitCompletionParams(int64_t num_rows, Rng& rng);

/// Mean Shannon entropy (nats) of the softmax-normalized rows of `alpha`:
/// ~ln|O| while the search is undecided, -> 0 as rows harden toward a
/// single operation. The telemetry layer logs it per search epoch.
double MeanRowEntropy(const Tensor& alpha);

/// Per-operation occurrence counts of a discrete assignment, index-aligned
/// with CompletionOpType. The telemetry layer logs it as the op-selection
/// histogram.
std::vector<int64_t> OpHistogram(const std::vector<CompletionOpType>& ops);

/// Number of rows whose argmax operation differs between two alpha
/// snapshots of identical shape — the "flip count" of one proximal /
/// gradient step on the completion parameters.
int64_t CountArgmaxFlips(const Tensor& before, const Tensor& after);

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_COMPLETION_PARAMS_H_
