#ifndef AUTOAC_AUTOAC_HGNN_AC_H_
#define AUTOAC_AUTOAC_HGNN_AC_H_

#include "autoac/experiment.h"
#include "models/model.h"

namespace autoac {

/// Knobs of the HGNN-AC (Jin et al., WWW 2021) baseline.
struct HgnnAcConfig {
  /// Topological-embedding pre-learning (the metapath2vec-style stage whose
  /// cost dominates HGNN-AC's end-to-end time in Table IV). Walk parameters
  /// follow metapath2vec's published defaults: 40 walks per node of length
  /// 100 with window 5 — this stage is *supposed* to be expensive.
  int64_t embedding_dim = 32;
  int64_t walk_length = 100;
  int64_t walks_per_node = 40;
  int64_t window = 5;
  int64_t negatives_per_pair = 2;
  int64_t prelearn_epochs = 2;
  float prelearn_lr = 0.05f;
};

/// Runs the HGNN-AC pipeline: (1) pre-learn topological node embeddings with
/// a random-walk skip-gram; (2) complete each missing attribute as the
/// attention-weighted sum of its 1-hop attributed neighbours' features,
/// where attention logits are dot products of the pre-learned embeddings;
/// (3) train `config.model_name` on the completed features.
/// `result.times.prelearn_seconds` captures stage (1).
RunResult RunHgnnAc(const TaskData& data, const ModelContext& ctx,
                    const ExperimentConfig& config,
                    const HgnnAcConfig& hgnn_config = {});

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_HGNN_AC_H_
