#include "autoac/hgnn_ac.h"

#include <cmath>

#include "graph/random_walk.h"
#include "graph/sparse_ops.h"
#include "models/factory.h"
#include "tensor/init.h"
#include "tensor/optimizer.h"
#include "util/timer.h"

namespace autoac {
namespace {

// Skip-gram with negative sampling over random walks; returns the learned
// embedding table [N, dim]. Deliberately a full SGD loop over all pairs so
// the pre-learning cost scales with graph size the way metapath2vec's does.
Tensor PrelearnTopologicalEmbeddings(const HeteroGraph& graph,
                                     const HgnnAcConfig& config, Rng& rng) {
  int64_t n = graph.num_nodes();
  int64_t dim = config.embedding_dim;
  Tensor embedding = RandomNormal(
      {n, dim}, 1.0f / std::sqrt(static_cast<float>(dim)), rng);
  Tensor context = RandomNormal(
      {n, dim}, 1.0f / std::sqrt(static_cast<float>(dim)), rng);

  std::vector<std::vector<int64_t>> walks = UniformRandomWalks(
      graph, config.walk_length, config.walks_per_node, rng);
  std::vector<std::pair<int64_t, int64_t>> pairs =
      SkipGramPairs(walks, config.window);

  float lr = config.prelearn_lr;
  for (int64_t epoch = 0; epoch < config.prelearn_epochs; ++epoch) {
    for (const auto& [center, ctx_node] : pairs) {
      // One positive and `negatives_per_pair` negative updates.
      for (int64_t k = 0; k <= config.negatives_per_pair; ++k) {
        int64_t other = k == 0 ? ctx_node : rng.UniformInt(0, n - 1);
        float label = k == 0 ? 1.0f : 0.0f;
        float* ec = embedding.data() + center * dim;
        float* oc = context.data() + other * dim;
        float dot = 0.0f;
        for (int64_t j = 0; j < dim; ++j) dot += ec[j] * oc[j];
        float sigma = 1.0f / (1.0f + std::exp(-dot));
        float g = lr * (label - sigma);
        for (int64_t j = 0; j < dim; ++j) {
          float e_old = ec[j];
          ec[j] += g * oc[j];
          oc[j] += g * e_old;
        }
      }
    }
  }
  return embedding;
}

}  // namespace

RunResult RunHgnnAc(const TaskData& data, const ModelContext& ctx,
                    const ExperimentConfig& config,
                    const HgnnAcConfig& hgnn_config) {
  Rng rng(config.seed * 7919 + 13);

  // Stage 1: topological embedding pre-learning (timed separately).
  WallTimer prelearn_timer;
  Tensor topo = PrelearnTopologicalEmbeddings(*data.graph, hgnn_config, rng);
  double prelearn_seconds = prelearn_timer.Seconds();

  // Stage 2 + 3: attention completion from the fixed embeddings, then train
  // the host model end-to-end.
  WallTimer train_timer;
  CompletionConfig completion_config = config.completion;
  completion_config.hidden_dim = config.hidden_dim;
  CompletionModule completion(data.graph, completion_config, rng);

  // Per-edge attention logits over the attributed-neighbour adjacency:
  // <topo[dst], topo[src]> for each stored edge, computed once (the
  // embeddings are frozen after pre-learning, as in HGNN-AC).
  SpMatPtr attributed_adj =
      data.graph->AttributedNeighborAdjacency(AdjNorm::kNone);
  const Csr& csr = attributed_adj->forward();
  Tensor logits({csr.nnz()});
  int64_t dim = topo.cols();
  for (int64_t i = 0; i < csr.num_rows; ++i) {
    const float* ti = topo.data() + i * dim;
    for (int64_t k = csr.indptr[i]; k < csr.indptr[i + 1]; ++k) {
      const float* tj = topo.data() + csr.indices[k] * dim;
      float dot = 0.0f;
      for (int64_t j = 0; j < dim; ++j) dot += ti[j] * tj[j];
      logits.at(k) = dot;
    }
  }
  VarPtr logits_const = MakeConst(std::move(logits));

  ModelConfig model_config;
  model_config.in_dim = config.hidden_dim;
  model_config.hidden_dim = config.hidden_dim;
  model_config.out_dim = config.hidden_dim;
  model_config.num_layers = config.num_layers;
  model_config.num_heads = config.num_heads;
  model_config.dropout = config.dropout;
  model_config.negative_slope = config.negative_slope;
  ModelPtr model = MakeModel(config.model_name, model_config, ctx, rng);
  TaskHead head(data, model_config.out_dim, config.mrr_negatives, rng);

  std::vector<VarPtr> params = completion.Parameters();
  for (const VarPtr& p : model->Parameters()) params.push_back(p);
  for (const VarPtr& p : head.Parameters()) params.push_back(p);
  Adam optimizer(params, config.lr_w, config.wd_w);

  auto completed_h0 = [&]() {
    VarPtr base = completion.BaseFeatures();
    // Attention-weighted aggregation of attributed neighbours.
    VarPtr aggregated =
        EdgeSoftmaxAggregate(attributed_adj, logits_const, base);
    VarPtr completed = GatherRows(aggregated, completion.missing_nodes());
    return Add(base, ScatterRows(completed, completion.missing_nodes(),
                                 data.graph->num_nodes()));
  };

  RunResult result;
  result.times.prelearn_seconds = prelearn_seconds;
  double best_val = -1.0;
  int64_t since_best = 0;
  for (int64_t epoch = 0; epoch < config.train_epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr h = model->Forward(ctx, completed_h0(), /*training=*/true, rng);
    VarPtr loss = head.TrainLoss(h, rng);
    Backward(loss);
    ClipGradNorm(params, 5.0f);
    optimizer.Step();
    ++result.epochs_run;

    if ((epoch + 1) % config.eval_every != 0 &&
        epoch + 1 != config.train_epochs) {
      continue;
    }
    TaskScores val;
    bool new_best = false;
    {
      NoGradGuard no_grad;  // tape-free evaluation forward
      VarPtr h_eval =
          model->Forward(ctx, completed_h0(), /*training=*/false, rng);
      val = head.EvaluateVal(h_eval);
      if (val.primary > best_val) {
        new_best = true;
        result.test = head.EvaluateTest(h_eval);
      }
    }
    if (new_best) {
      best_val = val.primary;
      since_best = 0;
    } else if (++since_best >= config.patience / config.eval_every) {
      break;
    }
  }
  result.times.train_seconds = train_timer.Seconds();
  result.epoch_seconds =
      result.epochs_run > 0 ? result.times.train_seconds / result.epochs_run
                            : 0.0;
  return result;
}

}  // namespace autoac
