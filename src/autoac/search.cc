#include "autoac/search.h"

#include <algorithm>
#include <cmath>

#include <limits>

#include "autoac/checkpoint.h"
#include "autoac/clustering.h"
#include "autoac/completion_params.h"
#include "autoac/trainer.h"
#include "models/factory.h"
#include "tensor/optimizer.h"
#include "util/fault.h"
#include "util/logging.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace autoac {
namespace {

// Softmax over the rows of a plain tensor (no autograd).
Tensor RowSoftmaxValues(const Tensor& x) {
  Tensor out(x.rows(), x.cols());
  for (int64_t i = 0; i < x.rows(); ++i) {
    float max_value = x.at(i, 0);
    for (int64_t j = 1; j < x.cols(); ++j) {
      max_value = std::max(max_value, x.at(i, j));
    }
    float sum = 0.0f;
    for (int64_t j = 0; j < x.cols(); ++j) {
      out.at(i, j) = std::exp(x.at(i, j) - max_value);
      sum += out.at(i, j);
    }
    for (int64_t j = 0; j < x.cols(); ++j) out.at(i, j) /= sum;
  }
  return out;
}

// Saves / restores / nudges parameter values for the DARTS second-order
// finite difference.
std::vector<Tensor> SnapshotValues(const std::vector<VarPtr>& params) {
  std::vector<Tensor> saved;
  saved.reserve(params.size());
  for (const VarPtr& p : params) saved.push_back(p->value);
  return saved;
}

void RestoreValues(const std::vector<VarPtr>& params,
                   const std::vector<Tensor>& saved) {
  for (size_t i = 0; i < params.size(); ++i) params[i]->value = saved[i];
}

void AxpyValues(const std::vector<VarPtr>& params,
                const std::vector<Tensor>& direction, float scale) {
  for (size_t i = 0; i < params.size(); ++i) {
    float* w = params[i]->value.data();
    const float* d = direction[i].data();
    for (int64_t k = 0; k < params[i]->value.numel(); ++k) {
      w[k] += scale * d[k];
    }
  }
}

std::vector<Tensor> SnapshotGrads(const std::vector<VarPtr>& params) {
  std::vector<Tensor> grads;
  grads.reserve(params.size());
  for (const VarPtr& p : params) {
    grads.push_back(p->grad.numel() > 0 ? p->grad
                                        : Tensor::Zeros(p->value.shape()));
  }
  return grads;
}

double GradNorm(const std::vector<Tensor>& grads) {
  double total = 0.0;
  for (const Tensor& g : grads) {
    for (int64_t i = 0; i < g.numel(); ++i) {
      total += static_cast<double>(g.data()[i]) * g.data()[i];
    }
  }
  return std::sqrt(total);
}

// Temporarily clears requires_grad on a parameter set: graphs built inside
// the scope skip those parameters' gradient work entirely. Used by the
// alpha step, which only needs d L_val / d alpha — the weight gradients of
// the whole GNN would otherwise dominate its cost.
class GradPause {
 public:
  explicit GradPause(const std::vector<VarPtr>& params) : params_(params) {
    for (const VarPtr& p : params_) p->requires_grad = false;
  }
  ~GradPause() {
    for (const VarPtr& p : params_) p->requires_grad = true;
  }
  GradPause(const GradPause&) = delete;
  GradPause& operator=(const GradPause&) = delete;

 private:
  const std::vector<VarPtr>& params_;
};

}  // namespace

SearchResult SearchCompletionOps(const TaskData& data,
                                 const ModelContext& ctx,
                                 const ExperimentConfig& config,
                                 CheckpointManager* ckpt) {
  // The search is one checkpoint unit; a journal that already holds its
  // result replays it without touching the supernet at all.
  CheckpointManager::UnitHandle unit;
  if (ckpt != nullptr) {
    unit = ckpt->BeginUnit("search");
    if (unit.completed) {
      SearchResult replay;
      AUTOAC_CHECK(DeserializeSearchResult(unit.payload, &replay))
          << "checkpointed search-unit result failed to parse";
      return replay;
    }
  }

  Rng rng(config.seed * 2654435761u + 97);
  WallTimer timer;

  CompletionConfig completion_config = config.completion;
  completion_config.hidden_dim = config.hidden_dim;
  CompletionModule completion(data.graph, completion_config, rng);
  int64_t n_missing = completion.num_missing();

  ModelConfig model_config;
  model_config.in_dim = config.hidden_dim;
  model_config.hidden_dim = config.hidden_dim;
  model_config.out_dim = config.hidden_dim;
  model_config.num_layers = config.num_layers;
  model_config.num_heads = config.num_heads;
  model_config.dropout = config.dropout;
  model_config.negative_slope = config.negative_slope;
  ModelPtr model = MakeModel(config.model_name, model_config, ctx, rng);
  TaskHead head(data, model_config.out_dim, config.mrr_negatives, rng);

  bool clustered = config.cluster_mode != ClusterMode::kNone;
  int64_t num_clusters = clustered ? config.num_clusters : n_missing;

  ClusterHead cluster_head(data.graph, model_config.out_dim,
                           std::max<int64_t>(2, config.num_clusters), rng);

  VarPtr alpha = MakeParam(InitCompletionParams(num_clusters, rng));
  Adam alpha_optimizer({alpha}, config.lr_alpha, config.wd_alpha);

  std::vector<VarPtr> w_params = completion.Parameters();
  for (const VarPtr& p : model->Parameters()) w_params.push_back(p);
  for (const VarPtr& p : head.Parameters()) w_params.push_back(p);
  if (config.cluster_mode == ClusterMode::kModularity) {
    for (const VarPtr& p : cluster_head.Parameters()) w_params.push_back(p);
  }
  Adam w_optimizer(w_params, config.lr_w, config.wd_w);

  // Initial clusters: random (refined from hidden states as training
  // proceeds; kNone keeps the identity mapping).
  std::vector<int64_t> cluster_of(n_missing);
  for (int64_t i = 0; i < n_missing; ++i) {
    cluster_of[i] =
        clustered ? rng.UniformInt(0, num_clusters - 1) : i;
  }

  SearchResult result;
  int64_t start_epoch = 0;
  double elapsed_before = 0.0;  // search seconds from previous processes
  // Candidate assignments visited during the search. Validation scores
  // measured under different supernet states are not comparable, so the
  // final choice re-scores every candidate under the *trained* supernet
  // (the checkpoint-selection analogue of early stopping; see DESIGN.md).
  std::vector<std::vector<CompletionOpType>> candidates;
  double best_track_val = -1.0;
  std::vector<CompletionOpType> tracked_ops;
  auto current_assignment = [&]() {
    std::vector<CompletionOpType> cluster_ops = ArgmaxOps(ProxC1(alpha->value));
    std::vector<CompletionOpType> op_of(n_missing);
    for (int64_t i = 0; i < n_missing; ++i) {
      op_of[i] = cluster_ops[cluster_of[i]];
    }
    return op_of;
  };
  auto finish = [&]() {
    result.op_per_missing = current_assignment();
    result.cluster_of = cluster_of;
    result.final_alpha = alpha->value;
    result.search_seconds = elapsed_before + timer.Seconds();
  };

  if (ckpt != nullptr && unit.has_partial) {
    // Resume mid-search: the modules above were rebuilt with the identical
    // seeded construction draws; now overwrite every piece of evolving
    // state, including the RNG stream, so epoch `start_epoch` onward is
    // bitwise-identical to the uninterrupted run.
    SearchPartialState st;
    AUTOAC_CHECK(DeserializeSearchPartial(unit.payload, &st))
        << "checkpointed search-unit partial state failed to parse";
    AUTOAC_CHECK(st.alpha.SameShape(alpha->value));
    alpha->value = st.alpha;
    AUTOAC_CHECK_EQ(st.w_params.size(), w_params.size());
    AUTOAC_CHECK_EQ(st.w_grad_alloc.size(), w_params.size());
    for (size_t i = 0; i < w_params.size(); ++i) {
      AUTOAC_CHECK(st.w_params[i].SameShape(w_params[i]->value));
      w_params[i]->value = st.w_params[i];
      if (st.w_grad_alloc[i] != 0) w_params[i]->EnsureGrad();
    }
    alpha_optimizer.ImportState(st.alpha_opt);
    w_optimizer.ImportState(st.w_opt);
    AUTOAC_CHECK(rng.LoadState(st.rng_state));
    AUTOAC_CHECK_EQ(st.cluster_of.size(), cluster_of.size());
    cluster_of = st.cluster_of;
    best_track_val = st.best_track_val;
    tracked_ops.clear();
    for (int64_t raw : st.tracked_ops) {
      AUTOAC_CHECK(raw >= 0 && raw < kNumCompletionOps);
      tracked_ops.push_back(static_cast<CompletionOpType>(raw));
    }
    result.gmoc_trace = st.gmoc_trace;
    start_epoch = st.epoch;
    elapsed_before = st.elapsed_seconds;
  }
  // State at the top of epoch `at_epoch`, serialized for SavePartial.
  auto capture = [&](int64_t at_epoch) {
    SearchPartialState st;
    st.epoch = at_epoch;
    st.alpha = alpha->value;
    st.w_params.reserve(w_params.size());
    for (const VarPtr& p : w_params) {
      st.w_params.push_back(p->value);
      st.w_grad_alloc.push_back(p->grad.numel() > 0 ? 1 : 0);
    }
    st.alpha_opt = alpha_optimizer.ExportState();
    st.w_opt = w_optimizer.ExportState();
    st.rng_state = rng.SaveState();
    st.cluster_of = cluster_of;
    st.best_track_val = best_track_val;
    for (CompletionOpType op : tracked_ops) {
      st.tracked_ops.push_back(static_cast<int64_t>(op));
    }
    st.gmoc_trace = result.gmoc_trace;
    st.elapsed_seconds = elapsed_before + timer.Seconds();
    return SerializeSearchPartial(st);
  };

  int64_t warmup = config.alpha_warmup_epochs >= 0
                       ? config.alpha_warmup_epochs
                       : config.search_epochs / 4;
  for (int64_t epoch = start_epoch; epoch < config.search_epochs; ++epoch) {
    if (StopRequestedAtEpoch(config, epoch)) {
      if (ckpt != nullptr) ckpt->SavePartial(unit, capture(epoch));
      result.interrupted = true;
      finish();
      return result;
    }
    if (ckpt != nullptr && epoch > start_epoch && ckpt->ShouldSave(epoch)) {
      ckpt->SavePartial(unit, capture(epoch));
    }
    FaultPoint("search_epoch");
    // Telemetry: alpha snapshot for the per-epoch flip count, and the
    // epoch's loss values as they become available. All of it is skipped
    // when no sink is open.
    bool telemetry = Telemetry::Enabled();
    Tensor alpha_before = telemetry ? alpha->value : Tensor();
    double epoch_val_loss = std::numeric_limits<double>::quiet_NaN();
    double epoch_gmoc = std::numeric_limits<double>::quiet_NaN();

    // ----- upper level: update alpha on the validation loss -----
    ZeroGrads(w_params);
    alpha->ZeroGrad();
    auto track_assignment = [&](const VarPtr& h_val) {
      // Remember the assignment that looked best during the trajectory; it
      // is re-scored against the final supernet with the other candidates.
      double score = head.EvaluateVal(h_val).primary;
      if (score > best_track_val) {
        best_track_val = score;
        tracked_ops = current_assignment();
      }
    };
    if (epoch == warmup) {
      // Warm-start alpha: probe every uniform single-operation assignment
      // on the validation split under the warmed-up supernet and bias the
      // initial completion parameters toward the stronger operations. This
      // anchors the gradient search at (at least) the best single operation
      // before per-cluster refinement begins.
      double probe_scores[kNumCompletionOps];
      double lo = 1.0, hi = 0.0;
      {
        NoGradGuard no_grad;  // probes only read scores, never backprop
        for (int o = 0; o < kNumCompletionOps; ++o) {
          auto op = static_cast<CompletionOpType>(o);
          std::vector<CompletionOpType> uniform(n_missing, op);
          VarPtr h0 = completion.CompleteDiscrete(uniform);
          VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
          probe_scores[o] = head.EvaluateVal(h).primary;
          lo = std::min(lo, probe_scores[o]);
          hi = std::max(hi, probe_scores[o]);
        }
      }
      double span = std::max(hi - lo, 1e-6);
      for (int64_t m = 0; m < alpha->value.rows(); ++m) {
        for (int o = 0; o < kNumCompletionOps; ++o) {
          float bias = static_cast<float>(0.6 * (probe_scores[o] - lo) / span);
          alpha->value.at(m, o) =
              0.35f + bias + static_cast<float>(rng.Uniform(-0.03, 0.03));
        }
      }
    }
    if (epoch < warmup) {
      // Warm-up: leave alpha untouched while w becomes informative.
    } else if (config.discrete_constraints) {
      // Algorithm 1: derive gradients at the one-hot projection alpha_bar,
      // update the continuous alpha, re-project for the w step. Weight
      // gradients are paused — only d L_val / d alpha_bar is needed.
      GradPause pause(w_params);
      VarPtr alpha_bar = MakeParam(ProxC1(alpha->value));
      VarPtr h0 =
          completion.CompleteWeighted(alpha_bar, cluster_of,
                                      /*skip_zero_ops=*/false);
      VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
      VarPtr loss_val = head.ValLoss(h);
      if (config.memory_limit_bytes > 0 && epoch == warmup &&
          EstimateTapeBytes(loss_val) > config.memory_limit_bytes) {
        result.out_of_memory = true;
        finish();
        if (ckpt != nullptr) {
          ckpt->CompleteUnit(unit, SerializeSearchResult(result));
        }
        return result;
      }
      epoch_val_loss = loss_val->value.data()[0];
      track_assignment(h);
      Backward(loss_val);
      alpha->EnsureGrad();
      if (alpha_bar->grad.numel() > 0) {
        std::copy(alpha_bar->grad.data(),
                  alpha_bar->grad.data() + alpha_bar->grad.numel(),
                  alpha->grad.data());
      }
      alpha_optimizer.Step();
      ProxC2(alpha->value);
    } else {
      // DARTS-style mixture with the one-step-unrolled second-order term
      // (Eq. 7), Hessian-vector product by central finite differences.
      float xi = config.lr_w;

      // (1) grad_w L_train at the mixture.
      VarPtr mix = RowSoftmax(alpha);
      VarPtr h0 = completion.CompleteWeighted(mix, cluster_of, false);
      VarPtr h = model->Forward(ctx, h0, /*training=*/true, rng);
      VarPtr loss_train = head.TrainLoss(h, rng);
      if (config.memory_limit_bytes > 0 && epoch == warmup &&
          EstimateTapeBytes(loss_train) > config.memory_limit_bytes) {
        result.out_of_memory = true;
        finish();
        if (ckpt != nullptr) {
          ckpt->CompleteUnit(unit, SerializeSearchResult(result));
        }
        return result;
      }
      Backward(loss_train);
      std::vector<Tensor> grad_w_train = SnapshotGrads(w_params);
      std::vector<Tensor> w_saved = SnapshotValues(w_params);

      // (2) L_val at w' = w - xi * grad_w: gradients w.r.t. alpha and w'.
      AxpyValues(w_params, grad_w_train, -xi);
      ZeroGrads(w_params);
      alpha->ZeroGrad();
      mix = RowSoftmax(alpha);
      h0 = completion.CompleteWeighted(mix, cluster_of, false);
      h = model->Forward(ctx, h0, /*training=*/false, rng);
      VarPtr loss_val = head.ValLoss(h);
      epoch_val_loss = loss_val->value.data()[0];
      track_assignment(h);
      Backward(loss_val);
      Tensor alpha_grad = alpha->grad.numel() > 0
                              ? alpha->grad
                              : Tensor::Zeros(alpha->value.shape());
      std::vector<Tensor> grad_wprime = SnapshotGrads(w_params);

      // (3) finite-difference HVP: (dL_train/dalpha at w+) - (at w-).
      double norm = GradNorm(grad_wprime);
      if (norm > 1e-8) {
        float eps = static_cast<float>(0.01 / norm);
        for (int sign : {+1, -1}) {
          RestoreValues(w_params, w_saved);
          AxpyValues(w_params, grad_wprime, sign * eps);
          ZeroGrads(w_params);
          alpha->ZeroGrad();
          mix = RowSoftmax(alpha);
          h0 = completion.CompleteWeighted(mix, cluster_of, false);
          h = model->Forward(ctx, h0, /*training=*/true, rng);
          VarPtr perturbed = head.TrainLoss(h, rng);
          Backward(perturbed);
          const Tensor& g = alpha->grad.numel() > 0
                                ? alpha->grad
                                : Tensor::Zeros(alpha->value.shape());
          float coeff = static_cast<float>(sign) * xi / (2.0f * eps);
          for (int64_t i = 0; i < alpha_grad.numel(); ++i) {
            alpha_grad.data()[i] -= coeff * g.data()[i];
          }
        }
      }
      RestoreValues(w_params, w_saved);
      alpha->EnsureGrad();
      std::copy(alpha_grad.data(), alpha_grad.data() + alpha_grad.numel(),
                alpha->grad.data());
      alpha_optimizer.Step();
    }

    // ----- lower level: update w on the training loss (+ lambda L_GmoC) ----
    ZeroGrads(w_params);
    VarPtr h0_train;
    if (config.discrete_constraints) {
      Tensor alpha_bar = ProxC1(alpha->value);
      std::vector<CompletionOpType> cluster_ops = ArgmaxOps(alpha_bar);
      std::vector<CompletionOpType> op_of(n_missing);
      for (int64_t i = 0; i < n_missing; ++i) {
        op_of[i] = cluster_ops[cluster_of[i]];
      }
      h0_train = completion.CompleteDiscrete(op_of);
    } else {
      VarPtr frozen_mix = MakeConst(RowSoftmaxValues(alpha->value));
      h0_train = completion.CompleteWeighted(frozen_mix, cluster_of, false);
    }
    VarPtr h_train = model->Forward(ctx, h0_train, /*training=*/true, rng);
    VarPtr loss = head.TrainLoss(h_train, rng);
    VarPtr assignments;
    if (config.cluster_mode == ClusterMode::kModularity) {
      assignments = cluster_head.Assignments(h_train);
      VarPtr gmoc = cluster_head.ModularityLoss(assignments);
      result.gmoc_trace.push_back(gmoc->value.data()[0]);
      epoch_gmoc = gmoc->value.data()[0];
      loss = Add(loss, Scale(gmoc, config.lambda));
    }
    Backward(loss);
    ClipGradNorm(w_params, 5.0f);
    w_optimizer.Step();

    // ----- cluster refresh -----
    switch (config.cluster_mode) {
      case ClusterMode::kNone:
        break;
      case ClusterMode::kModularity:
        cluster_of =
            cluster_head.HardClusters(assignments, completion.missing_nodes());
        break;
      case ClusterMode::kEmWarmup:
        if (epoch < config.em_warmup_epochs) break;
        [[fallthrough]];
      case ClusterMode::kEm: {
        const Tensor& hv = h_train->value;
        Tensor missing_h(n_missing, hv.cols());
        for (int64_t i = 0; i < n_missing; ++i) {
          int64_t node = completion.missing_nodes()[i];
          for (int64_t j = 0; j < hv.cols(); ++j) {
            missing_h.at(i, j) = hv.at(node, j);
          }
        }
        cluster_of = KMeansCluster(missing_h, num_clusters, 5, rng);
        break;
      }
    }

    if (telemetry) {
      Telemetry& sink = Telemetry::Get();
      int64_t flips = CountArgmaxFlips(alpha_before, alpha->value);
      sink.GetCounter("search.alpha_flips").Increment(flips);
      sink.GetCounter("search.epochs").Increment();
      std::vector<int64_t> histogram = OpHistogram(current_assignment());
      MetricRecord record("search_epoch");
      record.Add("epoch", epoch)
          .Add("phase", epoch < warmup ? "warmup"
               : config.discrete_constraints ? "discrete"
                                             : "darts")
          .Add("train_loss", static_cast<double>(loss->value.data()[0]))
          .Add("val_loss", epoch_val_loss)
          .Add("alpha_entropy", MeanRowEntropy(alpha->value))
          .Add("alpha_flips", flips)
          .Add("gmoc_loss", epoch_gmoc)
          .Add("best_track_val", best_track_val);
      for (int o = 0; o < kNumCompletionOps; ++o) {
        record.Add(std::string("op_") +
                       CompletionOpName(static_cast<CompletionOpType>(o)),
                   histogram[o]);
      }
      sink.Emit(record);
    }
  }
  // Final derivation: score the candidate assignments under the trained
  // supernet and keep the winner. Candidates: the converged argmax
  // assignment, the best assignment tracked along the trajectory, and the
  // four uniform single-operation assignments (so the search never ships
  // an assignment it could observe losing to a trivial one).
  candidates.push_back(current_assignment());
  if (!tracked_ops.empty()) candidates.push_back(tracked_ops);
  for (int o = 0; o < kNumCompletionOps; ++o) {
    candidates.emplace_back(n_missing, static_cast<CompletionOpType>(o));
  }
  std::vector<std::pair<double, size_t>> ranked;
  {
    NoGradGuard no_grad;  // pure scoring pass over the trained supernet
    for (size_t c = 0; c < candidates.size(); ++c) {
      VarPtr h0 = completion.CompleteDiscrete(candidates[c]);
      VarPtr h = model->Forward(ctx, h0, /*training=*/false, rng);
      ranked.emplace_back(head.EvaluateVal(h).primary, c);
    }
  }
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.first > b.first; });
  finish();
  result.op_per_missing = candidates[ranked[0].second];
  for (size_t r = 1; r < ranked.size(); ++r) {
    // Skip duplicates of the winner or earlier runner-ups.
    const auto& ops = candidates[ranked[r].second];
    bool duplicate = ops == result.op_per_missing;
    for (const auto& kept : result.runner_up_ops) {
      duplicate = duplicate || ops == kept;
    }
    if (!duplicate) result.runner_up_ops.push_back(ops);
  }
  if (Telemetry::Enabled()) {
    std::vector<int64_t> histogram = OpHistogram(result.op_per_missing);
    MetricRecord record("search_result");
    record.Add("candidates", static_cast<int64_t>(candidates.size()))
        .Add("best_val", ranked[0].first)
        .Add("alpha_entropy", MeanRowEntropy(result.final_alpha))
        .Add("search_seconds", result.search_seconds);
    for (int o = 0; o < kNumCompletionOps; ++o) {
      record.Add(std::string("op_") +
                     CompletionOpName(static_cast<CompletionOpType>(o)),
                 histogram[o]);
    }
    Telemetry::Get().Emit(record);
  }
  if (ckpt != nullptr) {
    ckpt->CompleteUnit(unit, SerializeSearchResult(result));
  }
  return result;
}

RunResult RunAutoAc(const TaskData& data, const ModelContext& ctx,
                    const ExperimentConfig& config, CheckpointManager* ckpt) {
  SearchResult search = SearchCompletionOps(data, ctx, config, ckpt);
  RunResult result;
  result.gmoc_trace = search.gmoc_trace;
  result.times.search_seconds = search.search_seconds;
  if (search.interrupted) {
    result.interrupted = true;
    return result;
  }
  if (search.out_of_memory) {
    result.out_of_memory = true;
    return result;
  }

  // Evaluation-stage assignment selection: the supernet's validation
  // ranking is biased toward operations whose parameters co-adapted during
  // the search (the one-hot embeddings especially), so the top candidates
  // are re-ranked with short fresh retrains before the full retrain.
  std::vector<std::vector<CompletionOpType>> finalists;
  finalists.push_back(search.op_per_missing);
  for (const auto& ops : search.runner_up_ops) finalists.push_back(ops);

  // Rank the finalists with short fresh retrains (one third of the budget,
  // smoothed validation score), then fully retrain only the winner under
  // the evaluation protocol — selection on validation, reporting on test.
  // The probe retrains are billed to training time. Each retrain is its own
  // checkpoint unit, so completed probes replay instantly on resume and
  // their selection is reproduced exactly.
  std::vector<CompletionOpType> chosen = finalists[0];
  double probe_seconds = 0.0;
  if (finalists.size() > 1) {
    ExperimentConfig probe_config = config;
    probe_config.train_epochs = std::max<int64_t>(10, config.train_epochs / 3);
    double best_val = -1.0;
    for (const auto& ops : finalists) {
      RunResult probe = TrainFixedCompletion(data, ctx, probe_config, ops, ckpt);
      if (probe.interrupted) {
        result.interrupted = true;
        result.times.train_seconds = probe_seconds + probe.times.train_seconds;
        return result;
      }
      probe_seconds += probe.times.train_seconds;
      if (probe.val_smoothed > best_val) {
        best_val = probe.val_smoothed;
        chosen = ops;
      }
    }
  }
  RunResult best_run = TrainFixedCompletion(data, ctx, config, chosen, ckpt);
  best_run.searched_ops = chosen;
  best_run.times.search_seconds = result.times.search_seconds;
  best_run.times.train_seconds += probe_seconds;
  best_run.gmoc_trace = result.gmoc_trace;
  if (best_run.interrupted) return best_run;
  // Fold the searched assignment and alpha into the run digest so crash →
  // resume comparisons also cover the search artifacts.
  uint64_t digest = best_run.state_digest;
  digest = DigestTensor(digest, search.final_alpha);
  for (int64_t c : search.cluster_of) {
    digest = Fnv1a(&c, sizeof(c), digest);
  }
  best_run.state_digest = digest;
  return best_run;
}

}  // namespace autoac
