#ifndef AUTOAC_AUTOAC_TASK_H_
#define AUTOAC_AUTOAC_TASK_H_

#include <utility>
#include <vector>

#include "data/hgb_datasets.h"
#include "models/layers.h"

namespace autoac {

/// The two downstream tasks the paper evaluates (Tables II-X).
enum class TaskKind {
  kNodeClassification,
  kLinkPrediction,
};

/// Task-ready data: for node classification the original graph and HGB
/// split; for link prediction the edge-masked training graph plus the
/// positive-pair splits.
struct TaskData {
  TaskKind task = TaskKind::kNodeClassification;
  HeteroGraphPtr graph;
  NodeSplit node_split;
  std::vector<std::pair<int64_t, int64_t>> train_pos;
  std::vector<std::pair<int64_t, int64_t>> val_pos;
  std::vector<std::pair<int64_t, int64_t>> test_pos;
};

/// Wraps a Dataset for the node-classification task.
TaskData MakeNodeTask(const Dataset& dataset);

/// Wraps a Dataset for the link-prediction task, masking `mask_rate` of the
/// target edge type (Table V uses 0.10; Table X sweeps it).
TaskData MakeLinkTask(const Dataset& dataset, double mask_rate, Rng& rng);

/// Evaluation scores; `primary` is the early-stopping criterion
/// (Micro-F1 for node classification, ROC-AUC for link prediction).
struct TaskScores {
  double primary = 0.0;
  double macro_f1 = 0.0;
  double micro_f1 = 0.0;
  double roc_auc = 0.0;
  double mrr = 0.0;
};

/// Owns the task-specific head: a linear classifier for node classification
/// or the dot-product decoder plus fixed evaluation negatives for link
/// prediction. Stateless across epochs except for its parameters.
class TaskHead {
 public:
  TaskHead(const TaskData& data, int64_t model_out_dim, int64_t mrr_negatives,
           Rng& rng);

  /// Training loss from node representations `h` [N, out_dim]. Link
  /// prediction resamples 1:1 negatives from `rng` each call.
  VarPtr TrainLoss(const VarPtr& h, Rng& rng) const;

  /// Validation loss (the upper-level objective L_val of Eq. 6). Uses fixed
  /// negatives for the link task so alpha's objective is stable.
  VarPtr ValLoss(const VarPtr& h) const;

  /// Early-stopping score on the validation split.
  TaskScores EvaluateVal(const VarPtr& h) const;

  /// Final scores on the test split (Macro/Micro-F1 or ROC-AUC/MRR).
  TaskScores EvaluateTest(const VarPtr& h) const;

  std::vector<VarPtr> Parameters() const;

 private:
  VarPtr Logits(const VarPtr& h) const;
  VarPtr LinkLoss(const VarPtr& h,
                  const std::vector<std::pair<int64_t, int64_t>>& pos,
                  const std::vector<std::pair<int64_t, int64_t>>& neg) const;
  TaskScores EvaluateNode(const VarPtr& h,
                          const std::vector<int64_t>& rows) const;
  TaskScores EvaluateLink(
      const VarPtr& h, const std::vector<std::pair<int64_t, int64_t>>& pos,
      const std::vector<std::pair<int64_t, int64_t>>& neg,
      const std::vector<std::vector<std::pair<int64_t, int64_t>>>* mrr_negs)
      const;

  const TaskData* data_;
  Linear classifier_;  // node task only
  std::vector<std::pair<int64_t, int64_t>> train_neg_val_;  // L_val negatives
  std::vector<std::pair<int64_t, int64_t>> val_neg_;
  std::vector<std::pair<int64_t, int64_t>> test_neg_;
  // Per-test-positive candidate negatives for MRR.
  std::vector<std::vector<std::pair<int64_t, int64_t>>> mrr_negatives_;
};

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_TASK_H_
