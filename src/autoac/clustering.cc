#include "autoac/clustering.h"

#include <cmath>
#include <limits>

#include "util/telemetry.h"

namespace autoac {

ClusterHead::ClusterHead(HeteroGraphPtr graph, int64_t input_dim,
                         int64_t num_clusters, Rng& rng)
    : graph_(std::move(graph)),
      head_(input_dim, num_clusters, rng),
      num_clusters_(num_clusters) {
  adjacency_ =
      graph_->FullAdjacency(AdjNorm::kNone, /*add_self_loops=*/false);
  Tensor degrees(graph_->num_nodes(), 1);
  double total = 0.0;
  for (int64_t i = 0; i < graph_->num_nodes(); ++i) {
    degrees.at(i, 0) = static_cast<float>(graph_->degrees()[i]);
    total += graph_->degrees()[i];
  }
  degree_col_ = MakeConst(std::move(degrees));
  two_edges_ = static_cast<float>(total);  // sum of degrees = 2|E|
  AUTOAC_CHECK_GT(two_edges_, 0.0f);
}

VarPtr ClusterHead::Assignments(const VarPtr& hidden) const {
  return RowSoftmax(head_.Apply(hidden));
}

VarPtr ClusterHead::ModularityLoss(const VarPtr& assignments) const {
  // Tr(C^T A C) = sum(C * (A C)); Tr(C^T d d^T C) = ||C^T d||^2.
  VarPtr ac = SpMM(adjacency_, assignments);
  VarPtr tr_cac = SumAll(Mul(assignments, ac));
  VarPtr ctd = MatMul(Transpose(assignments), degree_col_);  // [M, 1]
  VarPtr tr_cddc = SumSquares(ctd);
  VarPtr modularity = Scale(
      Sub(tr_cac, Scale(tr_cddc, 1.0f / two_edges_)), 1.0f / two_edges_);

  // Collapse regularization: sqrt(M)/|V| * || sum_i C_i ||_F, where the
  // column sums form an M-vector.
  int64_t n = graph_->num_nodes();
  VarPtr ones = MakeConst(Tensor::Full({1, n}, 1.0f));
  VarPtr column_sums = MatMul(ones, assignments);  // [1, M]
  VarPtr collapse = Scale(
      Sqrt(SumSquares(column_sums)),
      std::sqrt(static_cast<float>(num_clusters_)) / static_cast<float>(n));

  VarPtr loss = Add(Scale(modularity, -1.0f), collapse);
  if (Telemetry::Enabled()) {
    // The relaxed modularity Tr(C^T B C) / 2|E| itself, not the loss — the
    // quantity Fig. 4 plots. Sampled per call; the sink's "gauge" snapshot
    // keeps the final value.
    Telemetry& sink = Telemetry::Get();
    sink.GetGauge("clustering.modularity")
        .Set(modularity->value.data()[0]);
    sink.GetGauge("clustering.gmoc_loss").Set(loss->value.data()[0]);
    sink.GetCounter("clustering.modularity_loss_calls").Increment();
  }
  return loss;
}

std::vector<int64_t> ClusterHead::HardClusters(
    const VarPtr& assignments, const std::vector<int64_t>& nodes) const {
  std::vector<int64_t> clusters;
  clusters.reserve(nodes.size());
  const Tensor& c = assignments->value;
  for (int64_t node : nodes) {
    int64_t best = 0;
    for (int64_t m = 1; m < c.cols(); ++m) {
      if (c.at(node, m) > c.at(node, best)) best = m;
    }
    clusters.push_back(best);
  }
  if (Telemetry::Enabled() && num_clusters_ > 0 && !clusters.empty()) {
    std::vector<int64_t> sizes(num_clusters_, 0);
    for (int64_t c : clusters) ++sizes[c];
    int64_t active = 0;
    for (int64_t s : sizes) active += s > 0 ? 1 : 0;
    Telemetry::Get()
        .GetGauge("clustering.active_clusters")
        .Set(static_cast<double>(active));
  }
  return clusters;
}

std::vector<int64_t> KMeansCluster(const Tensor& features, int64_t k,
                                   int64_t iterations, Rng& rng) {
  AUTOAC_CHECK_EQ(features.dim(), 2);
  int64_t n = features.rows();
  int64_t d = features.cols();
  AUTOAC_CHECK_GT(k, 0);
  if (n == 0) return {};
  if (Telemetry::Enabled()) {
    Telemetry::Get().GetCounter("clustering.kmeans_calls").Increment();
  }

  // Initialize centers from random distinct points.
  std::vector<int64_t> seeds =
      Rng(rng.UniformInt(0, 1 << 30)).SampleWithoutReplacement(
          n, std::min(k, n));
  Tensor centers(k, d);
  for (int64_t c = 0; c < k; ++c) {
    int64_t src = seeds[c % seeds.size()];
    for (int64_t j = 0; j < d; ++j) centers.at(c, j) = features.at(src, j);
  }

  std::vector<int64_t> assignment(n, 0);
  for (int64_t it = 0; it < iterations; ++it) {
    // Assign step.
    for (int64_t i = 0; i < n; ++i) {
      float best = std::numeric_limits<float>::max();
      int64_t best_c = 0;
      for (int64_t c = 0; c < k; ++c) {
        float dist = 0.0f;
        for (int64_t j = 0; j < d; ++j) {
          float diff = features.at(i, j) - centers.at(c, j);
          dist += diff * diff;
        }
        if (dist < best) {
          best = dist;
          best_c = c;
        }
      }
      assignment[i] = best_c;
    }
    // Update step.
    centers.Fill(0.0f);
    std::vector<int64_t> counts(k, 0);
    for (int64_t i = 0; i < n; ++i) {
      ++counts[assignment[i]];
      for (int64_t j = 0; j < d; ++j) {
        centers.at(assignment[i], j) += features.at(i, j);
      }
    }
    for (int64_t c = 0; c < k; ++c) {
      if (counts[c] == 0) {
        // Re-seed empty clusters from a random point.
        int64_t src = rng.UniformInt(0, n - 1);
        for (int64_t j = 0; j < d; ++j) centers.at(c, j) = features.at(src, j);
        continue;
      }
      float inv = 1.0f / static_cast<float>(counts[c]);
      for (int64_t j = 0; j < d; ++j) centers.at(c, j) *= inv;
    }
  }
  return assignment;
}

}  // namespace autoac
