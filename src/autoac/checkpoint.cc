#include "autoac/checkpoint.h"

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <sstream>
#include <type_traits>
#include <utility>

#include "autoac/search.h"
#include "data/serialization.h"
#include "util/logging.h"
#include "util/shutdown.h"

namespace autoac {
namespace {

namespace fs = std::filesystem;

constexpr char kCheckpointMagic[4] = {'A', 'A', 'C', 'K'};
constexpr char kFilePrefix[] = "ckpt-";
constexpr char kFileSuffix[] = ".aacc";

std::string CheckpointPath(const std::string& dir, int64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "ckpt-%06lld.aacc",
                static_cast<long long>(seq));
  return dir + "/" + name;
}

/// Extracts the sequence number from a "ckpt-NNNNNN.aacc" basename, or -1.
int64_t SequenceOf(const std::string& basename) {
  const size_t prefix = sizeof(kFilePrefix) - 1;
  const size_t suffix = sizeof(kFileSuffix) - 1;
  if (basename.size() <= prefix + suffix) return -1;
  if (basename.compare(0, prefix, kFilePrefix) != 0) return -1;
  if (basename.compare(basename.size() - suffix, suffix, kFileSuffix) != 0) {
    return -1;
  }
  int64_t seq = 0;
  for (size_t i = prefix; i < basename.size() - suffix; ++i) {
    char c = basename[i];
    if (c < '0' || c > '9') return -1;
    seq = seq * 10 + (c - '0');
  }
  return seq;
}

/// All checkpoint files in `dir`, sorted by ascending sequence number.
std::vector<std::pair<int64_t, std::string>> ListCheckpoints(
    const std::string& dir) {
  std::vector<std::pair<int64_t, std::string>> found;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    int64_t seq = SequenceOf(entry.path().filename().string());
    if (seq >= 0) found.emplace_back(seq, entry.path().string());
  }
  std::sort(found.begin(), found.end());
  return found;
}

void WriteAdamState(std::ostream& out, const AdamState& state) {
  io::WriteI64(out, state.t);
  io::WriteU64(out, state.m.size());
  for (size_t i = 0; i < state.m.size(); ++i) {
    io::WriteTensor(out, state.m[i]);
    io::WriteTensor(out, state.v[i]);
  }
}

bool ReadAdamState(std::istream& in, AdamState* state) {
  uint64_t n = 0;
  if (!io::ReadI64(in, &state->t) || !io::ReadU64(in, &n)) return false;
  if (n > (1ull << 20)) return false;
  state->m.resize(n);
  state->v.resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!io::ReadTensor(in, &state->m[i]) ||
        !io::ReadTensor(in, &state->v[i])) {
      return false;
    }
  }
  return true;
}

void WriteTensorList(std::ostream& out, const std::vector<Tensor>& list) {
  io::WriteU64(out, list.size());
  for (const Tensor& t : list) io::WriteTensor(out, t);
}

bool ReadTensorList(std::istream& in, std::vector<Tensor>* list) {
  uint64_t n = 0;
  if (!io::ReadU64(in, &n) || n > (1ull << 20)) return false;
  list->resize(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (!io::ReadTensor(in, &(*list)[i])) return false;
  }
  return true;
}

void WriteScores(std::ostream& out, const TaskScores& s) {
  io::WriteF64(out, s.primary);
  io::WriteF64(out, s.macro_f1);
  io::WriteF64(out, s.micro_f1);
  io::WriteF64(out, s.roc_auc);
  io::WriteF64(out, s.mrr);
}

bool ReadScores(std::istream& in, TaskScores* s) {
  return io::ReadF64(in, &s->primary) && io::ReadF64(in, &s->macro_f1) &&
         io::ReadF64(in, &s->micro_f1) && io::ReadF64(in, &s->roc_auc) &&
         io::ReadF64(in, &s->mrr);
}

void WriteOps(std::ostream& out, const std::vector<CompletionOpType>& ops) {
  std::vector<int64_t> raw(ops.size());
  for (size_t i = 0; i < ops.size(); ++i) raw[i] = static_cast<int64_t>(ops[i]);
  io::WriteI64Vector(out, raw);
}

bool ReadOps(std::istream& in, std::vector<CompletionOpType>* ops) {
  std::vector<int64_t> raw;
  if (!io::ReadI64Vector(in, &raw)) return false;
  ops->resize(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) {
    if (raw[i] < 0 || raw[i] >= kNumCompletionOps) return false;
    (*ops)[i] = static_cast<CompletionOpType>(raw[i]);
  }
  return true;
}

uint64_t MixPod(uint64_t h, const void* data, size_t size) {
  return Fnv1a(data, size, h);
}

template <typename T>
uint64_t Mix(uint64_t h, const T& v) {
  static_assert(std::is_trivially_copyable<T>::value, "POD only");
  return MixPod(h, &v, sizeof(v));
}

}  // namespace

uint64_t Fnv1a(const void* data, size_t size, uint64_t h) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < size; ++i) {
    h ^= p[i];
    h *= 1099511628211ull;
  }
  return h;
}

uint64_t DigestTensor(uint64_t h, const Tensor& t) {
  for (int64_t e : t.shape()) h = Mix(h, e);
  return Fnv1a(t.data(), sizeof(float) * static_cast<size_t>(t.numel()), h);
}

std::string SerializeSearchPartial(const SearchPartialState& state) {
  std::ostringstream out;
  io::WriteI64(out, state.epoch);
  io::WriteTensor(out, state.alpha);
  WriteTensorList(out, state.w_params);
  io::WriteI64Vector(out, state.w_grad_alloc);
  WriteAdamState(out, state.alpha_opt);
  WriteAdamState(out, state.w_opt);
  io::WriteString(out, state.rng_state);
  io::WriteI64Vector(out, state.cluster_of);
  io::WriteF64(out, state.best_track_val);
  io::WriteI64Vector(out, state.tracked_ops);
  io::WriteF32Vector(out, state.gmoc_trace);
  io::WriteF64(out, state.elapsed_seconds);
  return out.str();
}

bool DeserializeSearchPartial(const std::string& payload,
                              SearchPartialState* state) {
  std::istringstream in(payload);
  return io::ReadI64(in, &state->epoch) && io::ReadTensor(in, &state->alpha) &&
         ReadTensorList(in, &state->w_params) &&
         io::ReadI64Vector(in, &state->w_grad_alloc) &&
         ReadAdamState(in, &state->alpha_opt) &&
         ReadAdamState(in, &state->w_opt) &&
         io::ReadString(in, &state->rng_state) &&
         io::ReadI64Vector(in, &state->cluster_of) &&
         io::ReadF64(in, &state->best_track_val) &&
         io::ReadI64Vector(in, &state->tracked_ops) &&
         io::ReadF32Vector(in, &state->gmoc_trace) &&
         io::ReadF64(in, &state->elapsed_seconds);
}

std::string SerializeTrainerPartial(const TrainerPartialState& state) {
  std::ostringstream out;
  io::WriteI64(out, state.epoch);
  io::WriteU64(out, state.assignment_digest);
  WriteTensorList(out, state.params);
  io::WriteI64Vector(out, state.params_grad_alloc);
  WriteAdamState(out, state.opt);
  io::WriteString(out, state.rng_state);
  io::WriteF64(out, state.best_val);
  io::WriteI64(out, state.since_best);
  io::WriteF64Vector(out, state.val_history);
  for (double s : state.test_scores) io::WriteF64(out, s);
  io::WriteI64(out, state.epochs_run);
  io::WriteF64(out, state.elapsed_seconds);
  return out.str();
}

bool DeserializeTrainerPartial(const std::string& payload,
                               TrainerPartialState* state) {
  std::istringstream in(payload);
  if (!(io::ReadI64(in, &state->epoch) &&
        io::ReadU64(in, &state->assignment_digest) &&
        ReadTensorList(in, &state->params) &&
        io::ReadI64Vector(in, &state->params_grad_alloc) &&
        ReadAdamState(in, &state->opt) &&
        io::ReadString(in, &state->rng_state) &&
        io::ReadF64(in, &state->best_val) &&
        io::ReadI64(in, &state->since_best) &&
        io::ReadF64Vector(in, &state->val_history))) {
    return false;
  }
  for (double& s : state->test_scores) {
    if (!io::ReadF64(in, &s)) return false;
  }
  return io::ReadI64(in, &state->epochs_run) &&
         io::ReadF64(in, &state->elapsed_seconds);
}

std::string SerializeSearchResult(const SearchResult& result) {
  std::ostringstream out;
  WriteOps(out, result.op_per_missing);
  io::WriteI64Vector(out, result.cluster_of);
  io::WriteTensor(out, result.final_alpha);
  io::WriteF64(out, result.search_seconds);
  io::WriteF32Vector(out, result.gmoc_trace);
  io::WriteU32(out, result.out_of_memory ? 1 : 0);
  io::WriteU64(out, result.runner_up_ops.size());
  for (const auto& ops : result.runner_up_ops) WriteOps(out, ops);
  return out.str();
}

bool DeserializeSearchResult(const std::string& payload, SearchResult* result) {
  std::istringstream in(payload);
  uint32_t oom = 0;
  uint64_t runners = 0;
  if (!(ReadOps(in, &result->op_per_missing) &&
        io::ReadI64Vector(in, &result->cluster_of) &&
        io::ReadTensor(in, &result->final_alpha) &&
        io::ReadF64(in, &result->search_seconds) &&
        io::ReadF32Vector(in, &result->gmoc_trace) && io::ReadU32(in, &oom) &&
        io::ReadU64(in, &runners))) {
    return false;
  }
  if (runners > (1ull << 20)) return false;
  result->out_of_memory = oom != 0;
  result->runner_up_ops.resize(runners);
  for (uint64_t i = 0; i < runners; ++i) {
    if (!ReadOps(in, &result->runner_up_ops[i])) return false;
  }
  return true;
}

std::string SerializeRunResult(const RunResult& result) {
  std::ostringstream out;
  WriteScores(out, result.test);
  io::WriteF64(out, result.val_primary);
  io::WriteF64(out, result.val_smoothed);
  io::WriteF64(out, result.times.prelearn_seconds);
  io::WriteF64(out, result.times.search_seconds);
  io::WriteF64(out, result.times.train_seconds);
  io::WriteF64(out, result.epoch_seconds);
  io::WriteI64(out, result.epochs_run);
  io::WriteU32(out, result.out_of_memory ? 1 : 0);
  io::WriteU32(out, result.interrupted ? 1 : 0);
  io::WriteU64(out, result.state_digest);
  WriteOps(out, result.searched_ops);
  io::WriteF32Vector(out, result.gmoc_trace);
  io::WriteI64(out, static_cast<int64_t>(result.final_params.size()));
  for (const Tensor& t : result.final_params) io::WriteTensor(out, t);
  return out.str();
}

bool DeserializeRunResult(const std::string& payload, RunResult* result) {
  std::istringstream in(payload);
  uint32_t oom = 0;
  uint32_t interrupted = 0;
  if (!(ReadScores(in, &result->test) &&
        io::ReadF64(in, &result->val_primary) &&
        io::ReadF64(in, &result->val_smoothed) &&
        io::ReadF64(in, &result->times.prelearn_seconds) &&
        io::ReadF64(in, &result->times.search_seconds) &&
        io::ReadF64(in, &result->times.train_seconds) &&
        io::ReadF64(in, &result->epoch_seconds) &&
        io::ReadI64(in, &result->epochs_run) && io::ReadU32(in, &oom) &&
        io::ReadU32(in, &interrupted) &&
        io::ReadU64(in, &result->state_digest) &&
        ReadOps(in, &result->searched_ops) &&
        io::ReadF32Vector(in, &result->gmoc_trace))) {
    return false;
  }
  int64_t num_params = 0;
  if (!io::ReadI64(in, &num_params) || num_params < 0 ||
      num_params > (int64_t{1} << 20)) {
    return false;
  }
  result->final_params.resize(num_params);
  for (int64_t i = 0; i < num_params; ++i) {
    if (!io::ReadTensor(in, &result->final_params[i])) return false;
  }
  result->out_of_memory = oom != 0;
  result->interrupted = interrupted != 0;
  return true;
}

StatusOr<std::unique_ptr<CheckpointManager>> CheckpointManager::Open(
    const CheckpointOptions& options, uint64_t config_fingerprint) {
  AUTOAC_CHECK(!options.dir.empty());
  std::error_code ec;
  fs::create_directories(options.dir, ec);
  if (ec) {
    return Status::Error("cannot create checkpoint dir '" + options.dir +
                         "': " + ec.message());
  }
  std::unique_ptr<CheckpointManager> manager(
      new CheckpointManager(options, config_fingerprint));
  auto existing = ListCheckpoints(options.dir);
  if (!existing.empty()) manager->next_seq_ = existing.back().first + 1;
  if (options.resume) {
    Status loaded = manager->LoadNewestValid();
    if (!loaded.ok()) return loaded;
  }
  return manager;
}

Status CheckpointManager::LoadNewestValid() {
  auto files = ListCheckpoints(options_.dir);
  for (auto it = files.rbegin(); it != files.rend(); ++it) {
    StatusOr<std::string> payload =
        io::ReadFileChecked(it->second, kCheckpointMagic);
    if (!payload.ok()) {
      AUTOAC_LOG(Warning) << "skipping checkpoint " << it->second << ": "
                          << payload.status().message();
      continue;
    }
    std::istringstream in(payload.TakeValue());
    uint64_t fingerprint = 0;
    uint64_t num_completed = 0;
    uint32_t has_partial = 0;
    std::vector<std::pair<std::string, std::string>> completed;
    std::string partial_kind;
    std::string partial_payload;
    bool ok = io::ReadU64(in, &fingerprint);
    if (ok && fingerprint != fingerprint_) {
      return Status::Error(
          "checkpoint " + it->second +
          " was written under a different configuration "
          "(dataset/model/budget changed); refusing to resume from it");
    }
    ok = ok && io::ReadU64(in, &num_completed) && num_completed < (1ull << 20);
    if (ok) {
      completed.resize(num_completed);
      for (auto& unit : completed) {
        ok = ok && io::ReadString(in, &unit.first) &&
             io::ReadString(in, &unit.second);
      }
    }
    ok = ok && io::ReadU32(in, &has_partial);
    if (ok && has_partial != 0) {
      ok = io::ReadString(in, &partial_kind) &&
           io::ReadString(in, &partial_payload);
    }
    if (!ok) {
      AUTOAC_LOG(Warning) << "skipping checkpoint " << it->second
                          << ": malformed journal payload";
      continue;
    }
    completed_ = std::move(completed);
    has_partial_ = has_partial != 0;
    partial_kind_ = std::move(partial_kind);
    partial_payload_ = std::move(partial_payload);
    AUTOAC_LOG(Info) << "resuming from " << it->second << " ("
                     << completed_.size() << " completed units"
                     << (has_partial_ ? ", partial " + partial_kind_ : "")
                     << ")";
    return Status::Ok();
  }
  return Status::Error("--resume requested but no valid checkpoint found in '" +
                       options_.dir + "'");
}

CheckpointManager::UnitHandle CheckpointManager::BeginUnit(
    const std::string& kind) {
  UnitHandle handle;
  handle.ordinal = next_ordinal_++;
  if (handle.ordinal < static_cast<int64_t>(completed_.size())) {
    const auto& unit = completed_[handle.ordinal];
    AUTOAC_CHECK(unit.first == kind)
        << "checkpoint journal diverged: unit " << handle.ordinal << " is '"
        << unit.first << "' on disk but the pipeline requested '" << kind
        << "'";
    handle.completed = true;
    handle.payload = unit.second;
    return handle;
  }
  active_kind_ = kind;
  if (handle.ordinal == static_cast<int64_t>(completed_.size()) &&
      has_partial_) {
    AUTOAC_CHECK(partial_kind_ == kind)
        << "checkpoint journal diverged: partial unit is '" << partial_kind_
        << "' on disk but the pipeline requested '" << kind << "'";
    handle.has_partial = true;
    handle.payload = partial_payload_;
  }
  return handle;
}

void CheckpointManager::CompleteUnit(const UnitHandle& unit,
                                     std::string result_payload) {
  AUTOAC_CHECK_EQ(unit.ordinal, static_cast<int64_t>(completed_.size()));
  completed_.emplace_back(active_kind_, std::move(result_payload));
  has_partial_ = false;
  partial_kind_.clear();
  partial_payload_.clear();
  Persist();
}

void CheckpointManager::SavePartial(const UnitHandle& unit,
                                    std::string state_payload) {
  AUTOAC_CHECK_EQ(unit.ordinal, static_cast<int64_t>(completed_.size()));
  has_partial_ = true;
  partial_kind_ = active_kind_;
  partial_payload_ = std::move(state_payload);
  Persist();
}

void CheckpointManager::Persist() {
  std::ostringstream out;
  io::WriteU64(out, fingerprint_);
  io::WriteU64(out, completed_.size());
  for (const auto& unit : completed_) {
    io::WriteString(out, unit.first);
    io::WriteString(out, unit.second);
  }
  io::WriteU32(out, has_partial_ ? 1 : 0);
  if (has_partial_) {
    io::WriteString(out, partial_kind_);
    io::WriteString(out, partial_payload_);
  }
  std::string path = CheckpointPath(options_.dir, next_seq_);
  Status written = io::WriteFileAtomic(path, kCheckpointMagic, out.str());
  if (!written.ok()) {
    // A failed save must not kill a healthy run; the previous checkpoint is
    // still the recovery point.
    AUTOAC_LOG(Warning) << "checkpoint save failed: " << written.message();
    return;
  }
  ++next_seq_;
  ++saves_;
  auto files = ListCheckpoints(options_.dir);
  if (options_.keep > 0 &&
      static_cast<int64_t>(files.size()) > options_.keep) {
    size_t excess = files.size() - static_cast<size_t>(options_.keep);
    for (size_t i = 0; i < excess; ++i) {
      std::error_code ec;
      fs::remove(files[i].second, ec);
    }
  }
}

bool StopRequestedAtEpoch(const ExperimentConfig& config,
                          int64_t epochs_completed) {
  if (ShutdownRequested()) return true;
  return config.checkpoint.interrupt_after_epochs >= 0 &&
         epochs_completed >= config.checkpoint.interrupt_after_epochs;
}

uint64_t ConfigFingerprint(const ExperimentConfig& config) {
  uint64_t h = Fnv1a(config.model_name.data(), config.model_name.size());
  h = Mix(h, config.task);
  h = Mix(h, config.hidden_dim);
  h = Mix(h, config.num_layers);
  h = Mix(h, config.num_heads);
  h = Mix(h, config.dropout);
  h = Mix(h, config.negative_slope);
  h = Mix(h, config.train_epochs);
  h = Mix(h, config.patience);
  h = Mix(h, config.eval_every);
  h = Mix(h, config.lr_w);
  h = Mix(h, config.wd_w);
  h = Mix(h, config.lr_alpha);
  h = Mix(h, config.wd_alpha);
  h = Mix(h, config.search_epochs);
  h = Mix(h, config.alpha_warmup_epochs);
  h = Mix(h, config.num_clusters);
  h = Mix(h, config.lambda);
  h = Mix(h, config.cluster_mode);
  h = Mix(h, config.discrete_constraints);
  h = Mix(h, config.em_warmup_epochs);
  h = Mix(h, config.memory_limit_bytes);
  h = Mix(h, config.mrr_negatives);
  h = Mix(h, config.completion.hidden_dim);
  h = Mix(h, config.completion.ppnp_restart);
  h = Mix(h, config.completion.ppnp_steps);
  h = Mix(h, config.seed);
  return h;
}

}  // namespace autoac
