#include "autoac/trainer.h"

#include "autoac/checkpoint.h"
#include "models/factory.h"
#include "tensor/optimizer.h"
#include "util/fault.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace autoac {

std::vector<CompletionOpType> UniformAssignment(int64_t num_missing,
                                                CompletionOpType op) {
  return std::vector<CompletionOpType>(num_missing, op);
}

std::vector<CompletionOpType> RandomAssignment(int64_t num_missing, Rng& rng) {
  std::vector<CompletionOpType> ops(num_missing);
  for (auto& op : ops) {
    op = static_cast<CompletionOpType>(
        rng.UniformInt(0, kNumCompletionOps - 1));
  }
  return ops;
}

int64_t EstimateTapeBytes(const VarPtr& root) {
  int64_t total = 0;
  for (Variable* node : TopologicalOrder(root)) {
    // Forward value plus (for differentiable nodes) the gradient buffer.
    int64_t numel = node->value.numel();
    total += numel * static_cast<int64_t>(sizeof(float));
    if (node->requires_grad) {
      total += numel * static_cast<int64_t>(sizeof(float));
    }
  }
  return total;
}

RunResult TrainFixedCompletion(const TaskData& data, const ModelContext& ctx,
                               const ExperimentConfig& config,
                               const std::vector<CompletionOpType>& op_of,
                               CheckpointManager* ckpt) {
  Rng rng(config.seed);
  CompletionConfig completion_config = config.completion;
  completion_config.hidden_dim = config.hidden_dim;
  CompletionModule completion(data.graph, completion_config, rng);
  AUTOAC_CHECK_EQ(static_cast<int64_t>(op_of.size()),
                  completion.num_missing());

  ModelConfig model_config;
  model_config.in_dim = config.hidden_dim;
  model_config.hidden_dim = config.hidden_dim;
  model_config.out_dim = config.hidden_dim;
  model_config.num_layers = config.num_layers;
  model_config.num_heads = config.num_heads;
  model_config.dropout = config.dropout;
  model_config.negative_slope = config.negative_slope;
  ModelPtr model = MakeModel(
      config.model_name, model_config, ctx, rng,
      /*l2_normalize_output=*/data.task == TaskKind::kLinkPrediction &&
          config.model_name == "SimpleHGN");

  TaskHead head(data, model_config.out_dim, config.mrr_negatives, rng);

  std::vector<VarPtr> params = completion.Parameters();
  for (const VarPtr& p : model->Parameters()) params.push_back(p);
  for (const VarPtr& p : head.Parameters()) params.push_back(p);
  Adam optimizer(params, config.lr_w, config.wd_w);

  RunResult result;
  WallTimer train_timer;
  double best_val = -1.0;
  int64_t since_best = 0;
  std::vector<double> val_history;

  // Checkpoint/resume: the whole run is one "train" unit (see
  // autoac/checkpoint.h). The assignment digest ties a partial state to its
  // op_of, so a journal that drifted out of sync fails loudly.
  uint64_t assignment_digest = kFnvOffsetBasis;
  for (CompletionOpType op : op_of) {
    auto raw = static_cast<int64_t>(op);
    assignment_digest = Fnv1a(&raw, sizeof(raw), assignment_digest);
  }
  CheckpointManager::UnitHandle unit;
  int64_t start_epoch = 0;
  double elapsed_before = 0.0;
  if (ckpt != nullptr) {
    unit = ckpt->BeginUnit("train");
    if (unit.completed) {
      RunResult replay;
      AUTOAC_CHECK(DeserializeRunResult(unit.payload, &replay))
          << "checkpointed train-unit result failed to parse";
      return replay;
    }
    if (unit.has_partial) {
      TrainerPartialState st;
      AUTOAC_CHECK(DeserializeTrainerPartial(unit.payload, &st))
          << "checkpointed train-unit partial state failed to parse";
      AUTOAC_CHECK_EQ(st.assignment_digest, assignment_digest)
          << "checkpointed training state belongs to a different assignment";
      AUTOAC_CHECK_EQ(st.params.size(), params.size());
      AUTOAC_CHECK_EQ(st.params_grad_alloc.size(), params.size());
      for (size_t i = 0; i < params.size(); ++i) {
        AUTOAC_CHECK(st.params[i].SameShape(params[i]->value));
        params[i]->value = st.params[i];
        if (st.params_grad_alloc[i] != 0) params[i]->EnsureGrad();
      }
      optimizer.ImportState(st.opt);
      AUTOAC_CHECK(rng.LoadState(st.rng_state));
      start_epoch = st.epoch;
      best_val = st.best_val;
      since_best = st.since_best;
      val_history = st.val_history;
      result.test.primary = st.test_scores[0];
      result.test.macro_f1 = st.test_scores[1];
      result.test.micro_f1 = st.test_scores[2];
      result.test.roc_auc = st.test_scores[3];
      result.test.mrr = st.test_scores[4];
      result.epochs_run = st.epochs_run;
      elapsed_before = st.elapsed_seconds;
    }
  }
  // State at the top of epoch `at_epoch`, serialized for SavePartial.
  auto capture = [&](int64_t at_epoch) {
    TrainerPartialState st;
    st.epoch = at_epoch;
    st.assignment_digest = assignment_digest;
    st.params.reserve(params.size());
    for (const VarPtr& p : params) {
      st.params.push_back(p->value);
      st.params_grad_alloc.push_back(p->grad.numel() > 0 ? 1 : 0);
    }
    st.opt = optimizer.ExportState();
    st.rng_state = rng.SaveState();
    st.best_val = best_val;
    st.since_best = since_best;
    st.val_history = val_history;
    st.test_scores[0] = result.test.primary;
    st.test_scores[1] = result.test.macro_f1;
    st.test_scores[2] = result.test.micro_f1;
    st.test_scores[3] = result.test.roc_auc;
    st.test_scores[4] = result.test.mrr;
    st.epochs_run = result.epochs_run;
    st.elapsed_seconds = elapsed_before + train_timer.Seconds();
    return SerializeTrainerPartial(st);
  };

  for (int64_t epoch = start_epoch; epoch < config.train_epochs; ++epoch) {
    if (StopRequestedAtEpoch(config, epoch)) {
      if (ckpt != nullptr) ckpt->SavePartial(unit, capture(epoch));
      result.interrupted = true;
      break;
    }
    if (ckpt != nullptr && epoch > start_epoch && ckpt->ShouldSave(epoch)) {
      ckpt->SavePartial(unit, capture(epoch));
    }
    FaultPoint("train_epoch");
    optimizer.ZeroGrad();
    VarPtr h0 = completion.CompleteDiscrete(op_of);
    VarPtr h = model->Forward(ctx, h0, /*training=*/true, rng);
    VarPtr loss = head.TrainLoss(h, rng);
    Backward(loss);
    ClipGradNorm(params, 5.0f);
    optimizer.Step();
    ++result.epochs_run;

    if ((epoch + 1) % config.eval_every != 0 &&
        epoch + 1 != config.train_epochs) {
      if (Telemetry::Enabled()) {
        Telemetry::Get().Emit(MetricRecord("train_epoch")
                                  .Add("epoch", epoch)
                                  .Add("train_loss",
                                       static_cast<double>(
                                           loss->value.data()[0])));
      }
      continue;
    }
    // Evaluation forward (no dropout). Tape-free: validation/test forwards
    // never call Backward, so the guard drops all reverse-mode bookkeeping
    // (closure allocation, parent retention) while producing bitwise the
    // same values as a taped forward.
    TaskScores val;
    bool new_best = false;
    {
      NoGradGuard no_grad;
      VarPtr h0_eval = completion.CompleteDiscrete(op_of);
      VarPtr h_eval = model->Forward(ctx, h0_eval, /*training=*/false, rng);
      val = head.EvaluateVal(h_eval);
      if (val.primary > best_val) {
        new_best = true;
        result.test = head.EvaluateTest(h_eval);
      }
    }
    val_history.push_back(val.primary);
    if (Telemetry::Enabled()) {
      Telemetry::Get().Emit(
          MetricRecord("train_epoch")
              .Add("epoch", epoch)
              .Add("train_loss", static_cast<double>(loss->value.data()[0]))
              .Add("val_primary", val.primary));
    }
    if (new_best) {
      best_val = val.primary;
      since_best = 0;
    } else if (++since_best >= config.patience / config.eval_every) {
      break;
    }
  }
  result.val_primary = best_val;
  if (!val_history.empty()) {
    size_t window = std::min<size_t>(5, val_history.size());
    double sum = 0.0;
    for (size_t i = val_history.size() - window; i < val_history.size(); ++i) {
      sum += val_history[i];
    }
    result.val_smoothed = sum / window;
  }
  result.times.train_seconds = elapsed_before + train_timer.Seconds();
  result.epoch_seconds =
      result.epochs_run > 0 ? result.times.train_seconds / result.epochs_run
                            : 0.0;
  result.searched_ops = op_of;
  if (config.capture_final_params) {
    result.final_params.reserve(params.size());
    for (const VarPtr& p : params) result.final_params.push_back(p->value);
  }
  // Digest over the final parameters, test metrics, and assignment (wall
  // times excluded — they legitimately differ run-to-run). A resumed run
  // must reproduce this value bit for bit.
  uint64_t digest = assignment_digest;
  for (const VarPtr& p : params) digest = DigestTensor(digest, p->value);
  for (double s : {result.test.primary, result.test.macro_f1,
                   result.test.micro_f1, result.test.roc_auc,
                   result.test.mrr, result.val_primary}) {
    digest = Fnv1a(&s, sizeof(s), digest);
  }
  result.state_digest = digest;
  if (ckpt != nullptr && !result.interrupted) {
    ckpt->CompleteUnit(unit, SerializeRunResult(result));
  }
  if (Telemetry::Enabled()) {
    Telemetry& sink = Telemetry::Get();
    sink.GetCounter("train.epochs").Increment(result.epochs_run);
    sink.Emit(MetricRecord("train_run")
                  .Add("epochs_run", result.epochs_run)
                  .Add("best_val", best_val)
                  .Add("val_smoothed", result.val_smoothed)
                  .Add("train_seconds", result.times.train_seconds));
  }
  return result;
}

}  // namespace autoac
