#include "autoac/trainer.h"

#include "models/factory.h"
#include "tensor/optimizer.h"
#include "util/telemetry.h"
#include "util/timer.h"

namespace autoac {

std::vector<CompletionOpType> UniformAssignment(int64_t num_missing,
                                                CompletionOpType op) {
  return std::vector<CompletionOpType>(num_missing, op);
}

std::vector<CompletionOpType> RandomAssignment(int64_t num_missing, Rng& rng) {
  std::vector<CompletionOpType> ops(num_missing);
  for (auto& op : ops) {
    op = static_cast<CompletionOpType>(
        rng.UniformInt(0, kNumCompletionOps - 1));
  }
  return ops;
}

int64_t EstimateTapeBytes(const VarPtr& root) {
  int64_t total = 0;
  for (Variable* node : TopologicalOrder(root)) {
    // Forward value plus (for differentiable nodes) the gradient buffer.
    int64_t numel = node->value.numel();
    total += numel * static_cast<int64_t>(sizeof(float));
    if (node->requires_grad) {
      total += numel * static_cast<int64_t>(sizeof(float));
    }
  }
  return total;
}

RunResult TrainFixedCompletion(const TaskData& data, const ModelContext& ctx,
                               const ExperimentConfig& config,
                               const std::vector<CompletionOpType>& op_of) {
  Rng rng(config.seed);
  CompletionConfig completion_config = config.completion;
  completion_config.hidden_dim = config.hidden_dim;
  CompletionModule completion(data.graph, completion_config, rng);
  AUTOAC_CHECK_EQ(static_cast<int64_t>(op_of.size()),
                  completion.num_missing());

  ModelConfig model_config;
  model_config.in_dim = config.hidden_dim;
  model_config.hidden_dim = config.hidden_dim;
  model_config.out_dim = config.hidden_dim;
  model_config.num_layers = config.num_layers;
  model_config.num_heads = config.num_heads;
  model_config.dropout = config.dropout;
  model_config.negative_slope = config.negative_slope;
  ModelPtr model = MakeModel(
      config.model_name, model_config, ctx, rng,
      /*l2_normalize_output=*/data.task == TaskKind::kLinkPrediction &&
          config.model_name == "SimpleHGN");

  TaskHead head(data, model_config.out_dim, config.mrr_negatives, rng);

  std::vector<VarPtr> params = completion.Parameters();
  for (const VarPtr& p : model->Parameters()) params.push_back(p);
  for (const VarPtr& p : head.Parameters()) params.push_back(p);
  Adam optimizer(params, config.lr_w, config.wd_w);

  RunResult result;
  WallTimer train_timer;
  double best_val = -1.0;
  int64_t since_best = 0;
  std::vector<double> val_history;
  for (int64_t epoch = 0; epoch < config.train_epochs; ++epoch) {
    optimizer.ZeroGrad();
    VarPtr h0 = completion.CompleteDiscrete(op_of);
    VarPtr h = model->Forward(ctx, h0, /*training=*/true, rng);
    VarPtr loss = head.TrainLoss(h, rng);
    Backward(loss);
    ClipGradNorm(params, 5.0f);
    optimizer.Step();
    ++result.epochs_run;

    if ((epoch + 1) % config.eval_every != 0 &&
        epoch + 1 != config.train_epochs) {
      if (Telemetry::Enabled()) {
        Telemetry::Get().Emit(MetricRecord("train_epoch")
                                  .Add("epoch", epoch)
                                  .Add("train_loss",
                                       static_cast<double>(
                                           loss->value.data()[0])));
      }
      continue;
    }
    // Evaluation forward (no dropout).
    VarPtr h0_eval = completion.CompleteDiscrete(op_of);
    VarPtr h_eval = model->Forward(ctx, h0_eval, /*training=*/false, rng);
    TaskScores val = head.EvaluateVal(h_eval);
    val_history.push_back(val.primary);
    if (Telemetry::Enabled()) {
      Telemetry::Get().Emit(
          MetricRecord("train_epoch")
              .Add("epoch", epoch)
              .Add("train_loss", static_cast<double>(loss->value.data()[0]))
              .Add("val_primary", val.primary));
    }
    if (val.primary > best_val) {
      best_val = val.primary;
      since_best = 0;
      result.test = head.EvaluateTest(h_eval);
    } else if (++since_best >= config.patience / config.eval_every) {
      break;
    }
  }
  result.val_primary = best_val;
  if (!val_history.empty()) {
    size_t window = std::min<size_t>(5, val_history.size());
    double sum = 0.0;
    for (size_t i = val_history.size() - window; i < val_history.size(); ++i) {
      sum += val_history[i];
    }
    result.val_smoothed = sum / window;
  }
  result.times.train_seconds = train_timer.Seconds();
  result.epoch_seconds =
      result.epochs_run > 0 ? result.times.train_seconds / result.epochs_run
                            : 0.0;
  result.searched_ops = op_of;
  if (Telemetry::Enabled()) {
    Telemetry& sink = Telemetry::Get();
    sink.GetCounter("train.epochs").Increment(result.epochs_run);
    sink.Emit(MetricRecord("train_run")
                  .Add("epochs_run", result.epochs_run)
                  .Add("best_val", best_val)
                  .Add("val_smoothed", result.val_smoothed)
                  .Add("train_seconds", result.times.train_seconds));
  }
  return result;
}

}  // namespace autoac
