#ifndef AUTOAC_AUTOAC_CHECKPOINT_H_
#define AUTOAC_AUTOAC_CHECKPOINT_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autoac/experiment.h"
#include "tensor/optimizer.h"
#include "util/status.h"

namespace autoac {

struct SearchResult;  // search.h (which includes this header)

// Crash-safe checkpoint/resume for the AutoAC pipeline (DESIGN.md §9).
//
// A pipeline run is a deterministic sequence of *units* — the bi-level
// search, then one TrainFixedCompletion per probe/retrain, repeated per
// seed. The CheckpointManager journals that sequence: completed units store
// their final result payload (replayed instantly on resume), and the single
// in-progress unit stores its mid-stage state (parameters, optimizer
// moments, RNG stream, counters) on a --checkpoint_every cadence. Each save
// rewrites one self-contained container file via io::WriteFileAtomic, so a
// crash at ANY instant — including mid-checkpoint-write — leaves the newest
// intact file as the recovery point. Retention keeps the last
// --checkpoint_keep files; resume scans newest-to-oldest and skips corrupt
// files (CRC-verified) with a warning.
//
// Resume restores the exact trajectory: a resumed run is bitwise-identical
// to an uninterrupted one, at any thread count (the kernels are already
// thread-count-invariant; all remaining state lives in the payloads).

/// FNV-1a 64-bit over raw bytes; pass a previous digest as `h` to chain.
inline constexpr uint64_t kFnvOffsetBasis = 14695981039346656037ull;
uint64_t Fnv1a(const void* data, size_t size,
               uint64_t h = kFnvOffsetBasis);

/// Chains a tensor's shape and float contents into a digest.
uint64_t DigestTensor(uint64_t h, const Tensor& t);

/// Mid-search state at the top of epoch `epoch` — everything
/// SearchCompletionOps needs to continue the exact trajectory.
struct SearchPartialState {
  int64_t epoch = 0;
  Tensor alpha;
  std::vector<Tensor> w_params;
  /// 0/1 per w_param: whether its gradient buffer was allocated. Adam
  /// applies weight decay to allocated-but-zero gradients and skips
  /// unallocated ones, so allocation is trajectory state: an operation's
  /// parameters keep decaying after the search deselects it.
  std::vector<int64_t> w_grad_alloc;
  AdamState alpha_opt;
  AdamState w_opt;
  std::string rng_state;
  std::vector<int64_t> cluster_of;
  double best_track_val = -1.0;
  std::vector<int64_t> tracked_ops;  // CompletionOpType as int64
  std::vector<float> gmoc_trace;
  double elapsed_seconds = 0.0;
};

/// Mid-training state at the top of epoch `epoch` of TrainFixedCompletion.
struct TrainerPartialState {
  int64_t epoch = 0;
  uint64_t assignment_digest = 0;  // guards against op_of drift on resume
  std::vector<Tensor> params;
  std::vector<int64_t> params_grad_alloc;  // see SearchPartialState
  AdamState opt;
  std::string rng_state;
  double best_val = -1.0;
  int64_t since_best = 0;
  std::vector<double> val_history;
  double test_scores[5] = {0, 0, 0, 0, 0};  // primary/macro/micro/auc/mrr
  int64_t epochs_run = 0;
  double elapsed_seconds = 0.0;
};

// Payload codecs. Serialize into an opaque byte string stored by the
// manager; Deserialize returns false on malformed payloads (only reachable
// if a checkpoint from an incompatible build slipped past the fingerprint).
std::string SerializeSearchPartial(const SearchPartialState& state);
bool DeserializeSearchPartial(const std::string& payload,
                              SearchPartialState* state);
std::string SerializeTrainerPartial(const TrainerPartialState& state);
bool DeserializeTrainerPartial(const std::string& payload,
                               TrainerPartialState* state);
std::string SerializeSearchResult(const SearchResult& result);
bool DeserializeSearchResult(const std::string& payload,
                             SearchResult* result);
std::string SerializeRunResult(const RunResult& result);
bool DeserializeRunResult(const std::string& payload, RunResult* result);

/// Orchestrates checkpoint persistence for one pipeline invocation. Not
/// thread-safe; the pipeline drives units strictly sequentially.
class CheckpointManager {
 public:
  /// Opens `options.dir` (created if needed). With options.resume, loads
  /// the newest valid checkpoint: corrupt or truncated files are skipped
  /// with a warning; no valid file at all, or a checkpoint written under a
  /// different `config_fingerprint` (dataset/model/budget drift), is a
  /// Status error.
  static StatusOr<std::unique_ptr<CheckpointManager>> Open(
      const CheckpointOptions& options, uint64_t config_fingerprint);

  const CheckpointOptions& options() const { return options_; }

  /// What BeginUnit found in the journal for the unit it registered.
  struct UnitHandle {
    int64_t ordinal = -1;
    bool completed = false;    // payload holds the unit's final result
    bool has_partial = false;  // payload holds mid-stage state
    std::string payload;
  };

  /// Registers the next unit of the deterministic pipeline sequence.
  /// `kind` ("search" / "train") must match the journal on resume; a
  /// mismatch means the caller's pipeline diverged from the checkpointed
  /// one and is a fatal error.
  UnitHandle BeginUnit(const std::string& kind);

  /// Marks the unit complete with its result payload and persists. The
  /// unit's partial state, if any, is dropped.
  void CompleteUnit(const UnitHandle& unit, std::string result_payload);

  /// Cadence predicate for mid-unit saves.
  bool ShouldSave(int64_t epoch) const {
    return options_.every > 0 && epoch > 0 && epoch % options_.every == 0;
  }

  /// Persists mid-unit state for the active (last begun) unit.
  void SavePartial(const UnitHandle& unit, std::string state_payload);

  /// Number of checkpoint files successfully written by this manager.
  int64_t saves() const { return saves_; }

 private:
  CheckpointManager(CheckpointOptions options, uint64_t fingerprint)
      : options_(std::move(options)), fingerprint_(fingerprint) {}

  Status LoadNewestValid();
  void Persist();

  CheckpointOptions options_;
  uint64_t fingerprint_ = 0;
  int64_t next_ordinal_ = 0;
  std::string active_kind_;  // kind of the unit currently being executed
  int64_t next_seq_ = 0;     // next checkpoint file sequence number
  int64_t saves_ = 0;
  std::vector<std::pair<std::string, std::string>> completed_;  // kind,payload
  bool has_partial_ = false;
  std::string partial_kind_;
  std::string partial_payload_;
};

/// True when the current stage should stop at this epoch boundary: a
/// shutdown signal arrived, or the config's interrupt_after_epochs test
/// hook fired for `epoch`.
bool StopRequestedAtEpoch(const ExperimentConfig& config, int64_t epoch);

/// Fingerprint of the configuration fields that determine the trajectory;
/// the CLI mixes in dataset/task/method identity. Resuming under a
/// different fingerprint is refused.
uint64_t ConfigFingerprint(const ExperimentConfig& config);

}  // namespace autoac

#endif  // AUTOAC_AUTOAC_CHECKPOINT_H_
