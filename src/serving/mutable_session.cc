#include "serving/mutable_session.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "autoac/checkpoint.h"
#include "completion/completion_module.h"
#include "models/factory.h"
#include "tensor/ops.h"
#include "util/check.h"

namespace autoac {
namespace {

std::string HexFingerprint(uint64_t fp) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(fp));
  return buf;
}

/// Sorted union of two sorted id vectors.
std::vector<int64_t> SortedUnion(const std::vector<int64_t>& a,
                                 const std::vector<int64_t>& b) {
  std::vector<int64_t> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  return out;
}

void CopyRow(const Tensor& src, int64_t src_row, Tensor& dst,
             int64_t dst_row) {
  std::copy(src.data() + src_row * src.cols(),
            src.data() + (src_row + 1) * src.cols(),
            dst.data() + dst_row * dst.cols());
}

}  // namespace

MutableSession::MutableSession(std::shared_ptr<InferenceSession> base,
                               const Options& options)
    : base_(std::move(base)), options_(options), graph_(base_->frozen().graph) {
  const FrozenModel& fz = base_->frozen();
  h0_ = fz.h0;               // deep copies: the base session stays pristine
  hidden_ = base_->hidden();
  logits_ = base_->logits();
  // Receptive depth and partial-path eligibility per architecture. The
  // partial path needs every model output row to depend only on a bounded
  // neighbourhood of the input; HAN and MAGNN couple all target rows
  // through SemanticAttention's global mean (as does HetGNN, which also
  // aggregates over non-overridable per-source-type adjacencies), so any
  // delta invalidates every row and only the full refreeze is exact.
  const std::string& name = fz.model_name;
  if (name == "GCN" || name == "GAT" || name == "SimpleHGN" ||
      name == "HGT" || name == "HetSANN") {
    partial_capable_ = true;
    model_hops_ = fz.num_layers;
  } else if (name == "GTN") {
    partial_capable_ = true;
    model_hops_ = 2;  // one composite (2-hop) meta-adjacency convolution
  } else if (name == "GATNE") {
    partial_capable_ = true;
    model_hops_ = 1;
    per_node_params_ = true;  // base embedding is a [num_nodes, d] table
  } else {
    partial_capable_ = false;
    model_hops_ = fz.num_layers;
  }
  for (CompletionOpType op : fz.op_of) {
    ops_present_[static_cast<int>(op)] = true;
  }
}

int64_t MutableSession::num_targets() const {
  int64_t target = base_->frozen().graph->target_node_type();
  return target < 0 ? 0 : graph_.node_count(target);
}

int64_t MutableSession::CompletionRadius() const {
  int64_t c = 0;
  if (ops_present_[static_cast<int>(CompletionOpType::kMean)] ||
      ops_present_[static_cast<int>(CompletionOpType::kGcn)]) {
    c = std::max<int64_t>(c, 1);
  }
  if (ops_present_[static_cast<int>(CompletionOpType::kPpnp)]) {
    c = std::max<int64_t>(c, base_->frozen().ppnp_steps);
  }
  return c;
}

void MutableSession::MarkDirty(const std::vector<int64_t>& logits_rows,
                               const std::vector<int64_t>& h0_rows,
                               int64_t* newly_dirty) {
  for (int64_t g : logits_rows) {
    if (dirty_logits_.insert(g).second) ++*newly_dirty;
  }
  for (int64_t g : h0_rows) dirty_h0_.insert(g);
}

void MutableSession::InsertNodeRow(int64_t pos) {
  auto insert_row = [pos](Tensor& t) {
    Tensor grown = Tensor::Zeros({t.rows() + 1, t.cols()});
    const float* src = t.data();
    float* dst = grown.data();
    std::copy(src, src + pos * t.cols(), dst);
    std::copy(src + pos * t.cols(), src + t.rows() * t.cols(),
              dst + (pos + 1) * t.cols());
    t = std::move(grown);
  };
  insert_row(h0_);
  insert_row(hidden_);
  insert_row(logits_);
  auto shift = [pos](std::unordered_set<int64_t>& ids) {
    std::unordered_set<int64_t> shifted;
    shifted.reserve(ids.size());
    for (int64_t g : ids) shifted.insert(g >= pos ? g + 1 : g);
    ids.swap(shifted);
  };
  shift(dirty_logits_);
  shift(dirty_h0_);
}

StatusOr<MutationResult> MutableSession::Apply(const Mutation& mutation) {
  const FrozenModel& fz = base_->frozen();
  if (!fz.has_completion) {
    return Status::Error(
        "frozen model predates the completion section (v1 artifact); "
        "re-export to enable mutations");
  }
  if (mutation.expect_fingerprint != 0 &&
      mutation.expect_fingerprint != fz.fingerprint) {
    return Status::Error("fingerprint mismatch: artifact is " +
                         HexFingerprint(fz.fingerprint) +
                         ", mutation expected " +
                         HexFingerprint(mutation.expect_fingerprint) +
                         " (model reloaded?)");
  }
  bool was_clean = dirty_logits_.empty();
  MutationResult result;
  std::vector<int64_t> seeds;
  // Influence balls of a removal must be measured on the graph that still
  // has the edge: a row that was reachable only through it is dirty too.
  std::vector<int64_t> pre_logits;
  std::vector<int64_t> pre_h0;
  switch (mutation.kind) {
    case Mutation::Kind::kAddNode: {
      StatusOr<int64_t> type = graph_.NodeTypeIdOf(mutation.node_type);
      if (!type.ok()) return type.status();
      StatusOr<int64_t> local = graph_.AddNode(type.value(),
                                               mutation.attributes);
      if (!local.ok()) return local.status();
      result.node = local.value();
      int64_t pos = graph_.GlobalId(type.value(), local.value());
      InsertNodeRow(pos);
      if (!graph_.attributed(type.value())) {
        // The new node completes with the deterministic default operation.
        ops_present_[static_cast<int>(CompletionOpType::kMean)] = true;
      }
      seeds = {pos};
      break;
    }
    case Mutation::Kind::kAddEdge:
    case Mutation::Kind::kRemoveEdge: {
      StatusOr<int64_t> type = graph_.EdgeTypeIdOf(mutation.edge_type);
      if (!type.ok()) return type.status();
      const HeteroGraph::EdgeTypeInfo& info =
          fz.graph->edge_type(type.value());
      if (mutation.src < 0 ||
          mutation.src >= graph_.node_count(info.src_type) ||
          mutation.dst < 0 ||
          mutation.dst >= graph_.node_count(info.dst_type)) {
        return Status::Error(
            "edge endpoint out of range for edge type \"" +
            mutation.edge_type + "\"");
      }
      seeds = {graph_.GlobalId(info.src_type, mutation.src),
               graph_.GlobalId(info.dst_type, mutation.dst)};
      if (mutation.kind == Mutation::Kind::kRemoveEdge) {
        int64_t c = CompletionRadius();
        pre_logits = graph_.Ball(seeds, c + model_hops_);
        pre_h0 = graph_.Ball(seeds, c);
        Status removed = graph_.RemoveEdge(type.value(), mutation.src,
                                           mutation.dst);
        if (!removed.ok()) return removed;
      } else {
        Status added = graph_.AddEdge(type.value(), mutation.src,
                                      mutation.dst);
        if (!added.ok()) return added;
      }
      break;
    }
  }
  int64_t c = CompletionRadius();
  MarkDirty(SortedUnion(graph_.Ball(seeds, c + model_hops_), pre_logits),
            SortedUnion(graph_.Ball(seeds, c), pre_h0), &result.dirty_rows);
  dirty_rows_marked_ += result.dirty_rows;
  ++mutations_applied_;
  if (was_clean && !dirty_logits_.empty()) {
    first_dirty_ = std::chrono::steady_clock::now();
  }
  if (options_.staleness_ms == 0) Flush();
  return result;
}

void MutableSession::MaybeFlushForRead() {
  if (options_.staleness_ms <= 0) {
    // staleness 0 flushes inside Apply; a dirty row here means a zero-bound
    // policy race is impossible, but flush defensively anyway.
    Flush();
    return;
  }
  auto age = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - first_dirty_);
  if (age.count() >= options_.staleness_ms) Flush();
}

StatusOr<InferenceSession::Prediction> MutableSession::Predict(int64_t node) {
  int64_t target = base_->frozen().graph->target_node_type();
  if (target < 0) {
    return Status::Error("frozen model has no target node type");
  }
  int64_t count = graph_.node_count(target);
  if (node < 0 || node >= count) {
    return Status::Error("node id " + std::to_string(node) +
                         " out of range [0, " + std::to_string(count) + ")");
  }
  int64_t global = graph_.GlobalId(target, node);
  if (dirty_logits_.count(global) != 0) MaybeFlushForRead();
  const float* row = logits_.data() + global * logits_.cols();
  InferenceSession::Prediction prediction;
  prediction.node = node;
  prediction.label = 0;
  prediction.score = row[0];
  for (int64_t cls = 1; cls < logits_.cols(); ++cls) {
    if (row[cls] > prediction.score) {
      prediction.score = row[cls];
      prediction.label = cls;
    }
  }
  return prediction;
}

StatusOr<std::vector<InferenceSession::Prediction>>
MutableSession::PredictBatch(const std::vector<int64_t>& nodes) {
  int64_t target = base_->frozen().graph->target_node_type();
  if (target < 0) {
    return Status::Error("frozen model has no target node type");
  }
  int64_t count = graph_.node_count(target);
  std::vector<int64_t> globals;
  globals.reserve(nodes.size());
  bool any_dirty = false;
  for (int64_t node : nodes) {
    if (node < 0 || node >= count) {
      return Status::Error("node id " + std::to_string(node) +
                           " out of range [0, " + std::to_string(count) +
                           ")");
    }
    int64_t g = graph_.GlobalId(target, node);
    globals.push_back(g);
    any_dirty = any_dirty || dirty_logits_.count(g) != 0;
  }
  auto per_row = [&]() -> StatusOr<std::vector<InferenceSession::Prediction>> {
    std::vector<InferenceSession::Prediction> out;
    out.reserve(nodes.size());
    for (int64_t node : nodes) {
      StatusOr<InferenceSession::Prediction> p = Predict(node);
      if (!p.ok()) return p.status();
      out.push_back(p.value());
    }
    return out;
  };
  if (any_dirty) {
    MaybeFlushForRead();
    // Rows may legitimately stay dirty (stale-but-bounded policy). Stale
    // rows are defined by the logits cache — an added node's row is zeros
    // there until its first flush, which head(hidden) would not reproduce —
    // so the whole batch takes the per-row path.
    for (int64_t g : globals) {
      if (dirty_logits_.count(g) != 0) return per_row();
    }
  }
  if (!batch_head_failed_ &&
      (batch_head_ == nullptr || batch_head_rows_ != hidden_.rows())) {
    StatusOr<compiler::CompiledGraph> compiled = CompileBatchHead(
        base_->frozen(), hidden_.rows(), InferenceSession::kMaxBatchRows);
    if (compiled.ok()) {
      batch_head_ =
          std::make_unique<compiler::CompiledGraph>(compiled.TakeValue());
      batch_head_rows_ = hidden_.rows();
      batch_ids_ = Tensor::Zeros({InferenceSession::kMaxBatchRows});
      batch_inputs_ = {&hidden_, &batch_ids_};
    } else {
      batch_head_failed_ = true;
    }
  }
  if (batch_head_ == nullptr) return per_row();
  std::vector<InferenceSession::Prediction> out;
  out.reserve(nodes.size());
  float* ids = batch_ids_.data();
  constexpr int64_t kRows = InferenceSession::kMaxBatchRows;
  for (size_t begin = 0; begin < nodes.size();
       begin += static_cast<size_t>(kRows)) {
    size_t chunk = std::min<size_t>(kRows, nodes.size() - begin);
    for (size_t i = 0; i < chunk; ++i) {
      ids[i] = static_cast<float>(globals[begin + i]);
    }
    std::fill(ids + chunk, ids + kRows, 0.0f);  // pad with row 0; discarded
    batch_head_->Run(batch_inputs_, &batch_logits_);
    const int64_t classes = batch_logits_.cols();
    for (size_t i = 0; i < chunk; ++i) {
      const float* row = batch_logits_.data() + i * classes;
      InferenceSession::Prediction prediction;
      prediction.node = nodes[begin + i];
      prediction.label = 0;
      prediction.score = row[0];
      for (int64_t cls = 1; cls < classes; ++cls) {
        if (row[cls] > prediction.score) {
          prediction.score = row[cls];
          prediction.label = cls;
        }
      }
      out.push_back(prediction);
    }
  }
  return out;
}

void MutableSession::Flush() {
  if (dirty_logits_.empty() && dirty_h0_.empty()) return;
  std::vector<int64_t> dirty_logits(dirty_logits_.begin(),
                                    dirty_logits_.end());
  std::sort(dirty_logits.begin(), dirty_logits.end());
  std::vector<int64_t> dirty_h0(dirty_h0_.begin(), dirty_h0_.end());
  std::sort(dirty_h0.begin(), dirty_h0.end());
  bool done = partial_capable_ && TryFlushPartial(dirty_logits, dirty_h0);
  if (!done) FlushFull();
  dirty_logits_.clear();
  dirty_h0_.clear();
}

bool MutableSession::TryFlushPartial(const std::vector<int64_t>& dirty_logits,
                                     const std::vector<int64_t>& dirty_h0) {
  const FrozenModel& fz = base_->frozen();
  int64_t c = CompletionRadius();
  // Support ball: every row a dirty logits row reads across `model_hops_`
  // layers, plus every row a dirty H0 row aggregates across the completion
  // radius. Rows of S outside those balls only need their *stored* values.
  std::vector<int64_t> support =
      SortedUnion(graph_.Ball(dirty_logits, model_hops_),
                  graph_.Ball(dirty_h0, c));
  int64_t num_nodes = graph_.num_nodes();
  if (static_cast<int64_t>(support.size()) * 2 > num_nodes) {
    return false;  // not local: the full recompute is cheaper and simpler
  }
  if (static_cast<int64_t>(support.size()) == fz.graph->num_nodes()) {
    // A subgraph with exactly the frozen node count under a non-identity
    // node map defeats the shape-based per-node-parameter detection in
    // BindFrozenParams (a [n_old, d] weight is ambiguous); refreeze instead.
    return false;
  }
  MutableGraph::Subgraph sub = graph_.Extract(support);
  const HeteroGraphPtr& compact = graph_.Compact();

  // Rebuild completion + model on the subgraph (same construction order as
  // RefreezeWithGraph; the init draws are overwritten by the bind).
  Rng rng(fz.seed);
  CompletionConfig completion_config;
  completion_config.hidden_dim = fz.hidden_dim;
  completion_config.ppnp_restart = fz.ppnp_restart;
  completion_config.ppnp_steps = fz.ppnp_steps;
  CompletionModule completion(sub.graph, completion_config, rng);
  ModelContext ctx = BuildModelContext(sub.graph);
  ModelConfig model_config;
  model_config.in_dim = fz.hidden_dim;
  model_config.hidden_dim = fz.hidden_dim;
  model_config.out_dim = fz.hidden_dim;
  model_config.num_layers = fz.num_layers;
  model_config.num_heads = fz.num_heads;
  model_config.dropout = fz.dropout;
  model_config.negative_slope = fz.negative_slope;
  ModelPtr model = MakeModel(fz.model_name, model_config, ctx, rng,
                             /*l2_normalize_output=*/false);

  // Frozen type-local id of each subgraph node (-1 for post-export nodes).
  std::vector<std::vector<int64_t>> frozen_local_of(
      compact->num_node_types());
  for (int64_t t = 0; t < compact->num_node_types(); ++t) {
    const HeteroGraph::NodeTypeInfo& sub_info = sub.graph->node_type(t);
    const HeteroGraph::NodeTypeInfo& full_info = compact->node_type(t);
    int64_t frozen_count = fz.graph->node_type(t).count;
    frozen_local_of[t].resize(sub_info.count);
    for (int64_t l = 0; l < sub_info.count; ++l) {
      int64_t full_local =
          sub.sub_to_full[sub_info.offset + l] - full_info.offset;
      frozen_local_of[t][l] = full_local < frozen_count ? full_local : -1;
    }
  }
  Status bound = BindFrozenParams(fz, *sub.graph, frozen_local_of,
                                  completion.Parameters(),
                                  model->Parameters());
  if (!bound.ok()) return false;  // e.g. an ambiguous shape: refreeze

  // Completion ops for the subgraph's missing nodes, gathered from the
  // extended full assignment (so both paths complete a node identically).
  std::vector<CompletionOpType> full_ops = ExtendOpAssignment(fz, *compact);
  std::vector<int64_t> full_missing_pos(compact->num_nodes(), -1);
  int64_t next_missing = 0;
  for (int64_t t = 0; t < compact->num_node_types(); ++t) {
    const HeteroGraph::NodeTypeInfo& info = compact->node_type(t);
    if (info.attributes.numel() > 0) continue;
    for (int64_t l = 0; l < info.count; ++l) {
      full_missing_pos[info.offset + l] = next_missing++;
    }
  }
  std::vector<CompletionOpType> sub_ops;
  sub_ops.reserve(completion.num_missing());
  for (int64_t sub_id : completion.missing_nodes()) {
    int64_t pos = full_missing_pos[sub.sub_to_full[sub_id]];
    AUTOAC_CHECK(pos >= 0) << "missing-node bookkeeping out of sync";
    sub_ops.push_back(full_ops[pos]);
  }

  NoGradGuard no_grad;
  VarPtr h0_sub = completion.CompleteDiscrete(sub_ops);
  Tensor& h0_values = h0_sub->value;
  // Hybrid H0: rows whose full-graph counterpart is clean take the stored
  // (exact) value — only dirty rows rely on the subgraph recompute, and
  // their aggregation neighbourhoods are fully inside the support ball.
  for (int64_t i = 0; i < h0_values.rows(); ++i) {
    if (dirty_h0_.count(sub.sub_to_full[i]) == 0) {
      CopyRow(h0_, sub.sub_to_full[i], h0_values, i);
    }
  }
  VarPtr h = model->Forward(ctx, h0_sub, /*training=*/false, rng);
  VarPtr logits = AddBias(MatMul(h, MakeConst(fz.classifier_weight)),
                          MakeConst(fz.classifier_bias));
  const Tensor& logit_values = logits->value;
  const Tensor& h_values = h->value;
  // A logits row and its hidden row go stale together (the head is
  // row-wise), so dirty_logits is exactly the set of hidden rows to patch.
  for (int64_t g : dirty_logits) {
    CopyRow(logit_values, sub.full_to_sub[g], logits_, g);
    CopyRow(h_values, sub.full_to_sub[g], hidden_, g);
  }
  for (int64_t g : dirty_h0) {
    CopyRow(h0_values, sub.full_to_sub[g], h0_, g);
  }
  partial_forward_rows_ += static_cast<int64_t>(dirty_logits.size());
  unreported_partial_rows_ += static_cast<int64_t>(dirty_logits.size());
  ++partial_recomputes_;
  return true;
}

void MutableSession::FlushFull() {
  const FrozenModel& fz = base_->frozen();
  const HeteroGraphPtr& compact = graph_.Compact();
  StatusOr<FrozenModel> refrozen =
      RefreezeWithGraph(fz, compact, ExtendOpAssignment(fz, *compact));
  AUTOAC_CHECK(refrozen.ok()) << refrozen.status().message();
  InferenceSession::Options options;
  options.compile = false;  // one-shot forward; compiling buys nothing
  InferenceSession session(refrozen.TakeValue(), options);
  h0_ = session.frozen().h0;
  hidden_ = session.hidden();
  logits_ = session.logits();
  ++full_recomputes_;
}

uint64_t MutableSession::LogitsDigest() {
  Flush();
  return DigestTensor(kFnvOffsetBasis, logits_);
}

const Tensor& MutableSession::FlushedLogits() {
  Flush();
  return logits_;
}

}  // namespace autoac
