#ifndef AUTOAC_SERVING_FEED_H_
#define AUTOAC_SERVING_FEED_H_

#include <cstdint>
#include <string>
#include <vector>

#include "serving/model_registry.h"

namespace autoac {

/// Outcome of replaying a --mutation_feed file at startup.
struct FeedReplayReport {
  int64_t applied = 0;     // deltas validated and applied
  int64_t skipped = 0;     // malformed / non-mutation / failed lines
  int64_t dirty_rows = 0;  // logits rows the applied deltas dirtied
  /// One "line N: why" entry per skipped line, capped at kMaxErrors so a
  /// wholly corrupt feed cannot balloon memory; `skipped` counts them all.
  std::vector<std::string> errors;

  static constexpr int64_t kMaxErrors = 32;
};

/// Replays newline-JSON mutation lines into the registry's mutable
/// overlays. A bad line — truncated JSON, unknown op, non-mutation
/// request, unknown model, or an apply failure (e.g. bad attrs length) —
/// is skipped and counted, never fatal: a server must come up on the
/// well-formed remainder of its feed rather than refuse to start over one
/// corrupt line (DESIGN.md §13). Lines are 1-indexed in error messages to
/// match editors.
FeedReplayReport ReplayMutationFeed(ModelRegistry* registry,
                                    const std::vector<std::string>& lines);

}  // namespace autoac

#endif  // AUTOAC_SERVING_FEED_H_
