#ifndef AUTOAC_SERVING_INFERENCE_SESSION_H_
#define AUTOAC_SERVING_INFERENCE_SESSION_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "compiler/compiled_graph.h"
#include "serving/frozen_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace autoac {

/// Tape-free inference over a FrozenModel (DESIGN.md §10).
///
/// The benchmark graphs are transductive: every node the model can be asked
/// about is already in the frozen graph, so one forward pass determines
/// every answer. The session therefore runs the GNN forward exactly once
/// (under NoGradGuard — zero backward closures, no parent retention),
/// caches the full logits matrix, and serves each request as an O(classes)
/// row lookup. The activation buffers (materialized H0 constant, logits
/// matrix) are allocated once at construction and reused for the lifetime
/// of the session; per-request work allocates nothing.
///
/// The forward runs on the shared deterministic parallel runtime, so the
/// cached logits — and every prediction — are bitwise identical to the
/// training-time evaluation forward at any thread count.
///
/// By default the constructor also *compiles* the forward (DESIGN.md §11):
/// the first forward runs under IrCapture, the src/compiler/ pass pipeline
/// rewrites the captured IR (folding, fusion, in-place), and the arena
/// planner preallocates every intermediate. From then on RecomputeLogits()
/// replays the compiled plan — bitwise identical to the interpreted path at
/// every thread count, but with zero heap tensor allocations in steady
/// state. On a successful compile the rebuilt autograd model and the
/// duplicated leaf constants are released (the compiled kernels pin the
/// weights and adjacency matrices they need), shrinking the session's
/// resident footprint. If the capture is not compilable (an op without a
/// replay kernel) the session silently keeps the interpreted path.
class InferenceSession {
 public:
  struct Options {
    /// Compile the forward at construction. --no_compile clears it; the
    /// interpreted fallback is also what compiled-vs-interpreted identity
    /// tests compare against.
    bool compile = true;
  };

  /// Rebuilds the GNN from the frozen weights, uploads H0, and computes the
  /// logits cache. CHECK-fails on internally inconsistent artifacts (load
  /// validation should have rejected them already). The single-argument
  /// overload uses the default Options (compile on).
  InferenceSession(FrozenModel frozen, const Options& options);
  explicit InferenceSession(FrozenModel frozen)
      : InferenceSession(std::move(frozen), Options()) {}

  /// One prediction for a target-type node addressed by its type-local id.
  struct Prediction {
    int64_t node = -1;   // echo of the requested local id
    int64_t label = -1;  // argmax class
    float score = 0.0f;  // logit of the argmax class
  };

  /// Looks up the prediction for target-local node id `node`. Out-of-range
  /// ids are a Status error (the serving front-end turns it into an error
  /// response, not a crash).
  StatusOr<Prediction> Predict(int64_t node) const;

  /// Re-runs the forward into the existing logits buffer — the compiled
  /// plan when one exists, the interpreted tape-free forward otherwise.
  /// Idempotent — the result is bitwise identical every time. Exposed for
  /// the thread-invariance tests and the serving benchmark.
  void RecomputeLogits();

  int64_t num_targets() const {
    return static_cast<int64_t>(target_ids_.size());
  }
  int64_t num_classes() const { return frozen_.num_classes; }
  /// Full cached logits [num_nodes, num_classes] (row = global node id).
  const Tensor& logits() const { return logits_; }
  const FrozenModel& frozen() const { return frozen_; }

  /// The compiled forward, or nullptr when running interpreted (compile
  /// disabled or the capture was not compilable). Exposed for --dump_ir and
  /// the compiler tests.
  const compiler::CompiledGraph* compiled_graph() const {
    return compiled_.get();
  }

 private:
  /// Captures the forward, runs the pass pipeline + planner, and installs
  /// the compiled plan. The capture's eager execution doubles as the first
  /// logits computation. Leaves the interpreted state untouched on failure.
  void TryCompile();

  FrozenModel frozen_;
  ModelContext ctx_;
  ModelPtr model_;
  VarPtr h0_;            // const leaf holding the materialized H0
  VarPtr cls_weight_;    // const leaves of the classification head
  VarPtr cls_bias_;
  Tensor logits_;        // reused activation buffer
  std::vector<int64_t> target_ids_;  // global id per target-local id
  std::unique_ptr<compiler::CompiledGraph> compiled_;
  std::vector<const Tensor*> compiled_inputs_;  // bound once: {&frozen_.h0}
  Rng rng_;  // required by Model::Forward's signature; never drawn from
             // (training=false makes dropout an identity)
};

}  // namespace autoac

#endif  // AUTOAC_SERVING_INFERENCE_SESSION_H_
