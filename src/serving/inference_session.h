#ifndef AUTOAC_SERVING_INFERENCE_SESSION_H_
#define AUTOAC_SERVING_INFERENCE_SESSION_H_

#include <cstdint>
#include <vector>

#include "serving/frozen_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace autoac {

/// Tape-free inference over a FrozenModel (DESIGN.md §10).
///
/// The benchmark graphs are transductive: every node the model can be asked
/// about is already in the frozen graph, so one forward pass determines
/// every answer. The session therefore runs the GNN forward exactly once
/// (under NoGradGuard — zero backward closures, no parent retention),
/// caches the full logits matrix, and serves each request as an O(classes)
/// row lookup. The activation buffers (materialized H0 constant, logits
/// matrix) are allocated once at construction and reused for the lifetime
/// of the session; per-request work allocates nothing.
///
/// The forward runs on the shared deterministic parallel runtime, so the
/// cached logits — and every prediction — are bitwise identical to the
/// training-time evaluation forward at any thread count.
class InferenceSession {
 public:
  /// Rebuilds the GNN from the frozen weights, uploads H0, and computes the
  /// logits cache. CHECK-fails on internally inconsistent artifacts (load
  /// validation should have rejected them already).
  explicit InferenceSession(FrozenModel frozen);

  /// One prediction for a target-type node addressed by its type-local id.
  struct Prediction {
    int64_t node = -1;   // echo of the requested local id
    int64_t label = -1;  // argmax class
    float score = 0.0f;  // logit of the argmax class
  };

  /// Looks up the prediction for target-local node id `node`. Out-of-range
  /// ids are a Status error (the serving front-end turns it into an error
  /// response, not a crash).
  StatusOr<Prediction> Predict(int64_t node) const;

  /// Re-runs the tape-free forward into the existing logits buffer.
  /// Idempotent — the result is bitwise identical every time. Exposed for
  /// the thread-invariance tests and the serving benchmark.
  void RecomputeLogits();

  int64_t num_targets() const {
    return static_cast<int64_t>(target_ids_.size());
  }
  int64_t num_classes() const { return frozen_.num_classes; }
  /// Full cached logits [num_nodes, num_classes] (row = global node id).
  const Tensor& logits() const { return logits_; }
  const FrozenModel& frozen() const { return frozen_; }

 private:
  FrozenModel frozen_;
  ModelContext ctx_;
  ModelPtr model_;
  VarPtr h0_;            // const leaf holding the materialized H0
  VarPtr cls_weight_;    // const leaves of the classification head
  VarPtr cls_bias_;
  Tensor logits_;        // reused activation buffer
  std::vector<int64_t> target_ids_;  // global id per target-local id
  Rng rng_;  // required by Model::Forward's signature; never drawn from
             // (training=false makes dropout an identity)
};

}  // namespace autoac

#endif  // AUTOAC_SERVING_INFERENCE_SESSION_H_
