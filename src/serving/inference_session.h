#ifndef AUTOAC_SERVING_INFERENCE_SESSION_H_
#define AUTOAC_SERVING_INFERENCE_SESSION_H_

#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

#include "compiler/compiled_graph.h"
#include "serving/frozen_model.h"
#include "util/rng.h"
#include "util/status.h"

namespace autoac {

/// Tape-free inference over a FrozenModel (DESIGN.md §10).
///
/// The benchmark graphs are transductive: every node the model can be asked
/// about is already in the frozen graph, so one forward pass determines
/// every answer. The session therefore runs the GNN forward exactly once
/// (under NoGradGuard — zero backward closures, no parent retention),
/// caches the full logits matrix, and serves each request as an O(classes)
/// row lookup. The activation buffers (materialized H0 constant, logits
/// matrix) are allocated once at construction and reused for the lifetime
/// of the session; per-request work allocates nothing.
///
/// The forward runs on the shared deterministic parallel runtime, so the
/// cached logits — and every prediction — are bitwise identical to the
/// training-time evaluation forward at any thread count.
///
/// By default the constructor also *compiles* the forward (DESIGN.md §11):
/// the first forward runs under IrCapture, the src/compiler/ pass pipeline
/// rewrites the captured IR (folding, fusion, in-place), and the arena
/// planner preallocates every intermediate. From then on RecomputeLogits()
/// replays the compiled plan — bitwise identical to the interpreted path at
/// every thread count, but with zero heap tensor allocations in steady
/// state. On a successful compile the rebuilt autograd model and the
/// duplicated leaf constants are released (the compiled kernels pin the
/// weights and adjacency matrices they need), shrinking the session's
/// resident footprint. If the capture is not compilable (an op without a
/// replay kernel) the session silently keeps the interpreted path.
class InferenceSession {
 public:
  struct Options {
    /// Compile the forward at construction. --no_compile clears it; the
    /// interpreted fallback is also what compiled-vs-interpreted identity
    /// tests compare against.
    bool compile = true;
  };

  /// Rebuilds the GNN from the frozen weights, uploads H0, and computes the
  /// logits cache. CHECK-fails on internally inconsistent artifacts (load
  /// validation should have rejected them already). The single-argument
  /// overload uses the default Options (compile on).
  InferenceSession(FrozenModel frozen, const Options& options);
  explicit InferenceSession(FrozenModel frozen)
      : InferenceSession(std::move(frozen), Options()) {}

  /// One prediction for a target-type node addressed by its type-local id.
  struct Prediction {
    int64_t node = -1;   // echo of the requested local id
    int64_t label = -1;  // argmax class
    float score = 0.0f;  // logit of the argmax class
  };

  /// Looks up the prediction for target-local node id `node`. Out-of-range
  /// ids are a Status error (the serving front-end turns it into an error
  /// response, not a crash).
  StatusOr<Prediction> Predict(int64_t node) const;

  /// Rows per compiled batch-head execution; longer requests chunk. Also the
  /// batch size the CI benchmark gate compares against RecomputeLogits.
  static constexpr int64_t kMaxBatchRows = 64;

  /// Batch prediction (DESIGN.md §14): gathers the requested rows' hidden
  /// features and runs the head-only compiled batch forward
  /// ([B, hidden_dim] @ classifier) instead of reading the full-graph
  /// logits table. Answers are bitwise identical to per-row Predict at
  /// every thread count — the batch head's fused kernel accumulates each
  /// output row exactly like the full logits pass does. Any out-of-range id
  /// fails the whole request before any compute. Sessions without a
  /// compiled batch head (interpreted mode, or graphs whose row ids exceed
  /// the float exact-integer range) fall back to per-row lookups.
  StatusOr<std::vector<Prediction>> PredictBatch(
      const std::vector<int64_t>& nodes);

  /// Re-runs the forward into the existing logits buffer — the compiled
  /// plan when one exists, the interpreted tape-free forward otherwise.
  /// Idempotent — the result is bitwise identical every time. Exposed for
  /// the thread-invariance tests and the serving benchmark.
  void RecomputeLogits();

  int64_t num_targets() const {
    return static_cast<int64_t>(target_ids_.size());
  }
  int64_t num_classes() const { return frozen_.num_classes; }
  /// Full cached logits [num_nodes, num_classes] (row = global node id).
  const Tensor& logits() const { return logits_; }
  /// Cached GNN hidden features [num_nodes, hidden_dim] (row = global node
  /// id) — the support features the head-only batch forward gathers from.
  const Tensor& hidden() const { return hidden_; }
  const FrozenModel& frozen() const { return frozen_; }

  /// The compiled GNN body (h0 -> hidden), or nullptr when running
  /// interpreted (compile disabled or the capture was not compilable).
  /// Exposed for --dump_ir and the compiler tests.
  const compiler::CompiledGraph* compiled_graph() const {
    return compiled_body_.get();
  }
  /// The compiled head-only batch forward ({hidden, ids} -> [B, classes]),
  /// or nullptr when unavailable. Exposed for tests.
  const compiler::CompiledGraph* batch_head_graph() const {
    return compiled_batch_head_.get();
  }

 private:
  /// Captures the forward in two stages — GNN body (h0 -> hidden), then
  /// classifier head (hidden -> logits) — runs the pass pipeline + planner
  /// on each, and installs the compiled plans plus the head-only batch
  /// forward. The captures' eager execution doubles as the first hidden /
  /// logits computation. Leaves the interpreted state untouched on failure.
  void TryCompile();

  FrozenModel frozen_;
  ModelContext ctx_;
  ModelPtr model_;
  VarPtr h0_;            // const leaf holding the materialized H0
  VarPtr cls_weight_;    // const leaves of the classification head
  VarPtr cls_bias_;
  Tensor hidden_;        // reused activation buffers
  Tensor logits_;
  std::vector<int64_t> target_ids_;  // global id per target-local id
  std::unique_ptr<compiler::CompiledGraph> compiled_body_;
  std::unique_ptr<compiler::CompiledGraph> compiled_head_;
  std::unique_ptr<compiler::CompiledGraph> compiled_batch_head_;
  std::vector<const Tensor*> compiled_inputs_;  // bound once: {&frozen_.h0}
  std::vector<const Tensor*> head_inputs_;      // {&hidden_}
  std::vector<const Tensor*> batch_inputs_;     // {&hidden_, &batch_ids_}
  Tensor batch_ids_;     // [kMaxBatchRows] request rows, padded with row 0
  Tensor batch_logits_;  // [kMaxBatchRows, num_classes] batch output buffer
  Rng rng_;  // required by Model::Forward's signature; never drawn from
             // (training=false makes dropout an identity)
};

/// Compiles the head-only batch forward for `frozen`'s classifier over a
/// hidden-feature matrix with `hidden_rows` rows (DESIGN.md §14): inputs
/// {hidden [hidden_rows, hidden_dim], ids [max_rows]}, output
/// [max_rows, num_classes]. The ids input carries row indices as exact
/// integer floats, so compilation is refused once hidden_rows reaches 2^24.
/// For quantized artifacts the classifier weight enters the capture as a
/// Dequantize node, which the pass pipeline folds at compile time.
/// CompiledGraph::Run checks input shapes strictly, so a session whose
/// hidden overlay grows (MutableSession after add_node) recompiles at the
/// new row count.
StatusOr<compiler::CompiledGraph> CompileBatchHead(const FrozenModel& frozen,
                                                   int64_t hidden_rows,
                                                   int64_t max_rows);

}  // namespace autoac

#endif  // AUTOAC_SERVING_INFERENCE_SESSION_H_
