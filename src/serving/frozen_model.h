#ifndef AUTOAC_SERVING_FROZEN_MODEL_H_
#define AUTOAC_SERVING_FROZEN_MODEL_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "autoac/experiment.h"
#include "autoac/task.h"
#include "completion/op.h"
#include "graph/hetero_graph.h"
#include "models/model.h"
#include "tensor/quantize.h"
#include "tensor/tensor.h"
#include "util/status.h"

namespace autoac {

/// A trained AutoAC run frozen into a self-contained serving artifact
/// (DESIGN.md §10). The artifact deliberately contains no optimizer state,
/// no search state, and no completion parameters: the searched discrete
/// assignment is applied *once* at export time and the resulting completed
/// attribute matrix H0 is stored materialized, so the serving path never
/// re-runs the MEAN/GCN/PPNP aggregations or the one-hot scatter.
///
/// On disk the artifact is the standard checksummed container
/// (data/serialization.h) with magic "AACM": magic | version | size | crc |
/// payload. On top of the CRC (which catches random corruption) the payload
/// embeds a content fingerprint recomputed on load, which catches *coherent*
/// edits — a payload rewritten by a drifted builder, or a field patched
/// without re-freezing — that a checksum written alongside the edit would
/// not.
struct FrozenModel {
  // --- compatibility header -------------------------------------------------
  // Enough of the training-time ExperimentConfig to rebuild the exact GNN
  // the weights belong to. A loader refuses an artifact whose stored
  // fingerprint does not match the one recomputed from this content.
  std::string model_name = "SimpleHGN";
  int64_t hidden_dim = 64;
  int64_t num_layers = 2;
  int64_t num_heads = 2;
  float dropout = 0.1f;
  float negative_slope = 0.05f;
  uint64_t seed = 1;          // training seed (shapes + init stream)
  int64_t num_classes = 0;
  uint64_t fingerprint = 0;   // ComputeFrozenFingerprint over the rest

  // --- frozen content -------------------------------------------------------
  /// The (finalized) training graph; serving rebuilds the model context
  /// (cached adjacencies) from it.
  HeteroGraphPtr graph;
  /// Discretized completion-operation choice per missing node, in
  /// CompletionModule::missing_nodes() order. Informational at serve time
  /// (H0 is already materialized) but kept for provenance and tooling.
  std::vector<CompletionOpType> op_of;
  /// Materialized completed attribute matrix [num_nodes, hidden_dim]:
  /// CompleteDiscrete(op_of) evaluated once at export under NoGradGuard.
  Tensor h0;
  /// Trained GNN weights in Model::Parameters() order.
  std::vector<Tensor> model_params;
  /// Node-classification head: logits = h @ weight + bias.
  Tensor classifier_weight;  // [out_dim, num_classes]
  Tensor classifier_bias;    // [num_classes]

  // --- completion section (v2) ----------------------------------------------
  // Streaming mutation (DESIGN.md §12) needs to *re-run* the completion
  // operations for dirty rows, so artifacts now also carry the trained
  // completion parameters in CompletionModule::Parameters() order plus the
  // PPNP hyperparameters. The section is appended after the v1 payload and
  // detected by its presence before EOF; v1 artifacts load fine (with
  // has_completion false) but refuse mutations.
  bool has_completion = false;
  std::vector<Tensor> completion_params;
  float ppnp_restart = 0.15f;
  int64_t ppnp_steps = 6;

  // --- storage encoding -----------------------------------------------------
  /// How the artifact's tensor payloads were encoded on disk (DESIGN.md §14).
  /// kF32 artifacts are byte-identical to the pre-quantization layout. For
  /// f16/i8 artifacts every large matrix is stored quantized and the stored
  /// fingerprint covers the *decoded* content, so the loader's
  /// recompute-and-refuse path needs no quantization awareness: flipping any
  /// stored byte changes some decoded tensor and therefore the recomputed
  /// fingerprint. Not itself part of the fingerprint.
  TensorEncoding encoding = TensorEncoding::kF32;
  /// The classifier weight exactly as stored, retained on quantized loads so
  /// the compiler's dequantize-on-load pass can fold it out of a Dequantize
  /// IR node (src/compiler/passes.cc); null for f32 artifacts.
  std::shared_ptr<const EncodedTensor> encoded_classifier_weight;
};

/// Content fingerprint over every field except `fingerprint` itself
/// (FNV-1a chained over the header fields, graph shape, assignment, and all
/// tensors). Stable across save/load round trips.
uint64_t ComputeFrozenFingerprint(const FrozenModel& model);

/// Freezes a completed training run into a FrozenModel. `run` must come
/// from a node-classification run executed with
/// ExperimentConfig::capture_final_params set (so RunResult::final_params
/// holds the trained values) and must carry the searched assignment.
/// Reconstructs the completion module / model / task head exactly as
/// TrainFixedCompletion does (same Rng(config.seed) construction order, so
/// every shape matches), overwrites their parameters with the trained
/// values, and materializes H0 tape-free.
StatusOr<FrozenModel> FreezeTrainedRun(const TaskData& data,
                                       const ModelContext& ctx,
                                       const ExperimentConfig& config,
                                       const RunResult& run);

/// Writes the artifact atomically (temp + fsync + rename) with magic
/// "AACM". The stored fingerprint is written verbatim from
/// `model.fingerprint` — FreezeTrainedRun sets it; tests exercise the
/// mismatch-refusal path by saving a tampered value.
Status SaveFrozenModel(const FrozenModel& model, const std::string& path);

/// Options for the encoding-aware save below.
struct FrozenSaveOptions {
  /// Requested payload encoding. kF32 writes the legacy layout byte for
  /// byte (stored fingerprint taken verbatim from `model.fingerprint`).
  /// kF16/kI8 quantize every tensor ChooseEncoding admits — H0, graph
  /// attribute matrices, model/completion parameters, the classifier weight —
  /// and store a fingerprint recomputed over the *decoded* content.
  TensorEncoding encoding = TensorEncoding::kF32;
  /// When non-null, receives the fingerprint actually written to disk (the
  /// decoded-content fingerprint for quantized saves, `model.fingerprint`
  /// otherwise) — what PeekFrozenFingerprint will report for the file.
  uint64_t* stored_fingerprint = nullptr;
};

/// Encoding-aware artifact writer (DESIGN.md §14). With default options this
/// is exactly SaveFrozenModel above. Quantized artifacts keep the same
/// container framing and header fields; after the stored fingerprint they
/// write a negative sentinel (unambiguous: the legacy layout continues with
/// the graph's strictly positive node-type count), the artifact-level
/// encoding tag, and then every tensor as a tagged EncodedTensor payload.
Status SaveFrozenModel(const FrozenModel& model, const std::string& path,
                       const FrozenSaveOptions& options);

/// Reads an artifact written by SaveFrozenModel: container magic / version /
/// CRC checks first, then allocation-bounded payload parsing, then shape
/// validation, then fingerprint recomputation. Any mismatch is a Status
/// error, never a crash.
StatusOr<FrozenModel> LoadFrozenModel(const std::string& path);

/// Reads only the artifact header (container magic / version / CRC, then the
/// compatibility fields) and returns the *stored* fingerprint without
/// parsing the graph or any tensor. The CRC guards the whole payload, so a
/// match against a live session's fingerprint proves the artifact content is
/// unchanged — the registry uses this to make fingerprint-stable SIGHUP
/// reloads skip the full parse and the forward entirely.
StatusOr<uint64_t> PeekFrozenFingerprint(const std::string& path);

/// Extends the frozen completion-op assignment to a graph grown from
/// frozen.graph (same types, same attributed-ness, nodes appended at the
/// end of each type's local range): existing missing nodes keep their
/// searched operation; missing nodes attached after export get kMean — a
/// deterministic choice shared by the incremental and the full-recompute
/// paths, so both complete a new node identically.
std::vector<CompletionOpType> ExtendOpAssignment(const FrozenModel& frozen,
                                                 const HeteroGraph& graph);

/// Overwrites the values of `completion_params` / `model_params` (the
/// Parameters() of a CompletionModule / Model rebuilt on `graph`) with the
/// frozen model's trained values. `graph` may be the full mutated graph or
/// an extracted subgraph of it; `frozen_local_of[t][l]` maps node (t, l)
/// of `graph` to its frozen type-local id, or -1 for nodes without a
/// frozen counterpart (attached after export). Per-node-row parameters —
/// one-hot embedding tables and [num_nodes, d] model parameters such as
/// GATNE's base embedding — are row-gathered through that map with zero
/// rows for new nodes; everything else must match shape exactly.
Status BindFrozenParams(
    const FrozenModel& frozen, const HeteroGraph& graph,
    const std::vector<std::vector<int64_t>>& frozen_local_of,
    const std::vector<VarPtr>& completion_params,
    const std::vector<VarPtr>& model_params);

/// Re-freezes `frozen` onto a mutated graph: rebuilds the completion
/// module and GNN on `graph`, binds the trained parameters
/// (BindFrozenParams with the canonical append layout), re-materializes H0
/// under `op_of` (ExtendOpAssignment of the mutated graph), and recomputes
/// the fingerprint. This *is* the from-scratch reference the incremental
/// path is tested bitwise against, and the full-recompute fallback the
/// serving layer uses when a delta's K-hop ball stops being local.
/// Requires a v2 artifact (has_completion).
StatusOr<FrozenModel> RefreezeWithGraph(const FrozenModel& frozen,
                                        HeteroGraphPtr graph,
                                        const std::vector<CompletionOpType>& op_of);

}  // namespace autoac

#endif  // AUTOAC_SERVING_FROZEN_MODEL_H_
