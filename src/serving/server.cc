#include "serving/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <charconv>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>

#include "util/fault.h"
#include "util/shutdown.h"
#include "util/telemetry.h"

namespace autoac {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- minimal JSON helpers ---------------------------------------------------
// The request grammar is one flat object per line; a full JSON library is
// not worth a dependency for that. The scanner below is strict about what
// it accepts (unknown keys, malformed values, and out-of-range integers are
// errors, not silently ignored) and never reads past the line.

struct Scanner {
  const std::string& s;
  size_t i = 0;

  void SkipSpace() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipSpace();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    SkipSpace();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return false;
        char esc = s[i++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: return false;  // \uXXXX etc. not needed for ids
        }
      } else {
        out->push_back(c);
      }
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }
  bool ParseInt(int64_t* out) {
    SkipSpace();
    size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    size_t digits = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i == digits) return false;
    errno = 0;
    int64_t value = std::strtoll(s.c_str() + start, nullptr, 10);
    if (errno == ERANGE) return false;  // overflow is malformed, not INT64_MAX
    *out = value;
    return true;
  }
  bool ParseFloat(float* out) {
    SkipSpace();
    // Token scan enforcing the JSON number grammar exactly —
    // -?digits[.digits][(e|E)[sign]digits] with required digits in every
    // part — so "+1", "12.", ".5", "1.5abc", "nan"/"inf" and hex floats are
    // all rejected at the token level. The conversion then runs over
    // exactly that token via std::from_chars: locale-independent (strtof
    // under a comma-decimal locale stops at the '.' and silently rejects
    // valid requests) and unable to consume past the scanned token.
    size_t start = i;
    if (i < s.size() && s[i] == '-') ++i;
    size_t int_digits = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) ++i;
    if (i == int_digits) return false;
    if (i < s.size() && s[i] == '.') {
      ++i;
      size_t frac_digits = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      if (i == frac_digits) return false;
    }
    if (i < s.size() && (s[i] == 'e' || s[i] == 'E')) {
      ++i;
      if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
      size_t exp_digits = i;
      while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
        ++i;
      }
      if (i == exp_digits) return false;
    }
    float value = 0.0f;
    std::from_chars_result parsed =
        std::from_chars(s.data() + start, s.data() + i, value);
    // Out-of-range magnitudes are malformed, not saturated to inf/0 — the
    // old strtof path ignored ERANGE and fed inf into attribute rows.
    if (parsed.ec != std::errc() || parsed.ptr != s.data() + i) return false;
    *out = value;
    return true;
  }
  /// "[f, f, ...]" (possibly empty) into `out`.
  bool ParseFloatArray(std::vector<float>* out) {
    if (!Eat('[')) return false;
    out->clear();
    if (Eat(']')) return true;
    while (true) {
      float v = 0.0f;
      if (!ParseFloat(&v)) return false;
      out->push_back(v);
      if (Eat(',')) continue;
      return Eat(']');
    }
  }
};

const char* MutationOpName(Mutation::Kind kind) {
  switch (kind) {
    case Mutation::Kind::kAddNode: return "add_node";
    case Mutation::Kind::kAddEdge: return "add_edge";
    case Mutation::Kind::kRemoveEdge: return "remove_edge";
  }
  return "?";
}

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default: {
        // Escape via the byte value: a negative signed char fed to %04x
        // would sign-extend into garbage like ￿ffc3. Bytes >= 0x20
        // (including UTF-8 continuation bytes) pass through verbatim.
        unsigned char byte = static_cast<unsigned char>(c);
        if (byte < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(byte));
          out += buf;
        } else {
          out.push_back(c);
        }
      }
    }
  }
  return out;
}

}  // namespace

bool ParseServeRequestLine(const std::string& line, ServeRequest* request,
                           std::string* error) {
  *request = ServeRequest();
  Scanner sc{line};
  if (!sc.Eat('{')) {
    *error = "expected a JSON object";
    return false;
  }
  bool have_node = false;
  bool have_op = false;
  bool have_type = false, have_attrs = false;
  bool have_edge = false, have_src = false, have_dst = false;
  std::string mutation_key;  // first mutation-only key seen, for errors
  if (!sc.Eat('}')) {  // non-empty object
    while (true) {
      std::string key;
      if (!sc.ParseString(&key)) {
        *error = "expected a string key";
        return false;
      }
      if (!sc.Eat(':')) {
        *error = "expected ':' after key \"" + key + "\"";
        return false;
      }
      if (key == "id") {
        // Accept a string or a bare integer token; either way the id is
        // echoed back verbatim as a string.
        sc.SkipSpace();
        if (sc.i < line.size() && line[sc.i] == '"') {
          if (!sc.ParseString(&request->id)) {
            *error = "malformed \"id\" string";
            return false;
          }
        } else {
          int64_t v = 0;
          if (!sc.ParseInt(&v)) {
            *error = "malformed \"id\" value";
            return false;
          }
          request->id = std::to_string(v);
        }
      } else if (key == "node") {
        if (!sc.ParseInt(&request->node)) {
          *error = "malformed \"node\" value (integer expected)";
          return false;
        }
        have_node = true;
      } else if (key == "model") {
        if (!sc.ParseString(&request->model)) {
          *error = "malformed \"model\" value (string expected)";
          return false;
        }
      } else if (key == "deadline_ms") {
        int64_t v = 0;
        if (!sc.ParseInt(&v) || v < 0) {
          *error =
              "malformed \"deadline_ms\" value (non-negative integer "
              "expected)";
          return false;
        }
        request->deadline_ms = v;
      } else if (key == "qos") {
        std::string qos;
        if (!sc.ParseString(&qos)) {
          *error = "malformed \"qos\" value (string expected)";
          return false;
        }
        if (qos == "interactive") {
          request->qos = QosClass::kInteractive;
        } else if (qos == "batch") {
          request->qos = QosClass::kBatch;
        } else {
          *error = "unknown \"qos\" value \"" + qos +
                   "\" (want interactive or batch)";
          return false;
        }
      } else if (key == "client") {
        if (!sc.ParseString(&request->client)) {
          *error = "malformed \"client\" value (string expected)";
          return false;
        }
      } else if (key == "op") {
        std::string op;
        if (!sc.ParseString(&op)) {
          *error = "malformed \"op\" value (string expected)";
          return false;
        }
        if (op == "add_node") {
          request->mutation.kind = Mutation::Kind::kAddNode;
        } else if (op == "add_edge") {
          request->mutation.kind = Mutation::Kind::kAddEdge;
        } else if (op == "remove_edge") {
          request->mutation.kind = Mutation::Kind::kRemoveEdge;
        } else {
          *error = "unknown \"op\" value \"" + op +
                   "\" (want add_node, add_edge or remove_edge)";
          return false;
        }
        have_op = true;
      } else if (key == "type") {
        if (!sc.ParseString(&request->mutation.node_type)) {
          *error = "malformed \"type\" value (string expected)";
          return false;
        }
        have_type = true;
        if (mutation_key.empty()) mutation_key = key;
      } else if (key == "attrs") {
        if (!sc.ParseFloatArray(&request->mutation.attributes)) {
          *error = "malformed \"attrs\" value (array of numbers expected)";
          return false;
        }
        have_attrs = true;
        if (mutation_key.empty()) mutation_key = key;
      } else if (key == "edge") {
        if (!sc.ParseString(&request->mutation.edge_type)) {
          *error = "malformed \"edge\" value (string expected)";
          return false;
        }
        have_edge = true;
        if (mutation_key.empty()) mutation_key = key;
      } else if (key == "src" || key == "dst") {
        int64_t* slot =
            key == "src" ? &request->mutation.src : &request->mutation.dst;
        if (!sc.ParseInt(slot)) {
          *error = "malformed \"" + key + "\" value (integer expected)";
          return false;
        }
        (key == "src" ? have_src : have_dst) = true;
        if (mutation_key.empty()) mutation_key = key;
      } else if (key == "expect_fingerprint") {
        // Hex string, not a JSON number: fingerprints are full-range
        // uint64 and the integer grammar is (deliberately) int64-only.
        std::string hex;
        if (!sc.ParseString(&hex) || hex.empty() ||
            hex.size() > 16 ||
            hex.find_first_not_of("0123456789abcdefABCDEF") !=
                std::string::npos) {
          *error =
              "malformed \"expect_fingerprint\" value (hex string expected)";
          return false;
        }
        request->mutation.expect_fingerprint =
            std::strtoull(hex.c_str(), nullptr, 16);
        if (mutation_key.empty()) mutation_key = key;
      } else {
        *error = "unknown key \"" + key + "\"";
        return false;
      }
      if (sc.Eat(',')) continue;
      if (sc.Eat('}')) break;
      *error = "expected ',' or '}'";
      return false;
    }
  }
  sc.SkipSpace();
  if (sc.i != line.size()) {
    *error = "trailing characters after the object";
    return false;
  }
  if (!have_op) {
    if (!mutation_key.empty()) {
      *error = "key \"" + mutation_key + "\" is only valid with \"op\"";
      return false;
    }
    if (!have_node) {
      *error = "missing required key \"node\"";
      return false;
    }
    return true;
  }
  // Mutation: per-kind required/forbidden keys, so a typo'd delta fails
  // loudly instead of mutating something else.
  if (have_node) {
    *error = "\"node\" and \"op\" are mutually exclusive";
    return false;
  }
  request->is_mutation = true;
  if (request->mutation.kind == Mutation::Kind::kAddNode) {
    if (!have_type) {
      *error = "\"op\":\"add_node\" requires \"type\"";
      return false;
    }
    if (have_edge || have_src || have_dst) {
      *error = "\"op\":\"add_node\" takes \"type\"/\"attrs\", not edge keys";
      return false;
    }
  } else {
    if (!have_edge || !have_src || !have_dst) {
      *error = std::string("\"op\":\"") +
               MutationOpName(request->mutation.kind) +
               "\" requires \"edge\", \"src\" and \"dst\"";
      return false;
    }
    if (have_type || have_attrs) {
      *error = std::string("\"op\":\"") +
               MutationOpName(request->mutation.kind) +
               "\" takes edge keys, not \"type\"/\"attrs\"";
      return false;
    }
  }
  return true;
}

std::string FormatServeResponse(const std::string& id,
                                const InferenceSession::Prediction& p,
                                int64_t latency_us) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ",\"node\":%lld,\"label\":%lld,\"score\":%.6g,"
                "\"latency_us\":%lld}\n",
                static_cast<long long>(p.node),
                static_cast<long long>(p.label), p.score,
                static_cast<long long>(latency_us));
  return "{\"id\":\"" + EscapeJson(id) + "\"" + buf;
}

std::string FormatServeError(const std::string& id, const std::string& error) {
  return "{\"id\":\"" + EscapeJson(id) + "\",\"error\":\"" +
         EscapeJson(error) + "\"}\n";
}

std::string FormatServeReject(const std::string& id, const std::string& error,
                              const std::string& reason,
                              int64_t retry_after_ms) {
  std::string out = "{\"id\":\"" + EscapeJson(id) + "\",\"error\":\"" +
                    EscapeJson(error) + "\",\"reason\":\"" +
                    EscapeJson(reason) + "\"";
  if (retry_after_ms >= 0) {
    out += ",\"retry_after_ms\":" + std::to_string(retry_after_ms);
  }
  out += "}\n";
  return out;
}

std::string FormatMutationResponse(const std::string& id,
                                   const Mutation& mutation,
                                   const MutationResult& result,
                                   int64_t latency_us) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ",\"applied\":\"%s\",\"node\":%lld,\"dirty_rows\":%lld,"
                "\"latency_us\":%lld}\n",
                MutationOpName(mutation.kind),
                static_cast<long long>(result.node),
                static_cast<long long>(result.dirty_rows),
                static_cast<long long>(latency_us));
  return "{\"id\":\"" + EscapeJson(id) + "\"" + buf;
}

bool SendAll(int fd, const char* data, size_t size) {
  size_t off = 0;
  while (off < size) {
    size_t want = size - off;
    // Chaos: truncate one send to a single byte; the loop below must carry
    // the rest of the line across the "short write" unharmed.
    if (want > 1 && FaultTriggered("serve_partial_write")) want = 1;
    ssize_t n = ::send(fd, data + off, want, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      // Send buffer full (or SO_SNDTIMEO fired): wait until writable, then
      // retry. A dead peer turns this into POLLERR/POLLHUP and the next
      // send fails for real instead of looping.
      pollfd pfd{fd, POLLOUT, 0};
      ::poll(&pfd, 1, /*timeout_ms=*/100);
      continue;
    }
    return false;  // genuine failure (EPIPE, ECONNRESET, EBADF, ...)
  }
  return true;
}

InferenceServer::Connection::~Connection() {
  if (fd >= 0) ::close(fd);
}

InferenceServer::InferenceServer(ModelRegistry* registry,
                                 ServerOptions options)
    : registry_(registry),
      options_(std::move(options)),
      admission_(AdmissionController::Options{options_.rate_limit_rps,
                                              options_.rate_limit_burst,
                                              /*max_clients=*/4096}) {
  AUTOAC_CHECK(registry_ != nullptr);
  AUTOAC_CHECK(options_.max_batch > 0) << "max_batch must be positive";
  AUTOAC_CHECK(options_.max_queue > 0) << "max_queue must be positive";
  AUTOAC_CHECK(options_.max_line_bytes > 0)
      << "max_line_bytes must be positive";
}

int64_t InferenceServer::ClockNow() const {
  return options_.clock ? options_.clock() : NowMicros();
}

void InferenceServer::NoteReloadFailure() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.reload_failures;
  }
  if (Telemetry::Enabled()) {
    Telemetry::Get().Emit(MetricRecord("serve_reload").Add("ok", 0));
  }
}

InferenceServer::~InferenceServer() {
  Stop();
  if (batcher_.joinable()) batcher_.join();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RDWR);
    }
  }
  for (auto& [id, thread] : readers_) {
    (void)id;
    if (thread.joinable()) thread.join();
  }
  // Connection fds close in ~Connection when the last reference drops.
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

Status InferenceServer::Start() {
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::Error("unix socket path too long: " +
                           options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Error("socket() failed");
    ::unlink(options_.unix_path.c_str());  // the server owns this path
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Error("bind failed on " + options_.unix_path + ": " +
                           std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Error("socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Error("bind failed on 127.0.0.1:" +
                           std::to_string(options_.tcp_port) + ": " +
                           std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::Error(std::string("listen failed: ") +
                         std::strerror(errno));
  }
  batcher_ = std::thread(&InferenceServer::BatcherLoop, this);
  return Status::Ok();
}

bool InferenceServer::Stopping() const {
  return stop_.load(std::memory_order_relaxed) || ShutdownRequested();
}

void InferenceServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
}

void InferenceServer::ReapFinishedReaders() {
  std::vector<uint64_t> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished.swap(finished_readers_);
  }
  for (uint64_t id : finished) {
    auto it = readers_.find(id);
    if (it == readers_.end()) continue;
    if (it->second.joinable()) it->second.join();
    readers_.erase(it);
  }
}

void InferenceServer::Serve() {
  AUTOAC_CHECK(listen_fd_ >= 0) << "call Start() before Serve()";
  while (!Stopping()) {
    ReapFinishedReaders();
    if (options_.poll_hook) options_.poll_hook();
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    // Chaos: stall before handling the client — a slow accept loop must
    // delay, never drop, the pending connection.
    if (FaultTriggered("serve_delayed_accept")) {
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    if (options_.max_conns > 0) {
      bool refuse;
      {
        std::lock_guard<std::mutex> lock(mu_);
        refuse = static_cast<int64_t>(connections_.size()) >=
                 options_.max_conns;
        if (refuse) ++stats_.conns_refused;
      }
      if (refuse) {
        // Immediate structured refusal: the client learns why and when to
        // retry instead of seeing a silent RST or hanging in the backlog.
        std::string line = FormatServeReject(
            "", "server at connection capacity", "max_conns",
            /*retry_after_ms=*/1000);
        SendAll(fd, line.data(), line.size());
        ::close(fd);
        continue;
      }
    }
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    uint64_t id = next_reader_id_++;
    conn->identity = "conn:" + std::to_string(id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections;
      connections_.push_back(conn);
    }
    readers_.emplace(id, std::thread(&InferenceServer::ReaderLoop, this, id,
                                     std::move(conn)));
  }
  // Cooperative wind-down: stop accepting, unblock the readers, drain the
  // queue through the batcher, then join everything so callers observe a
  // fully quiesced server when Serve() returns.
  Stop();
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& conn : connections_) {
      if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
    }
  }
  for (auto& [id, thread] : readers_) {
    (void)id;
    if (thread.joinable()) thread.join();
  }
  readers_.clear();
  {
    std::lock_guard<std::mutex> lock(mu_);
    finished_readers_.clear();
  }
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

bool InferenceServer::WriteLine(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  bool sent;
  {
    std::lock_guard<std::mutex> lock(conn->write_mu);
    sent = SendAll(conn->fd, line.data(), line.size());
  }
  if (!sent) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.write_errors;
  }
  return sent;
}

bool InferenceServer::IngestLines(const std::shared_ptr<Connection>& conn,
                                  std::string* pending) {
  size_t start = 0;
  for (size_t nl = pending->find('\n', start); nl != std::string::npos;
       nl = pending->find('\n', start)) {
    std::string line = pending->substr(start, nl - start);
    start = nl + 1;
    if (line.empty()) continue;
    ServeRequest request;
    std::string error;
    if (!ParseServeRequestLine(line, &request, &error)) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.malformed;
      }
      WriteLine(conn, FormatServeError(request.id, error));
      continue;
    }
    // Admission control runs before any heavier work (model resolution,
    // queue locks): a rejected request costs one bucket lookup. Identity is
    // the request's "client" key when present — one quota spanning that
    // client's connections — and the connection itself otherwise.
    if (admission_.enabled()) {
      const std::string& identity =
          request.client.empty() ? conn->identity : request.client;
      int64_t retry_after_ms = 0;
      if (!admission_.Admit(identity, ClockNow(), &retry_after_ms)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.rate_limited;
        }
        WriteLine(conn, FormatServeReject(request.id, "rate limited",
                                          "rate_limited", retry_after_ms));
        continue;
      }
    }
    if (options_.max_inflight_per_conn > 0) {
      bool over;
      {
        std::lock_guard<std::mutex> lock(mu_);
        over = conn->queued >= options_.max_inflight_per_conn;
        if (over) ++stats_.inflight_rejected;
      }
      if (over) {
        WriteLine(conn,
                  FormatServeReject(
                      request.id,
                      "too many requests in flight on this connection",
                      "inflight_limit", options_.batch_timeout_ms));
        continue;
      }
    }
    // Resolve the model now: the session is pinned for the lifetime of
    // the queued request, so a hot reload never changes what an already
    // accepted request is answered from.
    std::string resolved_model;
    std::shared_ptr<MutableSession> mutable_session;
    std::shared_ptr<InferenceSession> session =
        registry_->Lookup(request.model, &resolved_model, &mutable_session);
    if (session == nullptr) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.unknown_model;
      }
      WriteLine(conn,
                FormatServeError(request.id,
                                 "unknown model \"" + request.model + "\""));
      continue;
    }
    if (request.is_mutation && mutable_session == nullptr) {
      WriteLine(conn,
                FormatServeError(request.id,
                                 "mutations disabled (start the server "
                                 "with --enable_mutations)"));
      continue;
    }
    int64_t now = NowMicros();
    Pending entry{conn,
                  std::move(request),
                  std::move(session),
                  std::move(mutable_session),
                  now,
                  /*deadline_us=*/-1};
    if (entry.request.deadline_ms >= 0) {
      entry.deadline_us = now + entry.request.deadline_ms * 1000;
    }
    // Overload policy (DESIGN.md §13): batch-class entries absorb eviction
    // first — an interactive arrival preempts queued batch work, and an
    // incoming batch request never displaces queued interactive work.
    // Within the eligible class, evict from the connection with the most
    // queued requests (the incoming request itself when its connection is
    // the most loaded), so a single flooding client loses its own newest
    // request and everyone else's traffic keeps flowing.
    std::shared_ptr<Connection> victim_conn;
    std::string victim_id;
    bool shed_incoming = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queued_total_ >= options_.max_queue) {
        bool victim_from_batch = queued_total_ > queued_interactive_;
        if (!victim_from_batch &&
            entry.request.qos == QosClass::kBatch) {
          // Only interactive work is queued; the incoming batch request
          // yields.
          ++stats_.shed;
          shed_incoming = true;
        } else {
          int64_t max_queued = 0;
          for (const auto& [name, mq] : queues_) {
            (void)name;
            const std::deque<Pending>& q =
                victim_from_batch ? mq.batch : mq.interactive;
            for (const Pending& p : q) {
              max_queued = std::max(max_queued, p.conn->queued);
            }
          }
          // An interactive arrival competing against batch victims always
          // wins the slot; same-class arrivals from the most-loaded
          // connection shed themselves.
          bool incoming_eligible =
              !victim_from_batch ||
              entry.request.qos == QosClass::kBatch;
          if (incoming_eligible && conn->queued >= max_queued) {
            ++stats_.shed;
            shed_incoming = true;
          } else {
            // Newest entry of the most-loaded connection in the eligible
            // class.
            std::deque<Pending>* victim_queue = nullptr;
            std::deque<Pending>::iterator victim_it;
            int64_t victim_enqueued = -1;
            for (auto& [name, mq] : queues_) {
              (void)name;
              std::deque<Pending>& q =
                  victim_from_batch ? mq.batch : mq.interactive;
              for (auto it = q.begin(); it != q.end(); ++it) {
                // >=: queues are FIFO, so on a timestamp tie (microsecond
                // granularity) the later position is the newer request.
                if (it->conn->queued == max_queued &&
                    it->enqueued_us >= victim_enqueued) {
                  victim_enqueued = it->enqueued_us;
                  victim_queue = &q;
                  victim_it = it;
                }
              }
            }
            AUTOAC_CHECK(victim_queue != nullptr);
            victim_conn = victim_it->conn;
            victim_id = victim_it->request.id;
            --victim_it->conn->queued;
            victim_queue->erase(victim_it);
            --queued_total_;
            if (!victim_from_batch) --queued_interactive_;
            ++stats_.shed;
            for (auto it = queues_.begin(); it != queues_.end();) {
              it = it->second.empty() ? queues_.erase(it) : std::next(it);
            }
          }
        }
      }
      if (!shed_incoming) {
        ++stats_.requests;
        ++conn->queued;
        ++queued_total_;
        ModelQueues& mq = queues_[resolved_model];
        if (entry.request.qos == QosClass::kInteractive) {
          ++queued_interactive_;
          mq.interactive.push_back(std::move(entry));
        } else {
          mq.batch.push_back(std::move(entry));
        }
      }
    }
    if (victim_conn != nullptr) {
      WriteLine(victim_conn,
                FormatServeReject(victim_id, "overloaded", "overloaded",
                                  options_.batch_timeout_ms));
    }
    if (shed_incoming) {
      WriteLine(conn,
                FormatServeReject(entry.request.id, "overloaded",
                                  "overloaded", options_.batch_timeout_ms));
    } else {
      queue_cv_.notify_one();
    }
  }
  pending->erase(0, start);
  if (static_cast<int64_t>(pending->size()) > options_.max_line_bytes) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.overlong_lines;
    }
    WriteLine(conn,
              FormatServeError(
                  "", "request line exceeds " +
                          std::to_string(options_.max_line_bytes) +
                          " bytes"));
    return false;  // unbounded buffer growth: drop the connection
  }
  return true;
}

void InferenceServer::ReaderLoop(uint64_t reader_id,
                                 std::shared_ptr<Connection> conn) {
  std::string pending;
  char buf[4096];
  int64_t last_activity_us = NowMicros();
  bool idle_kill = false;
  while (!Stopping()) {
    // Poll with a bounded interval so idle connections are reaped and a
    // stopping server does not wait on a silent client.
    pollfd pfd{conn->fd, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (ready == 0) {
      if (options_.idle_timeout_ms > 0 &&
          NowMicros() - last_activity_us >=
              options_.idle_timeout_ms * 1000) {
        idle_kill = true;  // slow-loris reap: notify, then drop
        break;
      }
      continue;
    }
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    last_activity_us = NowMicros();
    size_t take = static_cast<size_t>(n);
    size_t first = take;
    // Chaos: withhold the tail of one recv, delivering it on a second
    // ingest pass — the line parser must treat a torn read exactly like
    // two short network reads.
    if (take > 1 && FaultTriggered("serve_torn_read")) first = take / 2;
    pending.append(buf, first);
    bool ok = IngestLines(conn, &pending);
    if (ok && first < take) {
      pending.append(buf + first, take - first);
      ok = IngestLines(conn, &pending);
    }
    if (!ok) break;
  }
  if (idle_kill) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.idle_closed;
    }
    WriteLine(conn, FormatServeReject("", "idle timeout", "idle_timeout",
                                      /*retry_after_ms=*/-1));
  }
  // Client gone (or this server is being dropped): stop both directions so
  // a batcher mid-write fails fast, prune the connection from the live
  // list, and hand the thread to the accept loop for joining. The fd
  // itself closes in ~Connection once the last queued request or write
  // releases it — never while another thread could still be using it.
  ::shutdown(conn->fd, SHUT_RDWR);
  {
    std::lock_guard<std::mutex> lock(mu_);
    connections_.erase(
        std::remove(connections_.begin(), connections_.end(), conn),
        connections_.end());
    finished_readers_.push_back(reader_id);
  }
}

void InferenceServer::BatcherLoop() {
  for (;;) {
    std::vector<Pending> batch;
    std::vector<Pending> expired;
    int64_t queue_depth = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.batch_timeout_ms), [&] {
            return Stopping() || queued_total_ >= options_.max_batch;
          });
      if (queued_total_ == 0) {
        if (Stopping()) return;
        continue;
      }
      int64_t now = NowMicros();
      // Round-robin across the per-model queues: each slot of the batch is
      // taken from the next model after the previous slot's, so a model
      // with a deep queue gets at most its fair share per batch. QoS:
      // interactive entries across all models fill slots first; batch
      // entries only take what remains, so saturating batch traffic delays
      // but never starves interactive work.
      while (static_cast<int64_t>(batch.size()) < options_.max_batch &&
             queued_total_ > 0) {
        bool take_interactive = queued_interactive_ > 0;
        std::string& cursor =
            take_interactive ? rr_interactive_ : rr_batch_;
        auto next_with = [&](std::map<std::string, ModelQueues>::iterator
                                 from) {
          for (auto it = from; it != queues_.end(); ++it) {
            const std::deque<Pending>& q = take_interactive
                                               ? it->second.interactive
                                               : it->second.batch;
            if (!q.empty()) return it;
          }
          return queues_.end();
        };
        auto it = next_with(queues_.upper_bound(cursor));
        if (it == queues_.end()) it = next_with(queues_.begin());
        AUTOAC_CHECK(it != queues_.end());
        cursor = it->first;
        std::deque<Pending>& q =
            take_interactive ? it->second.interactive : it->second.batch;
        Pending entry = std::move(q.front());
        q.pop_front();
        if (it->second.empty()) queues_.erase(it);
        --queued_total_;
        if (take_interactive) --queued_interactive_;
        --entry.conn->queued;
        if (entry.deadline_us >= 0 && now > entry.deadline_us) {
          ++stats_.deadline_expired;
          expired.push_back(std::move(entry));
          continue;  // never reaches Predict
        }
        batch.push_back(std::move(entry));
      }
      if (!batch.empty()) {
        ++stats_.batches;
        stats_.batched_requests += static_cast<int64_t>(batch.size());
      }
      queue_depth = queued_total_;
    }
    for (const Pending& entry : expired) {
      WriteLine(entry.conn,
                FormatServeError(entry.request.id, "deadline exceeded"));
    }
    // Chaos: run a hot reload between batch assembly and execution. The
    // batch below must still be answered from its pinned sessions — the
    // reload swaps the registry, never in-flight work.
    if (!batch.empty() && options_.chaos_reload_hook &&
        FaultTriggered("serve_mid_batch_reload")) {
      options_.chaos_reload_hook();
    }
    for (size_t slot = 0; slot < batch.size();) {
      const Pending& entry = batch[slot];
      if (entry.request.is_mutation) {
        ++slot;
        // Chaos: a validated mutation fails to apply — the client gets a
        // structured error, counters stay consistent (nothing applied, no
        // dirty rows), and the server keeps serving.
        if (FaultTriggered("serve_mutation_apply")) {
          WriteLine(entry.conn,
                    FormatServeReject(entry.request.id,
                                      "injected mutation-apply fault",
                                      "fault_injected",
                                      options_.batch_timeout_ms));
          continue;
        }
        StatusOr<MutationResult> applied =
            entry.mutable_session->Apply(entry.request.mutation);
        int64_t latency_us = NowMicros() - entry.enqueued_us;
        int64_t partial_rows = entry.mutable_session->TakeUnreportedPartialRows();
        if (!applied.ok()) {
          if (partial_rows > 0) {
            std::lock_guard<std::mutex> lock(mu_);
            stats_.partial_forward_rows += partial_rows;
          }
          const std::string& message = applied.status().message();
          // v1 artifacts (no completion section) refuse every mutation;
          // give clients a machine-readable reason so feeders can stop
          // retrying and surface the re-export hint, instead of
          // string-matching error prose.
          if (message.find("(v1 artifact)") != std::string::npos) {
            WriteLine(entry.conn,
                      FormatServeReject(entry.request.id, message,
                                        "artifact_v1_immutable",
                                        /*retry_after_ms=*/-1));
          } else {
            WriteLine(entry.conn,
                      FormatServeError(entry.request.id, message));
          }
          continue;
        }
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.mutations_applied;
          stats_.dirty_rows += applied.value().dirty_rows;
          stats_.partial_forward_rows += partial_rows;
        }
        if (WriteLine(entry.conn,
                      FormatMutationResponse(entry.request.id,
                                             entry.request.mutation,
                                             applied.value(), latency_us))) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.responses;
        }
        if (Telemetry::Enabled()) {
          Telemetry::Get().Emit(
              MetricRecord("serve_mutation")
                  .Add("op", MutationOpName(entry.request.mutation.kind))
                  .Add("dirty_rows", applied.value().dirty_rows)
                  .Add("latency_us", latency_us));
        }
        continue;
      }
      // Group the run of consecutive predictions pinned to the same session
      // (and the same mutation overlay): one head-only batch forward
      // (DESIGN.md §14) answers the whole run instead of one logits-table
      // read per request. A mutation breaks the run, so a delta's effects
      // stay ordered between the predictions around it. A model with a
      // mutation overlay answers *all* its predictions from the overlay — a
      // clean row is the same head-only gather, and a dirty row follows the
      // staleness policy instead of serving pre-delta state.
      size_t run_end = slot + 1;
      while (run_end < batch.size() && !batch[run_end].request.is_mutation &&
             batch[run_end].session == entry.session &&
             batch[run_end].mutable_session == entry.mutable_session) {
        ++run_end;
      }
      std::vector<int64_t> nodes;
      nodes.reserve(run_end - slot);
      for (size_t j = slot; j < run_end; ++j) {
        nodes.push_back(batch[j].request.node);
      }
      StatusOr<std::vector<InferenceSession::Prediction>> group =
          entry.mutable_session != nullptr
              ? entry.mutable_session->PredictBatch(nodes)
              : entry.session->PredictBatch(nodes);
      std::vector<InferenceSession::Prediction> results;
      bool grouped = group.ok();
      if (grouped) {
        results = group.TakeValue();
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.head_batches;
        stats_.head_batched_rows += static_cast<int64_t>(nodes.size());
      }
      // An out-of-range id fails the whole PredictBatch before any compute;
      // re-answer the run per entry so each request keeps its own error or
      // result exactly as if it had never been grouped.
      for (size_t j = slot; j < run_end; ++j) {
        const Pending& member = batch[j];
        StatusOr<InferenceSession::Prediction> prediction =
            grouped
                ? StatusOr<InferenceSession::Prediction>(results[j - slot])
                : (member.mutable_session != nullptr
                       ? member.mutable_session->Predict(member.request.node)
                       : member.session->Predict(member.request.node));
        int64_t latency_us = NowMicros() - member.enqueued_us;
        if (!prediction.ok()) {
          WriteLine(member.conn, FormatServeError(
                                     member.request.id,
                                     prediction.status().message()));
          continue;
        }
        if (WriteLine(member.conn,
                      FormatServeResponse(member.request.id,
                                          prediction.value(), latency_us))) {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.responses;
        }
        if (Telemetry::Enabled()) {
          Telemetry::Get().Emit(MetricRecord("serve_request")
                                    .Add("node", prediction.value().node)
                                    .Add("label", prediction.value().label)
                                    .Add("latency_us", latency_us));
        }
      }
      if (entry.mutable_session != nullptr) {
        int64_t partial_rows =
            entry.mutable_session->TakeUnreportedPartialRows();
        if (partial_rows > 0) {
          std::lock_guard<std::mutex> lock(mu_);
          stats_.partial_forward_rows += partial_rows;
        }
      }
      slot = run_end;
    }
    if (!batch.empty() && Telemetry::Enabled()) {
      Telemetry::Get().Emit(
          MetricRecord("serve_batch")
              .Add("size", static_cast<int64_t>(batch.size()))
              .Add("capacity", options_.max_batch)
              .Add("occupancy", static_cast<double>(batch.size()) /
                                    static_cast<double>(options_.max_batch))
              .Add("queue_depth", queue_depth)
              // Flat across batches in steady state: compiled sessions run
              // out of the preplanned arena (DESIGN.md §11), and Predict is
              // an allocation-free row scan.
              .Add("tensor_buffers_allocated", TensorBuffersAllocated()));
    }
  }
}

ServeStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServeStats out = stats_;
  // Soft chaos triggers are counted process-wide by the fault layer (the
  // SendAll site has no server to report to); surface them here so the
  // shutdown audit can assert every armed site fired and was contained.
  out.faults_injected = FaultTriggersObserved();
  return out;
}

}  // namespace autoac
