#include "serving/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <algorithm>
#include <cctype>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <utility>

#include "util/shutdown.h"
#include "util/telemetry.h"

namespace autoac {
namespace {

int64_t NowMicros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// --- minimal JSON helpers ---------------------------------------------------
// The request grammar is one flat object per line; a full JSON library is
// not worth a dependency for that. The scanner below is strict about what
// it accepts (unknown keys and malformed values are errors, not silently
// ignored) and never reads past the line.

struct Scanner {
  const std::string& s;
  size_t i = 0;

  void SkipSpace() {
    while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
  }
  bool Eat(char c) {
    SkipSpace();
    if (i < s.size() && s[i] == c) {
      ++i;
      return true;
    }
    return false;
  }
  bool ParseString(std::string* out) {
    SkipSpace();
    if (i >= s.size() || s[i] != '"') return false;
    ++i;
    out->clear();
    while (i < s.size() && s[i] != '"') {
      char c = s[i++];
      if (c == '\\') {
        if (i >= s.size()) return false;
        char esc = s[i++];
        switch (esc) {
          case '"': out->push_back('"'); break;
          case '\\': out->push_back('\\'); break;
          case '/': out->push_back('/'); break;
          case 'n': out->push_back('\n'); break;
          case 't': out->push_back('\t'); break;
          default: return false;  // \uXXXX etc. not needed for ids
        }
      } else {
        out->push_back(c);
      }
    }
    if (i >= s.size()) return false;
    ++i;  // closing quote
    return true;
  }
  bool ParseInt(int64_t* out) {
    SkipSpace();
    size_t start = i;
    if (i < s.size() && (s[i] == '-' || s[i] == '+')) ++i;
    size_t digits = i;
    while (i < s.size() && std::isdigit(static_cast<unsigned char>(s[i]))) {
      ++i;
    }
    if (i == digits) return false;
    *out = std::strtoll(s.c_str() + start, nullptr, 10);
    return true;
  }
};

std::string EscapeJson(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

bool ParseServeRequestLine(const std::string& line, ServeRequest* request,
                           std::string* error) {
  *request = ServeRequest();
  Scanner sc{line};
  if (!sc.Eat('{')) {
    *error = "expected a JSON object";
    return false;
  }
  bool have_node = false;
  if (!sc.Eat('}')) {  // non-empty object
    while (true) {
      std::string key;
      if (!sc.ParseString(&key)) {
        *error = "expected a string key";
        return false;
      }
      if (!sc.Eat(':')) {
        *error = "expected ':' after key \"" + key + "\"";
        return false;
      }
      if (key == "id") {
        // Accept a string or a bare integer token; either way the id is
        // echoed back verbatim as a string.
        sc.SkipSpace();
        if (sc.i < line.size() && line[sc.i] == '"') {
          if (!sc.ParseString(&request->id)) {
            *error = "malformed \"id\" string";
            return false;
          }
        } else {
          int64_t v = 0;
          if (!sc.ParseInt(&v)) {
            *error = "malformed \"id\" value";
            return false;
          }
          request->id = std::to_string(v);
        }
      } else if (key == "node") {
        if (!sc.ParseInt(&request->node)) {
          *error = "malformed \"node\" value (integer expected)";
          return false;
        }
        have_node = true;
      } else {
        *error = "unknown key \"" + key + "\"";
        return false;
      }
      if (sc.Eat(',')) continue;
      if (sc.Eat('}')) break;
      *error = "expected ',' or '}'";
      return false;
    }
  }
  sc.SkipSpace();
  if (sc.i != line.size()) {
    *error = "trailing characters after the object";
    return false;
  }
  if (!have_node) {
    *error = "missing required key \"node\"";
    return false;
  }
  return true;
}

std::string FormatServeResponse(const std::string& id,
                                const InferenceSession::Prediction& p,
                                int64_t latency_us) {
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                ",\"node\":%lld,\"label\":%lld,\"score\":%.6g,"
                "\"latency_us\":%lld}\n",
                static_cast<long long>(p.node),
                static_cast<long long>(p.label), p.score,
                static_cast<long long>(latency_us));
  return "{\"id\":\"" + EscapeJson(id) + "\"" + buf;
}

std::string FormatServeError(const std::string& id, const std::string& error) {
  return "{\"id\":\"" + EscapeJson(id) + "\",\"error\":\"" +
         EscapeJson(error) + "\"}\n";
}

InferenceServer::InferenceServer(InferenceSession* session,
                                 ServerOptions options)
    : session_(session), options_(std::move(options)) {
  AUTOAC_CHECK(session_ != nullptr);
  AUTOAC_CHECK(options_.max_batch > 0) << "max_batch must be positive";
  AUTOAC_CHECK(options_.max_queue > 0) << "max_queue must be positive";
}

InferenceServer::~InferenceServer() {
  Stop();
  if (batcher_.joinable()) batcher_.join();
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
  for (const auto& conn : connections_) {
    if (conn->fd >= 0) ::close(conn->fd);
  }
  if (listen_fd_ >= 0) ::close(listen_fd_);
  if (!options_.unix_path.empty()) ::unlink(options_.unix_path.c_str());
}

Status InferenceServer::Start() {
  if (!options_.unix_path.empty()) {
    sockaddr_un addr{};
    addr.sun_family = AF_UNIX;
    if (options_.unix_path.size() >= sizeof(addr.sun_path)) {
      return Status::Error("unix socket path too long: " +
                           options_.unix_path);
    }
    std::strncpy(addr.sun_path, options_.unix_path.c_str(),
                 sizeof(addr.sun_path) - 1);
    listen_fd_ = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Error("socket() failed");
    ::unlink(options_.unix_path.c_str());  // the server owns this path
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Error("bind failed on " + options_.unix_path + ": " +
                           std::strerror(errno));
    }
  } else {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) return Status::Error("socket() failed");
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(options_.tcp_port));
    if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
               sizeof(addr)) != 0) {
      return Status::Error("bind failed on 127.0.0.1:" +
                           std::to_string(options_.tcp_port) + ": " +
                           std::strerror(errno));
    }
    sockaddr_in bound{};
    socklen_t len = sizeof(bound);
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound),
                      &len) == 0) {
      port_ = ntohs(bound.sin_port);
    }
  }
  if (::listen(listen_fd_, 64) != 0) {
    return Status::Error(std::string("listen failed: ") +
                         std::strerror(errno));
  }
  batcher_ = std::thread(&InferenceServer::BatcherLoop, this);
  return Status::Ok();
}

bool InferenceServer::Stopping() const {
  return stop_.load(std::memory_order_relaxed) || ShutdownRequested();
}

void InferenceServer::Stop() {
  stop_.store(true, std::memory_order_relaxed);
  queue_cv_.notify_all();
}

void InferenceServer::Serve() {
  AUTOAC_CHECK(listen_fd_ >= 0) << "call Start() before Serve()";
  while (!Stopping()) {
    pollfd pfd{listen_fd_, POLLIN, 0};
    int ready = ::poll(&pfd, 1, /*timeout_ms=*/100);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    auto conn = std::make_shared<Connection>();
    conn->fd = fd;
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.connections;
      connections_.push_back(conn);
    }
    readers_.emplace_back(&InferenceServer::ReaderLoop, this, conn);
  }
  // Cooperative wind-down: stop accepting, unblock the readers, drain the
  // queue through the batcher, then join everything so callers observe a
  // fully quiesced server when Serve() returns.
  Stop();
  for (const auto& conn : connections_) {
    if (conn->fd >= 0) ::shutdown(conn->fd, SHUT_RD);
  }
  for (std::thread& t : readers_) {
    if (t.joinable()) t.join();
  }
  readers_.clear();
  queue_cv_.notify_all();
  if (batcher_.joinable()) batcher_.join();
}

void InferenceServer::WriteLine(const std::shared_ptr<Connection>& conn,
                                const std::string& line) {
  std::lock_guard<std::mutex> lock(conn->write_mu);
  size_t off = 0;
  while (off < line.size()) {
    ssize_t n = ::send(conn->fd, line.data() + off, line.size() - off,
                       MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing useful to do
    off += static_cast<size_t>(n);
  }
}

void InferenceServer::ReaderLoop(std::shared_ptr<Connection> conn) {
  std::string pending;
  char buf[4096];
  while (!Stopping()) {
    ssize_t n = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    pending.append(buf, static_cast<size_t>(n));
    size_t start = 0;
    for (size_t nl = pending.find('\n', start); nl != std::string::npos;
         nl = pending.find('\n', start)) {
      std::string line = pending.substr(start, nl - start);
      start = nl + 1;
      if (line.empty()) continue;
      ServeRequest request;
      std::string error;
      if (!ParseServeRequestLine(line, &request, &error)) {
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.malformed;
        }
        WriteLine(conn, FormatServeError(request.id, error));
        continue;
      }
      bool shed = false;
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (static_cast<int64_t>(queue_.size()) >= options_.max_queue) {
          ++stats_.shed;
          shed = true;
        } else {
          ++stats_.requests;
          queue_.push_back(Pending{conn, std::move(request), NowMicros()});
        }
      }
      if (shed) {
        WriteLine(conn, FormatServeError(request.id, "overloaded"));
      } else {
        queue_cv_.notify_one();
      }
    }
    pending.erase(0, start);
  }
}

void InferenceServer::BatcherLoop() {
  for (;;) {
    std::vector<Pending> batch;
    int64_t queue_depth = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      queue_cv_.wait_for(
          lock, std::chrono::milliseconds(options_.batch_timeout_ms), [&] {
            return Stopping() ||
                   static_cast<int64_t>(queue_.size()) >= options_.max_batch;
          });
      if (queue_.empty()) {
        if (Stopping()) return;
        continue;
      }
      int64_t take = std::min<int64_t>(
          static_cast<int64_t>(queue_.size()), options_.max_batch);
      batch.reserve(take);
      for (int64_t i = 0; i < take; ++i) {
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
      }
      ++stats_.batches;
      stats_.batched_requests += take;
      queue_depth = static_cast<int64_t>(queue_.size());
    }
    for (const Pending& pending : batch) {
      StatusOr<InferenceSession::Prediction> prediction =
          session_->Predict(pending.request.node);
      int64_t latency_us = NowMicros() - pending.enqueued_us;
      if (!prediction.ok()) {
        WriteLine(pending.conn, FormatServeError(
                                    pending.request.id,
                                    prediction.status().message()));
        continue;
      }
      WriteLine(pending.conn, FormatServeResponse(pending.request.id,
                                                  prediction.value(),
                                                  latency_us));
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.responses;
      }
      if (Telemetry::Enabled()) {
        Telemetry::Get().Emit(MetricRecord("serve_request")
                                  .Add("node", prediction.value().node)
                                  .Add("label", prediction.value().label)
                                  .Add("latency_us", latency_us));
      }
    }
    if (Telemetry::Enabled()) {
      Telemetry::Get().Emit(
          MetricRecord("serve_batch")
              .Add("size", static_cast<int64_t>(batch.size()))
              .Add("capacity", options_.max_batch)
              .Add("occupancy", static_cast<double>(batch.size()) /
                                    static_cast<double>(options_.max_batch))
              .Add("queue_depth", queue_depth));
    }
  }
}

ServeStats InferenceServer::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace autoac
