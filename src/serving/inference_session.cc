#include "serving/inference_session.h"

#include <utility>

#include "models/factory.h"
#include "tensor/ops.h"

namespace autoac {

InferenceSession::InferenceSession(FrozenModel frozen)
    : frozen_(std::move(frozen)), rng_(frozen_.seed) {
  AUTOAC_CHECK(frozen_.graph != nullptr) << "frozen model has no graph";
  ctx_ = BuildModelContext(frozen_.graph);

  ModelConfig model_config;
  model_config.in_dim = frozen_.hidden_dim;
  model_config.hidden_dim = frozen_.hidden_dim;
  model_config.out_dim = frozen_.hidden_dim;
  model_config.num_layers = frozen_.num_layers;
  model_config.num_heads = frozen_.num_heads;
  model_config.dropout = frozen_.dropout;
  model_config.negative_slope = frozen_.negative_slope;
  Rng init_rng(frozen_.seed);
  model_ = MakeModel(frozen_.model_name, model_config, ctx_, init_rng,
                     /*l2_normalize_output=*/false);
  std::vector<VarPtr> params = model_->Parameters();
  AUTOAC_CHECK_EQ(params.size(), frozen_.model_params.size())
      << "frozen weights do not match the rebuilt " << frozen_.model_name;
  for (size_t i = 0; i < params.size(); ++i) {
    AUTOAC_CHECK(params[i]->value.SameShape(frozen_.model_params[i]))
        << "frozen weight " << i << " has the wrong shape";
    params[i]->value = frozen_.model_params[i];
  }

  h0_ = MakeConst(frozen_.h0);
  cls_weight_ = MakeConst(frozen_.classifier_weight);
  cls_bias_ = MakeConst(frozen_.classifier_bias);
  target_ids_ = frozen_.graph->TargetGlobalIds();
  RecomputeLogits();
}

void InferenceSession::RecomputeLogits() {
  // Tape-free: no closure is allocated, no parent chain retained, and every
  // intermediate frees as soon as its last consumer releases it. Mirrors
  // the training-time evaluation forward (model Forward + Linear head)
  // op for op, so the values are bitwise identical to in-process eval.
  NoGradGuard no_grad;
  VarPtr h = model_->Forward(ctx_, h0_, /*training=*/false, rng_);
  VarPtr logits = AddBias(MatMul(h, cls_weight_), cls_bias_);
  logits_ = std::move(logits->value);
}

StatusOr<InferenceSession::Prediction> InferenceSession::Predict(
    int64_t node) const {
  if (node < 0 || node >= num_targets()) {
    return Status::Error("node id " + std::to_string(node) +
                         " out of range [0, " +
                         std::to_string(num_targets()) + ")");
  }
  int64_t global = target_ids_[node];
  const float* row = logits_.data() + global * logits_.cols();
  Prediction prediction;
  prediction.node = node;
  prediction.label = 0;
  prediction.score = row[0];
  for (int64_t c = 1; c < logits_.cols(); ++c) {
    if (row[c] > prediction.score) {
      prediction.score = row[c];
      prediction.label = c;
    }
  }
  return prediction;
}

}  // namespace autoac
