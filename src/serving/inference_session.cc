#include "serving/inference_session.h"

#include <utility>

#include "models/factory.h"
#include "tensor/graph_ir.h"
#include "tensor/ops.h"

namespace autoac {

InferenceSession::InferenceSession(FrozenModel frozen, const Options& options)
    : frozen_(std::move(frozen)), rng_(frozen_.seed) {
  AUTOAC_CHECK(frozen_.graph != nullptr) << "frozen model has no graph";
  ctx_ = BuildModelContext(frozen_.graph);

  ModelConfig model_config;
  model_config.in_dim = frozen_.hidden_dim;
  model_config.hidden_dim = frozen_.hidden_dim;
  model_config.out_dim = frozen_.hidden_dim;
  model_config.num_layers = frozen_.num_layers;
  model_config.num_heads = frozen_.num_heads;
  model_config.dropout = frozen_.dropout;
  model_config.negative_slope = frozen_.negative_slope;
  Rng init_rng(frozen_.seed);
  model_ = MakeModel(frozen_.model_name, model_config, ctx_, init_rng,
                     /*l2_normalize_output=*/false);
  std::vector<VarPtr> params = model_->Parameters();
  AUTOAC_CHECK_EQ(params.size(), frozen_.model_params.size())
      << "frozen weights do not match the rebuilt " << frozen_.model_name;
  for (size_t i = 0; i < params.size(); ++i) {
    AUTOAC_CHECK(params[i]->value.SameShape(frozen_.model_params[i]))
        << "frozen weight " << i << " has the wrong shape";
    params[i]->value = frozen_.model_params[i];
  }

  h0_ = MakeConst(frozen_.h0);
  cls_weight_ = MakeConst(frozen_.classifier_weight);
  cls_bias_ = MakeConst(frozen_.classifier_bias);
  target_ids_ = frozen_.graph->TargetGlobalIds();
  if (options.compile) {
    TryCompile();  // the capture run produces the first logits
  } else {
    RecomputeLogits();
  }
}

void InferenceSession::TryCompile() {
  ir::Graph graph;
  {
    // The capture executes eagerly while recording, so this *is* the first
    // logits computation — a failed compile costs nothing extra.
    IrCapture capture;
    capture.MarkInput(h0_, "h0");
    VarPtr h = model_->Forward(ctx_, h0_, /*training=*/false, rng_);
    VarPtr logits = AddBias(MatMul(h, cls_weight_), cls_bias_);
    graph = capture.Finish(logits);
    logits_ = std::move(logits->value);
  }
  StatusOr<compiler::CompiledGraph> compiled =
      compiler::CompiledGraph::Compile(std::move(graph));
  if (!compiled.ok()) return;  // keep the interpreted path
  compiled_ =
      std::make_unique<compiler::CompiledGraph>(compiled.TakeValue());
  compiled_inputs_ = {&frozen_.h0};
  // The compiled kernels pin the weights, index lists, and adjacency
  // matrices they reference (via Value::leaf and captured shared_ptrs), so
  // the rebuilt autograd model, the duplicated leaf constants, and the
  // context's cached adjacencies are now dead weight.
  model_.reset();
  h0_.reset();
  cls_weight_.reset();
  cls_bias_.reset();
  ctx_ = ModelContext{};
}

void InferenceSession::RecomputeLogits() {
  if (compiled_ != nullptr) {
    // Replays the compiled plan into the preplanned arena; after the first
    // call this performs zero heap tensor allocations.
    compiled_->Run(compiled_inputs_, &logits_);
    return;
  }
  // Tape-free: no closure is allocated, no parent chain retained, and every
  // intermediate frees as soon as its last consumer releases it. Mirrors
  // the training-time evaluation forward (model Forward + Linear head)
  // op for op, so the values are bitwise identical to in-process eval.
  NoGradGuard no_grad;
  VarPtr h = model_->Forward(ctx_, h0_, /*training=*/false, rng_);
  VarPtr logits = AddBias(MatMul(h, cls_weight_), cls_bias_);
  logits_ = std::move(logits->value);
}

StatusOr<InferenceSession::Prediction> InferenceSession::Predict(
    int64_t node) const {
  if (node < 0 || node >= num_targets()) {
    return Status::Error("node id " + std::to_string(node) +
                         " out of range [0, " +
                         std::to_string(num_targets()) + ")");
  }
  int64_t global = target_ids_[node];
  const float* row = logits_.data() + global * logits_.cols();
  Prediction prediction;
  prediction.node = node;
  prediction.label = 0;
  prediction.score = row[0];
  for (int64_t c = 1; c < logits_.cols(); ++c) {
    if (row[c] > prediction.score) {
      prediction.score = row[c];
      prediction.label = c;
    }
  }
  return prediction;
}

}  // namespace autoac
