#include "serving/inference_session.h"

#include <algorithm>
#include <string>
#include <utility>

#include "models/factory.h"
#include "tensor/graph_ir.h"
#include "tensor/ops.h"

namespace autoac {

namespace {

/// Row ids travel through the batch head as floats; above this the mapping
/// stops being exact. Graphs this large fall back to per-row lookups.
constexpr int64_t kMaxExactFloatRow = int64_t{1} << 24;

}  // namespace

StatusOr<compiler::CompiledGraph> CompileBatchHead(const FrozenModel& frozen,
                                                   int64_t hidden_rows,
                                                   int64_t max_rows) {
  if (hidden_rows >= kMaxExactFloatRow) {
    return Status::Error("batch head unavailable: " +
                         std::to_string(hidden_rows) +
                         " rows exceed the float exact-integer range");
  }
  ir::Graph graph;
  {
    // The dummy zero inputs only fix the shapes the planner specializes to;
    // Run() rebinds both inputs every call.
    IrCapture capture;
    VarPtr hidden = MakeConst(
        Tensor::Zeros({hidden_rows, frozen.classifier_weight.rows()}));
    VarPtr ids = MakeConst(Tensor::Zeros({max_rows}));
    capture.MarkInput(hidden, "hidden");
    capture.MarkInput(ids, "ids");
    // Quantized artifacts route the classifier weight through a Dequantize
    // node so the dequantize-on-load pass folds the decoded matrix into the
    // plan; f32 artifacts bind the stored matrix directly.
    VarPtr weight = frozen.encoded_classifier_weight != nullptr
                        ? Dequantize(frozen.encoded_classifier_weight)
                        : MakeConst(frozen.classifier_weight);
    VarPtr logits = AddBias(MatMul(GatherRowsDynamic(hidden, ids), weight),
                            MakeConst(frozen.classifier_bias));
    graph = capture.Finish(logits);
  }
  return compiler::CompiledGraph::Compile(std::move(graph));
}

InferenceSession::InferenceSession(FrozenModel frozen, const Options& options)
    : frozen_(std::move(frozen)), rng_(frozen_.seed) {
  AUTOAC_CHECK(frozen_.graph != nullptr) << "frozen model has no graph";
  ctx_ = BuildModelContext(frozen_.graph);

  ModelConfig model_config;
  model_config.in_dim = frozen_.hidden_dim;
  model_config.hidden_dim = frozen_.hidden_dim;
  model_config.out_dim = frozen_.hidden_dim;
  model_config.num_layers = frozen_.num_layers;
  model_config.num_heads = frozen_.num_heads;
  model_config.dropout = frozen_.dropout;
  model_config.negative_slope = frozen_.negative_slope;
  Rng init_rng(frozen_.seed);
  model_ = MakeModel(frozen_.model_name, model_config, ctx_, init_rng,
                     /*l2_normalize_output=*/false);
  std::vector<VarPtr> params = model_->Parameters();
  AUTOAC_CHECK_EQ(params.size(), frozen_.model_params.size())
      << "frozen weights do not match the rebuilt " << frozen_.model_name;
  for (size_t i = 0; i < params.size(); ++i) {
    AUTOAC_CHECK(params[i]->value.SameShape(frozen_.model_params[i]))
        << "frozen weight " << i << " has the wrong shape";
    params[i]->value = frozen_.model_params[i];
  }

  h0_ = MakeConst(frozen_.h0);
  cls_weight_ = MakeConst(frozen_.classifier_weight);
  cls_bias_ = MakeConst(frozen_.classifier_bias);
  target_ids_ = frozen_.graph->TargetGlobalIds();
  if (options.compile) {
    TryCompile();  // the capture run produces the first hidden/logits
  } else {
    RecomputeLogits();
  }
}

void InferenceSession::TryCompile() {
  // The forward splits into two captures — GNN body (h0 -> hidden) and
  // classifier head (hidden -> logits) — so RecomputeLogits can materialize
  // the hidden features the batch head gathers from. The float ops are the
  // same as the single-capture forward in the same order, so the split
  // changes nothing bitwise.
  ir::Graph body_graph;
  {
    // The capture executes eagerly while recording, so this *is* the first
    // hidden/logits computation — a failed compile costs nothing extra.
    IrCapture capture;
    capture.MarkInput(h0_, "h0");
    VarPtr h = model_->Forward(ctx_, h0_, /*training=*/false, rng_);
    body_graph = capture.Finish(h);
    hidden_ = h->value;
  }
  ir::Graph head_graph;
  {
    IrCapture capture;
    VarPtr head_input = MakeConst(hidden_);
    capture.MarkInput(head_input, "hidden");
    VarPtr logits = AddBias(MatMul(head_input, cls_weight_), cls_bias_);
    head_graph = capture.Finish(logits);
    logits_ = std::move(logits->value);
  }
  StatusOr<compiler::CompiledGraph> body =
      compiler::CompiledGraph::Compile(std::move(body_graph));
  if (!body.ok()) return;  // keep the interpreted path
  StatusOr<compiler::CompiledGraph> head =
      compiler::CompiledGraph::Compile(std::move(head_graph));
  if (!head.ok()) return;
  compiled_body_ = std::make_unique<compiler::CompiledGraph>(body.TakeValue());
  compiled_head_ = std::make_unique<compiler::CompiledGraph>(head.TakeValue());
  compiled_inputs_ = {&frozen_.h0};
  head_inputs_ = {&hidden_};
  StatusOr<compiler::CompiledGraph> batch =
      CompileBatchHead(frozen_, hidden_.rows(), kMaxBatchRows);
  if (batch.ok()) {
    compiled_batch_head_ =
        std::make_unique<compiler::CompiledGraph>(batch.TakeValue());
    batch_ids_ = Tensor::Zeros({kMaxBatchRows});
    batch_inputs_ = {&hidden_, &batch_ids_};
  }
  // The compiled kernels pin the weights, index lists, and adjacency
  // matrices they reference (via Value::leaf and captured shared_ptrs), so
  // the rebuilt autograd model, the duplicated leaf constants, and the
  // context's cached adjacencies are now dead weight.
  model_.reset();
  h0_.reset();
  cls_weight_.reset();
  cls_bias_.reset();
  ctx_ = ModelContext{};
}

void InferenceSession::RecomputeLogits() {
  if (compiled_body_ != nullptr) {
    // Replays the compiled plans into the preplanned arenas; after the first
    // call this performs zero heap tensor allocations.
    compiled_body_->Run(compiled_inputs_, &hidden_);
    compiled_head_->Run(head_inputs_, &logits_);
    return;
  }
  // Tape-free: no closure is allocated, no parent chain retained, and every
  // intermediate frees as soon as its last consumer releases it. Mirrors
  // the training-time evaluation forward (model Forward + Linear head)
  // op for op, so the values are bitwise identical to in-process eval.
  NoGradGuard no_grad;
  VarPtr h = model_->Forward(ctx_, h0_, /*training=*/false, rng_);
  VarPtr logits = AddBias(MatMul(h, cls_weight_), cls_bias_);
  hidden_ = h->value;
  logits_ = std::move(logits->value);
}

StatusOr<InferenceSession::Prediction> InferenceSession::Predict(
    int64_t node) const {
  if (node < 0 || node >= num_targets()) {
    return Status::Error("node id " + std::to_string(node) +
                         " out of range [0, " +
                         std::to_string(num_targets()) + ")");
  }
  int64_t global = target_ids_[node];
  const float* row = logits_.data() + global * logits_.cols();
  Prediction prediction;
  prediction.node = node;
  prediction.label = 0;
  prediction.score = row[0];
  for (int64_t c = 1; c < logits_.cols(); ++c) {
    if (row[c] > prediction.score) {
      prediction.score = row[c];
      prediction.label = c;
    }
  }
  return prediction;
}

StatusOr<std::vector<InferenceSession::Prediction>>
InferenceSession::PredictBatch(const std::vector<int64_t>& nodes) {
  // Any bad id fails the whole request before any compute, so callers never
  // see partial results.
  for (int64_t node : nodes) {
    if (node < 0 || node >= num_targets()) {
      return Status::Error("node id " + std::to_string(node) +
                           " out of range [0, " +
                           std::to_string(num_targets()) + ")");
    }
  }
  std::vector<Prediction> out;
  out.reserve(nodes.size());
  if (compiled_batch_head_ == nullptr) {
    for (int64_t node : nodes) {
      StatusOr<Prediction> p = Predict(node);
      if (!p.ok()) return p.status();
      out.push_back(p.value());
    }
    return out;
  }
  float* ids = batch_ids_.data();
  for (size_t begin = 0; begin < nodes.size(); begin += kMaxBatchRows) {
    size_t count = std::min<size_t>(kMaxBatchRows, nodes.size() - begin);
    for (size_t i = 0; i < count; ++i) {
      ids[i] = static_cast<float>(target_ids_[nodes[begin + i]]);
    }
    // Pad short batches with row 0; the padded outputs are discarded.
    std::fill(ids + count, ids + kMaxBatchRows, 0.0f);
    compiled_batch_head_->Run(batch_inputs_, &batch_logits_);
    const int64_t classes = batch_logits_.cols();
    for (size_t i = 0; i < count; ++i) {
      const float* row = batch_logits_.data() + i * classes;
      Prediction prediction;
      prediction.node = nodes[begin + i];
      prediction.label = 0;
      prediction.score = row[0];
      for (int64_t c = 1; c < classes; ++c) {
        if (row[c] > prediction.score) {
          prediction.score = row[c];
          prediction.label = c;
        }
      }
      out.push_back(prediction);
    }
  }
  return out;
}

}  // namespace autoac
