#ifndef AUTOAC_SERVING_SERVER_H_
#define AUTOAC_SERVING_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/inference_session.h"
#include "util/status.h"

namespace autoac {

/// One newline-delimited JSON request: {"id": "...", "node": N}. `id` is an
/// opaque client token echoed back in the response (optional, may be a JSON
/// string or number); `node` is the target-type-local node id to classify.
struct ServeRequest {
  std::string id;
  int64_t node = -1;
};

/// Parses one request line. The accepted grammar is a flat JSON object with
/// the keys above (any order, whitespace-tolerant, unknown keys rejected so
/// typos fail loudly). Returns false with a human-readable `error` on
/// malformed input; the server turns that into an error response rather
/// than dropping the connection.
bool ParseServeRequestLine(const std::string& line, ServeRequest* request,
                           std::string* error);

/// Formats a success / error response line (newline-terminated JSON).
std::string FormatServeResponse(const std::string& id,
                                const InferenceSession::Prediction& p,
                                int64_t latency_us);
std::string FormatServeError(const std::string& id, const std::string& error);

struct ServerOptions {
  /// Unix-domain socket path. Takes precedence over TCP when non-empty.
  std::string unix_path;
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see
  /// InferenceServer::port()). Used only when unix_path is empty.
  int tcp_port = 0;
  /// Requests per inference batch. The batcher fires when this many are
  /// queued or when the oldest queued request has waited batch_timeout_ms.
  int64_t max_batch = 16;
  int64_t batch_timeout_ms = 5;
  /// Bounded request queue; arrivals beyond this depth are shed with an
  /// "overloaded" error response instead of growing the queue without limit.
  int64_t max_queue = 1024;
};

/// Counters published by the server (also emitted as telemetry records when
/// the telemetry sink is on).
struct ServeStats {
  int64_t connections = 0;
  int64_t requests = 0;         // parsed OK and enqueued
  int64_t responses = 0;        // success responses written
  int64_t malformed = 0;        // parse failures (error response written)
  int64_t shed = 0;             // rejected by the bounded queue
  int64_t batches = 0;          // inference batches executed
  int64_t batched_requests = 0; // sum of batch sizes (occupancy numerator)
};

/// Batched request/response front-end over an InferenceSession
/// (DESIGN.md §10). One reader thread per connection parses request lines
/// into a bounded queue; a single batcher thread drains the queue in
/// batches of up to max_batch (or whatever is present when the oldest
/// request has waited batch_timeout_ms), answers each request from the
/// logits cache, and writes responses back on the owning connection.
///
/// Shutdown is cooperative: Serve() returns once ShutdownRequested()
/// (util/shutdown.h) or Stop() is observed; in-flight requests are drained,
/// responses flushed, and every thread joined before Serve() returns.
class InferenceServer {
 public:
  InferenceServer(InferenceSession* session, ServerOptions options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds and listens (unix or TCP per the options) and starts the batcher
  /// thread. IO failures (path in use, permission) are Status errors.
  Status Start();

  /// Accepts and serves connections until shutdown is requested. Call after
  /// Start(); blocks the calling thread.
  void Serve();

  /// Requests shutdown of this server only (Serve() also honors the
  /// process-wide shutdown flag). Safe from any thread; idempotent.
  void Stop();

  /// Actual TCP port after Start() (== options.tcp_port unless 0 requested
  /// an ephemeral port); -1 for unix-domain servers.
  int port() const { return port_; }

  ServeStats stats() const;

 private:
  struct Connection {
    int fd = -1;
    std::mutex write_mu;
  };
  struct Pending {
    std::shared_ptr<Connection> conn;
    ServeRequest request;
    int64_t enqueued_us = 0;  // monotonic clock, for latency telemetry
  };

  void ReaderLoop(std::shared_ptr<Connection> conn);
  void BatcherLoop();
  void WriteLine(const std::shared_ptr<Connection>& conn,
                 const std::string& line);
  bool Stopping() const;

  InferenceSession* session_;
  ServerOptions options_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  ServeStats stats_;

  std::thread batcher_;
  std::vector<std::thread> readers_;
  std::vector<std::shared_ptr<Connection>> connections_;
};

}  // namespace autoac

#endif  // AUTOAC_SERVING_SERVER_H_
