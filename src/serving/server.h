#ifndef AUTOAC_SERVING_SERVER_H_
#define AUTOAC_SERVING_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "serving/admission.h"
#include "serving/inference_session.h"
#include "serving/model_registry.h"
#include "serving/mutable_session.h"
#include "util/status.h"

namespace autoac {

/// Scheduling class of one request (DESIGN.md §13). Interactive requests
/// are drained from the queues before batch requests and are never evicted
/// while a batch request is queued; batch requests absorb overload first.
enum class QosClass {
  kInteractive,
  kBatch,
};

/// One newline-delimited JSON request. Predictions:
///   {"id": "...", "node": N, "model": "...", "deadline_ms": M,
///    "qos": "interactive"|"batch", "client": "..."}
/// `id` is an opaque client token echoed back in the response (optional,
/// may be a JSON string or number); `node` is the target-type-local node
/// id to classify; `model` routes to a hosted model by registry name
/// (optional, empty = default model); `deadline_ms` is an optional
/// client-side deadline relative to arrival — a request still queued when
/// it expires is answered with a distinct "deadline exceeded" error and
/// never reaches Predict. `qos` is optional (default "interactive");
/// `client` is an optional stable identity used for per-client admission
/// control — absent, the connection itself is the identity.
///
/// Mutations (DESIGN.md §12) share the grammar, selected by "op" instead
/// of "node" (the two are mutually exclusive):
///   {"id": "...", "op": "add_node", "type": "author", "attrs": [0.1, ...]}
///   {"id": "...", "op": "add_edge", "edge": "writes", "src": 7, "dst": 12}
///   {"id": "...", "op": "remove_edge", "edge": "writes", "src": 7, "dst": 12}
/// plus optional "model", "deadline_ms", and "expect_fingerprint" (the
/// artifact content fingerprint as a hex string; a mismatch — e.g. a SIGHUP
/// swapped the model — is a distinct error and the delta is not applied).
struct ServeRequest {
  std::string id;
  int64_t node = -1;
  std::string model;
  int64_t deadline_ms = -1;  // -1 = no deadline
  QosClass qos = QosClass::kInteractive;
  std::string client;        // admission identity; empty = per-connection
  bool is_mutation = false;  // "op" present; `mutation` is the payload
  Mutation mutation;
};

/// Parses one request line. The accepted grammar is a flat JSON object with
/// the keys above (any order, whitespace-tolerant, unknown keys rejected so
/// typos fail loudly; integers that overflow int64 are malformed, not
/// saturated). Returns false with a human-readable `error` on malformed
/// input; the server turns that into an error response rather than
/// dropping the connection.
bool ParseServeRequestLine(const std::string& line, ServeRequest* request,
                           std::string* error);

/// Formats a success / error response line (newline-terminated JSON).
std::string FormatServeResponse(const std::string& id,
                                const InferenceSession::Prediction& p,
                                int64_t latency_us);
std::string FormatServeError(const std::string& id, const std::string& error);
/// Structured rejection: an error response carrying a machine-readable
/// "reason" token and (when `retry_after_ms` >= 0) a retry hint, so clients
/// can back off programmatically instead of string-matching error prose:
///   {"id":"r1","error":"rate limited","reason":"rate_limited",
///    "retry_after_ms":12}
/// Reasons in use: rate_limited, overloaded, inflight_limit, max_conns,
/// idle_timeout, fault_injected, artifact_v1_immutable.
std::string FormatServeReject(const std::string& id, const std::string& error,
                              const std::string& reason,
                              int64_t retry_after_ms);
/// Mutation ack:
///   {"id":"m1","applied":"add_edge","node":-1,"dirty_rows":5,"latency_us":..}
/// `node` is the assigned type-local id for add_node, -1 otherwise.
std::string FormatMutationResponse(const std::string& id,
                                   const Mutation& mutation,
                                   const MutationResult& result,
                                   int64_t latency_us);

/// Writes all `size` bytes to `fd`, retrying interrupted and would-block
/// sends (EINTR immediately; EAGAIN/EWOULDBLOCK after polling for
/// writability). Returns false only on a genuine write failure (e.g. the
/// peer is gone). Exposed for the retry regression tests; the server's
/// per-connection writes go through it. Chaos site `serve_partial_write`
/// truncates one send() to a single byte here — the retry loop must finish
/// the line regardless.
bool SendAll(int fd, const char* data, size_t size);

struct ServerOptions {
  /// Unix-domain socket path. Takes precedence over TCP when non-empty.
  std::string unix_path;
  /// TCP port on 127.0.0.1; 0 binds an ephemeral port (see
  /// InferenceServer::port()). Used only when unix_path is empty.
  int tcp_port = 0;
  /// Requests per inference batch. The batcher fires when this many are
  /// queued or when the oldest queued request has waited batch_timeout_ms.
  int64_t max_batch = 16;
  int64_t batch_timeout_ms = 5;
  /// Bounded total queue depth across all per-model queues. An arrival
  /// beyond this evicts a queued request — batch-class entries first, and
  /// within a class from the connection with the most queued requests (the
  /// incoming request itself when nothing less important is queued) — with
  /// a structured "overloaded" rejection, instead of tail-dropping the
  /// newest arrival regardless of who is flooding.
  int64_t max_queue = 1024;
  /// A connection streaming more than this many bytes without a newline is
  /// answered with a malformed-request error and dropped (bounds the
  /// per-connection read buffer).
  int64_t max_line_bytes = 1 << 16;
  /// Per-client token-bucket admission control (DESIGN.md §13);
  /// rate_limit_rps <= 0 disables it. Identity is the request's "client"
  /// key when present, the connection otherwise.
  double rate_limit_rps = 0.0;
  double rate_limit_burst = 0.0;  // <= 0 defaults to max(rps, 1)
  /// A connection idle (no bytes received) for this long is answered with a
  /// structured idle_timeout rejection and dropped — slow-loris clients
  /// cannot pin fds forever. 0 disables reaping.
  int64_t idle_timeout_ms = 0;
  /// Accept gate: with this many live connections, further accepts are
  /// answered with an immediate structured max_conns refusal and closed.
  /// 0 = unlimited.
  int64_t max_conns = 0;
  /// Per-connection in-flight cap: a connection with this many requests
  /// queued has further requests rejected (inflight_limit) instead of
  /// queued. 0 = unlimited (the global overload policy still applies).
  int64_t max_inflight_per_conn = 0;
  /// Called from the accept loop every poll interval (<= ~100ms) when set.
  /// The CLI uses it to run SIGHUP artifact reloads on the serve thread.
  std::function<void()> poll_hook;
  /// Chaos hook: invoked from the batcher thread mid-batch when the
  /// `serve_mid_batch_reload` fault site fires, simulating a hot reload
  /// racing in-flight work. The CLI points it at its SIGHUP reload path;
  /// tests point it at ModelRegistry::Reload directly.
  std::function<void()> chaos_reload_hook;
  /// Clock used for admission-control decisions, microseconds, monotonic.
  /// Defaults to the steady clock; tests inject literal time sequences to
  /// make token-bucket behavior deterministic.
  std::function<int64_t()> clock;
};

/// Counters published by the server (also emitted as telemetry records when
/// the telemetry sink is on).
struct ServeStats {
  int64_t connections = 0;
  int64_t requests = 0;          // parsed OK and enqueued
  int64_t responses = 0;         // success responses written
  int64_t malformed = 0;         // parse failures (error response written)
  int64_t unknown_model = 0;     // "model" key named no hosted model
  int64_t overlong_lines = 0;    // read-buffer bound hit, connection dropped
  int64_t shed = 0;              // evicted/rejected on overload
  int64_t deadline_expired = 0;  // expired in queue, never reached Predict
  int64_t write_errors = 0;      // response writes that failed after retries
  int64_t batches = 0;           // inference batches executed
  int64_t batched_requests = 0;  // sum of batch sizes (occupancy numerator)
  int64_t head_batches = 0;      // grouped head-only PredictBatch dispatches
  int64_t head_batched_rows = 0;  // predictions answered via those groups
  int64_t mutations_applied = 0;     // graph deltas validated and applied
  int64_t dirty_rows = 0;            // logits rows the deltas marked dirty
  int64_t partial_forward_rows = 0;  // rows recomputed via the partial path
  int64_t rate_limited = 0;      // admission-control rejections
  int64_t idle_closed = 0;       // connections reaped by idle_timeout_ms
  int64_t conns_refused = 0;     // accepts refused by the max_conns gate
  int64_t inflight_rejected = 0;  // per-connection in-flight cap rejections
  int64_t reload_failures = 0;   // failed hot reloads (old set kept serving)
  int64_t faults_injected = 0;   // soft chaos sites that fired (process-wide)
};

/// Batched request/response front-end over a ModelRegistry (DESIGN.md §10).
/// One reader thread per connection parses request lines, resolves the
/// "model" key to a session (pinning it: a hot reload swaps the registry
/// entry, queued requests finish against the session they resolved), and
/// enqueues into that model's queue for the request's QoS class. A single
/// batcher thread assembles batches of up to max_batch by draining the
/// per-model queues round-robin — interactive entries across all models
/// first, batch entries only into the remaining slots, so one hot model
/// cannot starve the others and batch traffic cannot starve interactive
/// traffic. It drops entries whose deadline expired with a distinct error,
/// answers the rest from each session's logits cache, and writes responses
/// back on the owning connection.
///
/// Connection lifecycle: a reader that observes client disconnect (or idle
/// timeout) shuts the socket down, prunes the connection from the server's
/// list, and hands its thread to the accept loop for reaping; the fd itself
/// closes when the last reference (queued request or in-progress write)
/// releases the Connection. Long-running servers hold fds and threads only
/// for live connections.
///
/// Shutdown is cooperative: Serve() returns once ShutdownRequested()
/// (util/shutdown.h) or Stop() is observed; in-flight requests are drained,
/// responses flushed, and every thread joined before Serve() returns.
class InferenceServer {
 public:
  InferenceServer(ModelRegistry* registry, ServerOptions options);
  ~InferenceServer();

  InferenceServer(const InferenceServer&) = delete;
  InferenceServer& operator=(const InferenceServer&) = delete;

  /// Binds and listens (unix or TCP per the options) and starts the batcher
  /// thread. IO failures (path in use, permission) are Status errors.
  Status Start();

  /// Accepts and serves connections until shutdown is requested. Call after
  /// Start(); blocks the calling thread.
  void Serve();

  /// Requests shutdown of this server only (Serve() also honors the
  /// process-wide shutdown flag). Safe from any thread; idempotent.
  void Stop();

  /// Actual TCP port after Start() (== options.tcp_port unless 0 requested
  /// an ephemeral port); -1 for unix-domain servers.
  int port() const { return port_; }

  /// Counts a failed hot reload (satellite of DESIGN.md §13): the registry
  /// kept the old serving set, the operator sees the count in stats and
  /// telemetry. Called by whoever drives reloads (the CLI's SIGHUP path).
  void NoteReloadFailure();

  ServeStats stats() const;

 private:
  struct Connection {
    ~Connection();
    int fd = -1;
    std::mutex write_mu;
    int64_t queued = 0;  // requests of this connection in queue; under mu_
    std::string identity;  // fallback admission identity ("conn:<id>")
  };
  struct Pending {
    std::shared_ptr<Connection> conn;
    ServeRequest request;
    std::shared_ptr<InferenceSession> session;  // pinned at enqueue
    /// Pinned alongside the session when the registry hosts a mutation
    /// overlay; mutations and (for consistency) predictions of that model
    /// dispatch through it.
    std::shared_ptr<MutableSession> mutable_session;
    int64_t enqueued_us = 0;   // monotonic clock, for latency telemetry
    int64_t deadline_us = -1;  // absolute expiry; -1 = none
  };
  /// Per-model queue pair; only models with at least one queued entry stay
  /// in the map, so round-robin iteration touches live models only.
  struct ModelQueues {
    std::deque<Pending> interactive;
    std::deque<Pending> batch;
    bool empty() const { return interactive.empty() && batch.empty(); }
  };

  void ReaderLoop(uint64_t reader_id, std::shared_ptr<Connection> conn);
  /// Parses, admits, and enqueues the complete lines in `*pending` (called
  /// by ReaderLoop as bytes arrive). Returns false when the connection must
  /// be dropped (overlong line).
  bool IngestLines(const std::shared_ptr<Connection>& conn,
                   std::string* pending);
  void BatcherLoop();
  /// Serializes one line onto the connection (per-connection write mutex),
  /// retrying via SendAll. Counts a genuine failure in write_errors.
  bool WriteLine(const std::shared_ptr<Connection>& conn,
                 const std::string& line);
  /// Joins reader threads whose loops have exited (accept thread only).
  void ReapFinishedReaders();
  bool Stopping() const;
  int64_t ClockNow() const;

  ModelRegistry* registry_;
  ServerOptions options_;
  AdmissionController admission_;
  int listen_fd_ = -1;
  int port_ = -1;
  std::atomic<bool> stop_{false};

  mutable std::mutex mu_;
  std::condition_variable queue_cv_;
  /// Per-model QoS queue pairs, keyed by resolved model name.
  std::map<std::string, ModelQueues> queues_;
  int64_t queued_total_ = 0;
  int64_t queued_interactive_ = 0;
  /// Per-class round-robin cursors (last model a batch slot was taken
  /// from) — one per class so heavy batch traffic on one model does not
  /// perturb interactive fairness across models.
  std::string rr_interactive_;
  std::string rr_batch_;
  ServeStats stats_;
  std::vector<uint64_t> finished_readers_;  // ids awaiting join; under mu_
  std::vector<std::shared_ptr<Connection>> connections_;  // live; under mu_

  std::thread batcher_;
  /// Reader threads by id; accessed only from the accept thread and the
  /// destructor (readers announce exit via finished_readers_).
  std::map<uint64_t, std::thread> readers_;
  uint64_t next_reader_id_ = 0;
};

}  // namespace autoac

#endif  // AUTOAC_SERVING_SERVER_H_
