#include "serving/frozen_model.h"

#include <sstream>
#include <utility>

#include "autoac/checkpoint.h"
#include "completion/completion_module.h"
#include "data/serialization.h"
#include "models/factory.h"

namespace autoac {
namespace {

constexpr char kFrozenMagic[4] = {'A', 'A', 'C', 'M'};

/// Upper bound on stored model parameter tensors; real models have a few
/// dozen. Keeps corrupted count fields from driving huge allocations.
constexpr int64_t kMaxModelParams = int64_t{1} << 16;

/// Marks a quantized artifact. Written where the legacy layout has the graph
/// payload's node-type count, which is validated strictly positive — so a
/// negative value here can never be mistaken for a legacy artifact (and vice
/// versa).
constexpr int64_t kQuantizedSentinel = -0x51AACF01;

/// Attribute-tensor reader that decodes tagged EncodedTensor payloads,
/// plugged into ReadGraphPayload for quantized artifacts.
bool ReadEncodedAttr(std::istream& in, Tensor* t) {
  EncodedTensor enc;
  if (!io::ReadEncodedTensor(in, &enc)) return false;
  *t = DecodeTensor(enc);
  return true;
}

uint64_t MixI64(uint64_t h, int64_t v) { return Fnv1a(&v, sizeof(v), h); }
uint64_t MixU64(uint64_t h, uint64_t v) { return Fnv1a(&v, sizeof(v), h); }
uint64_t MixF32(uint64_t h, float v) { return Fnv1a(&v, sizeof(v), h); }
uint64_t MixString(uint64_t h, const std::string& s) {
  h = MixI64(h, static_cast<int64_t>(s.size()));
  return Fnv1a(s.data(), s.size(), h);
}
uint64_t MixI64Vector(uint64_t h, const std::vector<int64_t>& v) {
  h = MixI64(h, static_cast<int64_t>(v.size()));
  return Fnv1a(v.data(), v.size() * sizeof(int64_t), h);
}

}  // namespace

uint64_t ComputeFrozenFingerprint(const FrozenModel& model) {
  uint64_t h = kFnvOffsetBasis;
  h = MixString(h, model.model_name);
  h = MixI64(h, model.hidden_dim);
  h = MixI64(h, model.num_layers);
  h = MixI64(h, model.num_heads);
  h = MixF32(h, model.dropout);
  h = MixF32(h, model.negative_slope);
  h = MixU64(h, model.seed);
  h = MixI64(h, model.num_classes);
  // Graph identity: structure, attributes, and task annotations all change
  // the meaning of the weights, so all of them feed the fingerprint.
  const HeteroGraph& g = *model.graph;
  h = MixI64(h, g.num_nodes());
  h = MixI64(h, g.num_node_types());
  h = MixI64(h, g.num_edge_types());
  h = MixI64(h, g.target_node_type());
  h = MixI64(h, g.num_classes());
  for (int64_t t = 0; t < g.num_node_types(); ++t) {
    const HeteroGraph::NodeTypeInfo& info = g.node_type(t);
    h = MixString(h, info.name);
    h = MixI64(h, info.count);
    h = DigestTensor(h, info.attributes);
  }
  h = MixI64Vector(h, g.edge_src());
  h = MixI64Vector(h, g.edge_dst());
  h = MixI64Vector(h, g.edge_type_ids());
  h = MixI64Vector(h, g.global_labels());
  h = MixI64(h, static_cast<int64_t>(model.op_of.size()));
  h = Fnv1a(model.op_of.data(),
            model.op_of.size() * sizeof(CompletionOpType), h);
  h = DigestTensor(h, model.h0);
  h = MixI64(h, static_cast<int64_t>(model.model_params.size()));
  for (const Tensor& p : model.model_params) h = DigestTensor(h, p);
  h = DigestTensor(h, model.classifier_weight);
  h = DigestTensor(h, model.classifier_bias);
  // The v2 completion section feeds the fingerprint only when present, so
  // v1 artifacts keep their original fingerprints bit for bit.
  if (model.has_completion) {
    h = MixF32(h, model.ppnp_restart);
    h = MixI64(h, model.ppnp_steps);
    h = MixI64(h, static_cast<int64_t>(model.completion_params.size()));
    for (const Tensor& p : model.completion_params) h = DigestTensor(h, p);
  }
  return h;
}

StatusOr<FrozenModel> FreezeTrainedRun(const TaskData& data,
                                       const ModelContext& ctx,
                                       const ExperimentConfig& config,
                                       const RunResult& run) {
  if (data.task != TaskKind::kNodeClassification) {
    return Status::Error(
        "frozen model export supports node classification only");
  }
  if (run.final_params.empty()) {
    return Status::Error(
        "run carries no final parameters; rerun with capture_final_params "
        "(the method may not train through TrainFixedCompletion)");
  }
  if (run.searched_ops.empty()) {
    return Status::Error("run carries no completion-op assignment");
  }

  // Mirror TrainFixedCompletion's construction order exactly: the Rng
  // stream determines nothing we keep (every value is overwritten below)
  // but the construction sequence determines the parameter shapes and
  // their order in the flattened list.
  Rng rng(config.seed);
  CompletionConfig completion_config = config.completion;
  completion_config.hidden_dim = config.hidden_dim;
  CompletionModule completion(data.graph, completion_config, rng);
  if (static_cast<int64_t>(run.searched_ops.size()) !=
      completion.num_missing()) {
    return Status::Error("assignment length does not match the graph's "
                         "missing-node count");
  }

  ModelConfig model_config;
  model_config.in_dim = config.hidden_dim;
  model_config.hidden_dim = config.hidden_dim;
  model_config.out_dim = config.hidden_dim;
  model_config.num_layers = config.num_layers;
  model_config.num_heads = config.num_heads;
  model_config.dropout = config.dropout;
  model_config.negative_slope = config.negative_slope;
  ModelPtr model = MakeModel(config.model_name, model_config, ctx, rng,
                             /*l2_normalize_output=*/false);
  TaskHead head(data, model_config.out_dim, config.mrr_negatives, rng);

  std::vector<VarPtr> params = completion.Parameters();
  for (const VarPtr& p : model->Parameters()) params.push_back(p);
  std::vector<VarPtr> head_params = head.Parameters();
  for (const VarPtr& p : head_params) params.push_back(p);
  if (params.size() != run.final_params.size()) {
    return Status::Error(
        "parameter count mismatch between the run and the rebuilt model "
        "(config drift?)");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i]->value.SameShape(run.final_params[i])) {
      return Status::Error("parameter shape mismatch at index " +
                           std::to_string(i) + " (config drift?)");
    }
    params[i]->value = run.final_params[i];
  }
  if (head_params.size() != 2 || head_params[0]->value.dim() != 2 ||
      head_params[1]->value.dim() != 1) {
    return Status::Error("unexpected task-head parameter layout");
  }

  FrozenModel frozen;
  frozen.model_name = config.model_name;
  frozen.hidden_dim = config.hidden_dim;
  frozen.num_layers = config.num_layers;
  frozen.num_heads = config.num_heads;
  frozen.dropout = config.dropout;
  frozen.negative_slope = config.negative_slope;
  frozen.seed = config.seed;
  frozen.num_classes = data.graph->num_classes();
  frozen.graph = data.graph;
  frozen.op_of = run.searched_ops;
  {
    // Materialize the completed attributes once, tape-free: serving never
    // re-runs the completion aggregations.
    NoGradGuard no_grad;
    frozen.h0 = completion.CompleteDiscrete(run.searched_ops)->value;
  }
  for (const VarPtr& p : model->Parameters()) {
    frozen.model_params.push_back(p->value);
  }
  frozen.classifier_weight = head_params[0]->value;
  frozen.classifier_bias = head_params[1]->value;
  // v2 completion section: the trained completion parameters, so a serving
  // mutation can re-run CompleteDiscrete for dirty rows (DESIGN.md §12).
  frozen.has_completion = true;
  for (const VarPtr& p : completion.Parameters()) {
    frozen.completion_params.push_back(p->value);
  }
  frozen.ppnp_restart = completion_config.ppnp_restart;
  frozen.ppnp_steps = completion_config.ppnp_steps;
  frozen.fingerprint = ComputeFrozenFingerprint(frozen);
  return frozen;
}

Status SaveFrozenModel(const FrozenModel& model, const std::string& path) {
  return SaveFrozenModel(model, path, FrozenSaveOptions{});
}

Status SaveFrozenModel(const FrozenModel& model, const std::string& path,
                       const FrozenSaveOptions& options) {
  if (model.graph == nullptr) {
    return Status::Error("frozen model has no graph");
  }
  const TensorEncoding enc = options.encoding;

  std::ostringstream payload;
  io::WriteString(payload, model.model_name);
  io::WriteI64(payload, model.hidden_dim);
  io::WriteI64(payload, model.num_layers);
  io::WriteI64(payload, model.num_heads);
  io::WriteF64(payload, model.dropout);
  io::WriteF64(payload, model.negative_slope);
  io::WriteU64(payload, model.seed);
  io::WriteI64(payload, model.num_classes);

  std::vector<int64_t> ops;
  ops.reserve(model.op_of.size());
  for (CompletionOpType op : model.op_of) {
    ops.push_back(static_cast<int64_t>(op));
  }

  if (enc == TensorEncoding::kF32) {
    // Legacy layout, byte for byte; the stored fingerprint is taken verbatim
    // so tests can exercise the mismatch-refusal path with a tampered value.
    io::WriteU64(payload, model.fingerprint);
    WriteGraphPayload(payload, *model.graph);
    io::WriteI64Vector(payload, ops);
    io::WriteTensor(payload, model.h0);
    io::WriteI64(payload, static_cast<int64_t>(model.model_params.size()));
    for (const Tensor& p : model.model_params) io::WriteTensor(payload, p);
    io::WriteTensor(payload, model.classifier_weight);
    io::WriteTensor(payload, model.classifier_bias);
    if (model.has_completion) {
      // v2 completion section, appended after the v1 payload; the loader
      // detects it by its presence before EOF.
      io::WriteF64(payload, model.ppnp_restart);
      io::WriteI64(payload, model.ppnp_steps);
      io::WriteI64(payload,
                   static_cast<int64_t>(model.completion_params.size()));
      for (const Tensor& p : model.completion_params) {
        io::WriteTensor(payload, p);
      }
    }
    if (options.stored_fingerprint != nullptr) {
      *options.stored_fingerprint = model.fingerprint;
    }
    return io::WriteFileAtomic(path, kFrozenMagic, payload.str());
  }

  // Quantized layout. Serialize the graph once with encoded attribute
  // payloads, then parse those bytes straight back through the decoding
  // reader: the parsed graph is exactly the graph a loader will reconstruct,
  // which is what the stored fingerprint must cover.
  std::ostringstream graph_bytes;
  WriteGraphPayload(graph_bytes, *model.graph,
                    [enc](std::ostream& out, const Tensor& t) {
                      io::WriteEncodedTensor(out, EncodeTensor(t, enc));
                    });
  std::istringstream graph_in(graph_bytes.str());
  StatusOr<HeteroGraphPtr> decoded_graph =
      ReadGraphPayload(graph_in, ReadEncodedAttr);
  if (!decoded_graph.ok()) return decoded_graph.status();

  EncodedTensor h0 = EncodeTensor(model.h0, enc);
  std::vector<EncodedTensor> params;
  params.reserve(model.model_params.size());
  for (const Tensor& p : model.model_params) {
    params.push_back(EncodeTensor(p, enc));
  }
  EncodedTensor cls_weight = EncodeTensor(model.classifier_weight, enc);
  EncodedTensor cls_bias = EncodeTensor(model.classifier_bias, enc);
  std::vector<EncodedTensor> completion;
  completion.reserve(model.completion_params.size());
  for (const Tensor& p : model.completion_params) {
    completion.push_back(EncodeTensor(p, enc));
  }

  // The stored fingerprint covers the *decoded* content: compute it over a
  // twin holding exactly the tensors a loader will decode, so the loader's
  // recompute-and-refuse path needs no quantization awareness at all.
  FrozenModel decoded;
  decoded.model_name = model.model_name;
  decoded.hidden_dim = model.hidden_dim;
  decoded.num_layers = model.num_layers;
  decoded.num_heads = model.num_heads;
  decoded.dropout = model.dropout;
  decoded.negative_slope = model.negative_slope;
  decoded.seed = model.seed;
  decoded.num_classes = model.num_classes;
  decoded.graph = decoded_graph.TakeValue();
  decoded.op_of = model.op_of;
  decoded.h0 = DecodeTensor(h0);
  for (const EncodedTensor& e : params) {
    decoded.model_params.push_back(DecodeTensor(e));
  }
  decoded.classifier_weight = DecodeTensor(cls_weight);
  decoded.classifier_bias = DecodeTensor(cls_bias);
  decoded.has_completion = model.has_completion;
  decoded.ppnp_restart = model.ppnp_restart;
  decoded.ppnp_steps = model.ppnp_steps;
  for (const EncodedTensor& e : completion) {
    decoded.completion_params.push_back(DecodeTensor(e));
  }
  const uint64_t stored_fingerprint = ComputeFrozenFingerprint(decoded);
  if (options.stored_fingerprint != nullptr) {
    *options.stored_fingerprint = stored_fingerprint;
  }

  io::WriteU64(payload, stored_fingerprint);
  io::WriteI64(payload, kQuantizedSentinel);
  io::WriteI64(payload, static_cast<int64_t>(enc));
  payload << graph_bytes.str();
  io::WriteI64Vector(payload, ops);
  io::WriteEncodedTensor(payload, h0);
  io::WriteI64(payload, static_cast<int64_t>(params.size()));
  for (const EncodedTensor& e : params) io::WriteEncodedTensor(payload, e);
  io::WriteEncodedTensor(payload, cls_weight);
  io::WriteEncodedTensor(payload, cls_bias);
  if (model.has_completion) {
    io::WriteF64(payload, model.ppnp_restart);
    io::WriteI64(payload, model.ppnp_steps);
    io::WriteI64(payload, static_cast<int64_t>(completion.size()));
    for (const EncodedTensor& e : completion) {
      io::WriteEncodedTensor(payload, e);
    }
  }
  return io::WriteFileAtomic(path, kFrozenMagic, payload.str());
}

StatusOr<uint64_t> PeekFrozenFingerprint(const std::string& path) {
  StatusOr<std::string> payload = io::ReadFileChecked(path, kFrozenMagic);
  if (!payload.ok()) return payload.status();
  std::istringstream in(payload.value());
  std::string model_name;
  int64_t i64 = 0;
  double f64 = 0.0;
  uint64_t seed = 0, stored_fingerprint = 0;
  if (!io::ReadString(in, &model_name) || !io::ReadI64(in, &i64) ||
      !io::ReadI64(in, &i64) || !io::ReadI64(in, &i64) ||
      !io::ReadF64(in, &f64) || !io::ReadF64(in, &f64) ||
      !io::ReadU64(in, &seed) || !io::ReadI64(in, &i64) ||
      !io::ReadU64(in, &stored_fingerprint)) {
    return Status::Error("frozen model payload is malformed: " + path);
  }
  return stored_fingerprint;
}

StatusOr<FrozenModel> LoadFrozenModel(const std::string& path) {
  StatusOr<std::string> payload = io::ReadFileChecked(path, kFrozenMagic);
  if (!payload.ok()) return payload.status();
  std::istringstream in(payload.value());
  const Status malformed =
      Status::Error("frozen model payload is malformed: " + path);

  FrozenModel model;
  double dropout = 0.0, negative_slope = 0.0;
  uint64_t stored_fingerprint = 0;
  if (!io::ReadString(in, &model.model_name) ||
      !io::ReadI64(in, &model.hidden_dim) ||
      !io::ReadI64(in, &model.num_layers) ||
      !io::ReadI64(in, &model.num_heads) || !io::ReadF64(in, &dropout) ||
      !io::ReadF64(in, &negative_slope) || !io::ReadU64(in, &model.seed) ||
      !io::ReadI64(in, &model.num_classes) ||
      !io::ReadU64(in, &stored_fingerprint)) {
    return malformed;
  }
  model.dropout = static_cast<float>(dropout);
  model.negative_slope = static_cast<float>(negative_slope);
  if (model.hidden_dim <= 0 || model.num_layers <= 0 ||
      model.num_heads <= 0 || model.num_classes <= 0) {
    return malformed;
  }

  // A quantized artifact announces itself with a negative sentinel where the
  // legacy layout continues with the graph payload's strictly positive
  // node-type count.
  bool quantized = false;
  {
    std::streampos pos = in.tellg();
    int64_t sentinel = 0;
    if (io::ReadI64(in, &sentinel) && sentinel == kQuantizedSentinel) {
      quantized = true;
    } else {
      in.clear();
      in.seekg(pos);
    }
  }
  if (quantized) {
    int64_t tag = 0;
    if (!io::ReadI64(in, &tag) ||
        (tag != static_cast<int64_t>(TensorEncoding::kF16) &&
         tag != static_cast<int64_t>(TensorEncoding::kI8))) {
      return malformed;
    }
    model.encoding = static_cast<TensorEncoding>(tag);
  }
  // Every tensor read below decodes a tagged EncodedTensor payload in a
  // quantized artifact and falls back to the raw layout otherwise.
  auto read_tensor = [&in, quantized](Tensor* t) {
    return quantized ? ReadEncodedAttr(in, t) : io::ReadTensor(in, t);
  };

  StatusOr<HeteroGraphPtr> graph =
      quantized ? ReadGraphPayload(in, ReadEncodedAttr) : ReadGraphPayload(in);
  if (!graph.ok()) return graph.status();
  model.graph = graph.TakeValue();

  std::vector<int64_t> ops;
  if (!io::ReadI64Vector(in, &ops)) return malformed;
  if (static_cast<int64_t>(ops.size()) > model.graph->num_nodes()) {
    return malformed;
  }
  model.op_of.reserve(ops.size());
  for (int64_t raw : ops) {
    if (raw < 0 || raw >= kNumCompletionOps) return malformed;
    model.op_of.push_back(static_cast<CompletionOpType>(raw));
  }

  if (!read_tensor(&model.h0)) return malformed;
  int64_t num_params = 0;
  if (!io::ReadI64(in, &num_params) || num_params < 0 ||
      num_params > kMaxModelParams) {
    return malformed;
  }
  model.model_params.resize(num_params);
  for (int64_t i = 0; i < num_params; ++i) {
    if (!read_tensor(&model.model_params[i])) return malformed;
  }
  if (quantized) {
    // Keep the classifier weight in stored form too: the compiler's
    // dequantize-on-load pass folds it out of a Dequantize IR node, and the
    // batch head capture needs the encoded bytes to build that node.
    auto enc_weight = std::make_shared<EncodedTensor>();
    if (!io::ReadEncodedTensor(in, enc_weight.get())) return malformed;
    model.classifier_weight = DecodeTensor(*enc_weight);
    model.encoded_classifier_weight = std::move(enc_weight);
    if (!read_tensor(&model.classifier_bias)) return malformed;
  } else if (!io::ReadTensor(in, &model.classifier_weight) ||
             !io::ReadTensor(in, &model.classifier_bias)) {
    return malformed;
  }
  if (in.peek() != std::istringstream::traits_type::eof()) {
    // v2 completion section (bytes remain after the v1 payload).
    double restart = 0.0;
    int64_t num_completion = 0;
    if (!io::ReadF64(in, &restart) || !io::ReadI64(in, &model.ppnp_steps) ||
        !io::ReadI64(in, &num_completion) || num_completion < 0 ||
        num_completion > kMaxModelParams || model.ppnp_steps < 0) {
      return malformed;
    }
    model.ppnp_restart = static_cast<float>(restart);
    model.completion_params.resize(num_completion);
    for (int64_t i = 0; i < num_completion; ++i) {
      if (!read_tensor(&model.completion_params[i])) return malformed;
    }
    model.has_completion = true;
  }
  if (in.peek() != std::istringstream::traits_type::eof()) {
    return Status::Error("frozen model has trailing bytes: " + path);
  }

  // Shape validation before any consumer touches the tensors.
  if (model.h0.dim() != 2 || model.h0.rows() != model.graph->num_nodes() ||
      model.h0.cols() != model.hidden_dim) {
    return malformed;
  }
  if (model.classifier_weight.dim() != 2 ||
      model.classifier_weight.cols() != model.num_classes ||
      model.classifier_bias.dim() != 1 ||
      model.classifier_bias.numel() != model.num_classes) {
    return malformed;
  }
  if (model.num_classes != model.graph->num_classes()) return malformed;

  uint64_t recomputed = ComputeFrozenFingerprint(model);
  if (recomputed != stored_fingerprint) {
    return Status::Error(
        "frozen model fingerprint mismatch (stored vs recomputed content): "
        "the artifact was produced by an incompatible exporter or edited "
        "after export: " + path);
  }
  model.fingerprint = stored_fingerprint;
  return model;
}

namespace {

bool TypeAttributed(const HeteroGraph& g, int64_t t) {
  return g.node_type(t).attributes.numel() > 0;
}

// Copies `src` into the parameter value, refusing shape drift.
Status CopySame(const VarPtr& param, const Tensor& src,
                const std::string& what) {
  if (!param->value.SameShape(src)) {
    return Status::Error("frozen " + what +
                         " has the wrong shape (artifact drift?)");
  }
  param->value = src;
  return Status::Ok();
}

// Row-gathers `src` (frozen rows) into the parameter through `row_of`
// (destination row i takes frozen row row_of[i]; -1 keeps the zero row).
Status GatherRowsInto(const VarPtr& param, const Tensor& src,
                      const std::vector<int64_t>& row_of,
                      const std::string& what) {
  Tensor& dst = param->value;
  if (dst.dim() != 2 || src.dim() != 2 || dst.cols() != src.cols() ||
      dst.rows() != static_cast<int64_t>(row_of.size())) {
    return Status::Error("frozen " + what +
                         " has the wrong shape (artifact drift?)");
  }
  dst = Tensor::Zeros({dst.rows(), dst.cols()});
  for (int64_t i = 0; i < dst.rows(); ++i) {
    int64_t r = row_of[i];
    if (r < 0) continue;  // new node: zero row
    if (r >= src.rows()) {
      return Status::Error("frozen " + what + " row index out of range");
    }
    std::copy(src.data() + r * src.cols(), src.data() + (r + 1) * src.cols(),
              dst.data() + i * dst.cols());
  }
  return Status::Ok();
}

}  // namespace

std::vector<CompletionOpType> ExtendOpAssignment(const FrozenModel& frozen,
                                                 const HeteroGraph& graph) {
  const HeteroGraph& old_g = *frozen.graph;
  AUTOAC_CHECK_EQ(graph.num_node_types(), old_g.num_node_types());
  std::vector<CompletionOpType> out;
  size_t old_pos = 0;  // cursor into frozen.op_of (missing-list order)
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (TypeAttributed(old_g, t)) continue;
    int64_t old_count = old_g.node_type(t).count;
    for (int64_t l = 0; l < graph.node_type(t).count; ++l) {
      out.push_back(l < old_count
                        ? frozen.op_of[old_pos + static_cast<size_t>(l)]
                        : CompletionOpType::kMean);
    }
    old_pos += static_cast<size_t>(old_count);
  }
  return out;
}

Status BindFrozenParams(
    const FrozenModel& frozen, const HeteroGraph& graph,
    const std::vector<std::vector<int64_t>>& frozen_local_of,
    const std::vector<VarPtr>& completion_params,
    const std::vector<VarPtr>& model_params) {
  if (!frozen.has_completion) {
    return Status::Error(
        "frozen model predates the completion section (v1 artifact); "
        "re-export to enable mutations");
  }
  const HeteroGraph& old_g = *frozen.graph;
  if (graph.num_node_types() != old_g.num_node_types()) {
    return Status::Error("graph node-type count differs from the artifact");
  }
  if (static_cast<int64_t>(frozen_local_of.size()) !=
      graph.num_node_types()) {
    return Status::Error("node map does not cover every node type");
  }

  // Whether (type, local) maps identically onto the frozen graph — true for
  // an unmutated graph, and the licence to copy per-node parameters whole.
  bool identity = true;
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (static_cast<int64_t>(frozen_local_of[t].size()) !=
        graph.node_type(t).count) {
      return Status::Error("node map does not cover every node");
    }
    if (graph.node_type(t).count != old_g.node_type(t).count) {
      identity = false;
    }
    for (size_t l = 0; identity && l < frozen_local_of[t].size(); ++l) {
      if (frozen_local_of[t][l] != static_cast<int64_t>(l)) identity = false;
    }
  }

  // --- completion parameters ------------------------------------------------
  // Flat CompletionModule::Parameters() order: projections of attributed
  // types (type order), mean/gcn/ppnp transforms, one-hot tables of missing
  // types (type order). Recover the frozen structure from the frozen graph,
  // the rebuilt structure from `graph`, and bind by role + node type. The
  // two structures can differ: a subgraph that cut every node of an
  // attributed type away classifies that (now empty) type as missing.
  std::vector<int64_t> old_proj(old_g.num_node_types(), -1);
  std::vector<int64_t> old_onehot(old_g.num_node_types(), -1);
  int64_t idx = 0;
  for (int64_t t = 0; t < old_g.num_node_types(); ++t) {
    if (TypeAttributed(old_g, t)) old_proj[t] = idx++;
  }
  int64_t old_mean = idx++, old_gcn = idx++, old_ppnp = idx++;
  for (int64_t t = 0; t < old_g.num_node_types(); ++t) {
    if (!TypeAttributed(old_g, t)) old_onehot[t] = idx++;
  }
  if (idx != static_cast<int64_t>(frozen.completion_params.size())) {
    return Status::Error(
        "completion parameter count does not match the artifact's graph");
  }

  size_t ni = 0;
  auto next = [&]() -> const VarPtr& {
    AUTOAC_CHECK(ni < completion_params.size());
    return completion_params[ni++];
  };
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (!TypeAttributed(graph, t)) continue;
    if (old_proj[t] < 0) {
      return Status::Error("node type " + graph.node_type(t).name +
                           " is attributed but was not at export");
    }
    Status s = CopySame(next(), frozen.completion_params[old_proj[t]],
                        "projection for " + graph.node_type(t).name);
    if (!s.ok()) return s;
  }
  for (int64_t which : {old_mean, old_gcn, old_ppnp}) {
    Status s =
        CopySame(next(), frozen.completion_params[which], "op transform");
    if (!s.ok()) return s;
  }
  for (int64_t t = 0; t < graph.num_node_types(); ++t) {
    if (TypeAttributed(graph, t)) continue;
    const VarPtr& table = next();
    if (old_onehot[t] < 0) {
      // Attributed at export but without members in this (sub)graph: the
      // rebuilt table has zero rows and nothing to bind.
      if (table->value.rows() != 0) {
        return Status::Error("node type " + graph.node_type(t).name +
                             " lost its attributes since export");
      }
      continue;
    }
    Status s = GatherRowsInto(table, frozen.completion_params[old_onehot[t]],
                              frozen_local_of[t],
                              "one-hot table for " + graph.node_type(t).name);
    if (!s.ok()) return s;
  }
  if (ni != completion_params.size()) {
    return Status::Error(
        "completion parameter count mismatch between rebuild and artifact");
  }

  // --- model parameters -----------------------------------------------------
  if (model_params.size() != frozen.model_params.size()) {
    return Status::Error(
        "model parameter count mismatch between rebuild and artifact");
  }
  int64_t n_new = graph.num_nodes();
  int64_t n_old = old_g.num_nodes();
  // Per-node row map in global-id space, built lazily on first use.
  std::vector<int64_t> row_of;
  for (size_t i = 0; i < model_params.size(); ++i) {
    const Tensor& src = frozen.model_params[i];
    const VarPtr& param = model_params[i];
    bool per_node = !identity && param->value.dim() == 2 && src.dim() == 2 &&
                    param->value.rows() == n_new && src.rows() == n_old &&
                    param->value.cols() == src.cols();
    // The per-node test is shape-based (rows track num_nodes, e.g. GATNE's
    // base embedding); a non-per-node parameter can only collide with it
    // when some weight dimension equals the node count of both graphs.
    if (!per_node) {
      Status s = CopySame(param, src,
                          "model parameter " + std::to_string(i));
      if (!s.ok()) return s;
      continue;
    }
    if (row_of.empty()) {
      row_of.resize(n_new);
      for (int64_t t = 0; t < graph.num_node_types(); ++t) {
        const HeteroGraph::NodeTypeInfo& info = graph.node_type(t);
        int64_t old_offset = old_g.node_type(t).offset;
        for (int64_t l = 0; l < info.count; ++l) {
          int64_t fl = frozen_local_of[t][l];
          row_of[info.offset + l] = fl < 0 ? -1 : old_offset + fl;
        }
      }
    }
    Status s = GatherRowsInto(param, src, row_of,
                              "model parameter " + std::to_string(i));
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

StatusOr<FrozenModel> RefreezeWithGraph(
    const FrozenModel& frozen, HeteroGraphPtr graph,
    const std::vector<CompletionOpType>& op_of) {
  if (!frozen.has_completion) {
    return Status::Error(
        "frozen model predates the completion section (v1 artifact); "
        "re-export to enable mutations");
  }
  // Mirror FreezeTrainedRun's construction order (completion module, then
  // model) so shapes line up; every value is overwritten by the bind.
  Rng rng(frozen.seed);
  CompletionConfig completion_config;
  completion_config.hidden_dim = frozen.hidden_dim;
  completion_config.ppnp_restart = frozen.ppnp_restart;
  completion_config.ppnp_steps = frozen.ppnp_steps;
  CompletionModule completion(graph, completion_config, rng);
  if (static_cast<int64_t>(op_of.size()) != completion.num_missing()) {
    return Status::Error(
        "op assignment length does not match the graph's missing nodes");
  }

  ModelContext ctx = BuildModelContext(graph);
  ModelConfig model_config;
  model_config.in_dim = frozen.hidden_dim;
  model_config.hidden_dim = frozen.hidden_dim;
  model_config.out_dim = frozen.hidden_dim;
  model_config.num_layers = frozen.num_layers;
  model_config.num_heads = frozen.num_heads;
  model_config.dropout = frozen.dropout;
  model_config.negative_slope = frozen.negative_slope;
  ModelPtr model = MakeModel(frozen.model_name, model_config, ctx, rng,
                             /*l2_normalize_output=*/false);

  // Canonical append layout: locals below the exported count map onto
  // themselves; everything past it is a new node.
  std::vector<std::vector<int64_t>> frozen_local_of(graph->num_node_types());
  for (int64_t t = 0; t < graph->num_node_types(); ++t) {
    int64_t old_count = frozen.graph->node_type(t).count;
    frozen_local_of[t].resize(graph->node_type(t).count);
    for (int64_t l = 0; l < graph->node_type(t).count; ++l) {
      frozen_local_of[t][l] = l < old_count ? l : -1;
    }
  }
  Status bound = BindFrozenParams(frozen, *graph, frozen_local_of,
                                  completion.Parameters(),
                                  model->Parameters());
  if (!bound.ok()) return bound;

  FrozenModel out;
  out.model_name = frozen.model_name;
  out.hidden_dim = frozen.hidden_dim;
  out.num_layers = frozen.num_layers;
  out.num_heads = frozen.num_heads;
  out.dropout = frozen.dropout;
  out.negative_slope = frozen.negative_slope;
  out.seed = frozen.seed;
  out.num_classes = frozen.num_classes;
  out.graph = graph;
  out.op_of = op_of;
  {
    NoGradGuard no_grad;
    out.h0 = completion.CompleteDiscrete(op_of)->value;
  }
  for (const VarPtr& p : model->Parameters()) {
    out.model_params.push_back(p->value);
  }
  out.classifier_weight = frozen.classifier_weight;
  out.classifier_bias = frozen.classifier_bias;
  out.has_completion = true;
  for (const VarPtr& p : completion.Parameters()) {
    out.completion_params.push_back(p->value);
  }
  out.ppnp_restart = frozen.ppnp_restart;
  out.ppnp_steps = frozen.ppnp_steps;
  out.fingerprint = ComputeFrozenFingerprint(out);
  return out;
}

}  // namespace autoac
