#include "serving/frozen_model.h"

#include <sstream>
#include <utility>

#include "autoac/checkpoint.h"
#include "completion/completion_module.h"
#include "data/serialization.h"
#include "models/factory.h"

namespace autoac {
namespace {

constexpr char kFrozenMagic[4] = {'A', 'A', 'C', 'M'};

/// Upper bound on stored model parameter tensors; real models have a few
/// dozen. Keeps corrupted count fields from driving huge allocations.
constexpr int64_t kMaxModelParams = int64_t{1} << 16;

uint64_t MixI64(uint64_t h, int64_t v) { return Fnv1a(&v, sizeof(v), h); }
uint64_t MixU64(uint64_t h, uint64_t v) { return Fnv1a(&v, sizeof(v), h); }
uint64_t MixF32(uint64_t h, float v) { return Fnv1a(&v, sizeof(v), h); }
uint64_t MixString(uint64_t h, const std::string& s) {
  h = MixI64(h, static_cast<int64_t>(s.size()));
  return Fnv1a(s.data(), s.size(), h);
}
uint64_t MixI64Vector(uint64_t h, const std::vector<int64_t>& v) {
  h = MixI64(h, static_cast<int64_t>(v.size()));
  return Fnv1a(v.data(), v.size() * sizeof(int64_t), h);
}

}  // namespace

uint64_t ComputeFrozenFingerprint(const FrozenModel& model) {
  uint64_t h = kFnvOffsetBasis;
  h = MixString(h, model.model_name);
  h = MixI64(h, model.hidden_dim);
  h = MixI64(h, model.num_layers);
  h = MixI64(h, model.num_heads);
  h = MixF32(h, model.dropout);
  h = MixF32(h, model.negative_slope);
  h = MixU64(h, model.seed);
  h = MixI64(h, model.num_classes);
  // Graph identity: structure, attributes, and task annotations all change
  // the meaning of the weights, so all of them feed the fingerprint.
  const HeteroGraph& g = *model.graph;
  h = MixI64(h, g.num_nodes());
  h = MixI64(h, g.num_node_types());
  h = MixI64(h, g.num_edge_types());
  h = MixI64(h, g.target_node_type());
  h = MixI64(h, g.num_classes());
  for (int64_t t = 0; t < g.num_node_types(); ++t) {
    const HeteroGraph::NodeTypeInfo& info = g.node_type(t);
    h = MixString(h, info.name);
    h = MixI64(h, info.count);
    h = DigestTensor(h, info.attributes);
  }
  h = MixI64Vector(h, g.edge_src());
  h = MixI64Vector(h, g.edge_dst());
  h = MixI64Vector(h, g.edge_type_ids());
  h = MixI64Vector(h, g.global_labels());
  h = MixI64(h, static_cast<int64_t>(model.op_of.size()));
  h = Fnv1a(model.op_of.data(),
            model.op_of.size() * sizeof(CompletionOpType), h);
  h = DigestTensor(h, model.h0);
  h = MixI64(h, static_cast<int64_t>(model.model_params.size()));
  for (const Tensor& p : model.model_params) h = DigestTensor(h, p);
  h = DigestTensor(h, model.classifier_weight);
  h = DigestTensor(h, model.classifier_bias);
  return h;
}

StatusOr<FrozenModel> FreezeTrainedRun(const TaskData& data,
                                       const ModelContext& ctx,
                                       const ExperimentConfig& config,
                                       const RunResult& run) {
  if (data.task != TaskKind::kNodeClassification) {
    return Status::Error(
        "frozen model export supports node classification only");
  }
  if (run.final_params.empty()) {
    return Status::Error(
        "run carries no final parameters; rerun with capture_final_params "
        "(the method may not train through TrainFixedCompletion)");
  }
  if (run.searched_ops.empty()) {
    return Status::Error("run carries no completion-op assignment");
  }

  // Mirror TrainFixedCompletion's construction order exactly: the Rng
  // stream determines nothing we keep (every value is overwritten below)
  // but the construction sequence determines the parameter shapes and
  // their order in the flattened list.
  Rng rng(config.seed);
  CompletionConfig completion_config = config.completion;
  completion_config.hidden_dim = config.hidden_dim;
  CompletionModule completion(data.graph, completion_config, rng);
  if (static_cast<int64_t>(run.searched_ops.size()) !=
      completion.num_missing()) {
    return Status::Error("assignment length does not match the graph's "
                         "missing-node count");
  }

  ModelConfig model_config;
  model_config.in_dim = config.hidden_dim;
  model_config.hidden_dim = config.hidden_dim;
  model_config.out_dim = config.hidden_dim;
  model_config.num_layers = config.num_layers;
  model_config.num_heads = config.num_heads;
  model_config.dropout = config.dropout;
  model_config.negative_slope = config.negative_slope;
  ModelPtr model = MakeModel(config.model_name, model_config, ctx, rng,
                             /*l2_normalize_output=*/false);
  TaskHead head(data, model_config.out_dim, config.mrr_negatives, rng);

  std::vector<VarPtr> params = completion.Parameters();
  for (const VarPtr& p : model->Parameters()) params.push_back(p);
  std::vector<VarPtr> head_params = head.Parameters();
  for (const VarPtr& p : head_params) params.push_back(p);
  if (params.size() != run.final_params.size()) {
    return Status::Error(
        "parameter count mismatch between the run and the rebuilt model "
        "(config drift?)");
  }
  for (size_t i = 0; i < params.size(); ++i) {
    if (!params[i]->value.SameShape(run.final_params[i])) {
      return Status::Error("parameter shape mismatch at index " +
                           std::to_string(i) + " (config drift?)");
    }
    params[i]->value = run.final_params[i];
  }
  if (head_params.size() != 2 || head_params[0]->value.dim() != 2 ||
      head_params[1]->value.dim() != 1) {
    return Status::Error("unexpected task-head parameter layout");
  }

  FrozenModel frozen;
  frozen.model_name = config.model_name;
  frozen.hidden_dim = config.hidden_dim;
  frozen.num_layers = config.num_layers;
  frozen.num_heads = config.num_heads;
  frozen.dropout = config.dropout;
  frozen.negative_slope = config.negative_slope;
  frozen.seed = config.seed;
  frozen.num_classes = data.graph->num_classes();
  frozen.graph = data.graph;
  frozen.op_of = run.searched_ops;
  {
    // Materialize the completed attributes once, tape-free: serving never
    // re-runs the completion aggregations.
    NoGradGuard no_grad;
    frozen.h0 = completion.CompleteDiscrete(run.searched_ops)->value;
  }
  for (const VarPtr& p : model->Parameters()) {
    frozen.model_params.push_back(p->value);
  }
  frozen.classifier_weight = head_params[0]->value;
  frozen.classifier_bias = head_params[1]->value;
  frozen.fingerprint = ComputeFrozenFingerprint(frozen);
  return frozen;
}

Status SaveFrozenModel(const FrozenModel& model, const std::string& path) {
  if (model.graph == nullptr) {
    return Status::Error("frozen model has no graph");
  }
  std::ostringstream payload;
  io::WriteString(payload, model.model_name);
  io::WriteI64(payload, model.hidden_dim);
  io::WriteI64(payload, model.num_layers);
  io::WriteI64(payload, model.num_heads);
  io::WriteF64(payload, model.dropout);
  io::WriteF64(payload, model.negative_slope);
  io::WriteU64(payload, model.seed);
  io::WriteI64(payload, model.num_classes);
  io::WriteU64(payload, model.fingerprint);
  WriteGraphPayload(payload, *model.graph);
  std::vector<int64_t> ops;
  ops.reserve(model.op_of.size());
  for (CompletionOpType op : model.op_of) {
    ops.push_back(static_cast<int64_t>(op));
  }
  io::WriteI64Vector(payload, ops);
  io::WriteTensor(payload, model.h0);
  io::WriteI64(payload, static_cast<int64_t>(model.model_params.size()));
  for (const Tensor& p : model.model_params) io::WriteTensor(payload, p);
  io::WriteTensor(payload, model.classifier_weight);
  io::WriteTensor(payload, model.classifier_bias);
  return io::WriteFileAtomic(path, kFrozenMagic, payload.str());
}

StatusOr<uint64_t> PeekFrozenFingerprint(const std::string& path) {
  StatusOr<std::string> payload = io::ReadFileChecked(path, kFrozenMagic);
  if (!payload.ok()) return payload.status();
  std::istringstream in(payload.value());
  std::string model_name;
  int64_t i64 = 0;
  double f64 = 0.0;
  uint64_t seed = 0, stored_fingerprint = 0;
  if (!io::ReadString(in, &model_name) || !io::ReadI64(in, &i64) ||
      !io::ReadI64(in, &i64) || !io::ReadI64(in, &i64) ||
      !io::ReadF64(in, &f64) || !io::ReadF64(in, &f64) ||
      !io::ReadU64(in, &seed) || !io::ReadI64(in, &i64) ||
      !io::ReadU64(in, &stored_fingerprint)) {
    return Status::Error("frozen model payload is malformed: " + path);
  }
  return stored_fingerprint;
}

StatusOr<FrozenModel> LoadFrozenModel(const std::string& path) {
  StatusOr<std::string> payload = io::ReadFileChecked(path, kFrozenMagic);
  if (!payload.ok()) return payload.status();
  std::istringstream in(payload.value());
  const Status malformed =
      Status::Error("frozen model payload is malformed: " + path);

  FrozenModel model;
  double dropout = 0.0, negative_slope = 0.0;
  uint64_t stored_fingerprint = 0;
  if (!io::ReadString(in, &model.model_name) ||
      !io::ReadI64(in, &model.hidden_dim) ||
      !io::ReadI64(in, &model.num_layers) ||
      !io::ReadI64(in, &model.num_heads) || !io::ReadF64(in, &dropout) ||
      !io::ReadF64(in, &negative_slope) || !io::ReadU64(in, &model.seed) ||
      !io::ReadI64(in, &model.num_classes) ||
      !io::ReadU64(in, &stored_fingerprint)) {
    return malformed;
  }
  model.dropout = static_cast<float>(dropout);
  model.negative_slope = static_cast<float>(negative_slope);
  if (model.hidden_dim <= 0 || model.num_layers <= 0 ||
      model.num_heads <= 0 || model.num_classes <= 0) {
    return malformed;
  }

  StatusOr<HeteroGraphPtr> graph = ReadGraphPayload(in);
  if (!graph.ok()) return graph.status();
  model.graph = graph.TakeValue();

  std::vector<int64_t> ops;
  if (!io::ReadI64Vector(in, &ops)) return malformed;
  if (static_cast<int64_t>(ops.size()) > model.graph->num_nodes()) {
    return malformed;
  }
  model.op_of.reserve(ops.size());
  for (int64_t raw : ops) {
    if (raw < 0 || raw >= kNumCompletionOps) return malformed;
    model.op_of.push_back(static_cast<CompletionOpType>(raw));
  }

  if (!io::ReadTensor(in, &model.h0)) return malformed;
  int64_t num_params = 0;
  if (!io::ReadI64(in, &num_params) || num_params < 0 ||
      num_params > kMaxModelParams) {
    return malformed;
  }
  model.model_params.resize(num_params);
  for (int64_t i = 0; i < num_params; ++i) {
    if (!io::ReadTensor(in, &model.model_params[i])) return malformed;
  }
  if (!io::ReadTensor(in, &model.classifier_weight) ||
      !io::ReadTensor(in, &model.classifier_bias)) {
    return malformed;
  }
  if (in.peek() != std::istringstream::traits_type::eof()) {
    return Status::Error("frozen model has trailing bytes: " + path);
  }

  // Shape validation before any consumer touches the tensors.
  if (model.h0.dim() != 2 || model.h0.rows() != model.graph->num_nodes() ||
      model.h0.cols() != model.hidden_dim) {
    return malformed;
  }
  if (model.classifier_weight.dim() != 2 ||
      model.classifier_weight.cols() != model.num_classes ||
      model.classifier_bias.dim() != 1 ||
      model.classifier_bias.numel() != model.num_classes) {
    return malformed;
  }
  if (model.num_classes != model.graph->num_classes()) return malformed;

  uint64_t recomputed = ComputeFrozenFingerprint(model);
  if (recomputed != stored_fingerprint) {
    return Status::Error(
        "frozen model fingerprint mismatch (stored vs recomputed content): "
        "the artifact was produced by an incompatible exporter or edited "
        "after export: " + path);
  }
  model.fingerprint = stored_fingerprint;
  return model;
}

}  // namespace autoac
