#ifndef AUTOAC_SERVING_MUTABLE_SESSION_H_
#define AUTOAC_SERVING_MUTABLE_SESSION_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_set>
#include <vector>

#include "graph/mutable_graph.h"
#include "serving/inference_session.h"
#include "util/status.h"

namespace autoac {

/// One streaming graph delta (DESIGN.md §12), as parsed from the serving
/// socket or a --mutation_feed file. Endpoint ids are type-local in the
/// *current* layout (existing nodes keep their export-time locals; added
/// nodes get the locals AddNode returned).
struct Mutation {
  enum class Kind { kAddNode, kAddEdge, kRemoveEdge };
  Kind kind = Kind::kAddNode;
  std::string node_type;          // add_node: type of the new node
  std::vector<float> attributes;  // add_node: optional raw attribute row
  std::string edge_type;          // add_edge / remove_edge
  int64_t src = -1;               // add_edge / remove_edge endpoint locals
  int64_t dst = -1;
  /// When nonzero, the mutation only applies if the live artifact's content
  /// fingerprint matches — the guard against racing a SIGHUP reload that
  /// swapped the model underneath the client.
  uint64_t expect_fingerprint = 0;
};

/// Outcome of one applied mutation, echoed to the client and folded into
/// ServeStats.
struct MutationResult {
  int64_t node = -1;       // add_node: assigned type-local id
  int64_t dirty_rows = 0;  // logits rows newly marked dirty by this delta
};

/// Incremental serving session over a mutable graph overlay (DESIGN.md §12).
///
/// Wraps a frozen InferenceSession and keeps its own copies of the
/// materialized H0 and the cached logits matrix. Each mutation expands a
/// K-hop dirty frontier (K derived from the artifact's completion
/// operations plus the GNN's receptive depth) and marks the affected rows;
/// reads of clean rows are served straight from the cache, reads of dirty
/// rows are served stale-but-bounded or trigger a recompute per the
/// staleness policy.
///
/// The recompute is partial whenever the model is row-decomposable: the
/// support ball around the dirty rows is extracted as a degree-overridden
/// subgraph, the frozen parameters are bound onto a completion module + GNN
/// rebuilt on it, and the interpreted forward runs on the subgraph only;
/// the dirty rows are scattered back. Models with global coupling (HAN /
/// MAGNN / HetGNN semantic attention averages over *all* target rows) and
/// deltas whose support ball stops being local fall back to a full
/// from-scratch refreeze (RefreezeWithGraph). Both paths are bitwise
/// identical to exporting the mutated graph from scratch — the headline
/// invariant the mutation-equivalence suite enforces at every thread count.
class MutableSession {
 public:
  struct Options {
    /// 0: every mutation flushes before returning, so reads never observe a
    /// stale row. >0: dirty rows are served from the stale cache until the
    /// oldest unflushed mutation is older than this bound, then a read of a
    /// dirty row recomputes first.
    int64_t staleness_ms = 0;
  };

  /// `base` must outlive nothing — the session shares ownership. Starts as
  /// an exact replica of the base session (same logits, same answers).
  MutableSession(std::shared_ptr<InferenceSession> base,
                 const Options& options);

  const FrozenModel& frozen() const { return base_->frozen(); }
  uint64_t fingerprint() const { return base_->frozen().fingerprint; }
  /// The live overlay. Tests build the from-scratch reference re-export
  /// from its compacted graph; the CLI reports its version().
  MutableGraph& graph() { return graph_; }
  int64_t num_targets() const;
  int64_t num_classes() const { return base_->frozen().num_classes; }

  /// Validates and applies one delta. Distinct errors for: v1 artifacts
  /// (no completion section), fingerprint mismatch (SIGHUP swapped the
  /// model), unknown node/edge type, malformed attribute rows, endpoint
  /// ids out of range, and removal of a nonexistent edge. On success the
  /// dirty frontier is expanded; with staleness_ms == 0 the recompute also
  /// runs before returning.
  StatusOr<MutationResult> Apply(const Mutation& mutation);

  /// Prediction for a target-type node addressed by its *current*
  /// type-local id — nodes added after export are addressable as soon as
  /// Apply returns their local id (inductive scoring). Clean rows are an
  /// O(classes) row lookup exactly like InferenceSession::Predict; dirty
  /// rows follow the staleness policy.
  StatusOr<InferenceSession::Prediction> Predict(int64_t node);

  /// Batch prediction over the live overlay (DESIGN.md §14). If any
  /// requested row is dirty the staleness policy runs once for the whole
  /// batch, then the requested rows' hidden features are gathered from the
  /// maintained hidden overlay and the head-only compiled batch forward
  /// produces their logits. Bitwise identical to calling Predict per id —
  /// the overlay keeps `logits_[g] == head(hidden_[g])` row for row, both
  /// for fresh and stale-but-bounded rows. The batch head is compiled
  /// lazily and recompiled when add_node grows the overlay (the compiled
  /// plan is specialized to the hidden row count); graphs beyond the float
  /// exact-integer id range fall back to per-row lookups.
  StatusOr<std::vector<InferenceSession::Prediction>> PredictBatch(
      const std::vector<int64_t>& nodes);

  /// Recomputes every dirty row now (partial when possible, full refreeze
  /// otherwise) and clears the frontier. No-op when clean.
  void Flush();

  /// FNV-1a digest over the full logits matrix after a Flush(). The
  /// mutation-equivalence fuzz compares this against the digest of a
  /// from-scratch re-export at every thread count.
  uint64_t LogitsDigest();

  /// Full current logits [num_nodes, num_classes] (row = global id).
  /// Flushes first so the matrix is exact.
  const Tensor& FlushedLogits();

  // --- observability (ServeStats feeds from these) --------------------------
  int64_t mutations_applied() const { return mutations_applied_; }
  /// Total logits rows ever marked dirty (double-marking not double-counted
  /// within one frontier).
  int64_t dirty_rows_marked() const { return dirty_rows_marked_; }
  /// Logits rows recomputed via the partial (subgraph) path.
  int64_t partial_forward_rows() const { return partial_forward_rows_; }
  int64_t partial_recomputes() const { return partial_recomputes_; }
  int64_t full_recomputes() const { return full_recomputes_; }
  /// Rows currently dirty (awaiting a flush).
  int64_t pending_dirty_rows() const {
    return static_cast<int64_t>(dirty_logits_.size());
  }
  /// Partial-forward rows not yet folded into ServeStats; the batcher (the
  /// sole consumer) drains this after each dispatch. Resets to zero.
  int64_t TakeUnreportedPartialRows() {
    int64_t rows = unreported_partial_rows_;
    unreported_partial_rows_ = 0;
    return rows;
  }

 private:
  /// Folds rows into the dirty sets. `logits_rows` / `h0_rows` are the
  /// influence balls of one delta — the union of the balls on the graph
  /// before and after applying it (a removal's influence flowed through
  /// the edge that no longer exists). Counts rows newly marked dirty.
  void MarkDirty(const std::vector<int64_t>& logits_rows,
                 const std::vector<int64_t>& h0_rows, int64_t* newly_dirty);
  /// Shifts dirty ids for a node inserted at global id `pos` (ids >= pos
  /// move up by one) and inserts a zero row into h0_ / logits_.
  void InsertNodeRow(int64_t pos);
  /// Completion radius of the operations currently in use.
  int64_t CompletionRadius() const;
  /// Subgraph recompute of the sorted dirty rows. False when the support
  /// ball is not local enough (caller falls back to FlushFull).
  bool TryFlushPartial(const std::vector<int64_t>& dirty_logits,
                       const std::vector<int64_t>& dirty_h0);
  void FlushFull();
  void MaybeFlushForRead();

  std::shared_ptr<InferenceSession> base_;
  Options options_;
  MutableGraph graph_;
  Tensor h0_;      // current completed H0 (exact for clean rows)
  Tensor hidden_;  // current GNN hidden features (exact for clean rows)
  Tensor logits_;  // current logits cache (exact for clean rows)
  // Head-only batch forward over `hidden_`, compiled lazily at the current
  // overlay row count (Run checks input shapes strictly, so growth forces a
  // recompile). `batch_head_failed_` latches a refusal — rows only grow, so
  // once past the float exact-id range the fallback is permanent.
  std::unique_ptr<compiler::CompiledGraph> batch_head_;
  int64_t batch_head_rows_ = -1;
  bool batch_head_failed_ = false;
  Tensor batch_ids_;
  Tensor batch_logits_;
  std::vector<const Tensor*> batch_inputs_;  // {&hidden_, &batch_ids_}
  int64_t model_hops_ = 0;     // receptive depth of the GNN
  bool partial_capable_ = false;
  bool per_node_params_ = false;  // GATNE: [num_nodes, d] parameter rows
  bool ops_present_[4] = {false, false, false, false};
  std::unordered_set<int64_t> dirty_logits_;
  std::unordered_set<int64_t> dirty_h0_;
  std::chrono::steady_clock::time_point first_dirty_{};

  int64_t mutations_applied_ = 0;
  int64_t dirty_rows_marked_ = 0;
  int64_t partial_forward_rows_ = 0;
  int64_t unreported_partial_rows_ = 0;
  int64_t partial_recomputes_ = 0;
  int64_t full_recomputes_ = 0;
};

}  // namespace autoac

#endif  // AUTOAC_SERVING_MUTABLE_SESSION_H_
