#ifndef AUTOAC_SERVING_ADMISSION_H_
#define AUTOAC_SERVING_ADMISSION_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <string>

// Per-client admission control for the serving front-end (DESIGN.md §13).
//
// A deterministic token bucket per client identity: capacity `burst`
// tokens, refilled continuously at `rps` tokens/second. A request costs one
// token; a client that has drained its bucket is answered with a structured
// "rate limited" rejection carrying retry_after_ms — the exact time until
// one token will have refilled — instead of being queued or dropped.
//
// Determinism: the bucket is a pure function of its (rps, burst) parameters
// and the sequence of TryAcquire timestamps. Time is passed in by the
// caller (the server passes its monotonic clock; tests pass literal
// microsecond values), so the same call sequence always produces the same
// admit/reject decisions and the same retry hints.

namespace autoac {

/// One client's bucket. Not thread-safe on its own; AdmissionController
/// serializes access.
class TokenBucket {
 public:
  /// `rps` must be positive; `burst` is clamped to at least 1 token.
  TokenBucket(double rps, double burst, int64_t now_us);

  /// Spends one token if available (refilling for the elapsed time first).
  /// On rejection returns false and sets `retry_after_ms` (when non-null)
  /// to the ceiling of the time until a full token exists — the hint the
  /// wire rejection carries.
  bool TryAcquire(int64_t now_us, int64_t* retry_after_ms);

  /// True when the bucket has refilled to capacity: an idle client's bucket
  /// carries no more information than a fresh one, so the controller can
  /// drop it.
  bool AtCapacity(int64_t now_us) const;

  double tokens_at(int64_t now_us) const;

 private:
  double rps_;
  double burst_;
  double tokens_;
  int64_t last_us_;
};

/// Keys token buckets by client identity and bounds their total count.
/// Identity is the request's optional "client" key when present (one quota
/// spanning that client's connections) and a per-connection identity
/// otherwise. All methods are thread-safe.
class AdmissionController {
 public:
  struct Options {
    double rate_limit_rps = 0.0;    // <= 0 disables admission control
    double rate_limit_burst = 0.0;  // <= 0 defaults to max(rps, 1)
    /// Bound on distinct buckets held at once. When exceeded, buckets that
    /// have refilled to capacity are swept (they are equivalent to fresh
    /// ones); an adversary cycling identities can therefore hold at most
    /// this many *active* quotas, not unbounded memory.
    int64_t max_clients = 4096;
  };

  explicit AdmissionController(Options options);

  bool enabled() const { return options_.rate_limit_rps > 0.0; }

  /// Admits or rejects one request from `client` at `now_us`. Always admits
  /// when disabled. On rejection fills `retry_after_ms` (when non-null).
  bool Admit(const std::string& client, int64_t now_us,
             int64_t* retry_after_ms);

  /// Buckets currently held (test / introspection hook).
  int64_t num_clients() const;

 private:
  void SweepLocked(int64_t now_us);

  Options options_;
  double burst_;
  mutable std::mutex mu_;
  std::map<std::string, TokenBucket> buckets_;
};

}  // namespace autoac

#endif  // AUTOAC_SERVING_ADMISSION_H_
