#ifndef AUTOAC_SERVING_MODEL_REGISTRY_H_
#define AUTOAC_SERVING_MODEL_REGISTRY_H_

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "serving/inference_session.h"
#include "serving/mutable_session.h"
#include "util/status.h"

namespace autoac {

/// Names and owns the InferenceSessions one server process hosts
/// (DESIGN.md §10). Requests carry an optional "model" key; the registry
/// resolves it (empty string = default model) to a shared session. Sessions
/// are handed out as shared_ptr so a reload can swap the registry's entry
/// while requests already holding the old session finish against it — the
/// old session is destroyed when its last in-flight holder releases it.
///
/// Two ways to populate it:
///  - Register(): hand in an already-built session (tests, single-model
///    embedding).
///  - LoadFromSpec() + Reload(): resolve a CLI spec — either an explicit
///    "name=path[,name=path...]" list or a directory scanned for *.aacm
///    files — load every artifact, and later re-resolve the same spec on
///    SIGHUP. A reload is atomic and all-or-nothing: every artifact is
///    loaded and validated first, then the whole entry map is swapped; any
///    load failure leaves the serving set untouched. Artifacts whose
///    content fingerprint is unchanged keep their existing session; the
///    fingerprint comes from the artifact header alone
///    (PeekFrozenFingerprint), so an unchanged artifact costs one
///    CRC-checked file read — no payload parse, no session rebuild, no
///    forward.
class ModelRegistry {
 public:
  ModelRegistry() = default;

  ModelRegistry(const ModelRegistry&) = delete;
  ModelRegistry& operator=(const ModelRegistry&) = delete;

  /// Registers an in-process session under `name`, replacing any existing
  /// entry. The first registered model becomes the default.
  void Register(const std::string& name,
                std::shared_ptr<InferenceSession> session);

  /// Options applied to every session the registry constructs (LoadFromSpec
  /// and Reload). Set before LoadFromSpec; --no_compile routes through here.
  void set_session_options(const InferenceSession::Options& options);

  /// Enables the streaming-mutation overlay (DESIGN.md §12): every hosted
  /// model gets a MutableSession sibling that accepts graph deltas and
  /// answers that model's predictions. Set before LoadFromSpec/Register.
  /// Reload semantics: a fingerprint-unchanged artifact keeps its overlay —
  /// accumulated deltas survive a SIGHUP; a changed fingerprint swaps in a
  /// fresh overlay and the old deltas are discarded with the old session
  /// (clients guard against racing that with "expect_fingerprint").
  void set_mutation_options(bool enabled, int64_t staleness_ms);

  /// Configures the artifact spec and performs the initial load. Exactly
  /// one of `models_spec` ("name=path[,name=path...]") and `model_dir`
  /// (directory scanned for *.aacm; the file stem names the model) must be
  /// non-empty. The first spec entry (lexicographically first file for a
  /// directory) becomes the default model.
  Status LoadFromSpec(const std::string& models_spec,
                      const std::string& model_dir);

  /// Outcome of one Reload(), for operator logging.
  struct ReloadReport {
    std::vector<std::string> loaded;     // new names
    std::vector<std::string> reloaded;   // fingerprint changed, new session
    std::vector<std::string> unchanged;  // fingerprint identical, kept
    std::vector<std::string> removed;    // no longer in the spec
  };

  /// Re-resolves the spec set by LoadFromSpec() (re-scans the directory)
  /// and atomically swaps in the new artifact set. Requires a prior
  /// LoadFromSpec(); a Register()-only registry has nothing to re-read.
  StatusOr<ReloadReport> Reload();

  /// Session for `name`; the empty string resolves the default model.
  /// Returns nullptr for unknown names. When `resolved` is non-null it
  /// receives the concrete model name (so "" comes back as the default's
  /// name — the server keys its per-model queues on it).
  std::shared_ptr<InferenceSession> Lookup(
      const std::string& name, std::string* resolved = nullptr) const;

  /// Like Lookup, but also hands out the model's mutation overlay (nullptr
  /// when mutations are disabled) — one lock, so the pair is from the same
  /// registry generation even across a concurrent Reload.
  std::shared_ptr<InferenceSession> Lookup(
      const std::string& name, std::string* resolved,
      std::shared_ptr<MutableSession>* mutable_session) const;

  /// The mutation overlay alone (nullptr when disabled or unknown); the
  /// CLI's --mutation_feed replay goes through this.
  std::shared_ptr<MutableSession> LookupMutable(
      const std::string& name, std::string* resolved = nullptr) const;

  /// One row per hosted model, for startup/reload logging.
  struct ModelInfo {
    std::string name;
    std::string path;  // empty for Register()ed sessions
    std::string arch;  // FrozenModel::model_name, e.g. "SimpleHGN"
    uint64_t fingerprint = 0;
    bool is_default = false;
  };
  std::vector<ModelInfo> Models() const;

  std::string default_model() const;
  int64_t size() const;

 private:
  struct Entry {
    std::string path;
    uint64_t fingerprint = 0;
    std::shared_ptr<InferenceSession> session;
    std::shared_ptr<MutableSession> mutable_session;  // when enabled
  };

  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::string default_name_;
  std::string models_spec_;
  std::string model_dir_;
  InferenceSession::Options session_options_;
  bool mutations_enabled_ = false;
  MutableSession::Options mutation_options_;
};

}  // namespace autoac

#endif  // AUTOAC_SERVING_MODEL_REGISTRY_H_
