#include "serving/admission.h"

#include <algorithm>
#include <cmath>

#include "util/check.h"

namespace autoac {

TokenBucket::TokenBucket(double rps, double burst, int64_t now_us)
    : rps_(rps),
      burst_(std::max(burst, 1.0)),
      tokens_(std::max(burst, 1.0)),
      last_us_(now_us) {
  AUTOAC_CHECK(rps > 0.0) << "token bucket needs a positive rate";
}

double TokenBucket::tokens_at(int64_t now_us) const {
  if (now_us <= last_us_) return tokens_;
  double refilled =
      tokens_ + static_cast<double>(now_us - last_us_) * rps_ / 1e6;
  return std::min(refilled, burst_);
}

bool TokenBucket::TryAcquire(int64_t now_us, int64_t* retry_after_ms) {
  tokens_ = tokens_at(now_us);
  last_us_ = std::max(last_us_, now_us);
  if (tokens_ >= 1.0) {
    tokens_ -= 1.0;
    return true;
  }
  if (retry_after_ms != nullptr) {
    // Time until the deficit refills, rounded up so a client honoring the
    // hint is never rejected again by the same deficit.
    double deficit = 1.0 - tokens_;
    *retry_after_ms =
        static_cast<int64_t>(std::ceil(deficit / rps_ * 1e3));
  }
  return false;
}

bool TokenBucket::AtCapacity(int64_t now_us) const {
  return tokens_at(now_us) >= burst_;
}

AdmissionController::AdmissionController(Options options)
    : options_(options),
      burst_(options.rate_limit_burst > 0.0
                 ? options.rate_limit_burst
                 : std::max(options.rate_limit_rps, 1.0)) {}

bool AdmissionController::Admit(const std::string& client, int64_t now_us,
                                int64_t* retry_after_ms) {
  if (!enabled()) return true;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = buckets_.find(client);
  if (it == buckets_.end()) {
    if (static_cast<int64_t>(buckets_.size()) >= options_.max_clients) {
      SweepLocked(now_us);
    }
    it = buckets_
             .emplace(client,
                      TokenBucket(options_.rate_limit_rps, burst_, now_us))
             .first;
  }
  return it->second.TryAcquire(now_us, retry_after_ms);
}

int64_t AdmissionController::num_clients() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(buckets_.size());
}

void AdmissionController::SweepLocked(int64_t now_us) {
  // A bucket back at capacity is indistinguishable from a fresh one, so
  // dropping it changes no admit/reject decision. If every bucket is
  // actively drained (true flood), fall back to dropping arbitrary entries
  // — losing a flooder's deficit is the lesser evil vs unbounded memory.
  for (auto it = buckets_.begin(); it != buckets_.end();) {
    it = it->second.AtCapacity(now_us) ? buckets_.erase(it) : std::next(it);
  }
  while (static_cast<int64_t>(buckets_.size()) >= options_.max_clients &&
         !buckets_.empty()) {
    buckets_.erase(buckets_.begin());
  }
}

}  // namespace autoac
