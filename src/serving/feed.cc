#include "serving/feed.h"

#include <memory>

#include "serving/mutable_session.h"
#include "serving/server.h"

namespace autoac {
namespace {

void Skip(FeedReplayReport* report, size_t line_no, const std::string& why) {
  ++report->skipped;
  if (static_cast<int64_t>(report->errors.size()) <
      FeedReplayReport::kMaxErrors) {
    report->errors.push_back("line " + std::to_string(line_no) + ": " + why);
  }
}

}  // namespace

FeedReplayReport ReplayMutationFeed(ModelRegistry* registry,
                                    const std::vector<std::string>& lines) {
  FeedReplayReport report;
  for (size_t i = 0; i < lines.size(); ++i) {
    ServeRequest request;
    std::string error;
    if (!ParseServeRequestLine(lines[i], &request, &error)) {
      Skip(&report, i + 1, error);
      continue;
    }
    if (!request.is_mutation) {
      Skip(&report, i + 1, "not a mutation");
      continue;
    }
    std::shared_ptr<MutableSession> overlay =
        registry->LookupMutable(request.model);
    if (overlay == nullptr) {
      Skip(&report, i + 1, "unknown model \"" + request.model + "\"");
      continue;
    }
    StatusOr<MutationResult> applied = overlay->Apply(request.mutation);
    if (!applied.ok()) {
      Skip(&report, i + 1, applied.status().message());
      continue;
    }
    ++report.applied;
    report.dirty_rows += applied.value().dirty_rows;
  }
  return report;
}

}  // namespace autoac
