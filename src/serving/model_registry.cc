#include "serving/model_registry.h"

#include <dirent.h>

#include <algorithm>

#include "serving/frozen_model.h"

namespace autoac {
namespace {

/// Splits "name=path[,name=path...]" into ordered (name, path) pairs.
Status ParseModelsSpec(const std::string& spec,
                       std::vector<std::pair<std::string, std::string>>* out) {
  size_t start = 0;
  while (start <= spec.size()) {
    size_t comma = spec.find(',', start);
    if (comma == std::string::npos) comma = spec.size();
    std::string item = spec.substr(start, comma - start);
    start = comma + 1;
    if (item.empty()) continue;
    size_t eq = item.find('=');
    if (eq == std::string::npos || eq == 0 || eq + 1 == item.size()) {
      return Status::Error("malformed --models entry \"" + item +
                           "\" (want name=path)");
    }
    std::string name = item.substr(0, eq);
    for (const auto& existing : *out) {
      if (existing.first == name) {
        return Status::Error("duplicate model name \"" + name +
                             "\" in --models");
      }
    }
    out->emplace_back(name, item.substr(eq + 1));
  }
  if (out->empty()) return Status::Error("--models spec is empty");
  return Status::Ok();
}

/// Scans `dir` for *.aacm files; the stem names the model. Sorted so the
/// default model (first entry) is stable across rescans.
Status ScanModelDir(const std::string& dir,
                    std::vector<std::pair<std::string, std::string>>* out) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::Error("cannot open --model_dir " + dir);
  }
  constexpr const char kSuffix[] = ".aacm";
  constexpr size_t kSuffixLen = sizeof(kSuffix) - 1;
  while (dirent* entry = ::readdir(d)) {
    std::string file = entry->d_name;
    if (file.size() <= kSuffixLen ||
        file.compare(file.size() - kSuffixLen, kSuffixLen, kSuffix) != 0) {
      continue;
    }
    out->emplace_back(file.substr(0, file.size() - kSuffixLen),
                      dir + "/" + file);
  }
  ::closedir(d);
  std::sort(out->begin(), out->end());
  if (out->empty()) {
    return Status::Error("no *.aacm artifacts in --model_dir " + dir);
  }
  return Status::Ok();
}

}  // namespace

void ModelRegistry::set_session_options(
    const InferenceSession::Options& options) {
  std::lock_guard<std::mutex> lock(mu_);
  session_options_ = options;
}

void ModelRegistry::set_mutation_options(bool enabled, int64_t staleness_ms) {
  std::lock_guard<std::mutex> lock(mu_);
  mutations_enabled_ = enabled;
  mutation_options_.staleness_ms = staleness_ms;
}

void ModelRegistry::Register(const std::string& name,
                             std::shared_ptr<InferenceSession> session) {
  AUTOAC_CHECK(session != nullptr);
  std::lock_guard<std::mutex> lock(mu_);
  std::shared_ptr<MutableSession> overlay;
  if (mutations_enabled_) {
    overlay = std::make_shared<MutableSession>(session, mutation_options_);
  }
  entries_[name] = Entry{"", session->frozen().fingerprint,
                         std::move(session), std::move(overlay)};
  if (default_name_.empty()) default_name_ = name;
}

Status ModelRegistry::LoadFromSpec(const std::string& models_spec,
                                   const std::string& model_dir) {
  if (models_spec.empty() == model_dir.empty()) {
    return Status::Error(
        "exactly one of --models and --model_dir must be given");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    models_spec_ = models_spec;
    model_dir_ = model_dir;
  }
  StatusOr<ReloadReport> report = Reload();
  return report.ok() ? Status::Ok() : report.status();
}

StatusOr<ModelRegistry::ReloadReport> ModelRegistry::Reload() {
  std::string models_spec, model_dir;
  std::map<std::string, Entry> current;
  InferenceSession::Options session_options;
  bool mutations_enabled;
  MutableSession::Options mutation_options;
  {
    std::lock_guard<std::mutex> lock(mu_);
    models_spec = models_spec_;
    model_dir = model_dir_;
    current = entries_;
    session_options = session_options_;
    mutations_enabled = mutations_enabled_;
    mutation_options = mutation_options_;
  }
  if (models_spec.empty() && model_dir.empty()) {
    return Status::Error(
        "registry was not configured from a spec; nothing to reload");
  }
  std::vector<std::pair<std::string, std::string>> resolved;
  Status spec_status = models_spec.empty()
                           ? ScanModelDir(model_dir, &resolved)
                           : ParseModelsSpec(models_spec, &resolved);
  if (!spec_status.ok()) return spec_status;

  // All-or-nothing: build the full next map first. Artifact loads and
  // session construction (one tape-free forward each) happen outside mu_
  // so concurrent Lookup()s keep being served from the current set.
  ReloadReport report;
  std::map<std::string, Entry> next;
  for (const auto& [name, path] : resolved) {
    if (next.count(name) != 0) {
      return Status::Error("duplicate model name \"" + name + "\"");
    }
    auto it = current.find(name);
    if (it != current.end()) {
      // Fast path for hot reloads: the stored fingerprint sits in the
      // artifact header behind the container CRC, so an unchanged artifact
      // is detected without parsing the graph or any tensor. A peek
      // failure falls through to the full load, whose error message names
      // the model.
      StatusOr<uint64_t> peeked = PeekFrozenFingerprint(path);
      if (peeked.ok() && peeked.value() == it->second.fingerprint) {
        next[name] = it->second;
        next[name].path = path;
        report.unchanged.push_back(name);
        continue;
      }
    }
    StatusOr<FrozenModel> frozen = LoadFrozenModel(path);
    if (!frozen.ok()) {
      return Status::Error("model \"" + name + "\" (" + path +
                           "): " + frozen.status().message());
    }
    if (it != current.end() &&
        it->second.fingerprint == frozen.value().fingerprint) {
      // Same content fingerprint: keep the live session, skip the forward.
      next[name] = it->second;
      next[name].path = path;
      report.unchanged.push_back(name);
    } else {
      auto session = std::make_shared<InferenceSession>(frozen.TakeValue(),
                                                        session_options);
      std::shared_ptr<MutableSession> overlay;
      if (mutations_enabled) {
        // A changed fingerprint means a different artifact: the old
        // overlay's deltas were relative to a graph that no longer serves,
        // so they are discarded with the old session.
        overlay = std::make_shared<MutableSession>(session, mutation_options);
      }
      next[name] = Entry{path, session->frozen().fingerprint,
                         std::move(session), std::move(overlay)};
      (it == current.end() ? report.loaded : report.reloaded)
          .push_back(name);
    }
  }
  for (const auto& [name, entry] : current) {
    (void)entry;
    if (next.count(name) == 0) report.removed.push_back(name);
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    entries_.swap(next);
    if (entries_.count(default_name_) == 0) {
      default_name_ = resolved.front().first;
    }
  }
  return report;
}

std::shared_ptr<InferenceSession> ModelRegistry::Lookup(
    const std::string& name, std::string* resolved) const {
  return Lookup(name, resolved, nullptr);
}

std::shared_ptr<InferenceSession> ModelRegistry::Lookup(
    const std::string& name, std::string* resolved,
    std::shared_ptr<MutableSession>* mutable_session) const {
  std::lock_guard<std::mutex> lock(mu_);
  const std::string& key = name.empty() ? default_name_ : name;
  auto it = entries_.find(key);
  if (it == entries_.end()) return nullptr;
  if (resolved != nullptr) *resolved = key;
  if (mutable_session != nullptr) *mutable_session = it->second.mutable_session;
  return it->second.session;
}

std::shared_ptr<MutableSession> ModelRegistry::LookupMutable(
    const std::string& name, std::string* resolved) const {
  std::shared_ptr<MutableSession> overlay;
  Lookup(name, resolved, &overlay);
  return overlay;
}

std::vector<ModelRegistry::ModelInfo> ModelRegistry::Models() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<ModelInfo> models;
  models.reserve(entries_.size());
  for (const auto& [name, entry] : entries_) {
    models.push_back(ModelInfo{name, entry.path,
                               entry.session->frozen().model_name,
                               entry.fingerprint, name == default_name_});
  }
  return models;
}

std::string ModelRegistry::default_model() const {
  std::lock_guard<std::mutex> lock(mu_);
  return default_name_;
}

int64_t ModelRegistry::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return static_cast<int64_t>(entries_.size());
}

}  // namespace autoac
