#ifndef AUTOAC_TENSOR_OPS_H_
#define AUTOAC_TENSOR_OPS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "tensor/quantize.h"
#include "tensor/variable.h"
#include "util/rng.h"

// Dense differentiable operations. Every function builds one node of the
// autograd tape: it computes the forward value eagerly and registers a
// closure that maps the node's output gradient to its parents' gradients.
//
// Shape conventions: feature matrices are rank-2 [rows, cols]; per-row
// scalars (attention logits, losses) are rank-1 [rows]; losses are rank-1
// tensors with a single element.

namespace autoac {

// ---------------------------------------------------------------------------
// Linear algebra.
// ---------------------------------------------------------------------------

/// C = A @ B with A [m, k], B [k, n].
VarPtr MatMul(const VarPtr& a, const VarPtr& b);

/// Transpose of a rank-2 tensor.
VarPtr Transpose(const VarPtr& a);

// ---------------------------------------------------------------------------
// Elementwise arithmetic.
// ---------------------------------------------------------------------------

/// Elementwise a + b (identical shapes).
VarPtr Add(const VarPtr& a, const VarPtr& b);

/// Sum of >= 1 same-shaped variables (left fold of Add without the
/// intermediate nodes).
VarPtr AddN(const std::vector<VarPtr>& xs);

/// Elementwise a - b (identical shapes).
VarPtr Sub(const VarPtr& a, const VarPtr& b);

/// Elementwise a * b (identical shapes).
VarPtr Mul(const VarPtr& a, const VarPtr& b);

/// x * constant.
VarPtr Scale(const VarPtr& x, float s);

/// x + constant.
VarPtr AddScalar(const VarPtr& x, float s);

/// x * s where s is a trainable scalar variable (numel() == 1). Gradients
/// flow into both x and s.
VarPtr ScaleByVar(const VarPtr& x, const VarPtr& s);

/// Adds a rank-1 bias [n] to every row of a rank-2 tensor [m, n].
VarPtr AddBias(const VarPtr& x, const VarPtr& bias);

/// Elementwise square root. Inputs must be non-negative; gradient is clamped
/// near zero to stay finite.
VarPtr Sqrt(const VarPtr& x);

// ---------------------------------------------------------------------------
// Shape surgery.
// ---------------------------------------------------------------------------

/// Vertical concatenation of rank-2 tensors with matching column counts.
VarPtr ConcatRows(const std::vector<VarPtr>& xs);

/// Horizontal concatenation of rank-2 tensors with matching row counts.
VarPtr ConcatCols(const std::vector<VarPtr>& xs);

/// out[i, :] = x[rows[i], :]. Gradient scatter-adds back into x.
VarPtr GatherRows(const VarPtr& x, std::vector<int64_t> rows);

/// out[i, :] = x[int64(ids[i]), :] where `ids` is a rank-1 *runtime* tensor
/// of row indices (exact integers stored as floats — callers must keep row
/// ids below 2^24, the float exact-integer range). Unlike GatherRows the
/// indices are an op input, not a compile-time attribute, so a compiled
/// graph can rebind them per run — the head-only batch forward's request
/// rows (DESIGN.md §14). Gradient flows into x only.
VarPtr GatherRowsDynamic(const VarPtr& x, const VarPtr& ids);

/// Returns an [n_rows, x.cols()] tensor whose row rows[i] is x's row i and
/// whose other rows are zero. `rows` must contain distinct indices.
VarPtr ScatterRows(const VarPtr& x, std::vector<int64_t> rows,
                   int64_t n_rows);

/// Extracts column j of a rank-2 tensor as a rank-1 vector.
VarPtr SliceCol(const VarPtr& x, int64_t j);

/// Extracts a single element of a rank-1 tensor as a 1-element tensor.
VarPtr SliceElement(const VarPtr& x, int64_t i);

/// Returns a copy with the same data but a new shape (numel preserved).
VarPtr Reshape(const VarPtr& x, std::vector<int64_t> shape);

/// out[i, :] = weights[ids[i]] * x[i, :] where weights is rank-1 [M] and
/// ids[i] in [0, M). This is the continuous-relaxation mixing step of Eq. 5
/// with cluster-shared weights: the gradient w.r.t. weights[c] is the sum of
/// <x[i, :], d_out[i, :]> over rows assigned to cluster c.
VarPtr ScaleRowsByGather(const VarPtr& x, const VarPtr& weights,
                         std::vector<int64_t> ids);

// ---------------------------------------------------------------------------
// Reductions.
// ---------------------------------------------------------------------------

/// Sum of all elements; returns a 1-element tensor.
VarPtr SumAll(const VarPtr& x);

/// Mean of all elements; returns a 1-element tensor.
VarPtr MeanAll(const VarPtr& x);

/// Sum of squares of all elements; returns a 1-element tensor. Used for L2
/// penalties and Frobenius norms.
VarPtr SumSquares(const VarPtr& x);

// ---------------------------------------------------------------------------
// Nonlinearities.
// ---------------------------------------------------------------------------

VarPtr Relu(const VarPtr& x);
VarPtr LeakyRelu(const VarPtr& x, float negative_slope);
VarPtr Elu(const VarPtr& x);
VarPtr Sigmoid(const VarPtr& x);
VarPtr Tanh(const VarPtr& x);

/// Softmax over each row of a rank-2 tensor.
VarPtr RowSoftmax(const VarPtr& x);

/// L2-normalizes every row (used by SimpleHGN's output embedding). Rows with
/// norm below eps pass through unscaled.
VarPtr RowL2Normalize(const VarPtr& x, float eps = 1e-12f);

/// Inverted dropout: scales kept entries by 1/(1-p). Identity when not
/// training or p == 0.
VarPtr Dropout(const VarPtr& x, float p, bool training, Rng& rng);

// ---------------------------------------------------------------------------
// Quantization.
// ---------------------------------------------------------------------------

/// Materializes the float decoding of a stored quantized tensor as a
/// zero-input node. Under IrCapture this records a Dequantize IR node whose
/// kernel re-decodes the payload; the compiler's dequantize-on-load pass
/// (src/compiler/passes.cc) runs that kernel once and folds the result to a
/// constant, so a compiled forward never decodes at run time. Decoding is
/// deterministic, hence bitwise-stable across runs and thread counts. Not
/// differentiable (inference-path only).
VarPtr Dequantize(std::shared_ptr<const EncodedTensor> enc);

// ---------------------------------------------------------------------------
// Losses.
// ---------------------------------------------------------------------------

/// Mean softmax cross-entropy over the subset `rows` of `logits` [n, C].
/// `labels` has one entry per logits row (entries outside `rows` ignored).
VarPtr SoftmaxCrossEntropy(const VarPtr& logits,
                           const std::vector<int64_t>& labels,
                           const std::vector<int64_t>& rows);

/// Mean binary cross-entropy with logits over a rank-1 score vector.
VarPtr BceWithLogits(const VarPtr& scores, const std::vector<float>& targets);

}  // namespace autoac

#endif  // AUTOAC_TENSOR_OPS_H_
