#ifndef AUTOAC_TENSOR_GRAPH_IR_H_
#define AUTOAC_TENSOR_GRAPH_IR_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "tensor/variable.h"

// Dataflow IR for the tape-free eval forward (DESIGN.md §11).
//
// A frozen model's forward is a fixed dataflow program: the op sequence,
// every shape, and every weight are known at load time, and only H0 (the
// completed attributes) varies between runs of the same artifact. IrCapture
// turns one execution of that forward into an explicit, topologically
// ordered op list — the input of the src/compiler/ pass pipeline and arena
// planner. Capture happens through internal::MakeOp: each op contributes a
// *replay kernel*, a closure that recomputes the op's output from its input
// tensors. The eager op implementations execute the very same closure they
// record, so replaying the IR is bitwise identical to interpreting the tape
// at every thread count (all kernels run on the shared deterministic
// ParallelFor runtime).
//
// Kernel contract:
//   * Dims are captured in the closure at record time (shapes are static for
//     a frozen model); the Tensor arguments only supply data pointers.
//   * The kernel fully defines `out` — it either writes every element or
//     explicitly zeroes before accumulating. Arena slots hold garbage from
//     the previous value, so nothing may rely on zero-initialized output.
//   * A kernel flagged kCanAliasInput0 must stay correct when `&out` is the
//     same tensor as `ins[0]` (elementwise read-then-write per index).
//   * `scratch` points at Node::scratch_numel floats when that is > 0;
//     kernels with optional scratch (e.g. RowL2Normalize's backward norms)
//     must tolerate nullptr.

namespace autoac {
namespace ir {

/// Recomputes one op: `ins` are the input tensors in op-argument order,
/// `out` is preshaped to the recorded output shape, `scratch` is a
/// per-node float workspace (see Node::scratch_numel).
using Kernel =
    std::function<void(const Tensor* const* ins, Tensor& out, float* scratch)>;

/// Op-specific payload carried by a Node. Only what the compiler passes
/// need: a scalar (LeakyRelu slope, Scale factor), an index list (gathers /
/// scatters), and a type-erased handle (the SparseMatrix of sparse ops —
/// type-erased because the tensor library cannot depend on the graph
/// library; src/compiler/ casts it back knowing the op name).
struct Attrs {
  float scalar = 0.0f;
  std::shared_ptr<const std::vector<int64_t>> ids;
  std::shared_ptr<const void> handle;
};

enum NodeFlags : uint32_t {
  kNoFlags = 0,
  /// Output may share a buffer with ins[0] (in-place rewrite candidate).
  kCanAliasInput0 = 1u << 0,
};

/// How a value comes into existence.
enum class ValueKind {
  kConst,         // frozen leaf (weights) or pass-folded constant
  kInput,         // rebindable leaf (H0) — bound by the executor per run
  kIntermediate,  // defined by a node
};

struct Value {
  std::vector<int64_t> shape;
  ValueKind kind = ValueKind::kIntermediate;
  /// Keeps const/input leaves alive for the lifetime of the IR; also pins
  /// recorded intermediates during capture so Variable addresses stay
  /// unique. Null for values folded by the compiler.
  VarPtr leaf;
  /// Owning storage for constants materialized by constant folding.
  Tensor folded;
  std::string name;  // debug label ("h0", "leaf", or the defining op)
  int32_t def = -1;  // index of the defining node, -1 for leaves

  int64_t numel() const {
    int64_t product = 1;
    for (int64_t extent : shape) product *= extent;
    return shape.empty() ? 0 : product;
  }
  /// Backing tensor of a kConst value (leaf weight or folded result).
  const Tensor* const_data() const {
    if (folded.numel() > 0) return &folded;
    return leaf != nullptr ? &leaf->value : nullptr;
  }
};

struct Node {
  std::string op;
  std::vector<int32_t> inputs;  // value ids, op-argument order
  int32_t out = -1;             // value id this node defines
  Kernel kernel;                // null => opaque op, graph is not compilable
  Attrs attrs;
  uint32_t flags = kNoFlags;
  int64_t scratch_numel = 0;
  /// Set by the in-place pass: the planner assigns out the slot of ins[0].
  bool inplace = false;
};

/// The captured program: values + nodes in execution (topological) order.
struct Graph {
  std::vector<Value> values;
  std::vector<Node> nodes;
  std::vector<int32_t> outputs;
  /// False when any recorded op lacks a replay kernel (the compiler then
  /// falls back to the interpreted forward). Recomputed by DCE — a dead
  /// opaque op does not poison the graph.
  bool complete = true;

  /// Human-readable listing, stable enough for golden tests:
  ///   v0: input [303, 16] "h0"
  ///   n1: AddBias(v2, v3) -> v4 [303, 8] inplace
  std::string Dump() const;
};

}  // namespace ir

/// RAII recorder: while alive on this thread, every op built through
/// internal::MakeOp is appended to the IR. Implies NoGradGuard (capture is
/// an inference-path concept; grad mode and capture never mix). Does not
/// nest.
///
///   IrCapture capture;
///   capture.MarkInput(h0, "h0");
///   VarPtr logits = model->Forward(...);   // ops record themselves
///   ir::Graph graph = capture.Finish(logits);
class IrCapture {
 public:
  IrCapture();
  ~IrCapture();
  IrCapture(const IrCapture&) = delete;
  IrCapture& operator=(const IrCapture&) = delete;

  /// Declares `leaf` a rebindable input. Must be called before the forward
  /// runs; any leaf not marked is treated as a foldable constant.
  void MarkInput(const VarPtr& leaf, std::string name);

  /// Stops recording and returns the IR rooted at `output`. If `output` was
  /// never recorded (e.g. the forward is an identity over a leaf) the graph
  /// comes back with complete == false.
  ir::Graph Finish(const VarPtr& output);

  struct Recorder;  // implementation detail, public for graph_ir.cc helpers

 private:
  std::unique_ptr<Recorder> recorder_;
  NoGradGuard no_grad_;
};

namespace internal {

/// True when an IrCapture is live on this thread. Read by MakeOp on every
/// op; a bare thread_local load keeps the training path unaffected.
extern thread_local bool t_ir_capture_active;
inline bool IrCaptureActive() { return t_ir_capture_active; }

/// Appends one op to the active capture. `node` is the freshly built tape
/// node (its op_name and value supply the IR node/value metadata); leaves
/// among `parents` are registered on first sight.
void IrRecordOp(const VarPtr& node, const std::vector<VarPtr>& parents,
                ir::Kernel kernel, ir::Attrs attrs, uint32_t flags,
                int64_t scratch_numel);

/// Appends an op with no replay kernel (losses, training-mode dropout);
/// marks the capture incomplete unless DCE later removes the node.
void IrRecordOpaque(const VarPtr& node, const std::vector<VarPtr>& parents);

}  // namespace internal
}  // namespace autoac

#endif  // AUTOAC_TENSOR_GRAPH_IR_H_
