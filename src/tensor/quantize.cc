#include "tensor/quantize.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/check.h"

namespace autoac {

uint16_t FloatToHalf(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  uint32_t sign = (bits >> 16) & 0x8000u;
  int32_t exponent = static_cast<int32_t>((bits >> 23) & 0xFFu) - 127 + 15;
  uint32_t mantissa = bits & 0x7FFFFFu;
  if (exponent >= 0x1F) {
    // Overflow to infinity; NaN keeps a nonzero mantissa.
    uint32_t nan_bit = ((bits & 0x7F800000u) == 0x7F800000u && mantissa != 0)
                           ? 0x200u
                           : 0u;
    return static_cast<uint16_t>(sign | 0x7C00u | nan_bit);
  }
  if (exponent <= 0) {
    if (exponent < -10) return static_cast<uint16_t>(sign);  // underflow to 0
    // Subnormal: shift the implicit leading 1 into the mantissa and round
    // the discarded bits to nearest-even.
    mantissa |= 0x800000u;
    int shift = 14 - exponent;  // in [14, 24]
    uint32_t half_mant = mantissa >> shift;
    uint32_t rest = mantissa & ((1u << shift) - 1);
    uint32_t halfway = 1u << (shift - 1);
    if (rest > halfway || (rest == halfway && (half_mant & 1u))) ++half_mant;
    return static_cast<uint16_t>(sign | half_mant);
  }
  uint32_t half_mant = mantissa >> 13;
  uint32_t rest = mantissa & 0x1FFFu;
  uint16_t h = static_cast<uint16_t>(sign | (exponent << 10) | half_mant);
  if (rest > 0x1000u || (rest == 0x1000u && (h & 1u))) ++h;  // may carry into
  return h;  // the exponent, which is exactly the rounding IEEE wants
}

float HalfToFloat(uint16_t h) {
  uint32_t sign = static_cast<uint32_t>(h & 0x8000u) << 16;
  uint32_t exponent = (h >> 10) & 0x1Fu;
  uint32_t mantissa = h & 0x3FFu;
  uint32_t bits;
  if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);
  } else if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;
    } else {
      // Subnormal half: normalize into a float exponent.
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      bits = sign | static_cast<uint32_t>(127 - 15 - e) << 23 |
             ((mantissa & 0x3FFu) << 13);
    }
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  float out;
  std::memcpy(&out, &bits, sizeof(out));
  return out;
}

TensorEncoding ChooseEncoding(const Tensor& t, TensorEncoding requested) {
  if (requested == TensorEncoding::kF32) return TensorEncoding::kF32;
  if (t.dim() != 2 || t.numel() < 1024) return TensorEncoding::kF32;
  return requested;
}

EncodedTensor EncodeTensor(const Tensor& t, TensorEncoding requested) {
  EncodedTensor enc;
  enc.encoding = ChooseEncoding(t, requested);
  enc.shape = t.shape();
  int64_t n = t.numel();
  const float* src = t.data();
  switch (enc.encoding) {
    case TensorEncoding::kF32: {
      enc.bytes.resize(static_cast<size_t>(n) * 4);
      if (n > 0) std::memcpy(enc.bytes.data(), src, static_cast<size_t>(n) * 4);
      break;
    }
    case TensorEncoding::kF16: {
      enc.bytes.resize(static_cast<size_t>(n) * 2);
      uint16_t* dst = reinterpret_cast<uint16_t*>(enc.bytes.data());
      for (int64_t i = 0; i < n; ++i) dst[i] = FloatToHalf(src[i]);
      break;
    }
    case TensorEncoding::kI8: {
      AUTOAC_CHECK_GT(n, 0);  // ChooseEncoding keeps empty tensors f32
      float lo = src[0], hi = src[0];
      for (int64_t i = 1; i < n; ++i) {
        lo = std::min(lo, src[i]);
        hi = std::max(hi, src[i]);
      }
      float scale = (hi - lo) / 255.0f;
      if (!(scale > 0.0f) || !std::isfinite(scale)) scale = 1.0f;
      // Place -128 at lo so the full int8 range covers [lo, hi].
      int32_t zp = static_cast<int32_t>(
          std::lround(-128.0f - static_cast<double>(lo) / scale));
      zp = std::max(-128, std::min(127, zp));
      enc.scale = scale;
      enc.zero_point = zp;
      enc.bytes.resize(static_cast<size_t>(n));
      int8_t* dst = reinterpret_cast<int8_t*>(enc.bytes.data());
      for (int64_t i = 0; i < n; ++i) {
        long q = std::lroundf(src[i] / scale) + zp;
        dst[i] = static_cast<int8_t>(std::max(-128l, std::min(127l, q)));
      }
      break;
    }
  }
  return enc;
}

Tensor DecodeTensor(const EncodedTensor& enc) {
  int64_t n = enc.numel();
  AUTOAC_CHECK_EQ(static_cast<int64_t>(enc.bytes.size()),
                  n * EncodedTensor::BytesPerElement(enc.encoding))
      << "encoded tensor byte count disagrees with its shape";
  // An empty shape round-trips to the default tensor (e.g. a node type
  // without attributes), mirroring io::ReadTensor.
  if (enc.shape.empty()) return Tensor();
  Tensor out(enc.shape);
  float* dst = out.data();
  switch (enc.encoding) {
    case TensorEncoding::kF32: {
      if (n > 0) std::memcpy(dst, enc.bytes.data(), static_cast<size_t>(n) * 4);
      break;
    }
    case TensorEncoding::kF16: {
      const uint16_t* src = reinterpret_cast<const uint16_t*>(enc.bytes.data());
      for (int64_t i = 0; i < n; ++i) dst[i] = HalfToFloat(src[i]);
      break;
    }
    case TensorEncoding::kI8: {
      const int8_t* src = reinterpret_cast<const int8_t*>(enc.bytes.data());
      for (int64_t i = 0; i < n; ++i) {
        dst[i] = enc.scale * static_cast<float>(static_cast<int32_t>(src[i]) -
                                                enc.zero_point);
      }
      break;
    }
  }
  return out;
}

}  // namespace autoac
