#ifndef AUTOAC_TENSOR_TENSOR_H_
#define AUTOAC_TENSOR_TENSOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/check.h"

namespace autoac {

/// Process-wide count of heap float buffers acquired by Tensor (shape
/// construction, FromVector, copies that cannot reuse existing capacity).
/// Moves and in-place reshapes do not count. Tests and the serving benchmark
/// snapshot it around a compiled forward to prove the arena planner's
/// near-zero-allocation claim — the allocation analogue of
/// BackwardClosuresAllocated().
int64_t TensorBuffersAllocated();

/// Dense float32 tensor with row-major layout. The library only needs rank-1
/// and rank-2 tensors (vectors of per-node scalars and [rows x cols] feature
/// matrices), so the implementation favours simplicity: contiguous storage,
/// no views, copy/move both supported.
class Tensor {
 public:
  /// Empty tensor (numel() == 0, dim() == 0).
  Tensor() = default;

  // Copies count toward TensorBuffersAllocated() when they acquire a new
  // buffer; moves never do. Spelled out so every allocation site is visible.
  Tensor(const Tensor& other);
  Tensor& operator=(const Tensor& other);
  Tensor(Tensor&& other) noexcept = default;
  Tensor& operator=(Tensor&& other) noexcept = default;
  ~Tensor() = default;

  /// Zero-initialized tensor with the given shape. Every extent must be
  /// non-negative.
  explicit Tensor(std::vector<int64_t> shape);

  /// Convenience rank-2 constructor.
  Tensor(int64_t rows, int64_t cols)
      : Tensor(std::vector<int64_t>{rows, cols}) {}

  /// Builds a tensor by copying `values` (size must equal the shape product).
  static Tensor FromVector(std::vector<int64_t> shape,
                           std::vector<float> values);

  /// All-zeros / all-`value` tensors.
  static Tensor Zeros(std::vector<int64_t> shape);
  static Tensor Full(std::vector<int64_t> shape, float value);

  /// Scalar (rank-1, single element) tensor.
  static Tensor Scalar(float value);

  int64_t dim() const { return static_cast<int64_t>(shape_.size()); }
  const std::vector<int64_t>& shape() const { return shape_; }
  int64_t size(int64_t axis) const;
  int64_t numel() const { return static_cast<int64_t>(data_.size()); }

  /// Rank-2 accessors. rows()/cols() require dim() == 2.
  int64_t rows() const;
  int64_t cols() const;

  float* data() { return data_.data(); }
  const float* data() const { return data_.data(); }

  /// Element access. `at(i)` works for rank-1; `at(i, j)` for rank-2.
  /// Bounds are DCHECK'd (free in release builds).
  float& at(int64_t i) {
    AUTOAC_DCHECK(dim() == 1 && i >= 0 && i < numel());
    return data_[i];
  }
  float at(int64_t i) const {
    AUTOAC_DCHECK(dim() == 1 && i >= 0 && i < numel());
    return data_[i];
  }
  float& at(int64_t i, int64_t j) {
    AUTOAC_DCHECK(dim() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
                  j < shape_[1]);
    return data_[i * shape_[1] + j];
  }
  float at(int64_t i, int64_t j) const {
    AUTOAC_DCHECK(dim() == 2 && i >= 0 && i < shape_[0] && j >= 0 &&
                  j < shape_[1]);
    return data_[i * shape_[1] + j];
  }

  /// Sets every element to `value`.
  void Fill(float value);

  /// Returns a copy with a new shape of identical numel.
  Tensor Reshaped(std::vector<int64_t> new_shape) const;

  /// Rebinds this tensor's shape without reallocating. The new numel must
  /// fit in the buffer's existing capacity; contents beyond the old numel
  /// are unspecified. This is how arena slots take on the shape of each
  /// value they host — it never counts toward TensorBuffersAllocated().
  /// Takes a reference (not a value) so repeated reshapes in the compiled
  /// executor's steady state reuse shape_'s capacity: no heap traffic.
  void ReshapeInPlace(const std::vector<int64_t>& new_shape);

  /// Grows the underlying buffer capacity to at least `numel` floats (one
  /// allocation now so ReshapeInPlace never needs one later).
  void ReserveNumel(int64_t numel);

  /// True if shapes match exactly.
  bool SameShape(const Tensor& other) const { return shape_ == other.shape_; }

  /// Human-readable shape, e.g. "[128, 64]".
  std::string ShapeString() const;

 private:
  std::vector<int64_t> shape_;
  std::vector<float> data_;
};

}  // namespace autoac

#endif  // AUTOAC_TENSOR_TENSOR_H_
