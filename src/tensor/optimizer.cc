#include "tensor/optimizer.h"

#include <cmath>

namespace autoac {

Adam::Adam(std::vector<VarPtr> params, float lr, float weight_decay,
           float beta1, float beta2, float eps)
    : Optimizer(std::move(params)),
      lr_(lr),
      weight_decay_(weight_decay),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps) {}

void Adam::Step() {
  ++t_;
  float bias_correction1 = 1.0f - std::pow(beta1_, static_cast<float>(t_));
  float bias_correction2 = 1.0f - std::pow(beta2_, static_cast<float>(t_));
  for (const VarPtr& p : params_) {
    if (p->grad.numel() == 0) continue;  // Parameter unused this step.
    State& s = state_[p.get()];
    if (s.m.numel() == 0) {
      s.m = Tensor::Zeros(p->value.shape());
      s.v = Tensor::Zeros(p->value.shape());
    }
    int64_t n = p->value.numel();
    float* w = p->value.data();
    const float* g = p->grad.data();
    float* m = s.m.data();
    float* v = s.v.data();
    for (int64_t i = 0; i < n; ++i) {
      float grad = g[i] + weight_decay_ * w[i];
      m[i] = beta1_ * m[i] + (1.0f - beta1_) * grad;
      v[i] = beta2_ * v[i] + (1.0f - beta2_) * grad * grad;
      float m_hat = m[i] / bias_correction1;
      float v_hat = v[i] / bias_correction2;
      w[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
    }
  }
}

AdamState Adam::ExportState() const {
  AdamState snapshot;
  snapshot.t = t_;
  snapshot.m.reserve(params_.size());
  snapshot.v.reserve(params_.size());
  for (const VarPtr& p : params_) {
    auto it = state_.find(p.get());
    if (it == state_.end()) {
      snapshot.m.emplace_back();
      snapshot.v.emplace_back();
    } else {
      snapshot.m.push_back(it->second.m);
      snapshot.v.push_back(it->second.v);
    }
  }
  return snapshot;
}

void Adam::ImportState(const AdamState& state) {
  AUTOAC_CHECK_EQ(state.m.size(), params_.size());
  AUTOAC_CHECK_EQ(state.v.size(), params_.size());
  t_ = state.t;
  state_.clear();
  for (size_t i = 0; i < params_.size(); ++i) {
    if (state.m[i].numel() == 0) continue;
    AUTOAC_CHECK(state.m[i].SameShape(params_[i]->value));
    AUTOAC_CHECK(state.v[i].SameShape(params_[i]->value));
    State& s = state_[params_[i].get()];
    s.m = state.m[i];
    s.v = state.v[i];
  }
}

Sgd::Sgd(std::vector<VarPtr> params, float lr, float weight_decay)
    : Optimizer(std::move(params)), lr_(lr), weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (const VarPtr& p : params_) {
    if (p->grad.numel() == 0) continue;
    int64_t n = p->value.numel();
    float* w = p->value.data();
    const float* g = p->grad.data();
    for (int64_t i = 0; i < n; ++i) {
      w[i] -= lr_ * (g[i] + weight_decay_ * w[i]);
    }
  }
}

float ClipGradNorm(const std::vector<VarPtr>& params, float max_norm) {
  double total = 0.0;
  for (const VarPtr& p : params) {
    if (p->grad.numel() == 0) continue;
    const float* g = p->grad.data();
    for (int64_t i = 0; i < p->grad.numel(); ++i) {
      total += static_cast<double>(g[i]) * g[i];
    }
  }
  float norm = static_cast<float>(std::sqrt(total));
  if (norm > max_norm && norm > 0.0f) {
    float scale = max_norm / norm;
    for (const VarPtr& p : params) {
      if (p->grad.numel() == 0) continue;
      float* g = p->grad.data();
      for (int64_t i = 0; i < p->grad.numel(); ++i) g[i] *= scale;
    }
  }
  return norm;
}

}  // namespace autoac
