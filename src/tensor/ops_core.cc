#include <algorithm>
#include <cmath>

#include "tensor/op_helpers.h"
#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/profiler.h"

namespace autoac {

using internal::MakeOp;
using internal::NeedsGrad;

namespace internal {

// All three GEMMs are blocked over *output* rows: each ParallelFor chunk
// owns a disjoint span of output rows and accumulates contributions in the
// same order as the serial loop, so results are bitwise identical at every
// thread count.

void GemmNN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n) {
  ParallelFor(0, m, GrainForRows(k * n), [=](int64_t row_begin,
                                             int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      for (int64_t l = 0; l < k; ++l) {
        float av = arow[l];
        if (av == 0.0f) continue;
        const float* brow = b + l * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

void GemmNT(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n) {
  ParallelFor(0, m, GrainForRows(k * n), [=](int64_t row_begin,
                                             int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
        orow[j] += acc;
      }
    }
  });
}

void GemmTN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n) {
  // Output is [k, n]; the reduction runs over the m rows of a and b. Each
  // chunk restricts the inner column walk to its own output-row span
  // [i_begin, i_end), keeping the per-element accumulation order (ascending
  // l) identical to the serial sweep.
  ParallelFor(0, k, GrainForRows(m * n), [=](int64_t i_begin, int64_t i_end) {
    for (int64_t l = 0; l < m; ++l) {
      const float* arow = a + l * k;
      const float* brow = b + l * n;
      for (int64_t i = i_begin; i < i_end; ++i) {
        float av = arow[i];
        if (av == 0.0f) continue;
        float* orow = out + i * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

}  // namespace internal

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  AUTOAC_CHECK_EQ(a->value.dim(), 2);
  AUTOAC_CHECK_EQ(b->value.dim(), 2);
  int64_t m = a->value.rows();
  int64_t k = a->value.cols();
  int64_t n = b->value.cols();
  AUTOAC_CHECK_EQ(k, b->value.rows())
      << "MatMul shape mismatch " << a->value.ShapeString() << " x "
      << b->value.ShapeString();
  Tensor out(m, n);
  {
    AUTOAC_PROFILE_SCOPE("gemm.forward");
    internal::GemmNN(a->value.data(), b->value.data(), out.data(), m, k, n);
  }
  return MakeOp("MatMul", std::move(out), {a, b}, [m, k, n](Variable& self) {
    AUTOAC_PROFILE_SCOPE("gemm.backward");
    const VarPtr& a = self.parents[0];
    const VarPtr& b = self.parents[1];
    if (NeedsGrad(a)) {
      internal::GemmNT(self.grad.data(), b->value.data(),
                       a->EnsureGrad().data(), m, n, k);
    }
    if (NeedsGrad(b)) {
      internal::GemmTN(a->value.data(), self.grad.data(),
                       b->EnsureGrad().data(), m, k, n);
    }
  });
}

VarPtr Transpose(const VarPtr& a) {
  AUTOAC_CHECK_EQ(a->value.dim(), 2);
  int64_t m = a->value.rows();
  int64_t n = a->value.cols();
  Tensor out(n, m);
  {
    const float* pa = a->value.data();
    float* po = out.data();
    ParallelFor(0, n, GrainForRows(m), [=](int64_t lo, int64_t hi) {
      for (int64_t j = lo; j < hi; ++j) {
        for (int64_t i = 0; i < m; ++i) po[j * m + i] = pa[i * n + j];
      }
    });
  }
  return MakeOp("Transpose", std::move(out), {a}, [m, n](Variable& self) {
    const VarPtr& a = self.parents[0];
    if (!NeedsGrad(a)) return;
    float* ga = a->EnsureGrad().data();
    const float* g = self.grad.data();
    ParallelFor(0, m, GrainForRows(n), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        for (int64_t j = 0; j < n; ++j) ga[i * n + j] += g[j * m + i];
      }
    });
  });
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  AUTOAC_CHECK(a->value.SameShape(b->value))
      << "Add shape mismatch " << a->value.ShapeString() << " vs "
      << b->value.ShapeString();
  Tensor out(a->value.shape());
  int64_t n = out.numel();
  const float* pa = a->value.data();
  const float* pb = b->value.data();
  float* po = out.data();
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
  });
  return MakeOp("Add", std::move(out), {a, b}, [n](Variable& self) {
    for (int side = 0; side < 2; ++side) {
      const VarPtr& p = self.parents[side];
      if (!NeedsGrad(p)) continue;
      float* gp = p->EnsureGrad().data();
      const float* g = self.grad.data();
      ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gp[i] += g[i];
      });
    }
  });
}

VarPtr AddN(const std::vector<VarPtr>& xs) {
  AUTOAC_CHECK(!xs.empty());
  if (xs.size() == 1) return xs[0];
  Tensor out(xs[0]->value.shape());
  int64_t n = out.numel();
  float* po = out.data();
  for (const VarPtr& x : xs) AUTOAC_CHECK(x->value.SameShape(xs[0]->value));
  // Summed input-major within each span so the accumulation order per
  // element matches the serial sweep.
  ParallelFor(0, n, kElementwiseGrain, [&](int64_t lo, int64_t hi) {
    for (const VarPtr& x : xs) {
      const float* px = x->value.data();
      for (int64_t i = lo; i < hi; ++i) po[i] += px[i];
    }
  });
  return MakeOp("AddN", std::move(out), xs, [n](Variable& self) {
    const float* g = self.grad.data();
    for (const VarPtr& p : self.parents) {
      if (!NeedsGrad(p)) continue;
      float* gp = p->EnsureGrad().data();
      ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gp[i] += g[i];
      });
    }
  });
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  AUTOAC_CHECK(a->value.SameShape(b->value));
  Tensor out(a->value.shape());
  int64_t n = out.numel();
  const float* pa = a->value.data();
  const float* pb = b->value.data();
  float* po = out.data();
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] - pb[i];
  });
  return MakeOp("Sub", std::move(out), {a, b}, [n](Variable& self) {
    const float* g = self.grad.data();
    if (NeedsGrad(self.parents[0])) {
      float* ga = self.parents[0]->EnsureGrad().data();
      ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ga[i] += g[i];
      });
    }
    if (NeedsGrad(self.parents[1])) {
      float* gb = self.parents[1]->EnsureGrad().data();
      ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gb[i] -= g[i];
      });
    }
  });
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  AUTOAC_CHECK(a->value.SameShape(b->value));
  Tensor out(a->value.shape());
  int64_t n = out.numel();
  const float* pa = a->value.data();
  const float* pb = b->value.data();
  float* po = out.data();
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
  });
  return MakeOp("Mul", std::move(out), {a, b}, [n](Variable& self) {
    const float* g = self.grad.data();
    const float* pa = self.parents[0]->value.data();
    const float* pb = self.parents[1]->value.data();
    if (NeedsGrad(self.parents[0])) {
      float* ga = self.parents[0]->EnsureGrad().data();
      ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) ga[i] += g[i] * pb[i];
      });
    }
    if (NeedsGrad(self.parents[1])) {
      float* gb = self.parents[1]->EnsureGrad().data();
      ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gb[i] += g[i] * pa[i];
      });
    }
  });
}

VarPtr Scale(const VarPtr& x, float s) {
  Tensor out(x->value.shape());
  int64_t n = out.numel();
  const float* px = x->value.data();
  float* po = out.data();
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = px[i] * s;
  });
  return MakeOp("Scale", std::move(out), {x}, [n, s](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    float* gx = self.parents[0]->EnsureGrad().data();
    const float* g = self.grad.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) gx[i] += g[i] * s;
    });
  });
}

VarPtr AddScalar(const VarPtr& x, float s) {
  Tensor out(x->value.shape());
  int64_t n = out.numel();
  const float* px = x->value.data();
  float* po = out.data();
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = px[i] + s;
  });
  return MakeOp("AddScalar", std::move(out), {x}, [n](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    float* gx = self.parents[0]->EnsureGrad().data();
    const float* g = self.grad.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) gx[i] += g[i];
    });
  });
}

VarPtr ScaleByVar(const VarPtr& x, const VarPtr& s) {
  AUTOAC_CHECK_EQ(s->value.numel(), 1);
  float sv = s->value.data()[0];
  Tensor out(x->value.shape());
  int64_t n = out.numel();
  const float* px = x->value.data();
  float* po = out.data();
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = px[i] * sv;
  });
  return MakeOp("ScaleByVar", std::move(out), {x, s}, [n, sv](Variable& self) {
    const float* g = self.grad.data();
    const float* px = self.parents[0]->value.data();
    if (NeedsGrad(self.parents[0])) {
      float* gx = self.parents[0]->EnsureGrad().data();
      ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gx[i] += g[i] * sv;
      });
    }
    if (NeedsGrad(self.parents[1])) {
      double acc = ParallelReduce(
          0, n, kReduceGrain, [=](int64_t lo, int64_t hi) {
            double partial = 0.0;
            for (int64_t i = lo; i < hi; ++i) partial += g[i] * px[i];
            return partial;
          });
      self.parents[1]->EnsureGrad().data()[0] += static_cast<float>(acc);
    }
  });
}

VarPtr AddBias(const VarPtr& x, const VarPtr& bias) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  AUTOAC_CHECK_EQ(bias->value.dim(), 1);
  int64_t m = x->value.rows();
  int64_t n = x->value.cols();
  AUTOAC_CHECK_EQ(n, bias->value.numel());
  Tensor out(m, n);
  const float* px = x->value.data();
  const float* pb = bias->value.data();
  float* po = out.data();
  ParallelFor(0, m, GrainForRows(n), [=](int64_t row_begin, int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      for (int64_t j = 0; j < n; ++j) po[i * n + j] = px[i * n + j] + pb[j];
    }
  });
  return MakeOp("AddBias", std::move(out), {x, bias}, [m, n](Variable& self) {
    const float* g = self.grad.data();
    if (NeedsGrad(self.parents[0])) {
      float* gx = self.parents[0]->EnsureGrad().data();
      ParallelFor(0, m * n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
        for (int64_t i = lo; i < hi; ++i) gx[i] += g[i];
      });
    }
    if (NeedsGrad(self.parents[1])) {
      // Column-partitioned so each chunk owns a disjoint span of gb; the
      // per-column accumulation order (ascending i) matches the serial loop.
      float* gb = self.parents[1]->EnsureGrad().data();
      ParallelFor(0, n, GrainForRows(m), [=](int64_t col_begin,
                                             int64_t col_end) {
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = col_begin; j < col_end; ++j) gb[j] += g[i * n + j];
        }
      });
    }
  });
}

VarPtr Sqrt(const VarPtr& x) {
  Tensor out(x->value.shape());
  int64_t n = out.numel();
  const float* px = x->value.data();
  float* po = out.data();
  ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      AUTOAC_DCHECK(px[i] >= 0.0f);
      po[i] = std::sqrt(px[i]);
    }
  });
  return MakeOp("Sqrt", std::move(out), {x}, [n](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    float* gx = self.parents[0]->EnsureGrad().data();
    const float* g = self.grad.data();
    const float* po = self.value.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        // d sqrt(x) / dx = 1 / (2 sqrt(x)); clamp to keep the gradient
        // finite at x == 0.
        gx[i] += g[i] / (2.0f * std::max(po[i], 1e-6f));
      }
    });
  });
}

VarPtr ConcatRows(const std::vector<VarPtr>& xs) {
  AUTOAC_CHECK(!xs.empty());
  int64_t cols = xs[0]->value.cols();
  int64_t total_rows = 0;
  for (const VarPtr& x : xs) {
    AUTOAC_CHECK_EQ(x->value.dim(), 2);
    AUTOAC_CHECK_EQ(x->value.cols(), cols);
    total_rows += x->value.rows();
  }
  Tensor out(total_rows, cols);
  int64_t offset = 0;
  for (const VarPtr& x : xs) {
    int64_t r = x->value.rows();
    std::copy(x->value.data(), x->value.data() + r * cols,
              out.data() + offset * cols);
    offset += r;
  }
  return MakeOp("ConcatRows", std::move(out), xs, [cols](Variable& self) {
    int64_t offset = 0;
    for (const VarPtr& p : self.parents) {
      int64_t r = p->value.rows();
      if (NeedsGrad(p)) {
        float* gp = p->EnsureGrad().data();
        const float* g = self.grad.data() + offset * cols;
        for (int64_t i = 0; i < r * cols; ++i) gp[i] += g[i];
      }
      offset += r;
    }
  });
}

VarPtr ConcatCols(const std::vector<VarPtr>& xs) {
  AUTOAC_CHECK(!xs.empty());
  int64_t rows = xs[0]->value.rows();
  int64_t total_cols = 0;
  for (const VarPtr& x : xs) {
    AUTOAC_CHECK_EQ(x->value.dim(), 2);
    AUTOAC_CHECK_EQ(x->value.rows(), rows);
    total_cols += x->value.cols();
  }
  Tensor out(rows, total_cols);
  int64_t col_offset = 0;
  for (const VarPtr& x : xs) {
    int64_t c = x->value.cols();
    for (int64_t i = 0; i < rows; ++i) {
      std::copy(x->value.data() + i * c, x->value.data() + (i + 1) * c,
                out.data() + i * total_cols + col_offset);
    }
    col_offset += c;
  }
  return MakeOp(
      "ConcatCols", std::move(out), xs, [rows, total_cols](Variable& self) {
        int64_t col_offset = 0;
        for (const VarPtr& p : self.parents) {
          int64_t c = p->value.cols();
          if (NeedsGrad(p)) {
            Tensor& gp = p->EnsureGrad();
            for (int64_t i = 0; i < rows; ++i) {
              const float* g = self.grad.data() + i * total_cols + col_offset;
              float* gprow = gp.data() + i * c;
              for (int64_t j = 0; j < c; ++j) gprow[j] += g[j];
            }
          }
          col_offset += c;
        }
      });
}

VarPtr GatherRows(const VarPtr& x, std::vector<int64_t> rows) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  int64_t n = x->value.rows();
  int64_t c = x->value.cols();
  Tensor out(static_cast<int64_t>(rows.size()), c);
  int64_t m = static_cast<int64_t>(rows.size());
  const float* px = x->value.data();
  float* po = out.data();
  const int64_t* prows = rows.data();
  ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      AUTOAC_DCHECK(prows[i] >= 0 && prows[i] < n);
      std::copy(px + prows[i] * c, px + (prows[i] + 1) * c, po + i * c);
    }
  });
  return MakeOp("GatherRows", std::move(out), {x},
                [rows = std::move(rows), c](Variable& self) {
                  if (!NeedsGrad(self.parents[0])) return;
                  // Serial: `rows` may repeat, so the scatter-add is not
                  // row-partitionable without atomics.
                  Tensor& gx = self.parents[0]->EnsureGrad();
                  for (size_t i = 0; i < rows.size(); ++i) {
                    const float* g = self.grad.data() + i * c;
                    float* gp = gx.data() + rows[i] * c;
                    for (int64_t j = 0; j < c; ++j) gp[j] += g[j];
                  }
                });
}

VarPtr ScatterRows(const VarPtr& x, std::vector<int64_t> rows,
                   int64_t n_rows) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  AUTOAC_CHECK_EQ(x->value.rows(), static_cast<int64_t>(rows.size()));
  int64_t c = x->value.cols();
  Tensor out(n_rows, c);
  // Callers scatter to distinct target rows (missing-node ids, per-type
  // offsets), so the row-partitioned writes below never collide.
  int64_t m = static_cast<int64_t>(rows.size());
  const float* px = x->value.data();
  float* po = out.data();
  const int64_t* prows = rows.data();
  ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      AUTOAC_DCHECK(prows[i] >= 0 && prows[i] < n_rows);
      std::copy(px + i * c, px + (i + 1) * c, po + prows[i] * c);
    }
  });
  return MakeOp("ScatterRows", std::move(out), {x},
                [rows = std::move(rows), c](Variable& self) {
                  if (!NeedsGrad(self.parents[0])) return;
                  Tensor& gx = self.parents[0]->EnsureGrad();
                  const float* g = self.grad.data();
                  float* gp = gx.data();
                  const int64_t* prows = rows.data();
                  int64_t m = static_cast<int64_t>(rows.size());
                  ParallelFor(0, m, GrainForRows(c),
                              [=](int64_t lo, int64_t hi) {
                                for (int64_t i = lo; i < hi; ++i) {
                                  const float* grow = g + prows[i] * c;
                                  float* gprow = gp + i * c;
                                  for (int64_t j = 0; j < c; ++j) {
                                    gprow[j] += grow[j];
                                  }
                                }
                              });
                });
}

VarPtr SliceCol(const VarPtr& x, int64_t j) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  int64_t m = x->value.rows();
  int64_t n = x->value.cols();
  AUTOAC_CHECK(j >= 0 && j < n);
  Tensor out({m});
  for (int64_t i = 0; i < m; ++i) out.at(i) = x->value.at(i, j);
  return MakeOp("SliceCol", std::move(out), {x}, [m, n, j](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    Tensor& gx = self.parents[0]->EnsureGrad();
    for (int64_t i = 0; i < m; ++i) gx.data()[i * n + j] += self.grad.at(i);
  });
}

VarPtr SliceElement(const VarPtr& x, int64_t i) {
  AUTOAC_CHECK_EQ(x->value.dim(), 1);
  AUTOAC_CHECK(i >= 0 && i < x->value.numel());
  Tensor out = Tensor::Scalar(x->value.at(i));
  return MakeOp("SliceElement", std::move(out), {x}, [i](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    self.parents[0]->EnsureGrad().data()[i] += self.grad.data()[0];
  });
}

VarPtr Reshape(const VarPtr& x, std::vector<int64_t> shape) {
  Tensor out = x->value.Reshaped(std::move(shape));
  int64_t n = out.numel();
  return MakeOp("Reshape", std::move(out), {x}, [n](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    float* gx = self.parents[0]->EnsureGrad().data();
    const float* g = self.grad.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) gx[i] += g[i];
    });
  });
}

VarPtr ScaleRowsByGather(const VarPtr& x, const VarPtr& weights,
                         std::vector<int64_t> ids) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  AUTOAC_CHECK_EQ(weights->value.dim(), 1);
  int64_t m = x->value.rows();
  int64_t c = x->value.cols();
  int64_t n_weights = weights->value.numel();
  AUTOAC_CHECK_EQ(m, static_cast<int64_t>(ids.size()));
  Tensor out(m, c);
  {
    const float* pw = weights->value.data();
    const float* px = x->value.data();
    float* po = out.data();
    const int64_t* pids = ids.data();
    ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        AUTOAC_DCHECK(pids[i] >= 0 && pids[i] < n_weights);
        float w = pw[pids[i]];
        const float* xrow = px + i * c;
        float* orow = po + i * c;
        for (int64_t j = 0; j < c; ++j) orow[j] = w * xrow[j];
      }
    });
  }
  return MakeOp(
      "ScaleRowsByGather", std::move(out), {x, weights},
      [ids = std::move(ids), m, c](Variable& self) {
        const VarPtr& x = self.parents[0];
        const VarPtr& weights = self.parents[1];
        const float* g = self.grad.data();
        if (NeedsGrad(x)) {
          float* gx = x->EnsureGrad().data();
          const float* pw = weights->value.data();
          const int64_t* pids = ids.data();
          ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              float w = pw[pids[i]];
              for (int64_t j = 0; j < c; ++j) {
                gx[i * c + j] += w * g[i * c + j];
              }
            }
          });
        }
        if (NeedsGrad(weights)) {
          // Serial: `ids` repeat (many rows share a cluster weight), so the
          // scatter-add is not row-partitionable without atomics.
          float* gw = weights->EnsureGrad().data();
          const float* px = x->value.data();
          for (int64_t i = 0; i < m; ++i) {
            float acc = 0.0f;
            for (int64_t j = 0; j < c; ++j) {
              acc += px[i * c + j] * g[i * c + j];
            }
            gw[ids[i]] += acc;
          }
        }
      });
}

VarPtr SumAll(const VarPtr& x) {
  int64_t n = x->value.numel();
  const float* px = x->value.data();
  double acc = ParallelReduce(0, n, kReduceGrain, [=](int64_t lo, int64_t hi) {
    double partial = 0.0;
    for (int64_t i = lo; i < hi; ++i) partial += px[i];
    return partial;
  });
  Tensor out = Tensor::Scalar(static_cast<float>(acc));
  return MakeOp("SumAll", std::move(out), {x}, [n](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    float g = self.grad.data()[0];
    float* gx = self.parents[0]->EnsureGrad().data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) gx[i] += g;
    });
  });
}

VarPtr MeanAll(const VarPtr& x) {
  int64_t n = x->value.numel();
  AUTOAC_CHECK_GT(n, 0);
  const float* px = x->value.data();
  double acc = ParallelReduce(0, n, kReduceGrain, [=](int64_t lo, int64_t hi) {
    double partial = 0.0;
    for (int64_t i = lo; i < hi; ++i) partial += px[i];
    return partial;
  });
  Tensor out = Tensor::Scalar(static_cast<float>(acc / n));
  return MakeOp("MeanAll", std::move(out), {x}, [n](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    float g = self.grad.data()[0] / static_cast<float>(n);
    float* gx = self.parents[0]->EnsureGrad().data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) gx[i] += g;
    });
  });
}

VarPtr SumSquares(const VarPtr& x) {
  int64_t n = x->value.numel();
  const float* px = x->value.data();
  double acc = ParallelReduce(0, n, kReduceGrain, [=](int64_t lo, int64_t hi) {
    double partial = 0.0;
    for (int64_t i = lo; i < hi; ++i) {
      partial += static_cast<double>(px[i]) * px[i];
    }
    return partial;
  });
  Tensor out = Tensor::Scalar(static_cast<float>(acc));
  return MakeOp("SumSquares", std::move(out), {x}, [n](Variable& self) {
    if (!NeedsGrad(self.parents[0])) return;
    float g = self.grad.data()[0];
    const float* px = self.parents[0]->value.data();
    float* gx = self.parents[0]->EnsureGrad().data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) gx[i] += 2.0f * g * px[i];
    });
  });
}

}  // namespace autoac
