#include <algorithm>
#include <cmath>
#include <memory>

#include "tensor/op_helpers.h"
#include "tensor/ops.h"
#include "util/parallel.h"
#include "util/profiler.h"

// Every op here follows the same structure: build the output tensor, build
// a replay kernel (a closure that recomputes the output from the input
// tensors, capturing dims by value), execute that kernel eagerly, then hand
// the kernel to MakeOp so an active IrCapture can record it. Because eager
// execution and IR replay run the identical closure on the deterministic
// parallel runtime, compiled forwards are bitwise-identical to interpreted
// ones at every thread count.
//
// Kernel contract (see graph_ir.h): a kernel fully defines its output — it
// writes every element or explicitly zeroes before accumulating — because
// arena slots recycle buffers. Kernels flagged kCanAliasInput0 only ever
// read element i of ins[0] before writing element i of out.

namespace autoac {

using internal::MakeOp;
using internal::NeedsGrad;

namespace internal {

// All three GEMMs are blocked over *output* rows: each ParallelFor chunk
// owns a disjoint span of output rows and accumulates contributions in the
// same order as the serial loop, so results are bitwise identical at every
// thread count.

void GemmNN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n) {
  ParallelFor(0, m, GrainForRows(k * n), [=](int64_t row_begin,
                                             int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      for (int64_t l = 0; l < k; ++l) {
        float av = arow[l];
        if (av == 0.0f) continue;
        const float* brow = b + l * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

void GemmNT(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n) {
  ParallelFor(0, m, GrainForRows(k * n), [=](int64_t row_begin,
                                             int64_t row_end) {
    for (int64_t i = row_begin; i < row_end; ++i) {
      const float* arow = a + i * k;
      float* orow = out + i * n;
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * k;
        float acc = 0.0f;
        for (int64_t l = 0; l < k; ++l) acc += arow[l] * brow[l];
        orow[j] += acc;
      }
    }
  });
}

void GemmTN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n) {
  // Output is [k, n]; the reduction runs over the m rows of a and b. Each
  // chunk restricts the inner column walk to its own output-row span
  // [i_begin, i_end), keeping the per-element accumulation order (ascending
  // l) identical to the serial sweep.
  ParallelFor(0, k, GrainForRows(m * n), [=](int64_t i_begin, int64_t i_end) {
    for (int64_t l = 0; l < m; ++l) {
      const float* arow = a + l * k;
      const float* brow = b + l * n;
      for (int64_t i = i_begin; i < i_end; ++i) {
        float av = arow[i];
        if (av == 0.0f) continue;
        float* orow = out + i * n;
        for (int64_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
  });
}

}  // namespace internal

VarPtr MatMul(const VarPtr& a, const VarPtr& b) {
  AUTOAC_CHECK_EQ(a->value.dim(), 2);
  AUTOAC_CHECK_EQ(b->value.dim(), 2);
  int64_t m = a->value.rows();
  int64_t k = a->value.cols();
  int64_t n = b->value.cols();
  AUTOAC_CHECK_EQ(k, b->value.rows())
      << "MatMul shape mismatch " << a->value.ShapeString() << " x "
      << b->value.ShapeString();
  Tensor out(m, n);
  auto kernel = [m, k, n](const Tensor* const* ins, Tensor& out,
                          float* /*scratch*/) {
    AUTOAC_PROFILE_SCOPE("gemm.forward");
    out.Fill(0.0f);
    internal::GemmNN(ins[0]->data(), ins[1]->data(), out.data(), m, k, n);
  };
  {
    const Tensor* ins[] = {&a->value, &b->value};
    kernel(ins, out, nullptr);
  }
  return MakeOp(
      "MatMul", std::move(out), {a, b},
      [m, k, n](Variable& self) {
        AUTOAC_PROFILE_SCOPE("gemm.backward");
        const VarPtr& a = self.parents[0];
        const VarPtr& b = self.parents[1];
        if (NeedsGrad(a)) {
          internal::GemmNT(self.grad.data(), b->value.data(),
                           a->EnsureGrad().data(), m, n, k);
        }
        if (NeedsGrad(b)) {
          internal::GemmTN(a->value.data(), self.grad.data(),
                           b->EnsureGrad().data(), m, k, n);
        }
      },
      kernel);
}

VarPtr Transpose(const VarPtr& a) {
  AUTOAC_CHECK_EQ(a->value.dim(), 2);
  int64_t m = a->value.rows();
  int64_t n = a->value.cols();
  Tensor out(n, m);
  auto kernel = [m, n](const Tensor* const* ins, Tensor& out,
                       float* /*scratch*/) {
    const float* pa = ins[0]->data();
    float* po = out.data();
    ParallelFor(0, n, GrainForRows(m), [=](int64_t lo, int64_t hi) {
      for (int64_t j = lo; j < hi; ++j) {
        for (int64_t i = 0; i < m; ++i) po[j * m + i] = pa[i * n + j];
      }
    });
  };
  {
    const Tensor* ins[] = {&a->value};
    kernel(ins, out, nullptr);
  }
  return MakeOp(
      "Transpose", std::move(out), {a},
      [m, n](Variable& self) {
        const VarPtr& a = self.parents[0];
        if (!NeedsGrad(a)) return;
        float* ga = a->EnsureGrad().data();
        const float* g = self.grad.data();
        ParallelFor(0, m, GrainForRows(n), [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            for (int64_t j = 0; j < n; ++j) ga[i * n + j] += g[j * m + i];
          }
        });
      },
      kernel);
}

VarPtr Add(const VarPtr& a, const VarPtr& b) {
  AUTOAC_CHECK(a->value.SameShape(b->value))
      << "Add shape mismatch " << a->value.ShapeString() << " vs "
      << b->value.ShapeString();
  Tensor out(a->value.shape());
  int64_t n = out.numel();
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* pa = ins[0]->data();
    const float* pb = ins[1]->data();
    float* po = out.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
    });
  };
  {
    const Tensor* ins[] = {&a->value, &b->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  return MakeOp(
      "Add", std::move(out), {a, b},
      [n](Variable& self) {
        for (int side = 0; side < 2; ++side) {
          const VarPtr& p = self.parents[side];
          if (!NeedsGrad(p)) continue;
          float* gp = p->EnsureGrad().data();
          const float* g = self.grad.data();
          ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gp[i] += g[i];
          });
        }
      },
      kernel, std::move(extra));
}

VarPtr AddN(const std::vector<VarPtr>& xs) {
  AUTOAC_CHECK(!xs.empty());
  if (xs.size() == 1) return xs[0];
  Tensor out(xs[0]->value.shape());
  int64_t n = out.numel();
  for (const VarPtr& x : xs) AUTOAC_CHECK(x->value.SameShape(xs[0]->value));
  size_t count = xs.size();
  // Summed input-major within each span so the accumulation order per
  // element matches the serial sweep; each span zeroes itself first because
  // arena slots are not zero-initialized.
  auto kernel = [n, count](const Tensor* const* ins, Tensor& out,
                           float* /*scratch*/) {
    float* po = out.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      std::fill(po + lo, po + hi, 0.0f);
      for (size_t s = 0; s < count; ++s) {
        const float* px = ins[s]->data();
        for (int64_t i = lo; i < hi; ++i) po[i] += px[i];
      }
    });
  };
  {
    std::vector<const Tensor*> ins;
    ins.reserve(count);
    for (const VarPtr& x : xs) ins.push_back(&x->value);
    kernel(ins.data(), out, nullptr);
  }
  return MakeOp(
      "AddN", std::move(out), xs,
      [n](Variable& self) {
        const float* g = self.grad.data();
        for (const VarPtr& p : self.parents) {
          if (!NeedsGrad(p)) continue;
          float* gp = p->EnsureGrad().data();
          ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gp[i] += g[i];
          });
        }
      },
      kernel);
}

VarPtr Sub(const VarPtr& a, const VarPtr& b) {
  AUTOAC_CHECK(a->value.SameShape(b->value));
  Tensor out(a->value.shape());
  int64_t n = out.numel();
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* pa = ins[0]->data();
    const float* pb = ins[1]->data();
    float* po = out.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] - pb[i];
    });
  };
  {
    const Tensor* ins[] = {&a->value, &b->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  return MakeOp(
      "Sub", std::move(out), {a, b},
      [n](Variable& self) {
        const float* g = self.grad.data();
        if (NeedsGrad(self.parents[0])) {
          float* ga = self.parents[0]->EnsureGrad().data();
          ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) ga[i] += g[i];
          });
        }
        if (NeedsGrad(self.parents[1])) {
          float* gb = self.parents[1]->EnsureGrad().data();
          ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gb[i] -= g[i];
          });
        }
      },
      kernel, std::move(extra));
}

VarPtr Mul(const VarPtr& a, const VarPtr& b) {
  AUTOAC_CHECK(a->value.SameShape(b->value));
  Tensor out(a->value.shape());
  int64_t n = out.numel();
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* pa = ins[0]->data();
    const float* pb = ins[1]->data();
    float* po = out.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
    });
  };
  {
    const Tensor* ins[] = {&a->value, &b->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  return MakeOp(
      "Mul", std::move(out), {a, b},
      [n](Variable& self) {
        const float* g = self.grad.data();
        const float* pa = self.parents[0]->value.data();
        const float* pb = self.parents[1]->value.data();
        if (NeedsGrad(self.parents[0])) {
          float* ga = self.parents[0]->EnsureGrad().data();
          ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) ga[i] += g[i] * pb[i];
          });
        }
        if (NeedsGrad(self.parents[1])) {
          float* gb = self.parents[1]->EnsureGrad().data();
          ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gb[i] += g[i] * pa[i];
          });
        }
      },
      kernel, std::move(extra));
}

VarPtr Scale(const VarPtr& x, float s) {
  Tensor out(x->value.shape());
  int64_t n = out.numel();
  auto kernel = [n, s](const Tensor* const* ins, Tensor& out,
                       float* /*scratch*/) {
    const float* px = ins[0]->data();
    float* po = out.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = px[i] * s;
    });
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  extra.attrs.scalar = s;
  return MakeOp(
      "Scale", std::move(out), {x},
      [n, s](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        float* gx = self.parents[0]->EnsureGrad().data();
        const float* g = self.grad.data();
        ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) gx[i] += g[i] * s;
        });
      },
      kernel, std::move(extra));
}

VarPtr AddScalar(const VarPtr& x, float s) {
  Tensor out(x->value.shape());
  int64_t n = out.numel();
  auto kernel = [n, s](const Tensor* const* ins, Tensor& out,
                       float* /*scratch*/) {
    const float* px = ins[0]->data();
    float* po = out.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = px[i] + s;
    });
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  extra.attrs.scalar = s;
  return MakeOp(
      "AddScalar", std::move(out), {x},
      [n](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        float* gx = self.parents[0]->EnsureGrad().data();
        const float* g = self.grad.data();
        ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) gx[i] += g[i];
        });
      },
      kernel, std::move(extra));
}

VarPtr ScaleByVar(const VarPtr& x, const VarPtr& s) {
  AUTOAC_CHECK_EQ(s->value.numel(), 1);
  float sv = s->value.data()[0];
  Tensor out(x->value.shape());
  int64_t n = out.numel();
  // The kernel re-reads the scalar from ins[1] so a replay sees the value
  // the upstream node produced, not the one captured here.
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* px = ins[0]->data();
    float sv = ins[1]->data()[0];
    float* po = out.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = px[i] * sv;
    });
  };
  {
    const Tensor* ins[] = {&x->value, &s->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  return MakeOp(
      "ScaleByVar", std::move(out), {x, s},
      [n, sv](Variable& self) {
        const float* g = self.grad.data();
        const float* px = self.parents[0]->value.data();
        if (NeedsGrad(self.parents[0])) {
          float* gx = self.parents[0]->EnsureGrad().data();
          ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gx[i] += g[i] * sv;
          });
        }
        if (NeedsGrad(self.parents[1])) {
          double acc = ParallelReduce(
              0, n, kReduceGrain, [=](int64_t lo, int64_t hi) {
                double partial = 0.0;
                for (int64_t i = lo; i < hi; ++i) partial += g[i] * px[i];
                return partial;
              });
          self.parents[1]->EnsureGrad().data()[0] += static_cast<float>(acc);
        }
      },
      kernel, std::move(extra));
}

VarPtr AddBias(const VarPtr& x, const VarPtr& bias) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  AUTOAC_CHECK_EQ(bias->value.dim(), 1);
  int64_t m = x->value.rows();
  int64_t n = x->value.cols();
  AUTOAC_CHECK_EQ(n, bias->value.numel());
  Tensor out(m, n);
  auto kernel = [m, n](const Tensor* const* ins, Tensor& out,
                       float* /*scratch*/) {
    const float* px = ins[0]->data();
    const float* pb = ins[1]->data();
    float* po = out.data();
    ParallelFor(0, m, GrainForRows(n), [=](int64_t row_begin,
                                           int64_t row_end) {
      for (int64_t i = row_begin; i < row_end; ++i) {
        for (int64_t j = 0; j < n; ++j) po[i * n + j] = px[i * n + j] + pb[j];
      }
    });
  };
  {
    const Tensor* ins[] = {&x->value, &bias->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  return MakeOp(
      "AddBias", std::move(out), {x, bias},
      [m, n](Variable& self) {
        const float* g = self.grad.data();
        if (NeedsGrad(self.parents[0])) {
          float* gx = self.parents[0]->EnsureGrad().data();
          ParallelFor(0, m * n, kElementwiseGrain,
                      [=](int64_t lo, int64_t hi) {
                        for (int64_t i = lo; i < hi; ++i) gx[i] += g[i];
                      });
        }
        if (NeedsGrad(self.parents[1])) {
          // Column-partitioned so each chunk owns a disjoint span of gb; the
          // per-column accumulation order (ascending i) matches the serial
          // loop.
          float* gb = self.parents[1]->EnsureGrad().data();
          ParallelFor(0, n, GrainForRows(m), [=](int64_t col_begin,
                                                 int64_t col_end) {
            for (int64_t i = 0; i < m; ++i) {
              for (int64_t j = col_begin; j < col_end; ++j) {
                gb[j] += g[i * n + j];
              }
            }
          });
        }
      },
      kernel, std::move(extra));
}

VarPtr Sqrt(const VarPtr& x) {
  Tensor out(x->value.shape());
  int64_t n = out.numel();
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* px = ins[0]->data();
    float* po = out.data();
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        AUTOAC_DCHECK(px[i] >= 0.0f);
        po[i] = std::sqrt(px[i]);
      }
    });
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  return MakeOp(
      "Sqrt", std::move(out), {x},
      [n](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        float* gx = self.parents[0]->EnsureGrad().data();
        const float* g = self.grad.data();
        const float* po = self.value.data();
        ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            // d sqrt(x) / dx = 1 / (2 sqrt(x)); clamp to keep the gradient
            // finite at x == 0.
            gx[i] += g[i] / (2.0f * std::max(po[i], 1e-6f));
          }
        });
      },
      kernel, std::move(extra));
}

VarPtr ConcatRows(const std::vector<VarPtr>& xs) {
  AUTOAC_CHECK(!xs.empty());
  int64_t cols = xs[0]->value.cols();
  int64_t total_rows = 0;
  std::vector<int64_t> row_counts;
  row_counts.reserve(xs.size());
  for (const VarPtr& x : xs) {
    AUTOAC_CHECK_EQ(x->value.dim(), 2);
    AUTOAC_CHECK_EQ(x->value.cols(), cols);
    row_counts.push_back(x->value.rows());
    total_rows += x->value.rows();
  }
  Tensor out(total_rows, cols);
  auto kernel = [cols, row_counts](const Tensor* const* ins, Tensor& out,
                                   float* /*scratch*/) {
    int64_t offset = 0;
    for (size_t s = 0; s < row_counts.size(); ++s) {
      const float* px = ins[s]->data();
      std::copy(px, px + row_counts[s] * cols, out.data() + offset * cols);
      offset += row_counts[s];
    }
  };
  {
    std::vector<const Tensor*> ins;
    ins.reserve(xs.size());
    for (const VarPtr& x : xs) ins.push_back(&x->value);
    kernel(ins.data(), out, nullptr);
  }
  return MakeOp(
      "ConcatRows", std::move(out), xs,
      [cols](Variable& self) {
        int64_t offset = 0;
        for (const VarPtr& p : self.parents) {
          int64_t r = p->value.rows();
          if (NeedsGrad(p)) {
            float* gp = p->EnsureGrad().data();
            const float* g = self.grad.data() + offset * cols;
            for (int64_t i = 0; i < r * cols; ++i) gp[i] += g[i];
          }
          offset += r;
        }
      },
      kernel);
}

VarPtr ConcatCols(const std::vector<VarPtr>& xs) {
  AUTOAC_CHECK(!xs.empty());
  int64_t rows = xs[0]->value.rows();
  int64_t total_cols = 0;
  std::vector<int64_t> col_counts;
  col_counts.reserve(xs.size());
  for (const VarPtr& x : xs) {
    AUTOAC_CHECK_EQ(x->value.dim(), 2);
    AUTOAC_CHECK_EQ(x->value.rows(), rows);
    col_counts.push_back(x->value.cols());
    total_cols += x->value.cols();
  }
  Tensor out(rows, total_cols);
  auto kernel = [rows, total_cols, col_counts](const Tensor* const* ins,
                                               Tensor& out,
                                               float* /*scratch*/) {
    int64_t col_offset = 0;
    for (size_t s = 0; s < col_counts.size(); ++s) {
      int64_t c = col_counts[s];
      const float* px = ins[s]->data();
      for (int64_t i = 0; i < rows; ++i) {
        std::copy(px + i * c, px + (i + 1) * c,
                  out.data() + i * total_cols + col_offset);
      }
      col_offset += c;
    }
  };
  {
    std::vector<const Tensor*> ins;
    ins.reserve(xs.size());
    for (const VarPtr& x : xs) ins.push_back(&x->value);
    kernel(ins.data(), out, nullptr);
  }
  return MakeOp(
      "ConcatCols", std::move(out), xs,
      [rows, total_cols](Variable& self) {
        int64_t col_offset = 0;
        for (const VarPtr& p : self.parents) {
          int64_t c = p->value.cols();
          if (NeedsGrad(p)) {
            Tensor& gp = p->EnsureGrad();
            for (int64_t i = 0; i < rows; ++i) {
              const float* g = self.grad.data() + i * total_cols + col_offset;
              float* gprow = gp.data() + i * c;
              for (int64_t j = 0; j < c; ++j) gprow[j] += g[j];
            }
          }
          col_offset += c;
        }
      },
      kernel);
}

VarPtr GatherRows(const VarPtr& x, std::vector<int64_t> rows) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  int64_t n = x->value.rows();
  int64_t c = x->value.cols();
  int64_t m = static_cast<int64_t>(rows.size());
  auto ids = std::make_shared<const std::vector<int64_t>>(std::move(rows));
  Tensor out(m, c);
  auto kernel = [ids, m, n, c](const Tensor* const* ins, Tensor& out,
                               float* /*scratch*/) {
    const float* px = ins[0]->data();
    float* po = out.data();
    const int64_t* prows = ids->data();
    ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        AUTOAC_DCHECK(prows[i] >= 0 && prows[i] < n);
        std::copy(px + prows[i] * c, px + (prows[i] + 1) * c, po + i * c);
      }
    });
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.attrs.ids = ids;
  return MakeOp(
      "GatherRows", std::move(out), {x},
      [ids, c](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        // Serial: `rows` may repeat, so the scatter-add is not
        // row-partitionable without atomics.
        Tensor& gx = self.parents[0]->EnsureGrad();
        const std::vector<int64_t>& rows = *ids;
        for (size_t i = 0; i < rows.size(); ++i) {
          const float* g = self.grad.data() + i * c;
          float* gp = gx.data() + rows[i] * c;
          for (int64_t j = 0; j < c; ++j) gp[j] += g[j];
        }
      },
      kernel, std::move(extra));
}

VarPtr GatherRowsDynamic(const VarPtr& x, const VarPtr& ids) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  AUTOAC_CHECK_EQ(ids->value.dim(), 1);
  int64_t n = x->value.rows();
  int64_t c = x->value.cols();
  int64_t m = ids->value.numel();
  Tensor out(m, c);
  // The index tensor is read at execution time, so a compiled graph can
  // rebind it per run; values must be exact integer floats in [0, n).
  auto kernel = [m, n, c](const Tensor* const* ins, Tensor& out,
                          float* /*scratch*/) {
    const float* px = ins[0]->data();
    const float* pids = ins[1]->data();
    float* po = out.data();
    ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        int64_t r = static_cast<int64_t>(pids[i]);
        AUTOAC_DCHECK(r >= 0 && r < n);
        std::copy(px + r * c, px + (r + 1) * c, po + i * c);
      }
    });
  };
  {
    const Tensor* ins[] = {&x->value, &ids->value};
    kernel(ins, out, nullptr);
  }
  return MakeOp(
      "GatherRowsDynamic", std::move(out), {x, ids},
      [c](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        // Serial: runtime ids may repeat, so the scatter-add is not
        // row-partitionable without atomics.
        Tensor& gx = self.parents[0]->EnsureGrad();
        const float* pids = self.parents[1]->value.data();
        int64_t m = self.parents[1]->value.numel();
        for (int64_t i = 0; i < m; ++i) {
          const float* g = self.grad.data() + i * c;
          float* gp = gx.data() + static_cast<int64_t>(pids[i]) * c;
          for (int64_t j = 0; j < c; ++j) gp[j] += g[j];
        }
      },
      kernel);
}

VarPtr Dequantize(std::shared_ptr<const EncodedTensor> enc) {
  AUTOAC_CHECK(enc != nullptr);
  Tensor value = DecodeTensor(*enc);
  // Zero-input node: the kernel regenerates the decoded tensor from the
  // captured payload. Constant folding skips input-less nodes, so the
  // dedicated dequantize-on-load pass is what folds this away before
  // execution (passes.cc).
  auto kernel = [enc](const Tensor* const* /*ins*/, Tensor& out,
                      float* /*scratch*/) {
    Tensor decoded = DecodeTensor(*enc);
    std::copy(decoded.data(), decoded.data() + decoded.numel(), out.data());
  };
  internal::OpExtra extra;
  extra.attrs.handle = enc;  // keeps the payload reachable from the IR node
  return MakeOp(
      "Dequantize", std::move(value), {},
      [](Variable& /*self*/) {
        AUTOAC_CHECK(false) << "Dequantize has no gradient";
      },
      kernel, std::move(extra));
}

VarPtr ScatterRows(const VarPtr& x, std::vector<int64_t> rows,
                   int64_t n_rows) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  AUTOAC_CHECK_EQ(x->value.rows(), static_cast<int64_t>(rows.size()));
  int64_t c = x->value.cols();
  int64_t m = static_cast<int64_t>(rows.size());
  auto ids = std::make_shared<const std::vector<int64_t>>(std::move(rows));
  Tensor out(n_rows, c);
  // Callers scatter to distinct target rows (missing-node ids, per-type
  // offsets), so the row-partitioned writes below never collide. The
  // non-scattered rows are zero: the kernel zeroes the whole buffer first
  // because an arena slot is not zero-initialized.
  auto kernel = [ids, m, c, n_rows](const Tensor* const* ins, Tensor& out,
                                    float* /*scratch*/) {
    const float* px = ins[0]->data();
    float* po = out.data();
    const int64_t* prows = ids->data();
    out.Fill(0.0f);
    ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        AUTOAC_DCHECK(prows[i] >= 0 && prows[i] < n_rows);
        std::copy(px + i * c, px + (i + 1) * c, po + prows[i] * c);
      }
    });
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.attrs.ids = ids;
  return MakeOp(
      "ScatterRows", std::move(out), {x},
      [ids, c](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        Tensor& gx = self.parents[0]->EnsureGrad();
        const float* g = self.grad.data();
        float* gp = gx.data();
        const int64_t* prows = ids->data();
        int64_t m = static_cast<int64_t>(ids->size());
        ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            const float* grow = g + prows[i] * c;
            float* gprow = gp + i * c;
            for (int64_t j = 0; j < c; ++j) gprow[j] += grow[j];
          }
        });
      },
      kernel, std::move(extra));
}

VarPtr SliceCol(const VarPtr& x, int64_t j) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  int64_t m = x->value.rows();
  int64_t n = x->value.cols();
  AUTOAC_CHECK(j >= 0 && j < n);
  Tensor out({m});
  auto kernel = [m, n, j](const Tensor* const* ins, Tensor& out,
                          float* /*scratch*/) {
    const float* px = ins[0]->data();
    float* po = out.data();
    for (int64_t i = 0; i < m; ++i) po[i] = px[i * n + j];
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  return MakeOp(
      "SliceCol", std::move(out), {x},
      [m, n, j](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        Tensor& gx = self.parents[0]->EnsureGrad();
        for (int64_t i = 0; i < m; ++i) {
          gx.data()[i * n + j] += self.grad.at(i);
        }
      },
      kernel);
}

VarPtr SliceElement(const VarPtr& x, int64_t i) {
  AUTOAC_CHECK_EQ(x->value.dim(), 1);
  AUTOAC_CHECK(i >= 0 && i < x->value.numel());
  Tensor out({1});
  auto kernel = [i](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    out.data()[0] = ins[0]->data()[i];
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  return MakeOp(
      "SliceElement", std::move(out), {x},
      [i](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        self.parents[0]->EnsureGrad().data()[i] += self.grad.data()[0];
      },
      kernel);
}

VarPtr Reshape(const VarPtr& x, std::vector<int64_t> shape) {
  Tensor out(std::move(shape));
  int64_t n = out.numel();
  AUTOAC_CHECK_EQ(n, x->value.numel());
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* px = ins[0]->data();
    float* po = out.data();
    // po may alias px (same-index copy is a no-op then).
    ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) po[i] = px[i];
    });
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  return MakeOp(
      "Reshape", std::move(out), {x},
      [n](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        float* gx = self.parents[0]->EnsureGrad().data();
        const float* g = self.grad.data();
        ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) gx[i] += g[i];
        });
      },
      kernel, std::move(extra));
}

VarPtr ScaleRowsByGather(const VarPtr& x, const VarPtr& weights,
                         std::vector<int64_t> ids_in) {
  AUTOAC_CHECK_EQ(x->value.dim(), 2);
  AUTOAC_CHECK_EQ(weights->value.dim(), 1);
  int64_t m = x->value.rows();
  int64_t c = x->value.cols();
  int64_t n_weights = weights->value.numel();
  AUTOAC_CHECK_EQ(m, static_cast<int64_t>(ids_in.size()));
  auto ids = std::make_shared<const std::vector<int64_t>>(std::move(ids_in));
  Tensor out(m, c);
  auto kernel = [ids, m, c, n_weights](const Tensor* const* ins, Tensor& out,
                                       float* /*scratch*/) {
    const float* px = ins[0]->data();
    const float* pw = ins[1]->data();
    float* po = out.data();
    const int64_t* pids = ids->data();
    ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
      for (int64_t i = lo; i < hi; ++i) {
        AUTOAC_DCHECK(pids[i] >= 0 && pids[i] < n_weights);
        float w = pw[pids[i]];
        const float* xrow = px + i * c;
        float* orow = po + i * c;
        for (int64_t j = 0; j < c; ++j) orow[j] = w * xrow[j];
      }
    });
  };
  {
    const Tensor* ins[] = {&x->value, &weights->value};
    kernel(ins, out, nullptr);
  }
  internal::OpExtra extra;
  extra.flags = ir::kCanAliasInput0;
  extra.attrs.ids = ids;
  return MakeOp(
      "ScaleRowsByGather", std::move(out), {x, weights},
      [ids, m, c](Variable& self) {
        const VarPtr& x = self.parents[0];
        const VarPtr& weights = self.parents[1];
        const float* g = self.grad.data();
        if (NeedsGrad(x)) {
          float* gx = x->EnsureGrad().data();
          const float* pw = weights->value.data();
          const int64_t* pids = ids->data();
          ParallelFor(0, m, GrainForRows(c), [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) {
              float w = pw[pids[i]];
              for (int64_t j = 0; j < c; ++j) {
                gx[i * c + j] += w * g[i * c + j];
              }
            }
          });
        }
        if (NeedsGrad(weights)) {
          // Serial: `ids` repeat (many rows share a cluster weight), so the
          // scatter-add is not row-partitionable without atomics.
          float* gw = weights->EnsureGrad().data();
          const float* px = x->value.data();
          const std::vector<int64_t>& idv = *ids;
          for (int64_t i = 0; i < m; ++i) {
            float acc = 0.0f;
            for (int64_t j = 0; j < c; ++j) {
              acc += px[i * c + j] * g[i * c + j];
            }
            gw[idv[i]] += acc;
          }
        }
      },
      kernel, std::move(extra));
}

VarPtr SumAll(const VarPtr& x) {
  int64_t n = x->value.numel();
  Tensor out({1});
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* px = ins[0]->data();
    double acc =
        ParallelReduce(0, n, kReduceGrain, [=](int64_t lo, int64_t hi) {
          double partial = 0.0;
          for (int64_t i = lo; i < hi; ++i) partial += px[i];
          return partial;
        });
    out.data()[0] = static_cast<float>(acc);
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  return MakeOp(
      "SumAll", std::move(out), {x},
      [n](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        float g = self.grad.data()[0];
        float* gx = self.parents[0]->EnsureGrad().data();
        ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) gx[i] += g;
        });
      },
      kernel);
}

VarPtr MeanAll(const VarPtr& x) {
  int64_t n = x->value.numel();
  AUTOAC_CHECK_GT(n, 0);
  Tensor out({1});
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* px = ins[0]->data();
    double acc =
        ParallelReduce(0, n, kReduceGrain, [=](int64_t lo, int64_t hi) {
          double partial = 0.0;
          for (int64_t i = lo; i < hi; ++i) partial += px[i];
          return partial;
        });
    out.data()[0] = static_cast<float>(acc / n);
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  return MakeOp(
      "MeanAll", std::move(out), {x},
      [n](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        float g = self.grad.data()[0] / static_cast<float>(n);
        float* gx = self.parents[0]->EnsureGrad().data();
        ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) gx[i] += g;
        });
      },
      kernel);
}

VarPtr SumSquares(const VarPtr& x) {
  int64_t n = x->value.numel();
  Tensor out({1});
  auto kernel = [n](const Tensor* const* ins, Tensor& out,
                    float* /*scratch*/) {
    const float* px = ins[0]->data();
    double acc =
        ParallelReduce(0, n, kReduceGrain, [=](int64_t lo, int64_t hi) {
          double partial = 0.0;
          for (int64_t i = lo; i < hi; ++i) {
            partial += static_cast<double>(px[i]) * px[i];
          }
          return partial;
        });
    out.data()[0] = static_cast<float>(acc);
  };
  {
    const Tensor* ins[] = {&x->value};
    kernel(ins, out, nullptr);
  }
  return MakeOp(
      "SumSquares", std::move(out), {x},
      [n](Variable& self) {
        if (!NeedsGrad(self.parents[0])) return;
        float g = self.grad.data()[0];
        const float* px = self.parents[0]->value.data();
        float* gx = self.parents[0]->EnsureGrad().data();
        ParallelFor(0, n, kElementwiseGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) gx[i] += 2.0f * g * px[i];
        });
      },
      kernel);
}

}  // namespace autoac
