#ifndef AUTOAC_TENSOR_OP_HELPERS_H_
#define AUTOAC_TENSOR_OP_HELPERS_H_

#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "tensor/variable.h"

// Internal helpers shared by the op implementation files. Not part of the
// public API.

namespace autoac::internal {

/// Builds an interior tape node: requires_grad is inherited from the
/// parents, and the backward closure is attached only when a gradient can
/// actually flow. Under a NoGradGuard the node is a plain value instead:
/// no parents (the upstream graph can be freed eagerly), no closure, and
/// requires_grad forced off — the tape-free inference path.
inline VarPtr MakeOp(std::string name, Tensor value,
                     std::vector<VarPtr> parents,
                     std::function<void(Variable&)> backward) {
  const bool grad_mode = GradModeEnabled();
  bool requires_grad = false;
  for (const VarPtr& p : parents) {
    AUTOAC_CHECK(p != nullptr) << "null input to op" << name;
    requires_grad = requires_grad || (grad_mode && p->requires_grad);
  }
  auto node = std::make_shared<Variable>(std::move(value), requires_grad);
  node->op_name = std::move(name);
  if (grad_mode) node->parents = std::move(parents);
  if (requires_grad) {
    node->backward_fn = std::move(backward);
    NoteBackwardClosure();
  }
  return node;
}

/// True if gradient should be accumulated into this parent.
inline bool NeedsGrad(const VarPtr& p) { return p->requires_grad; }

// Raw GEMM kernels on row-major buffers. No aliasing between out and inputs.
// out is accumulated into (callers zero it first when needed).

/// out[m,n] += a[m,k] @ b[k,n]
void GemmNN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n);

/// out[m,n] += a[m,k] @ b[n,k]^T
void GemmNT(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n);

/// out[k,n] += a[m,k]^T @ b[m,n]
void GemmTN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n);

}  // namespace autoac::internal

#endif  // AUTOAC_TENSOR_OP_HELPERS_H_
