#ifndef AUTOAC_TENSOR_OP_HELPERS_H_
#define AUTOAC_TENSOR_OP_HELPERS_H_

#include <cmath>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "tensor/graph_ir.h"
#include "tensor/variable.h"

// Internal helpers shared by the op implementation files. Not part of the
// public API.

namespace autoac::internal {

/// Builds an interior tape node: requires_grad is inherited from the
/// parents, and the backward closure is attached only when a gradient can
/// actually flow. Under a NoGradGuard the node is a plain value instead:
/// no parents (the upstream graph can be freed eagerly), no closure, and
/// requires_grad forced off — the tape-free inference path.
inline VarPtr MakeOpNode(std::string name, Tensor value,
                         std::vector<VarPtr> parents,
                         std::function<void(Variable&)> backward) {
  const bool grad_mode = GradModeEnabled();
  bool requires_grad = false;
  for (const VarPtr& p : parents) {
    AUTOAC_CHECK(p != nullptr) << "null input to op" << name;
    requires_grad = requires_grad || (grad_mode && p->requires_grad);
  }
  auto node = std::make_shared<Variable>(std::move(value), requires_grad);
  node->op_name = std::move(name);
  if (grad_mode) node->parents = std::move(parents);
  if (requires_grad) {
    node->backward_fn = std::move(backward);
    NoteBackwardClosure();
  }
  return node;
}

/// IR metadata an op hands to MakeOp alongside its replay kernel.
struct OpExtra {
  ir::Attrs attrs;
  uint32_t flags = ir::kNoFlags;
  int64_t scratch_numel = 0;
};

/// Tape node for an op with no replay kernel (losses, training-mode
/// dropout). Under an active IrCapture the op is recorded as opaque, which
/// makes the capture fall back to the interpreted forward.
inline VarPtr MakeOp(std::string name, Tensor value,
                     std::vector<VarPtr> parents,
                     std::function<void(Variable&)> backward) {
  if (!IrCaptureActive()) {
    return MakeOpNode(std::move(name), std::move(value), std::move(parents),
                      std::move(backward));
  }
  VarPtr node =
      MakeOpNode(std::move(name), std::move(value), parents,
                 std::move(backward));
  IrRecordOpaque(node, parents);
  return node;
}

/// Tape node for an op with a replay kernel. The kernel is the same closure
/// the op just executed eagerly, so replay is bitwise-identical by
/// construction. The ir::Kernel (type-erased std::function) is only
/// materialized under an active capture — the training path pays one
/// thread-local load.
template <typename KernelFn>
inline VarPtr MakeOp(std::string name, Tensor value,
                     std::vector<VarPtr> parents,
                     std::function<void(Variable&)> backward, KernelFn&& kernel,
                     OpExtra extra = {}) {
  if (!IrCaptureActive()) {
    return MakeOpNode(std::move(name), std::move(value), std::move(parents),
                      std::move(backward));
  }
  VarPtr node =
      MakeOpNode(std::move(name), std::move(value), parents,
                 std::move(backward));
  IrRecordOp(node, parents, ir::Kernel(std::forward<KernelFn>(kernel)),
             std::move(extra.attrs), extra.flags, extra.scratch_numel);
  return node;
}

/// True if gradient should be accumulated into this parent.
inline bool NeedsGrad(const VarPtr& p) { return p->requires_grad; }

// Raw GEMM kernels on row-major buffers. No aliasing between out and inputs.
// out is accumulated into (callers zero it first when needed).

/// out[m,n] += a[m,k] @ b[k,n]
void GemmNN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n);

/// out[m,n] += a[m,k] @ b[n,k]^T
void GemmNT(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n);

/// out[k,n] += a[m,k]^T @ b[m,n]
void GemmTN(const float* a, const float* b, float* out, int64_t m, int64_t k,
            int64_t n);

/// Activation fused into the compiler's fused kernels. Formulas match the
/// standalone Relu/Elu ops exactly (bitwise).
enum class Act { kNone, kRelu, kElu };

/// Applies a fused activation; formulas copied verbatim from Relu/Elu.
inline float ApplyAct(Act act, float v) {
  switch (act) {
    case Act::kRelu:
      return v > 0.0f ? v : 0.0f;
    case Act::kElu:
      return v > 0.0f ? v : std::expm1(v);
    case Act::kNone:
      break;
  }
  return v;
}

/// Fused `[GatherRows +] MatMul [+ AddBias] [+ act]` replay kernel
/// (implemented in ops_nn.cc). Inputs: x [m,k] (or the gather source when
/// `ids` is set, with m = ids->size()), w [k,n], then bias [n] when
/// has_bias. Bias is added after a row's GEMM accumulation completes and the
/// activation applied last, so every float op matches the unfused chain.
ir::Kernel MakeFusedLinearKernel(
    std::shared_ptr<const std::vector<int64_t>> ids, bool has_bias, Act act,
    int64_t m, int64_t k, int64_t n);

}  // namespace autoac::internal

#endif  // AUTOAC_TENSOR_OP_HELPERS_H_
