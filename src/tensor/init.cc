#include "tensor/init.h"

#include <cmath>

namespace autoac {

Tensor XavierUniform(int64_t fan_in, int64_t fan_out, Rng& rng) {
  float a = std::sqrt(6.0f / static_cast<float>(fan_in + fan_out));
  return RandomUniform({fan_in, fan_out}, -a, a, rng);
}

Tensor HeNormal(int64_t fan_in, int64_t fan_out, Rng& rng) {
  float stddev = std::sqrt(2.0f / static_cast<float>(fan_in));
  return RandomNormal({fan_in, fan_out}, stddev, rng);
}

Tensor RandomNormal(std::vector<int64_t> shape, float stddev, Rng& rng) {
  Tensor t(std::move(shape));
  float* data = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    data[i] = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return t;
}

Tensor RandomUniform(std::vector<int64_t> shape, float lo, float hi,
                     Rng& rng) {
  Tensor t(std::move(shape));
  float* data = t.data();
  for (int64_t i = 0; i < t.numel(); ++i) {
    data[i] = static_cast<float>(rng.Uniform(lo, hi));
  }
  return t;
}

}  // namespace autoac
