#ifndef AUTOAC_TENSOR_OPTIMIZER_H_
#define AUTOAC_TENSOR_OPTIMIZER_H_

#include <unordered_map>
#include <vector>

#include "tensor/variable.h"

namespace autoac {

/// First-order optimizer interface over a fixed set of leaf parameters.
/// The training loops call ZeroGrad() -> forward/Backward() -> Step().
class Optimizer {
 public:
  explicit Optimizer(std::vector<VarPtr> params) : params_(std::move(params)) {}
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update using the gradients currently stored in the params.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad() { ZeroGrads(params_); }

  const std::vector<VarPtr>& params() const { return params_; }

 protected:
  std::vector<VarPtr> params_;
};

/// Snapshot of an Adam instance's mutable state, aligned with the
/// optimizer's params() order. `m`/`v` entries are empty tensors for
/// parameters that have not received a gradient yet. The checkpoint layer
/// persists this so a resumed run applies bitwise-identical updates.
struct AdamState {
  int64_t t = 0;
  std::vector<Tensor> m;
  std::vector<Tensor> v;
};

/// Adam (Kingma & Ba, 2014) with L2 weight decay folded into the gradient,
/// matching the paper's optimizer for both the GNN weights w and the
/// completion parameters alpha.
class Adam : public Optimizer {
 public:
  Adam(std::vector<VarPtr> params, float lr, float weight_decay = 0.0f,
       float beta1 = 0.9f, float beta2 = 0.999f, float eps = 1e-8f);

  void Step() override;

  /// Learning-rate accessors (Fig. 10 sweeps it between runs).
  void set_lr(float lr) { lr_ = lr; }
  float lr() const { return lr_; }

  /// Copies out {t, m, v} in params() order (for checkpointing).
  AdamState ExportState() const;

  /// Restores a state captured by ExportState on an optimizer over the same
  /// parameter list (sizes are CHECKed). Continuing training after
  /// ImportState is bitwise-identical to never having snapshotted.
  void ImportState(const AdamState& state);

 private:
  struct State {
    Tensor m;
    Tensor v;
  };
  float lr_;
  float weight_decay_;
  float beta1_;
  float beta2_;
  float eps_;
  int64_t t_ = 0;
  std::unordered_map<Variable*, State> state_;
};

/// Plain SGD with optional L2 weight decay; used by the skip-gram
/// pre-learning stage of the HGNN-AC baseline where Adam state would be
/// wasteful.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<VarPtr> params, float lr, float weight_decay = 0.0f);

  void Step() override;

 private:
  float lr_;
  float weight_decay_;
};

/// Clips the global L2 norm of the gradients of `params` to `max_norm`.
/// Returns the pre-clip norm.
float ClipGradNorm(const std::vector<VarPtr>& params, float max_norm);

}  // namespace autoac

#endif  // AUTOAC_TENSOR_OPTIMIZER_H_
