#include "tensor/graph_ir.h"

#include <sstream>
#include <unordered_map>
#include <utility>

#include "util/check.h"

namespace autoac {

namespace internal {
thread_local bool t_ir_capture_active = false;
}  // namespace internal

struct IrCapture::Recorder {
  ir::Graph graph;
  // Variable address -> value id. Recorded VarPtrs are pinned in
  // Value::leaf / node keepalives below, so an address is never reused
  // while the capture is live.
  std::unordered_map<const Variable*, int32_t> value_of;
  // Pins every recorded intermediate (Value::leaf pins the leaves).
  std::vector<VarPtr> node_keepalive;
};

namespace {

thread_local IrCapture::Recorder* t_recorder = nullptr;

/// Id of `v` in the capture, registering it as a const leaf on first sight.
int32_t IdFor(IrCapture::Recorder& r, const VarPtr& v) {
  auto it = r.value_of.find(v.get());
  if (it != r.value_of.end()) return it->second;
  int32_t id = static_cast<int32_t>(r.graph.values.size());
  ir::Value value;
  value.shape = v->value.shape();
  value.kind = ir::ValueKind::kConst;
  value.leaf = v;
  value.name = v->op_name;
  r.graph.values.push_back(std::move(value));
  r.value_of.emplace(v.get(), id);
  return id;
}

int32_t RecordOutputValue(IrCapture::Recorder& r, const VarPtr& node) {
  AUTOAC_CHECK(r.value_of.find(node.get()) == r.value_of.end())
      << "op output recorded twice: " << node->op_name;
  int32_t id = static_cast<int32_t>(r.graph.values.size());
  ir::Value value;
  value.shape = node->value.shape();
  value.kind = ir::ValueKind::kIntermediate;
  value.name = node->op_name;
  value.def = static_cast<int32_t>(r.graph.nodes.size());
  r.graph.values.push_back(std::move(value));
  r.value_of.emplace(node.get(), id);
  r.node_keepalive.push_back(node);
  return id;
}

void RecordNode(IrCapture::Recorder& r, const VarPtr& node,
                const std::vector<VarPtr>& parents, ir::Kernel kernel,
                ir::Attrs attrs, uint32_t flags, int64_t scratch_numel) {
  ir::Node n;
  n.op = node->op_name;
  n.inputs.reserve(parents.size());
  for (const VarPtr& p : parents) n.inputs.push_back(IdFor(r, p));
  n.kernel = std::move(kernel);
  n.attrs = std::move(attrs);
  n.flags = flags;
  n.scratch_numel = scratch_numel;
  if (n.kernel == nullptr) r.graph.complete = false;
  n.out = RecordOutputValue(r, node);
  r.graph.nodes.push_back(std::move(n));
}

}  // namespace

namespace internal {

void IrRecordOp(const VarPtr& node, const std::vector<VarPtr>& parents,
                ir::Kernel kernel, ir::Attrs attrs, uint32_t flags,
                int64_t scratch_numel) {
  IrCapture::Recorder* r = t_recorder;
  if (r == nullptr) return;
  RecordNode(*r, node, parents, std::move(kernel), std::move(attrs), flags,
             scratch_numel);
}

void IrRecordOpaque(const VarPtr& node, const std::vector<VarPtr>& parents) {
  IrCapture::Recorder* r = t_recorder;
  if (r == nullptr) return;
  RecordNode(*r, node, parents, /*kernel=*/nullptr, ir::Attrs{}, ir::kNoFlags,
             /*scratch_numel=*/0);
}

}  // namespace internal

IrCapture::IrCapture() : recorder_(new Recorder) {
  AUTOAC_CHECK(t_recorder == nullptr) << "IrCapture does not nest";
  t_recorder = recorder_.get();
  internal::t_ir_capture_active = true;
}

IrCapture::~IrCapture() {
  if (t_recorder == recorder_.get()) {
    t_recorder = nullptr;
    internal::t_ir_capture_active = false;
  }
}

void IrCapture::MarkInput(const VarPtr& leaf, std::string name) {
  AUTOAC_CHECK(leaf != nullptr);
  Recorder& r = *recorder_;
  AUTOAC_CHECK(r.value_of.find(leaf.get()) == r.value_of.end())
      << "MarkInput must precede any use of the leaf";
  int32_t id = static_cast<int32_t>(r.graph.values.size());
  ir::Value value;
  value.shape = leaf->value.shape();
  value.kind = ir::ValueKind::kInput;
  value.leaf = leaf;
  value.name = std::move(name);
  r.graph.values.push_back(std::move(value));
  r.value_of.emplace(leaf.get(), id);
}

ir::Graph IrCapture::Finish(const VarPtr& output) {
  Recorder& r = *recorder_;
  t_recorder = nullptr;
  internal::t_ir_capture_active = false;
  AUTOAC_CHECK(output != nullptr);
  auto it = r.value_of.find(output.get());
  if (it == r.value_of.end()) {
    // The forward never built an op (identity over a leaf) — nothing to
    // compile.
    r.graph.complete = false;
  } else {
    r.graph.outputs.push_back(it->second);
  }
  // Intermediates no longer need pinning: each value's producing node and
  // consumers are fixed now, and the executor materializes its own slots.
  r.node_keepalive.clear();
  return std::move(r.graph);
}

namespace ir {

namespace {
std::string ShapeString(const std::vector<int64_t>& shape) {
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) out << ", ";
    out << shape[i];
  }
  out << "]";
  return out.str();
}
}  // namespace

std::string Graph::Dump() const {
  std::ostringstream out;
  for (size_t i = 0; i < values.size(); ++i) {
    const Value& v = values[i];
    if (v.kind == ValueKind::kIntermediate) continue;
    out << "v" << i << ": "
        << (v.kind == ValueKind::kInput ? "input" : "const") << " "
        << ShapeString(v.shape);
    if (!v.name.empty() && v.name != "leaf") out << " \"" << v.name << "\"";
    if (v.folded.numel() > 0) out << " folded";
    out << "\n";
  }
  for (size_t i = 0; i < nodes.size(); ++i) {
    const Node& n = nodes[i];
    out << "n" << i << ": " << n.op << "(";
    for (size_t j = 0; j < n.inputs.size(); ++j) {
      if (j > 0) out << ", ";
      out << "v" << n.inputs[j];
    }
    out << ") -> v" << n.out << " " << ShapeString(values[n.out].shape);
    if (n.inplace) out << " inplace";
    if (n.kernel == nullptr) out << " opaque";
    out << "\n";
  }
  out << "outputs:";
  for (int32_t v : outputs) out << " v" << v;
  out << "\n";
  return out.str();
}

}  // namespace ir
}  // namespace autoac
